(* Nested-query optimization (section 5 of the paper): the Cartesian
   product of three arrays, combined and summed.  The declarative query
   nests three SelectMany levels; Steno's pushdown automaton turns it into
   three plain nested loops with the Sum update in the innermost body —
   compare the generated code below with the paper's hand-written loop.

   Run with: dune exec examples/cartesian.exe -- [nx] [ny] [nz] *)

module I = Expr.Infix

let arg n default = try int_of_string Sys.argv.(n) with _ -> default

let () =
  let nx = arg 1 300 and ny = arg 2 100 and nz = arg 3 50 in
  let xs = Array.init nx (fun i -> float_of_int (i + 1) /. 97.0) in
  let ys = Array.init ny (fun i -> float_of_int (i + 2) /. 89.0) in
  let zs = Array.init nz (fun i -> float_of_int (i + 3) /. 83.0) in
  (* xs.SelectMany(x => ys.SelectMany(y => zs.Select(z => x*y*z))).Sum() *)
  let q =
    Query.of_array Ty.Float xs
    |> Query.select_many (fun x ->
           Query.of_array Ty.Float ys
           |> Query.select_many (fun y ->
                  Query.of_array Ty.Float zs
                  |> Query.select (fun z -> I.(x *. y *. z))))
    |> Query.sum_float
  in
  Printf.printf "QUIL: %s\n\n" (Steno.quil_scalar q);
  Printf.printf "Generated code:\n%s\n" (Steno.generated_source_scalar q);

  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, 1000.0 *. (Unix.gettimeofday () -. t0))
  in
  (* Hand-written loop nest, as in the paper's section 5 listing. *)
  let hand () =
    let total = ref 0.0 in
    for i = 0 to Array.length xs - 1 do
      for j = 0 to Array.length ys - 1 do
        for k = 0 to Array.length zs - 1 do
          total := !total +. (xs.(i) *. ys.(j) *. zs.(k))
        done
      done
    done;
    !total
  in
  let h, th = time hand in
  Printf.printf "hand-written loops: sum = %.6f  (%.1f ms)\n" h th;
  let l, tl = time (fun () -> Steno.scalar ~backend:Steno.Linq q) in
  Printf.printf "LINQ iterators:     sum = %.6f  (%.1f ms)\n" l tl;
  if Steno.native_available () then begin
    let p = Steno.prepare_scalar ~backend:Steno.Native q in
    let s, ts = time (fun () -> Steno.Prepared_scalar.run p) in
    Printf.printf "Steno native:       sum = %.6f  (%.1f ms)\n" s ts;
    Printf.printf "\nspeedup over LINQ: %.1fx; overhead vs hand loops: %+.0f%%\n"
      (tl /. ts)
      (100.0 *. ((ts /. th) -. 1.0))
  end;

  (* The same mechanism also implements equi-joins (section 5). *)
  let pairs = Query.of_array (Ty.Pair (Ty.Int, Ty.Float)) in
  let left = pairs (Array.init 500 (fun i -> i mod 40, float_of_int i)) in
  let right = pairs (Array.init 300 (fun i -> i mod 40, float_of_int (i * 2))) in
  let join =
    left
    |> Query.join ~inner:right
         ~outer_key:(fun l -> Expr.Fst l)
         ~inner_key:(fun r -> Expr.Fst r)
         ~result:(fun l r -> I.(Expr.Snd l +. Expr.Snd r))
    |> Query.sum_float
  in
  Printf.printf "\nequi-join QUIL: %s\n" (Steno.quil_scalar join);
  Printf.printf "join-and-sum result: %.0f\n" (Steno.scalar join)
