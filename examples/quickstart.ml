(* Quickstart: build a declarative query, inspect what Steno does with it,
   and run it on every backend.

   Run with: dune exec examples/quickstart.exe *)

module I = Expr.Infix

let () =
  (* The motivating query of the paper's section 2:
       from x in xs where x % 2 = 0 select x * x *)
  let xs = Array.init 20 (fun i -> i) in
  let even_squares =
    Query.of_array Ty.Int xs
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in

  Format.printf "Operator chain:   %a@." Query.pp even_squares;
  Printf.printf "QUIL sentence:    %s\n\n" (Steno.quil even_squares);

  Printf.printf "Generated code:\n%s\n" (Steno.generated_source even_squares);

  let show name arr =
    Printf.printf "%-18s [%s]\n" name
      (String.concat "; " (Array.to_list (Array.map string_of_int arr)))
  in
  show "LINQ (iterators):" (Steno.to_array ~backend:Steno.Linq even_squares);
  show "Fused (closures):" (Steno.to_array ~backend:Steno.Fused even_squares);
  if Steno.native_available () then begin
    let p = Steno.prepare ~backend:Steno.Native even_squares in
    show "Steno (native):  " (Steno.run p);
    let info = Steno.info p in
    Printf.printf
      "\nOne-off optimization cost: %.1f ms (codegen %.2f ms, compile+load \
       %.1f ms)\n"
      info.Steno.prepare_ms info.Steno.codegen_ms info.Steno.compile_ms;
    (* A structurally identical query over different data reuses the
       compiled plugin (the paper's cached query object, section 7.1). *)
    let ys = Array.init 1000 (fun i -> 1000 - i) in
    let same_shape =
      Query.of_array Ty.Int ys
      |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
      |> Query.select (fun x -> I.(x * x))
    in
    let p2 = Steno.prepare ~backend:Steno.Native same_shape in
    Printf.printf "Second query with the same shape: cache hit = %b\n"
      (Steno.info p2).Steno.cache_hit
  end
  else print_endline "(native backend unavailable: no ocamlopt on PATH)";

  (* A scalar query: sum of squares (Fig. 1). *)
  let sum_sq =
    Query.of_array Ty.Float (Array.init 1000 float_of_int)
    |> Query.select (fun x -> I.(x *. x))
    |> Query.sum_float
  in
  Printf.printf "\nSum of squares of 0..999 = %.0f\n" (Steno.scalar sum_sq)
