(* Quickstart: build a declarative query with the pipeline builders,
   inspect what Steno does with it, and run it on every backend.

   Run with: dune exec examples/quickstart.exe *)

module I = Expr.Infix
open Query.Pipe

let () =
  (* The motivating query of the paper's section 2:
       from x in xs where x % 2 = 0 select x * x *)
  let xs = Array.init 20 (fun i -> i) in
  let even_squares =
    ints xs
    |> where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> select (fun x -> I.(x * x))
  in

  Format.printf "Operator chain:   %a@." Query.pp even_squares;
  Printf.printf "QUIL sentence:    %s\n\n" (Steno.quil even_squares);

  Printf.printf "Generated code:\n%s\n" (Steno.generated_source even_squares);

  let show name arr =
    Printf.printf "%-18s [%s]\n" name
      (String.concat "; " (Array.to_list (Array.map string_of_int arr)))
  in
  show "LINQ (iterators):" (Steno.to_array ~backend:Steno.Linq even_squares);
  show "Fused (closures):" (Steno.to_array ~backend:Steno.Fused even_squares);
  if Steno.native_available () then begin
    let p = Steno.prepare ~backend:Steno.Native even_squares in
    show "Steno (native):  " (Steno.Prepared.run p);
    let info = Steno.Prepared.compile_info p in
    Printf.printf
      "\nOne-off optimization cost: %.1f ms (codegen %.2f ms, compile+load \
       %.1f ms)\n"
      info.Steno.prepare_ms info.Steno.codegen_ms info.Steno.compile_ms;
    (* A structurally identical query over different data reuses the
       compiled plugin (the paper's cached query object, section 7.1). *)
    let ys = Array.init 1000 (fun i -> 1000 - i) in
    let same_shape =
      ints ys
      |> where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
      |> select (fun x -> I.(x * x))
    in
    let p2 = Steno.prepare ~backend:Steno.Native same_shape in
    Printf.printf "Second query with the same shape: cache hit = %b\n"
      (Steno.Prepared.compile_info p2).Steno.cache_hit
  end
  else print_endline "(native backend unavailable: no ocamlopt on PATH)";

  (* A redundant operator chain: the algebraic optimizer fuses the
     stacked Wheres and Takes before any backend sees the plan. *)
  let redundant =
    ints xs
    |> where (fun x -> I.(x >= Expr.int 2))
    |> where (fun x -> I.(x < Expr.int 18))
    |> take 10 |> take 5
  in
  let ex = Steno.Engine.explain (Steno.default_engine ()) redundant in
  Printf.printf "\nOptimizer on a redundant chain (%d -> %d operators):\n%s"
    ex.Steno.Engine.operators_before ex.Steno.Engine.operators_after
    (Steno.Engine.explain_to_string ex);

  (* A scalar query: sum of squares (Fig. 1). *)
  let sum_sq =
    floats (Array.init 1000 float_of_int)
    |> select (fun x -> I.(x *. x))
    |> sum_float
  in
  Printf.printf "\nSum of squares of 0..999 = %.0f\n" (Steno.scalar sum_sq)
