(* Distributed k-means clustering on the simulated Dryad cluster — the
   paper's representative real-world workload (section 7.2).

   Each iteration runs two stages:
   1. per partition: assign every point to its nearest centroid (a
      doubly-nested query: Select over centroids, Aggregate over
      dimensions) and fold per-cluster partial sums with the
      GroupByAggregate sink;
   2. merge the per-partition partials (the Agg* step) and recompute the
      centroids.

   Run with: dune exec examples/kmeans_demo.exe -- [points] [dims] [clusters] *)

module I = Expr.Infix

let arg n default = try int_of_string Sys.argv.(n) with _ -> default

let () =
  let n = arg 1 20_000 in
  let d = arg 2 8 in
  let k = arg 3 5 in
  let iterations = 10 in
  let parts = 8 in
  Printf.printf "k-means: %d points, %d dimensions, %d clusters, %d partitions\n"
    n d k parts;

  (* Synthetic input: k well-separated Gaussian blobs. *)
  let rng = Random.State.make [| 2011 |] in
  let gauss () =
    let u1 = Random.State.float rng 1.0 +. 1e-12 in
    let u2 = Random.State.float rng 1.0 in
    sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  let true_centers =
    Array.init k (fun _ -> Array.init d (fun _ -> Random.State.float rng 100.0))
  in
  let points =
    Array.init n (fun i ->
        let c = true_centers.(i mod k) in
        Array.init d (fun j -> c.(j) +. gauss ()))
  in
  let cluster = Dryad.create () in
  let ds = Dataset.of_array ~parts points in

  (* The per-iteration job lives in the library (Kmeans.iterate): a
     nested-query assignment step plus GroupByAggregate partial sums,
     merged by Agg*; here the distance is a pure expression-level query,
     so even the inner arithmetic loop is declarative. *)
  let run_backend name backend =
    let centroids = ref (Array.init k (fun j -> Array.copy points.(j))) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iterations do
      centroids :=
        Kmeans.iterate cluster ~backend ~distance:Kmeans.Expression
          ~centroids:!centroids ds
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%-22s %8.1f ms/iteration\n" name
      (1000.0 *. dt /. float_of_int iterations);
    !centroids
  in

  let final_linq = run_backend "unoptimized (LINQ):" Steno.Linq in
  let final_native =
    if Steno.native_available () then
      Some (run_backend "Steno-optimized:" Steno.Native)
    else None
  in

  (* Both executions converge to the same clustering. *)
  (match final_native with
  | Some fn ->
    let max_diff =
      Array.fold_left max 0.0
        (Array.mapi
           (fun j c ->
             Array.fold_left max 0.0
               (Array.mapi (fun i x -> Float.abs (x -. fn.(j).(i))) c))
           final_linq)
    in
    Printf.printf "max centroid difference between backends: %g\n" max_diff
  | None -> ());

  (* Recovered centers should sit near the true generating centers. *)
  let recovered = match final_native with Some c -> c | None -> final_linq in
  let nearest_true c =
    Array.fold_left
      (fun best t ->
        let dist =
          sqrt (Array.fold_left ( +. ) 0.0 (Array.mapi (fun i x -> (x -. t.(i)) ** 2.0) c))
        in
        Float.min best dist)
      infinity true_centers
  in
  let worst = Array.fold_left (fun w c -> Float.max w (nearest_true c)) 0.0 recovered in
  Printf.printf "worst distance from a recovered centroid to a true center: %.2f\n"
    worst;
  let m = Dryad.metrics cluster in
  Printf.printf "cluster metrics: %d stages, %d vertex executions, %d elements gathered\n"
    m.Dryad.stages m.Dryad.vertices m.Dryad.gathered
