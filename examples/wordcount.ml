(* Log analytics in the MapReduce style the paper's introduction motivates:
   a GroupBy-Aggregate job over synthetic web-server records, executed both
   sequentially and across the simulated cluster.

   A record is (status, url_id, latency_ms).

   Run with: dune exec examples/wordcount.exe -- [records] *)

module I = Expr.Infix
open Query.Pipe

let record_ty = Ty.Triple (Ty.Int, Ty.Int, Ty.Float)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 200_000 in
  let rng = Random.State.make [| 7 |] in
  let statuses = [| 200; 200; 200; 200; 200; 200; 301; 404; 500 |] in
  let records =
    Array.init n (fun _ ->
        ( statuses.(Random.State.int rng (Array.length statuses)),
          Random.State.int rng 50,
          Random.State.float rng 250.0 ))
  in
  Printf.printf "analyzing %d log records\n\n" n;
  let logs = of_array record_ty records in
  let status r = Expr.Proj3_1 r in
  let url r = Expr.Proj3_2 r in
  let latency r = Expr.Proj3_3 r in

  (* 1. Requests and mean latency per status code: the GroupBy-Aggregate
     pattern of section 4.3 — one (count, total) partial per key instead
     of buffering each group. *)
  let per_status =
    logs
    |> group_by_agg
         ~key:(fun r -> status r)
         ~seed:(Expr.Pair (Expr.int 0, Expr.float 0.0))
         ~step:(fun acc r ->
           Expr.Pair
             (I.(Expr.Fst acc + Expr.int 1), I.(Expr.Snd acc +. latency r)))
    |> order_by (fun kv -> Expr.Fst kv)
  in
  Printf.printf "QUIL: %s\n" (Steno.quil per_status);
  Array.iter
    (fun (code, (count, total)) ->
      Printf.printf "  status %3d: %7d requests, mean latency %6.1f ms\n" code
        count
        (total /. float_of_int count))
    (Steno.to_array per_status);

  (* 2. Slowest error-serving URLs: filter, group, aggregate, sort, take. *)
  let slow_errors =
    logs
    |> where (fun r -> I.(status r >= Expr.int 400))
    |> group_by_agg
         ~key:(fun r -> url r)
         ~seed:(Expr.float 0.0)
         ~step:(fun acc r -> Expr.Prim2 (Prim.Max_float, acc, latency r))
    |> order_by ~order:Query.Descending (fun kv -> Expr.Snd kv)
    |> take 5
  in
  Printf.printf "\nslowest URLs among errors (max latency):\n";
  Array.iter
    (fun (u, worst) -> Printf.printf "  url %2d: %6.1f ms\n" u worst)
    (Steno.to_array slow_errors);

  (* 3. Overall error rate as a scalar aggregate. *)
  let errors =
    count (logs |> where (fun r -> I.(status r >= Expr.int 400)))
  in
  Printf.printf "\nerror rate: %.2f%%\n"
    (100.0 *. float_of_int (Steno.scalar errors) /. float_of_int n);

  (* 4. The same per-status job as a two-stage distributed query: partial
     GroupByAggregate per partition, then Agg* merging (section 6). *)
  let cluster = Dryad.create () in
  let ds = Dataset.of_array ~parts:8 records in
  let stage1 part =
    of_array record_ty part
    |> group_by_agg
         ~key:(fun r -> status r)
         ~seed:(Expr.Pair (Expr.int 0, Expr.float 0.0))
         ~step:(fun acc r ->
           Expr.Pair
             (I.(Expr.Fst acc + Expr.int 1), I.(Expr.Snd acc +. latency r)))
  in
  let partials = Dryad.apply_query cluster stage1 ds in
  let merged =
    Dryad.reduce_partials cluster
      ~combine:(fun (c1, t1) (c2, t2) -> c1 + c2, t1 +. t2)
      partials
  in
  Printf.printf "\ndistributed per-status counts (2-stage, %d partitions):\n"
    (Dataset.num_partitions ds);
  Array.iter
    (fun (code, (count, _)) -> Printf.printf "  status %3d: %7d\n" code count)
    (Array.of_list
       (List.sort compare (Array.to_list merged)));
  let m = Dryad.metrics cluster in
  Printf.printf "(%d vertices over %d stages)\n" m.Dryad.vertices m.Dryad.stages
