(* The textual front end: write queries in the comprehension syntax the
   paper starts from, and watch them go through the whole pipeline —
   parse, elaborate, specialize, canonicalize, generate, compile, run.

   Run with: dune exec examples/textual.exe *)

let inputs : Elab.inputs =
  [
    "orders",
    Elab.Input
      ( Ty.Pair (Ty.Int, Ty.Float),
        (* (customer id, amount) *)
        Array.init 50_000 (fun i ->
            (i * 7919) mod 100, float_of_int ((i * 37) mod 500) /. 10.0) );
    "xs", Elab.Input (Ty.Int, Array.init 1000 (fun i -> i));
  ]

let show src =
  Printf.printf "query>  %s\n" src;
  (match Lang.parse src with
  | prog -> Format.printf "parsed: %a@." Surface.pp_program prog
  | exception Lang.Error (_, _) -> ());
  match Lang.run ~inputs src with
  | result -> Printf.printf "result: %s\n\n" (Lang.result_to_string result)
  | exception Lang.Error (msg, pos) ->
    Printf.printf "  error at offset %d: %s\n\n" pos msg

let () =
  show "from x in xs where x % 7 = 0 take 5 select x * x";
  show "sum(from x in xs where x % 2 = 0 select x)";
  (* Group-by with a counting selector: the specialization pass turns the
     GroupBy into a GroupByAggregate automatically. *)
  show
    "from g in (from o in orders group o by fst o % 10) \
     orderby 0 - count g select (fst g, count g)";
  (* Embedded scalar subquery: becomes a nested query (section 5). *)
  show "from x in xs take 4 select sum(from y in range(0, x) select y * y)";
  (* Multiple generators: SelectMany. *)
  show
    "sum(from x in xs take 50 from y in range(0, x % 5) select x * y)";
  (* Explain shows what Steno generated. *)
  let src = "sum(from x in xs where x % 2 = 0 select x * x)" in
  Printf.printf "explain> %s\n%s\n" src (Lang.explain ~inputs src)
