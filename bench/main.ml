(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 7), plus ablations called out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- fig1         -- one experiment
     dune exec bench/main.exe -- fig13 --scale 0.1
   Experiments: fig1 fig13 breakeven fig14 ablation-gba ablation-chain
                ablation-backend par par-agg serve tier adaptive bechamel
   JSON output: --json FILE / --json-profile FILE / --json-par FILE /
                --json-serve FILE (with --clients N --requests R) /
                --json-tier FILE / --json-adaptive FILE

   Absolute numbers differ from the paper (different machine, language and
   runtime); the claims under test are the *shapes*: who wins, by roughly
   what factor, and where the crossovers fall.  EXPERIMENTS.md records
   paper-vs-measured for each experiment. *)

module I = Expr.Infix

let scale = ref 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. !scale))

(* Median-of-runs timing.  A full major collection before each sample
   keeps one backend's allocation debt (e.g. LINQ materializing groups)
   from being charged to the next measurement. *)
let time_ms ?(runs = 3) f =
  let samples =
    List.init runs (fun _ ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        1000.0 *. (Unix.gettimeofday () -. t0))
  in
  match List.sort compare samples with
  | [] -> assert false
  | s -> List.nth s (List.length s / 2)

let row fmt = Printf.printf fmt

let header title = Printf.printf "\n=== %s ===\n" title

let native = Steno.native_available ()

let require_native name f =
  if native then f ()
  else Printf.printf "(%s skipped: native backend unavailable)\n" name

(* Shared synthetic inputs. *)
let mixture_of_gaussians n =
  (* Two-component 1-D mixture, as in the paper's Group benchmark. *)
  let rng = Random.State.make [| 2011 |] in
  let gauss mean sigma =
    let u1 = Random.State.float rng 1.0 +. 1e-12 in
    let u2 = Random.State.float rng 1.0 in
    mean +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  Array.init n (fun _ ->
      if Random.State.bool rng then gauss 0.3 0.1 else gauss 0.7 0.05)

let uniform_floats n =
  Array.init n (fun i -> float_of_int (i mod 1000) /. 997.0)

(* The four microbenchmark queries of Fig. 13. *)

let sum_query xs = Query.sum_float (Query.of_array Ty.Float xs)

let sum_hand xs () =
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    acc := !acc +. xs.(i)
  done;
  !acc

let sumsq_query xs =
  Query.of_array Ty.Float xs
  |> Query.select (fun x -> I.(x *. x))
  |> Query.sum_float

let sumsq_hand xs () =
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let x = xs.(i) in
    acc := !acc +. (x *. x)
  done;
  !acc

let cart_query xs ys =
  Query.of_array Ty.Float xs
  |> Query.select_many (fun x ->
         Query.of_array Ty.Float ys |> Query.select (fun y -> I.(x *. y)))
  |> Query.sum_float

let cart_hand xs ys () =
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    for j = 0 to Array.length ys - 1 do
      acc := !acc +. (xs.(i) *. ys.(j))
    done
  done;
  !acc

let bins = 64

let bin_expr x =
  Expr.Prim2
    ( Prim.Max_int,
      Expr.int 0,
      Expr.Prim2
        ( Prim.Min_int,
          Expr.int (bins - 1),
          Expr.Prim1 (Prim.Truncate, I.(x *. Expr.float (float_of_int bins)))
        ) )

let group_query xs =
  (* Binned histogram, written as the paper's GroupBy with a counting
     result selector: the LINQ backend interprets it directly (building
     each group's bag); Steno's specialization pass (§4.3) rewrites it to
     a GroupByAggregate sink holding one count per key. *)
  Query.of_array Ty.Float xs
  |> Query.group_by bin_expr
  |> Query.select (fun g ->
         Expr.Pair (Expr.Fst g, Expr.Array_length (Expr.Snd g)))

let group_hand xs () =
  (* Hand-optimized equivalent: single pass over a dictionary of counts
     (the key set is not statically known to a general GroupBy). *)
  let counts = Hashtbl.create 64 in
  for i = 0 to Array.length xs - 1 do
    let b = int_of_float (xs.(i) *. float_of_int bins) in
    let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
    match Hashtbl.find_opt counts b with
    | Some cell -> incr cell
    | None -> Hashtbl.replace counts b (ref 1)
  done;
  counts

(* One Fig. 13 style row: LINQ / Steno+comp / Steno / hand. *)
type quantities = {
  linq : float;
  steno_incl : float;
  steno_excl : float;
  hand : float;
}

let print_quantities name q =
  row "%-8s %10.1f %14.1f %12.1f %10.1f   | %5.1fx speedup, %+5.1f%% vs hand\n"
    name q.linq q.steno_incl q.steno_excl q.hand (q.linq /. q.steno_excl)
    (100.0 *. ((q.steno_excl /. q.hand) -. 1.0))

let quantities_header () =
  row "%-8s %10s %14s %12s %10s\n" "query" "LINQ(ms)" "Steno+comp(ms)"
    "Steno(ms)" "hand(ms)"

let measure_scalar_quantities (type s) ?(runs = 3) (sq : s Query.sq)
    (hand : unit -> 'h) : quantities =
  Steno.clear_cache ();
  let linq = Steno.prepare_scalar ~backend:Steno.Linq sq in
  let t_linq = time_ms ~runs (fun () -> Steno.Prepared_scalar.run linq) in
  let t_incl =
    time_ms ~runs (fun () ->
        Steno.clear_cache ();
        Steno.scalar ~backend:Steno.Native sq)
  in
  let p = Steno.prepare_scalar ~backend:Steno.Native sq in
  let t_excl = time_ms ~runs (fun () -> Steno.Prepared_scalar.run p) in
  let t_hand = time_ms ~runs hand in
  { linq = t_linq; steno_incl = t_incl; steno_excl = t_excl; hand = t_hand }

let measure_query_quantities ?(runs = 3) q hand : quantities =
  Steno.clear_cache ();
  let linq = Steno.prepare ~backend:Steno.Linq q in
  let t_linq = time_ms ~runs (fun () -> Steno.Prepared.run linq) in
  let t_incl =
    time_ms ~runs (fun () ->
        Steno.clear_cache ();
        Steno.to_array ~backend:Steno.Native q)
  in
  let p = Steno.prepare ~backend:Steno.Native q in
  let t_excl = time_ms ~runs (fun () -> Steno.Prepared.run p) in
  let t_hand = time_ms ~runs hand in
  { linq = t_linq; steno_incl = t_incl; steno_excl = t_excl; hand = t_hand }

(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1: sum of squares of 10^7 doubles";
  require_native "fig1" @@ fun () ->
  let n = scaled 10_000_000 in
  let xs = uniform_floats n in
  let q = sumsq_query xs in
  let quantities = measure_scalar_quantities q (sumsq_hand xs) in
  row "n = %d\n" n;
  row "LINQ .Sum()   %8.1f ms   (1.00; paper 1.00)\n" quantities.linq;
  row "for loop      %8.1f ms   (%.3f of LINQ; paper 0.135)\n" quantities.hand
    (quantities.hand /. quantities.linq);
  row "Steno .Sum()  %8.1f ms   (%.3f of LINQ; paper 0.136)\n"
    quantities.steno_excl
    (quantities.steno_excl /. quantities.linq);
  row "speedup over LINQ: %.1fx (paper: 7.4x)\n"
    (quantities.linq /. quantities.steno_excl)

let fig13 () =
  header "Figure 13: sequential microbenchmarks";
  require_native "fig13" @@ fun () ->
  let n = scaled 10_000_000 in
  row "Sum/SumSq/Group over %d doubles; Cart over %d x %d\n" n (scaled 100_000)
    1000;
  quantities_header ();
  let xs = uniform_floats n in
  print_quantities "Sum" (measure_scalar_quantities (sum_query xs) (sum_hand xs));
  print_quantities "SumSq"
    (measure_scalar_quantities (sumsq_query xs) (sumsq_hand xs));
  let cx = uniform_floats (scaled 100_000) in
  let cy = uniform_floats 1000 in
  print_quantities "Cart"
    (measure_scalar_quantities (cart_query cx cy) (cart_hand cx cy));
  let gs = mixture_of_gaussians n in
  print_quantities "Group"
    (measure_query_quantities (group_query gs) (group_hand gs));
  row
    "(paper speedups: Sum 3.3x, SumSq 7.4x, Cart ~12x, Group 14.1x; paper\n\
    \ overhead vs hand: Sum +53%%, others < 3%%.  Larger factors here come\n\
    \ from float boxing in the iterator pipeline; see EXPERIMENTS.md.)\n"

let breakeven () =
  header "Section 7.1: one-off optimization cost and break-even input size";
  require_native "breakeven" @@ fun () ->
  let costs =
    List.map
      (fun k ->
        Steno.clear_cache ();
        let q =
          Query.sum_float
            (Query.of_array Ty.Float [| 1.0 |]
            |> Query.select (fun x -> I.(x *. Expr.float (float_of_int k))))
        in
        let p = Steno.prepare_scalar ~backend:Steno.Native q in
        (Steno.Prepared_scalar.compile_info p).Steno.compile_ms)
      [ 1; 2; 3; 4; 5 ]
  in
  let compile_ms = List.fold_left ( +. ) 0.0 costs /. 5.0 in
  row "mean compile+load cost: %.1f ms (paper: 69 ms)\n" compile_ms;
  let n = scaled 10_000_000 in
  let xs = uniform_floats n in
  let q = sum_query xs in
  let t_linq = time_ms (fun () -> Steno.scalar ~backend:Steno.Linq q) in
  let p = Steno.prepare_scalar ~backend:Steno.Native q in
  let t_steno = time_ms (fun () -> Steno.Prepared_scalar.run p) in
  let per_elem_gain = (t_linq -. t_steno) /. float_of_int n in
  let breakeven_n = compile_ms /. per_elem_gain in
  row "Sum of %d doubles: LINQ %.1f ms, Steno %.1f ms\n" n t_linq t_steno;
  row "break-even input size for Sum: %.1e doubles (paper: ~1.2e7)\n"
    breakeven_n

let fig14 () =
  header "Figure 14: distributed k-means, dimension sweep (N x D constant)";
  require_native "fig14" @@ fun () ->
  let budget = scaled 4_000_000 in
  let k = 10 in
  let parts = 8 in
  let cluster = Dryad.create () in
  row "total input: %d doubles (paper: 1e9), k = %d, %d partitions\n" budget k
    parts;
  row
    "(the distance computation is a user-defined function, as in the\n\
    \ paper's DryadLINQ job: the work per element grows with D while the\n\
    \ per-element iterator overhead is fixed)\n";
  row "%6s %10s %16s %14s %9s\n" "dim" "points" "unoptimized(ms)"
    "Steno-opt(ms)" "speedup";
  List.iter
    (fun d ->
      let n = max (k * 4) (budget / d) in
      let rng = Random.State.make [| d |] in
      let points =
        Array.init n (fun _ ->
            Array.init d (fun _ -> Random.State.float rng 100.0))
      in
      let ds = Dataset.of_array ~parts points in
      let centroids = Array.init k (fun j -> Array.copy points.(j * (n / k))) in
      let iteration backend () =
        Kmeans.iterate cluster ~backend ~distance:Kmeans.Udf ~centroids ds
      in
      let t_linq = time_ms ~runs:3 (iteration Steno.Linq) in
      let t_steno = time_ms ~runs:3 (iteration Steno.Native) in
      row "%6d %10d %16.1f %14.1f %8.2fx\n" d n t_linq t_steno
        (t_linq /. t_steno))
    [ 4; 10; 30; 100; 300; 1000 ];
  row
    "(paper: 1.9x at D=10 falling toward 1x at D=1000 as the distance\n\
    \ computation dominates)\n"

let ablation_gba () =
  header "Ablation (section 4.3): GroupByAggregate specialization on vs off";
  require_native "ablation-gba" @@ fun () ->
  let n = scaled 4_000_000 in
  let xs = mixture_of_gaussians n in
  let q = group_query xs in
  let with_flag flag f =
    Specialize.enabled := flag;
    Fun.protect ~finally:(fun () -> Specialize.enabled := true) f
  in
  row "QUIL with pass on:  %s\n" (with_flag true (fun () -> Steno.quil q));
  row "QUIL with pass off: %s\n" (with_flag false (fun () -> Steno.quil q));
  let measure flag =
    with_flag flag (fun () ->
        Steno.clear_cache ();
        let p = Steno.prepare ~backend:Steno.Native q in
        time_ms (fun () -> Steno.Prepared.run p))
  in
  let t_on = measure true in
  let t_off = measure false in
  row "specialized (GroupByAggregate): %8.1f ms\n" t_on;
  row "unspecialized (GroupBy + count): %8.1f ms\n" t_off;
  row "specialization speedup: %.2fx (memory: O(keys) vs O(elements))\n"
    (t_off /. t_on)

let ablation_chain () =
  header "Ablation (section 2): per-element overhead vs operator chain length";
  require_native "ablation-chain" @@ fun () ->
  let n = scaled 2_000_000 in
  let xs = Array.init n (fun i -> i) in
  row "%6s %12s %12s %12s %18s\n" "ops" "LINQ(ms)" "Fused(ms)" "Native(ms)"
    "LINQ ns/elem/op";
  List.iter
    (fun ops ->
      let q =
        let rec add k q =
          if k = 0 then q
          else add (k - 1) (Query.select (fun x -> I.(x + Expr.int 0)) q)
        in
        Query.sum_int (add ops (Query.of_array Ty.Int xs))
      in
      let t_linq = time_ms (fun () -> Steno.scalar ~backend:Steno.Linq q) in
      let t_fused = time_ms (fun () -> Steno.scalar ~backend:Steno.Fused q) in
      let p = Steno.prepare_scalar ~backend:Steno.Native q in
      let t_native = time_ms (fun () -> Steno.Prepared_scalar.run p) in
      row "%6d %12.1f %12.1f %12.1f %18.2f\n" ops t_linq t_fused t_native
        (1e6 *. t_linq /. float_of_int (n * max 1 ops)))
    [ 0; 1; 2; 4; 8; 16 ];
  row
    "(iterator cost grows linearly with chain length; the fused loop stays\n\
    \ flat - the multiplied overhead of section 2)\n"

let ablation_backend () =
  header "Ablation: backend comparison on the Fig. 13 queries";
  require_native "ablation-backend" @@ fun () ->
  let n = scaled 4_000_000 in
  let xs = uniform_floats n in
  let cases =
    [
      ("Sum", fun b -> ignore (Steno.scalar ~backend:b (sum_query xs)));
      ("SumSq", fun b -> ignore (Steno.scalar ~backend:b (sumsq_query xs)));
      ( "Cart",
        let cx = uniform_floats (scaled 50_000) in
        let cy = uniform_floats 1000 in
        fun b -> ignore (Steno.scalar ~backend:b (cart_query cx cy)) );
      ( "Group",
        let gs = mixture_of_gaussians n in
        fun b -> ignore (Steno.to_array ~backend:b (group_query gs)) );
    ]
  in
  row "%-8s %12s %12s %12s\n" "query" "LINQ(ms)" "Fused(ms)" "Native(ms)";
  List.iter
    (fun (name, run) ->
      run Steno.Native;
      let t b = time_ms (fun () -> run b) in
      row "%-8s %12.1f %12.1f %12.1f\n" name (t Steno.Linq) (t Steno.Fused)
        (t Steno.Native))
    cases;
  row
    "(Fused removes iterator state machines but keeps closure calls;\n\
    \ Native removes those too - the gap is the cost of not generating code)\n"

let ablation_join () =
  header "Ablation: equi-join strategy (hash join vs nested loop, section 5)";
  require_native "ablation-join" @@ fun () ->
  let pairs xs = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) xs in
  row "%10s %10s %16s %14s\n" "outer" "inner" "nested-loop(ms)" "hash-join(ms)";
  List.iter
    (fun (no, ni) ->
      let left = pairs (Array.init (scaled no) (fun i -> (i * 7) mod 997, i)) in
      let right = pairs (Array.init (scaled ni) (fun i -> (i * 13) mod 997, i)) in
      let joined =
        left
        |> Query.join ~inner:right
             ~outer_key:(fun l -> Expr.Fst l)
             ~inner_key:(fun r -> Expr.Fst r)
             ~result:(fun l r -> I.(Expr.Snd l + Expr.Snd r))
        |> Query.sum_int
      in
      let measure flag =
        Canon.hash_join_enabled := flag;
        Fun.protect ~finally:(fun () -> Canon.hash_join_enabled := true)
        @@ fun () ->
        Steno.clear_cache ();
        let p = Steno.prepare_scalar ~backend:Steno.Native joined in
        time_ms (fun () -> Steno.Prepared_scalar.run p)
      in
      let t_nested = measure false in
      let t_hash = measure true in
      row "%10d %10d %16.1f %14.1f\n" (scaled no) (scaled ni) t_nested t_hash)
    [ 1_000, 1_000; 4_000, 4_000; 16_000, 4_000 ];
  row "(the nested loop is quadratic; the hash join builds once and probes\n\
    \ per outer element - the trade-off section 5 points at)\n"

let ablation_sorted_group () =
  header "Ablation (section 4.3): sorted one-pass vs hashed GroupByAggregate";
  require_native "ablation-sorted" @@ fun () ->
  let n = scaled 4_000_000 in
  let xs = Array.init n (fun i -> (i * 131) mod 1024) in
  let q =
    Query.of_array Ty.Int xs
    |> Query.order_by (fun x -> I.(x mod Expr.int 1024))
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 1024))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x))
  in
  let measure flag =
    Canon.sorted_group_enabled := flag;
    Fun.protect ~finally:(fun () -> Canon.sorted_group_enabled := true)
    @@ fun () ->
    Steno.clear_cache ();
    let p = Steno.prepare ~backend:Steno.Native q in
    time_ms (fun () -> Steno.Prepared.run p)
  in
  let t_sorted = measure true in
  let t_hash = measure false in
  row "one-pass sorted sink: %8.1f ms\n" t_sorted;
  row "hash-table sink:      %8.1f ms\n" t_hash;
  row "(both include the sort; the sorted sink keeps O(1) aggregation\n\
    \ state - the paper's note on aggregating key sets larger than\n\
    \ memory)\n"

let ablation_early_exit () =
  header "Ablation: early-exit loop generation (Take / First / Any)";
  require_native "ablation-early-exit" @@ fun () ->
  let n = scaled 10_000_000 in
  let xs = Array.init n (fun i -> i) in
  let src = Query.of_array Ty.Int xs in
  let cases =
    [
      ( "take 100 + sum",
        fun b ->
          ignore (Steno.scalar ~backend:b (Query.sum_int (Query.take 100 src)))
      );
      ("first", fun b -> ignore (Steno.scalar ~backend:b (Query.first src)));
      ( "exists (early hit)",
        fun b ->
          ignore
            (Steno.scalar ~backend:b
               (Query.exists (fun x -> I.(x = Expr.int 5)) src)) );
      ( "exists (no hit)",
        fun b ->
          ignore
            (Steno.scalar ~backend:b
               (Query.exists (fun x -> I.(x = Expr.int (-1))) src)) );
    ]
  in
  row "%-20s %12s %12s\n" "query" "LINQ(ms)" "Native(ms)";
  List.iter
    (fun (name, run) ->
      run Steno.Native;
      let t b = time_ms (fun () -> run b) in
      row "%-20s %12.3f %12.3f\n" name (t Steno.Linq) (t Steno.Native))
    cases;
  row "(early-exit queries cost O(answer position), not O(n): the generated\n\
    \ loop breaks with a local exception once the result is determined)\n"

let par_scaling () =
  header "Section 6: multiprocessor scaling of a split aggregate (Agg_i / Agg*)";
  require_native "par" @@ fun () ->
  let n = scaled 8_000_000 in
  let xs = uniform_floats n in
  (* A compute-bound kernel, so the curve shows parallel scaling rather
     than memory bandwidth. *)
  let kernel x = I.(Expr.Prim1 (Prim.Sqrt, x) *. Expr.Prim1 (Prim.Sin, x)) in
  let build part =
    Query.of_array Ty.Float part
    |> Query.select (fun x -> kernel x)
    |> Query.sum_float
  in
  let p = Steno.prepare_scalar ~backend:Steno.Native (build xs) in
  let t_seq = time_ms (fun () -> Steno.Prepared_scalar.run p) in
  row "sequential Steno: %8.1f ms over %d doubles\n" t_seq n;
  row "available cores: %d%s\n"
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () <= 1 then
       " (single-core host: expect ~1x with per-domain overhead, not speedup)"
     else "");
  row "%8s %12s %9s\n" "workers" "parallel(ms)" "speedup";
  List.iter
    (fun workers ->
      (* Partition once (DryadLINQ data lives pre-partitioned); measure
         the per-iteration parallel execution. *)
      let parts = Par.partition ~parts:workers xs in
      let t =
        time_ms (fun () ->
            Par.scalar_per_partition ~backend:Steno.Native ~workers build
              ~combine:( +. ) parts)
      in
      row "%8d %12.1f %8.2fx\n" workers t (t_seq /. t))
    [ 1; 2; 4; 8 ];
  row "(homomorphic prefix per partition, partial sums combined by Agg*)\n"

(* PR 5: partitioned partial aggregation [Agg_i / Agg-star] vs
   sequential on a filtered Average — the decomposed (sum, count) pair
   path through Par.scalar_auto, not the same-typed split_scalar legacy
   path. *)
let par_agg_measurements () =
  let n = scaled 10_000_000 in
  let xs = uniform_floats n in
  let sq =
    Query.of_array Ty.Float xs
    |> Query.where (fun x -> I.(x < Expr.float 0.9))
    |> Query.average
  in
  let cores = Domain.recommended_domain_count () in
  let workers = max 4 cores in
  let backend = if native then Steno.Native else Steno.Fused in
  let p = Steno.prepare_scalar ~backend sq in
  let seq_ms = time_ms (fun () -> Steno.Prepared_scalar.run p) in
  (* Warm once so the shared per-partition plan is compiled and cached
     before timing (partitions differ only in the captured source, so
     all of them hit the same plugin). *)
  ignore (Par.scalar_auto ~backend ~workers ~parts:workers sq);
  let par_ms =
    time_ms (fun () -> Par.scalar_auto ~backend ~workers ~parts:workers sq)
  in
  let speedup = seq_ms /. par_ms in
  let meets_target = speedup >= 1.5 in
  let explanation =
    if meets_target then ""
    else if cores <= 1 then
      Printf.sprintf
        "host exposes %d core: the %d worker domains time-slice one CPU, so \
         partitioned execution can at best match sequential time plus \
         domain-scheduling overhead; the 1.5x target needs >= 2 physical cores"
        cores workers
    else
      Printf.sprintf
        "%d cores available but speedup %.2fx < 1.5x: the filtered Average is \
         memory-bandwidth-bound at this scale"
        cores speedup
  in
  (n, workers, cores, seq_ms, par_ms, speedup, meets_target, explanation)

let par_agg () =
  header "PR 5: partitioned vs sequential filtered Average (Agg_i / Agg*)";
  let n, workers, cores, seq_ms, par_ms, speedup, meets_target, explanation =
    par_agg_measurements ()
  in
  row "filtered Average over %d doubles, %d workers on %d core(s)\n" n workers
    cores;
  row "sequential:  %10.1f ms\n" seq_ms;
  row "partitioned: %10.1f ms   (%.2fx)\n" par_ms speedup;
  row "meets 1.5x target: %b%s\n" meets_target
    (if explanation = "" then "" else "\n  " ^ explanation)

let json_par_report file =
  header (Printf.sprintf "partial-aggregation JSON report -> %s" file);
  let n, workers, cores, seq_ms, par_ms, speedup, meets_target, explanation =
    par_agg_measurements ()
  in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  Printf.fprintf oc
    {|{
  "benchmark": "par-agg",
  "query": "filtered-average",
  "rows": %d,
  "scale": %.3f,
  "native_available": %b,
  "workers": %d,
  "cores": %d,
  "seq_ms": %.3f,
  "par_ms": %.3f,
  "speedup": %.3f,
  "meets_target": %b,
  "explanation": %S
}
|}
    n !scale native workers cores seq_ms par_ms speedup meets_target
    explanation;
  close_out oc;
  row "rows = %d, %d workers / %d core(s): seq %.1f ms, par %.1f ms (%.2fx)\n"
    n workers cores seq_ms par_ms speedup

(* ------------------------------------------------------------------ *)
(* The algebraic optimizer on a redundant plan: 3 stacked Wheres, the
   motivating case of the rewrite engine.  Measured on Fused (pure
   run-time effect, no compiler in the loop) plus the Native codegen
   surface via Engine.explain. *)

let stacked_where_query n =
  let xs = Array.init n (fun i -> i mod 1000) in
  Query.of_array Ty.Int xs
  |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
  |> Query.where (fun x -> I.(x > Expr.int 10))
  |> Query.where (fun x -> I.(x < Expr.int 900))

type optimizer_measurements = {
  opt_n : int;
  fused_run_on : float;
  fused_run_off : float;
  fused_prep_run_on : float;
  fused_prep_run_off : float;
  native_ops_on : int;
  native_ops_off : int;
  opt_rules : string list;
}

let measure_optimizer () =
  (* Floored below so the measured difference (a few closure calls per
     element) stays above timer noise even at CI smoke scales. *)
  let n = max 500_000 (scaled 2_000_000) in
  let q = stacked_where_query n in
  (* Sum terminal: the run cost is per-element predicate evaluation, not
     result materialization, so the fused-vs-stacked difference is what
     gets measured. *)
  let sq = Query.sum_int q in
  let engine flag =
    Steno.Engine.(
      create { default_config with backend = Steno.Fused; optimize = flag })
  in
  let e_on = engine true and e_off = engine false in
  let p_on = Steno.Engine.prepare_scalar e_on sq in
  let p_off = Steno.Engine.prepare_scalar e_off sq in
  assert (Steno.Prepared_scalar.run p_on = Steno.Prepared_scalar.run p_off);
  let runs = 9 in
  let fused_run_on =
    time_ms ~runs (fun () -> Steno.Prepared_scalar.run p_on)
  in
  let fused_run_off =
    time_ms ~runs (fun () -> Steno.Prepared_scalar.run p_off)
  in
  let fused_prep_run_on =
    time_ms ~runs (fun () -> Steno.Engine.scalar e_on sq)
  in
  let fused_prep_run_off =
    time_ms ~runs (fun () -> Steno.Engine.scalar e_off sq)
  in
  (* Operator counts of the QUIL plan the Native backend would generate
     code for, with and without rewriting. *)
  let ex_on = Steno.Engine.explain_scalar e_on sq in
  let ex_off = Steno.Engine.explain_scalar e_off sq in
  {
    opt_n = n;
    fused_run_on;
    fused_run_off;
    fused_prep_run_on;
    fused_prep_run_off;
    native_ops_on = ex_on.Steno.Engine.operators_after;
    native_ops_off = ex_off.Steno.Engine.operators_after;
    opt_rules = Steno.Prepared_scalar.rewrite_log p_on;
  }

let optimizer () =
  header "Optimizer: 3 stacked Wheres, rewriting on vs off";
  let m = measure_optimizer () in
  row "n = %d; rules applied: %s\n" m.opt_n (String.concat ", " m.opt_rules);
  row "%-22s %12s %12s\n" "" "opt on" "opt off";
  row "%-22s %10.1f ms %10.1f ms\n" "Fused run" m.fused_run_on m.fused_run_off;
  row "%-22s %10.1f ms %10.1f ms\n" "Fused prepare+run" m.fused_prep_run_on
    m.fused_prep_run_off;
  row "%-22s %12d %12d\n" "Native QUIL operators" m.native_ops_on
    m.native_ops_off;
  row "(one fused predicate evaluates all three tests per element; the\n\
    \ unrewritten plan pays a closure call per Where per element)\n"

(* A Bechamel microbenchmark suite over the Fig. 13 kernels, for
   statistically grounded per-run estimates. *)
let bechamel () =
  header "Bechamel: Fig. 13 kernels (monotonic clock, OLS estimates)";
  require_native "bechamel" @@ fun () ->
  let open Bechamel in
  let open Toolkit in
  let n = scaled 1_000_000 in
  let xs = uniform_floats n in
  let p_sum = Steno.prepare_scalar ~backend:Steno.Native (sum_query xs) in
  let p_sumsq = Steno.prepare_scalar ~backend:Steno.Native (sumsq_query xs) in
  let l_sum = Steno.prepare_scalar ~backend:Steno.Linq (sum_query xs) in
  let l_sumsq = Steno.prepare_scalar ~backend:Steno.Linq (sumsq_query xs) in
  let tests =
    Test.make_grouped ~name:"fig13" ~fmt:"%s %s"
      [
        Test.make ~name:"sum-hand" (Staged.stage (sum_hand xs));
        Test.make ~name:"sum-steno"
          (Staged.stage (fun () -> Steno.Prepared_scalar.run p_sum));
        Test.make ~name:"sum-linq"
          (Staged.stage (fun () -> Steno.Prepared_scalar.run l_sum));
        Test.make ~name:"sumsq-hand" (Staged.stage (sumsq_hand xs));
        Test.make ~name:"sumsq-steno"
          (Staged.stage (fun () -> Steno.Prepared_scalar.run p_sumsq));
        Test.make ~name:"sumsq-linq"
          (Staged.stage (fun () -> Steno.Prepared_scalar.run l_sumsq));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun instance ->
      let results = Analyze.all ols instance raw in
      let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) results []) in
      List.iter
        (fun name ->
          let result = Hashtbl.find results name in
          match Analyze.OLS.estimates result with
          | Some [ est ] -> row "%-24s %12.3f ms/run\n" name (est /. 1e6)
          | Some _ | None -> row "%-24s (no estimate)\n" name)
        names)
    instances

(* Profiled-vs-unprofiled overhead (PR 3): the same query prepared
   through a [profile = false] and a [profile = true] engine, per
   backend, with the hand-written loop as the reference point.  The
   [profile = false] column IS the ordinary execution path — staging
   applies the identity wrapper and generated code carries no probe
   increments — so comparing it against [hand] bounds the cost of
   having the profiling layer compiled in at all. *)
let profile_overhead_rows () =
  let n = scaled 4_000_000 in
  let xs = uniform_floats n in
  let sq = sumsq_query xs in
  let measure backend profile =
    let eng =
      Steno.Engine.(
        create
          {
            default_config with
            backend;
            profile;
            metrics = Metrics.create ();
          })
    in
    let p = Steno.Engine.prepare_scalar eng sq in
    time_ms ~runs:5 (fun () -> Steno.Prepared_scalar.run p)
  in
  let backends =
    [ "linq", Steno.Linq; "fused", Steno.Fused ]
    @ (if native then [ "native", Steno.Native ] else [])
  in
  ( n,
    time_ms ~runs:5 (sumsq_hand xs),
    List.map
      (fun (name, b) ->
        let off = measure b false in
        let on = measure b true in
        name, off, on)
      backends )

let overhead_pct ~off ~on = 100.0 *. ((on /. off) -. 1.0)

let profiling () =
  header "Profiling overhead: profile:false vs profile:true, per backend";
  let n, hand, rows = profile_overhead_rows () in
  row "sumsq over %d doubles (hand loop: %.2f ms), median of 5 runs\n" n hand;
  row "%-8s %12s %12s %10s\n" "backend" "off(ms)" "on(ms)" "overhead";
  List.iter
    (fun (name, off, on) ->
      row "%-8s %12.2f %12.2f %+9.1f%%\n" name off on
        (overhead_pct ~off ~on))
    rows

let json_profile_report file =
  header (Printf.sprintf "profiling JSON report -> %s" file);
  let n, hand, rows = profile_overhead_rows () in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  Printf.fprintf oc
    {|{
  "benchmark": "profile-overhead",
  "query": "sumsq",
  "n": %d,
  "scale": %.3f,
  "native_available": %b,
  "hand_ms": %.3f,
  "backends": {
%s
  }
}
|}
    n !scale native hand
    (String.concat ",\n"
       (List.map
          (fun (name, off, on) ->
            Printf.sprintf
              "    %S: {\"unprofiled_ms\": %.3f, \"profiled_ms\": %.3f, \
               \"overhead_pct\": %.1f}"
              name off on (overhead_pct ~off ~on))
          rows));
  close_out oc;
  List.iter
    (fun (name, off, on) ->
      row "%-8s %.2f ms -> %.2f ms profiled (%+.1f%%)\n" name off on
        (overhead_pct ~off ~on))
    rows

(* ------------------------------------------------------------------ *)
(* PR 6: the serving layer under concurrent load.  Simulated clients on
   the Domain_pool substrate hammer one [Server] over one [Engine] with
   a mixed workload: mostly hot shapes (a handful of query structures,
   compiled once and plugin-cache hits ever after) plus a trickle of
   cold shapes — a unique literal baked into the source gives each cold
   request a cache key nobody else has, i.e. a real compile.  Request
   latency is observed into a log-scale histogram and the percentiles
   are read back from its snapshot, exactly as a scrape would. *)

let serve_clients = ref 64

let serve_requests = ref 10

(* Sampling rate for the traced serve measurement ([--trace-sample],
   default: trace every request). *)
let serve_trace_sample = ref 1.0

(* Smallest bucket bound covering the q-th fraction of observations: the
   percentile as a monitoring system computes it from a histogram. *)
let serve_percentile snap q =
  if snap.Metrics.hs_count = 0 then Float.nan
  else begin
    let target =
      int_of_float (ceil (q *. float_of_int snap.Metrics.hs_count))
    in
    let rec go = function
      | [] -> Float.nan
      | (bound, cum) :: rest -> if cum >= target then bound else go rest
    in
    go snap.Metrics.hs_buckets
  end

type serve_measurements = {
  sv_clients : int;
  sv_requests : int;  (* per client *)
  sv_workers : int;
  sv_inflight : int;
  sv_wall_ms : float;
  sv_throughput : float;  (* completed requests per second *)
  sv_p50 : float;
  sv_p99 : float;
  sv_queue_p99 : float;
  sv_stats : Server.stats;
  sv_compiles : int;
  sv_dedup : int;
  sv_cache : Steno.Engine.cache_stats;
  sv_traces : int;  (* completed traces retained (0 when untraced) *)
  sv_trace_dropped : int;  (* ring overflow head-drops *)
}

let measure_serve ?(tracing = 0.0) () =
  let clients = max 1 !serve_clients in
  let requests = max 1 !serve_requests in
  let reg = Metrics.create () in
  let backend = if native then Steno.Native else Steno.Fused in
  let cfg =
    { Steno.Engine.default_config with
      backend;
      metrics = reg;
      cache_capacity = 128
    }
  in
  let cfg =
    if tracing > 0.0 then
      Steno.Config.with_tracing ~sample:tracing ~slow_ms:50.0 cfg
    else cfg
  in
  let eng = Steno.Engine.create cfg in
  let workers = max 2 (Domain_pool.recommended_workers ()) in
  (* Execution slots match the driver count: with fewer slots than
     drivers (this used to be workers/2, and BENCH_PR6 effectively ran
     one slot against two drivers) every measurement was dominated by
     queue wait rather than query cost.  Admission control still
     engages under a burst: the drivers submit in lockstep. *)
  let inflight = workers in
  let srv =
    Server.create ~max_inflight:inflight ~max_queue:(clients * requests) eng
  in
  let latency =
    Metrics.histogram reg "steno_serve_request_ms"
      ~help:"End-to-end request latency observed by the bench driver"
  in
  let xs = Array.init 512 (fun i -> (i * 37) mod 1009) in
  let hot k =
    Query.sum_int
      (Query.of_array Ty.Int xs |> Query.select (fun x -> I.(x + Expr.int k)))
  in
  let hot_shapes = 4 in
  let cold id =
    let lit = 1_000_000 + id in
    Query.sum_int
      (Query.of_array Ty.Int xs
      |> Query.select (fun x -> I.(x + Expr.int lit)))
  in
  let t0 = Unix.gettimeofday () in
  let per_client =
    Domain_pool.run ~workers ~tasks:clients (fun c ->
        let completed = ref 0 in
        for r = 0 to requests - 1 do
          let id = (c * requests) + r in
          (* One cold request in 16; everything else cycles the hot
             shapes. *)
          let q =
            if id mod 16 = 0 then cold id else hot (id mod hot_shapes)
          in
          let t = Unix.gettimeofday () in
          (match
             Server.submit srv
               ~client_id:(Printf.sprintf "client-%02d" (c mod 32))
               (fun sess -> Steno.Session.scalar sess q)
           with
          | Server.Done _ -> incr completed
          | Server.Rejected _ -> ()
          | Server.Failed e -> raise e);
          Metrics.observe latency (1000.0 *. (Unix.gettimeofday () -. t))
        done;
        !completed)
  in
  let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let completed = Array.fold_left ( + ) 0 per_client in
  let st = Server.stats srv in
  let lat_snap = Metrics.histogram_snapshot latency in
  let queue_snap =
    Metrics.histogram_snapshot
      (Metrics.histogram reg "steno_server_queue_ms")
  in
  {
    sv_clients = clients;
    sv_requests = requests;
    sv_workers = workers;
    sv_inflight = inflight;
    sv_wall_ms = wall_ms;
    sv_throughput = float_of_int completed /. (wall_ms /. 1000.0);
    sv_p50 = serve_percentile lat_snap 0.50;
    sv_p99 = serve_percentile lat_snap 0.99;
    sv_queue_p99 = serve_percentile queue_snap 0.99;
    sv_stats = st;
    sv_compiles =
      Metrics.counter_value
        (Metrics.counter reg "steno_compile" ~labels:[ "result", "ok" ]);
    sv_dedup =
      Metrics.counter_value (Metrics.counter reg "steno_prepare_dedup");
    sv_cache = Steno.Engine.cache_stats eng;
    sv_traces = List.length (Trace.traces (Steno.Engine.tracer eng));
    sv_trace_dropped = Trace.dropped (Steno.Engine.tracer eng);
  }

let serve () =
  header "PR 6: concurrent query service (Server over one shared Engine)";
  let m = measure_serve () in
  row "%d clients x %d requests = %d total; %d pool workers, %d slots\n"
    m.sv_clients m.sv_requests (m.sv_clients * m.sv_requests) m.sv_workers
    m.sv_inflight;
  row "wall time: %.1f ms, throughput: %.0f req/s\n" m.sv_wall_ms
    m.sv_throughput;
  row "latency   p50 %-10.3fms p99 %.3f ms (log-scale histogram buckets)\n"
    m.sv_p50 m.sv_p99;
  row "queue     p99 %.3f ms\n" m.sv_queue_p99;
  row "outcomes: %d completed, %d rejected, %d failed\n"
    m.sv_stats.Server.completed m.sv_stats.Server.rejected
    m.sv_stats.Server.failed;
  row "compiles: %d (flight joins: %d); cache hits %d, misses %d, \
       evictions %d\n"
    m.sv_compiles m.sv_dedup m.sv_cache.Steno.Engine.hits
    m.sv_cache.Steno.Engine.misses m.sv_cache.Steno.Engine.evictions;
  row
    "(hot shapes amortize one compile over every client; single-flight \
     keeps\n\
    \ concurrent cold prepares of one shape down to one compiler run)\n"

let json_serve_report file =
  header (Printf.sprintf "serving-layer JSON report -> %s" file);
  let m = measure_serve () in
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  Printf.fprintf oc
    {|{
  "benchmark": "serve",
  "clients": %d,
  "requests_per_client": %d,
  "total_requests": %d,
  "workers": %d,
  "max_inflight": %d,
  "scale": %.3f,
  "native_available": %b,
  "wall_ms": %s,
  "throughput_rps": %s,
  "p50_ms": %s,
  "p99_ms": %s,
  "queue_p99_ms": %s,
  "accepted": %d,
  "completed": %d,
  "rejected": %d,
  "failed": %d,
  "compiles": %d,
  "dedup_joins": %d,
  "cache": {"hits": %d, "misses": %d, "evictions": %d, "entries": %d}
}
|}
    m.sv_clients m.sv_requests
    (m.sv_clients * m.sv_requests)
    m.sv_workers m.sv_inflight !scale native (fnum m.sv_wall_ms)
    (fnum m.sv_throughput) (fnum m.sv_p50) (fnum m.sv_p99)
    (fnum m.sv_queue_p99) m.sv_stats.Server.accepted
    m.sv_stats.Server.completed m.sv_stats.Server.rejected
    m.sv_stats.Server.failed m.sv_compiles m.sv_dedup
    m.sv_cache.Steno.Engine.hits m.sv_cache.Steno.Engine.misses
    m.sv_cache.Steno.Engine.evictions m.sv_cache.Steno.Engine.entries;
  close_out oc;
  row "%d clients x %d: %.0f req/s, p50 %.3f ms, p99 %.3f ms, %d compiles\n"
    m.sv_clients m.sv_requests m.sv_throughput m.sv_p50 m.sv_p99 m.sv_compiles

(* Machine-readable results for CI trend tracking: the Fig. 1 sumsq
   headline across backends plus the section 7.1 query-cache numbers
   (cold prepare vs cache-hit prepare). *)
let json_report file =
  header (Printf.sprintf "JSON report -> %s" file);
  let n = scaled 10_000_000 in
  let xs = uniform_floats n in
  let sq = sumsq_query xs in
  let t_hand = time_ms (sumsq_hand xs) in
  let linq = Steno.prepare_scalar ~backend:Steno.Linq sq in
  let t_linq = time_ms (fun () -> Steno.Prepared_scalar.run linq) in
  let fused = Steno.prepare_scalar ~backend:Steno.Fused sq in
  let t_fused = time_ms (fun () -> Steno.Prepared_scalar.run fused) in
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let t_native, prepare_cold_ms, prepare_hit_ms =
    if native then begin
      Steno.clear_cache ();
      let p1 = Steno.prepare_scalar ~backend:Steno.Native sq in
      let cold = (Steno.Prepared_scalar.compile_info p1).Steno.prepare_ms in
      let p2 = Steno.prepare_scalar ~backend:Steno.Native sq in
      let hit = (Steno.Prepared_scalar.compile_info p2).Steno.prepare_ms in
      assert (Steno.Prepared_scalar.compile_info p2).Steno.cache_hit;
      time_ms (fun () -> Steno.Prepared_scalar.run p2), cold, hit
    end
    else Float.nan, Float.nan, Float.nan
  in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  let m = measure_optimizer () in
  Printf.fprintf oc
    {|{
  "benchmark": "sumsq",
  "n": %d,
  "scale": %.3f,
  "native_available": %b,
  "linq_ms": %s,
  "fused_ms": %s,
  "native_ms": %s,
  "hand_ms": %s,
  "prepare_cold_ms": %s,
  "prepare_cache_hit_ms": %s,
  "optimizer": {
    "query": "stacked-where-3",
    "n": %d,
    "fused_run_ms_opt": %s,
    "fused_run_ms_noopt": %s,
    "fused_prepare_run_ms_opt": %s,
    "fused_prepare_run_ms_noopt": %s,
    "native_operators_opt": %d,
    "native_operators_noopt": %d,
    "rules": [%s]
  }
}
|}
    n !scale native (fnum t_linq) (fnum t_fused) (fnum t_native) (fnum t_hand)
    (fnum prepare_cold_ms) (fnum prepare_hit_ms) m.opt_n
    (fnum m.fused_run_on) (fnum m.fused_run_off) (fnum m.fused_prep_run_on)
    (fnum m.fused_prep_run_off) m.native_ops_on m.native_ops_off
    (String.concat ", "
       (List.map (Printf.sprintf "%S") m.opt_rules));
  close_out oc;
  row "n = %d: LINQ %.1f ms, Fused %.1f ms, Native %.1f ms, hand %.1f ms\n" n
    t_linq t_fused t_native t_hand;
  row "prepare: %.1f ms cold, %.3f ms on a cache hit\n" prepare_cold_ms
    prepare_hit_ms;
  row
    "optimizer (stacked wheres, n = %d): fused run %.1f -> %.1f ms, \
     operators %d -> %d\n"
    m.opt_n m.fused_run_off m.fused_run_on m.native_ops_off m.native_ops_on

(* {1 PR 7: tiered execution and the persistent plugin cache}

   Three cold-prepare figures for one query shape — full in-process
   compile, compile+publish into a fresh on-disk store, and a cold
   process hitting the warm store — plus a tiering warm-up curve: the
   run-by-run latency of a tiered preparation from its first Fused run
   through the background promotion to Native. *)

type tier_measurements = {
  tm_threshold : int;
  tm_compile_cold_ms : float;  (* fresh engine, no disk cache *)
  tm_pcache_cold_ms : float;  (* fresh store: compile + publish *)
  tm_pcache_warm_ms : float;  (* new engine on the warm store *)
  tm_warm_is_hit : bool;  (* the warm prepare compiled nothing *)
  tm_warm_compiles : int;  (* compiler runs seen by the warm engine *)
  tm_pcache_hits : int;
  tm_promotion_ms : float;  (* threshold crossing -> Native observed *)
  tm_promoted : bool;
  tm_curve : (int * string * float) list;  (* run #, live tier, ms *)
  tm_diverged : bool;  (* any run result != Reference result *)
}

let measure_tier () =
  let xs = Array.init 4096 (fun i -> (i * 31) mod 977) in
  let shape k =
    Query.sum_int
      (Query.of_array Ty.Int xs |> Query.select (fun x -> I.(x + Expr.int k)))
  in
  (* Literals no other experiment uses, so the generated source (and
     hence every cache key) is private to this measurement. *)
  let sq_cache = shape 7_424_242 in
  let sq_tier = shape 7_424_243 in
  let expected =
    Steno.Prepared_scalar.run
      (Steno.prepare_scalar ~backend:Steno.Linq sq_tier)
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "steno-bench-pcache-%d" (Unix.getpid ()))
  in
  let prepare_ms cfg sq =
    let eng = Steno.Engine.create cfg in
    let p = Steno.Engine.prepare_scalar eng sq in
    let i = Steno.Prepared_scalar.compile_info p in
    i.Steno.prepare_ms, i.Steno.cache_hit, eng
  in
  let compile_cold, pcache_cold, pcache_warm, warm_hit, warm_compiles,
      pcache_hits =
    if not native then Float.nan, Float.nan, Float.nan, false, 0, 0
    else begin
      let base reg =
        Steno.Config.(
          default |> with_backend Steno.Native
          |> with_metrics reg)
      in
      let cold_ms, _, _ = prepare_ms (base (Metrics.create ())) sq_cache in
      let store_ms, _, _ =
        prepare_ms
          (base (Metrics.create ()) |> Steno.Config.with_disk_cache ~dir)
          sq_cache
      in
      (* A different engine (fresh LRU, fresh metrics) on the same
         store: this is the restarted process paying only the dynlink
         load. *)
      let warm_reg = Metrics.create () in
      let warm_ms, warm_hit, warm_eng =
        prepare_ms
          (base warm_reg |> Steno.Config.with_disk_cache ~dir)
          sq_cache
      in
      let warm_compiles =
        Metrics.counter_value
          (Metrics.counter warm_reg "steno_compile" ~labels:[ "result", "ok" ])
      in
      let hits =
        match Steno.Engine.pcache_stats warm_eng with
        | Some s -> s.Pcache.st_hits
        | None -> 0
      in
      cold_ms, store_ms, warm_ms, warm_hit, warm_compiles, hits
    end
  in
  (* Best-effort cleanup of the scratch store. *)
  (try
     let rec rm d =
       Sys.readdir d
       |> Array.iter (fun f ->
              let p = Filename.concat d f in
              if Sys.is_directory p then rm p else Sys.remove p);
       Unix.rmdir d
     in
     if Sys.file_exists dir then rm dir
   with _ -> ());
  (* The warm-up curve: a tiered engine (threshold 3) with no disk
     cache, so the promotion pays a real background compile. *)
  let threshold = 3 in
  let tier_eng =
    Steno.Engine.create
      Steno.Config.(
        default |> with_backend Steno.Native
        |> with_metrics (Metrics.create ())
        |> with_tiering ~threshold)
  in
  let p = Steno.Engine.prepare_scalar tier_eng sq_tier in
  let diverged = ref false in
  let timed_run n =
    let tier = Steno.backend_name (Steno.Prepared_scalar.backend_used p) in
    let t0 = Unix.gettimeofday () in
    let r = Steno.Prepared_scalar.run p in
    let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    if r <> expected then diverged := true;
    n, tier, ms
  in
  let head = List.init threshold (fun i -> timed_run (i + 1)) in
  (* The threshold run queued the background compile; wait (bounded)
     for the hot swap, measuring promotion latency as observed by a
     client polling the live tier. *)
  let t_promote = Unix.gettimeofday () in
  let deadline = t_promote +. 10.0 in
  let rec await () =
    if Steno.Prepared_scalar.backend_used p = Steno.Native then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.005;
      await ()
    end
  in
  let promoted = native && await () in
  let promotion_ms =
    if promoted then 1000.0 *. (Unix.gettimeofday () -. t_promote)
    else Float.nan
  in
  let tail =
    List.init 3 (fun i -> timed_run (threshold + i + 1))
  in
  {
    tm_threshold = threshold;
    tm_compile_cold_ms = compile_cold;
    tm_pcache_cold_ms = pcache_cold;
    tm_pcache_warm_ms = pcache_warm;
    tm_warm_is_hit = warm_hit;
    tm_warm_compiles = warm_compiles;
    tm_pcache_hits = pcache_hits;
    tm_promotion_ms = promotion_ms;
    tm_promoted = promoted;
    tm_curve = head @ tail;
    tm_diverged = !diverged;
  }

let tier () =
  header "PR 7: tiered execution + persistent plugin cache";
  let m = measure_tier () in
  if native then begin
    row "cold prepare: %.1f ms compile-only, %.1f ms compile+publish\n"
      m.tm_compile_cold_ms m.tm_pcache_cold_ms;
    row "warm-store prepare (new engine): %.3f ms (%.0fx faster; %d \
         compiler runs, %d disk hits)\n"
      m.tm_pcache_warm_ms
      (m.tm_compile_cold_ms /. m.tm_pcache_warm_ms)
      m.tm_warm_compiles m.tm_pcache_hits
  end
  else row "native compiler unavailable: pcache figures skipped\n";
  row "tiering warm-up (threshold %d):\n" m.tm_threshold;
  List.iter
    (fun (n, tier, ms) -> row "  run %d: %-6s %.3f ms\n" n tier ms)
    m.tm_curve;
  if m.tm_promoted then
    row "promoted to native %.1f ms after the threshold run%s\n"
      m.tm_promotion_ms
      (if m.tm_diverged then "; RESULTS DIVERGED" else "; results identical")
  else row "no promotion (native unavailable or compile failed)\n"

let json_tier_report file =
  header (Printf.sprintf "tiering/pcache JSON report -> %s" file);
  let m = measure_tier () in
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  Printf.fprintf oc
    {|{
  "benchmark": "tier",
  "scale": %.3f,
  "native_available": %b,
  "threshold": %d,
  "compile_cold_prepare_ms": %s,
  "pcache_cold_prepare_ms": %s,
  "pcache_warm_prepare_ms": %s,
  "pcache_speedup": %s,
  "pcache_warm_is_hit": %b,
  "pcache_warm_compiles": %d,
  "pcache_hits": %d,
  "promoted": %b,
  "promotion_ms": %s,
  "diverged": %b,
  "warmup_curve": [%s]
}
|}
    !scale native m.tm_threshold
    (fnum m.tm_compile_cold_ms)
    (fnum m.tm_pcache_cold_ms)
    (fnum m.tm_pcache_warm_ms)
    (fnum (m.tm_compile_cold_ms /. m.tm_pcache_warm_ms))
    m.tm_warm_is_hit m.tm_warm_compiles m.tm_pcache_hits m.tm_promoted
    (fnum m.tm_promotion_ms) m.tm_diverged
    (String.concat ", "
       (List.map
          (fun (n, tier, ms) ->
            Printf.sprintf {|{"run": %d, "tier": %S, "ms": %s}|} n tier
              (fnum ms))
          m.tm_curve));
  close_out oc;
  row "warm-store prepare %s ms vs %s ms compile; promoted: %b\n"
    (fnum m.tm_pcache_warm_ms)
    (fnum m.tm_compile_cold_ms)
    m.tm_promoted

(* {1 PR 8: tracing overhead}

   Two figures.  The serve-layer delta re-runs the PR 6 stress with
   request tracing off and on, comparing throughput and latency — the
   end-to-end price of the ops plane.  The hot-path figure isolates the
   per-request mechanics (trace root, ring push, bridged run span) on a
   fixed-size fused run where query cost dominates, because that is the
   path a production request takes once everything is cached; the CI
   gate holds its overhead under 10%. *)

type trace_overhead = {
  to_run_off_ms : float;  (* median untraced request *)
  to_run_traced_ms : float;  (* median fully-traced request *)
  to_overhead_pct : float;
}

let measure_trace_overhead () =
  (* Fixed size, independent of --scale: the gate compares the trace
     mechanics (microseconds) against a realistic request (hundreds of
     microseconds), and shrinking the query with the scale would turn
     the gate into a measurement of the mechanics alone. *)
  let n = 200_000 in
  let xs = Array.init n (fun i -> i land 1023) in
  let q =
    Query.sum_int
      (Query.of_array Ty.Int xs |> Query.select (fun x -> I.(x * x)))
  in
  let off_eng =
    Steno.Engine.(create { default_config with metrics = Metrics.create () })
  in
  let traced_eng =
    Steno.Engine.create
      Steno.Config.(
        default |> with_metrics (Metrics.create ()) |> with_tracing ~sample:1.0)
  in
  let request eng ~traced =
    let p = Steno.Engine.prepare_scalar ~backend:Steno.Fused eng q in
    let tracer = Steno.Engine.tracer eng in
    fun () ->
      if traced then
        Trace.with_trace tracer "request" (fun () ->
            ignore (Steno.Prepared_scalar.run p))
      else ignore (Steno.Prepared_scalar.run p)
  in
  let run_off = request off_eng ~traced:false in
  let run_traced = request traced_eng ~traced:true in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    1000.0 *. (Unix.gettimeofday () -. t0)
  in
  (* Interleave the samples: machine-state drift (GC, frequency, noisy
     neighbours) then lands on both sides equally instead of biasing
     whichever engine was measured second. *)
  run_off ();
  run_traced ();
  let off_samples = ref [] and traced_samples = ref [] in
  for _ = 1 to 21 do
    off_samples := time run_off :: !off_samples;
    traced_samples := time run_traced :: !traced_samples
  done;
  let median samples = List.nth (List.sort compare samples) 10 in
  let off = median !off_samples in
  let traced = median !traced_samples in
  {
    to_run_off_ms = off;
    to_run_traced_ms = traced;
    to_overhead_pct = (if off > 0.0 then 100.0 *. (traced -. off) /. off
                       else Float.nan);
  }

let json_trace_report file =
  header (Printf.sprintf "tracing-overhead JSON report -> %s" file);
  let sample = !serve_trace_sample in
  let m_off = measure_serve () in
  let m_on = measure_serve ~tracing:sample () in
  let hot = measure_trace_overhead () in
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  Printf.fprintf oc
    {|{
  "benchmark": "trace",
  "scale": %.3f,
  "native_available": %b,
  "trace_sample": %.3f,
  "clients": %d,
  "requests_per_client": %d,
  "serve_off": {"throughput_rps": %s, "p50_ms": %s, "p99_ms": %s},
  "serve_traced": {"throughput_rps": %s, "p50_ms": %s, "p99_ms": %s,
                   "traces": %d, "trace_dropped": %d},
  "serve_throughput_delta_pct": %s,
  "hot_run_off_ms": %s,
  "hot_run_traced_ms": %s,
  "hot_overhead_pct": %s
}
|}
    !scale native sample m_off.sv_clients m_off.sv_requests
    (fnum m_off.sv_throughput) (fnum m_off.sv_p50) (fnum m_off.sv_p99)
    (fnum m_on.sv_throughput) (fnum m_on.sv_p50) (fnum m_on.sv_p99)
    m_on.sv_traces m_on.sv_trace_dropped
    (fnum
       (if m_off.sv_throughput > 0.0 then
          100.0
          *. (m_off.sv_throughput -. m_on.sv_throughput)
          /. m_off.sv_throughput
        else Float.nan))
    (fnum hot.to_run_off_ms) (fnum hot.to_run_traced_ms)
    (fnum hot.to_overhead_pct);
  close_out oc;
  row "serve: %.0f req/s untraced vs %.0f req/s traced (sample %.2f, %d \
       traces)\n"
    m_off.sv_throughput m_on.sv_throughput sample m_on.sv_traces;
  row "hot path: %.3f ms -> %.3f ms (%.1f%% overhead)\n" hot.to_run_off_ms
    hot.to_run_traced_ms hot.to_overhead_pct

let trace_bench () =
  header "PR 8: request-tracing overhead";
  let hot = measure_trace_overhead () in
  row "hot path: %.3f ms untraced, %.3f ms traced (%.1f%% overhead)\n"
    hot.to_run_off_ms hot.to_run_traced_ms hot.to_overhead_pct

(* PR 10: the adversarial case for static filter ordering — an
   expensive, almost-always-true predicate written before a cheap,
   highly selective one.  The syntactic optimizer cannot reorder them
   (it has no cost model), so the static plan evaluates the expensive
   predicate on every row.  The adaptive pass measures both
   selectivities during profiled runs and the second preparation puts
   the cheap filter first. *)

let adaptive_input n = Array.init n (fun i -> (i * 37) mod 1009)

(* Expensive and opaque to the interval analysis (a provably-true
   predicate would be deleted, not reordered): an iterated hash
   compared one below the top of its range. *)
let adaptive_expensive x =
  let h = ref I.(x * Expr.int 131 + Expr.int 7) in
  for _ = 1 to 6 do
    h := I.(((!h mod Expr.int 1000003) * Expr.int 131) + Expr.int 7)
  done;
  I.(!h mod Expr.int 1000003 < Expr.int 1000002)

let adaptive_cheap x = I.(x mod Expr.int 997 = Expr.int 0)

type adaptive_measure = {
  ad_rows : int;
  ad_static_ms : float;
  ad_adaptive_ms : float;
  ad_reordered : bool;
  ad_decisions : string list;
}

let measure_adaptive () =
  let n = scaled 200_000 in
  let xs = adaptive_input n in
  let q =
    Query.of_array Ty.Int xs
    |> Query.where adaptive_expensive
    |> Query.where adaptive_cheap
  in
  let eng =
    Steno.Engine.create
      Steno.Config.(
        default |> with_backend Steno.Fused |> with_profile true
        |> with_adaptive)
  in
  (* Both preparations run on the same profiled engine, so the probe
     overhead cancels: the first sees no statistics and keeps the
     written (pessimal) order, the second consumes the selectivities
     the first's runs recorded. *)
  let p1 = Steno.Engine.prepare eng q in
  let static_ms = time_ms ~runs:5 (fun () -> Steno.Prepared.run p1) in
  let p2 = Steno.Engine.prepare eng q in
  let adaptive_ms = time_ms ~runs:5 (fun () -> Steno.Prepared.run p2) in
  {
    ad_rows = n;
    ad_static_ms = static_ms;
    ad_adaptive_ms = adaptive_ms;
    ad_reordered =
      (* The log may annotate a repeated firing ("... (x2)"), so match
         the rule name as a prefix. *)
      (let rule = "stats-where-reorder" in
       List.exists
         (fun r ->
           String.length r >= String.length rule
           && String.sub r 0 (String.length rule) = rule)
         (Steno.Prepared.rewrite_log p2));
    ad_decisions = Steno.Prepared.decisions p2;
  }

let adaptive_bench () =
  header "PR 10: cost-based adaptive reorder (statically pessimal filters)";
  let m = measure_adaptive () in
  row "static order:   %.3f ms (%d rows)\n" m.ad_static_ms m.ad_rows;
  row "adaptive order: %.3f ms (reordered: %b, %.2fx)\n" m.ad_adaptive_ms
    m.ad_reordered
    (if m.ad_adaptive_ms > 0.0 then m.ad_static_ms /. m.ad_adaptive_ms
     else Float.nan);
  List.iter (fun d -> row "  %s\n" d) m.ad_decisions

let json_adaptive_report file =
  header (Printf.sprintf "adaptive JSON report -> %s" file);
  let m = measure_adaptive () in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" file msg;
      exit 2
  in
  Printf.fprintf oc
    {|{
  "benchmark": "adaptive",
  "scale": %.3f,
  "native_available": %b,
  "rows": %d,
  "static_order_ms": %.3f,
  "adaptive_order_ms": %.3f,
  "speedup": %.3f,
  "reordered": %b,
  "decisions": [%s]
}
|}
    !scale native m.ad_rows m.ad_static_ms m.ad_adaptive_ms
    (if m.ad_adaptive_ms > 0.0 then m.ad_static_ms /. m.ad_adaptive_ms
     else 0.0)
    m.ad_reordered
    (String.concat ", " (List.map (Printf.sprintf "%S") m.ad_decisions));
  close_out oc;
  row "static %.3f ms -> adaptive %.3f ms (reordered: %b)\n" m.ad_static_ms
    m.ad_adaptive_ms m.ad_reordered

let experiments =
  [
    "fig1", fig1;
    "fig13", fig13;
    "breakeven", breakeven;
    "fig14", fig14;
    "ablation-gba", ablation_gba;
    "ablation-chain", ablation_chain;
    "ablation-backend", ablation_backend;
    "ablation-join", ablation_join;
    "ablation-sorted", ablation_sorted_group;
    "ablation-early-exit", ablation_early_exit;
    "optimizer", optimizer;
    "par", par_scaling;
    "par-agg", par_agg;
    "profiling", profiling;
    "serve", serve;
    "tier", tier;
    "trace", trace_bench;
    "adaptive", adaptive_bench;
    "bechamel", bechamel;
  ]

let () =
  let args = Array.to_list Sys.argv in
  let json_file = ref None in
  let json_profile_file = ref None in
  let json_par_file = ref None in
  let json_serve_file = ref None in
  let json_tier_file = ref None in
  let json_trace_file = ref None in
  let json_adaptive_file = ref None in
  let rec parse = function
    | [] -> []
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--clients" :: v :: rest ->
      serve_clients := int_of_string v;
      parse rest
    | "--requests" :: v :: rest ->
      serve_requests := int_of_string v;
      parse rest
    | "--trace-sample" :: v :: rest ->
      serve_trace_sample := float_of_string v;
      parse rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--json-profile" :: file :: rest ->
      json_profile_file := Some file;
      parse rest
    | "--json-par" :: file :: rest ->
      json_par_file := Some file;
      parse rest
    | "--json-serve" :: file :: rest ->
      json_serve_file := Some file;
      parse rest
    | "--json-tier" :: file :: rest ->
      json_tier_file := Some file;
      parse rest
    | "--json-trace" :: file :: rest ->
      json_trace_file := Some file;
      parse rest
    | "--json-adaptive" :: file :: rest ->
      json_adaptive_file := Some file;
      parse rest
    | [
        ( "--scale" | "--clients" | "--requests" | "--trace-sample" | "--json"
        | "--json-profile" | "--json-par" | "--json-serve" | "--json-tier"
        | "--json-trace" | "--json-adaptive" ) as flag;
      ] ->
      Printf.eprintf "%s requires a value\n" flag;
      exit 2
    | x :: rest -> x :: parse rest
  in
  let picks = parse (List.tl args) in
  let json_requested =
    [
      !json_file; !json_profile_file; !json_par_file; !json_serve_file;
      !json_tier_file; !json_trace_file; !json_adaptive_file;
    ]
    |> List.exists Option.is_some
  in
  let named =
    match picks with
    | [] when json_requested ->
      [] (* a --json* flag alone: just those measurements *)
    | [] -> List.map fst experiments
    | picks -> picks
  in
  Printf.printf "Steno benchmark harness (scale = %.2f, native = %b)\n" !scale
    native;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    named;
  Option.iter json_report !json_file;
  Option.iter json_profile_report !json_profile_file;
  Option.iter json_par_report !json_par_file;
  Option.iter json_serve_report !json_serve_file;
  Option.iter json_tier_report !json_tier_file;
  Option.iter json_trace_report !json_trace_file;
  Option.iter json_adaptive_report !json_adaptive_file
