(** The unoptimized baseline: interpret a query as a chain of pull
    iterators, exactly as LINQ-to-objects executes (section 2 of the
    paper).

    Staging happens once per query ([stage] walks the AST and compiles
    every lambda to a closure — the analog of expression-tree-to-delegate
    compilation); each run then pays the full iterator protocol: two
    indirect calls per element per operator plus one per lambda, times the
    nesting depth. *)

val stage : 'a Query.t -> Expr.Open.env -> 'a Enumerable.t
(** Build the iterator pipeline for a collection query.  The environment
    supplies values for free variables (used by nested subqueries). *)

val stage_sq : 's Query.sq -> Expr.Open.env -> 's
(** Build the eager evaluator for a scalar query. *)

type wrapper = { wrap : 'x. string -> 'x Enumerable.t -> 'x Enumerable.t }
(** A staging-time decorator applied to every top-level operator's output
    enumerable; the [string] is an operator label ("select", "where",
    ...).  [wrap label] is evaluated once per operator at staging, so a
    profiling wrapper allocates its probe point there and only the
    returned decorator runs per preparation. *)

val unprobed : wrapper
(** The identity wrapper: [stage] is [stage_probed unprobed]. *)

val stage_probed : wrapper -> 'a Query.t -> Expr.Open.env -> 'a Enumerable.t
(** [stage] with a wrapper around every top-level operator (source to
    sink order).  Nested sub-queries stage unprobed: their cost is
    attributed to the enclosing operator. *)

val stage_sq_probed : wrapper -> 's Query.sq -> Expr.Open.env -> 's
(** Scalar variant: the collection part of the query is wrapped; the
    eager terminal operator itself is not a point. *)

val run : 'a Query.t -> 'a Enumerable.t
(** [stage] applied to the empty environment. *)

val run_sq : 's Query.sq -> 's

val to_array : 'a Query.t -> 'a array
val to_list : 'a Query.t -> 'a list
