type order =
  | Ascending
  | Descending

type _ t =
  | Of_array : 'a Ty.t * 'a array Expr.t -> 'a t
  | Range : int Expr.t * int Expr.t -> int t
  | Repeat : 'a Ty.t * 'a Expr.t * int Expr.t -> 'a t
  | Select : 'a t * ('a, 'b) Expr.lam -> 'b t
  | Select_i : 'a t * (int, 'a, 'b) Expr.lam2 -> 'b t
  | Select_q : 'a t * 'a Expr.var * 'b sq -> 'b t
  | Where : 'a t * ('a, bool) Expr.lam -> 'a t
  | Where_i : 'a t * (int, 'a, bool) Expr.lam2 -> 'a t
  | Where_q : 'a t * 'a Expr.var * bool sq -> 'a t
  | Take : 'a t * int Expr.t -> 'a t
  | Skip : 'a t * int Expr.t -> 'a t
  | Take_while : 'a t * ('a, bool) Expr.lam -> 'a t
  | Skip_while : 'a t * ('a, bool) Expr.lam -> 'a t
  | Select_many : 'a t * 'a Expr.var * 'b t -> 'b t
  | Select_many_result :
      'a t * 'a Expr.var * 'b t * ('a, 'b, 'c) Expr.lam2
      -> 'c t
  | Join :
      'a t * 'b t * ('a, 'k) Expr.lam * ('b, 'k) Expr.lam
      * ('a, 'b, 'c) Expr.lam2
      -> 'c t
  | Group_by : 'a t * ('a, 'k) Expr.lam -> ('k * 'a array) t
  | Group_by_elem :
      'a t * ('a, 'k) Expr.lam * ('a, 'e) Expr.lam
      -> ('k * 'e array) t
  | Group_by_agg :
      'a t * ('a, 'k) Expr.lam * 's Expr.t * ('s, 'a, 's) Expr.lam2
      -> ('k * 's) t
  | Order_by : 'a t * ('a, 'k) Expr.lam * order -> 'a t
  | Distinct : 'a t -> 'a t
  | Rev : 'a t -> 'a t
  | Materialize : 'a t -> 'a t

and _ sq =
  | Aggregate : 'a t * 's Expr.t * ('s, 'a, 's) Expr.lam2 -> 's sq
  | Aggregate_full :
      'a t * 's Expr.t * ('s, 'a, 's) Expr.lam2 * ('s, 'r) Expr.lam
      -> 'r sq
  | Aggregate_combinable :
      'a t * 's Expr.t * ('s, 'a, 's) Expr.lam2 * ('s -> 's -> 's)
      -> 's sq
  | Sum_int : int t -> int sq
  | Sum_float : float t -> float sq
  | Count : 'a t -> int sq
  | Average : float t -> float sq
  | Min : 'a t -> 'a sq
  | Max : 'a t -> 'a sq
  | Min_by : 'a t * ('a, 'k) Expr.lam -> 'a sq
  | Max_by : 'a t * ('a, 'k) Expr.lam -> 'a sq
  | First : 'a t -> 'a sq
  | Last : 'a t -> 'a sq
  | Element_at : 'a t * int Expr.t -> 'a sq
  | Any : 'a t -> bool sq
  | Exists : 'a t * ('a, bool) Expr.lam -> bool sq
  | For_all : 'a t * ('a, bool) Expr.lam -> bool sq
  | Contains : 'a t * 'a Expr.t -> bool sq
  | Map_scalar : 's sq * ('s, 'r) Expr.lam -> 'r sq

let rec elem_ty : type a. a t -> a Ty.t = function
  | Of_array (ty, _) -> ty
  | Range (_, _) -> Ty.Int
  | Repeat (ty, _, _) -> ty
  | Select (_, lam) -> Expr.ty_of lam.Expr.body
  | Select_i (_, lam2) -> Expr.ty_of lam2.Expr.body2
  | Select_q (_, _, sq) -> scalar_ty sq
  | Where (q, _) -> elem_ty q
  | Where_i (q, _) -> elem_ty q
  | Where_q (q, _, _) -> elem_ty q
  | Take (q, _) -> elem_ty q
  | Skip (q, _) -> elem_ty q
  | Take_while (q, _) -> elem_ty q
  | Skip_while (q, _) -> elem_ty q
  | Select_many (_, _, inner) -> elem_ty inner
  | Select_many_result (_, _, _, lam2) -> Expr.ty_of lam2.Expr.body2
  | Join (_, _, _, _, lam2) -> Expr.ty_of lam2.Expr.body2
  | Group_by (q, key) ->
    Ty.Pair (Expr.ty_of key.Expr.body, Ty.Array (elem_ty q))
  | Group_by_elem (_, key, elem) ->
    Ty.Pair (Expr.ty_of key.Expr.body, Ty.Array (Expr.ty_of elem.Expr.body))
  | Group_by_agg (_, key, seed, _) ->
    Ty.Pair (Expr.ty_of key.Expr.body, Expr.ty_of seed)
  | Order_by (q, _, _) -> elem_ty q
  | Distinct q -> elem_ty q
  | Rev q -> elem_ty q
  | Materialize q -> elem_ty q

and scalar_ty : type s. s sq -> s Ty.t = function
  | Aggregate (_, seed, _) -> Expr.ty_of seed
  | Aggregate_full (_, _, _, result) -> Expr.ty_of result.Expr.body
  | Aggregate_combinable (_, seed, _, _) -> Expr.ty_of seed
  | Sum_int _ -> Ty.Int
  | Sum_float _ -> Ty.Float
  | Count _ -> Ty.Int
  | Average _ -> Ty.Float
  | Min q -> elem_ty q
  | Max q -> elem_ty q
  | Min_by (q, _) -> elem_ty q
  | Max_by (q, _) -> elem_ty q
  | First q -> elem_ty q
  | Last q -> elem_ty q
  | Element_at (q, _) -> elem_ty q
  | Any _ -> Ty.Bool
  | Exists (_, _) -> Ty.Bool
  | For_all (_, _) -> Ty.Bool
  | Contains (_, _) -> Ty.Bool
  | Map_scalar (_, lam) -> Expr.ty_of lam.Expr.body

(* Combinators. *)

let of_array ty arr = Of_array (ty, Expr.capture (Ty.Array ty) arr)

let range ~start ~count = Range (Expr.int start, Expr.int count)

let repeat ty v ~count = Repeat (ty, Expr.capture ty v, Expr.int count)

let mk_lam name q f = Expr.lam name (elem_ty q) f

let select f q = Select (q, mk_lam "x" q f)

let select_i f q = Select_i (q, Expr.lam2 "i" Ty.Int "x" (elem_ty q) f)

let where p q = Where (q, mk_lam "x" q p)

let where_i p q = Where_i (q, Expr.lam2 "i" Ty.Int "x" (elem_ty q) p)

let take n q = Take (q, Expr.int n)

let skip n q = Skip (q, Expr.int n)

let take_while p q = Take_while (q, mk_lam "x" q p)

let skip_while p q = Skip_while (q, mk_lam "x" q p)

let select_many f q =
  let v = Expr.fresh_var "x" (elem_ty q) in
  Select_many (q, v, f (Expr.Var v))

let select_many_result f result q =
  let v = Expr.fresh_var "x" (elem_ty q) in
  let inner = f (Expr.Var v) in
  let lam2 =
    Expr.lam2 "x" (elem_ty q) "y" (elem_ty inner) (fun _ y ->
        result (Expr.Var v) y)
  in
  (* The result selector must mention the same outer variable as the inner
     query, so rebuild it with [v] as its first parameter. *)
  let lam2 = { lam2 with Expr.param1 = v } in
  Select_many_result (q, v, inner, lam2)

let select_sq f q =
  let v = Expr.fresh_var "x" (elem_ty q) in
  Select_q (q, v, f (Expr.Var v))

let where_sq f q =
  let v = Expr.fresh_var "x" (elem_ty q) in
  Where_q (q, v, f (Expr.Var v))

let join ~inner ~outer_key ~inner_key ~result outer =
  let ok = mk_lam "o" outer outer_key in
  let ik = mk_lam "i" inner inner_key in
  let res =
    Expr.lam2 "o" (elem_ty outer) "i" (elem_ty inner) result
  in
  Join (outer, inner, ok, ik, res)

let group_by key q = Group_by (q, mk_lam "x" q key)

let group_by_elem ~key ~elem q =
  Group_by_elem (q, mk_lam "x" q key, mk_lam "x" q elem)

let group_by_agg ~key ~seed ~step q =
  let step_lam =
    Expr.lam2 "acc" (Expr.ty_of seed) "x" (elem_ty q) step
  in
  Group_by_agg (q, mk_lam "x" q key, seed, step_lam)

let order_by ?(order = Ascending) key q = Order_by (q, mk_lam "x" q key, order)

let distinct q = Distinct q

let rev q = Rev q

let materialize q = Materialize q

let aggregate ?combine ~seed ~step q =
  let step_lam = Expr.lam2 "acc" (Expr.ty_of seed) "x" (elem_ty q) step in
  match combine with
  | None -> Aggregate (q, seed, step_lam)
  | Some c -> Aggregate_combinable (q, seed, step_lam, c)

let aggregate_full ~seed ~step ~result q =
  let step_lam = Expr.lam2 "acc" (Expr.ty_of seed) "x" (elem_ty q) step in
  let result_lam = Expr.lam "acc" (Expr.ty_of seed) result in
  Aggregate_full (q, seed, step_lam, result_lam)

let sum_int q = Sum_int q
let sum_float q = Sum_float q
let count q = Count q
let average q = Average q
let min_elt q = Min q
let max_elt q = Max q
let min_by key q = Min_by (q, mk_lam "x" q key)
let max_by key q = Max_by (q, mk_lam "x" q key)
let first q = First q
let last q = Last q
let element_at n q = Element_at (q, Expr.int n)
let any q = Any q
let exists p q = Exists (q, mk_lam "x" q p)
let for_all p q = For_all (q, mk_lam "x" q p)
let contains v q = Contains (q, v)

let map_scalar f sq =
  Map_scalar (sq, Expr.lam "r" (scalar_ty sq) f)

let sum_by_int f q = sum_int (select f q)
let sum_by_float f q = sum_float (select f q)
let average_by f q = average (select f q)
let count_where p q = count (where p q)

(* Structure. *)

let rec operator_count : type a. a t -> int = function
  | Of_array _ | Range _ | Repeat _ -> 1
  | Select (q, _) -> 1 + operator_count q
  | Select_i (q, _) -> 1 + operator_count q
  | Select_q (q, _, sq) -> 1 + operator_count q + sq_operator_count sq
  | Where (q, _) -> 1 + operator_count q
  | Where_i (q, _) -> 1 + operator_count q
  | Where_q (q, _, sq) -> 1 + operator_count q + sq_operator_count sq
  | Take (q, _) -> 1 + operator_count q
  | Skip (q, _) -> 1 + operator_count q
  | Take_while (q, _) -> 1 + operator_count q
  | Skip_while (q, _) -> 1 + operator_count q
  | Select_many (q, _, inner) -> 1 + operator_count q + operator_count inner
  | Select_many_result (q, _, inner, _) ->
    1 + operator_count q + operator_count inner
  | Join (outer, inner, _, _, _) ->
    1 + operator_count outer + operator_count inner
  | Group_by (q, _) -> 1 + operator_count q
  | Group_by_elem (q, _, _) -> 1 + operator_count q
  | Group_by_agg (q, _, _, _) -> 1 + operator_count q
  | Order_by (q, _, _) -> 1 + operator_count q
  | Distinct q -> 1 + operator_count q
  | Rev q -> 1 + operator_count q
  | Materialize q -> 1 + operator_count q

and sq_operator_count : type s. s sq -> int = function
  | Aggregate (q, _, _) -> 1 + operator_count q
  | Aggregate_full (q, _, _, _) -> 1 + operator_count q
  | Aggregate_combinable (q, _, _, _) -> 1 + operator_count q
  | Sum_int q -> 1 + operator_count q
  | Sum_float q -> 1 + operator_count q
  | Count q -> 1 + operator_count q
  | Average q -> 1 + operator_count q
  | Min q -> 1 + operator_count q
  | Max q -> 1 + operator_count q
  | Min_by (q, _) -> 1 + operator_count q
  | Max_by (q, _) -> 1 + operator_count q
  | First q -> 1 + operator_count q
  | Last q -> 1 + operator_count q
  | Element_at (q, _) -> 1 + operator_count q
  | Any q -> 1 + operator_count q
  | Exists (q, _) -> 1 + operator_count q
  | For_all (q, _) -> 1 + operator_count q
  | Contains (q, _) -> 1 + operator_count q
  | Map_scalar (sq, _) -> sq_operator_count sq

let rec depth : type a. a t -> int = function
  | Of_array _ | Range _ | Repeat _ -> 1
  | Select (q, _) -> depth q
  | Select_i (q, _) -> depth q
  | Select_q (q, _, sq) -> max (depth q) (1 + sq_depth sq)
  | Where (q, _) -> depth q
  | Where_i (q, _) -> depth q
  | Where_q (q, _, sq) -> max (depth q) (1 + sq_depth sq)
  | Take (q, _) -> depth q
  | Skip (q, _) -> depth q
  | Take_while (q, _) -> depth q
  | Skip_while (q, _) -> depth q
  | Select_many (q, _, inner) -> max (depth q) (1 + depth inner)
  | Select_many_result (q, _, inner, _) -> max (depth q) (1 + depth inner)
  | Join (outer, inner, _, _, _) -> max (depth outer) (1 + depth inner)
  | Group_by (q, _) -> depth q
  | Group_by_elem (q, _, _) -> depth q
  | Group_by_agg (q, _, _, _) -> depth q
  | Order_by (q, _, _) -> depth q
  | Distinct q -> depth q
  | Rev q -> depth q
  | Materialize q -> depth q

and sq_depth : type s. s sq -> int = function
  | Aggregate (q, _, _) -> depth q
  | Aggregate_full (q, _, _, _) -> depth q
  | Aggregate_combinable (q, _, _, _) -> depth q
  | Sum_int q -> depth q
  | Sum_float q -> depth q
  | Count q -> depth q
  | Average q -> depth q
  | Min q -> depth q
  | Max q -> depth q
  | Min_by (q, _) -> depth q
  | Max_by (q, _) -> depth q
  | First q -> depth q
  | Last q -> depth q
  | Element_at (q, _) -> depth q
  | Any q -> depth q
  | Exists (q, _) -> depth q
  | For_all (q, _) -> depth q
  | Contains (q, _) -> depth q
  | Map_scalar (sq, _) -> sq_depth sq

(* Printing: linearize each chain source-first. *)

let rec chain : type a. a t -> string list = function
  | Of_array (ty, _) -> [ Printf.sprintf "Src<%s>" (Ty.to_string ty) ]
  | Range (_, _) -> [ "Src:Range" ]
  | Repeat (_, _, _) -> [ "Src:Repeat" ]
  | Select (q, _) -> chain q @ [ "Select" ]
  | Select_i (q, _) -> chain q @ [ "Select+index" ]
  | Select_q (q, _, sq) ->
    chain q @ [ Printf.sprintf "Select[%s]" (String.concat " -> " (sq_chain sq)) ]
  | Where (q, _) -> chain q @ [ "Where" ]
  | Where_i (q, _) -> chain q @ [ "Where+index" ]
  | Where_q (q, _, sq) ->
    chain q @ [ Printf.sprintf "Where[%s]" (String.concat " -> " (sq_chain sq)) ]
  | Take (q, _) -> chain q @ [ "Take" ]
  | Skip (q, _) -> chain q @ [ "Skip" ]
  | Take_while (q, _) -> chain q @ [ "TakeWhile" ]
  | Skip_while (q, _) -> chain q @ [ "SkipWhile" ]
  | Select_many (q, _, inner) ->
    chain q
    @ [ Printf.sprintf "SelectMany[%s]" (String.concat " -> " (chain inner)) ]
  | Select_many_result (q, _, inner, _) ->
    chain q
    @ [ Printf.sprintf "SelectMany[%s]+result"
          (String.concat " -> " (chain inner))
      ]
  | Join (outer, inner, _, _, _) ->
    chain outer
    @ [ Printf.sprintf "Join[%s]" (String.concat " -> " (chain inner)) ]
  | Group_by (q, _) -> chain q @ [ "GroupBy" ]
  | Group_by_elem (q, _, _) -> chain q @ [ "GroupBy+elem" ]
  | Group_by_agg (q, _, _, _) -> chain q @ [ "GroupByAggregate" ]
  | Order_by (q, _, Ascending) -> chain q @ [ "OrderBy" ]
  | Order_by (q, _, Descending) -> chain q @ [ "OrderByDescending" ]
  | Distinct q -> chain q @ [ "Distinct" ]
  | Rev q -> chain q @ [ "Reverse" ]
  | Materialize q -> chain q @ [ "ToArray" ]

and sq_chain : type s. s sq -> string list = function
  | Aggregate (q, _, _) -> chain q @ [ "Aggregate" ]
  | Aggregate_full (q, _, _, _) -> chain q @ [ "Aggregate+result" ]
  | Aggregate_combinable (q, _, _, _) -> chain q @ [ "Aggregate+combine" ]
  | Sum_int q -> chain q @ [ "Sum" ]
  | Sum_float q -> chain q @ [ "Sum" ]
  | Count q -> chain q @ [ "Count" ]
  | Average q -> chain q @ [ "Average" ]
  | Min q -> chain q @ [ "Min" ]
  | Max q -> chain q @ [ "Max" ]
  | Min_by (q, _) -> chain q @ [ "MinBy" ]
  | Max_by (q, _) -> chain q @ [ "MaxBy" ]
  | First q -> chain q @ [ "First" ]
  | Last q -> chain q @ [ "Last" ]
  | Element_at (q, _) -> chain q @ [ "ElementAt" ]
  | Any q -> chain q @ [ "Any" ]
  | Exists (q, _) -> chain q @ [ "Any+pred" ]
  | For_all (q, _) -> chain q @ [ "All" ]
  | Contains (q, _) -> chain q @ [ "Contains" ]
  | Map_scalar (sq, _) -> sq_chain sq @ [ "MapResult" ]

let pp fmt q =
  Format.pp_print_string fmt (String.concat " -> " (chain q @ [ "Ret" ]))

let pp_sq fmt sq =
  Format.pp_print_string fmt (String.concat " -> " (sq_chain sq @ [ "Ret" ]))

(* The pipeline vocabulary: one module to open at a query construction
   site.  Everything here is an alias of (or a one-liner over) the
   combinators above, which are themselves thin wrappers over the GADT
   constructors — no new semantics, just the names a [|>] chain reads
   best with, plus the common source shorthands. *)
module Pipe = struct
  let of_array = of_array
  let of_list ty xs = of_array ty (Array.of_list xs)
  let ints xs = of_array Ty.Int xs
  let floats xs = of_array Ty.Float xs
  let range = range
  let repeat = repeat

  let where = where
  let where_i = where_i
  let select = select
  let select_i = select_i
  let select_many = select_many
  let take = take
  let skip = skip
  let take_while = take_while
  let skip_while = skip_while
  let join = join
  let group_by = group_by
  let group_by_agg = group_by_agg
  let order_by = order_by
  let distinct = distinct
  let rev = rev

  let to_array_q q = materialize q

  let sum_int = sum_int
  let sum_float = sum_float
  let sum_by_int = sum_by_int
  let sum_by_float = sum_by_float
  let count = count
  let count_where = count_where
  let average = average
  let average_by = average_by
  let min_elt = min_elt
  let max_elt = max_elt
  let min_by = min_by
  let max_by = max_by
  let first = first
  let last = last
  let any = any
  let exists = exists
  let for_all = for_all
  let contains = contains
end
