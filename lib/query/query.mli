(** The declarative query AST.

    A ['a t] is a query producing a collection of ['a]; a ['s sq] is a
    query producing the scalar ['s] (it ends in an aggregating operator).
    The two are mutually recursive because a nested query can substitute
    for the transformation or predicate function of an element-wise
    operator (section 5 of the paper): [Select_q]/[Where_q] embed a scalar
    query parameterized by the outer element, and [Select_many] embeds a
    collection query.

    Queries are built with the combinators below (the analog of writing a
    LINQ expression); they are data, and are executed by one of the
    backends: LINQ-style iterator interpretation ({!Linq}), in-process
    closure fusion ([Fused]), or Steno native code generation. *)

type order =
  | Ascending
  | Descending

type _ t =
  | Of_array : 'a Ty.t * 'a array Expr.t -> 'a t
  | Range : int Expr.t * int Expr.t -> int t  (** start, count *)
  | Repeat : 'a Ty.t * 'a Expr.t * int Expr.t -> 'a t  (** value, count *)
  | Select : 'a t * ('a, 'b) Expr.lam -> 'b t
  | Select_i : 'a t * (int, 'a, 'b) Expr.lam2 -> 'b t
      (** Select with the element's position as first argument. *)
  | Select_q : 'a t * 'a Expr.var * 'b sq -> 'b t
      (** Nested select: the transformation is a scalar subquery that may
          mention the outer element variable. *)
  | Where : 'a t * ('a, bool) Expr.lam -> 'a t
  | Where_i : 'a t * (int, 'a, bool) Expr.lam2 -> 'a t
  | Where_q : 'a t * 'a Expr.var * bool sq -> 'a t
      (** Nested predicate (e.g. an [exists] subquery per element). *)
  | Take : 'a t * int Expr.t -> 'a t
  | Skip : 'a t * int Expr.t -> 'a t
  | Take_while : 'a t * ('a, bool) Expr.lam -> 'a t
  | Skip_while : 'a t * ('a, bool) Expr.lam -> 'a t
  | Select_many : 'a t * 'a Expr.var * 'b t -> 'b t
      (** Flattening nested query; the inner query may mention the outer
          element variable. *)
  | Select_many_result :
      'a t * 'a Expr.var * 'b t * ('a, 'b, 'c) Expr.lam2
      -> 'c t
  | Join :
      'a t * 'b t * ('a, 'k) Expr.lam * ('b, 'k) Expr.lam
      * ('a, 'b, 'c) Expr.lam2
      -> 'c t  (** Equi-join: outer, inner, keys, result selector. *)
  | Group_by : 'a t * ('a, 'k) Expr.lam -> ('k * 'a array) t
  | Group_by_elem :
      'a t * ('a, 'k) Expr.lam * ('a, 'e) Expr.lam
      -> ('k * 'e array) t
  | Group_by_agg :
      'a t * ('a, 'k) Expr.lam * 's Expr.t * ('s, 'a, 's) Expr.lam2
      -> ('k * 's) t
      (** The GroupByAggregate specialized sink (section 4.3): one partial
          aggregate per key instead of the bag of values.  The seed
          expression must be pure: backends may evaluate it once or once
          per fresh key.  If the aggregate state is a mutable value (e.g.
          a captured array), the step function must not mutate it. *)
  | Order_by : 'a t * ('a, 'k) Expr.lam * order -> 'a t
  | Distinct : 'a t -> 'a t
  | Rev : 'a t -> 'a t
  | Materialize : 'a t -> 'a t
      (** The explicit ToArray sink (footnote 3 of the paper). *)

and _ sq =
  | Aggregate : 'a t * 's Expr.t * ('s, 'a, 's) Expr.lam2 -> 's sq
  | Aggregate_full :
      'a t * 's Expr.t * ('s, 'a, 's) Expr.lam2 * ('s, 'r) Expr.lam
      -> 'r sq  (** Aggregate with a result selector. *)
  | Aggregate_combinable :
      'a t * 's Expr.t * ('s, 'a, 's) Expr.lam2 * ('s -> 's -> 's)
      -> 's sq
      (** Aggregate carrying a user-declared associative combiner (the
          DryadLINQ-style annotation, section 6): sequential backends treat
          it exactly as [Aggregate]; the parallel layer folds each
          partition from [seed] with [step] and merges the per-partition
          partials left-to-right with the combiner.  Correctness requires
          the combiner to be associative with [seed] as identity, and
          [fold seed step (a @ b) = combine (fold seed step a) (fold seed
          step b)] — the usual monoid-homomorphism law; it is the user's
          promise and is not checked. *)
  | Sum_int : int t -> int sq
  | Sum_float : float t -> float sq
  | Count : 'a t -> int sq
  | Average : float t -> float sq
  | Min : 'a t -> 'a sq  (** Raises on empty input. *)
  | Max : 'a t -> 'a sq
  | Min_by : 'a t * ('a, 'k) Expr.lam -> 'a sq
  | Max_by : 'a t * ('a, 'k) Expr.lam -> 'a sq
  | First : 'a t -> 'a sq
  | Last : 'a t -> 'a sq
  | Element_at : 'a t * int Expr.t -> 'a sq
      (** Zero-based; raises like [First] when out of range. *)
  | Any : 'a t -> bool sq
  | Exists : 'a t * ('a, bool) Expr.lam -> bool sq
  | For_all : 'a t * ('a, bool) Expr.lam -> bool sq
  | Contains : 'a t * 'a Expr.t -> bool sq
  | Map_scalar : 's sq * ('s, 'r) Expr.lam -> 'r sq
      (** Apply a function to a scalar query's result (e.g. combine a
          subquery aggregate with the enclosing element). *)

val elem_ty : 'a t -> 'a Ty.t
(** The element type of a collection query, synthesized structurally. *)

val scalar_ty : 's sq -> 's Ty.t

(** {1 Combinators}

    Higher-order-abstract-syntax builders: lambdas are given as OCaml
    functions over expressions, and element types are threaded
    automatically. *)

val of_array : 'a Ty.t -> 'a array -> 'a t
(** Captures the array; a recompiled query can be re-run against a
    different array via the capture environment. *)

val range : start:int -> count:int -> int t
val repeat : 'a Ty.t -> 'a -> count:int -> 'a t
val select : ('a Expr.t -> 'b Expr.t) -> 'a t -> 'b t
val select_i : (int Expr.t -> 'a Expr.t -> 'b Expr.t) -> 'a t -> 'b t
val where : ('a Expr.t -> bool Expr.t) -> 'a t -> 'a t
val where_i : (int Expr.t -> 'a Expr.t -> bool Expr.t) -> 'a t -> 'a t
val take : int -> 'a t -> 'a t
val skip : int -> 'a t -> 'a t
val take_while : ('a Expr.t -> bool Expr.t) -> 'a t -> 'a t
val skip_while : ('a Expr.t -> bool Expr.t) -> 'a t -> 'a t

val select_many : ('a Expr.t -> 'b t) -> 'a t -> 'b t
val select_many_result :
  ('a Expr.t -> 'b t) -> ('a Expr.t -> 'b Expr.t -> 'c Expr.t) -> 'a t -> 'c t

val select_sq : ('a Expr.t -> 'b sq) -> 'a t -> 'b t
val where_sq : ('a Expr.t -> bool sq) -> 'a t -> 'a t

val join :
  inner:'b t ->
  outer_key:('a Expr.t -> 'k Expr.t) ->
  inner_key:('b Expr.t -> 'k Expr.t) ->
  result:('a Expr.t -> 'b Expr.t -> 'c Expr.t) ->
  'a t ->
  'c t

val group_by : ('a Expr.t -> 'k Expr.t) -> 'a t -> ('k * 'a array) t

val group_by_elem :
  key:('a Expr.t -> 'k Expr.t) ->
  elem:('a Expr.t -> 'e Expr.t) ->
  'a t ->
  ('k * 'e array) t

val group_by_agg :
  key:('a Expr.t -> 'k Expr.t) ->
  seed:'s Expr.t ->
  step:('s Expr.t -> 'a Expr.t -> 's Expr.t) ->
  'a t ->
  ('k * 's) t

val order_by : ?order:order -> ('a Expr.t -> 'k Expr.t) -> 'a t -> 'a t
val distinct : 'a t -> 'a t
val rev : 'a t -> 'a t
val materialize : 'a t -> 'a t

val aggregate :
  ?combine:('s -> 's -> 's) ->
  seed:'s Expr.t ->
  step:('s Expr.t -> 'a Expr.t -> 's Expr.t) ->
  'a t ->
  's sq
(** [?combine] declares an associative merge of two fold states, enabling
    parallel partial aggregation (see {!Aggregate_combinable}).  Without
    it the aggregate is opaque and executes sequentially. *)

val aggregate_full :
  seed:'s Expr.t ->
  step:('s Expr.t -> 'a Expr.t -> 's Expr.t) ->
  result:('s Expr.t -> 'r Expr.t) ->
  'a t ->
  'r sq

val sum_int : int t -> int sq
val sum_float : float t -> float sq
val count : 'a t -> int sq
val average : float t -> float sq
val min_elt : 'a t -> 'a sq
val max_elt : 'a t -> 'a sq
val min_by : ('a Expr.t -> 'k Expr.t) -> 'a t -> 'a sq
val max_by : ('a Expr.t -> 'k Expr.t) -> 'a t -> 'a sq
val first : 'a t -> 'a sq
val last : 'a t -> 'a sq
val element_at : int -> 'a t -> 'a sq
val any : 'a t -> bool sq
val exists : ('a Expr.t -> bool Expr.t) -> 'a t -> bool sq
val for_all : ('a Expr.t -> bool Expr.t) -> 'a t -> bool sq
val contains : 'a Expr.t -> 'a t -> bool sq
val map_scalar : ('s Expr.t -> 'r Expr.t) -> 's sq -> 'r sq

(** Convenience forms mirroring the LINQ surface. *)

val sum_by_int : ('a Expr.t -> int Expr.t) -> 'a t -> int sq
val sum_by_float : ('a Expr.t -> float Expr.t) -> 'a t -> float sq
val average_by : ('a Expr.t -> float Expr.t) -> 'a t -> float sq
val count_where : ('a Expr.t -> bool Expr.t) -> 'a t -> int sq

(** {1 Structure} *)

val operator_count : 'a t -> int
(** Number of query operators, including nested subqueries. *)

val sq_operator_count : 's sq -> int

val depth : 'a t -> int
(** Maximal nesting depth (1 for a flat query). *)

val sq_depth : 's sq -> int

val pp : Format.formatter -> 'a t -> unit
(** Operator-chain dump, e.g. ["Src -> Where(p) -> Select(f) -> Ret"]. *)

val pp_sq : Format.formatter -> 's sq -> unit

(** {1 Pipeline builders}

    The query vocabulary packaged for [|>] chains: open (or
    locally-open) this module at a construction site and write

    {[
      Query.Pipe.(
        ints xs
        |> where (fun x -> Expr.Infix.(x mod Expr.int 2 = Expr.int 0))
        |> select (fun x -> Expr.Infix.(x * x))
        |> to_array_q)
    ]}

    Every function is an alias of — or a one-line convenience over — the
    toplevel combinators, which are themselves thin wrappers over the
    GADT constructors; the two styles build identical ASTs and may be
    mixed freely. *)
module Pipe : sig
  (** {2 Sources} *)

  val of_array : 'a Ty.t -> 'a array -> 'a t
  val of_list : 'a Ty.t -> 'a list -> 'a t
  val ints : int array -> int t
  (** [of_array Ty.Int]. *)

  val floats : float array -> float t
  val range : start:int -> count:int -> int t
  val repeat : 'a Ty.t -> 'a -> count:int -> 'a t

  (** {2 Operators} *)

  val where : ('a Expr.t -> bool Expr.t) -> 'a t -> 'a t
  val where_i : (int Expr.t -> 'a Expr.t -> bool Expr.t) -> 'a t -> 'a t
  val select : ('a Expr.t -> 'b Expr.t) -> 'a t -> 'b t
  val select_i : (int Expr.t -> 'a Expr.t -> 'b Expr.t) -> 'a t -> 'b t
  val select_many : ('a Expr.t -> 'b t) -> 'a t -> 'b t
  val take : int -> 'a t -> 'a t
  val skip : int -> 'a t -> 'a t
  val take_while : ('a Expr.t -> bool Expr.t) -> 'a t -> 'a t
  val skip_while : ('a Expr.t -> bool Expr.t) -> 'a t -> 'a t

  val join :
    inner:'b t ->
    outer_key:('a Expr.t -> 'k Expr.t) ->
    inner_key:('b Expr.t -> 'k Expr.t) ->
    result:('a Expr.t -> 'b Expr.t -> 'c Expr.t) ->
    'a t ->
    'c t

  val group_by : ('a Expr.t -> 'k Expr.t) -> 'a t -> ('k * 'a array) t

  val group_by_agg :
    key:('a Expr.t -> 'k Expr.t) ->
    seed:'s Expr.t ->
    step:('s Expr.t -> 'a Expr.t -> 's Expr.t) ->
    'a t ->
    ('k * 's) t

  val order_by : ?order:order -> ('a Expr.t -> 'k Expr.t) -> 'a t -> 'a t
  val distinct : 'a t -> 'a t
  val rev : 'a t -> 'a t

  val to_array_q : 'a t -> 'a t
  (** Force materialization at this point in the pipeline
      ({!materialize}): the terminal of a collection pipeline in the
      LINQ idiom. *)

  (** {2 Scalar terminals} *)

  val sum_int : int t -> int sq
  val sum_float : float t -> float sq
  val sum_by_int : ('a Expr.t -> int Expr.t) -> 'a t -> int sq
  val sum_by_float : ('a Expr.t -> float Expr.t) -> 'a t -> float sq
  val count : 'a t -> int sq
  val count_where : ('a Expr.t -> bool Expr.t) -> 'a t -> int sq
  val average : float t -> float sq
  val average_by : ('a Expr.t -> float Expr.t) -> 'a t -> float sq
  val min_elt : 'a t -> 'a sq
  val max_elt : 'a t -> 'a sq
  val min_by : ('a Expr.t -> 'k Expr.t) -> 'a t -> 'a sq
  val max_by : ('a Expr.t -> 'k Expr.t) -> 'a t -> 'a sq
  val first : 'a t -> 'a sq
  val last : 'a t -> 'a sq
  val any : 'a t -> bool sq
  val exists : ('a Expr.t -> bool Expr.t) -> 'a t -> bool sq
  val for_all : ('a Expr.t -> bool Expr.t) -> 'a t -> bool sq
  val contains : 'a Expr.t -> 'a t -> bool sq
end
