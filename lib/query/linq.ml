module E = Enumerable
module Open = Expr.Open

(* A staging-time hook around every top-level operator's output: the
   engine's profile mode supplies a wrapper that allocates a probe point
   per operator (the [string] is the operator label, consumed once at
   staging) and decorates the staged enumerable.  [unprobed] is the
   identity, so the normal path pays nothing per element. *)
type wrapper = { wrap : 'x. string -> 'x E.t -> 'x E.t }

let unprobed = { wrap = (fun _ e -> e) }

(* Nested sub-queries (the inner side of SelectMany / Join and
   quantifier subqueries) open their own chains per outer element; their
   operators are not points of the top-level plan, so they stage
   unprobed and their cost shows up in the enclosing operator's row
   counts and time. *)
let rec stage_probed : type a. wrapper -> a Query.t -> Open.env -> a E.t =
 fun w -> function
  | Query.Of_array (_, arr) ->
    let farr = Open.compile arr in
    let wr = w.wrap "of-array" in
    fun env -> wr (E.of_array (farr env))
  | Query.Range (start, count) ->
    let fs = Open.compile start and fc = Open.compile count in
    let wr = w.wrap "range" in
    fun env -> wr (E.range (fs env) (fc env))
  | Query.Repeat (_, v, count) ->
    let fv = Open.compile v and fc = Open.compile count in
    let wr = w.wrap "repeat" in
    fun env -> wr (E.repeat (fv env) (fc env))
  | Query.Select (q, lam) ->
    let src = stage_probed w q and f = Open.compile_lam lam in
    let wr = w.wrap "select" in
    fun env -> wr (E.select (f env) (src env))
  | Query.Select_i (q, lam2) ->
    let src = stage_probed w q and f = Open.compile_lam2 lam2 in
    let wr = w.wrap "select-i" in
    fun env -> wr (E.select_i (f env) (src env))
  | Query.Select_q (q, v, sq) ->
    let src = stage_probed w q and fsq = stage_sq_probed unprobed sq in
    let wr = w.wrap "select-sq" in
    fun env -> wr (E.select (fun x -> fsq (Open.bind v x env)) (src env))
  | Query.Where (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    let wr = w.wrap "where" in
    fun env -> wr (E.where (p env) (src env))
  | Query.Where_i (q, lam2) ->
    let src = stage_probed w q and p = Open.compile_lam2 lam2 in
    let wr = w.wrap "where-i" in
    fun env -> wr (E.where_i (p env) (src env))
  | Query.Where_q (q, v, sq) ->
    let src = stage_probed w q and fsq = stage_sq_probed unprobed sq in
    let wr = w.wrap "where-sq" in
    fun env -> wr (E.where (fun x -> fsq (Open.bind v x env)) (src env))
  | Query.Take (q, n) ->
    let src = stage_probed w q and fn = Open.compile n in
    let wr = w.wrap "take" in
    fun env -> wr (E.take (fn env) (src env))
  | Query.Skip (q, n) ->
    let src = stage_probed w q and fn = Open.compile n in
    let wr = w.wrap "skip" in
    fun env -> wr (E.skip (fn env) (src env))
  | Query.Take_while (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    let wr = w.wrap "take-while" in
    fun env -> wr (E.take_while (p env) (src env))
  | Query.Skip_while (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    let wr = w.wrap "skip-while" in
    fun env -> wr (E.skip_while (p env) (src env))
  | Query.Select_many (q, v, inner) ->
    let src = stage_probed w q and finner = stage_probed unprobed inner in
    let wr = w.wrap "select-many" in
    fun env ->
      wr (E.select_many (fun x -> finner (Open.bind v x env)) (src env))
  | Query.Select_many_result (q, v, inner, lam2) ->
    let src = stage_probed w q
    and finner = stage_probed unprobed inner
    and fres = Open.compile_lam2 lam2 in
    let wr = w.wrap "select-many" in
    fun env ->
      wr
        (E.select_many_result
           (fun x -> finner (Open.bind v x env))
           (fres env) (src env))
  | Query.Join (outer, inner, ok, ik, res) ->
    let fouter = stage_probed w outer
    and finner = stage_probed unprobed inner
    and fok = Open.compile_lam ok
    and fik = Open.compile_lam ik
    and fres = Open.compile_lam2 res in
    let wr = w.wrap "join" in
    fun env ->
      wr (E.join (fok env) (fik env) (fres env) (fouter env) (finner env))
  | Query.Group_by (q, key) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    let wr = w.wrap "group-by" in
    fun env -> wr (E.group_by (fkey env) (src env))
  | Query.Group_by_elem (q, key, elem) ->
    let src = stage_probed w q
    and fkey = Open.compile_lam key
    and felem = Open.compile_lam elem in
    let wr = w.wrap "group-by" in
    fun env -> wr (E.group_by_elem (fkey env) (felem env) (src env))
  | Query.Group_by_agg (q, key, seed, step) ->
    let src = stage_probed w q
    and fkey = Open.compile_lam key
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    let wr = w.wrap "group-by-agg" in
    fun env ->
      wr
        (E.of_fun (fun () ->
             let seed = fseed env in
             let step = fstep env in
             let key = fkey env in
             let agg = Lookup.Agg.create ~seed () in
             E.iter
               (fun x -> Lookup.Agg.update agg (key x) (fun s -> step s x))
               (src env);
             Iterator.of_array (Lookup.Agg.entries agg)))
  | Query.Order_by (q, key, Query.Ascending) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    let wr = w.wrap "order-by" in
    fun env -> wr (E.order_by (fkey env) (src env))
  | Query.Order_by (q, key, Query.Descending) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    let wr = w.wrap "order-by" in
    fun env -> wr (E.order_by_descending (fkey env) (src env))
  | Query.Distinct q ->
    let src = stage_probed w q in
    let wr = w.wrap "distinct" in
    fun env -> wr (E.distinct (src env))
  | Query.Rev q ->
    let src = stage_probed w q in
    let wr = w.wrap "rev" in
    fun env -> wr (E.reverse (src env))
  | Query.Materialize q ->
    let src = stage_probed w q in
    let wr = w.wrap "materialize" in
    fun env ->
      wr (E.of_fun (fun () -> Iterator.of_array (E.to_array (src env))))

and stage_sq_probed : type s. wrapper -> s Query.sq -> Open.env -> s =
 fun w -> function
  | Query.Aggregate (q, seed, step) ->
    let src = stage_probed w q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    fun env -> E.aggregate (fseed env) (fstep env) (src env)
  | Query.Aggregate_combinable (q, seed, step, _) ->
    (* Sequentially the combiner is unused: fold as a plain Aggregate. *)
    let src = stage_probed w q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    fun env -> E.aggregate (fseed env) (fstep env) (src env)
  | Query.Aggregate_full (q, seed, step, result) ->
    let src = stage_probed w q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step
    and fres = Open.compile_lam result in
    fun env ->
      E.aggregate_result (fseed env) (fstep env) (fres env) (src env)
  | Query.Sum_int q ->
    let src = stage_probed w q in
    fun env -> E.sum_int (src env)
  | Query.Sum_float q ->
    let src = stage_probed w q in
    fun env -> E.sum_float (src env)
  | Query.Count q ->
    let src = stage_probed w q in
    fun env -> E.count (src env)
  | Query.Average q ->
    let src = stage_probed w q in
    fun env -> E.average (src env)
  | Query.Min q ->
    let src = stage_probed w q in
    fun env -> E.min_elt (src env)
  | Query.Max q ->
    let src = stage_probed w q in
    fun env -> E.max_elt (src env)
  | Query.Min_by (q, key) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    fun env -> E.min_by (fkey env) (src env)
  | Query.Max_by (q, key) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    fun env -> E.max_by (fkey env) (src env)
  | Query.First q ->
    let src = stage_probed w q in
    fun env -> E.first (src env)
  | Query.Last q ->
    let src = stage_probed w q in
    fun env -> E.last (src env)
  | Query.Element_at (q, n) ->
    let src = stage_probed w q and fn = Open.compile n in
    fun env -> E.element_at (fn env) (src env)
  | Query.Any q ->
    let src = stage_probed w q in
    fun env -> E.any (src env)
  | Query.Exists (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    fun env -> E.exists (p env) (src env)
  | Query.For_all (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    fun env -> E.for_all (p env) (src env)
  | Query.Contains (q, v) ->
    let src = stage_probed w q and fv = Open.compile v in
    fun env -> E.contains (fv env) (src env)
  | Query.Map_scalar (sq, lam) ->
    let fsq = stage_sq_probed w sq and f = Open.compile_lam lam in
    fun env -> f env (fsq env)

let stage q = stage_probed unprobed q

let stage_sq sq = stage_sq_probed unprobed sq

let run q = stage q Open.empty

let run_sq sq = stage_sq sq Open.empty

let to_array q = E.to_array (run q)

let to_list q = E.to_list (run q)
