module E = Enumerable
module Open = Expr.Open

let rec stage : type a. a Query.t -> Open.env -> a E.t = function
  | Query.Of_array (_, arr) ->
    let farr = Open.compile arr in
    fun env -> E.of_array (farr env)
  | Query.Range (start, count) ->
    let fs = Open.compile start and fc = Open.compile count in
    fun env -> E.range (fs env) (fc env)
  | Query.Repeat (_, v, count) ->
    let fv = Open.compile v and fc = Open.compile count in
    fun env -> E.repeat (fv env) (fc env)
  | Query.Select (q, lam) ->
    let src = stage q and f = Open.compile_lam lam in
    fun env -> E.select (f env) (src env)
  | Query.Select_i (q, lam2) ->
    let src = stage q and f = Open.compile_lam2 lam2 in
    fun env -> E.select_i (f env) (src env)
  | Query.Select_q (q, v, sq) ->
    let src = stage q and fsq = stage_sq sq in
    fun env -> E.select (fun x -> fsq (Open.bind v x env)) (src env)
  | Query.Where (q, lam) ->
    let src = stage q and p = Open.compile_lam lam in
    fun env -> E.where (p env) (src env)
  | Query.Where_i (q, lam2) ->
    let src = stage q and p = Open.compile_lam2 lam2 in
    fun env -> E.where_i (p env) (src env)
  | Query.Where_q (q, v, sq) ->
    let src = stage q and fsq = stage_sq sq in
    fun env -> E.where (fun x -> fsq (Open.bind v x env)) (src env)
  | Query.Take (q, n) ->
    let src = stage q and fn = Open.compile n in
    fun env -> E.take (fn env) (src env)
  | Query.Skip (q, n) ->
    let src = stage q and fn = Open.compile n in
    fun env -> E.skip (fn env) (src env)
  | Query.Take_while (q, lam) ->
    let src = stage q and p = Open.compile_lam lam in
    fun env -> E.take_while (p env) (src env)
  | Query.Skip_while (q, lam) ->
    let src = stage q and p = Open.compile_lam lam in
    fun env -> E.skip_while (p env) (src env)
  | Query.Select_many (q, v, inner) ->
    let src = stage q and finner = stage inner in
    fun env -> E.select_many (fun x -> finner (Open.bind v x env)) (src env)
  | Query.Select_many_result (q, v, inner, lam2) ->
    let src = stage q
    and finner = stage inner
    and fres = Open.compile_lam2 lam2 in
    fun env ->
      E.select_many_result
        (fun x -> finner (Open.bind v x env))
        (fres env) (src env)
  | Query.Join (outer, inner, ok, ik, res) ->
    let fouter = stage outer
    and finner = stage inner
    and fok = Open.compile_lam ok
    and fik = Open.compile_lam ik
    and fres = Open.compile_lam2 res in
    fun env ->
      E.join (fok env) (fik env) (fres env) (fouter env) (finner env)
  | Query.Group_by (q, key) ->
    let src = stage q and fkey = Open.compile_lam key in
    fun env -> E.group_by (fkey env) (src env)
  | Query.Group_by_elem (q, key, elem) ->
    let src = stage q
    and fkey = Open.compile_lam key
    and felem = Open.compile_lam elem in
    fun env -> E.group_by_elem (fkey env) (felem env) (src env)
  | Query.Group_by_agg (q, key, seed, step) ->
    let src = stage q
    and fkey = Open.compile_lam key
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    fun env ->
      E.of_fun (fun () ->
          let seed = fseed env in
          let step = fstep env in
          let key = fkey env in
          let agg = Lookup.Agg.create ~seed () in
          E.iter (fun x -> Lookup.Agg.update agg (key x) (fun s -> step s x))
            (src env);
          Iterator.of_array (Lookup.Agg.entries agg))
  | Query.Order_by (q, key, Query.Ascending) ->
    let src = stage q and fkey = Open.compile_lam key in
    fun env -> E.order_by (fkey env) (src env)
  | Query.Order_by (q, key, Query.Descending) ->
    let src = stage q and fkey = Open.compile_lam key in
    fun env -> E.order_by_descending (fkey env) (src env)
  | Query.Distinct q ->
    let src = stage q in
    fun env -> E.distinct (src env)
  | Query.Rev q ->
    let src = stage q in
    fun env -> E.reverse (src env)
  | Query.Materialize q ->
    let src = stage q in
    fun env -> E.of_fun (fun () -> Iterator.of_array (E.to_array (src env)))

and stage_sq : type s. s Query.sq -> Open.env -> s = function
  | Query.Aggregate (q, seed, step) ->
    let src = stage q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    fun env -> E.aggregate (fseed env) (fstep env) (src env)
  | Query.Aggregate_full (q, seed, step, result) ->
    let src = stage q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step
    and fres = Open.compile_lam result in
    fun env ->
      E.aggregate_result (fseed env) (fstep env) (fres env) (src env)
  | Query.Sum_int q ->
    let src = stage q in
    fun env -> E.sum_int (src env)
  | Query.Sum_float q ->
    let src = stage q in
    fun env -> E.sum_float (src env)
  | Query.Count q ->
    let src = stage q in
    fun env -> E.count (src env)
  | Query.Average q ->
    let src = stage q in
    fun env -> E.average (src env)
  | Query.Min q ->
    let src = stage q in
    fun env -> E.min_elt (src env)
  | Query.Max q ->
    let src = stage q in
    fun env -> E.max_elt (src env)
  | Query.Min_by (q, key) ->
    let src = stage q and fkey = Open.compile_lam key in
    fun env -> E.min_by (fkey env) (src env)
  | Query.Max_by (q, key) ->
    let src = stage q and fkey = Open.compile_lam key in
    fun env -> E.max_by (fkey env) (src env)
  | Query.First q ->
    let src = stage q in
    fun env -> E.first (src env)
  | Query.Last q ->
    let src = stage q in
    fun env -> E.last (src env)
  | Query.Element_at (q, n) ->
    let src = stage q and fn = Open.compile n in
    fun env -> E.element_at (fn env) (src env)
  | Query.Any q ->
    let src = stage q in
    fun env -> E.any (src env)
  | Query.Exists (q, lam) ->
    let src = stage q and p = Open.compile_lam lam in
    fun env -> E.exists (p env) (src env)
  | Query.For_all (q, lam) ->
    let src = stage q and p = Open.compile_lam lam in
    fun env -> E.for_all (p env) (src env)
  | Query.Contains (q, v) ->
    let src = stage q and fv = Open.compile v in
    fun env -> E.contains (fv env) (src env)
  | Query.Map_scalar (sq, lam) ->
    let fsq = stage_sq sq and f = Open.compile_lam lam in
    fun env -> f env (fsq env)

let run q = stage q Open.empty

let run_sq sq = stage_sq sq Open.empty

let to_array q = E.to_array (run q)

let to_list q = E.to_list (run q)
