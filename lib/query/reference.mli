(** Reference semantics: a deliberately naive, list-based evaluator used as
    the oracle in differential tests.

    Shares no operator code with the iterator pipeline ({!Linq}), the
    fused backend, or generated native code, so agreement between backends
    and this module is meaningful evidence of correctness. *)

val eval : 'a Query.t -> Expr.Open.env -> 'a list
val eval_sq : 's Query.sq -> Expr.Open.env -> 's

val to_list : 'a Query.t -> 'a list
val scalar : 's Query.sq -> 's
