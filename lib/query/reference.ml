module Open = Expr.Open

exception Empty = Iterator.No_such_element

(* Group values by key, keys in first-appearance order, without Lookup.
   A single pass: each element is appended (reversed ref list) to its
   key's bucket; fresh keys are also pushed onto the order list.  The
   old version was quadratic (List.mem + append + per-key filter), which
   made large differential corpora unusable. *)
let group_list key xs =
  let buckets = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt buckets k with
      | Some cell -> cell := x :: !cell
      | None ->
        Hashtbl.add buckets k (ref [ x ]);
        order := k :: !order)
    xs;
  List.rev_map (fun k -> k, List.rev !(Hashtbl.find buckets k)) !order

let rec eval : type a. a Query.t -> Open.env -> a list =
 fun q env ->
  match q with
  | Query.Of_array (_, arr) -> Array.to_list (Open.compile arr env)
  | Query.Range (start, count) ->
    let s = Open.compile start env and c = Open.compile count env in
    List.init c (fun i -> s + i)
  | Query.Repeat (_, v, count) ->
    let x = Open.compile v env and c = Open.compile count env in
    List.init c (fun _ -> x)
  | Query.Select (q, lam) ->
    let f = Open.compile_lam lam env in
    List.map f (eval q env)
  | Query.Select_i (q, lam2) ->
    let f = Open.compile_lam2 lam2 env in
    List.mapi f (eval q env)
  | Query.Select_q (q, v, sq) ->
    List.map (fun x -> eval_sq sq (Open.bind v x env)) (eval q env)
  | Query.Where (q, lam) ->
    let p = Open.compile_lam lam env in
    List.filter p (eval q env)
  | Query.Where_i (q, lam2) ->
    let p = Open.compile_lam2 lam2 env in
    List.filteri p (eval q env)
  | Query.Where_q (q, v, sq) ->
    List.filter (fun x -> eval_sq sq (Open.bind v x env)) (eval q env)
  | Query.Take (q, n) ->
    let n = Open.compile n env in
    List.filteri (fun i _ -> i < n) (eval q env)
  | Query.Skip (q, n) ->
    let n = Open.compile n env in
    List.filteri (fun i _ -> i >= n) (eval q env)
  | Query.Take_while (q, lam) ->
    let p = Open.compile_lam lam env in
    let rec go = function x :: tl when p x -> x :: go tl | _ -> [] in
    go (eval q env)
  | Query.Skip_while (q, lam) ->
    let p = Open.compile_lam lam env in
    let rec go = function x :: tl when p x -> go tl | l -> l in
    go (eval q env)
  | Query.Select_many (q, v, inner) ->
    List.concat_map (fun x -> eval inner (Open.bind v x env)) (eval q env)
  | Query.Select_many_result (q, v, inner, lam2) ->
    List.concat_map
      (fun x ->
        let env' = Open.bind v x env in
        let f = Open.compile_lam2 lam2 env' in
        List.map (fun y -> f x y) (eval inner env'))
      (eval q env)
  | Query.Join (outer, inner, ok, ik, res) ->
    let fok = Open.compile_lam ok env
    and fik = Open.compile_lam ik env
    and fres = Open.compile_lam2 res env in
    let inner = eval inner env in
    List.concat_map
      (fun o ->
        List.filter_map
          (fun i -> if fik i = fok o then Some (fres o i) else None)
          inner)
      (eval outer env)
  | Query.Group_by (q, key) ->
    let fkey = Open.compile_lam key env in
    List.map (fun (k, vs) -> k, Array.of_list vs)
      (group_list fkey (eval q env))
  | Query.Group_by_elem (q, key, elem) ->
    let fkey = Open.compile_lam key env in
    let felem = Open.compile_lam elem env in
    List.map (fun (k, vs) -> k, Array.of_list (List.map felem vs))
      (group_list fkey (eval q env))
  | Query.Group_by_agg (q, key, seed, step) ->
    let fkey = Open.compile_lam key env in
    let seed = Open.compile seed env in
    let fstep = Open.compile_lam2 step env in
    List.map (fun (k, vs) -> k, List.fold_left fstep seed vs)
      (group_list fkey (eval q env))
  | Query.Order_by (q, key, dir) ->
    let fkey = Open.compile_lam key env in
    let cmp a b =
      match dir with
      | Query.Ascending -> compare (fkey a) (fkey b)
      | Query.Descending -> compare (fkey b) (fkey a)
    in
    List.stable_sort cmp (eval q env)
  | Query.Distinct q ->
    List.fold_left
      (fun acc x -> if List.mem x acc then acc else acc @ [ x ])
      [] (eval q env)
  | Query.Rev q -> List.rev (eval q env)
  | Query.Materialize q -> eval q env

and eval_sq : type s. s Query.sq -> Open.env -> s =
 fun sq env ->
  match sq with
  | Query.Aggregate (q, seed, step) ->
    List.fold_left
      (Open.compile_lam2 step env)
      (Open.compile seed env) (eval q env)
  | Query.Aggregate_combinable (q, seed, step, _) ->
    List.fold_left
      (Open.compile_lam2 step env)
      (Open.compile seed env) (eval q env)
  | Query.Aggregate_full (q, seed, step, result) ->
    Open.compile_lam result env
      (List.fold_left
         (Open.compile_lam2 step env)
         (Open.compile seed env) (eval q env))
  | Query.Sum_int q -> List.fold_left ( + ) 0 (eval q env)
  | Query.Sum_float q -> List.fold_left ( +. ) 0.0 (eval q env)
  | Query.Count q -> List.length (eval q env)
  | Query.Average q -> (
    match eval q env with
    | [] -> raise Empty
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
  | Query.Min q -> (
    match eval q env with [] -> raise Empty | x :: tl -> List.fold_left min x tl)
  | Query.Max q -> (
    match eval q env with [] -> raise Empty | x :: tl -> List.fold_left max x tl)
  | Query.Min_by (q, key) -> (
    let fkey = Open.compile_lam key env in
    let better a b = if fkey b < fkey a then b else a in
    match eval q env with
    | [] -> raise Empty
    | x :: tl -> List.fold_left better x tl)
  | Query.Max_by (q, key) -> (
    let fkey = Open.compile_lam key env in
    let better a b = if fkey b > fkey a then b else a in
    match eval q env with
    | [] -> raise Empty
    | x :: tl -> List.fold_left better x tl)
  | Query.First q -> (
    match eval q env with [] -> raise Empty | x :: _ -> x)
  | Query.Last q -> (
    match List.rev (eval q env) with [] -> raise Empty | x :: _ -> x)
  | Query.Element_at (q, n) -> (
    let n = Open.compile n env in
    match List.nth_opt (eval q env) n with
    | Some x when n >= 0 -> x
    | Some _ | None -> raise Empty)
  | Query.Any q -> eval q env <> []
  | Query.Exists (q, lam) -> List.exists (Open.compile_lam lam env) (eval q env)
  | Query.For_all (q, lam) -> List.for_all (Open.compile_lam lam env) (eval q env)
  | Query.Contains (q, v) ->
    let x = Open.compile v env in
    List.mem x (eval q env)
  | Query.Map_scalar (sq, lam) ->
    Open.compile_lam lam env (eval_sq sq env)

let to_list q = eval q Open.empty

let scalar sq = eval_sq sq Open.empty
