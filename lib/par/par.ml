type 'a partitioned = 'a array array

let partition ~parts arr =
  if parts <= 0 then invalid_arg "Par.partition: parts must be positive";
  let n = Array.length arr in
  Array.init parts (fun p ->
      let lo = p * n / parts in
      let hi = (p + 1) * n / parts in
      Array.sub arr lo (hi - lo))

let concat parts = Array.concat (Array.to_list parts)

let engine_of = function
  | Some e -> e
  | None -> Steno.default_engine ()

(* Upper bounds suited to partition row counts rather than the
   millisecond-scale default buckets. *)
let row_buckets = Metrics.log_buckets ~base:4.0 ~lo:1.0 ~hi:1e9 ()

(* Run one vertex per partition on the pool, each under a "partition"
   span so per-domain timings reach the engine's telemetry sink, and
   recorded in the engine's metrics registry: rows fed to each
   partition, the wait between job submission and a worker picking the
   partition up, and the partition's wall time. *)
let map_partitions_traced ~eng ~sink ~workers f parts =
  let m = Steno.Engine.metrics eng in
  let rows_h =
    Metrics.histogram m "steno_partition_rows"
      ~help:"Input rows per partition" ~buckets:row_buckets
  in
  let wait_h =
    Metrics.histogram m "steno_partition_queue_wait_ms"
      ~help:"Delay between partition submission and a worker starting it"
  in
  let time_h =
    Metrics.histogram m "steno_partition_ms"
      ~help:"Wall time of one partition's execution (milliseconds)"
  in
  let submit_ms = Telemetry.now_ms () in
  Domain_pool.run ~workers ~tasks:(Array.length parts) (fun i ->
      let start_ms = Telemetry.now_ms () in
      Metrics.observe rows_h (float_of_int (Array.length parts.(i)));
      Metrics.observe wait_h (start_ms -. submit_ms);
      let r =
        Telemetry.with_span sink "partition"
          ~attrs:[ "index", string_of_int i ]
          (fun () -> f parts.(i))
      in
      Metrics.observe time_h (Telemetry.now_ms () -. start_ms);
      r)

let homomorphic_apply ?engine ?backend ?workers _ty build parts =
  let eng = engine_of engine in
  let sink = Steno.Engine.telemetry eng in
  let workers =
    Option.value workers ~default:(Domain_pool.recommended_workers ())
  in
  (* Compile once up front: every partition's query generates identical
     source, so the parallel runs below are cache hits. *)
  if Array.length parts > 0 then
    ignore (Steno.Engine.prepare ?backend eng (build parts.(0)));
  map_partitions_traced ~eng ~sink ~workers
    (fun part -> Steno.Engine.to_array ?backend eng (build part))
    parts

let scalar_per_partition ?engine ?backend ?workers build ~combine parts =
  let eng = engine_of engine in
  let sink = Steno.Engine.telemetry eng in
  let workers =
    Option.value workers ~default:(Domain_pool.recommended_workers ())
  in
  if Array.length parts > 0 then
    ignore (Steno.Engine.prepare_scalar ?backend eng (build parts.(0)));
  let partials =
    map_partitions_traced ~eng ~sink ~workers
      (fun part ->
        match Steno.Engine.scalar ?backend eng (build part) with
        | s -> Some s
        | exception Iterator.No_such_element -> None)
      parts
  in
  (* The trailing Agg* of Fig. 12: merge per-partition partials. *)
  let merged =
    Telemetry.with_span sink "agg-merge"
      ~attrs:[ "partials", string_of_int (Array.length partials) ]
      (fun () ->
        Array.fold_left
          (fun acc p ->
            match acc, p with
            | None, x | x, None -> x
            | Some a, Some b -> Some (combine a b))
          None partials)
  in
  match merged with
  | Some s -> s
  | None -> raise Iterator.No_such_element

(* Homomorphism check, delegated to the static classifier so the
   partitioned runner, the linter and [stenoc lint] agree on which
   operators split.  [Check_homo] also names the first blocker. *)
let is_homomorphic q = Check_homo.is_homomorphic q

type 's split =
  | Split : {
      source_ty : 'a Ty.t;
      source : 'a array;
      rebuild : 'a array -> 's Query.sq;
      combine : 's -> 's -> 's;
    }
      -> 's split

(* Locate the root captured-array source of a homomorphic prefix and build
   a function that re-roots the query on a different array. *)
type 'b rerooted =
  | Rerooted : {
      ty : 'a Ty.t;
      arr : 'a array;
      rebuild : 'a array -> 'b Query.t;
    }
      -> 'b rerooted

let rec reroot : type b. b Query.t -> b rerooted option = function
  | Query.Of_array (ty, Expr.Capture (_, arr)) ->
    Some
      (Rerooted
         {
           ty;
           arr;
           rebuild = (fun a -> Query.Of_array (ty, Expr.capture (Ty.Array ty) a));
         })
  | Query.Of_array (_, _) | Query.Range _ | Query.Repeat _ -> None
  | Query.Select (q, lam) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          { r with rebuild = (fun a -> Query.Select (r.rebuild a, lam)) })
      (reroot q)
  | Query.Select_q (q, v, sq) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          { r with rebuild = (fun a -> Query.Select_q (r.rebuild a, v, sq)) })
      (reroot q)
  | Query.Where (q, lam) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted { r with rebuild = (fun a -> Query.Where (r.rebuild a, lam)) })
      (reroot q)
  | Query.Where_q (q, v, sq) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          { r with rebuild = (fun a -> Query.Where_q (r.rebuild a, v, sq)) })
      (reroot q)
  | Query.Select_many (q, v, inner) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          {
            r with
            rebuild = (fun a -> Query.Select_many (r.rebuild a, v, inner));
          })
      (reroot q)
  | Query.Select_many_result (q, v, inner, lam2) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          {
            r with
            rebuild =
              (fun a -> Query.Select_many_result (r.rebuild a, v, inner, lam2));
          })
      (reroot q)
  | Query.Take _ | Query.Skip _ | Query.Take_while _ | Query.Skip_while _
  | Query.Select_i _ | Query.Where_i _ | Query.Join _ | Query.Group_by _
  | Query.Group_by_elem _ | Query.Group_by_agg _ | Query.Order_by _
  | Query.Distinct _ | Query.Rev _ ->
    None
  | Query.Materialize q ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted { r with rebuild = (fun a -> Query.Materialize (r.rebuild a)) })
      (reroot q)

let split_scalar (type s) (sq : s Query.sq) : s split option =
  let mk (type a) (q : a Query.t) (wrap : a Query.t -> s Query.sq)
      (combine : s -> s -> s) : s split option =
    match reroot q with
    | None -> None
    | Some (Rerooted r) ->
      Some
        (Split
           {
             source_ty = r.ty;
             source = r.arr;
             rebuild = (fun a -> wrap (r.rebuild a));
             combine;
           })
  in
  match sq with
  | Query.Sum_int q -> mk q (fun q -> Query.Sum_int q) ( + )
  | Query.Sum_float q -> mk q (fun q -> Query.Sum_float q) ( +. )
  | Query.Count q -> mk q (fun q -> Query.Count q) ( + )
  | Query.Min q -> mk q (fun q -> Query.Min q) min
  | Query.Max q -> mk q (fun q -> Query.Max q) max
  | Query.Min_by (q, key) ->
    let k = Expr.stage key in
    mk q
      (fun q -> Query.Min_by (q, key))
      (fun a b -> if k b < k a then b else a)
  | Query.Max_by (q, key) ->
    let k = Expr.stage key in
    mk q
      (fun q -> Query.Max_by (q, key))
      (fun a b -> if k b > k a then b else a)
  | Query.Any q -> mk q (fun q -> Query.Any q) ( || )
  | Query.Exists (q, lam) -> mk q (fun q -> Query.Exists (q, lam)) ( || )
  | Query.For_all (q, lam) -> mk q (fun q -> Query.For_all (q, lam)) ( && )
  | Query.Contains (q, v) -> mk q (fun q -> Query.Contains (q, v)) ( || )
  (* Not associatively combinable without user-declared structure
     (section 6 defers such knowledge to DryadLINQ's annotations). *)
  | Query.Aggregate _ | Query.Aggregate_full _ | Query.Average _
  | Query.First _ | Query.Last _ | Query.Element_at _ | Query.Map_scalar _ ->
    None

let scalar_auto ?engine ?backend ?workers ?parts sq =
  let eng = engine_of engine in
  match split_scalar sq with
  | None -> Steno.Engine.scalar ?backend eng sq
  | Some (Split { source; rebuild; combine; source_ty = _ }) ->
    let workers =
      Option.value workers ~default:(Domain_pool.recommended_workers ())
    in
    let parts = Option.value parts ~default:workers in
    let parts = max 1 parts in
    if Array.length source = 0 then Steno.Engine.scalar ?backend eng sq
    else
      scalar_per_partition ~engine:eng ?backend ~workers rebuild ~combine
        (partition ~parts source)

let to_array_auto ?engine ?backend ?workers ?parts (q : 'a Query.t) : 'a array =
  let eng = engine_of engine in
  match reroot q with
  | Some (Rerooted r) when is_homomorphic q ->
    let workers =
      Option.value workers ~default:(Domain_pool.recommended_workers ())
    in
    let parts = max 1 (Option.value parts ~default:workers) in
    if Array.length r.arr = 0 then Steno.Engine.to_array ?backend eng q
    else
      let partitions = partition ~parts r.arr in
      concat
        (homomorphic_apply ~engine:eng ?backend ~workers r.ty
           (fun part -> r.rebuild part)
           partitions)
  | Some _ | None -> Steno.Engine.to_array ?backend eng q
