type 'a partitioned = 'a array array

let partition ~parts arr =
  if parts <= 0 then invalid_arg "Par.partition: parts must be positive";
  let n = Array.length arr in
  (* Never emit more partitions than rows: an empty trailing partition
     costs a full engine run and a spurious empty partial.  An empty
     input still yields one (empty) partition. *)
  let parts = max 1 (min parts n) in
  Array.init parts (fun p ->
      let lo = p * n / parts in
      let hi = (p + 1) * n / parts in
      Array.sub arr lo (hi - lo))

let concat parts = Array.concat (Array.to_list parts)

let engine_of = function
  | Some e -> e
  | None -> Steno.default_engine ()

(* Upper bounds suited to partition row counts rather than the
   millisecond-scale default buckets. *)
let row_buckets = Metrics.log_buckets ~base:4.0 ~lo:1.0 ~hi:1e9 ()

(* One vertex per partition, each under a "partition" span so per-domain
   timings reach the engine's telemetry sink, and recorded in the
   engine's metrics registry: rows fed to each partition, the wait
   between job submission and a worker picking the partition up, and the
   partition's wall time. *)
let traced_task ~eng ~sink f parts =
  let m = Steno.Engine.metrics eng in
  let rows_h =
    Metrics.histogram m "steno_partition_rows"
      ~help:"Input rows per partition" ~buckets:row_buckets
  in
  let wait_h =
    Metrics.histogram m "steno_partition_queue_wait_ms"
      ~help:"Delay between partition submission and a worker starting it"
  in
  let time_h =
    Metrics.histogram m "steno_partition_ms"
      ~help:"Wall time of one partition's execution (milliseconds)"
  in
  let submit_ms = Telemetry.now_ms () in
  fun i ->
    let start_ms = Telemetry.now_ms () in
    Metrics.observe rows_h (float_of_int (Array.length parts.(i)));
    Metrics.observe wait_h (max 0.0 (start_ms -. submit_ms));
    let r =
      Telemetry.with_span sink "partition"
        ~attrs:[ "index", string_of_int i ]
        (fun () -> f parts.(i))
    in
    Metrics.observe time_h (max 0.0 (Telemetry.now_ms () -. start_ms));
    r

let map_partitions_traced ~eng ~sink ~workers f parts =
  Domain_pool.run ~workers ~tasks:(Array.length parts)
    (traced_task ~eng ~sink f parts)

let map_partitions_until ~eng ~sink ~workers ~stop f parts =
  Domain_pool.run_until ~workers ~tasks:(Array.length parts) ~stop
    (traced_task ~eng ~sink f parts)

(* The trailing Agg* of Fig. 12, timed: an "agg-merge" span on the
   telemetry side and a [steno_agg_merge_ms] observation on the metrics
   side. *)
let merge_partials ~eng ~sink ~count merge =
  let m = Steno.Engine.metrics eng in
  let merge_h =
    Metrics.histogram m "steno_agg_merge_ms"
      ~help:"Wall time of the Agg* combining step (milliseconds)"
  in
  let t0 = Telemetry.now_ms () in
  let r =
    Telemetry.with_span sink "agg-merge"
      ~attrs:[ "partials", string_of_int count ]
      merge
  in
  Metrics.observe merge_h (max 0.0 (Telemetry.now_ms () -. t0));
  r

let homomorphic_apply ?engine ?backend ?workers _ty build parts =
  let eng = engine_of engine in
  let sink = Steno.Engine.telemetry eng in
  let workers =
    Option.value workers ~default:(Domain_pool.recommended_workers ())
  in
  (* Compile once up front: every partition's query generates identical
     source, so the parallel runs below are cache hits. *)
  if Array.length parts > 0 then
    ignore (Steno.Engine.prepare ?backend eng (build parts.(0)));
  map_partitions_traced ~eng ~sink ~workers
    (fun part -> Steno.Engine.to_array ?backend eng (build part))
    parts

let scalar_per_partition ?engine ?backend ?workers build ~combine parts =
  let eng = engine_of engine in
  let sink = Steno.Engine.telemetry eng in
  let workers =
    Option.value workers ~default:(Domain_pool.recommended_workers ())
  in
  if Array.length parts > 0 then
    ignore (Steno.Engine.prepare_scalar ?backend eng (build parts.(0)));
  let partials =
    map_partitions_traced ~eng ~sink ~workers
      (fun part ->
        match Steno.Engine.scalar ?backend eng (build part) with
        | s -> Some s
        | exception Iterator.No_such_element -> None)
      parts
  in
  let merged =
    merge_partials ~eng ~sink ~count:(Array.length partials) (fun () ->
        Array.fold_left
          (fun acc p ->
            match acc, p with
            | None, x | x, None -> x
            | Some a, Some b -> Some (combine a b))
          None partials)
  in
  match merged with
  | Some s -> s
  | None -> raise Iterator.No_such_element

(* Homomorphism check, delegated to the static classifier so the
   partitioned runner, the linter and [stenoc lint] agree on which
   operators split.  [Check_homo] also names the first blocker. *)
let is_homomorphic q = Check_homo.is_homomorphic q

(* Locate the root captured-array source of a homomorphic prefix and build
   a function that re-roots the query on a different array. *)
type 'b rerooted =
  | Rerooted : {
      ty : 'a Ty.t;
      arr : 'a array;
      rebuild : 'a array -> 'b Query.t;
    }
      -> 'b rerooted

let rec reroot : type b. b Query.t -> b rerooted option = function
  | Query.Of_array (ty, Expr.Capture (_, arr)) ->
    Some
      (Rerooted
         {
           ty;
           arr;
           rebuild = (fun a -> Query.Of_array (ty, Expr.capture (Ty.Array ty) a));
         })
  | Query.Of_array (_, _) | Query.Range _ | Query.Repeat _ -> None
  | Query.Select (q, lam) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          { r with rebuild = (fun a -> Query.Select (r.rebuild a, lam)) })
      (reroot q)
  | Query.Select_q (q, v, sq) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          { r with rebuild = (fun a -> Query.Select_q (r.rebuild a, v, sq)) })
      (reroot q)
  | Query.Where (q, lam) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted { r with rebuild = (fun a -> Query.Where (r.rebuild a, lam)) })
      (reroot q)
  | Query.Where_q (q, v, sq) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          { r with rebuild = (fun a -> Query.Where_q (r.rebuild a, v, sq)) })
      (reroot q)
  | Query.Select_many (q, v, inner) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          {
            r with
            rebuild = (fun a -> Query.Select_many (r.rebuild a, v, inner));
          })
      (reroot q)
  | Query.Select_many_result (q, v, inner, lam2) ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted
          {
            r with
            rebuild =
              (fun a -> Query.Select_many_result (r.rebuild a, v, inner, lam2));
          })
      (reroot q)
  | Query.Take _ | Query.Skip _ | Query.Take_while _ | Query.Skip_while _
  | Query.Select_i _ | Query.Where_i _ | Query.Join _ | Query.Group_by _
  | Query.Group_by_elem _ | Query.Group_by_agg _ | Query.Order_by _
  | Query.Distinct _ | Query.Rev _ ->
    None
  | Query.Materialize q ->
    Option.map
      (fun (Rerooted r) ->
        Rerooted { r with rebuild = (fun a -> Query.Materialize (r.rebuild a)) })
      (reroot q)

(* ------------------------------------------------------------------ *)
(* Typed partial-aggregation descriptors (Fig. 12): a per-partition
   rewrite injecting the partial aggregate Agg_i, the associative Agg*
   combine over partial states, and a final projection from the merged
   partial to the query's result. *)

type ('row, 'partial, 'result) decomposition = {
  inject : 'row array -> 'partial Query.sq;
  combine : 'partial -> 'partial -> 'partial;
  project : 'partial option -> 'result;
  short_circuit : ('partial -> bool) option;
}

type 'r decomposed =
  | Decomposed : {
      source_ty : 'row Ty.t;
      source : 'row array;
      decomp : ('row, 'partial, 'r) decomposition;
    }
      -> 'r decomposed

let rec decompose : type r. r Query.sq -> r decomposed option =
 fun sq ->
  let mk : type a p.
      a Query.t ->
      (a Query.t -> p Query.sq) ->
      ?short_circuit:(p -> bool) ->
      (p -> p -> p) ->
      (p option -> r) ->
      r decomposed option =
   fun q wrap ?short_circuit combine project ->
    match reroot q with
    | None -> None
    | Some (Rerooted rt) ->
      Some
        (Decomposed
           {
             source_ty = rt.ty;
             source = rt.arr;
             decomp =
               {
                 inject = (fun part -> wrap (rt.rebuild part));
                 combine;
                 project;
                 short_circuit;
               };
           })
  in
  let required = function
    | Some s -> s
    | None -> raise Iterator.No_such_element
  in
  match sq with
  (* Same-typed partials: Agg_i and Agg* are the aggregate itself. *)
  | Query.Sum_int q ->
    mk q (fun q -> Query.Sum_int q) ( + ) (Option.value ~default:0)
  | Query.Sum_float q ->
    mk q (fun q -> Query.Sum_float q) ( +. ) (Option.value ~default:0.0)
  | Query.Count q ->
    mk q (fun q -> Query.Count q) ( + ) (Option.value ~default:0)
  | Query.Min q -> mk q (fun q -> Query.Min q) min required
  | Query.Max q -> mk q (fun q -> Query.Max q) max required
  | Query.Min_by (q, key) ->
    let k = Expr.stage key in
    mk q
      (fun q -> Query.Min_by (q, key))
      (* Strict comparison keeps the leftmost element on ties, matching
         the sequential fold. *)
      (fun a b -> if k b < k a then b else a)
      required
  | Query.Max_by (q, key) ->
    let k = Expr.stage key in
    mk q
      (fun q -> Query.Max_by (q, key))
      (fun a b -> if k b > k a then b else a)
      required
  (* Distinct partial state: Average folds a (sum, count) pair per
     partition (the paper's canonical Agg_i/Agg* example). *)
  | Query.Average q ->
    let seed = Expr.Pair (Expr.float 0.0, Expr.int 0) in
    let step =
      Expr.lam2 "acc" (Ty.Pair (Ty.Float, Ty.Int)) "x" Ty.Float (fun acc x ->
          Expr.Pair
            ( Expr.Prim2 (Prim.Add_float, Expr.Fst acc, x),
              Expr.Prim2 (Prim.Add_int, Expr.Snd acc, Expr.int 1) ))
    in
    mk q
      (fun q -> Query.Aggregate (q, seed, step))
      (fun (s1, n1) (s2, n2) -> s1 +. s2, n1 + n2)
      (function
        | Some (s, n) when n > 0 -> s /. float_of_int n
        | Some _ | None -> raise Iterator.No_such_element)
  (* First/Last: the partial is the partition's own first/last element
     (None for an empty partition); the merge keeps the leftmost /
     rightmost non-empty partial, which the left-to-right fold over
     partition-ordered partials realizes as plain projections. *)
  | Query.First q -> mk q (fun q -> Query.First q) (fun a _ -> a) required
  | Query.Last q -> mk q (fun q -> Query.Last q) (fun _ b -> b) required
  (* Boolean quantifiers short-circuit: one [true] partial decides [Any]
     and [Contains], one [false] decides [For_all], so remaining
     partitions are cancelled through the pool. *)
  | Query.Any q ->
    mk q
      (fun q -> Query.Any q)
      ~short_circuit:(fun b -> b)
      ( || )
      (Option.value ~default:false)
  | Query.Exists (q, lam) ->
    mk q
      (fun q -> Query.Exists (q, lam))
      ~short_circuit:(fun b -> b)
      ( || )
      (Option.value ~default:false)
  | Query.Contains (q, v) ->
    mk q
      (fun q -> Query.Contains (q, v))
      ~short_circuit:(fun b -> b)
      ( || )
      (Option.value ~default:false)
  | Query.For_all (q, lam) ->
    mk q
      (fun q -> Query.For_all (q, lam))
      ~short_circuit:(fun b -> not b)
      ( && )
      (Option.value ~default:true)
  (* The user-declared combiner (DryadLINQ-style annotation): each
     partition folds from [seed] with [step]; partials merge with the
     declared combiner.  Injected as a plain Aggregate so all partitions
     share one compiled plan. *)
  | Query.Aggregate_combinable (q, seed, step, c) ->
    mk q
      (fun q -> Query.Aggregate (q, seed, step))
      c
      (function Some s -> s | None -> Expr.eval seed)
  (* A result selector applies once, to the merged partial. *)
  | Query.Map_scalar (inner, lam) -> (
    match decompose inner with
    | None -> None
    | Some (Decomposed d) ->
      let f = Expr.stage lam in
      Some
        (Decomposed
           {
             source_ty = d.source_ty;
             source = d.source;
             decomp =
               {
                 inject = d.decomp.inject;
                 combine = d.decomp.combine;
                 short_circuit = d.decomp.short_circuit;
                 project = (fun p -> f (d.decomp.project p));
               };
           }))
  (* No associativity annotation / globally positional: sequential. *)
  | Query.Aggregate _ | Query.Aggregate_full _ | Query.Element_at _ -> None

let run_decomposed (type row p r) ?engine ?backend ?workers
    (d : (row, p, r) decomposition) (parts : row partitioned) : r =
  let eng = engine_of engine in
  let sink = Steno.Engine.telemetry eng in
  let workers =
    Option.value workers ~default:(Domain_pool.recommended_workers ())
  in
  if Array.length parts > 0 then
    ignore (Steno.Engine.prepare_scalar ?backend eng (d.inject parts.(0)));
  let task part =
    match Steno.Engine.scalar ?backend eng (d.inject part) with
    | s -> Some s
    | exception Iterator.No_such_element -> None
  in
  let partials =
    match d.short_circuit with
    | None ->
      Array.map Option.some
        (map_partitions_traced ~eng ~sink ~workers task parts)
    | Some sc ->
      map_partitions_until ~eng ~sink ~workers
        ~stop:(function Some v -> sc v | None -> false)
        task parts
  in
  let merged =
    merge_partials ~eng ~sink ~count:(Array.length parts) (fun () ->
        Array.fold_left
          (fun acc po ->
            match acc, po with
            | x, None | x, Some None -> x
            | None, Some (Some b) -> Some b
            | Some a, Some (Some b) -> Some (d.combine a b))
          None partials)
  in
  d.project merged

(* Legacy same-typed split (partial state = result).  Superseded by
   {!decompose}, kept for callers that need the simpler shape. *)
type 's split =
  | Split : {
      source_ty : 'a Ty.t;
      source : 'a array;
      rebuild : 'a array -> 's Query.sq;
      combine : 's -> 's -> 's;
    }
      -> 's split

let split_scalar (type s) (sq : s Query.sq) : s split option =
  let mk (type a) (q : a Query.t) (wrap : a Query.t -> s Query.sq)
      (combine : s -> s -> s) : s split option =
    match reroot q with
    | None -> None
    | Some (Rerooted r) ->
      Some
        (Split
           {
             source_ty = r.ty;
             source = r.arr;
             rebuild = (fun a -> wrap (r.rebuild a));
             combine;
           })
  in
  match sq with
  | Query.Sum_int q -> mk q (fun q -> Query.Sum_int q) ( + )
  | Query.Sum_float q -> mk q (fun q -> Query.Sum_float q) ( +. )
  | Query.Count q -> mk q (fun q -> Query.Count q) ( + )
  | Query.Min q -> mk q (fun q -> Query.Min q) min
  | Query.Max q -> mk q (fun q -> Query.Max q) max
  | Query.Min_by (q, key) ->
    let k = Expr.stage key in
    mk q
      (fun q -> Query.Min_by (q, key))
      (fun a b -> if k b < k a then b else a)
  | Query.Max_by (q, key) ->
    let k = Expr.stage key in
    mk q
      (fun q -> Query.Max_by (q, key))
      (fun a b -> if k b > k a then b else a)
  | Query.Any q -> mk q (fun q -> Query.Any q) ( || )
  | Query.Exists (q, lam) -> mk q (fun q -> Query.Exists (q, lam)) ( || )
  | Query.For_all (q, lam) -> mk q (fun q -> Query.For_all (q, lam)) ( && )
  | Query.Contains (q, v) -> mk q (fun q -> Query.Contains (q, v)) ( || )
  | Query.Aggregate_combinable (q, seed, step, c) ->
    mk q (fun q -> Query.Aggregate (q, seed, step)) c
  (* Partial and result states differ ({!decompose} handles these) or no
     associative structure is known. *)
  | Query.Aggregate _ | Query.Aggregate_full _ | Query.Average _
  | Query.First _ | Query.Last _ | Query.Element_at _ | Query.Map_scalar _ ->
    None

(* Partition count for the auto helpers.  The historical default is one
   chunk per worker; an engine with adaptive optimization enabled sizes
   chunks from the input length instead ([Cost.partitions_for_rows]), so
   a small input is not shredded into chunks whose per-task dispatch
   costs more than the work they carry.  An explicit [?parts] always
   wins. *)
let auto_parts ~eng ~workers ~parts n =
  match parts with
  | Some p -> max 1 p
  | None ->
    if Steno.Engine.adaptive_config eng <> None then
      Steno.Cost.partitions_for_rows ~workers n
    else max 1 workers

let scalar_auto ?engine ?backend ?workers ?parts sq =
  let eng = engine_of engine in
  match decompose sq with
  | None -> Steno.Engine.scalar ?backend eng sq
  | Some (Decomposed { source; decomp; source_ty = _ }) ->
    let workers =
      Option.value workers ~default:(Domain_pool.recommended_workers ())
    in
    let parts = auto_parts ~eng ~workers ~parts (Array.length source) in
    if Array.length source = 0 then Steno.Engine.scalar ?backend eng sq
    else
      run_decomposed ~engine:eng ?backend ~workers decomp
        (partition ~parts source)

let to_array_auto ?engine ?backend ?workers ?parts (q : 'a Query.t) : 'a array =
  let eng = engine_of engine in
  match reroot q with
  | Some (Rerooted r) when is_homomorphic q ->
    let workers =
      Option.value workers ~default:(Domain_pool.recommended_workers ())
    in
    let parts = auto_parts ~eng ~workers ~parts (Array.length r.arr) in
    if Array.length r.arr = 0 then Steno.Engine.to_array ?backend eng q
    else
      let partitions = partition ~parts r.arr in
      concat
        (homomorphic_apply ~engine:eng ?backend ~workers r.ty
           (fun part -> r.rebuild part)
           partitions)
  | Some _ | None -> Steno.Engine.to_array ?backend eng q

(* Partitioned GroupBy-Aggregate (section 4.3 x section 6): each
   partition folds into its own per-key table of partial states; tables
   merge pairwise in rounds with the user's combiner, preserving global
   first-appearance key order. *)
let group_aggregate (type k s) ?engine ?backend ?workers ?parts
    ~(combine : s -> s -> s) (q : (k * s) Query.t) : (k * s) array =
  let eng = engine_of engine in
  let fallback () = Steno.Engine.to_array ?backend eng q in
  match q with
  | Query.Group_by_agg (src, key, seed, step) -> (
    match reroot src with
    | None -> fallback ()
    | Some (Rerooted rt) ->
      if Array.length rt.arr = 0 then fallback ()
      else begin
        let sink = Steno.Engine.telemetry eng in
        let workers =
          Option.value workers ~default:(Domain_pool.recommended_workers ())
        in
        let nparts = auto_parts ~eng ~workers ~parts (Array.length rt.arr) in
        let partitions = partition ~parts:nparts rt.arr in
        let build part =
          Query.Group_by_agg (rt.rebuild part, key, seed, step)
        in
        ignore (Steno.Engine.prepare ?backend eng (build partitions.(0)));
        let seed_v = Expr.eval seed in
        let tables =
          map_partitions_traced ~eng ~sink ~workers
            (fun part ->
              let pairs = Steno.Engine.to_array ?backend eng (build part) in
              let t =
                Lookup.Agg.create ~initial_capacity:(Array.length pairs)
                  ~seed:seed_v ()
              in
              Array.iter (fun (k, s) -> Lookup.Agg.update t k (fun _ -> s)) pairs;
              t)
            partitions
        in
        let merged =
          merge_partials ~eng ~sink ~count:(Array.length tables) (fun () ->
              let rec rounds = function
                | [] -> Lookup.Agg.create ~seed:seed_v ()
                | [ t ] -> t
                | ts ->
                  let rec pair_up = function
                    | a :: b :: rest ->
                      Lookup.Agg.combine a b combine :: pair_up rest
                    | ([ _ ] | []) as rest -> rest
                  in
                  rounds (pair_up ts)
              in
              rounds (Array.to_list tables))
        in
        Lookup.Agg.entries merged
      end)
  | _ -> fallback ()
