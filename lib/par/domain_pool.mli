(** A small fixed-size pool of OCaml domains: the thread-pool substrate
    that PLINQ provides in the paper (section 6).

    Tasks are indexed; workers pull indices from a shared atomic counter,
    so imbalanced tasks still load-balance.  Exceptions in a task are
    re-raised in the caller after all workers finish. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count], capped to a sane bound. *)

val run : workers:int -> tasks:int -> (int -> 'r) -> 'r array
(** [run ~workers ~tasks f] computes [f i] for every [0 <= i < tasks]
    using at most [workers] domains (plus the caller, which also works),
    and returns results in task order. *)

val map_array : workers:int -> ('a -> 'b) -> 'a array -> 'b array
