let recommended_workers () = min (Domain.recommended_domain_count ()) 16

let run (type r) ~workers ~tasks (f : int -> r) : r array =
  if tasks = 0 then [||]
  else begin
    let workers = max 1 (min workers tasks) in
    let results : r option array = Array.make tasks None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < tasks && Atomic.get failure = None then begin
          (match f i with
          | r -> results.(i) <- Some r
          | exception e ->
            (* First failure wins; remaining tasks are abandoned. *)
            ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (workers - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> assert false)
      results
  end

let map_array ~workers f arr =
  run ~workers ~tasks:(Array.length arr) (fun i -> f arr.(i))
