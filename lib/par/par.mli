(** Multiprocessor query execution (section 6 of the paper).

    A query over partitioned data executes in parallel when its operators
    are homomorphic (apply to each element independently): the
    homomorphic prefix runs on every partition as an independent subquery
    — compiled once by Steno and reused, since partitions only differ in
    the captured source array — and an associative trailing aggregation is
    split into per-partition partial aggregations [Agg_i] combined by a
    final [Agg*] (Fig. 12). *)

type 'a partitioned = 'a array array

val partition : parts:int -> 'a array -> 'a partitioned
(** Split into [parts] contiguous chunks of near-equal size (at most one
    element difference).  [parts] must be positive; empty chunks are
    produced when there are fewer elements than parts. *)

val concat : 'a partitioned -> 'a array

(** {1 Explicit parallel operators}

    Every operator takes an optional [?engine]: the queries prepare and
    run through it (its backend, plugin cache and failure policy), and
    its telemetry sink receives one ["partition"] span per vertex — timed
    on the worker domain that ran it — plus an ["agg-merge"] span for the
    combining step.  Default: [Steno.default_engine ()].  [?backend]
    overrides the engine's backend per call. *)

val homomorphic_apply :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  'a Ty.t ->
  ('a array -> 'b Query.t) ->
  'a partitioned ->
  'b partitioned
(** The paper's [HomomorphicApply] PLINQ operator: apply a compiled
    subquery to each partition in parallel, yielding a new set of
    partitions.  The query builder receives the partition's data; with the
    [Native] backend the generated plugin is compiled once and shared by
    all partitions (identical source, different capture environment). *)

val scalar_per_partition :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ('a array -> 's Query.sq) ->
  combine:('s -> 's -> 's) ->
  'a partitioned ->
  's
(** Per-partition partial aggregation plus an [Agg*] combining step.
    Raises [Iterator.No_such_element] if every partition is empty and the
    subquery requires a non-empty input. *)

(** {1 Automatic splitting} *)

val is_homomorphic : 'a Query.t -> bool
(** True when every operator applies to each element independently
    (Trans, Pred and nested operators — not sinks, not Take/Skip). *)

type 's split =
  | Split : {
      source_ty : 'a Ty.t;
      source : 'a array;
      rebuild : 'a array -> 's Query.sq;
          (** The per-partition subquery: the original query with its
              source replaced by a partition. *)
      combine : 's -> 's -> 's;  (** The [Agg*] operator. *)
    }
      -> 's split

val split_scalar : 's Query.sq -> 's split option
(** Analyze a scalar query: if it is a homomorphic prefix over a captured
    array source followed by an associative aggregation, return the
    partitioned execution plan.  [None] when the query cannot be split
    (non-associative aggregate, non-homomorphic operator, or a computed
    source). *)

val scalar_auto :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ?parts:int ->
  's Query.sq ->
  's
(** Run a scalar query in parallel when {!split_scalar} finds a plan, and
    sequentially otherwise. *)

val to_array_auto :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ?parts:int ->
  'a Query.t ->
  'a array
(** Run a collection query in parallel when it is a homomorphic prefix
    over a captured array source (per-partition results concatenate in
    partition order, preserving the sequential result exactly);
    sequentially otherwise. *)
