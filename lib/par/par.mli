(** Multiprocessor query execution (section 6 of the paper).

    A query over partitioned data executes in parallel when its operators
    are homomorphic (apply to each element independently): the
    homomorphic prefix runs on every partition as an independent subquery
    — compiled once by Steno and reused, since partitions only differ in
    the captured source array — and an associative trailing aggregation is
    split into per-partition partial aggregations [Agg_i] combined by a
    final [Agg*] (Fig. 12). *)

type 'a partitioned = 'a array array

val partition : parts:int -> 'a array -> 'a partitioned
(** Split into [parts] contiguous chunks of near-equal size (at most one
    element difference).  [parts] must be positive and is capped at the
    row count, so no empty chunk is ever produced (each would cost a
    full engine run); an empty input yields a single empty chunk. *)

val concat : 'a partitioned -> 'a array

(** {1 Explicit parallel operators}

    Every operator takes an optional [?engine]: the queries prepare and
    run through it (its backend, plugin cache and failure policy), and
    its telemetry sink receives one ["partition"] span per vertex — timed
    on the worker domain that ran it — plus an ["agg-merge"] span for the
    combining step.  Default: [Steno.default_engine ()].  [?backend]
    overrides the engine's backend per call. *)

val homomorphic_apply :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  'a Ty.t ->
  ('a array -> 'b Query.t) ->
  'a partitioned ->
  'b partitioned
(** The paper's [HomomorphicApply] PLINQ operator: apply a compiled
    subquery to each partition in parallel, yielding a new set of
    partitions.  The query builder receives the partition's data; with the
    [Native] backend the generated plugin is compiled once and shared by
    all partitions (identical source, different capture environment). *)

val scalar_per_partition :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ('a array -> 's Query.sq) ->
  combine:('s -> 's -> 's) ->
  'a partitioned ->
  's
(** Per-partition partial aggregation plus an [Agg*] combining step.
    Raises [Iterator.No_such_element] if every partition is empty and the
    subquery requires a non-empty input. *)

(** {1 Automatic splitting} *)

val is_homomorphic : 'a Query.t -> bool
(** True when every operator applies to each element independently
    (Trans, Pred and nested operators — not sinks, not Take/Skip). *)

(** {2 Typed partial aggregation (Fig. 12)}

    A decomposition is the paper's [Agg_i]/[Agg*] split as a first-class
    value: [inject] rewrites a partition into the per-partition subquery
    ending in the partial aggregate [Agg_i]; [combine] is the
    associative [Agg*] merge over partial states; [project] maps the
    merged partial (or [None] when every partition was empty or
    cancelled) to the query's result.  [short_circuit] flags a partial
    that decides the whole query (e.g. a [true] for [Any]), cancelling
    the remaining partitions through {!Domain_pool.run_until}. *)
type ('row, 'partial, 'result) decomposition = {
  inject : 'row array -> 'partial Query.sq;
  combine : 'partial -> 'partial -> 'partial;
  project : 'partial option -> 'result;
  short_circuit : ('partial -> bool) option;
}

type 'r decomposed =
  | Decomposed : {
      source_ty : 'row Ty.t;
      source : 'row array;
      decomp : ('row, 'partial, 'r) decomposition;
    }
      -> 'r decomposed

val decompose : 'r Query.sq -> 'r decomposed option
(** Analyze a scalar query: if it is a homomorphic prefix over a
    captured array source ending in a decomposable aggregate, return the
    partitioned execution plan.  Covers the same-typed aggregates of
    {!split_scalar} plus [Average] (a [(sum, count)] pair partial),
    [First]/[Last] (leftmost/rightmost non-empty partial),
    short-circuiting [Any]/[Exists]/[Contains]/[For_all], user
    aggregates declared combinable with [Query.aggregate ?combine], and
    [Map_scalar] over any of these.  [None] when the query cannot be
    split (opaque aggregate, non-homomorphic operator, or a computed
    source); agrees with [Check_homo.aggregate_combinability]. *)

val run_decomposed :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ('row, 'partial, 'r) decomposition ->
  'row partitioned ->
  'r
(** Execute a decomposition: one [Agg_i] subquery per partition on the
    pool (compiled once, shared), then the [Agg*] merge — timed under an
    ["agg-merge"] span and the [steno_agg_merge_ms] histogram — and the
    final projection. *)

type 's split =
  | Split : {
      source_ty : 'a Ty.t;
      source : 'a array;
      rebuild : 'a array -> 's Query.sq;
          (** The per-partition subquery: the original query with its
              source replaced by a partition. *)
      combine : 's -> 's -> 's;  (** The [Agg*] operator. *)
    }
      -> 's split

val split_scalar : 's Query.sq -> 's split option
(** The legacy same-typed analysis (partial state = result type),
    superseded by {!decompose}: [None] for [Average]/[First]/[Last]/
    [Map_scalar] even though those decompose. *)

val scalar_auto :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ?parts:int ->
  's Query.sq ->
  's
(** Run a scalar query in parallel when {!decompose} finds a plan, and
    sequentially otherwise.  [?parts] defaults to one chunk per worker —
    unless the engine has adaptive optimization enabled
    ([Steno.Config.with_adaptive]), in which case the partition count is
    derived from the input length ([Steno.Cost.partitions_for_rows]), so
    tiny inputs run in one chunk.  The same default applies to
    {!to_array_auto} and {!group_aggregate}. *)

val to_array_auto :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ?parts:int ->
  'a Query.t ->
  'a array
(** Run a collection query in parallel when it is a homomorphic prefix
    over a captured array source (per-partition results concatenate in
    partition order, preserving the sequential result exactly);
    sequentially otherwise. *)

val group_aggregate :
  ?engine:Steno.Engine.t ->
  ?backend:Steno.backend ->
  ?workers:int ->
  ?parts:int ->
  combine:('s -> 's -> 's) ->
  ('k * 's) Query.t ->
  ('k * 's) array
(** Partitioned GroupBy-Aggregate (section 4.3 x section 6): when the
    query is a [Group_by_agg] over a reroutable homomorphic prefix, each
    partition folds into its own per-key [Lookup] of partial states and
    the tables merge pairwise in rounds with [combine] (which must be
    associative, with the per-key fold satisfying the usual homomorphism
    law), preserving global first-appearance key order.  Any other query
    shape — or an empty source — runs sequentially through the engine. *)
