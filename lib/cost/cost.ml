(* Per-plan runtime statistics.  See cost.mli for the design notes. *)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

(* Variable ids are globally unique per [Expr.fresh_var] call, so two
   structurally identical plans built separately never share ids.  The
   fingerprint renames every id to its first-occurrence index during the
   walk, making the rendering alpha-invariant.  Captured values render
   as their type only: a plan over different data (or a re-built
   identical plan whose captures are fresh) must share one entry. *)

type fpctx = {
  buf : Buffer.t;
  vars : (int, int) Hashtbl.t;
  mutable next : int;
}

let fpctx_create () =
  { buf = Buffer.create 256; vars = Hashtbl.create 16; next = 0 }

let fp_var ctx (v : _ Expr.var) =
  let idx =
    match Hashtbl.find_opt ctx.vars v.Expr.id with
    | Some i -> i
    | None ->
      let i = ctx.next in
      ctx.next <- i + 1;
      Hashtbl.add ctx.vars v.Expr.id i;
      i
  in
  Buffer.add_string ctx.buf "v";
  Buffer.add_string ctx.buf (string_of_int idx)

let fp_str ctx s = Buffer.add_string ctx.buf s

let rec fp_expr : type a. fpctx -> a Expr.t -> unit =
 fun ctx e ->
  let p = fp_str ctx in
  match e with
  | Expr.Var v -> fp_var ctx v
  | Expr.Const_unit -> p "()"
  | Expr.Const_bool b -> p (if b then "true" else "false")
  | Expr.Const_int i ->
    p "(int ";
    p (string_of_int i);
    p ")"
  | Expr.Const_float f ->
    p "(float ";
    p (string_of_float f);
    p ")"
  | Expr.Const_string s ->
    p "(string ";
    p (String.escaped s);
    p ")"
  | Expr.Capture (ty, _) ->
    p "(capture ";
    p (Ty.to_string ty);
    p ")"
  | Expr.If (c, t, e') ->
    p "(if ";
    fp_expr ctx c;
    p " ";
    fp_expr ctx t;
    p " ";
    fp_expr ctx e';
    p ")"
  | Expr.Let (v, rhs, body) ->
    p "(let ";
    fp_var ctx v;
    p " ";
    fp_expr ctx rhs;
    p " ";
    fp_expr ctx body;
    p ")"
  | Expr.Pair (a, b) ->
    p "(pair ";
    fp_expr ctx a;
    p " ";
    fp_expr ctx b;
    p ")"
  | Expr.Fst e' ->
    p "(fst ";
    fp_expr ctx e';
    p ")"
  | Expr.Snd e' ->
    p "(snd ";
    fp_expr ctx e';
    p ")"
  | Expr.Triple (a, b, c) ->
    p "(triple ";
    fp_expr ctx a;
    p " ";
    fp_expr ctx b;
    p " ";
    fp_expr ctx c;
    p ")"
  | Expr.Proj3_1 e' ->
    p "(p31 ";
    fp_expr ctx e';
    p ")"
  | Expr.Proj3_2 e' ->
    p "(p32 ";
    fp_expr ctx e';
    p ")"
  | Expr.Proj3_3 e' ->
    p "(p33 ";
    fp_expr ctx e';
    p ")"
  | Expr.Prim1 (op, a) ->
    p "(";
    p (Prim.name1 op);
    p " ";
    fp_expr ctx a;
    p ")"
  | Expr.Prim2 (op, a, b) ->
    p "(";
    p (Prim.name2 op);
    p " ";
    fp_expr ctx a;
    p " ";
    fp_expr ctx b;
    p ")"
  | Expr.Array_get (arr, i) ->
    p "(get ";
    fp_expr ctx arr;
    p " ";
    fp_expr ctx i;
    p ")"
  | Expr.Array_length arr ->
    p "(len ";
    fp_expr ctx arr;
    p ")"
  | Expr.Apply (f, x) ->
    p "(apply ";
    fp_expr ctx f;
    p " ";
    fp_expr ctx x;
    p ")"

let fp_lam ctx (l : (_, _) Expr.lam) =
  fp_str ctx "(lam ";
  fp_var ctx l.Expr.param;
  fp_str ctx " ";
  fp_expr ctx l.Expr.body;
  fp_str ctx ")"

let fp_lam2 ctx (l : (_, _, _) Expr.lam2) =
  fp_str ctx "(lam2 ";
  fp_var ctx l.Expr.param1;
  fp_str ctx " ";
  fp_var ctx l.Expr.param2;
  fp_str ctx " ";
  fp_expr ctx l.Expr.body2;
  fp_str ctx ")"

let fp_order ctx = function
  | Query.Ascending -> fp_str ctx "asc"
  | Query.Descending -> fp_str ctx "desc"

let rec fp_query : type a. fpctx -> a Query.t -> unit =
 fun ctx q ->
  let p = fp_str ctx in
  match q with
  | Query.Of_array (ty, arr) ->
    p "(of-array ";
    p (Ty.to_string ty);
    p " ";
    fp_expr ctx arr;
    p ")"
  | Query.Range (start, count) ->
    p "(range ";
    fp_expr ctx start;
    p " ";
    fp_expr ctx count;
    p ")"
  | Query.Repeat (ty, v, count) ->
    p "(repeat ";
    p (Ty.to_string ty);
    p " ";
    fp_expr ctx v;
    p " ";
    fp_expr ctx count;
    p ")"
  | Query.Select (q0, l) ->
    p "(select ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx l;
    p ")"
  | Query.Select_i (q0, l) ->
    p "(select-i ";
    fp_query ctx q0;
    p " ";
    fp_lam2 ctx l;
    p ")"
  | Query.Select_q (q0, v, sq) ->
    p "(select-q ";
    fp_query ctx q0;
    p " ";
    fp_var ctx v;
    p " ";
    fp_sq ctx sq;
    p ")"
  | Query.Where (q0, l) ->
    p "(where ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx l;
    p ")"
  | Query.Where_i (q0, l) ->
    p "(where-i ";
    fp_query ctx q0;
    p " ";
    fp_lam2 ctx l;
    p ")"
  | Query.Where_q (q0, v, sq) ->
    p "(where-q ";
    fp_query ctx q0;
    p " ";
    fp_var ctx v;
    p " ";
    fp_sq ctx sq;
    p ")"
  | Query.Take (q0, n) ->
    p "(take ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx n;
    p ")"
  | Query.Skip (q0, n) ->
    p "(skip ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx n;
    p ")"
  | Query.Take_while (q0, l) ->
    p "(take-while ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx l;
    p ")"
  | Query.Skip_while (q0, l) ->
    p "(skip-while ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx l;
    p ")"
  | Query.Select_many (q0, v, inner) ->
    p "(select-many ";
    fp_query ctx q0;
    p " ";
    fp_var ctx v;
    p " ";
    fp_query ctx inner;
    p ")"
  | Query.Select_many_result (q0, v, inner, l) ->
    p "(select-many-result ";
    fp_query ctx q0;
    p " ";
    fp_var ctx v;
    p " ";
    fp_query ctx inner;
    p " ";
    fp_lam2 ctx l;
    p ")"
  | Query.Join (outer, inner, ko, ki, sel) ->
    p "(join ";
    fp_query ctx outer;
    p " ";
    fp_query ctx inner;
    p " ";
    fp_lam ctx ko;
    p " ";
    fp_lam ctx ki;
    p " ";
    fp_lam2 ctx sel;
    p ")"
  | Query.Group_by (q0, k) ->
    p "(group-by ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx k;
    p ")"
  | Query.Group_by_elem (q0, k, e) ->
    p "(group-by-elem ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx k;
    p " ";
    fp_lam ctx e;
    p ")"
  | Query.Group_by_agg (q0, k, seed, step) ->
    p "(group-by-agg ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx k;
    p " ";
    fp_expr ctx seed;
    p " ";
    fp_lam2 ctx step;
    p ")"
  | Query.Order_by (q0, k, ord) ->
    p "(order-by ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx k;
    p " ";
    fp_order ctx ord;
    p ")"
  | Query.Distinct q0 ->
    p "(distinct ";
    fp_query ctx q0;
    p ")"
  | Query.Rev q0 ->
    p "(rev ";
    fp_query ctx q0;
    p ")"
  | Query.Materialize q0 ->
    p "(materialize ";
    fp_query ctx q0;
    p ")"

and fp_sq : type s. fpctx -> s Query.sq -> unit =
 fun ctx sq ->
  let p = fp_str ctx in
  match sq with
  | Query.Aggregate (q0, seed, step) ->
    p "(aggregate ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx seed;
    p " ";
    fp_lam2 ctx step;
    p ")"
  | Query.Aggregate_full (q0, seed, step, sel) ->
    p "(aggregate-full ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx seed;
    p " ";
    fp_lam2 ctx step;
    p " ";
    fp_lam ctx sel;
    p ")"
  | Query.Aggregate_combinable (q0, seed, step, _combine) ->
    (* The combiner is an opaque host closure; like a capture it
       contributes no structure to the key. *)
    p "(aggregate-combinable ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx seed;
    p " ";
    fp_lam2 ctx step;
    p ")"
  | Query.Sum_int q0 ->
    p "(sum-int ";
    fp_query ctx q0;
    p ")"
  | Query.Sum_float q0 ->
    p "(sum-float ";
    fp_query ctx q0;
    p ")"
  | Query.Count q0 ->
    p "(count ";
    fp_query ctx q0;
    p ")"
  | Query.Average q0 ->
    p "(average ";
    fp_query ctx q0;
    p ")"
  | Query.Min q0 ->
    p "(min ";
    fp_query ctx q0;
    p ")"
  | Query.Max q0 ->
    p "(max ";
    fp_query ctx q0;
    p ")"
  | Query.Min_by (q0, k) ->
    p "(min-by ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx k;
    p ")"
  | Query.Max_by (q0, k) ->
    p "(max-by ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx k;
    p ")"
  | Query.First q0 ->
    p "(first ";
    fp_query ctx q0;
    p ")"
  | Query.Last q0 ->
    p "(last ";
    fp_query ctx q0;
    p ")"
  | Query.Element_at (q0, i) ->
    p "(element-at ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx i;
    p ")"
  | Query.Any q0 ->
    p "(any ";
    fp_query ctx q0;
    p ")"
  | Query.Exists (q0, l) ->
    p "(exists ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx l;
    p ")"
  | Query.For_all (q0, l) ->
    p "(for-all ";
    fp_query ctx q0;
    p " ";
    fp_lam ctx l;
    p ")"
  | Query.Contains (q0, e) ->
    p "(contains ";
    fp_query ctx q0;
    p " ";
    fp_expr ctx e;
    p ")"
  | Query.Map_scalar (sq0, l) ->
    p "(map-scalar ";
    fp_sq ctx sq0;
    p " ";
    fp_lam ctx l;
    p ")"

let pred_digest (l : (_, bool) Expr.lam) =
  let ctx = fpctx_create () in
  fp_lam ctx l;
  Buffer.contents ctx.buf

let pred_label (l : (_, bool) Expr.lam) =
  let ctx = fpctx_create () in
  (* Pre-register the parameter so the body renders with v0 bound, then
     show the body alone: the (lam v0 ...) wrapper is noise here. *)
  fp_var ctx l.Expr.param;
  Buffer.clear ctx.buf;
  fp_expr ctx l.Expr.body;
  let s = Buffer.contents ctx.buf in
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

let plan_key ~optimize q =
  let ctx = fpctx_create () in
  fp_str ctx (if optimize then "O1:Q:" else "O0:Q:");
  fp_query ctx q;
  Buffer.contents ctx.buf

let scalar_key ~optimize sq =
  let ctx = fpctx_create () in
  fp_str ctx (if optimize then "O1:S:" else "O0:S:");
  fp_sq ctx sq;
  Buffer.contents ctx.buf

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type pred_obs = { mutable ob_tested : int; mutable ob_passed : int }

type entry = {
  mutable e_epoch : int;
  mutable e_runs : int;
  mutable e_source_rows : int;
  e_preds : (string, pred_obs) Hashtbl.t;
}

type t = { mu : Mutex.t; tbl : (string, entry) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 16 }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let entry_of t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e
  | None ->
    let e =
      { e_epoch = 0; e_runs = 0; e_source_rows = 0;
        e_preds = Hashtbl.create 4 }
    in
    Hashtbl.add t.tbl key e;
    e

type pred_delta = { pd_digest : string; pd_tested : int; pd_passed : int }

let record t ~key ~source_rows deltas =
  with_lock t (fun () ->
      let e = entry_of t key in
      e.e_runs <- e.e_runs + 1;
      e.e_source_rows <- e.e_source_rows + max 0 source_rows;
      List.iter
        (fun d ->
          let ob =
            match Hashtbl.find_opt e.e_preds d.pd_digest with
            | Some ob -> ob
            | None ->
              let ob = { ob_tested = 0; ob_passed = 0 } in
              Hashtbl.add e.e_preds d.pd_digest ob;
              ob
          in
          ob.ob_tested <- ob.ob_tested + max 0 d.pd_tested;
          ob.ob_passed <- ob.ob_passed + max 0 d.pd_passed)
        deltas)

let retire t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> ()
      | Some e ->
        e.e_epoch <- e.e_epoch + 1;
        e.e_runs <- 0;
        e.e_source_rows <- 0;
        Hashtbl.reset e.e_preds)

let epoch t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> 0
      | Some e -> e.e_epoch)

let runs t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> 0
      | Some e -> e.e_runs)

let avg_source_rows t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some e ->
        (* Zero-row guard: no runs yet means no average to report. *)
        if e.e_runs <= 0 then None
        else Some (float_of_int e.e_source_rows /. float_of_int e.e_runs))

let observed t ~key ~digest =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some e ->
        (match Hashtbl.find_opt e.e_preds digest with
        | None -> None
        | Some ob -> Some (ob.ob_tested, ob.ob_passed)))

let selectivity t ~key ~digest =
  match observed t ~key ~digest with
  | None -> None
  | Some (tested, passed) ->
    (* Zero-row guard: a predicate never tested on a row (empty source,
       upstream filter passed nothing) has no observable selectivity. *)
    if tested <= 0 then None
    else Some (float_of_int passed /. float_of_int tested)

type pred_snapshot = {
  sn_digest : string;
  sn_tested : int;
  sn_passed : int;
}

type snapshot = {
  sn_epoch : int;
  sn_runs : int;
  sn_source_rows : int;
  sn_preds : pred_snapshot list;
}

let snapshot t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some e ->
        let preds =
          Hashtbl.fold
            (fun digest ob acc ->
              { sn_digest = digest;
                sn_tested = ob.ob_tested;
                sn_passed = ob.ob_passed }
              :: acc)
            e.e_preds []
          |> List.sort (fun a b -> compare a.sn_digest b.sn_digest)
        in
        Some
          { sn_epoch = e.e_epoch;
            sn_runs = e.e_runs;
            sn_source_rows = e.e_source_rows;
            sn_preds = preds })

(* ------------------------------------------------------------------ *)
(* Heuristics                                                          *)
(* ------------------------------------------------------------------ *)

let chunk_rows = 4096

let partitions_for_rows ~workers rows =
  let workers = max 1 workers in
  if rows <= 0 then 1
  else max 1 (min workers ((rows + chunk_rows - 1) / chunk_rows))
