(** Per-plan runtime statistics: the store that closes the
    profiler→optimizer loop.

    The profiler (PR 3) measures per-operator rows; the optimizer (PR 2)
    rewrites purely syntactically.  This module connects them: a small
    concurrent store keyed by a {e plan fingerprint} accumulates, per
    prepared plan, the observed source cardinality and the observed
    selectivity of every [Where] predicate, fed by the engine from
    [profile:true] probe snapshots after each run.  The engine's
    adaptive phase ([Config.with_adaptive]) reads the store back to
    reorder commuting predicates by measured selectivity, choose a
    backend from estimated input size, and derive partition counts for
    [Par].

    {b Keys.}  Plans are keyed by a structural fingerprint that
    canonicalizes variable identifiers (so the same pipeline built twice
    fingerprints identically) and renders captured values as their type
    only (so one plan over different data shares statistics — matching
    the plugin-cache-key semantics).  The optimizer flag is part of the
    key, the profile flag deliberately is not: profiled runs must feed
    the statistics that unprofiled preparations consume.

    {b Epochs.}  Statistics carry an epoch.  When a prepared plan's
    fresh observations drift from its compile-time assumptions, the
    engine {!retire}s the entry — bumping the epoch and dropping every
    accumulated count — before seeding it with post-drift observations.
    Retiring rather than averaging is what keeps a selectivity flip from
    poisoning the re-optimized plan with stale history.

    {b Divisions.}  Every rows-out/rows-in ratio in this module is
    guarded: zero-row observations (an empty source, a predicate that
    never ran) yield [None], never a NaN or an exception. *)

type t
(** A statistics store.  Domain-safe: every operation takes an internal
    lock; all are O(plan size) or better. *)

val create : unit -> t

(** {1 Fingerprints} *)

val pred_digest : ('a, bool) Expr.lam -> string
(** Canonical fingerprint of a predicate lambda.  Variable ids are
    renamed in traversal order, so alpha-equivalent predicates (e.g. a
    conjunct before and after [where-fuse] re-parameterized it) digest
    identically; captured values render as their type only. *)

val pred_label : ('a, bool) Expr.lam -> string
(** A short human-readable sketch of the predicate body (a truncated
    rendering of the digest), for decision strings and [stenoc cost]
    output. *)

val plan_key : optimize:bool -> 'a Query.t -> string
(** Fingerprint of a collection plan, prefixed with the optimizer flag
    (an engine with [optimize = false] must not consume statistics
    observed under the rewritten plan, and vice versa). *)

val scalar_key : optimize:bool -> 's Query.sq -> string

(** {1 Recording} *)

type pred_delta = {
  pd_digest : string;
  pd_tested : int;  (** rows entering the predicate this run *)
  pd_passed : int;  (** rows leaving it this run *)
}

val record :
  t -> key:string -> source_rows:int -> pred_delta list -> unit
(** Fold one run's per-operator deltas into the entry for [key]
    (creating it at epoch 0 if absent).  Negative deltas are clamped to
    zero — a defensive measure against probe/plan mismatches, not an
    expected input. *)

val retire : t -> key:string -> unit
(** Drop every accumulated observation for [key] and advance its epoch.
    Called by the engine on drift, {e before} seeding the entry with the
    post-drift run: the new plan's statistics must not average in the
    old distribution. *)

(** {1 Reading} *)

val epoch : t -> key:string -> int
(** 0 for an entry never retired (or never seen). *)

val runs : t -> key:string -> int

val avg_source_rows : t -> key:string -> float option
(** Mean observed source cardinality per run; [None] with no recorded
    runs (the guard for the rows/runs division). *)

val selectivity : t -> key:string -> digest:string -> float option
(** Observed pass fraction of the predicate with this digest, in the
    current epoch; [None] when the predicate was never tested on a row
    (the guard for the passed/tested division). *)

val observed : t -> key:string -> digest:string -> (int * int) option
(** Raw [(tested, passed)] totals for the current epoch. *)

type pred_snapshot = {
  sn_digest : string;
  sn_tested : int;
  sn_passed : int;
}

type snapshot = {
  sn_epoch : int;
  sn_runs : int;
  sn_source_rows : int;
  sn_preds : pred_snapshot list;
}

val snapshot : t -> key:string -> snapshot option
(** The whole entry, for inspection ([stenoc cost], tests). *)

(** {1 Heuristics} *)

val partitions_for_rows : workers:int -> int -> int
(** Partition count for a parallel run over this many rows: about one
    partition per 4096-row chunk, clamped to [[1, workers]] — so tiny
    inputs stop paying per-partition staging for workers that would
    each see a handful of rows. *)
