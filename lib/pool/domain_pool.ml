let recommended_workers () = min (Domain.recommended_domain_count ()) 16

(* A lazily-created persistent pool.  Worker domains are spawned on first
   demand, kept for the life of the process, and serve every subsequent
   job; submitting a job never spawns per-call domains.  Workers pull
   *chunks* of task indices from the job's shared atomic cursor, so the
   handout cost is amortized over many tasks while imbalanced tasks still
   load-balance.

   A job caps its helpers with a slot counter ([workers - 1] slots: the
   caller always participates), so a pool grown to N domains by one large
   job does not over-parallelize a later [~workers:2] job.  Idle workers
   block on [pool_cv]; they are never joined — a domain blocked in
   [Condition.wait] does not prevent process exit. *)

type job = {
  job_capacity : unit -> bool;
      (* a helper slot is free and work remains to hand out *)
  job_acquire : unit -> bool;  (* take a helper slot *)
  job_grab : unit -> (unit -> unit) option;  (* next chunk as a thunk *)
}

let pool_mu = Mutex.create ()
let pool_cv = Condition.create ()
let jobs : job list ref = ref []
let spawned = Atomic.make 0
let submitted = Atomic.make 0
let max_pool_domains = 32

(* Jobs submitted from inside a pool worker run inline on the caller:
   blocking a worker on a nested job could deadlock the pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker () =
  Domain.DLS.set in_worker true;
  let rec serve () =
    let j =
      Mutex.lock pool_mu;
      let rec wait_for_job () =
        match List.find_opt (fun j -> j.job_capacity ()) !jobs with
        | Some j -> j
        | None ->
          Condition.wait pool_cv pool_mu;
          wait_for_job ()
      in
      let j = wait_for_job () in
      Mutex.unlock pool_mu;
      j
    in
    (if j.job_acquire () then
       let rec drain () =
         match j.job_grab () with
         | Some thunk ->
           thunk ();
           drain ()
         | None -> ()
       in
       drain ());
    serve ()
  in
  serve ()

let ensure_workers n =
  let n = min n max_pool_domains in
  let rec grow () =
    let cur = Atomic.get spawned in
    if cur < n then
      if Atomic.compare_and_set spawned cur (cur + 1) then begin
        ignore (Domain.spawn worker : unit Domain.t);
        grow ()
      end
      else grow ()
  in
  grow ()

let pool_size () = Atomic.get spawned
let jobs_run () = Atomic.get submitted

(* Inline execution: used for [workers = 1] and for nested submissions. *)
let seq_run (type r) ~tasks ~(stop : (r -> bool) option) (f : int -> r) :
    r option array * exn option =
  let results : r option array = Array.make tasks None in
  let failure = ref None in
  (try
     let stopped = ref false in
     let i = ref 0 in
     while (not !stopped) && !i < tasks do
       let r = f !i in
       results.(!i) <- Some r;
       (match stop with Some p when p r -> stopped := true | _ -> ());
       incr i
     done
   with e -> failure := Some e);
  results, !failure

let par_run (type r) ~workers ~tasks ~(stop : (r -> bool) option)
    (f : int -> r) : r option array * exn option =
  Atomic.incr submitted;
  ensure_workers (workers - 1);
  let results : r option array = Array.make tasks None in
  let failure = Atomic.make None in
  let cancelled = Atomic.make false in
  let next = Atomic.make 0 in
  let chunk = max 1 (tasks / (workers * 8)) in
  let slots = Atomic.make (workers - 1) in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let accounted = ref 0 in
  let job_cell = ref None in
  (* Every handed-out chunk is accounted exactly once, executed or
     skipped; the job completes when all [tasks] indices are accounted,
     and the completer retires it from the queue. *)
  let account n =
    Mutex.lock mu;
    accounted := !accounted + n;
    let all = !accounted >= tasks in
    if all then Condition.broadcast cv;
    Mutex.unlock mu;
    if all then begin
      Mutex.lock pool_mu;
      (match !job_cell with
      | Some j -> jobs := List.filter (fun j' -> j' != j) !jobs
      | None -> ());
      Condition.broadcast pool_cv;
      Mutex.unlock pool_mu
    end
  in
  let run_range lo hi =
    let n = hi - lo in
    if Atomic.get cancelled then account n
    else begin
      (try
         for i = lo to hi - 1 do
           if not (Atomic.get cancelled) then
             match f i with
             | r ->
               results.(i) <- Some r;
               (match stop with
               | Some p when p r -> Atomic.set cancelled true
               | _ -> ())
             | exception e ->
               (* First failure wins; remaining tasks are abandoned. *)
               if Atomic.compare_and_set failure None (Some e) then
                 Atomic.set cancelled true
         done
       with e ->
         (* A [stop] predicate raised. *)
         if Atomic.compare_and_set failure None (Some e) then
           Atomic.set cancelled true);
      account n
    end
  in
  let grab () =
    let lo = Atomic.fetch_and_add next chunk in
    if lo >= tasks then None
    else begin
      let hi = min tasks (lo + chunk) in
      Some (fun () -> run_range lo hi)
    end
  in
  let job =
    {
      job_capacity =
        (fun () -> Atomic.get slots > 0 && Atomic.get next < tasks);
      job_acquire =
        (fun () ->
          let rec go () =
            let s = Atomic.get slots in
            if s <= 0 then false
            else if Atomic.compare_and_set slots s (s - 1) then true
            else go ()
          in
          go ());
      job_grab = grab;
    }
  in
  job_cell := Some job;
  Mutex.lock pool_mu;
  jobs := !jobs @ [ job ];
  Condition.broadcast pool_cv;
  Mutex.unlock pool_mu;
  (* The caller participates too. *)
  let rec drain () =
    match grab () with
    | Some thunk ->
      thunk ();
      drain ()
    | None -> ()
  in
  drain ();
  Mutex.lock mu;
  while !accounted < tasks do
    Condition.wait cv mu
  done;
  Mutex.unlock mu;
  results, Atomic.get failure

let run_general ~workers ~tasks ~stop f =
  let workers = max 1 (min workers tasks) in
  if workers = 1 || Domain.DLS.get in_worker then seq_run ~tasks ~stop f
  else par_run ~workers ~tasks ~stop f

(* Trace-context propagation: a worker domain has no request context of
   its own, so tasks scheduled with [?ctx] are wrapped to re-root the
   scheduling request's trace on whichever domain runs them.  The wrap
   is also applied on the caller's own chunks — [with_ctx] is
   reentrant, so that is just a cheap DLS save/restore. *)
let with_task_ctx ctx f =
  match ctx with
  | None -> f
  | Some _ -> fun i -> Trace.with_ctx ctx (fun () -> f i)

let run (type r) ?ctx ~workers ~tasks (f : int -> r) : r array =
  if tasks = 0 then [||]
  else begin
    let f = with_task_ctx ctx f in
    let results, failure = run_general ~workers ~tasks ~stop:None f in
    (match failure with Some e -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end

let run_until (type r) ?ctx ~workers ~tasks ~(stop : r -> bool) (f : int -> r)
    : r option array =
  if tasks = 0 then [||]
  else begin
    let f = with_task_ctx ctx f in
    let results, failure = run_general ~workers ~tasks ~stop:(Some stop) f in
    (match failure with Some e -> raise e | None -> ());
    results
  end

let map_array ~workers f arr =
  run ~workers ~tasks:(Array.length arr) (fun i -> f arr.(i))

(* Fire-and-forget submission.  The task is queued as a one-chunk job
   and executed by whichever pool worker frees up first; the caller
   never blocks and never participates.  Unlike the blocking entry
   points, a submission from inside a pool worker is still queued (not
   run inline): nobody waits on the result, so there is no deadlock to
   avoid, and the submitting worker must not pay the task's cost. *)
let async ?ctx f =
  (* Re-root the submitting request's trace on the worker, so e.g. a
     tier-promotion compile is attributed to the request that triggered
     it even though it runs later, on another domain. *)
  let f =
    match ctx with
    | None -> f
    | Some _ -> fun () -> Trace.with_ctx ctx f
  in
  Atomic.incr submitted;
  ensure_workers 2;
  let taken = Atomic.make false in
  let grabbed = Atomic.make false in
  let job_cell = ref None in
  let retire () =
    Mutex.lock pool_mu;
    (match !job_cell with
    | Some j -> jobs := List.filter (fun j' -> j' != j) !jobs
    | None -> ());
    Condition.broadcast pool_cv;
    Mutex.unlock pool_mu
  in
  let thunk () =
    (* A stray exception must not kill the worker domain: background
       tasks are expected to report failures through their own channel
       (e.g. a metrics counter) before raising. *)
    Fun.protect ~finally:retire (fun () -> try f () with _ -> ())
  in
  let job =
    {
      job_capacity = (fun () -> not (Atomic.get taken));
      job_acquire = (fun () -> Atomic.compare_and_set taken false true);
      job_grab =
        (fun () ->
          if Atomic.compare_and_set grabbed false true then Some thunk
          else None);
    }
  in
  job_cell := Some job;
  Mutex.lock pool_mu;
  jobs := !jobs @ [ job ];
  Condition.broadcast pool_cv;
  Mutex.unlock pool_mu
