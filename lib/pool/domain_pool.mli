(** A lazily-created persistent pool of OCaml domains: the thread-pool
    substrate that PLINQ provides in the paper (section 6).

    Worker domains are spawned on first demand (up to the largest
    [workers - 1] ever requested, bounded), then reused by every job for
    the life of the process — submitting a job costs a queue push and a
    broadcast, not [workers] domain spawns.  Workers pull chunks of task
    indices from the job's shared atomic cursor, so imbalanced tasks
    still load-balance while the handout is amortized.  Exceptions in a
    task are re-raised in the caller after the job settles.  Jobs
    submitted from inside a pool worker run inline on that worker (a
    nested blocking job could deadlock the pool). *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count], capped to a sane bound. *)

val run : ?ctx:Trace.ctx -> workers:int -> tasks:int -> (int -> 'r) -> 'r array
(** [run ~workers ~tasks f] computes [f i] for every [0 <= i < tasks]
    using at most [workers - 1] pool domains (plus the caller, which also
    works), and returns results in task order.  [?ctx] re-roots the
    given trace context on whichever domain runs each task (see
    {!Trace.with_ctx}), so work fanned out on behalf of a traced request
    keeps that request's identity. *)

val run_until :
  ?ctx:Trace.ctx ->
  workers:int ->
  tasks:int ->
  stop:('r -> bool) ->
  (int -> 'r) ->
  'r option array
(** Like {!run}, but when any completed task's result satisfies [stop]
    the remaining unstarted tasks are abandoned: short-circuiting
    aggregation (e.g. [Contains]/[Any]/[For_all], section 6).  The
    returned array holds [None] for abandoned tasks.  Results already
    computed when the cancellation lands are kept, so an order-insensitive
    combine sees every completed partial. *)

val map_array : workers:int -> ('a -> 'b) -> 'a array -> 'b array

val async : ?ctx:Trace.ctx -> (unit -> unit) -> unit
(** Submit a fire-and-forget task to the pool and return immediately:
    the task runs on whichever pool worker frees up first (at least two
    workers are ensured, so a task queued while one long job saturates a
    single-worker pool still gets served).  The caller never blocks —
    including from inside a pool worker, where the task is queued rather
    than run inline (nothing waits on it, so there is no deadlock to
    avoid).  An exception escaping the task is swallowed: background
    tasks report failures through their own channel (e.g. a metrics
    counter).  Used for tier-promotion compiles (see [Steno.Engine]). *)

(** {1 Introspection} (for tests and diagnostics) *)

val pool_size : unit -> int
(** Number of pool domains spawned so far in this process. *)

val jobs_run : unit -> int
(** Number of parallel jobs submitted to the pool so far (inline
    sequential runs are not counted). *)
