(** In-process closure fusion: the backend you get {e without} invoking a
    compiler at run time.

    Executes a query as a single push-based fold — no iterators, no
    per-operator state machines — but element-processing code remains a
    chain of staged closures rather than straight-line native code, so it
    sits between the LINQ baseline and Steno native compilation (this is
    the trade-off the paper alludes to in section 9: a library cannot
    inline across closure boundaries without generating code).

    Used by the benchmarks as the [Fused] ablation backend and by the unit
    tests as a third independent implementation of query semantics. *)

type 'a folder = { fold : 'b. ('b -> 'a -> 'b) -> 'b -> 'b }

val stage : 'a Query.t -> Expr.Open.env -> 'a folder
(** Stage once (all lambdas compiled to closures); fold per run. *)

val stage_sq : 's Query.sq -> Expr.Open.env -> 's

type wrapper = { fwrap : 'x. string -> 'x folder -> 'x folder }
(** A staging-time decorator around every top-level operator's folder;
    the [string] is an operator label.  [fwrap label] is evaluated once
    per operator at staging (profile mode allocates its probe point
    there); the returned decorator runs once per preparation. *)

val unprobed : wrapper
(** The identity wrapper: [stage] is [stage_probed unprobed]. *)

val stage_probed : wrapper -> 'a Query.t -> Expr.Open.env -> 'a folder
(** [stage] with a wrapper around every top-level operator, source to
    sink order.  Nested sub-queries stage unprobed (their cost lands in
    the enclosing operator's point). *)

val stage_sq_probed : wrapper -> 's Query.sq -> Expr.Open.env -> 's

val materialize : 'a folder -> 'a array
(** Collect the folded elements into an array, in order. *)

val run_sq : 's Query.sq -> 's
val to_array : 'a Query.t -> 'a array
val to_list : 'a Query.t -> 'a list
