module Open = Expr.Open

type 'a folder = { fold : 'b. ('b -> 'a -> 'b) -> 'b -> 'b }

(* A staging-time hook around every top-level operator's output folder:
   profile mode supplies a wrapper allocating one probe point per
   operator (the [string] label is consumed once at staging).
   [unprobed] is the identity — the normal path stages exactly the same
   closures as before. *)
type wrapper = { fwrap : 'x. string -> 'x folder -> 'x folder }

let unprobed = { fwrap = (fun _ f -> f) }

exception Stop

(* Wrap a folder so element processing can stop early without consuming
   the rest of the source (take, take_while).  The accumulator moves into
   a reference for the duration of the fold. *)
let with_stop (src : 'a folder) (process : 'acc ref -> 'a -> unit) acc0 =
  let acc = ref acc0 in
  (try src.fold (fun () x -> process acc x) () with Stop -> ());
  !acc

let of_array_folder arr =
  { fold = (fun f z -> Array.fold_left f z arr) }

let rec stage_probed : type a. wrapper -> a Query.t -> Open.env -> a folder =
 fun w -> function
  | Query.Of_array (_, arr) ->
    let farr = Open.compile arr in
    let wr = w.fwrap "of-array" in
    fun env -> wr (of_array_folder (farr env))
  | Query.Range (start, count) ->
    let fs = Open.compile start and fc = Open.compile count in
    let wr = w.fwrap "range" in
    fun env ->
      let s = fs env and c = fc env in
      wr
        {
          fold =
            (fun f z ->
              let acc = ref z in
              for i = s to s + c - 1 do
                acc := f !acc i
              done;
              !acc);
        }
  | Query.Repeat (_, v, count) ->
    let fv = Open.compile v and fc = Open.compile count in
    let wr = w.fwrap "repeat" in
    fun env ->
      let x = fv env and c = fc env in
      wr
        {
          fold =
            (fun f z ->
              let acc = ref z in
              for _ = 1 to c do
                acc := f !acc x
              done;
              !acc);
        }
  | Query.Select (q, lam) ->
    let src = stage_probed w q and f = Open.compile_lam lam in
    let wr = w.fwrap "select" in
    fun env ->
      let src = src env and f = f env in
      wr { fold = (fun g z -> src.fold (fun acc x -> g acc (f x)) z) }
  | Query.Select_i (q, lam2) ->
    let src = stage_probed w q and f = Open.compile_lam2 lam2 in
    let wr = w.fwrap "select-i" in
    fun env ->
      let src = src env and f = f env in
      wr
        {
          fold =
            (fun g z ->
              let i = ref (-1) in
              src.fold
                (fun acc x ->
                  incr i;
                  g acc (f !i x))
                z);
        }
  | Query.Select_q (q, v, sq) ->
    let src = stage_probed w q and fsq = stage_sq_probed unprobed sq in
    let wr = w.fwrap "select-sq" in
    fun env ->
      let src = src env in
      wr
        {
          fold =
            (fun g z ->
              src.fold (fun acc x -> g acc (fsq (Open.bind v x env))) z);
        }
  | Query.Where (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    let wr = w.fwrap "where" in
    fun env ->
      let src = src env and p = p env in
      wr
        {
          fold =
            (fun g z -> src.fold (fun acc x -> if p x then g acc x else acc) z);
        }
  | Query.Where_i (q, lam2) ->
    let src = stage_probed w q and p = Open.compile_lam2 lam2 in
    let wr = w.fwrap "where-i" in
    fun env ->
      let src = src env and p = p env in
      wr
        {
          fold =
            (fun g z ->
              let i = ref (-1) in
              src.fold
                (fun acc x ->
                  incr i;
                  if p !i x then g acc x else acc)
                z);
        }
  | Query.Where_q (q, v, sq) ->
    let src = stage_probed w q and fsq = stage_sq_probed unprobed sq in
    let wr = w.fwrap "where-sq" in
    fun env ->
      let src = src env in
      wr
        {
          fold =
            (fun g z ->
              src.fold
                (fun acc x -> if fsq (Open.bind v x env) then g acc x else acc)
                z);
        }
  | Query.Take (q, n) ->
    let src = stage_probed w q and fn = Open.compile n in
    let wr = w.fwrap "take" in
    fun env ->
      let src = src env and n = fn env in
      wr
        {
          fold =
            (fun g z ->
              if n <= 0 then z
              else
                let remaining = ref n in
                with_stop src
                  (fun acc x ->
                    acc := g !acc x;
                    decr remaining;
                    if !remaining = 0 then raise_notrace Stop)
                  z);
        }
  | Query.Skip (q, n) ->
    let src = stage_probed w q and fn = Open.compile n in
    let wr = w.fwrap "skip" in
    fun env ->
      let src = src env and n = fn env in
      wr
        {
          fold =
            (fun g z ->
              let seen = ref 0 in
              src.fold
                (fun acc x ->
                  if !seen < n then begin
                    incr seen;
                    acc
                  end
                  else g acc x)
                z);
        }
  | Query.Take_while (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    let wr = w.fwrap "take-while" in
    fun env ->
      let src = src env and p = p env in
      wr
        {
          fold =
            (fun g z ->
              with_stop src
                (fun acc x ->
                  if p x then acc := g !acc x else raise_notrace Stop)
                z);
        }
  | Query.Skip_while (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    let wr = w.fwrap "skip-while" in
    fun env ->
      let src = src env and p = p env in
      wr
        {
          fold =
            (fun g z ->
              let skipping = ref true in
              src.fold
                (fun acc x ->
                  if !skipping && p x then acc
                  else begin
                    skipping := false;
                    g acc x
                  end)
                z);
        }
  | Query.Select_many (q, v, inner) ->
    let src = stage_probed w q and finner = stage_probed unprobed inner in
    let wr = w.fwrap "select-many" in
    fun env ->
      let src = src env in
      wr
        {
          fold =
            (fun g z ->
              src.fold (fun acc x -> (finner (Open.bind v x env)).fold g acc) z);
        }
  | Query.Select_many_result (q, v, inner, lam2) ->
    let src = stage_probed w q
    and finner = stage_probed unprobed inner
    and fres = Open.compile_lam2 lam2 in
    let wr = w.fwrap "select-many" in
    fun env ->
      let src = src env in
      let res = fres env in
      wr
        {
          fold =
            (fun g z ->
              src.fold
                (fun acc x ->
                  (finner (Open.bind v x env)).fold
                    (fun acc y -> g acc (res x y))
                    acc)
                z);
        }
  | Query.Join (outer, inner, ok, ik, res) ->
    let fouter = stage_probed w outer
    and finner = stage_probed unprobed inner
    and fok = Open.compile_lam ok
    and fik = Open.compile_lam ik
    and fres = Open.compile_lam2 res in
    let wr = w.fwrap "join" in
    fun env ->
      let outer = fouter env
      and inner = finner env
      and ok = fok env
      and ik = fik env
      and res = fres env in
      wr
        {
          fold =
            (fun g z ->
              (* Hash join: index the inner side once per fold. *)
              let lookup =
                inner.fold (fun l y -> Lookup.put l (ik y) y) (Lookup.create ())
              in
              outer.fold
                (fun acc x ->
                  Array.fold_left
                    (fun acc y -> g acc (res x y))
                    acc
                    (Lookup.find lookup (ok x)))
                z);
        }
  | Query.Group_by (q, key) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    let wr = w.fwrap "group-by" in
    fun env ->
      let src = src env and key = fkey env in
      wr
        {
          fold =
            (fun g z ->
              let lookup =
                src.fold (fun l x -> Lookup.put l (key x) x) (Lookup.create ())
              in
              Array.fold_left g z (Lookup.groupings lookup));
        }
  | Query.Group_by_elem (q, key, elem) ->
    let src = stage_probed w q
    and fkey = Open.compile_lam key
    and felem = Open.compile_lam elem in
    let wr = w.fwrap "group-by" in
    fun env ->
      let src = src env and key = fkey env and elem = felem env in
      wr
        {
          fold =
            (fun g z ->
              let lookup =
                src.fold
                  (fun l x -> Lookup.put l (key x) (elem x))
                  (Lookup.create ())
              in
              Array.fold_left g z (Lookup.groupings lookup));
        }
  | Query.Group_by_agg (q, key, seed, step) ->
    let src = stage_probed w q
    and fkey = Open.compile_lam key
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    let wr = w.fwrap "group-by-agg" in
    fun env ->
      let src = src env
      and key = fkey env
      and seed = fseed env
      and step = fstep env in
      wr
        {
          fold =
            (fun g z ->
              let agg = Lookup.Agg.create ~seed () in
              src.fold
                (fun () x -> Lookup.Agg.update agg (key x) (fun s -> step s x))
                ();
              Array.fold_left g z (Lookup.Agg.entries agg));
        }
  | Query.Order_by (q, key, dir) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    let wr = w.fwrap "order-by" in
    fun env ->
      let src = src env and key = fkey env in
      wr
        {
          fold =
            (fun g z ->
              let arr = materialize src in
              let dec = Array.mapi (fun i x -> key x, i, x) arr in
              Array.sort
                (fun (k1, i1, _) (k2, i2, _) ->
                  let c =
                    match dir with
                    | Query.Ascending -> compare k1 k2
                    | Query.Descending -> compare k2 k1
                  in
                  if c <> 0 then c else Int.compare i1 i2)
                dec;
              Array.fold_left (fun acc (_, _, x) -> g acc x) z dec);
        }
  | Query.Distinct q ->
    let src = stage_probed w q in
    let wr = w.fwrap "distinct" in
    fun env ->
      let src = src env in
      wr
        {
          fold =
            (fun g z ->
              let seen = Hashtbl.create 64 in
              src.fold
                (fun acc x ->
                  if Hashtbl.mem seen x then acc
                  else begin
                    Hashtbl.replace seen x ();
                    g acc x
                  end)
                z);
        }
  | Query.Rev q ->
    let src = stage_probed w q in
    let wr = w.fwrap "rev" in
    fun env ->
      let src = src env in
      wr
        {
          fold =
            (fun g z ->
              let arr = materialize src in
              let acc = ref z in
              for i = Array.length arr - 1 downto 0 do
                acc := g !acc arr.(i)
              done;
              !acc);
        }
  | Query.Materialize q ->
    let src = stage_probed w q in
    let wr = w.fwrap "materialize" in
    fun env ->
      let src = src env in
      wr { fold = (fun g z -> Array.fold_left g z (materialize src)) }

and materialize : type a. a folder -> a array =
 fun src ->
  let elements = src.fold (fun acc x -> x :: acc) [] in
  let arr = Array.of_list elements in
  let n = Array.length arr in
  (* The fold accumulated in reverse. *)
  for i = 0 to (n / 2) - 1 do
    let tmp = arr.(i) in
    arr.(i) <- arr.(n - 1 - i);
    arr.(n - 1 - i) <- tmp
  done;
  arr

and stage_sq_probed : type s. wrapper -> s Query.sq -> Open.env -> s =
 fun w -> function
  | Query.Aggregate (q, seed, step) ->
    let src = stage_probed w q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    fun env -> (src env).fold (fstep env) (fseed env)
  | Query.Aggregate_combinable (q, seed, step, _) ->
    (* Sequentially the combiner is unused: fold as a plain Aggregate. *)
    let src = stage_probed w q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step in
    fun env -> (src env).fold (fstep env) (fseed env)
  | Query.Aggregate_full (q, seed, step, result) ->
    let src = stage_probed w q
    and fseed = Open.compile seed
    and fstep = Open.compile_lam2 step
    and fres = Open.compile_lam result in
    fun env -> fres env ((src env).fold (fstep env) (fseed env))
  | Query.Sum_int q ->
    let src = stage_probed w q in
    fun env -> (src env).fold ( + ) 0
  | Query.Sum_float q ->
    let src = stage_probed w q in
    fun env -> (src env).fold ( +. ) 0.0
  | Query.Count q ->
    let src = stage_probed w q in
    fun env -> (src env).fold (fun n _ -> n + 1) 0
  | Query.Average q ->
    let src = stage_probed w q in
    fun env ->
      let total, n =
        (src env).fold (fun (t, n) x -> t +. x, n + 1) (0.0, 0)
      in
      if n = 0 then raise Iterator.No_such_element
      else total /. float_of_int n
  | Query.Min q ->
    let src = stage_probed w q in
    fun env -> reduce (src env) (fun a b -> if b < a then b else a)
  | Query.Max q ->
    let src = stage_probed w q in
    fun env -> reduce (src env) (fun a b -> if b > a then b else a)
  | Query.Min_by (q, key) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    fun env ->
      let key = fkey env in
      reduce (src env) (fun a b -> if key b < key a then b else a)
  | Query.Max_by (q, key) ->
    let src = stage_probed w q and fkey = Open.compile_lam key in
    fun env ->
      let key = fkey env in
      reduce (src env) (fun a b -> if key b > key a then b else a)
  | Query.First q ->
    let src = stage_probed w q in
    fun env -> (
      let found =
        with_stop (src env)
          (fun acc x ->
            acc := Some x;
            raise_notrace Stop)
          None
      in
      match found with
      | Some x -> x
      | None -> raise Iterator.No_such_element)
  | Query.Last q ->
    let src = stage_probed w q in
    fun env -> (
      match (src env).fold (fun _ x -> Some x) None with
      | Some x -> x
      | None -> raise Iterator.No_such_element)
  | Query.Element_at (q, n) ->
    let src = stage_probed w q and fn = Open.compile n in
    fun env -> (
      let n = fn env in
      if n < 0 then raise Iterator.No_such_element;
      let seen = ref (-1) in
      let found =
        with_stop (src env)
          (fun acc x ->
            incr seen;
            if !seen = n then begin
              acc := Some x;
              raise_notrace Stop
            end)
          None
      in
      match found with
      | Some x -> x
      | None -> raise Iterator.No_such_element)
  | Query.Any q ->
    let src = stage_probed w q in
    fun env ->
      with_stop (src env)
        (fun acc _ ->
          acc := true;
          raise_notrace Stop)
        false
  | Query.Exists (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    fun env ->
      let p = p env in
      with_stop (src env)
        (fun acc x ->
          if p x then begin
            acc := true;
            raise_notrace Stop
          end)
        false
  | Query.For_all (q, lam) ->
    let src = stage_probed w q and p = Open.compile_lam lam in
    fun env ->
      let p = p env in
      with_stop (src env)
        (fun acc x ->
          if not (p x) then begin
            acc := false;
            raise_notrace Stop
          end)
        true
  | Query.Contains (q, v) ->
    let src = stage_probed w q and fv = Open.compile v in
    fun env ->
      let x = fv env in
      with_stop (src env)
        (fun acc y ->
          if x = y then begin
            acc := true;
            raise_notrace Stop
          end)
        false
  | Query.Map_scalar (sq, lam) ->
    let fsq = stage_sq_probed w sq and f = Open.compile_lam lam in
    fun env -> f env (fsq env)

and reduce : type a. a folder -> (a -> a -> a) -> a =
 fun src better ->
  match
    src.fold
      (fun acc x ->
        match acc with None -> Some x | Some best -> Some (better best x))
      None
  with
  | Some best -> best
  | None -> raise Iterator.No_such_element

let stage q = stage_probed unprobed q

let stage_sq sq = stage_sq_probed unprobed sq

let run_sq sq = stage_sq sq Open.empty

let to_array q = materialize (stage q Open.empty)

let to_list q = Array.to_list (to_array q)
