(** Pipeline telemetry: spans and counters with pluggable sinks.

    Every stage of the Steno pipeline — specialize, canon, codegen,
    compile, dynlink, env-bind, run — reports a {!span} to the engine's
    sink; cache and fallback events report {!val-count}ers.  A sink is a
    passive pair of callbacks, so the instrumented code never depends on
    where the data goes:

    - {!null} discards everything and disables timing entirely (a single
      branch per instrumentation point — safe to leave on hot paths);
    - {!logs} emits spans and counters through the [Logs] library;
    - {!json} writes one JSON object per event to a channel;
    - {!Collector} accumulates in memory, for tests and for the
      [stenoc --trace] / [stenoc stats] views.

    Span nesting is tracked per domain (a [Domain.DLS] stack), so spans
    recorded from worker domains (e.g. per-partition vertex spans) nest
    independently of the master's. *)

type attr = string * string

type span = {
  name : string;  (** stage name, e.g. ["codegen"] *)
  path : string list;  (** enclosing spans, outermost first *)
  start_ms : float;  (** [Unix.gettimeofday] based, milliseconds *)
  duration_ms : float;
  attrs : attr list;
}

type sink

val null : sink
(** Discards everything; {!with_span} runs its body with no timing. *)

val enabled : sink -> bool
(** [false] only for {!null}: lets callers skip argument preparation. *)

val make :
  ?on_span:(span -> unit) -> ?on_count:(string -> int -> unit) -> unit -> sink
(** A custom sink from callbacks.  Callbacks must be thread-safe if the
    sink is shared across domains. *)

val logs : ?level:Logs.level -> unit -> sink
(** Report through [Logs] (source ["steno.telemetry"], default level
    [Debug]). *)

val json : out_channel -> sink
(** One JSON object per line per event:
    [{"kind":"span","name":...,"path":[...],"start_ms":...,"duration_ms":...,"attrs":{...}}]
    and [{"kind":"count","name":...,"n":...}].  Each event is one atomic
    channel write, so lines from concurrent domains never interleave. *)

val metrics : Metrics.t -> sink
(** Bridge into a metrics registry: every span observes the
    [steno_span_ms] histogram (labelled by span name) and every counter
    event adds to the [steno_events_total] counter (labelled by event
    name).  Registration is by name+label lookup per event, so this sink
    suits pipeline-stage telemetry, not per-element hot paths. *)

val tee : sink -> sink -> sink
(** Both sinks receive every event (a disabled side is dropped). *)

(** {1 Recording} *)

val with_span : sink -> string -> ?attrs:attr list -> (unit -> 'a) -> 'a
(** [with_span sink name f] times [f] and reports a span on completion.
    If [f] raises, the span is still reported with an ["error"] attribute
    and the exception is re-raised.  Nested calls record their enclosing
    span names in {!span.path}. *)

val emit :
  sink -> string -> ?attrs:attr list -> start_ms:float -> duration_ms:float ->
  unit -> unit
(** Report an already-measured interval (e.g. timings returned by a
    subsystem) as a span under the current nesting path. *)

val count : sink -> string -> int -> unit
(** Bump a named counter. *)

val json_escape : string -> string
(** JSON string-content escaping (quotes, backslashes, control
    characters as [\uXXXX]): the helper behind the {!json} sink, shared
    by every Steno JSON emitter so attr values — compile errors, plan
    text — can never produce invalid JSON. *)

val now_ms : unit -> float
(** Milliseconds on a monotonic clock (CLOCK_MONOTONIC): a timestamp for
    measuring durations, not an epoch date.  Immune to wall-clock
    steps. *)

val duration_since : float -> float
(** [duration_since start] is [now_ms () -. start], clamped at [0.]: an
    observed duration is never negative. *)

(** {1 In-memory collection} *)

module Collector : sig
  type t

  val create : unit -> t
  val sink : t -> sink

  val spans : t -> span list
  (** In completion order (a post-order of the span tree). *)

  val find : t -> string -> span option
  (** First recorded span with that name, in completion order. *)

  val counters : t -> (string * int) list
  (** Accumulated counters, sorted by name. *)

  val counter : t -> string -> int
  (** A single counter's value; [0] when never bumped. *)

  val total_ms : t -> string -> float
  (** Summed duration of every span with that name. *)

  val tree : t -> string
  (** The span forest rendered as an indented text tree, in start order. *)

  val to_json : t -> string
  (** The full collection as one JSON document. *)

  val reset : t -> unit
end
