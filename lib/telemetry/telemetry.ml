type attr = string * string

type span = {
  name : string;
  path : string list;
  start_ms : float;
  duration_ms : float;
  attrs : attr list;
}

type sink = {
  enabled : bool;
  on_span : span -> unit;
  on_count : string -> int -> unit;
}

let null = { enabled = false; on_span = ignore; on_count = (fun _ _ -> ()) }

let enabled s = s.enabled

let make ?(on_span = ignore) ?(on_count = fun _ _ -> ()) () =
  { enabled = true; on_span; on_count }

(* Monotonic: wall-clock time steps (NTP slews, manual resets) must not
   produce negative or wildly wrong span durations.  The bechamel stub
   reads CLOCK_MONOTONIC in nanoseconds. *)
let now_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

(* Belt and braces: even a monotonic source can observe a 0-length
   interval; never report a negative duration. *)
let duration_since start_ms = Float.max 0.0 (now_ms () -. start_ms)

(* The current nesting of open spans, innermost first, per domain: spans
   recorded by worker domains nest under their own stack, not the
   master's. *)
let stack_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let current_path () = List.rev (Domain.DLS.get stack_key)

let count sink name n = if sink.enabled then sink.on_count name n

let emit sink name ?(attrs = []) ~start_ms ~duration_ms () =
  if sink.enabled then
    sink.on_span { name; path = current_path (); start_ms; duration_ms; attrs }

let with_span sink name ?(attrs = []) f =
  if not sink.enabled then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let path = List.rev stack in
    Domain.DLS.set stack_key (name :: stack);
    let start_ms = now_ms () in
    let finish attrs =
      let duration_ms = duration_since start_ms in
      Domain.DLS.set stack_key stack;
      sink.on_span { name; path; start_ms; duration_ms; attrs }
    in
    match f () with
    | v ->
      finish attrs;
      v
    | exception e ->
      finish (("error", Printexc.to_string e) :: attrs);
      raise e
  end

(* Logs sink. *)

let src = Logs.Src.create "steno.telemetry" ~doc:"Steno pipeline telemetry"

let logs ?(level = Logs.Debug) () =
  make
    ~on_span:(fun s ->
      Logs.msg ~src level (fun m ->
          m "%s%s %.3f ms%s"
            (String.make (2 * List.length s.path) ' ')
            s.name s.duration_ms
            (match s.attrs with
            | [] -> ""
            | attrs ->
              " ["
              ^ String.concat ", "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
              ^ "]")))
    ~on_count:(fun name n ->
      Logs.msg ~src level (fun m -> m "count %s += %d" name n))
    ()

(* JSON sink. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_to_json s =
  Printf.sprintf
    {|{"kind":"span","name":"%s","path":[%s],"start_ms":%.3f,"duration_ms":%.3f,"attrs":{%s}}|}
    (json_escape s.name)
    (String.concat ","
       (List.map (fun p -> "\"" ^ json_escape p ^ "\"") s.path))
    s.start_ms s.duration_ms
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
          s.attrs))

let json oc =
  let mu = Mutex.create () in
  (* Each event is formatted into one string first and written with a
     single [output_string] under the mutex: channel writes are not
     atomic across domains, so interleaving two [fprintf]s would corrupt
     the line-oriented output even with each call individually locked. *)
  let write_line line =
    Mutex.protect mu (fun () ->
        output_string oc line;
        flush oc)
  in
  make
    ~on_span:(fun s -> write_line (span_to_json s ^ "\n"))
    ~on_count:(fun name n ->
      write_line
        (Printf.sprintf {|{"kind":"count","name":"%s","n":%d}|}
           (json_escape name) n
        ^ "\n"))
    ()

(* Metrics bridge. *)

let metrics m =
  make
    ~on_span:(fun s ->
      Metrics.observe
        (Metrics.histogram m "steno_span_ms"
           ~help:"Duration of telemetry spans by stage name (milliseconds)"
           ~labels:[ "name", s.name ])
        s.duration_ms)
    ~on_count:(fun name n ->
      Metrics.add
        (Metrics.counter m "steno_events"
           ~help:"Telemetry counter events by name"
           ~labels:[ "name", name ])
        n)
    ()

let tee a b =
  if not a.enabled then b
  else if not b.enabled then a
  else
    make
      ~on_span:(fun s ->
        a.on_span s;
        b.on_span s)
      ~on_count:(fun name n ->
        a.on_count name n;
        b.on_count name n)
      ()

(* In-memory collector. *)

module Collector = struct
  type t = {
    mutable recorded : span list;  (* reverse completion order *)
    counts : (string, int) Hashtbl.t;
    mu : Mutex.t;
  }

  let create () =
    { recorded = []; counts = Hashtbl.create 8; mu = Mutex.create () }

  let sink c =
    make
      ~on_span:(fun s ->
        Mutex.protect c.mu (fun () -> c.recorded <- s :: c.recorded))
      ~on_count:(fun name n ->
        Mutex.protect c.mu (fun () ->
            Hashtbl.replace c.counts name
              (n + Option.value ~default:0 (Hashtbl.find_opt c.counts name))))
      ()

  let spans c = Mutex.protect c.mu (fun () -> List.rev c.recorded)

  let find c name = List.find_opt (fun s -> s.name = name) (spans c)

  let counters c =
    Mutex.protect c.mu (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.counts []
        |> List.sort compare)

  let counter c name =
    Mutex.protect c.mu (fun () ->
        Option.value ~default:0 (Hashtbl.find_opt c.counts name))

  let total_ms c name =
    List.fold_left
      (fun acc s -> if s.name = name then acc +. s.duration_ms else acc)
      0.0 (spans c)

  let tree c =
    (* Start order is a pre-order of the span forest; indentation by
       nesting depth reconstructs the tree visually. *)
    let ordered =
      (* Ties in start time (a parent entered and its first child started
         within clock resolution) break toward the shallower span. *)
      List.sort
        (fun a b ->
          compare
            (a.start_ms, List.length a.path)
            (b.start_ms, List.length b.path))
        (spans c)
    in
    let b = Buffer.create 256 in
    List.iter
      (fun s ->
        Buffer.add_string b (String.make (2 * List.length s.path) ' ');
        Buffer.add_string b s.name;
        Buffer.add_string b (Printf.sprintf " %.3f ms" s.duration_ms);
        List.iter
          (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
          s.attrs;
        Buffer.add_char b '\n')
      ordered;
    Buffer.contents b

  let to_json c =
    Printf.sprintf {|{"spans":[%s],"counters":{%s}}|}
      (String.concat "," (List.map span_to_json (spans c)))
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
            (counters c)))

  let reset c =
    Mutex.protect c.mu (fun () ->
        c.recorded <- [];
        Hashtbl.reset c.counts)
end
