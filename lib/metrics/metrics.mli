(** Runtime metrics: counters, gauges and log-scale histograms with an
    OpenMetrics/Prometheus text renderer.

    The write path is lock-free: every counter and histogram keeps one
    cell per {e shard}, the shard is selected by the writing domain's id,
    and each cell is an [Atomic.t] — so concurrent domains never contend
    on a mutex and rarely contend on a cell.  Reads ([counter_value],
    [histogram_snapshot], [render]) merge the shards.  Registration
    (looking an instrument up by name and labels) takes a mutex; callers
    are expected to register once and hold on to the returned handle.

    Instrument identity is the metric name plus the (sorted) label set;
    registering the same identity twice returns the same instrument.
    Registering one name with two different instrument kinds is an error.

    The {!Probe} submodule is the lighter mechanism used by profiled
    query execution ([profile:true] engines): unsynchronized per-operator
    points recording rows, indirect calls and inclusive time, attached to
    one preparation rather than to the process-wide registry. *)

type t
(** A metrics registry. *)

val create : unit -> t

val default : unit -> t
(** The process-wide registry, created on first use. *)

val reset : t -> unit
(** Drop every registered instrument.  Existing handles keep working but
    are no longer rendered; intended for tests. *)

(** {1 Counters} *)

type counter

val counter :
  ?help:string -> ?labels:(string * string) list -> t -> string -> counter
(** [counter t name] registers (or finds) a monotonically increasing
    counter.  The rendered sample name is [name ^ "_total"], per
    OpenMetrics; pass the bare family name.  @raise Invalid_argument if
    [name] is already registered as a different instrument kind. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0]; counters never decrease. *)

val counter_value : counter -> int
(** Merged over shards. *)

(** {1 Gauges} *)

type gauge

val gauge :
  ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

val set_gauge : gauge -> float -> unit
(** Last write wins (a plain atomic store; no merging needed). *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val log_buckets : ?base:float -> lo:float -> hi:float -> unit -> float array
(** Logarithmically spaced upper bounds [lo, lo*base, lo*base^2, ...] up
    to the first bound >= [hi].  Default [base] is [2.0].
    @raise Invalid_argument unless [lo > 0.], [hi > lo] and [base > 1.]. *)

val default_buckets : float array
(** [log_buckets ~lo:0.001 ~hi:1000. ()] — suits millisecond latencies
    from a microsecond to a second. *)

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  t ->
  string ->
  histogram
(** [buckets] are strictly increasing upper bounds (le semantics); a
    [+Inf] bucket is always added implicitly.  Defaults to
    {!default_buckets}.  The bucket layout is fixed by the first
    registration of an identity. *)

val observe : histogram -> float -> unit

type histogram_snapshot = {
  hs_buckets : (float * int) list;
      (** (upper bound, cumulative count), in bound order, ending with
          the [+Inf] bucket — rendered exactly as OpenMetrics expects. *)
  hs_sum : float;
  hs_count : int;
}

val histogram_snapshot : histogram -> histogram_snapshot

(** {1 Rendering} *)

val render : t -> string
(** The whole registry in OpenMetrics text format: families sorted by
    name, [# HELP] / [# TYPE] headers, counter samples suffixed
    [_total], histogram [_bucket]/[_sum]/[_count] series, and the
    [# EOF] terminator. *)

(** {1 Per-operator probe points} *)

module Probe : sig
  (** One point per operator edge of a profiled query.  Mutation is
      unsynchronized (plain mutable fields): a profiled preparation is
      expected to run on one domain at a time; racing runs lose counts
      but cannot crash. *)

  type point = {
    pt_label : string;  (** operator label, e.g. ["where"] or ["Pred"] *)
    pt_index : int;  (** position in source-to-sink order *)
    mutable pt_rows : int;  (** elements that passed this point *)
    mutable pt_calls : int;  (** indirect calls observed at this point *)
    mutable pt_ns : int;
        (** cumulative inclusive wall time, nanoseconds; semantics are
            backend-specific (pull backends: time inside upstream
            [move_next]), [0] where per-operator time is meaningless
            (fused loops) *)
    mutable pt_derived : bool;
        (** when true, [pt_rows] is not counted on the hot path but
            settled once per run from the preceding point — used for
            cardinality-preserving operators whose output row count
            always equals their input's *)
  }

  type t
  (** An ordered collection of points, one per profiled preparation. *)

  val create : unit -> t

  val point : t -> string -> point
  (** Append a fresh point; creation order is source-to-sink order. *)

  val points : t -> point list
  (** In creation order. *)

  val now_ns : unit -> int
  (** Wall clock in nanoseconds ([Unix.gettimeofday] based). *)
end
