(* Shard layout: every counter/histogram holds [nshards] independent
   Atomic cells; a writer picks the cell indexed by its domain id, so
   domains running on distinct cores update distinct cells.  Reads merge.
   [nshards] must be a power of two for the mask to be a cheap hash. *)
let nshards = 8

let shard_ix () = (Domain.self () :> int) land (nshards - 1)

(* Atomic float accumulation: [compare_and_set] compares the exact boxed
   value read by [get], so the retry loop is a standard CAS spin. *)
let rec atomic_add_float cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then
    atomic_add_float cell x

type counter = {
  c_labels : (string * string) list;
  c_shards : int Atomic.t array;
}

type gauge = {
  g_labels : (string * string) list;
  g_cell : float Atomic.t;
}

type hshard = {
  hb_counts : int Atomic.t array;  (* one per bound, plus the +Inf bucket *)
  hb_sum : float Atomic.t;
}

type histogram = {
  h_labels : (string * string) list;
  h_bounds : float array;  (* strictly increasing upper bounds, no +Inf *)
  h_shards : hshard array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type family = {
  f_name : string;
  f_help : string;
  f_kind : string;  (* "counter" | "gauge" | "histogram" *)
  f_series : (string, instrument) Hashtbl.t;  (* keyed by rendered labels *)
  mutable f_order : string list;  (* series keys, reverse insertion order *)
}

type t = {
  mu : Mutex.t;
  families : (string, family) Hashtbl.t;
}

let create () = { mu = Mutex.create (); families = Hashtbl.create 16 }

(* Not a [lazy]: forcing a lazy from two domains at once raises
   [RacyLazy].  A CAS publishes exactly one winner; a loser's registry
   is discarded before anyone registers into it. *)
let default_v : t option Atomic.t = Atomic.make None

let rec default () =
  match Atomic.get default_v with
  | Some t -> t
  | None ->
    let t = create () in
    if Atomic.compare_and_set default_v None (Some t) then t else default ()

let reset t = Mutex.protect t.mu (fun () -> Hashtbl.reset t.families)

(* Label rendering doubles as the series identity, so sort first: the
   same label set in any order names the same series. *)
let escape_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    let labels = List.sort compare labels in
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

(* Find or create the series [name]+[labels]; [build] makes the
   instrument on first registration, [select] projects the found one and
   rejects kind mismatches. *)
let register t ~name ~help ~kind ~labels ~build ~select =
  Mutex.protect t.mu (fun () ->
      let fam =
        match Hashtbl.find_opt t.families name with
        | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s is a %s, not a %s" name f.f_kind
                 kind);
          f
        | None ->
          let f =
            {
              f_name = name;
              f_help = (if help = "" then name else help);
              f_kind = kind;
              f_series = Hashtbl.create 4;
              f_order = [];
            }
          in
          Hashtbl.replace t.families name f;
          f
      in
      let key = render_labels labels in
      match Hashtbl.find_opt fam.f_series key with
      | Some inst -> select inst
      | None ->
        let inst = build () in
        Hashtbl.replace fam.f_series key inst;
        fam.f_order <- key :: fam.f_order;
        select inst)

let kind_error name = invalid_arg ("Metrics: instrument kind changed: " ^ name)

(* Counters *)

let counter ?(help = "") ?(labels = []) t name =
  register t ~name ~help ~kind:"counter" ~labels
    ~build:(fun () ->
      Counter
        {
          c_labels = labels;
          c_shards = Array.init nshards (fun _ -> Atomic.make 0);
        })
    ~select:(function Counter c -> c | _ -> kind_error name)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters never decrease";
  if n <> 0 then
    ignore (Atomic.fetch_and_add c.c_shards.(shard_ix ()) n)

let inc c = ignore (Atomic.fetch_and_add c.c_shards.(shard_ix ()) 1)

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_shards

(* Gauges *)

let gauge ?(help = "") ?(labels = []) t name =
  register t ~name ~help ~kind:"gauge" ~labels
    ~build:(fun () -> Gauge { g_labels = labels; g_cell = Atomic.make 0.0 })
    ~select:(function Gauge g -> g | _ -> kind_error name)

let set_gauge g v = Atomic.set g.g_cell v

let gauge_value g = Atomic.get g.g_cell

(* Histograms *)

let log_buckets ?(base = 2.0) ~lo ~hi () =
  if not (lo > 0.0 && hi > lo && base > 1.0) then
    invalid_arg "Metrics.log_buckets: need lo > 0, hi > lo, base > 1";
  let rec grow acc b = if b >= hi then List.rev (b :: acc) else grow (b :: acc) (b *. base) in
  Array.of_list (grow [] lo)

let default_buckets = log_buckets ~lo:0.001 ~hi:1000.0 ()

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) t name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: buckets must be strictly increasing";
  register t ~name ~help ~kind:"histogram" ~labels
    ~build:(fun () ->
      Histogram
        {
          h_labels = labels;
          h_bounds = Array.copy buckets;
          h_shards =
            Array.init nshards (fun _ ->
                {
                  hb_counts =
                    Array.init (Array.length buckets + 1) (fun _ ->
                        Atomic.make 0);
                  hb_sum = Atomic.make 0.0;
                });
        })
    ~select:(function Histogram h -> h | _ -> kind_error name)

let observe h v =
  let nb = Array.length h.h_bounds in
  (* Linear scan: bucket counts are small (tens) and the loop is
     branch-predictable; a binary search would not pay for itself. *)
  let rec find i = if i >= nb || v <= h.h_bounds.(i) then i else find (i + 1) in
  let shard = h.h_shards.(shard_ix ()) in
  ignore (Atomic.fetch_and_add shard.hb_counts.(find 0) 1);
  atomic_add_float shard.hb_sum v

type histogram_snapshot = {
  hs_buckets : (float * int) list;
  hs_sum : float;
  hs_count : int;
}

let histogram_snapshot h =
  let nb = Array.length h.h_bounds in
  let merged = Array.make (nb + 1) 0 in
  let sum = ref 0.0 in
  Array.iter
    (fun shard ->
      Array.iteri
        (fun i cell -> merged.(i) <- merged.(i) + Atomic.get cell)
        shard.hb_counts;
      sum := !sum +. Atomic.get shard.hb_sum)
    h.h_shards;
  let cumulative = ref 0 in
  let buckets =
    List.init (nb + 1) (fun i ->
        cumulative := !cumulative + merged.(i);
        let bound = if i < nb then h.h_bounds.(i) else infinity in
        bound, !cumulative)
  in
  { hs_buckets = buckets; hs_sum = !sum; hs_count = !cumulative }

(* Rendering *)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let fmt_bound b = if b = infinity then "+Inf" else fmt_float b

(* Inject [extra] labels (e.g. [le]) into an already-rendered label
   suffix. *)
let labels_with labels extra =
  render_labels (labels @ extra)

let render t =
  let b = Buffer.create 1024 in
  let families =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
        |> List.sort (fun a b -> compare a.f_name b.f_name)
        |> List.map (fun f ->
               ( f,
                 List.rev_map
                   (fun key -> Hashtbl.find f.f_series key)
                   f.f_order )))
  in
  List.iter
    (fun (f, series) ->
      Printf.bprintf b "# HELP %s %s\n" f.f_name f.f_help;
      Printf.bprintf b "# TYPE %s %s\n" f.f_name f.f_kind;
      List.iter
        (fun inst ->
          match inst with
          | Counter c ->
            Printf.bprintf b "%s_total%s %d\n" f.f_name
              (render_labels c.c_labels) (counter_value c)
          | Gauge g ->
            Printf.bprintf b "%s%s %s\n" f.f_name (render_labels g.g_labels)
              (fmt_float (gauge_value g))
          | Histogram h ->
            let snap = histogram_snapshot h in
            List.iter
              (fun (bound, count) ->
                Printf.bprintf b "%s_bucket%s %d\n" f.f_name
                  (labels_with h.h_labels [ "le", fmt_bound bound ])
                  count)
              snap.hs_buckets;
            Printf.bprintf b "%s_sum%s %s\n" f.f_name
              (render_labels h.h_labels) (fmt_float snap.hs_sum);
            Printf.bprintf b "%s_count%s %d\n" f.f_name
              (render_labels h.h_labels) snap.hs_count)
        series)
    families;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* Probe points *)

module Probe = struct
  type point = {
    pt_label : string;
    pt_index : int;
    mutable pt_rows : int;
    mutable pt_calls : int;
    mutable pt_ns : int;
    mutable pt_derived : bool;
  }

  type t = { mutable pts : point list (* reverse creation order *) }

  let create () = { pts = [] }

  let point t label =
    let p =
      {
        pt_label = label;
        pt_index = List.length t.pts;
        pt_rows = 0;
        pt_calls = 0;
        pt_ns = 0;
        pt_derived = false;
      }
    in
    t.pts <- p :: t.pts;
    p

  let points t = List.rev t.pts

  let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
end
