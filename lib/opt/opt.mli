(** Algebraic plan optimization: rewrite rules over the declarative query
    AST, plus a second pass over the canonicalized QUIL chain.

    The paper's pipeline consumes the query AST as written, so a
    semantically redundant operator chain ([Where p] directly over
    [Where q], [Select f] over [Select g], stacked [Take]/[Skip]s, a
    constant predicate) pays a full operator's worth of iterator state,
    closure calls, generated code and cache-key entropy.  This module is
    the classic next step for a loop-based relational IR: a small
    algebraic rewrite engine that runs between query construction and
    specialization, under a fixpoint driver with a fuel bound.

    Every rule is semantics-preserving for the pure expression language of
    {!Expr} (predicate fusion short-circuits via [If], transformation
    fusion binds the intermediate value with [Let], so evaluation count
    and order are preserved even for captured host functions).  Rules
    that delete a per-element evaluation ([where-const-true],
    [take-while-const], [nonempty-any-true]) additionally require the
    deleted lambda to be pure.

    The optimizer is {e checked}, not trusted: every firing is logged as
    a {!Check_equiv.event} carrying the sub-terms that justified it, and
    the engine discharges the log against {!Check_equiv.laws} after the
    fixpoint.  {!query}/{!scalar}/{!chain} keep the plain rule-name log
    for display; the [_ev] variants expose the full events.

    {b AST rules} (applied by {!query} / {!scalar}):
    - [where-fuse]: [Where p ∘ Where q] → one [Where] testing [p] then [q]
      (short-circuit preserved);
    - [select-fuse]: [Select f ∘ Select g] → one [Select] of the [Let]-bound
      composition;
    - [take-take]: [Take n ∘ Take m] → [Take (min n m)] (constants folded,
      otherwise a [min] expression);
    - [skip-skip]: [Skip n ∘ Skip m] → [Skip (n + m)] (constant counts,
      clamped at zero);
    - [skip-zero]: [Skip 0] dropped;
    - [take-zero]: [Take n], [n <= 0] → the empty source;
    - [where-const-true] / [where-const-false]: a pure predicate that
      constant folds to [true] is dropped; [false] short-circuits to the
      empty source;
    - [where-interval-true] / [where-interval-false]: a pure predicate
      decided by {!Check_purity.truth}'s interval analysis (e.g.
      [x mod 10 < 10]) is dropped / short-circuits to the empty source;
    - [take-interval-nonpos]: [Take n] where the interval analysis proves
      [n <= 0] becomes the empty source;
    - [take-while-const] / [skip-while-const]: likewise for the stateful
      predicates (pure only);
    - [distinct-distinct]: adjacent [Distinct]s collapse;
    - [distinct-on-distinct-free]: [Distinct] over an input
      {!Check_flow} proves duplicate-free is the identity;
    - [orderby-on-sorted]: [Order_by] over an input already sorted by an
      alpha-equivalent key in the same direction is the identity (sound
      because every backend sorts stably);
    - [rev-rev]: [Rev ∘ Rev] cancels at the AST level;
    - [nonempty-any-true]: [Any] over a provably non-empty pure pipeline
      is the constant [true];
    - [empty-collapse]: dead-operator elimination — any operator whose
      source is statically empty (after a collapsing rewrite) becomes the
      empty source of its element type;
    - [stats-where-reorder]: (adaptive pass only, see
      {!adaptive_query_ev}) pure conjuncts of a fused filter are re-sorted
      most-selective-first by measured selectivity.

    {b QUIL chain rules} (applied by {!chain} to the canonicalized form):
    - [quil-rev-rev]: adjacent [Sink:Reverse] pairs cancel;
    - [quil-drop-to-array]: a [Sink:ToArray] immediately followed by
      another sink or an aggregate is redundant (the downstream operator
      rebuffers or folds the whole input anyway). *)

val default_fuel : int
(** Bound on fixpoint passes (each pass may fire many rules); rewriting
    stops early as soon as a pass fires nothing. *)

type event = Check_equiv.event = {
  ev_rule : string;
  ev_facts : Check_equiv.fact list;
}

val query : ?fuel:int -> 'a Query.t -> 'a Query.t * string list
(** [query q] is the rewritten query together with the names of the rules
    applied, in application order (one entry per firing, so a rule fusing
    three stacked [Where]s appears twice). *)

val scalar : ?fuel:int -> 's Query.sq -> 's Query.sq * string list

val chain : ?fuel:int -> Quil.chain -> Quil.chain * string list
(** The string-level pass over the canonicalized QUIL chain, recursing
    into nested sub-chains. *)

val query_ev : ?fuel:int -> 'a Query.t -> 'a Query.t * event list
(** As {!query}, with the rewrite events the translation validator
    consumes. *)

val scalar_ev : ?fuel:int -> 's Query.sq -> 's Query.sq * event list
val chain_ev : ?fuel:int -> Quil.chain -> Quil.chain * event list

val rule_names : string list
(** Every rule this engine can fire, AST rules first — the documentation
    table, the law table and the rule-coverage test enumerate it. *)

(** {1 Adaptive pass}

    A second, statistics-driven pass the engine runs after the syntactic
    fixpoint when [Config.with_adaptive] is set.  It never fires from
    {!query}/{!scalar}: the estimator is engine state (the [Steno.Cost]
    store plus static priors), so the pass is a separate entry point. *)

type estimator = { est : 'a. ('a, bool) Expr.lam -> float }
(** Selectivity oracle: expected pass fraction of a predicate, in
    [[0, 1]].  Supplied by the engine — observed statistics when the
    plan has run under profiling, static priors otherwise. *)

val adaptive_query_ev :
  estimator -> split:bool -> 'a Query.t -> 'a Query.t * event list
(** Reorder the pure conjuncts of every fused [Where] in the plan,
    cheapest (most selective) first, per the estimator.  Impure
    conjunct chains never move.  Each inverted pair is logged as a
    ["stats-where-reorder"] event with a [Stats_selectivity] fact for
    the validator.  [~split:true] additionally rebuilds multi-conjunct
    pure filters as stacked single-predicate [Where]s so a profiled run
    observes each conjunct's selectivity separately (semantically the
    inverse of [where-fuse]; no event is logged for the split itself). *)

val adaptive_scalar_ev :
  estimator -> split:bool -> 's Query.sq -> 's Query.sq * event list

(** {1 Test hook}

    A rewrite tried before every real rule.  It exists solely so the
    test suite can inject an {e unsound} rewrite (with a forged
    justification) and observe the translation validator reject it;
    production code never sets it. *)

type hook = { h : 'a. 'a Query.t -> ('a Query.t * event) option }

val set_test_hook : hook option -> unit
