(** Algebraic plan optimization: rewrite rules over the declarative query
    AST, plus a second pass over the canonicalized QUIL chain.

    The paper's pipeline consumes the query AST as written, so a
    semantically redundant operator chain ([Where p] directly over
    [Where q], [Select f] over [Select g], stacked [Take]/[Skip]s, a
    constant predicate) pays a full operator's worth of iterator state,
    closure calls, generated code and cache-key entropy.  This module is
    the classic next step for a loop-based relational IR: a small
    algebraic rewrite engine that runs between query construction and
    specialization, under a fixpoint driver with a fuel bound.

    Every rule is semantics-preserving for the pure expression language of
    {!Expr} (predicate fusion short-circuits via [If], transformation
    fusion binds the intermediate value with [Let], so evaluation count
    and order are preserved even for captured host functions).  Rules that
    eliminate a sub-query ([where-const-false], [take-zero],
    [empty-collapse]) assume predicates and selectors are effect-free, the
    standing assumption of the whole pipeline.

    {b AST rules} (applied by {!query} / {!scalar}):
    - [where-fuse]: [Where p ∘ Where q] → one [Where] testing [p] then [q]
      (short-circuit preserved);
    - [select-fuse]: [Select f ∘ Select g] → one [Select] of the [Let]-bound
      composition;
    - [take-take]: [Take n ∘ Take m] → [Take (min n m)] (constants folded,
      otherwise a [min] expression);
    - [skip-skip]: [Skip n ∘ Skip m] → [Skip (n + m)] (constant counts,
      clamped at zero);
    - [skip-zero]: [Skip 0] dropped;
    - [take-zero]: [Take n], [n <= 0] → the empty source;
    - [where-const-true] / [where-const-false]: a predicate that constant
      folds to [true] is dropped; [false] short-circuits to the empty
      source;
    - [where-interval-true] / [where-interval-false]: a predicate decided
      by {!Check_purity.truth}'s interval analysis (e.g. [x mod 10 < 10])
      is dropped / short-circuits to the empty source;
    - [take-interval-nonpos]: [Take n] where the interval analysis proves
      [n <= 0] becomes the empty source;
    - [take-while-const] / [skip-while-const]: likewise for the stateful
      predicates;
    - [distinct-distinct]: adjacent [Distinct]s collapse;
    - [empty-collapse]: dead-operator elimination — any operator whose
      source is statically empty (after a collapsing rewrite) becomes the
      empty source of its element type.

    {b QUIL chain rules} (applied by {!chain} to the canonicalized form):
    - [quil-rev-rev]: adjacent [Sink:Reverse] pairs cancel;
    - [quil-drop-to-array]: a [Sink:ToArray] immediately followed by
      another sink or an aggregate is redundant (the downstream operator
      rebuffers or folds the whole input anyway). *)

val default_fuel : int
(** Bound on fixpoint passes (each pass may fire many rules); rewriting
    stops early as soon as a pass fires nothing. *)

val query : ?fuel:int -> 'a Query.t -> 'a Query.t * string list
(** [query q] is the rewritten query together with the names of the rules
    applied, in application order (one entry per firing, so a rule fusing
    three stacked [Where]s appears twice). *)

val scalar : ?fuel:int -> 's Query.sq -> 's Query.sq * string list

val chain : ?fuel:int -> Quil.chain -> Quil.chain * string list
(** The string-level pass over the canonicalized QUIL chain, recursing
    into nested sub-chains. *)

val rule_names : string list
(** Every rule this engine can fire, AST rules first — the documentation
    table and the differential test enumerate it. *)
