(* Algebraic rewrites over the query AST and the canonicalized QUIL
   chain.  See opt.mli for the rule table.

   Every rewrite is logged as a [Check_equiv.event]: the rule name plus
   the sub-terms whose static facts justified it, captured before they
   are rewritten away.  The engine hands the event log to the
   translation validator after the fixpoint — the optimizer claims, the
   validator re-proves.

   Every rule strictly decreases the operator count (the one scalar
   rule replaces a plan with a two-operator constant), so the per-node
   rule loop and the fixpoint driver both terminate; the fuel bound is
   a belt-and-braces guard, not a load-bearing one. *)

let default_fuel = 32

let rule_names =
  [
    "where-fuse";
    "select-fuse";
    "take-take";
    "skip-skip";
    "skip-zero";
    "take-zero";
    "where-const-true";
    "where-const-false";
    "where-interval-true";
    "where-interval-false";
    "take-interval-nonpos";
    "take-while-const";
    "skip-while-const";
    "distinct-distinct";
    "distinct-on-distinct-free";
    "orderby-on-sorted";
    "rev-rev";
    "nonempty-any-true";
    "empty-collapse";
    "stats-where-reorder";
    "quil-rev-rev";
    "quil-drop-to-array";
  ]

type event = Check_equiv.event = {
  ev_rule : string;
  ev_facts : Check_equiv.fact list;
}

let ev rule facts = { ev_rule = rule; ev_facts = facts }

(* The canonical empty source for an element type.  Empty arrays share
   one runtime representation, so repeated collapses also share a capture
   slot. *)
let empty : type a. a Ty.t -> a Query.t =
 fun ty -> Query.Of_array (ty, Expr.capture (Ty.Array ty) [||])

let empty_like : type a. a Query.t -> a Query.t =
 fun q -> empty (Query.elem_ty q)

(* A source that is statically known to produce no elements. *)
let is_empty : type a. a Query.t -> bool = function
  | Query.Of_array (_, Expr.Capture (_, arr)) -> Array.length arr = 0
  | Query.Range (_, Expr.Const_int n) -> n <= 0
  | Query.Repeat (_, _, Expr.Const_int n) -> n <= 0
  | _ -> false

(* Dead-operator elimination: any operator fed only by an empty source
   produces no elements itself.  (A [Join] is empty as soon as either
   side is; a [Select_many] as soon as the outer or the element-independent
   inner is.) *)
let collapsible : type a. a Query.t -> bool = function
  | Query.Of_array _ | Query.Range _ | Query.Repeat _ -> false
  | Query.Select (q, _) -> is_empty q
  | Query.Select_i (q, _) -> is_empty q
  | Query.Select_q (q, _, _) -> is_empty q
  | Query.Where (q, _)
  | Query.Where_i (q, _)
  | Query.Take (q, _)
  | Query.Skip (q, _)
  | Query.Take_while (q, _)
  | Query.Skip_while (q, _)
  | Query.Order_by (q, _, _)
  | Query.Distinct q
  | Query.Rev q
  | Query.Materialize q ->
    is_empty q
  | Query.Where_q (q, _, _) -> is_empty q
  | Query.Select_many (q, _, inner) -> is_empty q || is_empty inner
  | Query.Select_many_result (q, _, inner, _) -> is_empty q || is_empty inner
  | Query.Join (outer, inner, _, _, _) -> is_empty outer || is_empty inner
  | Query.Group_by (q, _) -> is_empty q
  | Query.Group_by_elem (q, _, _) -> is_empty q
  | Query.Group_by_agg (q, _, _, _) -> is_empty q

let pure e = Check_purity.purity e = Check_purity.Pure

(* Test-only rewrite injection: a hook tried before every real rule, so
   the test suite can exercise the translation validator with an
   unsound rewrite that no shipped rule performs. *)
type hook = { h : 'a. 'a Query.t -> ('a Query.t * event) option }

let test_hook : hook option ref = ref None
let set_test_hook h = test_hook := h

(* One rule application at the root of [q], or [None] when no rule
   matches.  Children are assumed already rewritten (the pass below is
   bottom-up). *)
let rewrite_top : type a. a Query.t -> (a Query.t * event) option =
 fun q ->
  match
    match !test_hook with
    | Some { h } -> h q
    | None -> None
  with
  | Some _ as injected -> injected
  | None ->
    if collapsible q then
      Some (empty_like q, ev "empty-collapse" [ Check_equiv.Input_empty q ])
    else (
      match q with
      | Query.Where (q0, p) -> (
        match Expr.simplify p.Expr.body with
        | Expr.Const_bool true when pure p.Expr.body ->
          Some (q0, ev "where-const-true" [ Check_equiv.Pred_true p.Expr.body ])
        | Expr.Const_bool false when pure p.Expr.body ->
          Some
            ( empty (Query.elem_ty q0),
              ev "where-const-false" [ Check_equiv.Pred_false p.Expr.body ] )
        | simplified -> (
        (* The interval analysis decides predicates [simplify] cannot
           normalize syntactically, e.g. [x mod 10 < 10].  Deleting a
           filter also deletes its per-element evaluation, so the
           predicate must be pure. *)
        match
          if pure p.Expr.body then Check_purity.truth simplified
          else Check_purity.Unknown
        with
        | Check_purity.True ->
          Some
            (q0, ev "where-interval-true" [ Check_equiv.Pred_true p.Expr.body ])
        | Check_purity.False ->
          Some
            ( empty (Query.elem_ty q0),
              ev "where-interval-false" [ Check_equiv.Pred_false p.Expr.body ]
            )
        | Check_purity.Unknown -> (
          match q0 with
          | Query.Where (q1, p1) ->
            (* Test p1 then p2 on the same element; [If] keeps the second
               predicate unevaluated when the first already rejected. *)
            let p2_body =
              Expr.subst p.Expr.param (Expr.Var p1.Expr.param) p.Expr.body
            in
            let fused =
              {
                p1 with
                Expr.body =
                  Expr.If (p1.Expr.body, p2_body, Expr.Const_bool false);
              }
            in
            Some (Query.Where (q1, fused), ev "where-fuse" [])
          | _ -> None)))
      | Query.Select (Query.Select (q0, f), g) ->
        (* Bind the intermediate element once, so a selector using its
           parameter twice does not duplicate the upstream computation. *)
        let composed =
          {
            Expr.param = f.Expr.param;
            body = Expr.Let (g.Expr.param, f.Expr.body, g.Expr.body);
          }
        in
        Some (Query.Select (q0, composed), ev "select-fuse" [])
      | Query.Take (q0, Expr.Const_int n) when n <= 0 ->
        Some
          ( empty (Query.elem_ty q0),
            ev "take-zero" [ Check_equiv.Count_nonpos (Expr.Const_int n) ] )
      | Query.Take (q0, n) when Check_purity.always_nonpositive n ->
        Some
          ( empty (Query.elem_ty q0),
            ev "take-interval-nonpos" [ Check_equiv.Count_nonpos n ] )
      | Query.Take (Query.Take (q0, n), m) ->
        let count =
          match n, m with
          | Expr.Const_int a, Expr.Const_int b -> Expr.Const_int (min a b)
          | n, m -> Expr.Prim2 (Prim.Min_int, n, m)
        in
        Some (Query.Take (q0, count), ev "take-take" [])
      | Query.Skip (q0, Expr.Const_int n) when n <= 0 ->
        Some
          (q0, ev "skip-zero" [ Check_equiv.Count_nonpos (Expr.Const_int n) ])
      | Query.Skip (Query.Skip (q0, Expr.Const_int a), Expr.Const_int b) ->
        Some
          ( Query.Skip (q0, Expr.Const_int (max 0 a + max 0 b)),
            ev "skip-skip" [] )
      | Query.Take_while (q0, p) when pure p.Expr.body -> (
        match Expr.simplify p.Expr.body with
        | Expr.Const_bool true ->
          Some (q0, ev "take-while-const" [ Check_equiv.Pred_true p.Expr.body ])
        | Expr.Const_bool false ->
          Some
            ( empty (Query.elem_ty q0),
              ev "take-while-const" [ Check_equiv.Pred_false p.Expr.body ] )
        | _ -> None)
      | Query.Skip_while (q0, p) when pure p.Expr.body -> (
        match Expr.simplify p.Expr.body with
        | Expr.Const_bool false ->
          Some (q0, ev "skip-while-const" [ Check_equiv.Pred_false p.Expr.body ])
        | Expr.Const_bool true ->
          Some
            ( empty (Query.elem_ty q0),
              ev "skip-while-const" [ Check_equiv.Pred_true p.Expr.body ] )
        | _ -> None)
      | Query.Distinct (Query.Distinct q0) ->
        Some (Query.Distinct q0, ev "distinct-distinct" [])
      | Query.Distinct q0
        when (Check_flow.props q0).Check_flow.distinct = Check_flow.Yes ->
        Some
          ( q0,
            ev "distinct-on-distinct-free" [ Check_equiv.Input_distinct q0 ] )
      | Query.Rev (Query.Rev q0) -> Some (q0, ev "rev-rev" [])
      | Query.Order_by (q0, k, dir) when Check_flow.sorted_matching q0 k dir ->
        (* Sound because every backend sorts stably: a stable sort of an
           input already ordered by the same key is the identity. *)
        Some
          (q0, ev "orderby-on-sorted" [ Check_equiv.Input_sorted (q0, k, dir) ])
      | _ -> None)

(* The one scalar-level rule: [Any] over a provably non-empty, pure
   pipeline is the constant [true] (realized as an aggregate over the
   empty source, since scalar queries have no literal constructor). *)
let rewrite_top_sq : type s. s Query.sq -> (s Query.sq * event) option =
 fun sq ->
  match sq with
  | Query.Any q ->
    let p = Check_flow.props q in
    if p.Check_flow.nonempty = Check_flow.Yes && p.Check_flow.pure_prefix then
      let ty = Query.elem_ty q in
      let const_true =
        Query.Aggregate
          ( empty ty,
            Expr.Const_bool true,
            Expr.lam2 "s" Ty.Bool "x" ty (fun s _ -> s) )
      in
      Some
        ( const_true,
          ev "nonempty-any-true" [ Check_equiv.Input_nonempty_pure q ] )
    else None
  | _ -> None

(* Apply rules at this node until none fires.  Terminates: every rule
   strictly decreases the operator count (or, for the scalar rule,
   rewrites to a normal form no rule matches). *)
let rec apply_rules : type a. a Query.t -> event list -> a Query.t * event list
    =
 fun q log ->
  match rewrite_top q with
  | Some (q', e) -> apply_rules q' (log @ [ e ])
  | None -> q, log

let rec apply_rules_sq :
    type s. s Query.sq -> event list -> s Query.sq * event list =
 fun sq log ->
  match rewrite_top_sq sq with
  | Some (sq', e) -> apply_rules_sq sq' (log @ [ e ])
  | None -> sq, log

let rec pass : type a. a Query.t -> a Query.t * event list =
 fun q ->
  let q, log =
    match q with
    | Query.Of_array _ as q -> q, []
    | Query.Range _ as q -> q, []
    | Query.Repeat _ as q -> q, []
    | Query.Select (q0, f) ->
      let q0, l = pass q0 in
      Query.Select (q0, f), l
    | Query.Select_i (q0, f) ->
      let q0, l = pass q0 in
      Query.Select_i (q0, f), l
    | Query.Select_q (q0, v, sq) ->
      let q0, l1 = pass q0 in
      let sq, l2 = pass_sq sq in
      Query.Select_q (q0, v, sq), l1 @ l2
    | Query.Where (q0, p) ->
      let q0, l = pass q0 in
      Query.Where (q0, p), l
    | Query.Where_i (q0, p) ->
      let q0, l = pass q0 in
      Query.Where_i (q0, p), l
    | Query.Where_q (q0, v, sq) ->
      let q0, l1 = pass q0 in
      let sq, l2 = pass_sq sq in
      Query.Where_q (q0, v, sq), l1 @ l2
    | Query.Take (q0, n) ->
      let q0, l = pass q0 in
      Query.Take (q0, n), l
    | Query.Skip (q0, n) ->
      let q0, l = pass q0 in
      Query.Skip (q0, n), l
    | Query.Take_while (q0, p) ->
      let q0, l = pass q0 in
      Query.Take_while (q0, p), l
    | Query.Skip_while (q0, p) ->
      let q0, l = pass q0 in
      Query.Skip_while (q0, p), l
    | Query.Select_many (q0, v, inner) ->
      let q0, l1 = pass q0 in
      let inner, l2 = pass inner in
      Query.Select_many (q0, v, inner), l1 @ l2
    | Query.Select_many_result (q0, v, inner, r) ->
      let q0, l1 = pass q0 in
      let inner, l2 = pass inner in
      Query.Select_many_result (q0, v, inner, r), l1 @ l2
    | Query.Join (outer, inner, ok, ik, res) ->
      let outer, l1 = pass outer in
      let inner, l2 = pass inner in
      Query.Join (outer, inner, ok, ik, res), l1 @ l2
    | Query.Group_by (q0, k) ->
      let q0, l = pass q0 in
      Query.Group_by (q0, k), l
    | Query.Group_by_elem (q0, k, e) ->
      let q0, l = pass q0 in
      Query.Group_by_elem (q0, k, e), l
    | Query.Group_by_agg (q0, k, seed, step) ->
      let q0, l = pass q0 in
      Query.Group_by_agg (q0, k, seed, step), l
    | Query.Order_by (q0, k, dir) ->
      let q0, l = pass q0 in
      Query.Order_by (q0, k, dir), l
    | Query.Distinct q0 ->
      let q0, l = pass q0 in
      Query.Distinct q0, l
    | Query.Rev q0 ->
      let q0, l = pass q0 in
      Query.Rev q0, l
    | Query.Materialize q0 ->
      let q0, l = pass q0 in
      Query.Materialize q0, l
  in
  apply_rules q log

and pass_sq : type s. s Query.sq -> s Query.sq * event list =
 fun sq ->
  let sq, log =
    match sq with
    | Query.Aggregate (q, seed, step) ->
      let q, l = pass q in
      Query.Aggregate (q, seed, step), l
    | Query.Aggregate_full (q, seed, step, res) ->
      let q, l = pass q in
      Query.Aggregate_full (q, seed, step, res), l
    | Query.Aggregate_combinable (q, seed, step, combine) ->
      let q, l = pass q in
      Query.Aggregate_combinable (q, seed, step, combine), l
    | Query.Sum_int q ->
      let q, l = pass q in
      Query.Sum_int q, l
    | Query.Sum_float q ->
      let q, l = pass q in
      Query.Sum_float q, l
    | Query.Count q ->
      let q, l = pass q in
      Query.Count q, l
    | Query.Average q ->
      let q, l = pass q in
      Query.Average q, l
    | Query.Min q ->
      let q, l = pass q in
      Query.Min q, l
    | Query.Max q ->
      let q, l = pass q in
      Query.Max q, l
    | Query.Min_by (q, k) ->
      let q, l = pass q in
      Query.Min_by (q, k), l
    | Query.Max_by (q, k) ->
      let q, l = pass q in
      Query.Max_by (q, k), l
    | Query.First q ->
      let q, l = pass q in
      Query.First q, l
    | Query.Last q ->
      let q, l = pass q in
      Query.Last q, l
    | Query.Element_at (q, n) ->
      let q, l = pass q in
      Query.Element_at (q, n), l
    | Query.Any q ->
      let q, l = pass q in
      Query.Any q, l
    | Query.Exists (q, p) ->
      let q, l = pass q in
      Query.Exists (q, p), l
    | Query.For_all (q, p) ->
      let q, l = pass q in
      Query.For_all (q, p), l
    | Query.Contains (q, v) ->
      let q, l = pass q in
      Query.Contains (q, v), l
    | Query.Map_scalar (sq, f) ->
      let sq, l = pass_sq sq in
      Query.Map_scalar (sq, f), l
  in
  apply_rules_sq sq log

let run_fix ~fuel step x =
  let rec loop n x acc =
    if n <= 0 then x, acc
    else
      let x', fired = step x in
      if fired = [] then x', acc else loop (n - 1) x' (acc @ fired)
  in
  loop fuel x []

let query_ev ?(fuel = default_fuel) q = run_fix ~fuel pass q
let scalar_ev ?(fuel = default_fuel) sq = run_fix ~fuel pass_sq sq

let names evs = List.map (fun e -> e.ev_rule) evs

let query ?fuel q =
  let q, evs = query_ev ?fuel q in
  q, names evs

let scalar ?fuel sq =
  let sq, evs = scalar_ev ?fuel sq in
  sq, names evs

(* ------------------------------------------------------------------ *)
(* The adaptive (statistics-driven) pass.

   Runs once, after the syntactic fixpoint, and only when the engine
   asks for it ([Config.with_adaptive]).  [where-fuse] has already
   collapsed adjacent filters into one [Where] whose body is a
   short-circuit conjunct chain [If (c1, If (c2, ..., false), false)];
   this pass decomposes the chain, asks the engine-supplied estimator
   for each conjunct's selectivity, and stably re-sorts the conjuncts
   most-selective-first.  Only provably pure conjuncts move — an impure
   chain is left exactly as written.  Every inverted pair is logged as a
   "stats-where-reorder" event carrying a [Stats_selectivity] fact, so
   the translation validator re-derives purity on both predicates and
   sanity-checks the claimed selectivities; statistics influence *which*
   sound plan we pick, never whether a plan is sound.

   With [~split:true] (profiled engines) the conjuncts are rebuilt as a
   stack of single-predicate [Where]s instead of one fused body: each
   gets its own probe point, which is the only way per-conjunct
   selectivities ever become observable.  The split itself changes no
   ordering or short-circuit behavior (it is [where-fuse] read right to
   left) and so carries no event; the whole-plan validator invariants
   still apply. *)

type estimator = { est : 'a. ('a, bool) Expr.lam -> float }

let conjuncts (body : bool Expr.t) : bool Expr.t list =
  let rec go acc = function
    | Expr.If (a, rest, Expr.Const_bool false) -> go (a :: acc) rest
    | last -> List.rev (last :: acc)
  in
  go [] body

let fuse_conjuncts (cs : bool Expr.t list) : bool Expr.t =
  match List.rev cs with
  | [] -> Expr.Const_bool true
  | last :: front ->
    List.fold_left
      (fun acc c -> Expr.If (c, acc, Expr.Const_bool false))
      last front

let reorder_where :
    type a.
    estimator ->
    split:bool ->
    a Query.t ->
    (a, bool) Expr.lam ->
    a Query.t * event list =
 fun e ~split q0 p ->
  let keep = Query.Where (q0, p), [] in
  let cs = conjuncts p.Expr.body in
  if List.length cs < 2 then keep
  else if not (List.for_all pure cs) then keep
  else
    let scored =
      List.mapi (fun i c -> i, c, e.est { p with Expr.body = c }) cs
    in
    let sorted =
      List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare a b) scored
    in
    let events =
      (* One event per inverted pair: conjunct [u] now runs before a
         conjunct [v] it used to follow. *)
      let arr = Array.of_list sorted in
      let acc = ref [] in
      Array.iteri
        (fun u (iu, cu, su) ->
          Array.iteri
            (fun v (iv, cv, sv) ->
              if u < v && iu > iv then
                acc :=
                  ev "stats-where-reorder"
                    [
                      Check_equiv.Stats_selectivity
                        ( { p with Expr.body = cu },
                          { p with Expr.body = cv },
                          su,
                          sv );
                    ]
                  :: !acc)
            arr)
        arr;
      List.rev !acc
    in
    if events = [] && not split then keep
    else
      let ordered = List.map (fun (_, c, _) -> c) sorted in
      if split then
        let ty = Query.elem_ty q0 in
        let name = p.Expr.param.Expr.name in
        ( List.fold_left
            (fun q c ->
              Query.Where
                (q, Expr.lam name ty (fun x -> Expr.subst p.Expr.param x c)))
            q0 ordered,
          events )
      else
        Query.Where (q0, { p with Expr.body = fuse_conjuncts ordered }), events

let rec adapt : type a. estimator -> split:bool -> a Query.t -> a Query.t * event list =
 fun e ~split q ->
  let adapt q = adapt e ~split q in
  let adapt_sq sq = adapt_sq e ~split sq in
  match q with
  | Query.Of_array _ as q -> q, []
  | Query.Range _ as q -> q, []
  | Query.Repeat _ as q -> q, []
  | Query.Select (q0, f) ->
    let q0, l = adapt q0 in
    Query.Select (q0, f), l
  | Query.Select_i (q0, f) ->
    let q0, l = adapt q0 in
    Query.Select_i (q0, f), l
  | Query.Select_q (q0, v, sq) ->
    let q0, l1 = adapt q0 in
    let sq, l2 = adapt_sq sq in
    Query.Select_q (q0, v, sq), l1 @ l2
  | Query.Where (q0, p) ->
    let q0, l1 = adapt q0 in
    let q', l2 = reorder_where e ~split q0 p in
    q', l1 @ l2
  | Query.Where_i (q0, p) ->
    let q0, l = adapt q0 in
    Query.Where_i (q0, p), l
  | Query.Where_q (q0, v, sq) ->
    let q0, l1 = adapt q0 in
    let sq, l2 = adapt_sq sq in
    Query.Where_q (q0, v, sq), l1 @ l2
  | Query.Take (q0, n) ->
    let q0, l = adapt q0 in
    Query.Take (q0, n), l
  | Query.Skip (q0, n) ->
    let q0, l = adapt q0 in
    Query.Skip (q0, n), l
  | Query.Take_while (q0, p) ->
    let q0, l = adapt q0 in
    Query.Take_while (q0, p), l
  | Query.Skip_while (q0, p) ->
    let q0, l = adapt q0 in
    Query.Skip_while (q0, p), l
  | Query.Select_many (q0, v, inner) ->
    let q0, l1 = adapt q0 in
    let inner, l2 = adapt inner in
    Query.Select_many (q0, v, inner), l1 @ l2
  | Query.Select_many_result (q0, v, inner, r) ->
    let q0, l1 = adapt q0 in
    let inner, l2 = adapt inner in
    Query.Select_many_result (q0, v, inner, r), l1 @ l2
  | Query.Join (outer, inner, ok, ik, res) ->
    let outer, l1 = adapt outer in
    let inner, l2 = adapt inner in
    Query.Join (outer, inner, ok, ik, res), l1 @ l2
  | Query.Group_by (q0, k) ->
    let q0, l = adapt q0 in
    Query.Group_by (q0, k), l
  | Query.Group_by_elem (q0, k, el) ->
    let q0, l = adapt q0 in
    Query.Group_by_elem (q0, k, el), l
  | Query.Group_by_agg (q0, k, seed, step) ->
    let q0, l = adapt q0 in
    Query.Group_by_agg (q0, k, seed, step), l
  | Query.Order_by (q0, k, dir) ->
    let q0, l = adapt q0 in
    Query.Order_by (q0, k, dir), l
  | Query.Distinct q0 ->
    let q0, l = adapt q0 in
    Query.Distinct q0, l
  | Query.Rev q0 ->
    let q0, l = adapt q0 in
    Query.Rev q0, l
  | Query.Materialize q0 ->
    let q0, l = adapt q0 in
    Query.Materialize q0, l

and adapt_sq :
    type s. estimator -> split:bool -> s Query.sq -> s Query.sq * event list =
 fun e ~split sq ->
  let adapt q = adapt e ~split q in
  let adapt_sq sq = adapt_sq e ~split sq in
  match sq with
  | Query.Aggregate (q, seed, step) ->
    let q, l = adapt q in
    Query.Aggregate (q, seed, step), l
  | Query.Aggregate_full (q, seed, step, res) ->
    let q, l = adapt q in
    Query.Aggregate_full (q, seed, step, res), l
  | Query.Aggregate_combinable (q, seed, step, combine) ->
    let q, l = adapt q in
    Query.Aggregate_combinable (q, seed, step, combine), l
  | Query.Sum_int q ->
    let q, l = adapt q in
    Query.Sum_int q, l
  | Query.Sum_float q ->
    let q, l = adapt q in
    Query.Sum_float q, l
  | Query.Count q ->
    let q, l = adapt q in
    Query.Count q, l
  | Query.Average q ->
    let q, l = adapt q in
    Query.Average q, l
  | Query.Min q ->
    let q, l = adapt q in
    Query.Min q, l
  | Query.Max q ->
    let q, l = adapt q in
    Query.Max q, l
  | Query.Min_by (q, k) ->
    let q, l = adapt q in
    Query.Min_by (q, k), l
  | Query.Max_by (q, k) ->
    let q, l = adapt q in
    Query.Max_by (q, k), l
  | Query.First q ->
    let q, l = adapt q in
    Query.First q, l
  | Query.Last q ->
    let q, l = adapt q in
    Query.Last q, l
  | Query.Element_at (q, n) ->
    let q, l = adapt q in
    Query.Element_at (q, n), l
  | Query.Any q ->
    let q, l = adapt q in
    Query.Any q, l
  | Query.Exists (q, p) ->
    let q, l = adapt q in
    Query.Exists (q, p), l
  | Query.For_all (q, p) ->
    let q, l = adapt q in
    Query.For_all (q, p), l
  | Query.Contains (q, v) ->
    let q, l = adapt q in
    Query.Contains (q, v), l
  | Query.Map_scalar (sq, f) ->
    let sq, l = adapt_sq sq in
    Query.Map_scalar (sq, f), l

let adaptive_query_ev e ~split q = adapt e ~split q
let adaptive_scalar_ev e ~split sq = adapt_sq e ~split sq

(* ------------------------------------------------------------------ *)
(* The string-level pass over the canonicalized QUIL chain. *)

let chain_ev ?(fuel = default_fuel) (c : Quil.chain) =
  let log = ref [] in
  let fire r = log := !log @ [ ev r [] ] in
  let rec once c =
    let ops = List.map (Quil.map_nested once) c.Quil.ops in
    let rec squash = function
      | Quil.Sink Quil.Reverse_sink :: Quil.Sink Quil.Reverse_sink :: rest ->
        fire "quil-rev-rev";
        squash rest
      | Quil.Sink Quil.To_array_sink
        :: ((Quil.Sink _ | Quil.Agg _) :: _ as rest) ->
        (* The downstream sink rebuffers (or the aggregate folds) the
           whole input anyway, so the intermediate array is dead. *)
        fire "quil-drop-to-array";
        squash rest
      | op :: rest -> op :: squash rest
      | [] -> []
    in
    { c with Quil.ops = squash ops }
  in
  let rec loop n c =
    if n <= 0 then c
    else
      let before = List.length !log in
      let c' = once c in
      if List.length !log = before then c' else loop (n - 1) c'
  in
  let c' = loop fuel c in
  c', !log

let chain ?fuel c =
  let c, evs = chain_ev ?fuel c in
  c, names evs
