(** Persistent, content-addressed store for compiled query plugins.

    The in-process plugin cache ([Steno_lru] inside [Steno.Engine]) kills
    repeat compiles within one process; this store kills them across
    processes.  A compiled [.cmxs] is filed under the MD5 of its cache
    key — the optimizer-aware key the engine already uses, which embeds
    the generated source — inside a directory named after a compiler/ABI
    fingerprint, so artifacts from an incompatible toolchain are simply
    never looked at:

    {v
    <dir>/<fingerprint>/<md5 of key>.cmxs   the compiled plugin
    <dir>/<fingerprint>/<md5 of key>.key    the full (uncompressed) key
    v}

    The [.key] file guards against MD5 collisions and torn writes: a hit
    requires its content to equal the probe key byte-for-byte.
    Publication is crash-safe — both files are written to temp names and
    [rename]d into place, cmxs first, key last, so a key file's presence
    implies a complete entry.

    Every operation is total: I/O failures and corrupt entries make a
    lookup a miss and a store a no-op, never an exception.  The caller
    must still treat a cached artifact as untrusted — if dynlink rejects
    it, delete it with {!remove} and recompile. *)

type t

type stats = {
  st_entries : int;  (** live entries on disk *)
  st_bytes : int;  (** bytes of cached [.cmxs] artifacts *)
  st_hits : int;  (** lookups served from disk (this handle) *)
  st_misses : int;  (** lookups that found nothing usable (this handle) *)
  st_stores : int;  (** successful publications (this handle) *)
  st_evictions : int;  (** entries evicted by the caps (this handle) *)
}

val create :
  ?max_bytes:int -> ?max_entries:int -> fingerprint:string -> dir:string ->
  unit -> t
(** Open (creating directories as needed) the store rooted at [dir] for
    artifacts produced by the toolchain identified by [fingerprint].
    [max_bytes] (default 256 MiB) and [max_entries] (default 512) cap the
    fingerprint's subdirectory; {!store} evicts oldest-mtime entries
    until both hold.  Creation never raises: an unusable directory
    yields a handle whose operations all miss. *)

val find : t -> key:string -> string option
(** [find t ~key] returns the path of the cached [.cmxs] for [key], or
    [None].  A hit verifies the stored key byte-for-byte and freshens
    the entry's mtime (the eviction clock is LRU-by-mtime). *)

val store : t -> key:string -> cmxs:string -> int
(** [store t ~key ~cmxs] publishes a copy of the file at [cmxs] (and the
    key alongside) into the store, then enforces the caps; returns the
    number of entries evicted doing so.  Failures are silent; a racing
    store of the same key is harmless (last rename wins, both files are
    identical). *)

val remove : t -> key:string -> unit
(** Delete the entry for [key] if present — used when a cached artifact
    turns out to be unloadable. *)

val clear : t -> int
(** Delete every entry under the handle's fingerprint; returns the
    number of entries removed. *)

val stats : t -> stats
(** Disk figures are re-scanned on each call; hit/miss/store/eviction
    counters are per-handle and monotonic. *)

val dir : t -> string
(** The fingerprint subdirectory this handle reads and writes. *)

val default_dir : unit -> string
(** [$STENO_PCACHE_DIR] if set, else [$XDG_CACHE_HOME/steno/pcache],
    else [$HOME/.cache/steno/pcache], else [/tmp/steno-pcache]. *)
