(* On-disk plugin store.  See pcache.mli for the layout and contracts.

   Everything here is defensive: the cache lives in a world of partial
   writes, concurrent processes, and users running `rm -rf` mid-flight.
   Any syscall failure downgrades the operation (miss / no-op) rather
   than surfacing — the engine always has recompile-from-source as the
   slow path. *)

type t = {
  root : string;  (* <dir>/<fingerprint-dir>; "" when unusable *)
  max_bytes : int;
  max_entries : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = {
  st_entries : int;
  st_bytes : int;
  st_hits : int;
  st_misses : int;
  st_stores : int;
  st_evictions : int;
}

let ( / ) = Filename.concat

let default_dir () =
  match Sys.getenv_opt "STENO_PCACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
    let base =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> d
      | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> h / ".cache"
        | _ -> "/tmp")
    in
    if base = "/tmp" then base / "steno-pcache" else base / "steno" / "pcache"

let rec mkdir_p d =
  if d = "" || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ()
  end

(* The fingerprint names a subdirectory: keep it readable but filesystem
   safe, and append a hash prefix so distinct fingerprints that sanitize
   alike still get distinct directories. *)
let fingerprint_dirname fp =
  let b = Bytes.of_string (if String.length fp > 48 then String.sub fp 0 48 else fp) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let h = Digest.to_hex (Digest.string fp) in
  Bytes.to_string b ^ "-" ^ String.sub h 0 8

let create ?(max_bytes = 256 * 1024 * 1024) ?(max_entries = 512) ~fingerprint
    ~dir () =
  let root = dir / fingerprint_dirname fingerprint in
  let root =
    try
      mkdir_p root;
      let st = Unix.stat root in
      if st.Unix.st_kind = Unix.S_DIR then root else ""
    with _ -> ""
  in
  {
    root;
    max_bytes = max 0 max_bytes;
    max_entries = max 0 max_entries;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let dir t = t.root
let usable t = t.root <> ""

let hash_key key = Digest.to_hex (Digest.string key)
let cmxs_path t h = t.root / (h ^ ".cmxs")
let key_path t h = t.root / (h ^ ".key")

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with _ -> None

(* Unique-enough temp suffix without consulting the clock. *)
let tmp_seq = Atomic.make 0

let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

(* Crash-safe publication: write the full content to a temp file in the
   same directory, fsync, then rename over the destination. *)
let publish ~dst content =
  let tmp = tmp_name dst in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc content;
       flush oc;
       (try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ());
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Unix.rename tmp dst;
    true
  with _ ->
    (try Sys.remove tmp with _ -> ());
    false

let unlink path = try Sys.remove path with _ -> ()

(* An entry is committed iff its .key file exists; the .cmxs is written
   (and renamed) first, so tearing between the two renames leaves an
   orphan .cmxs that eviction sweeps up. *)
let delete_entry t h =
  unlink (key_path t h);
  unlink (cmxs_path t h)

type entry = { e_hash : string; e_bytes : int; e_mtime : float }

let list_entries t =
  if not (usable t) then []
  else
    try
      Sys.readdir t.root |> Array.to_list
      |> List.filter_map (fun f ->
             if Filename.check_suffix f ".key" then begin
               let h = Filename.chop_suffix f ".key" in
               try
                 let st = Unix.stat (cmxs_path t h) in
                 Some
                   {
                     e_hash = h;
                     e_bytes = st.Unix.st_size;
                     e_mtime = st.Unix.st_mtime;
                   }
               with _ ->
                 (* Key without artifact: half-deleted entry; drop it. *)
                 unlink (t.root / f);
                 None
             end
             else None)
    with _ -> []

let evict t =
  (* mtime is the LRU clock, but its granularity is a whole second on
     some filesystems: entries published within the same second would
     otherwise evict in readdir order, which differs across runs and
     hosts.  The hash tie-break makes the victim deterministic. *)
  let entries =
    List.sort
      (fun a b ->
        match compare a.e_mtime b.e_mtime with
        | 0 -> compare a.e_hash b.e_hash
        | c -> c)
      (list_entries t)
  in
  let count = List.length entries in
  let bytes = List.fold_left (fun acc e -> acc + e.e_bytes) 0 entries in
  let rec drop entries count bytes dropped =
    match entries with
    | e :: rest when count > t.max_entries || bytes > t.max_bytes ->
      delete_entry t e.e_hash;
      Atomic.incr t.evictions;
      drop rest (count - 1) (bytes - e.e_bytes) (dropped + 1)
    | _ -> dropped
  in
  drop entries count bytes 0

let find t ~key =
  if not (usable t) then None
  else begin
    let h = hash_key key in
    let hit =
      match read_file (key_path t h) with
      | Some stored when String.equal stored key ->
        let cmxs = cmxs_path t h in
        if Sys.file_exists cmxs then begin
          (* Freshen the LRU clock; utimes with 0.0 0.0 means "now". *)
          (try Unix.utimes cmxs 0.0 0.0 with _ -> ());
          (try Unix.utimes (key_path t h) 0.0 0.0 with _ -> ());
          Some cmxs
        end
        else None
      | Some _ | None -> None
    in
    (match hit with
    | Some _ -> Atomic.incr t.hits
    | None -> Atomic.incr t.misses);
    hit
  end

let store t ~key ~cmxs =
  if not (usable t) then 0
  else begin
    let h = hash_key key in
    match read_file cmxs with
    | None -> 0
    | Some bytes ->
      if publish ~dst:(cmxs_path t h) bytes then
        if publish ~dst:(key_path t h) key then begin
          Atomic.incr t.stores;
          evict t
        end
        else begin
          unlink (cmxs_path t h);
          0
        end
      else 0
  end

let remove t ~key = if usable t then delete_entry t (hash_key key)

let clear t =
  let entries = list_entries t in
  List.iter (fun e -> delete_entry t e.e_hash) entries;
  List.length entries

let stats t =
  let entries = list_entries t in
  {
    st_entries = List.length entries;
    st_bytes = List.fold_left (fun acc e -> acc + e.e_bytes) 0 entries;
    st_hits = Atomic.get t.hits;
    st_misses = Atomic.get t.misses;
    st_stores = Atomic.get t.stores;
    st_evictions = Atomic.get t.evictions;
  }
