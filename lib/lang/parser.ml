exception Parse_error of string * int

let aggregates = [ "sum"; "count"; "min"; "max"; "avg"; "any"; "first" ]

(* Mutable token cursor. *)
type state = {
  mutable toks : (Lexer.token * int) list;
}

let peek st =
  match st.toks with
  | (t, p) :: _ -> t, p
  | [] -> Lexer.EOF, 0

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st what =
  let t, p = peek st in
  raise (Parse_error (Printf.sprintf "expected %s, found %s" what (Lexer.describe t), p))

let eat st tok what =
  let t, _ = peek st in
  if t = tok then advance st else fail st what

let eat_kw st kw = eat st (Lexer.KW kw) (Printf.sprintf "keyword %S" kw)

let mk pos e = { Surface.e; pos }

(* Expressions, precedence climbing. *)
let rec parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.OP "||", p ->
    advance st;
    mk p (Surface.Binop ("||", lhs, parse_or st))
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Lexer.OP "&&", p ->
    advance st;
    mk p (Surface.Binop ("&&", lhs, parse_and st))
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Lexer.OP (("=" | "<>" | "<" | "<=" | ">" | ">=") as op), p ->
    advance st;
    mk p (Surface.Binop (op, lhs, parse_add st))
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.OP (("+" | "-") as op), p ->
      advance st;
      let rhs = parse_mul st in
      go (mk p (Surface.Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.OP (("*" | "/" | "%") as op), p ->
      advance st;
      let rhs = parse_unary st in
      go (mk p (Surface.Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.OP "-", p ->
    advance st;
    mk p (Surface.Unop ("-", parse_unary st))
  | Lexer.KW "not", p ->
    advance st;
    mk p (Surface.Unop ("not", parse_unary st))
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.INT n, p ->
    advance st;
    mk p (Surface.Int_lit n)
  | Lexer.FLOAT x, p ->
    advance st;
    mk p (Surface.Float_lit x)
  | Lexer.STRING s, p ->
    advance st;
    mk p (Surface.String_lit s)
  | Lexer.KW "true", p ->
    advance st;
    mk p (Surface.Bool_lit true)
  | Lexer.KW "false", p ->
    advance st;
    mk p (Surface.Bool_lit false)
  | Lexer.KW "fst", p ->
    advance st;
    mk p (Surface.Fst_e (parse_atom st))
  | Lexer.KW "snd", p ->
    advance st;
    mk p (Surface.Snd_e (parse_atom st))
  | Lexer.KW "count", p -> (
    advance st;
    (* [count(from ...)] is the aggregate; [count g] is a group's size. *)
    match st.toks with
    | (Lexer.LPAREN, _) :: (Lexer.KW "from", _) :: _ ->
      advance st;
      let q = parse_query st in
      eat st Lexer.RPAREN "')'";
      mk p
        (Surface.Scalar_of
           { Surface.agg_name = "count"; agg_body = q; spos = p })
    | _ -> mk p (Surface.Count_group (parse_atom st)))
  | Lexer.KW "if", p ->
    advance st;
    let c = parse_or st in
    eat_kw st "then";
    let t = parse_or st in
    eat_kw st "else";
    let f = parse_or st in
    mk p (Surface.If_e (c, t, f))
  | Lexer.IDENT name, p when List.mem name aggregates -> (
    (* Either an aggregate call over a query, or a plain variable. *)
    advance st;
    match peek st with
    | Lexer.LPAREN, _ ->
      advance st;
      let q = parse_query st in
      eat st Lexer.RPAREN "')'";
      mk p (Surface.Scalar_of { Surface.agg_name = name; agg_body = q; spos = p })
    | _ -> mk p (Surface.Var name))
  | Lexer.IDENT name, p ->
    advance st;
    mk p (Surface.Var name)
  | Lexer.LPAREN, p -> (
    advance st;
    let e1 = parse_or st in
    match peek st with
    | Lexer.COMMA, _ ->
      advance st;
      let e2 = parse_or st in
      eat st Lexer.RPAREN "')'";
      mk p (Surface.Pair_e (e1, e2))
    | Lexer.RPAREN, _ ->
      advance st;
      e1
    | _ -> fail st "')' or ','")
  | _ -> fail st "an expression"

(* Queries. *)
and parse_source st =
  match peek st with
  | Lexer.KW "range", p ->
    advance st;
    eat st Lexer.LPAREN "'('";
    let a = parse_or st in
    eat st Lexer.COMMA "','";
    let b = parse_or st in
    eat st Lexer.RPAREN "')'";
    ignore p;
    Surface.Range_src (a, b)
  | Lexer.IDENT name, _ ->
    advance st;
    Surface.Input name
  | Lexer.KW ("fst" | "snd"), _ ->
    (* An array-valued projection, e.g. [snd g] for a group's values. *)
    Surface.Expr_src (parse_atom st)
  | Lexer.LPAREN, _ -> (
    (* '(' starts either a sub-query or a parenthesized array-valued
       expression; the 'from' keyword disambiguates. *)
    match st.toks with
    | _ :: (Lexer.KW "from", _) :: _ ->
      advance st;
      let q = parse_query st in
      eat st Lexer.RPAREN "')'";
      Surface.Subquery q
    | _ -> Surface.Expr_src (parse_atom st))
  | _ -> fail st "a source (input name, range(...), a sub-query, or an \
                  array expression)"

and parse_query st =
  let _, qpos = peek st in
  eat_kw st "from";
  let bind =
    match peek st with
    | Lexer.IDENT x, _ ->
      advance st;
      x
    | _ -> fail st "a binder name"
  in
  eat_kw st "in";
  let src = parse_source st in
  let clauses = ref [] in
  let finish = ref None in
  let rec loop () =
    match peek st with
    | Lexer.KW "from", _ ->
      advance st;
      let x =
        match peek st with
        | Lexer.IDENT x, _ ->
          advance st;
          x
        | _ -> fail st "a binder name"
      in
      eat_kw st "in";
      let s = parse_source st in
      clauses := Surface.From (x, s) :: !clauses;
      loop ()
    | Lexer.KW "where", _ ->
      advance st;
      clauses := Surface.Where_c (parse_or st) :: !clauses;
      loop ()
    | Lexer.KW "orderby", _ ->
      advance st;
      let e = parse_or st in
      let dir =
        match peek st with
        | Lexer.KW "asc", _ ->
          advance st;
          `Asc
        | Lexer.KW "desc", _ ->
          advance st;
          `Desc
        | _ -> `Asc
      in
      clauses := Surface.Order_c (e, dir) :: !clauses;
      loop ()
    | Lexer.KW "take", _ ->
      advance st;
      clauses := Surface.Take_c (parse_or st) :: !clauses;
      loop ()
    | Lexer.KW "skip", _ ->
      advance st;
      clauses := Surface.Skip_c (parse_or st) :: !clauses;
      loop ()
    | Lexer.KW "distinct", _ ->
      advance st;
      clauses := Surface.Distinct_c :: !clauses;
      loop ()
    | Lexer.KW "select", _ ->
      advance st;
      finish := Some (Surface.Select_f (parse_or st))
    | Lexer.KW "group", _ ->
      advance st;
      let e = parse_or st in
      eat_kw st "by";
      let k = parse_or st in
      finish := Some (Surface.Group_f (e, k))
    | _ -> fail st "a query clause (from/where/orderby/take/skip/distinct/select/group)"
  in
  loop ();
  match !finish with
  | Some finish ->
    { Surface.bind; src; clauses = List.rev !clauses; finish; qpos }
  | None -> fail st "select or group"

let with_tokens src f =
  let st = { toks = Lexer.tokenize src } in
  let result = f st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, p ->
    raise (Parse_error (Printf.sprintf "trailing input: %s" (Lexer.describe t), p)));
  result

let program src =
  with_tokens src (fun st ->
      let aggregate_head =
        match peek st with
        | Lexer.IDENT name, p when List.mem name aggregates -> Some (name, p)
        | Lexer.KW "count", p -> Some ("count", p)
        | _ -> None
      in
      match aggregate_head with
      | Some (name, p) ->
        advance st;
        eat st Lexer.LPAREN "'('";
        let q = parse_query st in
        eat st Lexer.RPAREN "')'";
        Surface.Scalar_p { Surface.agg_name = name; agg_body = q; spos = p }
      | None -> Surface.Collection_p (parse_query st))

let parse_expr src = with_tokens src parse_or
