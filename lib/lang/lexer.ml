type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | OP of string
  | LPAREN
  | RPAREN
  | COMMA
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "from"; "in"; "where"; "select"; "group"; "by"; "orderby"; "asc"; "desc";
    "take"; "skip"; "distinct"; "range"; "true"; "false"; "if"; "then";
    "else"; "fst"; "snd"; "count"; "not";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit tok pos = out := (tok, pos) :: !out in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      let is_float =
        !j < n && src.[!j] = '.' && not (!j + 1 < n && src.[!j + 1] = '.')
      in
      if is_float then begin
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      (* exponent *)
      let has_exp = !j < n && (src.[!j] = 'e' || src.[!j] = 'E') in
      if has_exp then begin
        incr j;
        if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      let text = String.sub src !i (!j - !i) in
      if is_float || has_exp then
        emit (FLOAT (float_of_string text)) start
      else begin
        match int_of_string_opt text with
        | Some v -> emit (INT v) start
        | None -> raise (Lex_error (Printf.sprintf "bad integer %S" text, start))
      end;
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      if List.mem text keywords then emit (KW text) start
      else emit (IDENT text) start;
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do
        Buffer.add_char buf src.[!j];
        incr j
      done;
      if !j >= n then raise (Lex_error ("unterminated string", start));
      emit (STRING (Buffer.contents buf)) start;
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "&&" | "||" ->
        emit (OP two) start;
        i := !i + 2
      | _ -> (
        match c with
        | '(' ->
          emit LPAREN start;
          incr i
        | ')' ->
          emit RPAREN start;
          incr i
        | ',' ->
          emit COMMA start;
          incr i
        | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '!' ->
          emit (OP (String.make 1 c)) start;
          incr i
        | _ ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, start)))
    end
  done;
  emit EOF n;
  List.rev !out

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT x -> Printf.sprintf "float %g" x
  | STRING s -> Printf.sprintf "string %S" s
  | KW s -> Printf.sprintf "keyword %S" s
  | OP s -> Printf.sprintf "operator %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | EOF -> "end of input"
