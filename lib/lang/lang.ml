exception Error of string * int

let parse src =
  try Parser.program src with
  | Lexer.Lex_error (m, p) -> raise (Error (m, p))
  | Parser.Parse_error (m, p) -> raise (Error (m, p))

let elaborate ~inputs src =
  let prog = parse src in
  try Elab.program inputs prog
  with Elab.Type_error (m, p) -> raise (Error (m, p))

type result =
  | Res_collection : 'a Ty.t * 'a array -> result
  | Res_scalar : 's Ty.t * 's -> result

let run ?backend ~inputs src =
  match elaborate ~inputs src with
  | Elab.Pgm_collection (Elab.Packed_query (ty, q)) ->
    Res_collection (ty, Steno.to_array ?backend q)
  | Elab.Pgm_scalar (Elab.Packed_scalar (ty, sq)) ->
    Res_scalar (ty, Steno.scalar ?backend sq)

let explain ~inputs src =
  match elaborate ~inputs src with
  | Elab.Pgm_collection (Elab.Packed_query (_, q)) ->
    Printf.sprintf "QUIL: %s\n\n%s" (Steno.quil q) (Steno.generated_source q)
  | Elab.Pgm_scalar (Elab.Packed_scalar (_, sq)) ->
    Printf.sprintf "QUIL: %s\n\n%s" (Steno.quil_scalar sq)
      (Steno.generated_source_scalar sq)

let result_to_string ?(max_items = 20) = function
  | Res_scalar (ty, v) -> Format.asprintf "%a" (Ty.pp_value ty) v
  | Res_collection (ty, arr) ->
    let n = Array.length arr in
    let shown = min n max_items in
    let items =
      Array.to_list (Array.sub arr 0 shown)
      |> List.map (fun v -> Format.asprintf "%a" (Ty.pp_value ty) v)
    in
    Printf.sprintf "[%s%s] (%d elements)" (String.concat "; " items)
      (if n > shown then "; ..." else "")
      n
