type pos = int

type expr = {
  e : expr_node;
  pos : pos;
}

and expr_node =
  | Var of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Binop of string * expr * expr
  | Unop of string * expr
  | If_e of expr * expr * expr
  | Pair_e of expr * expr
  | Fst_e of expr
  | Snd_e of expr
  | Count_group of expr
  | Scalar_of of scalar

and source =
  | Input of string
  | Range_src of expr * expr
  | Subquery of query
  | Expr_src of expr

and clause =
  | From of string * source
  | Where_c of expr
  | Order_c of expr * [ `Asc | `Desc ]
  | Take_c of expr
  | Skip_c of expr
  | Distinct_c

and finisher =
  | Select_f of expr
  | Group_f of expr * expr

and query = {
  bind : string;
  src : source;
  clauses : clause list;
  finish : finisher;
  qpos : pos;
}

and scalar = {
  agg_name : string;
  agg_body : query;
  spos : pos;
}

let rec pp_expr fmt { e; _ } =
  match e with
  | Var s -> Format.pp_print_string fmt s
  | Int_lit n -> Format.pp_print_int fmt n
  | Float_lit x -> Format.fprintf fmt "%g" x
  | Bool_lit b -> Format.pp_print_bool fmt b
  | String_lit s -> Format.fprintf fmt "%S" s
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a op pp_expr b
  | Unop (op, a) -> Format.fprintf fmt "(%s %a)" op pp_expr a
  | If_e (c, t, f) ->
    Format.fprintf fmt "(if %a then %a else %a)" pp_expr c pp_expr t pp_expr f
  | Pair_e (a, b) -> Format.fprintf fmt "(%a, %a)" pp_expr a pp_expr b
  | Fst_e a -> Format.fprintf fmt "(fst %a)" pp_expr a
  | Snd_e a -> Format.fprintf fmt "(snd %a)" pp_expr a
  | Count_group a -> Format.fprintf fmt "(count %a)" pp_expr a
  | Scalar_of s -> pp_scalar fmt s

and pp_source fmt = function
  | Input s -> Format.pp_print_string fmt s
  | Range_src (a, b) ->
    Format.fprintf fmt "range(%a, %a)" pp_expr a pp_expr b
  | Subquery q -> Format.fprintf fmt "(%a)" pp_query q
  | Expr_src e -> pp_expr fmt e

and pp_clause fmt = function
  | From (x, s) -> Format.fprintf fmt "from %s in %a" x pp_source s
  | Where_c e -> Format.fprintf fmt "where %a" pp_expr e
  | Order_c (e, `Asc) -> Format.fprintf fmt "orderby %a" pp_expr e
  | Order_c (e, `Desc) -> Format.fprintf fmt "orderby %a desc" pp_expr e
  | Take_c e -> Format.fprintf fmt "take %a" pp_expr e
  | Skip_c e -> Format.fprintf fmt "skip %a" pp_expr e
  | Distinct_c -> Format.pp_print_string fmt "distinct"

and pp_query fmt q =
  Format.fprintf fmt "from %s in %a" q.bind pp_source q.src;
  List.iter (fun c -> Format.fprintf fmt " %a" pp_clause c) q.clauses;
  (match q.finish with
  | Select_f e -> Format.fprintf fmt " select %a" pp_expr e
  | Group_f (e, k) ->
    Format.fprintf fmt " group %a by %a" pp_expr e pp_expr k)

and pp_scalar fmt s =
  Format.fprintf fmt "%s(%a)" s.agg_name pp_query s.agg_body

type program =
  | Collection_p of query
  | Scalar_p of scalar

let pp_program fmt = function
  | Collection_p q -> pp_query fmt q
  | Scalar_p s -> pp_scalar fmt s
