(** Recursive-descent parser for the textual query syntax.

    Grammar (aggregate names are ordinary identifiers applied to a
    parenthesized query):

    {v
program := query | AGG '(' query ')'
query   := 'from' ID 'in' source clause* finisher
source  := ID | 'range' '(' expr ',' expr ')' | '(' query ')'
clause  := 'from' ID 'in' source | 'where' expr
         | 'orderby' expr ('asc'|'desc')? | 'take' expr | 'skip' expr
         | 'distinct'
finisher:= 'select' expr | 'group' expr 'by' expr
expr    := usual precedence: || < && < comparisons < + - < * / % < unary
atom    := literal | ID | '(' expr (',' expr)? ')' | 'fst' atom | 'snd' atom
         | 'count' atom | 'if' expr 'then' expr 'else' expr
         | AGG '(' query ')'
AGG     := sum | count | min | max | avg | any | first
    v} *)

exception Parse_error of string * int  (** message, position *)

val program : string -> Surface.program
val parse_expr : string -> Surface.expr
