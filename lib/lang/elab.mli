(** Elaboration: type-check the untyped surface AST against the types of
    the bound input collections and produce a typed {!Query.t} — the role
    the C# compiler's overload resolution plays for LINQ comprehensions.

    Multiple [from] generators desugar to SelectMany over pairs; [group e
    by k] to GroupBy; a scalar aggregate applied directly inside a
    [select] or [where] body becomes a nested scalar subquery (section 5
    of the paper), possibly post-processed with [Map_scalar] when the
    aggregate is embedded in a larger expression. *)

exception Type_error of string * int  (** message, position *)

type input = Input : 'a Ty.t * 'a array -> input

type inputs = (string * input) list

type packed_query = Packed_query : 'a Ty.t * 'a Query.t -> packed_query

type packed_scalar = Packed_scalar : 's Ty.t * 's Query.sq -> packed_scalar

type packed_program =
  | Pgm_collection of packed_query
  | Pgm_scalar of packed_scalar

val query : inputs -> Surface.query -> packed_query
val scalar : inputs -> Surface.scalar -> packed_scalar
val program : inputs -> Surface.program -> packed_program
