exception Type_error of string * int

type input = Input : 'a Ty.t * 'a array -> input

type inputs = (string * input) list

type packed_query = Packed_query : 'a Ty.t * 'a Query.t -> packed_query

type packed_scalar = Packed_scalar : 's Ty.t * 's Query.sq -> packed_scalar

type packed_program =
  | Pgm_collection of packed_query
  | Pgm_scalar of packed_scalar

type packed_expr = Packed_expr : 'a Ty.t * 'a Expr.t -> packed_expr

(* Value environment: surface names to (typed) expressions.  Query binders
   enter as projections from the current row variable; scalar-subquery
   results enter as plain variables. *)
type venv = (string * packed_expr) list

let err pos fmt = Printf.ksprintf (fun m -> raise (Type_error (m, pos))) fmt

let expect_ty : type a b. Surface.pos -> string -> a Ty.t -> b Ty.t -> b Expr.t -> a Expr.t =
 fun pos what expected got e ->
  match Ty.equal got expected with
  | Some Ty.Refl -> e
  | None ->
    err pos "%s has type %s, expected %s" what (Ty.to_string got)
      (Ty.to_string expected)

(* Scalar-subquery hoisting: an aggregate call embedded in an expression is
   pulled out and replaced by a synthetic variable, so the expression can be
   elaborated as the post-processing of a nested scalar query. *)
let hoist_scalars (e : Surface.expr) : (string * Surface.scalar) list * Surface.expr =
  let found = ref [] in
  let counter = ref 0 in
  let rec go (e : Surface.expr) : Surface.expr =
    let node =
      match e.Surface.e with
      | Surface.Scalar_of s ->
        let name = Printf.sprintf "%%subquery%d" !counter in
        incr counter;
        found := (name, s) :: !found;
        Surface.Var name
      | Surface.Var _ | Surface.Int_lit _ | Surface.Float_lit _
      | Surface.Bool_lit _ | Surface.String_lit _ ->
        e.Surface.e
      | Surface.Binop (op, a, b) -> Surface.Binop (op, go a, go b)
      | Surface.Unop (op, a) -> Surface.Unop (op, go a)
      | Surface.If_e (c, t, f) -> Surface.If_e (go c, go t, go f)
      | Surface.Pair_e (a, b) -> Surface.Pair_e (go a, go b)
      | Surface.Fst_e a -> Surface.Fst_e (go a)
      | Surface.Snd_e a -> Surface.Snd_e (go a)
      | Surface.Count_group a -> Surface.Count_group (go a)
    in
    { e with Surface.e = node }
  in
  let e' = go e in
  List.rev !found, e'

(* Operator dispatch on elaborated operand types. *)
let arith_prims = [ "+", (Prim.Add_int, Prim.Add_float);
                    "-", (Prim.Sub_int, Prim.Sub_float);
                    "*", (Prim.Mul_int, Prim.Mul_float);
                    "/", (Prim.Div_int, Prim.Div_float) ]

let rec elab_expr (inputs : inputs) (env : venv) (e : Surface.expr) : packed_expr =
  let pos = e.Surface.pos in
  match e.Surface.e with
  | Surface.Var name -> (
    match List.assoc_opt name env with
    | Some p -> p
    | None -> err pos "unbound name %S" name)
  | Surface.Int_lit n -> Packed_expr (Ty.Int, Expr.int n)
  | Surface.Float_lit x -> Packed_expr (Ty.Float, Expr.float x)
  | Surface.Bool_lit b -> Packed_expr (Ty.Bool, Expr.bool b)
  | Surface.String_lit s -> Packed_expr (Ty.String, Expr.string s)
  | Surface.Unop ("-", a) -> (
    match elab_expr inputs env a with
    | Packed_expr (Ty.Int, ea) ->
      Packed_expr (Ty.Int, Expr.Prim1 (Prim.Neg_int, ea))
    | Packed_expr (Ty.Float, ea) ->
      Packed_expr (Ty.Float, Expr.Prim1 (Prim.Neg_float, ea))
    | Packed_expr (ty, _) ->
      err pos "cannot negate a value of type %s" (Ty.to_string ty))
  | Surface.Unop ("not", a) -> (
    match elab_expr inputs env a with
    | Packed_expr (Ty.Bool, ea) ->
      Packed_expr (Ty.Bool, Expr.Prim1 (Prim.Not, ea))
    | Packed_expr (ty, _) ->
      err pos "'not' needs a bool, got %s" (Ty.to_string ty))
  | Surface.Unop (op, _) -> err pos "unknown unary operator %S" op
  | Surface.Binop (op, a, b) -> elab_binop inputs env pos op a b
  | Surface.If_e (c, t, f) -> (
    let (Packed_expr (cty, ec)) = elab_expr inputs env c in
    let ec = expect_ty c.Surface.pos "condition" Ty.Bool cty ec in
    let (Packed_expr (tty, et)) = elab_expr inputs env t in
    let (Packed_expr (fty, ef)) = elab_expr inputs env f in
    match Ty.equal fty tty with
    | Some Ty.Refl -> Packed_expr (tty, Expr.If (ec, et, ef))
    | None ->
      err pos "if branches have different types: %s vs %s" (Ty.to_string tty)
        (Ty.to_string fty))
  | Surface.Pair_e (a, b) ->
    let (Packed_expr (ta, ea)) = elab_expr inputs env a in
    let (Packed_expr (tb, eb)) = elab_expr inputs env b in
    Packed_expr (Ty.Pair (ta, tb), Expr.Pair (ea, eb))
  | Surface.Fst_e a -> (
    match elab_expr inputs env a with
    | Packed_expr (Ty.Pair (ta, _), ea) -> Packed_expr (ta, Expr.Fst ea)
    | Packed_expr (ty, _) ->
      err pos "fst needs a pair, got %s" (Ty.to_string ty))
  | Surface.Snd_e a -> (
    match elab_expr inputs env a with
    | Packed_expr (Ty.Pair (_, tb), ea) -> Packed_expr (tb, Expr.Snd ea)
    | Packed_expr (ty, _) ->
      err pos "snd needs a pair, got %s" (Ty.to_string ty))
  | Surface.Count_group a -> (
    match elab_expr inputs env a with
    | Packed_expr (Ty.Pair (_, Ty.Array _), ea) ->
      Packed_expr (Ty.Int, Expr.Array_length (Expr.Snd ea))
    | Packed_expr (Ty.Array _, ea) ->
      Packed_expr (Ty.Int, Expr.Array_length ea)
    | Packed_expr (ty, _) ->
      err pos "count needs a group or an array, got %s" (Ty.to_string ty))
  | Surface.Scalar_of _ ->
    err pos
      "scalar subqueries may only appear inside select/where bodies (where \
       they become nested queries)"

and elab_binop inputs env pos op a b =
  let (Packed_expr (ta, ea)) = elab_expr inputs env a in
  let (Packed_expr (tb, eb)) = elab_expr inputs env b in
  let same : type x y. x Ty.t -> y Ty.t -> y Expr.t -> x Expr.t =
   fun want got e -> expect_ty pos (Printf.sprintf "operand of %S" op) want got e
  in
  match op with
  | "+" | "-" | "*" | "/" -> (
    let int_p, float_p = List.assoc op arith_prims in
    match ta with
    | Ty.Int -> Packed_expr (Ty.Int, Expr.Prim2 (int_p, ea, same Ty.Int tb eb))
    | Ty.Float ->
      Packed_expr (Ty.Float, Expr.Prim2 (float_p, ea, same Ty.Float tb eb))
    | Ty.String when op = "+" ->
      Packed_expr
        (Ty.String, Expr.Prim2 (Prim.String_concat, ea, same Ty.String tb eb))
    | _ ->
      err pos "operator %S is not defined on %s" op (Ty.to_string ta))
  | "%" -> (
    match ta with
    | Ty.Int ->
      Packed_expr (Ty.Int, Expr.Prim2 (Prim.Mod_int, ea, same Ty.Int tb eb))
    | _ -> err pos "operator %% needs integers, got %s" (Ty.to_string ta))
  | "&&" | "||" ->
    let ea = same Ty.Bool ta ea in
    let eb = expect_ty pos (Printf.sprintf "operand of %S" op) Ty.Bool tb eb in
    let p = if op = "&&" then Prim.And else Prim.Or in
    Packed_expr (Ty.Bool, Expr.Prim2 (p, ea, eb))
  | "=" | "<>" | "<" | "<=" | ">" | ">=" -> (
    match Ty.equal tb ta with
    | Some Ty.Refl ->
      let p : (_, _, bool) Prim.t2 =
        match op with
        | "=" -> Prim.Eq
        | "<>" -> Prim.Ne
        | "<" -> Prim.Lt
        | "<=" -> Prim.Le
        | ">" -> Prim.Gt
        | _ -> Prim.Ge
      in
      Packed_expr (Ty.Bool, Expr.Prim2 (p, ea, eb))
    | None ->
      err pos "cannot compare %s with %s" (Ty.to_string ta) (Ty.to_string tb))
  | _ -> err pos "unknown operator %S" op

(* A lambda body over the current row: bind a fresh row variable, expose
   every surface binder as a projection from it, then elaborate.  Scalar
   subqueries inside the body yield `Some (scalar, post)` instead. *)

type 'r lambda_result =
  | Plain : packed_expr -> 'r lambda_result
  | With_subquery : packed_scalar * ('s Ty.t * 's Expr.var) * packed_expr
      -> 'r lambda_result
      (* The hoisted subquery, the variable its result is bound to, and
         the post-processing body mentioning that variable. *)

let rec elab_body :
    type r.
    inputs -> venv -> r Ty.t -> r Expr.var ->
    (string * (r Expr.t -> packed_expr)) list ->
    Surface.expr ->
    r lambda_result =
 fun inputs env _row_ty row_var projections body ->
  let env' =
    List.map (fun (name, proj) -> name, proj (Expr.Var row_var)) projections
    @ env
  in
  match hoist_scalars body with
  | [], body -> Plain (elab_expr inputs env' body)
  | [ (name, s) ], body ->
    let (Packed_scalar (sty, _) as packed) = elab_scalar inputs env' s in
    let rv = Expr.fresh_var "subq" sty in
    let env'' = (name, Packed_expr (sty, Expr.Var rv)) :: env' in
    With_subquery (packed, (sty, rv), elab_expr inputs env'' body)
  | _ :: _ :: _, _ ->
    err body.Surface.pos
      "at most one scalar subquery per select/where body is supported"

(* Sources. *)
and elab_source (inputs : inputs) (env : venv) (src : Surface.source) pos :
    packed_query =
  match src with
  | Surface.Input name -> (
    (* A binder holding an array (e.g. a group's values) shadows inputs. *)
    match List.assoc_opt name env with
    | Some (Packed_expr (Ty.Array ty, e)) ->
      Packed_query (ty, Query.Of_array (ty, e))
    | Some (Packed_expr (ty, _)) ->
      err pos "%S has type %s; only arrays can be iterated" name
        (Ty.to_string ty)
    | None -> (
      match List.assoc_opt name inputs with
      | Some (Input (ty, arr)) -> Packed_query (ty, Query.of_array ty arr)
      | None -> err pos "unknown input collection %S" name))
  | Surface.Range_src (a, b) ->
    let (Packed_expr (ta, ea)) = elab_expr inputs env a in
    let ea = expect_ty a.Surface.pos "range start" Ty.Int ta ea in
    let (Packed_expr (tb, eb)) = elab_expr inputs env b in
    let eb = expect_ty b.Surface.pos "range count" Ty.Int tb eb in
    Packed_query (Ty.Int, Query.Range (ea, eb))
  | Surface.Subquery q -> elab_query inputs env q
  | Surface.Expr_src e -> (
    match elab_expr inputs env e with
    | Packed_expr (Ty.Array ty, ea) -> Packed_query (ty, Query.Of_array (ty, ea))
    | Packed_expr (ty, _) ->
      err e.Surface.pos "source expression has type %s; an array is required"
        (Ty.to_string ty))

(* Queries. *)
and elab_query (inputs : inputs) (env : venv) (q : Surface.query) : packed_query =
  let (Packed_query (src_ty, src_q)) =
    elab_source inputs env q.Surface.src q.Surface.qpos
  in
  (* Initially the row is the binder itself. *)
  elab_clauses inputs env src_ty src_q
    [ (q.Surface.bind, fun row -> Packed_expr (src_ty, row)) ]
    q.Surface.clauses q.Surface.finish

and elab_clauses :
    type r.
    inputs -> venv -> r Ty.t -> r Query.t ->
    (string * (r Expr.t -> packed_expr)) list ->
    Surface.clause list ->
    Surface.finisher ->
    packed_query =
 fun inputs env row_ty q projections clauses finish ->
  match clauses with
  | [] -> elab_finisher inputs env row_ty q projections finish
  | Surface.Where_c e :: rest -> (
    let v = Expr.fresh_var "row" row_ty in
    match elab_body inputs env row_ty v projections e with
    | Plain (Packed_expr (ty, body)) ->
      let body = expect_ty e.Surface.pos "where predicate" Ty.Bool ty body in
      elab_clauses inputs env row_ty
        (Query.Where (q, { Expr.param = v; body }))
        projections rest finish
    | With_subquery (Packed_scalar (sty, sq), (sty', rv), Packed_expr (ty, post))
      -> (
      let post = expect_ty e.Surface.pos "where predicate" Ty.Bool ty post in
      match Ty.equal sty sty' with
      | Some Ty.Refl ->
        let wrapped =
          Query.Map_scalar (sq, { Expr.param = rv; body = post })
        in
        elab_clauses inputs env row_ty
          (Query.Where_q (q, v, wrapped))
          projections rest finish
      | None -> assert false))
  | Surface.Order_c (e, dir) :: rest -> (
    let v = Expr.fresh_var "row" row_ty in
    match elab_body inputs env row_ty v projections e with
    | Plain (Packed_expr (_, body)) ->
      let order =
        match dir with `Asc -> Query.Ascending | `Desc -> Query.Descending
      in
      elab_clauses inputs env row_ty
        (Query.Order_by (q, { Expr.param = v; body }, order))
        projections rest finish
    | With_subquery _ ->
      err e.Surface.pos "subqueries are not supported in orderby keys")
  | Surface.Take_c e :: rest ->
    let (Packed_expr (ty, count)) = elab_expr inputs env e in
    let count = expect_ty e.Surface.pos "take count" Ty.Int ty count in
    elab_clauses inputs env row_ty (Query.Take (q, count)) projections rest
      finish
  | Surface.Skip_c e :: rest ->
    let (Packed_expr (ty, count)) = elab_expr inputs env e in
    let count = expect_ty e.Surface.pos "skip count" Ty.Int ty count in
    elab_clauses inputs env row_ty (Query.Skip (q, count)) projections rest
      finish
  | Surface.Distinct_c :: rest ->
    elab_clauses inputs env row_ty (Query.Distinct q) projections rest finish
  | Surface.From (x, src) :: rest ->
    (* SelectMany: pair the current row with the new generator's element
       and rebase every binder. *)
    let v = Expr.fresh_var "row" row_ty in
    let env_inner =
      List.map (fun (name, proj) -> name, proj (Expr.Var v)) projections @ env
    in
    let (Packed_query (bty, inner_q)) =
      elab_source inputs env_inner src
        (match src with
        | Surface.Subquery sq -> sq.Surface.qpos
        | Surface.Expr_src e -> e.Surface.pos
        | Surface.Input _ | Surface.Range_src _ -> 0)
    in
    let w = Expr.fresh_var "y" bty in
    let pair_lam2 =
      {
        Expr.param1 = v;
        param2 = w;
        body2 = Expr.Pair (Expr.Var v, Expr.Var w);
      }
    in
    let q' = Query.Select_many_result (q, v, inner_q, pair_lam2) in
    let row_ty' = Ty.Pair (row_ty, bty) in
    let projections' =
      List.map
        (fun (name, proj) ->
          name, fun (row : (r * _) Expr.t) -> proj (Expr.Fst row))
        projections
      @ [ (x, fun row -> Packed_expr (bty, Expr.Snd row)) ]
    in
    elab_clauses inputs env row_ty' q' projections' rest finish

and elab_finisher :
    type r.
    inputs -> venv -> r Ty.t -> r Query.t ->
    (string * (r Expr.t -> packed_expr)) list ->
    Surface.finisher ->
    packed_query =
 fun inputs env row_ty q projections finish ->
  match finish with
  | Surface.Select_f e -> (
    let v = Expr.fresh_var "row" row_ty in
    match elab_body inputs env row_ty v projections e with
    | Plain (Packed_expr (ty, body)) ->
      Packed_query (ty, Query.Select (q, { Expr.param = v; body }))
    | With_subquery (Packed_scalar (sty, sq), (sty', rv), Packed_expr (ty, post))
      -> (
      match Ty.equal sty sty' with
      | Some Ty.Refl ->
        let wrapped =
          Query.Map_scalar (sq, { Expr.param = rv; body = post })
        in
        Packed_query (ty, Query.Select_q (q, v, wrapped))
      | None -> assert false))
  | Surface.Group_f (elem_e, key_e) -> (
    let v = Expr.fresh_var "row" row_ty in
    let elab_plain what e =
      match elab_body inputs env row_ty v projections e with
      | Plain p -> p
      | With_subquery _ ->
        err e.Surface.pos "subqueries are not supported in %s" what
    in
    let (Packed_expr (ety, elem_body)) = elab_plain "group elements" elem_e in
    let (Packed_expr (kty, key_body)) = elab_plain "group keys" key_e in
    Packed_query
      ( Ty.Pair (kty, Ty.Array ety),
        Query.Group_by_elem
          ( q,
            { Expr.param = v; body = key_body },
            { Expr.param = v; body = elem_body } ) ))

and elab_scalar (inputs : inputs) (env : venv) (s : Surface.scalar) :
    packed_scalar =
  let (Packed_query (ty, q)) = elab_query inputs env s.Surface.agg_body in
  let pos = s.Surface.spos in
  match s.Surface.agg_name with
  | "sum" -> (
    match ty with
    | Ty.Int -> Packed_scalar (Ty.Int, Query.Sum_int q)
    | Ty.Float -> Packed_scalar (Ty.Float, Query.Sum_float q)
    | _ -> err pos "sum needs int or float elements, got %s" (Ty.to_string ty))
  | "count" -> Packed_scalar (Ty.Int, Query.Count q)
  | "min" -> Packed_scalar (ty, Query.Min q)
  | "max" -> Packed_scalar (ty, Query.Max q)
  | "avg" -> (
    match ty with
    | Ty.Float -> Packed_scalar (Ty.Float, Query.Average q)
    | _ -> err pos "avg needs float elements, got %s" (Ty.to_string ty))
  | "any" -> Packed_scalar (Ty.Bool, Query.Any q)
  | "first" -> Packed_scalar (ty, Query.First q)
  | other -> err pos "unknown aggregate %S" other

(* Entry points. *)

let query inputs q = elab_query inputs [] q

let scalar inputs s = elab_scalar inputs [] s

let program inputs = function
  | Surface.Collection_p q -> Pgm_collection (query inputs q)
  | Surface.Scalar_p s -> Pgm_scalar (scalar inputs s)
