(** The textual front end, end to end: parse a query string, elaborate it
    against the provided inputs, and execute it on a chosen backend.

    {[
      let inputs = [ "xs", Elab.Input (Ty.Int, [| 1; 2; 3; 4 |]) ] in
      Lang.run ~inputs "from x in xs where x % 2 = 0 select x * x"
    ]} *)

exception Error of string * int
(** Any front-end failure (lexing, parsing, elaboration), with the
    position in the source string. *)

val parse : string -> Surface.program
(** Raises {!Error}. *)

val elaborate : inputs:Elab.inputs -> string -> Elab.packed_program

type result =
  | Res_collection : 'a Ty.t * 'a array -> result
  | Res_scalar : 's Ty.t * 's -> result

val run : ?backend:Steno.backend -> inputs:Elab.inputs -> string -> result

val explain : inputs:Elab.inputs -> string -> string
(** The query's QUIL sentence and generated native code. *)

val result_to_string : ?max_items:int -> result -> string
