(** Hand-written lexer for the textual query syntax. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** from, in, where, select, group, by, orderby, ... *)
  | OP of string  (** + - * / % = <> < <= > >= && || ! *)
  | LPAREN
  | RPAREN
  | COMMA
  | EOF

exception Lex_error of string * int  (** message, position *)

val keywords : string list

val tokenize : string -> (token * int) list
(** Token stream with the starting offset of each token.  Raises
    {!Lex_error} on an unexpected character or malformed literal. *)

val describe : token -> string
