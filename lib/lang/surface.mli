(** The surface syntax of textual queries: an untyped AST produced by the
    parser and consumed by the elaborator.

    The paper's queries are written in C# query-comprehension syntax and
    desugared by the compiler (section 2); this mirrors that surface:

    {v
from x in xs where x % 2 = 0 select x * x
sum(from x in xs select x * x)
from x in xs from y in range(0, x) select x * 10 + y
from g in (from x in xs group x by x % 3) select (fst g, count g)
    v} *)

type pos = int
(** Character offset in the source string, for error reporting. *)

type expr = {
  e : expr_node;
  pos : pos;
}

and expr_node =
  | Var of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Binop of string * expr * expr
      (** Operator symbol as written; elaboration dispatches on operand
          types ("+" becomes integer or float addition). *)
  | Unop of string * expr
  | If_e of expr * expr * expr
  | Pair_e of expr * expr
  | Fst_e of expr
  | Snd_e of expr
  | Count_group of expr
      (** [count g]: the size of a group bound by [group ... by]. *)
  | Scalar_of of scalar  (** A scalar subquery used as an expression. *)

and source =
  | Input of string  (** A named input collection bound at evaluation. *)
  | Range_src of expr * expr
  | Subquery of query
  | Expr_src of expr
      (** An array-valued expression, e.g. [snd g] to iterate a group's
          values. *)

and clause =
  | From of string * source  (** An additional generator: SelectMany. *)
  | Where_c of expr
  | Order_c of expr * [ `Asc | `Desc ]
  | Take_c of expr
  | Skip_c of expr
  | Distinct_c

and finisher =
  | Select_f of expr
  | Group_f of expr * expr  (** [group e by k] *)

and query = {
  bind : string;
  src : source;
  clauses : clause list;
  finish : finisher;
  qpos : pos;
}

and scalar = {
  agg_name : string;  (** sum, count, min, max, avg, any, first *)
  agg_body : query;
  spos : pos;
}

type program =
  | Collection_p of query
  | Scalar_p of scalar

val pp_expr : Format.formatter -> expr -> unit
val pp_program : Format.formatter -> program -> unit
