type 'a t = { enumerate : unit -> 'a Iterator.t }

let get_enumerator t = t.enumerate ()

let of_fun enumerate = { enumerate }

let empty = { enumerate = (fun () -> Iterator.empty ()) }

let of_array arr = { enumerate = (fun () -> Iterator.of_array arr) }

let of_list l = { enumerate = (fun () -> Iterator.of_list l) }

let of_seq seq = { enumerate = (fun () -> Iterator.of_seq seq) }

let range start count =
  if count < 0 then invalid_arg "Enumerable.range: negative count";
  {
    enumerate =
      (fun () ->
        let i = ref (start - 1) in
        let stop = start + count - 1 in
        {
          Iterator.move_next =
            (fun () ->
              if !i < stop then begin
                incr i;
                true
              end
              else false);
          current = (fun () -> !i);
        });
  }

let repeat x count =
  if count < 0 then invalid_arg "Enumerable.repeat: negative count";
  {
    enumerate =
      (fun () ->
        let remaining = ref count in
        {
          Iterator.move_next =
            (fun () ->
              if !remaining > 0 then begin
                decr remaining;
                true
              end
              else false);
          current = (fun () -> x);
        });
  }

let init n f =
  if n < 0 then invalid_arg "Enumerable.init: negative count";
  {
    enumerate =
      (fun () ->
        let i = ref (-1) in
        let cur = ref (Iterator.unsafe_dummy ()) in
        {
          Iterator.move_next =
            (fun () ->
              let j = !i + 1 in
              if j < n then begin
                i := j;
                cur := f j;
                true
              end
              else false);
          current = (fun () -> !cur);
        });
  }

(* Element-wise operators: each is a fresh state machine consuming the
   upstream iterator through its two-call protocol. *)

let select f src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let cur = ref (Iterator.unsafe_dummy ()) in
        {
          Iterator.move_next =
            (fun () ->
              if it.Iterator.move_next () then begin
                cur := f (it.Iterator.current ());
                true
              end
              else false);
          current = (fun () -> !cur);
        });
  }

let select_i f src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let idx = ref (-1) in
        let cur = ref (Iterator.unsafe_dummy ()) in
        {
          Iterator.move_next =
            (fun () ->
              if it.Iterator.move_next () then begin
                incr idx;
                cur := f !idx (it.Iterator.current ());
                true
              end
              else false);
          current = (fun () -> !cur);
        });
  }

let where p src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let cur = ref (Iterator.unsafe_dummy ()) in
        let rec advance () =
          if it.Iterator.move_next () then begin
            let x = it.Iterator.current () in
            if p x then begin
              cur := x;
              true
            end
            else advance ()
          end
          else false
        in
        { Iterator.move_next = advance; current = (fun () -> !cur) });
  }

let where_i p src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let idx = ref (-1) in
        let cur = ref (Iterator.unsafe_dummy ()) in
        let rec advance () =
          if it.Iterator.move_next () then begin
            incr idx;
            let x = it.Iterator.current () in
            if p !idx x then begin
              cur := x;
              true
            end
            else advance ()
          end
          else false
        in
        { Iterator.move_next = advance; current = (fun () -> !cur) });
  }

let take n src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let remaining = ref n in
        {
          Iterator.move_next =
            (fun () ->
              if !remaining > 0 && it.Iterator.move_next () then begin
                decr remaining;
                true
              end
              else false);
          current = (fun () -> it.Iterator.current ());
        });
  }

let skip n src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let to_skip = ref n in
        let rec advance () =
          if it.Iterator.move_next () then
            if !to_skip > 0 then begin
              decr to_skip;
              advance ()
            end
            else true
          else false
        in
        {
          Iterator.move_next = advance;
          current = (fun () -> it.Iterator.current ());
        });
  }

let take_while p src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let stopped = ref false in
        let cur = ref (Iterator.unsafe_dummy ()) in
        {
          Iterator.move_next =
            (fun () ->
              if !stopped then false
              else if it.Iterator.move_next () then begin
                let x = it.Iterator.current () in
                if p x then begin
                  cur := x;
                  true
                end
                else begin
                  stopped := true;
                  false
                end
              end
              else begin
                stopped := true;
                false
              end);
          current = (fun () -> !cur);
        });
  }

let skip_while p src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let skipping = ref true in
        let cur = ref (Iterator.unsafe_dummy ()) in
        let rec advance () =
          if it.Iterator.move_next () then begin
            let x = it.Iterator.current () in
            if !skipping && p x then advance ()
            else begin
              skipping := false;
              cur := x;
              true
            end
          end
          else false
        in
        { Iterator.move_next = advance; current = (fun () -> !cur) });
  }

(* Nested operators: one inner iterator per outer element, exactly the
   multiplied-overhead shape of section 5. *)

let select_many f src =
  {
    enumerate =
      (fun () ->
        let outer = src.enumerate () in
        let inner = ref None in
        let cur = ref (Iterator.unsafe_dummy ()) in
        let rec advance () =
          match !inner with
          | Some it when it.Iterator.move_next () ->
            cur := it.Iterator.current ();
            true
          | Some _ ->
            inner := None;
            advance ()
          | None ->
            if outer.Iterator.move_next () then begin
              inner := Some ((f (outer.Iterator.current ())).enumerate ());
              advance ()
            end
            else false
        in
        { Iterator.move_next = advance; current = (fun () -> !cur) });
  }

let select_many_result f result src =
  {
    enumerate =
      (fun () ->
        let outer = src.enumerate () in
        let inner = ref None in
        let outer_cur = ref (Iterator.unsafe_dummy ()) in
        let cur = ref (Iterator.unsafe_dummy ()) in
        let rec advance () =
          match !inner with
          | Some it when it.Iterator.move_next () ->
            cur := result !outer_cur (it.Iterator.current ());
            true
          | Some _ ->
            inner := None;
            advance ()
          | None ->
            if outer.Iterator.move_next () then begin
              outer_cur := outer.Iterator.current ();
              inner := Some ((f !outer_cur).enumerate ());
              advance ()
            end
            else false
        in
        { Iterator.move_next = advance; current = (fun () -> !cur) });
  }

let append a b =
  {
    enumerate =
      (fun () ->
        let it = ref (a.enumerate ()) in
        let on_second = ref false in
        let rec advance () =
          if !it.Iterator.move_next () then true
          else if not !on_second then begin
            on_second := true;
            it := b.enumerate ();
            advance ()
          end
          else false
        in
        {
          Iterator.move_next = advance;
          current = (fun () -> !it.Iterator.current ());
        });
  }

let concat sources = select_many (fun s -> s) sources

let zip f a b =
  {
    enumerate =
      (fun () ->
        let ita = a.enumerate () in
        let itb = b.enumerate () in
        let cur = ref (Iterator.unsafe_dummy ()) in
        {
          Iterator.move_next =
            (fun () ->
              if ita.Iterator.move_next () && itb.Iterator.move_next ()
              then begin
                cur := f (ita.Iterator.current ()) (itb.Iterator.current ());
                true
              end
              else false);
          current = (fun () -> !cur);
        });
  }

let default_if_empty default src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        let produced = ref false in
        let defaulted = ref false in
        {
          Iterator.move_next =
            (fun () ->
              if it.Iterator.move_next () then begin
                produced := true;
                true
              end
              else if (not !produced) && not !defaulted then begin
                defaulted := true;
                true
              end
              else false);
          current =
            (fun () ->
              if !defaulted then default else it.Iterator.current ());
        });
  }

(* Eager drains. *)

let fold f acc src = Iterator.fold f acc (src.enumerate ())

let iter f src = Iterator.iter f (src.enumerate ())

let to_list src = Iterator.to_list (src.enumerate ())

let to_array src = Iterator.to_array (src.enumerate ())

let to_seq src =
  let rec node it () =
    if it.Iterator.move_next () then
      Seq.Cons (it.Iterator.current (), node it)
    else Seq.Nil
  in
  fun () -> node (src.enumerate ()) ()

(* Sink operators: materialize on first enumeration, then iterate the
   intermediate collection (section 4.1, the Sink class). *)

let sink_of_array src = of_fun (fun () -> Iterator.of_array (src ()))

let reverse src =
  sink_of_array (fun () ->
      let arr = to_array src in
      let n = Array.length arr in
      Array.init n (fun i -> arr.(n - 1 - i)))

let distinct src =
  sink_of_array (fun () ->
      let seen = Hashtbl.create 64 in
      let buf = ref [] in
      let n = ref 0 in
      iter
        (fun x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.replace seen x ();
            buf := x :: !buf;
            incr n
          end)
        src;
      let arr = Array.of_list (List.rev !buf) in
      arr)

let sorted_by compare_key key src =
  sink_of_array (fun () ->
      let arr = to_array src in
      (* Decorate with the original index to make the sort stable, matching
         LINQ's OrderBy. *)
      let decorated = Array.mapi (fun i x -> key x, i, x) arr in
      Array.sort
        (fun (k1, i1, _) (k2, i2, _) ->
          let c = compare_key k1 k2 in
          if c <> 0 then c else Int.compare i1 i2)
        decorated;
      Array.map (fun (_, _, x) -> x) decorated)

let order_by key src = sorted_by compare key src

let order_by_descending key src =
  sorted_by (fun a b -> compare b a) key src



let build_lookup key src =
  fold (fun lookup x -> Lookup.put lookup (key x) x) (Lookup.create ()) src

let group_by key src =
  sink_of_array (fun () -> Lookup.groupings (build_lookup key src))

let group_by_elem key elem src =
  sink_of_array (fun () ->
      let lookup =
        fold
          (fun lookup x -> Lookup.put lookup (key x) (elem x))
          (Lookup.create ()) src
      in
      Lookup.groupings lookup)

let group_by_result key result src =
  sink_of_array (fun () ->
      let groups = Lookup.groupings (build_lookup key src) in
      Array.map (fun (k, values) -> result k values) groups)

let join outer_key inner_key result outer inner =
  of_fun (fun () ->
      (* Hash join: index the inner side once, then stream the outer side. *)
      let lookup = build_lookup inner_key inner in
      let flattened =
        select_many
          (fun o ->
            let matches = Lookup.find lookup (outer_key o) in
            select (fun i -> result o i) (of_array matches))
          outer
      in
      get_enumerator flattened)

(* Aggregates. *)

let aggregate seed f src = fold f seed src

let aggregate_result seed f result src = result (fold f seed src)

let reduce f src =
  let it = src.enumerate () in
  if not (it.Iterator.move_next ()) then raise Iterator.No_such_element;
  let acc = ref (it.Iterator.current ()) in
  while it.Iterator.move_next () do
    acc := f !acc (it.Iterator.current ())
  done;
  !acc

let sum_int src = fold (fun acc x -> acc + x) 0 src

let sum_float src = fold (fun acc x -> acc +. x) 0.0 src

let sum_by_int f src = fold (fun acc x -> acc + f x) 0 src

let sum_by_float f src = fold (fun acc x -> acc +. f x) 0.0 src

let count src = fold (fun acc _ -> acc + 1) 0 src

let count_where p src =
  fold (fun acc x -> if p x then acc + 1 else acc) 0 src

let average src =
  let total, n = fold (fun (t, n) x -> t +. x, n + 1) (0.0, 0) src in
  if n = 0 then raise Iterator.No_such_element else total /. float_of_int n

let min_elt src = reduce (fun a b -> if compare b a < 0 then b else a) src

let max_elt src = reduce (fun a b -> if compare b a > 0 then b else a) src

let min_by key src =
  reduce (fun a b -> if compare (key b) (key a) < 0 then b else a) src

let max_by key src =
  reduce (fun a b -> if compare (key b) (key a) > 0 then b else a) src

let any src = (src.enumerate ()).Iterator.move_next ()

let exists p src =
  let it = src.enumerate () in
  let rec go () =
    if it.Iterator.move_next () then p (it.Iterator.current ()) || go ()
    else false
  in
  go ()

let for_all p src = not (exists (fun x -> not (p x)) src)

let contains x src = exists (fun y -> compare x y = 0) src

let first src =
  let it = src.enumerate () in
  if it.Iterator.move_next () then it.Iterator.current ()
  else raise Iterator.No_such_element

let first_where p src = first (where p src)

let first_opt src =
  let it = src.enumerate () in
  if it.Iterator.move_next () then Some (it.Iterator.current ()) else None

let last src =
  let it = src.enumerate () in
  if not (it.Iterator.move_next ()) then raise Iterator.No_such_element;
  let cur = ref (it.Iterator.current ()) in
  while it.Iterator.move_next () do
    cur := it.Iterator.current ()
  done;
  !cur

let element_at n src =
  if n < 0 then invalid_arg "Enumerable.element_at: negative index";
  first (skip n src)

let sequence_equal a b =
  let ita = a.enumerate () in
  let itb = b.enumerate () in
  let rec go () =
    match ita.Iterator.move_next (), itb.Iterator.move_next () with
    | true, true ->
      compare (ita.Iterator.current ()) (itb.Iterator.current ()) = 0
      && go ()
    | false, false -> true
    | true, false | false, true -> false
  in
  go ()

(* Profiling decorator: counts the iterator protocol itself.  Each
   [move_next] and each [current] is one indirect call — the per-element
   cost structure the paper's section 2 describes — so wrapping every
   operator boundary of a chain measures exactly the overhead Steno's
   fused code removes.  [move_next] time is inclusive of everything
   upstream; per-operator exclusive time falls out by subtracting
   consecutive probe points. *)
let probe (pt : Metrics.Probe.point) src =
  {
    enumerate =
      (fun () ->
        let it = src.enumerate () in
        {
          Iterator.move_next =
            (fun () ->
              pt.Metrics.Probe.pt_calls <- pt.Metrics.Probe.pt_calls + 1;
              let t0 = Metrics.Probe.now_ns () in
              let more = it.Iterator.move_next () in
              pt.Metrics.Probe.pt_ns <-
                pt.Metrics.Probe.pt_ns + (Metrics.Probe.now_ns () - t0);
              if more then
                pt.Metrics.Probe.pt_rows <- pt.Metrics.Probe.pt_rows + 1;
              more);
          current =
            (fun () ->
              pt.Metrics.Probe.pt_calls <- pt.Metrics.Probe.pt_calls + 1;
              it.Iterator.current ());
        });
  }
