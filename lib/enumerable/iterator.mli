(** Pull iterators in the style of .NET's [IEnumerator<T>] (section 2 of the
    paper).

    An iterator exposes two separate operations, [move_next] and [current],
    each behind its own indirect (closure) call — deliberately mirroring the
    two virtual calls per element per operator that the paper identifies as
    the core overhead of LINQ execution.  Composable operators are
    implemented as state machines that consume an upstream iterator and
    yield (possibly transformed) elements downstream. *)

type 'a t = {
  move_next : unit -> bool;
      (** Advance to the next element; [false] when exhausted. *)
  current : unit -> 'a;
      (** The element at the current position.  Unspecified before the first
          [move_next] or after exhaustion. *)
}

exception No_such_element
(** Raised by terminal operators that require a non-empty sequence
    (the analog of .NET's [InvalidOperationException]). *)

val empty : unit -> 'a t

val of_array : 'a array -> 'a t
(** Iterate over an array by index (the generic, non-type-specialized
    access path). *)

val of_list : 'a list -> 'a t
val of_seq : 'a Seq.t -> 'a t

val unsafe_dummy : unit -> 'a
(** An arbitrary bit-pattern used to seed the mutable [current] slot of a
    state machine before the first element is produced.  .NET iterators
    keep the current element in an instance field of the element type,
    which needs no initial value; this is the OCaml equivalent.  The value
    must never escape: every reader is guarded by the state machine. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Drain the iterator through the [move_next]/[current] protocol. *)

val iter : ('a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
