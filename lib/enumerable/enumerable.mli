(** Lazily-evaluated query operators over pull iterators: the LINQ substrate
    (section 2 of the paper).

    Every composable operator ([select], [where], [group_by], ...) returns a
    new enumerable whose iterator is a state machine consuming the upstream
    iterator, so a chain of [n] operators costs at least [2n] indirect calls
    per element plus one more per lambda — the overhead structure that Steno
    eliminates.  Aggregate operators ([sum], [count], [min], ...) are eager
    and drain the upstream iterator with a fold loop.

    Operator semantics follow .NET LINQ: lazy evaluation, stable [order_by],
    [group_by] groups in first-appearance order. *)

type 'a t
(** An enumerable collection: a factory of fresh iterators, so the same
    query value can be enumerated many times. *)

val get_enumerator : 'a t -> 'a Iterator.t

(** {1 Sources} *)

val empty : 'a t
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t
val of_seq : 'a Seq.t -> 'a t

val of_fun : (unit -> 'a Iterator.t) -> 'a t
(** Wrap an arbitrary iterator factory. *)

val range : int -> int -> int t
(** [range start count] enumerates [start, start+1, ..., start+count-1].
    Raises [Invalid_argument] if [count < 0]. *)

val repeat : 'a -> int -> 'a t
(** [repeat x count] enumerates [x] exactly [count] times. *)

val init : int -> (int -> 'a) -> 'a t
(** [init n f] enumerates [f 0, ..., f (n-1)]. *)

(** {1 Element-wise (Trans / Pred) operators} *)

val select : ('a -> 'b) -> 'a t -> 'b t
val select_i : (int -> 'a -> 'b) -> 'a t -> 'b t
val where : ('a -> bool) -> 'a t -> 'a t
val where_i : (int -> 'a -> bool) -> 'a t -> 'a t
val take : int -> 'a t -> 'a t
val skip : int -> 'a t -> 'a t
val take_while : ('a -> bool) -> 'a t -> 'a t
val skip_while : ('a -> bool) -> 'a t -> 'a t

(** {1 Nested operators} *)

val select_many : ('a -> 'b t) -> 'a t -> 'b t
(** Flatten one inner enumerable per outer element (the paper's fundamental
    nested operator, section 5). *)

val select_many_result : ('a -> 'b t) -> ('a -> 'b -> 'c) -> 'a t -> 'c t
(** [select_many] with a result selector combining the outer and inner
    elements. *)

val join :
  ('a -> 'k) -> ('b -> 'k) -> ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** [join outer_key inner_key result outer inner] is the LINQ hash
    equi-join: for each outer element, every inner element with an equal
    key, in inner order. *)

(** {1 Composition} *)

val append : 'a t -> 'a t -> 'a t
val concat : 'a t t -> 'a t
val zip : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val default_if_empty : 'a -> 'a t -> 'a t

(** {1 Sink operators}

    These materialize an intermediate collection on first enumeration
    (lazily, like LINQ). *)

val reverse : 'a t -> 'a t
val distinct : 'a t -> 'a t

val order_by : ('a -> 'k) -> 'a t -> 'a t
(** Stable ascending sort by key (polymorphic comparison on ['k]). *)

val order_by_descending : ('a -> 'k) -> 'a t -> 'a t

val group_by : ('a -> 'k) -> 'a t -> ('k * 'a array) t
(** Groups in first-appearance order of keys; values in source order. *)

val group_by_elem : ('a -> 'k) -> ('a -> 'e) -> 'a t -> ('k * 'e array) t
(** GroupBy with an element selector applied to each value. *)

val group_by_result : ('a -> 'k) -> ('k -> 'a array -> 'r) -> 'a t -> 'r t
(** GroupBy with a result selector applied to each (key, group) — the form
    whose aggregating instances the GroupByAggregate specialization
    (section 4.3) targets. *)

(** {1 Aggregate (eager) operators} *)

val aggregate : 's -> ('s -> 'a -> 's) -> 'a t -> 's
val aggregate_result : 's -> ('s -> 'a -> 's) -> ('s -> 'r) -> 'a t -> 'r

val reduce : ('a -> 'a -> 'a) -> 'a t -> 'a
(** Seedless aggregate; raises [Iterator.No_such_element] on empty input. *)

val sum_int : int t -> int
val sum_float : float t -> float
val sum_by_int : ('a -> int) -> 'a t -> int
val sum_by_float : ('a -> float) -> 'a t -> float
val average : float t -> float
val count : 'a t -> int
val count_where : ('a -> bool) -> 'a t -> int
val min_elt : 'a t -> 'a
val max_elt : 'a t -> 'a
val min_by : ('a -> 'k) -> 'a t -> 'a
val max_by : ('a -> 'k) -> 'a t -> 'a
val any : 'a t -> bool
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val contains : 'a -> 'a t -> bool
val first : 'a t -> 'a
val first_where : ('a -> bool) -> 'a t -> 'a
val first_opt : 'a t -> 'a option
val last : 'a t -> 'a
val element_at : int -> 'a t -> 'a
val sequence_equal : 'a t -> 'a t -> bool

(** {1 Conversions} *)

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val to_seq : 'a t -> 'a Seq.t
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** {1 Profiling} *)

val probe : Metrics.Probe.point -> 'a t -> 'a t
(** Count the iterator protocol through this point: one indirect call per
    [move_next] and per [current], one row per successful [move_next],
    and the wall time spent inside upstream [move_next] (inclusive).
    Used by [profile:true] engines; never on the unprofiled path. *)
