type 'a t = {
  move_next : unit -> bool;
  current : unit -> 'a;
}

exception No_such_element

(* The dummy seeds the [current] field of a state machine before the first
   element arrives, avoiding a per-element [option] allocation that .NET's
   typed instance fields do not incur.  Safe because the protocol guarantees
   [current] is only read after a successful [move_next] stored a real
   element. *)
let unsafe_dummy () : 'a = Obj.magic 0

let empty () = { move_next = (fun () -> false); current = (fun () -> raise No_such_element) }

let of_array arr =
  let n = Array.length arr in
  let i = ref (-1) in
  let cur = ref (unsafe_dummy ()) in
  {
    move_next =
      (fun () ->
        let j = !i + 1 in
        if j < n then begin
          i := j;
          cur := Array.get arr j;
          true
        end
        else false);
    current = (fun () -> !cur);
  }

let of_list l =
  let rest = ref l in
  let cur = ref (unsafe_dummy ()) in
  {
    move_next =
      (fun () ->
        match !rest with
        | [] -> false
        | x :: tl ->
          cur := x;
          rest := tl;
          true);
    current = (fun () -> !cur);
  }

let of_seq seq =
  let rest = ref seq in
  let cur = ref (unsafe_dummy ()) in
  {
    move_next =
      (fun () ->
        match !rest () with
        | Seq.Nil -> false
        | Seq.Cons (x, tl) ->
          cur := x;
          rest := tl;
          true);
    current = (fun () -> !cur);
  }

let fold f acc it =
  let acc = ref acc in
  while it.move_next () do
    acc := f !acc (it.current ())
  done;
  !acc

let iter f it =
  while it.move_next () do
    f (it.current ())
  done

let to_list it = List.rev (fold (fun acc x -> x :: acc) [] it)

let to_array it = Array.of_list (to_list it)
