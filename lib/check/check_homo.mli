(** Parallelizability classification (section 6 of the paper), lifted
    from a boolean into a per-operator report.

    A query may be split across partitions when its operator spine is a
    homomorphism: each operator applies to elements independently, so
    per-partition results concatenate to the sequential result.  This
    module walks the top-level spine (the outer side of joins and
    flattens, matching {!Par.is_homomorphic}'s semantics exactly) and
    records, per operator, whether it splits and — when it does not —
    why.  [steno_par] and [steno_dryad] consult this classifier instead
    of private checks, and the plan linter turns the first blocker into
    an [SC002] diagnostic. *)

type verdict =
  | Splittable
  | Blocking of string  (** why this operator breaks the homomorphism *)

type op_info = {
  o_index : int;  (** position in source-to-sink order, [0] = source *)
  o_label : string;  (** combinator name, e.g. ["order-by"] *)
  o_verdict : verdict;
}

type report = {
  r_ops : op_info list;  (** the top-level spine, source first *)
  r_prefix : int;
      (** operators in the longest splittable prefix (source included) *)
  r_blocker : op_info option;  (** first blocking operator, if any *)
}

val classify : 'a Query.t -> report

val classify_scalar : 's Query.sq -> report
(** The spine of the aggregated collection plus one final row for the
    aggregate itself, [Splittable] iff the aggregate is associatively
    combinable (the [Agg*] merge of Fig. 12). *)

val is_homomorphic : 'a Query.t -> bool
(** [r_blocker = None] — the verdict {!Par.is_homomorphic} delegates
    to. *)

(** Whether a trailing aggregate admits an associative per-partition
    merge; [Combinable] carries the combining operator's description,
    [Not_combinable] the reason it has none. *)
type combinability =
  | Combinable of string
  | Not_combinable of string

val aggregate_combinability : 's Query.sq -> combinability
(** Agrees with {!Par.split_scalar}: exactly the [Combinable]
    aggregates can be split (given a reroutable source). *)
