module Pda = Check_pda
module Purity = Check_purity
module Homo = Check_homo
module Flow = Check_flow
module Equiv = Check_equiv

type severity =
  | Error
  | Warning
  | Hint

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

type diagnostic = {
  d_code : string;
  d_rule : string;
  d_severity : severity;
  d_index : int;
  d_op : string;
  d_message : string;
}

type rule = {
  r_code : string;
  r_name : string;
  r_severity : severity;
  r_doc : string;
}

let rules =
  [
    {
      r_code = "SC000";
      r_name = "malformed-chain";
      r_severity = Error;
      r_doc =
        "the lowered QUIL chain is rejected by the well-formedness PDA \
         (internal invariant; a builder bug)";
    };
    {
      r_code = "SC001";
      r_name = "opaque-lambda";
      r_severity = Warning;
      r_doc =
        "a lambda applies a captured host function, so no backend can \
         inline or rewrite through it";
    };
    {
      r_code = "SC002";
      r_name = "unsplittable-suffix";
      r_severity = Hint;
      r_doc =
        "the first operator that breaks the homomorphic prefix required \
         for partitioned execution (section 6)";
    };
    {
      r_code = "SC003";
      r_name = "redundant-sort-reverse";
      r_severity = Hint;
      r_doc =
        "Rev directly after OrderBy; flipping the sort direction saves a \
         sink";
    };
    {
      r_code = "SC004";
      r_name = "where-after-take-semantics";
      r_severity = Warning;
      r_doc =
        "a filter after Take/Skip applies to the truncated sequence — a \
         frequent intent bug";
    };
    {
      r_code = "SC005";
      r_name = "groupby-without-agg-specialization";
      r_severity = Hint;
      r_doc =
        "plain GroupBy materializes per-key bags; group_by_agg \
         specializes to GroupByAggregate (section 4.3)";
    };
    {
      r_code = "SC006";
      r_name = "const-division-by-zero";
      r_severity = Error;
      r_doc = "an integer division whose divisor is provably zero";
    };
    {
      r_code = "SC007";
      r_name = "aggregate-on-empty";
      r_severity = Error;
      r_doc =
        "an aggregate that requires a non-empty input over a statically \
         empty source";
    };
    {
      r_code = "SC008";
      r_name = "redundant-distinct";
      r_severity = Hint;
      r_doc =
        "Distinct over an input the flow analysis proves duplicate-free; \
         the operator is a no-op";
    };
    {
      r_code = "SC009";
      r_name = "sort-discarded-by-resort";
      r_severity = Warning;
      r_doc =
        "OrderBy directly over OrderBy: the earlier sort survives only as \
         a stable-sort tie-break — a frequent multi-key-ordering intent \
         bug";
    };
    {
      r_code = "SC010";
      r_name = "statically-empty-plan";
      r_severity = Warning;
      r_doc =
        "the cardinality analysis bounds the plan's output at zero \
         elements: every run produces nothing";
    };
    {
      r_code = "SC011";
      r_name = "impure-lambda-in-splittable-prefix";
      r_severity = Hint;
      r_doc =
        "an opaque lambda sits inside the homomorphic prefix: partitioned \
         execution would reorder or parallelize its host-function calls";
    };
    {
      r_code = "SC012";
      r_name = "rejected-rewrite";
      r_severity = Error;
      r_doc =
        "the translation validator could not discharge a proof obligation \
         for an optimizer rewrite; the optimized plan was rejected \
         (internal invariant; an optimizer bug)";
    };
  ]

let rule_of_code code = List.find (fun r -> r.r_code = code) rules

let diag code i op msg =
  let r = rule_of_code code in
  {
    d_code = code;
    d_rule = r.r_name;
    d_severity = r.r_severity;
    d_index = i;
    d_op = op;
    d_message = msg;
  }

let errors ds = List.filter (fun d -> d.d_severity = Error) ds

let to_string d =
  if d.d_index < 0 then
    Printf.sprintf "%s %s [chain] %s" d.d_code
      (severity_string d.d_severity)
      d.d_message
  else
    Printf.sprintf "%s %s [%d:%s] %s" d.d_code
      (severity_string d.d_severity)
      d.d_index d.d_op d.d_message

let render = function
  | [] -> "(none)\n"
  | ds -> String.concat "" (List.map (fun d -> to_string d ^ "\n") ds)

let sort_diagnostics ds =
  List.sort
    (fun a b ->
      match compare a.d_index b.d_index with
      | 0 -> (
        match compare a.d_code b.d_code with
        | 0 -> compare a.d_message b.d_message
        | c -> c)
      | c -> c)
    ds

(* Fixed message texts, so diagnostics are stable across runs and usable
   as goldens. *)

let sc001_msg n =
  Printf.sprintf
    "lambda contains %d host-function application%s: native codegen \
     cannot inline it (one indirect call per element) and rewrites must \
     treat it as opaque"
    n
    (if n = 1 then "" else "s")

let sc003_msg =
  "Rev directly after OrderBy: flip the sort direction instead and drop \
   the Rev sink"

let sc004_msg =
  "Where after Take/Skip filters the already-truncated sequence; reorder \
   the operators if the predicate is meant to apply first (the results \
   differ)"

let sc005_msg =
  "GroupBy materializes a bag of elements per key; when each group is \
   only aggregated, group_by_agg specializes to the GroupByAggregate \
   sink (section 4.3) with O(1) state per key"

let sc006_msg n =
  Printf.sprintf
    "%d division site%s with a provably zero divisor: evaluating this \
     expression raises Division_by_zero"
    n
    (if n = 1 then "" else "s")

let sc007_msg =
  "this aggregate requires a non-empty input, but its source is \
   statically empty: every run raises"

let sc008_msg =
  "Distinct over an input that is provably duplicate-free: the operator \
   pays a hash table per run and removes nothing (the optimizer drops \
   it)"

let sc009_msg =
  "OrderBy directly over OrderBy: the earlier sort survives only as a \
   stable-sort tie-break; sort once by a composite key if multi-key \
   ordering is intended"

let sc010_msg =
  "the plan is statically empty (cardinality upper bound is zero \
   elements): every run produces nothing"

let sc011_msg =
  "an opaque lambda inside the splittable prefix: partitioned execution \
   would reorder or parallelize its host-function calls"

(* A source that can be proven to yield no elements, transitively (all
   operators preserve emptiness; [Take] of a non-positive count creates
   it). *)
let rec provably_empty : type a. a Query.t -> bool = function
  | Query.Of_array (_, Expr.Capture (_, arr)) -> Array.length arr = 0
  | Query.Of_array (_, _) -> false
  | Query.Range (_, count) -> Check_purity.always_nonpositive count
  | Query.Repeat (_, _, count) -> Check_purity.always_nonpositive count
  | Query.Take (q, n) ->
    provably_empty q || Check_purity.always_nonpositive n
  | Query.Select (q, _) -> provably_empty q
  | Query.Select_i (q, _) -> provably_empty q
  | Query.Select_q (q, _, _) -> provably_empty q
  | Query.Where (q, _) -> provably_empty q
  | Query.Where_i (q, _) -> provably_empty q
  | Query.Where_q (q, _, _) -> provably_empty q
  | Query.Skip (q, _) -> provably_empty q
  | Query.Take_while (q, _) -> provably_empty q
  | Query.Skip_while (q, _) -> provably_empty q
  | Query.Select_many (q, _, inner) ->
    provably_empty q || provably_empty inner
  | Query.Select_many_result (q, _, inner, _) ->
    provably_empty q || provably_empty inner
  | Query.Join (outer, inner, _, _, _) ->
    provably_empty outer || provably_empty inner
  | Query.Group_by (q, _) -> provably_empty q
  | Query.Group_by_elem (q, _, _) -> provably_empty q
  | Query.Group_by_agg (q, _, _, _) -> provably_empty q
  | Query.Order_by (q, _, _) -> provably_empty q
  | Query.Distinct q -> provably_empty q
  | Query.Rev q -> provably_empty q
  | Query.Materialize q -> provably_empty q

(* Expression-level checks, attached to the operator embedding the
   expression. *)
let check_expr : type b. (diagnostic -> unit) -> int -> string -> b Expr.t -> unit =
 fun emit i label e ->
  let c = Check_purity.census e in
  if c.Check_purity.c_applies > 0 then
    emit (diag "SC001" i label (sc001_msg c.Check_purity.c_applies));
  let z = Check_purity.zero_division_sites e in
  if z > 0 then emit (diag "SC006" i label (sc006_msg z))

let check_lam emit i label (l : (_, _) Expr.lam) =
  check_expr emit i label l.Expr.body

let check_lam2 emit i label (l : (_, _, _) Expr.lam2) =
  check_expr emit i label l.Expr.body2

(* The linter walk.  Returns the number of operators in the top-level
   spine; an operator's index is the count of operators upstream of it
   (0 = source), matching the profile points' convention.  Diagnostics
   from nested sub-queries are re-attached to the embedding operator's
   position with a marked message. *)
let rec collect_q : type a. (diagnostic -> unit) -> a Query.t -> int =
 fun emit q ->
  let nested i label lint =
    lint (fun d ->
        emit
          {
            d with
            d_index = i;
            d_op = label;
            d_message = "in nested sub-query: " ^ d.d_message;
          })
  in
  match q with
  | Query.Of_array (_, arr) ->
    check_expr emit 0 "of-array" arr;
    1
  | Query.Range (start, count) ->
    check_expr emit 0 "range" start;
    check_expr emit 0 "range" count;
    1
  | Query.Repeat (_, v, count) ->
    check_expr emit 0 "repeat" v;
    check_expr emit 0 "repeat" count;
    1
  | Query.Select (q0, f) ->
    let i = collect_q emit q0 in
    check_lam emit i "select" f;
    i + 1
  | Query.Select_i (q0, f) ->
    let i = collect_q emit q0 in
    check_lam2 emit i "select-i" f;
    i + 1
  | Query.Select_q (q0, _, sq) ->
    let i = collect_q emit q0 in
    nested i "select-sq" (fun em -> ignore (collect_sq em sq));
    i + 1
  | Query.Where (q0, p) ->
    let i = collect_q emit q0 in
    check_lam emit i "where" p;
    (match q0 with
    | Query.Take _ | Query.Skip _ | Query.Take_while _ | Query.Skip_while _
      ->
      emit (diag "SC004" i "where" sc004_msg)
    | _ -> ());
    i + 1
  | Query.Where_i (q0, p) ->
    let i = collect_q emit q0 in
    check_lam2 emit i "where-i" p;
    i + 1
  | Query.Where_q (q0, _, sq) ->
    let i = collect_q emit q0 in
    nested i "where-sq" (fun em -> ignore (collect_sq em sq));
    i + 1
  | Query.Take (q0, n) ->
    let i = collect_q emit q0 in
    check_expr emit i "take" n;
    i + 1
  | Query.Skip (q0, n) ->
    let i = collect_q emit q0 in
    check_expr emit i "skip" n;
    i + 1
  | Query.Take_while (q0, p) ->
    let i = collect_q emit q0 in
    check_lam emit i "take-while" p;
    i + 1
  | Query.Skip_while (q0, p) ->
    let i = collect_q emit q0 in
    check_lam emit i "skip-while" p;
    i + 1
  | Query.Select_many (q0, _, inner) ->
    let i = collect_q emit q0 in
    nested i "select-many" (fun em -> ignore (collect_q em inner));
    i + 1
  | Query.Select_many_result (q0, _, inner, r) ->
    let i = collect_q emit q0 in
    nested i "select-many" (fun em -> ignore (collect_q em inner));
    check_lam2 emit i "select-many" r;
    i + 1
  | Query.Join (outer, inner, ok, ik, res) ->
    let i = collect_q emit outer in
    nested i "join" (fun em -> ignore (collect_q em inner));
    check_lam emit i "join" ok;
    check_lam emit i "join" ik;
    check_lam2 emit i "join" res;
    i + 1
  | Query.Group_by (q0, k) ->
    let i = collect_q emit q0 in
    check_lam emit i "group-by" k;
    emit (diag "SC005" i "group-by" sc005_msg);
    i + 1
  | Query.Group_by_elem (q0, k, e) ->
    let i = collect_q emit q0 in
    check_lam emit i "group-by" k;
    check_lam emit i "group-by" e;
    emit (diag "SC005" i "group-by" sc005_msg);
    i + 1
  | Query.Group_by_agg (q0, k, seed, step) ->
    let i = collect_q emit q0 in
    check_lam emit i "group-by-agg" k;
    check_expr emit i "group-by-agg" seed;
    check_lam2 emit i "group-by-agg" step;
    i + 1
  | Query.Order_by (q0, k, _) ->
    let i = collect_q emit q0 in
    check_lam emit i "order-by" k;
    (match q0 with
    | Query.Order_by _ -> emit (diag "SC009" i "order-by" sc009_msg)
    | _ -> ());
    i + 1
  | Query.Distinct q0 ->
    let i = collect_q emit q0 in
    if (Check_flow.props q0).Check_flow.distinct = Check_flow.Yes then
      emit (diag "SC008" i "distinct" sc008_msg);
    i + 1
  | Query.Rev q0 ->
    let i = collect_q emit q0 in
    (match q0 with
    | Query.Order_by _ -> emit (diag "SC003" i "rev" sc003_msg)
    | _ -> ());
    i + 1
  | Query.Materialize q0 -> collect_q emit q0 + 1

and collect_sq : type s. (diagnostic -> unit) -> s Query.sq -> int =
 fun emit sq ->
  let nonempty_agg i label q =
    if provably_empty q then emit (diag "SC007" i label sc007_msg)
  in
  match sq with
  | Query.Aggregate (q, seed, step) ->
    let i = collect_q emit q in
    check_expr emit i "aggregate" seed;
    check_lam2 emit i "aggregate" step;
    i + 1
  | Query.Aggregate_full (q, seed, step, res) ->
    let i = collect_q emit q in
    check_expr emit i "aggregate" seed;
    check_lam2 emit i "aggregate" step;
    check_lam emit i "aggregate" res;
    i + 1
  | Query.Aggregate_combinable (q, seed, step, _) ->
    let i = collect_q emit q in
    check_expr emit i "aggregate" seed;
    check_lam2 emit i "aggregate" step;
    i + 1
  | Query.Sum_int q -> collect_q emit q + 1
  | Query.Sum_float q -> collect_q emit q + 1
  | Query.Count q -> collect_q emit q + 1
  | Query.Average q ->
    let i = collect_q emit q in
    nonempty_agg i "average" q;
    i + 1
  | Query.Min q ->
    let i = collect_q emit q in
    nonempty_agg i "min" q;
    i + 1
  | Query.Max q ->
    let i = collect_q emit q in
    nonempty_agg i "max" q;
    i + 1
  | Query.Min_by (q, k) ->
    let i = collect_q emit q in
    check_lam emit i "min-by" k;
    nonempty_agg i "min-by" q;
    i + 1
  | Query.Max_by (q, k) ->
    let i = collect_q emit q in
    check_lam emit i "max-by" k;
    nonempty_agg i "max-by" q;
    i + 1
  | Query.First q ->
    let i = collect_q emit q in
    nonempty_agg i "first" q;
    i + 1
  | Query.Last q ->
    let i = collect_q emit q in
    nonempty_agg i "last" q;
    i + 1
  | Query.Element_at (q, n) ->
    let i = collect_q emit q in
    check_expr emit i "element-at" n;
    nonempty_agg i "element-at" q;
    i + 1
  | Query.Any q -> collect_q emit q + 1
  | Query.Exists (q, p) ->
    let i = collect_q emit q in
    check_lam emit i "exists" p;
    i + 1
  | Query.For_all (q, p) ->
    let i = collect_q emit q in
    check_lam emit i "for-all" p;
    i + 1
  | Query.Contains (q, v) ->
    let i = collect_q emit q in
    check_expr emit i "contains" v;
    i + 1
  | Query.Map_scalar (inner, f) ->
    let i = collect_sq emit inner in
    check_lam emit i "map-scalar" f;
    i + 1

let sc002_of (report : Check_homo.report) =
  match report.Check_homo.r_blocker with
  | None -> []
  | Some b ->
    let reason =
      match b.Check_homo.o_verdict with
      | Check_homo.Blocking r -> r
      | Check_homo.Splittable -> "unknown"
    in
    [
      diag "SC002" b.Check_homo.o_index b.Check_homo.o_label
        (Printf.sprintf
           "the homomorphic prefix covers %d of %d operators; this \
            operator blocks partition splitting: %s"
           report.Check_homo.r_prefix
           (List.length report.Check_homo.r_ops)
           reason);
    ]

(* SC011 piggybacks on the SC001 walk: an opaque lambda is a parallelism
   hazard exactly when its operator sits inside the homomorphic prefix
   partitioned execution would split. *)
let sc011_of (report : Check_homo.report) ds =
  List.filter_map
    (fun d ->
      if d.d_code = "SC001" && d.d_index < report.Check_homo.r_prefix then
        Some (diag "SC011" d.d_index d.d_op sc011_msg)
      else None)
    ds

let query q =
  let acc = ref [] in
  ignore (collect_q (fun d -> acc := d :: !acc) q);
  let report = Check_homo.classify q in
  let whole_plan =
    if Check_flow.statically_empty q then
      let label =
        match Check_flow.annotate q with
        | (l, _) :: _ -> l
        | [] -> "source"
      in
      [ diag "SC010" 0 label sc010_msg ]
    else []
  in
  sort_diagnostics
    (sc002_of report @ sc011_of report !acc @ whole_plan @ !acc)

let scalar sq =
  let acc = ref [] in
  ignore (collect_sq (fun d -> acc := d :: !acc) sq);
  let report = Check_homo.classify_scalar sq in
  sort_diagnostics (sc002_of report @ sc011_of report !acc @ !acc)

(* {2 Chain well-formedness} *)

exception Malformed_chain of string

let verify chain =
  match Check_pda.accepts chain with
  | Ok _ -> Ok ()
  | Error _ as e -> e

let assert_well_formed chain =
  match Check_pda.accepts chain with
  | Ok _ -> ()
  | Error msg -> raise (Malformed_chain msg)

let malformed msg =
  diag "SC000" (-1) "chain"
    (Printf.sprintf "the lowered QUIL chain is malformed: %s" msg)

let rejected_rewrite detail =
  diag "SC012" (-1) "plan"
    (Printf.sprintf
       "translation validation rejected the optimized plan: %s" detail)
