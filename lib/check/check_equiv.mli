(** Translation validation of optimizer rewrites.

    [Opt] logs every rewrite as an {!event}: the rule name plus
    {!fact}s capturing the sub-terms whose static properties justified
    it (the dropped predicate, the statically-empty input, the
    sortedness witness, ...).  After the fixpoint the engine calls
    {!validate_query}/{!validate_scalar} with the plans before and
    after; each event is discharged against the {!laws} table, whose
    side conditions re-run the purity, interval and {!Check_flow}
    analyses on the captured terms — the optimizer is never trusted.
    Two whole-plan invariants ride along: no host-function application
    site may be duplicated, and the flow properties of the two plans
    must not contradict.

    A failed obligation makes the engine discard the optimized plan and
    fall back to the original (strict mode raises instead); the
    [steno_verify_total] metric counts both outcomes. *)

(** A sub-term captured at rewrite time, packaged with the claim the
    rule made about it. *)
type fact =
  | Pred_true : bool Expr.t -> fact
      (** the predicate holds for every element *)
  | Pred_false : bool Expr.t -> fact
  | Count_nonpos : int Expr.t -> fact
  | Input_empty : 'a Query.t -> fact
  | Input_distinct : 'a Query.t -> fact
  | Input_sorted : 'a Query.t * ('a, 'k) Expr.lam * Query.order -> fact
  | Input_nonempty_pure : 'a Query.t -> fact
  | Stats_selectivity :
      ('a, bool) Expr.lam * ('b, bool) Expr.lam * float * float -> fact
      (** the adaptive phase hoisted the first predicate above the
          second: both must re-derive as pure, and the recorded
          selectivities (hoisted, demoted) must be probabilities with
          hoisted <= demoted *)

type event = {
  ev_rule : string;  (** optimizer rule name, as in [Opt.rule_names] *)
  ev_facts : fact list;
}

type law = {
  l_rule : string;
  l_doc : string;  (** the algebraic identity, for display *)
  l_check : fact list -> (unit, string) result;
      (** machine-checked side condition *)
}

type obligation = {
  o_rule : string;
  o_ok : bool;
  o_detail : string;  (** law doc when ok, rejection reason when not *)
}

val laws : law list
(** One law per optimizer rule (AST and chain level).  Structural
    identities (fusion, [rev-rev], ...) have trivially-true side
    conditions; deletion rules re-prove the interval/purity facts;
    property-driven rules re-run {!Check_flow} on the captured input. *)

val validate_query :
  ?laws:law list ->
  before:'a Query.t ->
  after:'a Query.t ->
  event list ->
  obligation list
(** One obligation per event, in log order, followed by the
    no-effect-duplication and flow-compatibility plan invariants.
    [?laws] substitutes the law table (for tests). *)

val validate_scalar :
  ?laws:law list ->
  before:'s Query.sq ->
  after:'s Query.sq ->
  event list ->
  obligation list

val validate_chain :
  ?laws:law list ->
  before:Quil.chain ->
  after:Quil.chain ->
  event list ->
  obligation list
(** Chain-level events plus two invariants: the pass only removes
    operators, and the rewritten chain is accepted by the
    well-formedness PDA. *)

val accepted : obligation list -> bool
val failures : obligation list -> string list
(** The failed obligations as ["rule: reason"] lines. *)

val obligation_string : obligation -> string
(** One display line, e.g. ["ok       where-fuse  filter(p); ..."]. *)
