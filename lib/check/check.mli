(** Static query analysis: a QUIL well-formedness verifier, expression
    purity/interval analysis, a parallelizability classifier, and a plan
    linter with stable rule codes.

    Everything here is side-effect free and runs on the query AST (or
    the lowered QUIL chain) before any execution — the engine calls it
    at prepare time, [stenoc lint] calls it from the command line. *)

module Pda = Check_pda
module Purity = Check_purity
module Homo = Check_homo
module Flow = Check_flow
module Equiv = Check_equiv

(** {1 Diagnostics} *)

type severity =
  | Error  (** the query will raise, or an internal invariant is broken *)
  | Warning  (** probable intent bug or guaranteed backend degradation *)
  | Hint  (** an optimization opportunity *)

val severity_string : severity -> string
(** ["error"], ["warning"] or ["hint"]. *)

type diagnostic = {
  d_code : string;  (** stable rule code, e.g. ["SC004"] *)
  d_rule : string;  (** rule name, e.g. ["where-after-take-semantics"] *)
  d_severity : severity;
  d_index : int;
      (** operator position in source-to-sink order ([0] = source), or
          [-1] for a whole-plan diagnostic *)
  d_op : string;  (** combinator label at that position *)
  d_message : string;
}

type rule = {
  r_code : string;
  r_name : string;
  r_severity : severity;
  r_doc : string;
}

val rules : rule list
(** The registry, in code order: SC000 malformed-chain, SC001
    opaque-lambda, SC002 unsplittable-suffix, SC003
    redundant-sort-reverse, SC004 where-after-take-semantics, SC005
    groupby-without-agg-specialization, SC006 const-division-by-zero,
    SC007 aggregate-on-empty, SC008 redundant-distinct, SC009
    sort-discarded-by-resort, SC010 statically-empty-plan, SC011
    impure-lambda-in-splittable-prefix, SC012 rejected-rewrite.
    SC008-SC011 are derived from the {!Check_flow} property analysis
    and the {!Check_homo} classification; SC012 is emitted by the
    engine when {!Check_equiv} rejects an optimized plan. *)

val errors : diagnostic list -> diagnostic list
(** Just the [Error]-severity diagnostics. *)

val to_string : diagnostic -> string
(** One line: ["SC004 warning [2:where] <message>"]. *)

val render : diagnostic list -> string
(** One line per diagnostic (trailing newline), or ["(none)\n"]. *)

(** {1 The linter} *)

val query : 'a Query.t -> diagnostic list
(** All diagnostics for a collection query, sorted by (position, code,
    message) so output is deterministic.  Diagnostics found inside
    nested sub-queries are re-attached to the embedding operator's
    position with an ["in nested sub-query: "] message prefix. *)

val scalar : 's Query.sq -> diagnostic list
(** Same for an aggregated (scalar) query; aggregate-level rules attach
    to the final position. *)

(** {1 QUIL chain well-formedness} *)

exception Malformed_chain of string

val verify : Quil.chain -> (unit, string) result
(** Run the {!Pda} acceptor; [Error] carries the rejection reason. *)

val assert_well_formed : Quil.chain -> unit
(** @raise Malformed_chain if the PDA rejects the chain.  The engine
    runs this on every chain it is about to execute or compile: a
    failure is a builder/optimizer bug, not a user error. *)

val malformed : string -> diagnostic
(** An [SC000] whole-plan diagnostic from a PDA rejection reason. *)

val rejected_rewrite : string -> diagnostic
(** An [SC012] whole-plan diagnostic carrying the failed proof
    obligations of a rejected optimizer rewrite. *)
