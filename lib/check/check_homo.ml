type verdict =
  | Splittable
  | Blocking of string

type op_info = {
  o_index : int;
  o_label : string;
  o_verdict : verdict;
}

type report = {
  r_ops : op_info list;
  r_prefix : int;
  r_blocker : op_info option;
}

(* Blocking reasons, one phrasing per operator class so diagnostics are
   stable. *)
let positional = "consumes the element's global position, which restarts at 0 in every partition"
let prefix_cut = "keeps a prefix or suffix of the whole sequence, not of each partition"
let stateful_cut = "its cut point depends on all preceding elements of the whole sequence"
let groups = "combines elements from the whole input into per-key groups"

let group_aggs =
  "folds per-key partials of the whole input; not naively splittable, \
   but the parallel layer's dedicated group-aggregate path merges \
   per-partition partial maps instead"
let sorts = "a global sort interleaves elements from every partition"
let dedups = "duplicates may span partition boundaries"
let reverses = "reverses the global order, not each partition's"

(* The top-level operator spine, source first.  Only the outer side of
   joins and flattens is walked — the inner side is re-evaluated per
   outer element, so it does not constrain partitioning — mirroring
   [Par.is_homomorphic] exactly. *)
let rec ops_of : type a. a Query.t -> (string * verdict) list = function
  | Query.Of_array _ -> [ "of-array", Splittable ]
  | Query.Range _ -> [ "range", Splittable ]
  | Query.Repeat _ -> [ "repeat", Splittable ]
  | Query.Select (q, _) -> ops_of q @ [ "select", Splittable ]
  | Query.Select_i (q, _) -> ops_of q @ [ "select-i", Blocking positional ]
  | Query.Select_q (q, _, _) -> ops_of q @ [ "select-sq", Splittable ]
  | Query.Where (q, _) -> ops_of q @ [ "where", Splittable ]
  | Query.Where_i (q, _) -> ops_of q @ [ "where-i", Blocking positional ]
  | Query.Where_q (q, _, _) -> ops_of q @ [ "where-sq", Splittable ]
  | Query.Take (q, _) -> ops_of q @ [ "take", Blocking prefix_cut ]
  | Query.Skip (q, _) -> ops_of q @ [ "skip", Blocking prefix_cut ]
  | Query.Take_while (q, _) ->
    ops_of q @ [ "take-while", Blocking stateful_cut ]
  | Query.Skip_while (q, _) ->
    ops_of q @ [ "skip-while", Blocking stateful_cut ]
  | Query.Select_many (q, _, _) -> ops_of q @ [ "select-many", Splittable ]
  | Query.Select_many_result (q, _, _, _) ->
    ops_of q @ [ "select-many", Splittable ]
  | Query.Join (outer, _, _, _, _) -> ops_of outer @ [ "join", Splittable ]
  | Query.Group_by (q, _) -> ops_of q @ [ "group-by", Blocking groups ]
  | Query.Group_by_elem (q, _, _) ->
    ops_of q @ [ "group-by", Blocking groups ]
  | Query.Group_by_agg (q, _, _, _) ->
    ops_of q @ [ "group-by-agg", Blocking group_aggs ]
  | Query.Order_by (q, _, _) -> ops_of q @ [ "order-by", Blocking sorts ]
  | Query.Distinct q -> ops_of q @ [ "distinct", Blocking dedups ]
  | Query.Rev q -> ops_of q @ [ "rev", Blocking reverses ]
  | Query.Materialize q -> ops_of q @ [ "materialize", Splittable ]

type combinability =
  | Combinable of string
  | Not_combinable of string

let rec aggregate_combinability : type s. s Query.sq -> combinability =
  function
  | Query.Sum_int _ -> Combinable "(+)"
  | Query.Sum_float _ -> Combinable "(+.)"
  | Query.Count _ -> Combinable "(+)"
  | Query.Min _ -> Combinable "min"
  | Query.Max _ -> Combinable "max"
  | Query.Min_by _ -> Combinable "min by key"
  | Query.Max_by _ -> Combinable "max by key"
  | Query.Any _ -> Combinable "(||)"
  | Query.Exists _ -> Combinable "(||)"
  | Query.For_all _ -> Combinable "(&&)"
  | Query.Contains _ -> Combinable "(||)"
  | Query.Aggregate _ | Query.Aggregate_full _ ->
    Not_combinable
      "a general fold carries no associativity annotation (section 6 \
       defers such knowledge to user declarations)"
  | Query.Aggregate_combinable _ -> Combinable "user-declared combiner"
  | Query.Average _ -> Combinable "(sum, count) pair"
  | Query.First _ -> Combinable "leftmost non-empty partial"
  | Query.Last _ -> Combinable "rightmost non-empty partial"
  | Query.Element_at _ -> Not_combinable "selects by global element position"
  | Query.Map_scalar (inner, _) ->
    (* The selector applies once, to the merged partial — splittable
       exactly when the underlying aggregate is. *)
    aggregate_combinability inner

let agg_label : type s. s Query.sq -> string = function
  | Query.Aggregate _ -> "aggregate"
  | Query.Aggregate_full _ -> "aggregate"
  | Query.Aggregate_combinable _ -> "aggregate+combine"
  | Query.Sum_int _ -> "sum"
  | Query.Sum_float _ -> "sum"
  | Query.Count _ -> "count"
  | Query.Average _ -> "average"
  | Query.Min _ -> "min"
  | Query.Max _ -> "max"
  | Query.Min_by _ -> "min-by"
  | Query.Max_by _ -> "max-by"
  | Query.First _ -> "first"
  | Query.Last _ -> "last"
  | Query.Element_at _ -> "element-at"
  | Query.Any _ -> "any"
  | Query.Exists _ -> "exists"
  | Query.For_all _ -> "for-all"
  | Query.Contains _ -> "contains"
  | Query.Map_scalar _ -> "map-scalar"

let rec scalar_ops : type s. s Query.sq -> (string * verdict) list =
 fun sq ->
  let agg_row inner =
    let v =
      match aggregate_combinability sq with
      | Combinable _ -> Splittable
      | Not_combinable reason -> Blocking reason
    in
    ops_of inner @ [ agg_label sq, v ]
  in
  match sq with
  | Query.Aggregate (q, _, _) -> agg_row q
  | Query.Aggregate_full (q, _, _, _) -> agg_row q
  | Query.Aggregate_combinable (q, _, _, _) -> agg_row q
  | Query.Sum_int q -> agg_row q
  | Query.Sum_float q -> agg_row q
  | Query.Count q -> agg_row q
  | Query.Average q -> agg_row q
  | Query.Min q -> agg_row q
  | Query.Max q -> agg_row q
  | Query.Min_by (q, _) -> agg_row q
  | Query.Max_by (q, _) -> agg_row q
  | Query.First q -> agg_row q
  | Query.Last q -> agg_row q
  | Query.Element_at (q, _) -> agg_row q
  | Query.Any q -> agg_row q
  | Query.Exists (q, _) -> agg_row q
  | Query.For_all (q, _) -> agg_row q
  | Query.Contains (q, _) -> agg_row q
  | Query.Map_scalar (inner, _) ->
    scalar_ops inner
    @ [
        ( "map-scalar",
          match aggregate_combinability sq with
          | Combinable _ -> Splittable
          | Not_combinable reason -> Blocking reason );
      ]

let report_of ops =
  let ops =
    List.mapi
      (fun i (label, v) -> { o_index = i; o_label = label; o_verdict = v })
      ops
  in
  let rec prefix n = function
    | { o_verdict = Splittable; _ } :: rest -> prefix (n + 1) rest
    | _ -> n
  in
  let blocker =
    List.find_opt
      (fun o -> match o.o_verdict with Blocking _ -> true | Splittable -> false)
      ops
  in
  { r_ops = ops; r_prefix = prefix 0 ops; r_blocker = blocker }

let classify q = report_of (ops_of q)

let classify_scalar sq = report_of (scalar_ops sq)

let is_homomorphic q = (classify q).r_blocker = None
