(* Forward abstract interpretation over the query AST.

   Each operator's output is summarized by a small property record —
   cardinality bounds, distinctness, sortedness, emptiness and lambda
   purity — seeded from source literals and the {!Check_purity} interval
   analysis and transferred through every operator.  The optimizer uses
   the properties as side conditions for property-driven rules, the
   translation validator ({!Check_equiv}) re-derives them to discharge
   obligations, and the linter turns them into SC008-SC011 diagnostics.

   Caveat shared with [Opt.is_empty]: a captured array's length is taken
   as a static fact, so the properties (like the rewrites they license)
   specialize the plan to the captured values. *)

type tri =
  | Yes
  | No
  | Maybe

let tri_string = function
  | Yes -> "yes"
  | No -> "no"
  | Maybe -> "maybe"

(* Sortedness is "the sequence is ordered by this key in this direction";
   keys are compared up to alpha-equivalence, so the element type is
   packed away. *)
type skey = Skey : ('a, 'k) Expr.lam * Query.order -> skey

type props = {
  card : Check_purity.itv;
  distinct : tri;
  sorted_by : skey option;
  nonempty : tri;
  pure_prefix : bool;
}

(* ------------------------------------------------------------------ *)
(* Interval helpers over the cardinality domain: intervals are kept in
   clamped form with [lo = Some l, l >= 0]; [hi = None] is unbounded. *)

let itv lo hi = { Check_purity.lo; hi }

let clamp (i : Check_purity.itv) =
  let lo =
    match i.Check_purity.lo with
    | Some l when l > 0 -> Some l
    | _ -> Some 0
  in
  let hi =
    match i.Check_purity.hi with
    | Some h when h < 0 -> Some 0
    | h -> h
  in
  itv lo hi

let lo_of (i : Check_purity.itv) =
  match i.Check_purity.lo with
  | Some l -> max 0 l
  | None -> 0

let hi_of (i : Check_purity.itv) = i.Check_purity.hi
let unknown_card = itv (Some 0) None

(* min of two upper bounds, None = unbounded. *)
let hi_min a b =
  match a, b with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

(* Widening multiplication, as in Check_purity: overflow loses the
   bound. *)
let mul_hi a b =
  match a, b with
  | Some 0, _ | _, Some 0 -> Some 0
  | None, _ | _, None -> None
  | Some a, Some b ->
    let p = a * b in
    if p / a <> b then None else Some p

(* [Take n]: elementwise min. *)
let card_take src n =
  itv (Some (min (lo_of src) (lo_of n))) (hi_min (hi_of src) (hi_of n))

(* [Skip n]: subtract the skip count. *)
let card_skip src n =
  let lo =
    match hi_of n with
    | None -> 0
    | Some h -> max 0 (lo_of src - max 0 h)
  in
  let hi =
    match hi_of src with
    | None -> None
    | Some h -> Some (max 0 (h - lo_of n))
  in
  itv (Some lo) hi

let card_mul a b =
  itv (Some (lo_of a * lo_of b)) (mul_hi (hi_of a) (hi_of b))

(* [Distinct] / [Group_by]: at least one element survives a non-empty
   input; the upper bound is unchanged. *)
let card_squash src = itv (Some (min 1 (lo_of src))) (hi_of src)

let nonempty_of card =
  if lo_of card >= 1 then Yes
  else
    match hi_of card with
    | Some 0 -> No
    | _ -> Maybe

let pure e = Check_purity.purity e = Check_purity.Pure
let pure_lam (l : (_, _) Expr.lam) = pure l.Expr.body
let pure_lam2 (l : (_, _, _) Expr.lam2) = pure l.Expr.body2

let flip = function
  | Query.Ascending -> Query.Descending
  | Query.Descending -> Query.Ascending

let identity_key ty = Skey (Expr.lam "x" ty (fun x -> x), Query.Ascending)

(* Subsequence-forming operators preserve a Yes distinctness verdict but
   can break a No one (the duplicate pair may be filtered out). *)
let distinct_subseq = function
  | Yes -> Yes
  | No | Maybe -> Maybe

let mk ?sorted ?(distinct = Maybe) card ~pure =
  let card = clamp card in
  {
    card;
    distinct;
    sorted_by = sorted;
    nonempty = nonempty_of card;
    pure_prefix = pure;
  }

(* ------------------------------------------------------------------ *)
(* Effectful-lambda census: total number of host-function application
   sites in every expression of the plan.  The translation validator's
   whole-plan invariant demands the optimized plan does not duplicate
   any. *)

let ap e = (Check_purity.census e).Check_purity.c_applies
let ap_lam (l : (_, _) Expr.lam) = ap l.Expr.body
let ap_lam2 (l : (_, _, _) Expr.lam2) = ap l.Expr.body2

let rec applies : type a. a Query.t -> int = function
  | Query.Of_array (_, arr) -> ap arr
  | Query.Range (start, count) -> ap start + ap count
  | Query.Repeat (_, v, count) -> ap v + ap count
  | Query.Select (q, f) -> applies q + ap_lam f
  | Query.Select_i (q, f) -> applies q + ap_lam2 f
  | Query.Select_q (q, _, sq) -> applies q + applies_sq sq
  | Query.Where (q, p) -> applies q + ap_lam p
  | Query.Where_i (q, p) -> applies q + ap_lam2 p
  | Query.Where_q (q, _, sq) -> applies q + applies_sq sq
  | Query.Take (q, n) -> applies q + ap n
  | Query.Skip (q, n) -> applies q + ap n
  | Query.Take_while (q, p) -> applies q + ap_lam p
  | Query.Skip_while (q, p) -> applies q + ap_lam p
  | Query.Select_many (q, _, inner) -> applies q + applies inner
  | Query.Select_many_result (q, _, inner, r) ->
    applies q + applies inner + ap_lam2 r
  | Query.Join (outer, inner, ok, ik, res) ->
    applies outer + applies inner + ap_lam ok + ap_lam ik + ap_lam2 res
  | Query.Group_by (q, k) -> applies q + ap_lam k
  | Query.Group_by_elem (q, k, e) -> applies q + ap_lam k + ap_lam e
  | Query.Group_by_agg (q, k, seed, step) ->
    applies q + ap_lam k + ap seed + ap_lam2 step
  | Query.Order_by (q, k, _) -> applies q + ap_lam k
  | Query.Distinct q -> applies q
  | Query.Rev q -> applies q
  | Query.Materialize q -> applies q

and applies_sq : type s. s Query.sq -> int = function
  | Query.Aggregate (q, seed, step) -> applies q + ap seed + ap_lam2 step
  | Query.Aggregate_full (q, seed, step, res) ->
    applies q + ap seed + ap_lam2 step + ap_lam res
  | Query.Aggregate_combinable (q, seed, step, _) ->
    applies q + ap seed + ap_lam2 step
  | Query.Sum_int q -> applies q
  | Query.Sum_float q -> applies q
  | Query.Count q -> applies q
  | Query.Average q -> applies q
  | Query.Min q -> applies q
  | Query.Max q -> applies q
  | Query.Min_by (q, k) -> applies q + ap_lam k
  | Query.Max_by (q, k) -> applies q + ap_lam k
  | Query.First q -> applies q
  | Query.Last q -> applies q
  | Query.Element_at (q, n) -> applies q + ap n
  | Query.Any q -> applies q
  | Query.Exists (q, p) -> applies q + ap_lam p
  | Query.For_all (q, p) -> applies q + ap_lam p
  | Query.Contains (q, v) -> applies q + ap v
  | Query.Map_scalar (sq, f) -> applies_sq sq + ap_lam f

(* ------------------------------------------------------------------ *)
(* The transfer functions.  [walk] returns the top-level spine
   annotations in source-to-sink order (labels match the linter's) plus
   the final property record; nested sub-queries contribute only their
   summary. *)

let rec walk : type a. a Query.t -> (string * props) list * props =
 fun q ->
  let src label p = [ label, p ], p in
  let step anns label p = anns @ [ label, p ], p in
  match q with
  | Query.Of_array (_, Expr.Capture (_, arr)) ->
    let n = Array.length arr in
    src "of-array" (mk (Check_purity.exactly n) ~pure:true)
  | Query.Of_array (_, arr) -> src "of-array" (mk unknown_card ~pure:(pure arr))
  | Query.Range (start, count) ->
    src "range"
      (mk
         (Check_purity.interval count)
         ~sorted:(identity_key Ty.Int) ~distinct:Yes
         ~pure:(pure start && pure count))
  | Query.Repeat (ty, v, count) ->
    let card = clamp (Check_purity.interval count) in
    let distinct =
      match lo_of card, hi_of card with
      | lo, _ when lo >= 2 -> No (* the same value at least twice *)
      | _, Some h when h <= 1 -> Yes
      | _ -> Maybe
    in
    (* A constant run is trivially non-decreasing under any key. *)
    src "repeat"
      (mk card ~sorted:(identity_key ty) ~distinct ~pure:(pure v && pure count))
  | Query.Select (q0, f) ->
    let anns, s = walk q0 in
    step anns "select" (mk s.card ~pure:(s.pure_prefix && pure_lam f))
  | Query.Select_i (q0, f) ->
    let anns, s = walk q0 in
    step anns "select-i" (mk s.card ~pure:(s.pure_prefix && pure_lam2 f))
  | Query.Select_q (q0, _, sq) ->
    let anns, s = walk q0 in
    let sp = snd (walk_sq sq) in
    step anns "select-sq" (mk s.card ~pure:(s.pure_prefix && sp.pure_prefix))
  | Query.Where (q0, p) ->
    let anns, s = walk q0 in
    step anns "where"
      (mk
         (itv (Some 0) (hi_of s.card))
         ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && pure_lam p))
  | Query.Where_i (q0, p) ->
    let anns, s = walk q0 in
    step anns "where-i"
      (mk
         (itv (Some 0) (hi_of s.card))
         ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && pure_lam2 p))
  | Query.Where_q (q0, _, sq) ->
    let anns, s = walk q0 in
    let sp = snd (walk_sq sq) in
    step anns "where-sq"
      (mk
         (itv (Some 0) (hi_of s.card))
         ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && sp.pure_prefix))
  | Query.Take (q0, n) ->
    let anns, s = walk q0 in
    let ni = clamp (Check_purity.interval n) in
    step anns "take"
      (mk (card_take s.card ni) ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && pure n))
  | Query.Skip (q0, n) ->
    let anns, s = walk q0 in
    let ni = clamp (Check_purity.interval n) in
    step anns "skip"
      (mk (card_skip s.card ni) ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && pure n))
  | Query.Take_while (q0, p) ->
    let anns, s = walk q0 in
    step anns "take-while"
      (mk
         (itv (Some 0) (hi_of s.card))
         ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && pure_lam p))
  | Query.Skip_while (q0, p) ->
    let anns, s = walk q0 in
    step anns "skip-while"
      (mk
         (itv (Some 0) (hi_of s.card))
         ?sorted:s.sorted_by
         ~distinct:(distinct_subseq s.distinct)
         ~pure:(s.pure_prefix && pure_lam p))
  | Query.Select_many (q0, _, inner) ->
    let anns, s = walk q0 in
    let si = snd (walk inner) in
    let distinct =
      if s.nonempty = Yes && si.distinct = No then No else Maybe
    in
    step anns "select-many"
      (mk (card_mul s.card si.card) ~distinct
         ~pure:(s.pure_prefix && si.pure_prefix))
  | Query.Select_many_result (q0, _, inner, r) ->
    let anns, s = walk q0 in
    let si = snd (walk inner) in
    step anns "select-many"
      (mk (card_mul s.card si.card)
         ~pure:(s.pure_prefix && si.pure_prefix && pure_lam2 r))
  | Query.Join (outer, inner, ok, ik, res) ->
    let anns, so = walk outer in
    let si = snd (walk inner) in
    step anns "join"
      (mk
         (itv (Some 0) (mul_hi (hi_of so.card) (hi_of si.card)))
         ~pure:
           (so.pure_prefix && si.pure_prefix && pure_lam ok && pure_lam ik
          && pure_lam2 res))
  | Query.Group_by (q0, k) ->
    let anns, s = walk q0 in
    step anns "group-by"
      (mk (card_squash s.card) ~distinct:Yes
         ~pure:(s.pure_prefix && pure_lam k))
  | Query.Group_by_elem (q0, k, e) ->
    let anns, s = walk q0 in
    step anns "group-by"
      (mk (card_squash s.card) ~distinct:Yes
         ~pure:(s.pure_prefix && pure_lam k && pure_lam e))
  | Query.Group_by_agg (q0, k, seed, step_lam) ->
    let anns, s = walk q0 in
    step anns "group-by-agg"
      (mk (card_squash s.card) ~distinct:Yes
         ~pure:
           (s.pure_prefix && pure_lam k && pure seed && pure_lam2 step_lam))
  | Query.Order_by (q0, k, dir) ->
    let anns, s = walk q0 in
    step anns "order-by"
      (mk s.card ~sorted:(Skey (k, dir)) ~distinct:s.distinct
         ~pure:(s.pure_prefix && pure_lam k))
  | Query.Distinct q0 ->
    let anns, s = walk q0 in
    step anns "distinct"
      (mk (card_squash s.card) ~distinct:Yes ?sorted:s.sorted_by
         ~pure:s.pure_prefix)
  | Query.Rev q0 ->
    let anns, s = walk q0 in
    let sorted =
      match s.sorted_by with
      | Some (Skey (k, dir)) -> Some (Skey (k, flip dir))
      | None -> None
    in
    step anns "rev" (mk s.card ?sorted ~distinct:s.distinct ~pure:s.pure_prefix)
  | Query.Materialize q0 ->
    let anns, s = walk q0 in
    step anns "materialize"
      (mk s.card ?sorted:s.sorted_by ~distinct:s.distinct ~pure:s.pure_prefix)

(* Scalar queries produce exactly one value; the record mostly carries
   the purity verdict (the collection prefix plus the aggregate's own
   lambdas) for the validator and linter. *)
and walk_sq : type s. s Query.sq -> (string * props) list * props =
 fun sq ->
  let one label q extra_pure =
    let anns, s = walk q in
    let p =
      mk (Check_purity.exactly 1) ~distinct:Yes
        ~pure:(s.pure_prefix && extra_pure)
    in
    anns @ [ label, p ], p
  in
  match sq with
  | Query.Aggregate (q, seed, step) ->
    one "aggregate" q (pure seed && pure_lam2 step)
  | Query.Aggregate_full (q, seed, step, res) ->
    one "aggregate" q (pure seed && pure_lam2 step && pure_lam res)
  | Query.Aggregate_combinable (q, seed, step, _) ->
    one "aggregate" q (pure seed && pure_lam2 step)
  | Query.Sum_int q -> one "sum" q true
  | Query.Sum_float q -> one "sum" q true
  | Query.Count q -> one "count" q true
  | Query.Average q -> one "average" q true
  | Query.Min q -> one "min" q true
  | Query.Max q -> one "max" q true
  | Query.Min_by (q, k) -> one "min-by" q (pure_lam k)
  | Query.Max_by (q, k) -> one "max-by" q (pure_lam k)
  | Query.First q -> one "first" q true
  | Query.Last q -> one "last" q true
  | Query.Element_at (q, n) -> one "element-at" q (pure n)
  | Query.Any q -> one "any" q true
  | Query.Exists (q, p) -> one "exists" q (pure_lam p)
  | Query.For_all (q, p) -> one "for-all" q (pure_lam p)
  | Query.Contains (q, v) -> one "contains" q (pure v)
  | Query.Map_scalar (sq0, f) ->
    let anns, s = walk_sq sq0 in
    let p =
      mk (Check_purity.exactly 1) ~distinct:Yes
        ~pure:(s.pure_prefix && pure_lam f)
    in
    anns @ [ "map-scalar", p ], p

let props q = snd (walk q)
let scalar_props sq = snd (walk_sq sq)
let annotate q = fst (walk q)
let annotate_scalar sq = fst (walk_sq sq)

let statically_empty q =
  match hi_of (props q).card with
  | Some 0 -> true
  | _ -> false

(* [q] is provably sorted by [key]/[dir] (up to alpha-equivalence of the
   key selector). *)
let sorted_matching q (key : (_, _) Expr.lam) dir =
  match (props q).sorted_by with
  | Some (Skey (k, d)) -> d = dir && Expr.alpha_equal_lam k key
  | None -> false

(* ------------------------------------------------------------------ *)
(* Rendering, for explain output and the verify CLI. *)

let card_string (i : Check_purity.itv) =
  match i.Check_purity.lo, i.Check_purity.hi with
  | Some l, Some h when l = h -> string_of_int l
  | lo, hi ->
    let b = function
      | Some n -> string_of_int n
      | None -> "*"
    in
    Printf.sprintf "[%s,%s]" (b lo) (b hi)

let props_string p =
  let sorted =
    match p.sorted_by with
    | None -> "-"
    | Some (Skey (_, Query.Ascending)) -> "asc"
    | Some (Skey (_, Query.Descending)) -> "desc"
  in
  Printf.sprintf "card=%s distinct=%s sorted=%s nonempty=%s pure=%s"
    (card_string p.card) (tri_string p.distinct) sorted
    (tri_string p.nonempty)
    (if p.pure_prefix then "yes" else "no")
