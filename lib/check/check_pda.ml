type kind =
  | Collection
  | Scalar

type token =
  | Src
  | Trans
  | Pred
  | Sink
  | Agg
  | Ret
  | Open of kind
  | Close

let kind_string = function
  | Collection -> "collection"
  | Scalar -> "scalar"

let token_string = function
  | Src -> "Src"
  | Trans -> "Trans"
  | Pred -> "Pred"
  | Sink -> "Sink"
  | Agg -> "Agg"
  | Ret -> "Ret"
  | Open k -> Printf.sprintf "[%s" (kind_string k)
  | Close -> "]"

(* Linearization.  A nested operator contributes its brackets first and
   its own outer symbol after the [Close]: the sub-query substitutes for
   the function argument of a Trans/Pred (section 5), so the embedding
   operator still occupies one position of the outer sentence. *)
let rec tokens_of_chain c =
  (Src :: List.concat_map tokens_of_op c.Quil.ops) @ [ Ret ]

and tokens_of_op = function
  | Quil.Trans _ | Quil.Trans_idx _ -> [ Trans ]
  | Quil.Pred _ | Quil.Pred_idx _ | Quil.Pred_stateful _ -> [ Pred ]
  | Quil.Sink _ -> [ Sink ]
  | Quil.Agg _ -> [ Agg ]
  | Quil.Trans_nested n ->
    (Open Scalar :: tokens_of_chain n.Quil.inner_s) @ [ Close; Trans ]
  | Quil.Pred_nested n ->
    (Open Scalar :: tokens_of_chain n.Quil.inner_s) @ [ Close; Pred ]
  | Quil.Nested n ->
    (Open Collection :: tokens_of_chain n.Quil.inner) @ [ Close; Trans ]
  | Quil.Hash_join j ->
    (Open Collection :: tokens_of_chain j.Quil.join_inner) @ [ Close; Trans ]

(* The automaton.  [Accept k] is the state after [Ret]: terminal at the
   top level, and the only state from which [Close] may pop a frame. *)
type state =
  | Expect_src
  | Body
  | After_agg
  | Accept of kind

let run tokens =
  let rec step state stack = function
    | [] -> (
      match state, stack with
      | Accept k, [] -> Ok k
      | Accept _, _ :: _ ->
        Error "input ended inside a nested sub-query (missing Close)"
      | Expect_src, _ -> Error "empty input: expected Src"
      | Body, _ -> Error "input ended before Ret"
      | After_agg, _ -> Error "input ended after Agg, before Ret")
    | t :: rest -> (
      match state, t with
      | Expect_src, Src -> step Body stack rest
      | Expect_src, t ->
        Error
          (Printf.sprintf "a chain must begin with Src, not %s"
             (token_string t))
      | Body, (Trans | Pred | Sink) -> step Body stack rest
      | Body, Agg -> step After_agg stack rest
      | Body, Ret -> step (Accept Collection) stack rest
      | Body, Open k -> step Expect_src (k :: stack) rest
      | Body, Src -> Error "Src may only appear at the start of a chain"
      | Body, Close -> Error "Close before the sub-query's Ret"
      | After_agg, Ret -> step (Accept Scalar) stack rest
      | After_agg, t ->
        Error
          (Printf.sprintf
             "Agg is terminal: only Ret may follow it, not %s"
             (token_string t))
      | Accept k, Close -> (
        match stack with
        | [] -> Error "unbalanced Close at the top level"
        | required :: stack ->
          if required = k then step Body stack rest
          else
            Error
              (Printf.sprintf
                 "nested sub-query must produce a %s but produces a %s"
                 (kind_string required) (kind_string k)))
      | Accept _, t ->
        Error
          (Printf.sprintf "token after Ret: %s" (token_string t)))
  in
  step Expect_src [] tokens

let accepts c = run (tokens_of_chain c)
