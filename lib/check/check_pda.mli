(** QUIL well-formedness: the paper's pushdown automaton (section 4.2,
    Fig. 6) re-implemented as an independent acceptor.

    {!Quil.validate} is the constructive grammar check the lowering
    pipeline relies on; this module is its adversary: a second, structure-
    free implementation that linearizes a chain into the six-symbol token
    stream (plus explicit brackets for nested sub-queries) and runs the
    PDA transition relation over it.  The two must agree on every chain
    the system ever builds — {!Check.assert_well_formed} enforces that at
    prepare time — and the token-level entry point {!run} lets tests feed
    the automaton raw symbol strings that no builder could produce. *)

(** Whether a (sub-)chain produces a collection or a scalar: [Ret] after
    a [Sink]/[Trans]/[Pred] body accepts a collection, [Ret] immediately
    after [Agg] accepts a scalar. *)
type kind =
  | Collection
  | Scalar

type token =
  | Src
  | Trans
  | Pred
  | Sink
  | Agg
  | Ret
  | Open of kind
      (** Start of a nested sub-query; carries the kind the embedding
          operator requires it to produce ([Scalar] for nested
          Trans/Pred, [Collection] for SelectMany and the hash-join
          build side). *)
  | Close

val token_string : token -> string

val tokens_of_chain : Quil.chain -> token list
(** Flatten a chain to the symbol stream the PDA consumes, nested
    sub-queries bracketed by [Open]/[Close]. *)

val run : token list -> (kind, string) result
(** The transition relation itself.  States: expecting [Src]; in the
    operator body ([Trans]/[Pred]/[Sink] self-loop); after [Agg] (only
    [Ret] may follow); accepted.  [Open] pushes the required kind and
    restarts in the initial state; [Close] pops and checks the kind the
    sub-query actually produced.  Accepts iff the stream ends in the
    accepting state with an empty stack. *)

val accepts : Quil.chain -> (kind, string) result
(** [run (tokens_of_chain c)]. *)
