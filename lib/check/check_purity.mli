(** Static analysis of {!Expr} trees: purity/opacity, a capture and
    free-variable census with a cost estimate, and a constant/interval
    analysis over integer expressions.

    The purity lattice has two points.  [Pure] expressions are built only
    from the closed expression vocabulary (constants, variables, captures,
    primitives, tuples, array reads): every backend can inline them, and
    the optimizer may duplicate, reorder or delete them.  [Opaque]
    expressions contain at least one {!Expr.Apply} of a captured host
    function — the analog of a non-expression-tree delegate in LINQ: the
    native code generator must emit an indirect call per element, and
    algebraic rewrites must treat the call as a black box.

    The interval analysis is a standard abstract interpretation over
    [{lo; hi}] with unbounded ends, deliberately conservative: captures
    are unknown (their values are rebindable per run), arithmetic widens
    to unbounded on any potential overflow, and only integer-typed
    comparisons refine the three-valued {!truth} verdict. *)

type purity =
  | Pure
  | Opaque

type census = {
  c_size : int;  (** AST nodes, as {!Expr.size}. *)
  c_captures : int;  (** [Capture] leaves. *)
  c_applies : int;  (** [Apply] nodes — zero iff the expression is pure. *)
  c_free_vars : int;  (** Distinct free variables. *)
  c_cost : int;
      (** Weighted per-evaluation cost estimate: primitives and array
          reads cost a little, host-function applications a lot. *)
}

val census : 'a Expr.t -> census

val purity : 'a Expr.t -> purity
(** [Opaque] iff the tree contains an [Apply]. *)

(** {1 Intervals} *)

type itv = {
  lo : int option;  (** [None] is unbounded below. *)
  hi : int option;  (** [None] is unbounded above. *)
}

val top : itv
val exactly : int -> itv

type env = (int * itv) list
(** Variable id to interval, for let-bound refinement. *)

val interval : ?env:env -> int Expr.t -> itv
(** A sound enclosure of every value the expression can take, for any
    values of its free variables, captures and opaque calls. *)

type truth =
  | True
  | False
  | Unknown

val truth : ?env:env -> bool Expr.t -> truth
(** Three-valued verdict on a boolean expression; [True]/[False] only
    when the interval analysis proves it for all variable values. *)

val always_nonpositive : int Expr.t -> bool
(** The expression's upper bound is proven [<= 0] — e.g. a [Take] count
    that can never admit an element. *)

val zero_division_sites : 'a Expr.t -> int
(** Number of integer division/modulo nodes whose divisor is provably
    the constant zero: each such site raises [Division_by_zero] whenever
    evaluated. *)
