type purity =
  | Pure
  | Opaque

type census = {
  c_size : int;
  c_captures : int;
  c_applies : int;
  c_free_vars : int;
  c_cost : int;
}

let census e =
  let size = ref 0 in
  let captures = ref 0 in
  let applies = ref 0 in
  let cost = ref 0 in
  let rec go : type b. b Expr.t -> unit =
   fun e ->
    incr size;
    match e with
    | Expr.Var _ -> ()
    | Expr.Const_unit -> ()
    | Expr.Const_bool _ -> ()
    | Expr.Const_int _ -> ()
    | Expr.Const_float _ -> ()
    | Expr.Const_string _ -> ()
    | Expr.Capture _ -> incr captures
    | Expr.If (c, a, b) ->
      cost := !cost + 1;
      go c; go a; go b
    | Expr.Let (_, rhs, body) -> go rhs; go body
    | Expr.Pair (a, b) ->
      cost := !cost + 1;
      go a; go b
    | Expr.Fst a -> cost := !cost + 1; go a
    | Expr.Snd a -> cost := !cost + 1; go a
    | Expr.Triple (a, b, c) ->
      cost := !cost + 1;
      go a; go b; go c
    | Expr.Proj3_1 a -> cost := !cost + 1; go a
    | Expr.Proj3_2 a -> cost := !cost + 1; go a
    | Expr.Proj3_3 a -> cost := !cost + 1; go a
    | Expr.Prim1 (_, a) -> cost := !cost + 1; go a
    | Expr.Prim2 (_, a, b) ->
      cost := !cost + 1;
      go a; go b
    | Expr.Array_get (a, i) ->
      cost := !cost + 2;
      go a; go i
    | Expr.Array_length a -> cost := !cost + 1; go a
    | Expr.Apply (f, x) ->
      incr applies;
      cost := !cost + 10;
      go f; go x
  in
  go e;
  {
    c_size = !size;
    c_captures = !captures;
    c_applies = !applies;
    c_free_vars = List.length (Expr.free_var_ids e);
    c_cost = !cost;
  }

let purity e = if (census e).c_applies > 0 then Opaque else Pure

(* ------------------------------------------------------------------ *)
(* Intervals.  Bounds are [int option] with [None] for the unbounded
   end; every arithmetic helper widens to unbounded rather than wrap on
   overflow (including the [min_int] asymmetries), so the enclosure is
   sound for native integers. *)

type itv = {
  lo : int option;
  hi : int option;
}

let top = { lo = None; hi = None }

let exactly n = { lo = Some n; hi = Some n }

let add_bound a b =
  match a, b with
  | Some a, Some b ->
    let s = a + b in
    if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s
  | _ -> None

let neg_bound = function
  | Some v when v <> min_int -> Some (-v)
  | _ -> None

let add_itv a b = { lo = add_bound a.lo b.lo; hi = add_bound a.hi b.hi }

let neg_itv i = { lo = neg_bound i.hi; hi = neg_bound i.lo }

let sub_itv a b = add_itv a (neg_itv b)

let mul_bound x y =
  if x = 0 || y = 0 then Some 0
  else if (x = min_int && y = -1) || (y = min_int && x = -1) then None
  else
    let p = x * y in
    if p / y = x then Some p else None

let corners f a b =
  match a, b with
  | { lo = Some al; hi = Some ah }, { lo = Some bl; hi = Some bh } -> (
    match f al bl, f al bh, f ah bl, f ah bh with
    | Some c1, Some c2, Some c3, Some c4 ->
      {
        lo = Some (min (min c1 c2) (min c3 c4));
        hi = Some (max (max c1 c2) (max c3 c4));
      }
    | _ -> top)
  | _ -> top

let mul_itv a b = corners mul_bound a b

let contains_zero i =
  (match i.lo with Some l -> l <= 0 | None -> true)
  && (match i.hi with Some h -> h >= 0 | None -> true)

(* Truncated division is monotone in each argument separately once the
   divisor range has one sign, so the quotient extremes sit at corner
   combinations.  [min_int / -1] is the one hardware trap. *)
let div_bound x y = if x = min_int && y = -1 then None else Some (x / y)

let div_itv a b = if contains_zero b then top else corners div_bound a b

let mod_itv a b =
  match b with
  | { lo = Some bl; hi = Some bh }
    when (not (contains_zero b)) && bl <> min_int && bh <> min_int ->
    let m = max (abs bl) (abs bh) in
    let nonneg = match a.lo with Some l -> l >= 0 | None -> false in
    let nonpos = match a.hi with Some h -> h <= 0 | None -> false in
    if nonneg then { lo = Some 0; hi = Some (m - 1) }
    else if nonpos then { lo = Some (-(m - 1)); hi = Some 0 }
    else { lo = Some (-(m - 1)); hi = Some (m - 1) }
  | _ -> top

let min_itv a b =
  {
    lo =
      (match a.lo, b.lo with
      | Some x, Some y -> Some (min x y)
      | _ -> None);
    hi =
      (match a.hi, b.hi with
      | Some x, Some y -> Some (min x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None);
  }

let max_itv a b =
  {
    lo =
      (match a.lo, b.lo with
      | Some x, Some y -> Some (max x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None);
    hi =
      (match a.hi, b.hi with
      | Some x, Some y -> Some (max x y)
      | _ -> None);
  }

let abs_itv i =
  match i.lo, i.hi with
  | Some l, _ when l >= 0 -> i
  | _, Some h when h <= 0 -> neg_itv i
  | lo, hi ->
    {
      lo = Some 0;
      hi =
        (match neg_bound lo, hi with
        | Some a, Some b -> Some (max a b)
        | _ -> None);
    }

let join a b =
  {
    lo =
      (match a.lo, b.lo with
      | Some x, Some y -> Some (min x y)
      | _ -> None);
    hi =
      (match a.hi, b.hi with
      | Some x, Some y -> Some (max x y)
      | _ -> None);
  }

type env = (int * itv) list

type truth =
  | True
  | False
  | Unknown

let not3 = function
  | True -> False
  | False -> True
  | Unknown -> Unknown

let and3 a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or3 a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

type cmp =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

let cmp_itv op a b =
  let lt = match a.hi, b.lo with Some ah, Some bl -> ah < bl | _ -> false in
  let le = match a.hi, b.lo with Some ah, Some bl -> ah <= bl | _ -> false in
  let gt = match a.lo, b.hi with Some al, Some bh -> al > bh | _ -> false in
  let ge = match a.lo, b.hi with Some al, Some bh -> al >= bh | _ -> false in
  let eq =
    match a.lo, a.hi, b.lo, b.hi with
    | Some al, Some ah, Some bl, Some bh -> al = ah && bl = bh && al = bl
    | _ -> false
  in
  match op with
  | Clt -> if lt then True else if ge then False else Unknown
  | Cle -> if le then True else if gt then False else Unknown
  | Cgt -> if gt then True else if le then False else Unknown
  | Cge -> if ge then True else if lt then False else Unknown
  | Ceq -> if eq then True else if lt || gt then False else Unknown
  | Cne -> if eq then False else if lt || gt then True else Unknown

let rec interval_rec : env -> int Expr.t -> itv =
 fun env e ->
  match e with
  | Expr.Const_int n -> exactly n
  | Expr.Var v -> (
    match List.assoc_opt v.Expr.id env with
    | Some i -> i
    | None -> top)
  | Expr.Capture _ -> top
  | Expr.If (c, a, b) -> (
    match truth_rec env c with
    | True -> interval_rec env a
    | False -> interval_rec env b
    | Unknown -> join (interval_rec env a) (interval_rec env b))
  | Expr.Let (v, rhs, body) -> interval_rec (bind_let env v rhs) body
  | Expr.Prim1 (p, a) -> (
    match p with
    | Prim.Neg_int -> neg_itv (interval_rec env a)
    | Prim.Abs_int -> abs_itv (interval_rec env a)
    | Prim.String_length -> { lo = Some 0; hi = None }
    | _ -> top)
  | Expr.Prim2 (p, a, b) -> (
    match p with
    | Prim.Add_int -> add_itv (interval_rec env a) (interval_rec env b)
    | Prim.Sub_int -> sub_itv (interval_rec env a) (interval_rec env b)
    | Prim.Mul_int -> mul_itv (interval_rec env a) (interval_rec env b)
    | Prim.Div_int -> div_itv (interval_rec env a) (interval_rec env b)
    | Prim.Mod_int -> mod_itv (interval_rec env a) (interval_rec env b)
    | Prim.Min_int -> min_itv (interval_rec env a) (interval_rec env b)
    | Prim.Max_int -> max_itv (interval_rec env a) (interval_rec env b))
  | Expr.Array_length _ -> { lo = Some 0; hi = None }
  | _ -> top

and bind_let : type a. env -> a Expr.var -> a Expr.t -> env =
 fun env v rhs ->
  match v.Expr.var_ty with
  | Ty.Int -> (v.Expr.id, interval_rec env rhs) :: env
  | _ -> env

and truth_rec : env -> bool Expr.t -> truth =
 fun env e ->
  match e with
  | Expr.Const_bool b -> if b then True else False
  | Expr.If (c, a, b) -> (
    match truth_rec env c with
    | True -> truth_rec env a
    | False -> truth_rec env b
    | Unknown -> (
      match truth_rec env a, truth_rec env b with
      | True, True -> True
      | False, False -> False
      | _ -> Unknown))
  | Expr.Let (v, rhs, body) -> truth_rec (bind_let env v rhs) body
  | Expr.Prim1 (Prim.Not, a) -> not3 (truth_rec env a)
  | Expr.Prim2 (p, a, b) -> (
    match p with
    | Prim.And -> and3 (truth_rec env a) (truth_rec env b)
    | Prim.Or -> or3 (truth_rec env a) (truth_rec env b)
    | Prim.Eq -> cmp_int env Ceq a b
    | Prim.Ne -> cmp_int env Cne a b
    | Prim.Lt -> cmp_int env Clt a b
    | Prim.Le -> cmp_int env Cle a b
    | Prim.Gt -> cmp_int env Cgt a b
    | Prim.Ge -> cmp_int env Cge a b)
  | _ -> Unknown

(* Only integer-typed comparisons are refined; matching the operand's
   type representation against [Ty.Int] recovers the equation the
   polymorphic comparison constructors erase. *)
and cmp_int : type a. env -> cmp -> a Expr.t -> a Expr.t -> truth =
 fun env op a b ->
  match Expr.ty_of a with
  | Ty.Int -> cmp_itv op (interval_rec env a) (interval_rec env b)
  | _ -> Unknown

let interval ?(env = []) e = interval_rec env e

let truth ?(env = []) e = truth_rec env e

let always_nonpositive e =
  match (interval_rec [] e).hi with
  | Some h -> h <= 0
  | None -> false

let zero_division_sites e =
  let count = ref 0 in
  let rec go : type b. b Expr.t -> unit =
   fun e ->
    match e with
    | Expr.Var _ -> ()
    | Expr.Const_unit -> ()
    | Expr.Const_bool _ -> ()
    | Expr.Const_int _ -> ()
    | Expr.Const_float _ -> ()
    | Expr.Const_string _ -> ()
    | Expr.Capture _ -> ()
    | Expr.If (c, a, b) -> go c; go a; go b
    | Expr.Let (_, rhs, body) -> go rhs; go body
    | Expr.Pair (a, b) -> go a; go b
    | Expr.Fst a -> go a
    | Expr.Snd a -> go a
    | Expr.Triple (a, b, c) -> go a; go b; go c
    | Expr.Proj3_1 a -> go a
    | Expr.Proj3_2 a -> go a
    | Expr.Proj3_3 a -> go a
    | Expr.Prim1 (_, a) -> go a
    | Expr.Prim2 (Prim.Div_int, a, b) ->
      (match interval_rec [] b with
      | { lo = Some 0; hi = Some 0 } -> incr count
      | _ -> ());
      go a;
      go b
    | Expr.Prim2 (Prim.Mod_int, a, b) ->
      (match interval_rec [] b with
      | { lo = Some 0; hi = Some 0 } -> incr count
      | _ -> ());
      go a;
      go b
    | Expr.Prim2 (_, a, b) ->
      go a;
      go b
    | Expr.Array_get (a, i) -> go a; go i
    | Expr.Array_length a -> go a
    | Expr.Apply (f, x) -> go f; go x
  in
  go e;
  !count
