(* Translation validation for the optimizer.

   The optimizer ([Opt]) is not trusted: every rewrite it performs is
   logged as an event carrying the rule name and the sub-terms whose
   static facts justified the rewrite.  After the fixpoint, the engine
   hands the event log together with the plans before and after to this
   module, which discharges one obligation per event against a table of
   algebraic laws — re-running the purity/interval/flow analyses on the
   captured terms rather than believing the optimizer — plus two cheap
   whole-plan invariants.  Any failed obligation rejects the optimized
   plan and the engine falls back to the plan it was given.

   The [?laws] override exists so tests can check that a deliberately
   broken law table rejects otherwise-sound plans. *)

type fact =
  | Pred_true : bool Expr.t -> fact
      (* claim: the predicate holds for every element *)
  | Pred_false : bool Expr.t -> fact
  | Count_nonpos : int Expr.t -> fact
      (* claim: the count expression is never positive *)
  | Input_empty : 'a Query.t -> fact
      (* claim: the input plan produces no elements *)
  | Input_distinct : 'a Query.t -> fact
      (* claim: the input plan is duplicate-free *)
  | Input_sorted : 'a Query.t * ('a, 'k) Expr.lam * Query.order -> fact
      (* claim: the input is already sorted by this key and direction *)
  | Input_nonempty_pure : 'a Query.t -> fact
      (* claim: the input provably yields an element, via pure operators *)
  | Stats_selectivity :
      ('a, bool) Expr.lam * ('b, bool) Expr.lam * float * float -> fact
      (* claim: both predicates are pure (hence commute), and the first
         (hoisted before the second by the adaptive phase) has observed
         selectivity fst <= snd *)

type event = {
  ev_rule : string;
  ev_facts : fact list;
}

type law = {
  l_rule : string;
  l_doc : string;
  l_check : fact list -> (unit, string) result;
}

type obligation = {
  o_rule : string;
  o_ok : bool;
  o_detail : string;
}

(* ------------------------------------------------------------------ *)
(* Side-condition checkers.  Each re-derives the claimed fact from
   scratch; a missing fact is a failure (the rule fired without
   recording its justification). *)

let ok = Ok ()

(* Structural identities need no recorded facts: the rewrite is an
   unconditional algebra law (fusion keeps short-circuiting, composed
   selectors are let-bound once, etc.). *)
let structural _facts = ok

let pred_verdict facts =
  let found =
    List.find_map
      (function
        | Pred_true p -> Some (`Always p)
        | Pred_false p -> Some (`Never p)
        | _ -> None)
      facts
  in
  match found with
  | None -> Error "no predicate fact recorded"
  | Some v -> Ok v

let check_pred expected facts =
  match pred_verdict facts with
  | Error _ as e -> e
  | Ok v -> (
    let p, want, label =
      match v, expected with
      | `Always p, `Always -> p, Check_purity.True, "always true"
      | `Never p, `Never -> p, Check_purity.False, "always false"
      | `Always p, `Either -> p, Check_purity.True, "always true"
      | `Never p, `Either -> p, Check_purity.False, "always false"
      | `Always _, `Never -> raise Exit
      | `Never _, `Always -> raise Exit
    in
    if Check_purity.truth (Expr.simplify p) <> want then
      Error (Printf.sprintf "predicate is not provably %s" label)
    else
      match Check_purity.purity p with
      | Check_purity.Pure -> ok
      | Check_purity.Opaque ->
        Error "predicate applies a host function; deleting it loses effects")

let check_pred expected facts =
  try check_pred expected facts
  with Exit -> Error "recorded predicate fact contradicts the rule"

let check_count_nonpos facts =
  match
    List.find_map
      (function
        | Count_nonpos n -> Some n
        | _ -> None)
      facts
  with
  | None -> Error "no count fact recorded"
  | Some n ->
    if Check_purity.always_nonpositive n then ok
    else Error "count is not provably non-positive"

let check_input_empty facts =
  match
    List.find_map
      (function
        | Input_empty q -> Some (Check_flow.statically_empty q)
        | _ -> None)
      facts
  with
  | None -> Error "no empty-input fact recorded"
  | Some true -> ok
  | Some false -> Error "input is not statically empty"

let check_input_distinct facts =
  match
    List.find_map
      (function
        | Input_distinct q ->
          Some ((Check_flow.props q).Check_flow.distinct = Check_flow.Yes)
        | _ -> None)
      facts
  with
  | None -> Error "no distinctness fact recorded"
  | Some true -> ok
  | Some false -> Error "input is not provably duplicate-free"

let check_input_sorted facts =
  match
    List.find_map
      (function
        | Input_sorted (q, k, dir) ->
          Some (Check_flow.sorted_matching q k dir)
        | _ -> None)
      facts
  with
  | None -> Error "no sortedness fact recorded"
  | Some true -> ok
  | Some false ->
    Error "input is not provably sorted by an alpha-equivalent key"

let check_input_nonempty_pure facts =
  match
    List.find_map
      (function
        | Input_nonempty_pure q -> Some (Check_flow.props q)
        | _ -> None)
      facts
  with
  | None -> Error "no nonemptiness fact recorded"
  | Some p ->
    if p.Check_flow.nonempty <> Check_flow.Yes then
      Error "input is not provably non-empty"
    else if not p.Check_flow.pure_prefix then
      Error "input has impure lambdas; skipping them loses effects"
    else ok

let check_stats_reorder facts =
  (* The statistics themselves cannot make an unsound rewrite sound:
     what licenses swapping two filters is purity alone, which we
     re-derive here on both captured predicates.  The selectivity pair
     is checked for plausibility (probabilities, hoisted no less
     selective) so a buggy cost model cannot log nonsense either. *)
  let found =
    List.find_map
      (function
        | Stats_selectivity (hoisted, demoted, s_h, s_d) ->
          Some
            (if Check_purity.purity hoisted.Expr.body <> Check_purity.Pure
             then
               Error
                 "hoisted predicate applies a host function; reordering \
                  changes effect order"
             else if
               Check_purity.purity demoted.Expr.body <> Check_purity.Pure
             then
               Error
                 "demoted predicate applies a host function; reordering \
                  changes effect order"
             else if
               not
                 (s_h >= 0. && s_h <= 1. && s_d >= 0. && s_d <= 1.
                 && s_h = s_h && s_d = s_d)
             then Error "recorded selectivities are not probabilities"
             else if s_h > s_d then
               Error
                 "hoisted predicate is less selective than the one it \
                  displaced"
             else ok)
        | _ -> None)
      facts
  in
  match found with
  | None -> Error "no selectivity fact recorded"
  | Some r -> r

(* ------------------------------------------------------------------ *)
(* The law table: one entry per optimizer rule. *)

let law rule doc check = { l_rule = rule; l_doc = doc; l_check = check }

let laws =
  [
    law "where-fuse"
      "filter(p); filter(q) = filter(p && q), short-circuit preserved"
      structural;
    law "select-fuse" "map(f); map(g) = map(g . f), f let-bound once"
      structural;
    law "take-take" "take(n); take(m) = take(min n m)" structural;
    law "skip-skip" "skip(n); skip(m) = skip(n+ + m+), clamped at zero"
      structural;
    law "skip-zero" "skip(n), n <= 0, is the identity"
      check_count_nonpos;
    law "take-zero" "take(n), n <= 0, is empty" check_count_nonpos;
    law "where-const-true"
      "a tautological pure filter can be deleted" (check_pred `Always);
    law "where-const-false"
      "an unsatisfiable pure filter yields the empty sequence"
      (check_pred `Never);
    law "where-interval-true"
      "interval analysis proves the pure filter tautological"
      (check_pred `Always);
    law "where-interval-false"
      "interval analysis proves the pure filter unsatisfiable"
      (check_pred `Never);
    law "take-interval-nonpos"
      "interval analysis proves the take count non-positive"
      check_count_nonpos;
    law "take-while-const"
      "a constant pure take-while keeps everything or nothing"
      (check_pred `Either);
    law "skip-while-const"
      "a constant pure skip-while skips nothing or everything"
      (check_pred `Either);
    law "distinct-distinct" "distinct is idempotent" structural;
    law "empty-collapse"
      "an operator fed only by a statically empty source is empty"
      check_input_empty;
    law "rev-rev" "rev is an involution" structural;
    law "distinct-on-distinct-free"
      "distinct over a provably duplicate-free input is the identity"
      check_input_distinct;
    law "orderby-on-sorted"
      "a stable sort of an input already sorted by the same key and \
       direction is the identity"
      check_input_sorted;
    law "nonempty-any-true"
      "Any over a provably non-empty pure input is the constant true"
      check_input_nonempty_pure;
    law "stats-where-reorder"
      "pure filters commute: filter(p); filter(q) = filter(q); filter(p)"
      check_stats_reorder;
    law "quil-rev-rev" "adjacent Reverse sinks cancel" structural;
    law "quil-drop-to-array"
      "a ToArray feeding a rebuffering sink or an aggregate is dead"
      structural;
  ]

let find_law table rule = List.find_opt (fun l -> l.l_rule = rule) table

let obligation_of table ev =
  match find_law table ev.ev_rule with
  | None ->
    {
      o_rule = ev.ev_rule;
      o_ok = false;
      o_detail = "no algebraic law registered for this rule";
    }
  | Some l -> (
    match l.l_check ev.ev_facts with
    | Ok () -> { o_rule = ev.ev_rule; o_ok = true; o_detail = l.l_doc }
    | Error reason -> { o_rule = ev.ev_rule; o_ok = false; o_detail = reason })

(* ------------------------------------------------------------------ *)
(* Whole-plan invariants. *)

let tri_contradicts a b =
  match a, b with
  | Check_flow.Yes, Check_flow.No | Check_flow.No, Check_flow.Yes -> true
  | _ -> false

let itv_disjoint (a : Check_purity.itv) (b : Check_purity.itv) =
  let above (x : Check_purity.itv) (y : Check_purity.itv) =
    match x.Check_purity.lo, y.Check_purity.hi with
    | Some l, Some h -> l > h
    | _ -> false
  in
  above a b || above b a

let flow_obligation (pb : Check_flow.props) (pa : Check_flow.props) =
  let fail detail = { o_rule = "plan:flow-compatible"; o_ok = false; o_detail = detail } in
  if itv_disjoint pb.Check_flow.card pa.Check_flow.card then
    fail
      (Printf.sprintf
         "cardinality bounds are disjoint across the rewrite: %s vs %s"
         (Check_flow.card_string pb.Check_flow.card)
         (Check_flow.card_string pa.Check_flow.card))
  else if tri_contradicts pb.Check_flow.nonempty pa.Check_flow.nonempty then
    fail "emptiness verdicts contradict across the rewrite"
  else if tri_contradicts pb.Check_flow.distinct pa.Check_flow.distinct then
    fail "distinctness verdicts contradict across the rewrite"
  else
    {
      o_rule = "plan:flow-compatible";
      o_ok = true;
      o_detail = "output properties of the optimized plan are consistent";
    }

let effects_obligation before after =
  if after <= before then
    {
      o_rule = "plan:no-new-effects";
      o_ok = true;
      o_detail = "no host-function application site was duplicated";
    }
  else
    {
      o_rule = "plan:no-new-effects";
      o_ok = false;
      o_detail =
        Printf.sprintf
          "optimized plan has %d host-function application sites, the \
           original %d: an effectful lambda was duplicated"
          after before;
    }

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let validate_query ?(laws = laws) ~before ~after events =
  List.map (obligation_of laws) events
  @ [
      effects_obligation (Check_flow.applies before) (Check_flow.applies after);
      flow_obligation (Check_flow.props before) (Check_flow.props after);
    ]

let validate_scalar ?(laws = laws) ~before ~after events =
  List.map (obligation_of laws) events
  @ [
      effects_obligation
        (Check_flow.applies_sq before)
        (Check_flow.applies_sq after);
      flow_obligation
        (Check_flow.scalar_props before)
        (Check_flow.scalar_props after);
    ]

let validate_chain ?(laws = laws) ~before ~after events =
  let per_event = List.map (obligation_of laws) events in
  let count_ops (c : Quil.chain) = List.length c.Quil.ops in
  let ops =
    if count_ops after <= count_ops before then
      {
        o_rule = "chain:op-count";
        o_ok = true;
        o_detail = "the chain pass only removes operators";
      }
    else
      {
        o_rule = "chain:op-count";
        o_ok = false;
        o_detail = "the chain pass added operators";
      }
  in
  let pda =
    match Check_pda.accepts after with
    | Ok _ ->
      {
        o_rule = "chain:well-formed";
        o_ok = true;
        o_detail = "the rewritten chain is accepted by the PDA";
      }
    | Error msg ->
      { o_rule = "chain:well-formed"; o_ok = false; o_detail = msg }
  in
  per_event @ [ ops; pda ]

let failures obs =
  List.filter_map
    (fun o ->
      if o.o_ok then None
      else Some (Printf.sprintf "%s: %s" o.o_rule o.o_detail))
    obs

let accepted obs = List.for_all (fun o -> o.o_ok) obs

let obligation_string o =
  Printf.sprintf "%s %-28s %s"
    (if o.o_ok then "ok      " else "REJECTED")
    o.o_rule o.o_detail
