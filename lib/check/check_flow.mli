(** Per-operator plan properties by forward abstract interpretation.

    A single bottom-up walk over the query AST computes, for every
    operator of the top-level spine, a record of static facts about the
    sequence that operator produces:

    - [card] — an interval enclosing the number of elements, seeded from
      [Range]/[Repeat]/captured-array literals and the {!Check_purity}
      interval analysis of [Take]/[Skip] counts;
    - [distinct] — three-valued: provably duplicate-free, provably
      containing a duplicate, or unknown;
    - [sorted_by] — the key and direction the sequence is provably
      ordered by, when any ([Range] is ascending by identity, [Order_by]
      establishes its own key, subsequence operators preserve it, [Rev]
      flips the direction);
    - [nonempty] — three-valued emptiness, derived from [card];
    - [pure_prefix] — no lambda anywhere in the plan applies a captured
      host function, so rewrites may delete or reorder operators without
      losing effects.

    The properties license the property-driven optimizer rules
    (redundant-[Distinct]/[Order_by] elimination), are re-derived by the
    translation validator {!Check_equiv} to discharge rewrite
    obligations, drive the SC008-SC011 lint rules, and annotate
    [Engine.explain] output.

    Like [Opt]'s empty-source collapse, the analysis reads captured
    array lengths as static facts: properties (and the rewrites they
    justify) specialize the plan to its captured values. *)

type tri =
  | Yes
  | No
  | Maybe

val tri_string : tri -> string
(** ["yes"], ["no"] or ["maybe"]. *)

type skey = Skey : ('a, 'k) Expr.lam * Query.order -> skey
(** A sortedness witness: key selector and direction.  Keys compare up
    to alpha-equivalence ({!Expr.alpha_equal_lam}). *)

type props = {
  card : Check_purity.itv;  (** element-count enclosure, [lo >= 0] *)
  distinct : tri;
  sorted_by : skey option;
  nonempty : tri;
  pure_prefix : bool;
}

val props : 'a Query.t -> props
(** Properties of the query's final output. *)

val scalar_props : 's Query.sq -> props
(** For a scalar query: [card] is exactly one and [pure_prefix] also
    covers the aggregate's own lambdas. *)

val annotate : 'a Query.t -> (string * props) list
(** Per-operator properties along the top-level spine, source first,
    with the linter's operator labels.  Nested sub-queries contribute
    only their summary to the embedding operator. *)

val annotate_scalar : 's Query.sq -> (string * props) list

val statically_empty : 'a Query.t -> bool
(** The cardinality upper bound is zero: the plan can never produce an
    element. *)

val sorted_matching : 'a Query.t -> ('a, 'k) Expr.lam -> Query.order -> bool
(** [sorted_matching q key dir] — [q]'s output is provably already
    sorted by an alpha-equivalent key in the same direction. *)

val applies : 'a Query.t -> int
(** Total host-function application sites over every expression in the
    plan — the effectful-lambda census the validator's no-duplication
    invariant compares across a rewrite. *)

val applies_sq : 's Query.sq -> int

(** {1 Rendering} *)

val card_string : Check_purity.itv -> string
(** ["5"] for an exact count, ["[0,*]"] style otherwise. *)

val props_string : props -> string
(** One-line rendering, e.g.
    ["card=[0,10] distinct=yes sorted=asc nonempty=maybe pure=yes"]. *)
