(** Mutable statement blocks with insertion points.

    The paper's code generator keeps the program as a linked list of
    statements with three insertion pointers — loop prelude [α], loop body
    [µ], loop postlude [ω] (Fig. 5) — arranged in a stack for nested
    queries (Fig. 9).  A {!t} is one such insertion point: a growable
    sequence of lines and sub-blocks.  Appending to a block inserts at
    that point regardless of what has been appended to enclosing or
    following blocks, which is exactly the pointer behaviour the paper
    relies on.

    Two kinds of sub-block exist because OCaml is scoped where C# is not:
    an {e inline} sub-block shares the scope of its parent (a [let]
    appended there is visible to statements appended to the parent
    afterwards), while an {e indented} sub-block is a delimited unit body
    (a [for]/[if] body), closed with [()] at render time. *)

type t

val create : unit -> t

val line : t -> string -> unit
(** Append one statement.  Statements must be self-terminating OCaml
    ("[let x = e in]", "[e;]"), so that concatenation in block order forms
    a valid unit-typed sequence. *)

val linef : t -> ('a, unit, string, unit) format4 -> 'a

val inline : t -> t
(** Append and return a sub-block sharing the parent's scope. *)

val indented : t -> t
(** Append and return a delimited sub-block (one indent level deeper,
    closed with a final [()] when rendered). *)

val render : ?indent:int -> t -> string
(** Render the block as OCaml source.  The caller is responsible for the
    surrounding function header; the rendered block is a unit-typed
    statement sequence {e without} a trailing [()] (append one, or a
    result expression, yourself). *)

val is_empty : t -> bool
