type t = { mutable rev_items : item list }

and item =
  | Line of string
  | Inline of t
  | Indented of t

let create () = { rev_items = [] }

let line t s = t.rev_items <- Line s :: t.rev_items

let linef t fmt = Printf.ksprintf (line t) fmt

let inline t =
  let child = create () in
  t.rev_items <- Inline child :: t.rev_items;
  child

let indented t =
  let child = create () in
  t.rev_items <- Indented child :: t.rev_items;
  child

let rec is_empty t =
  List.for_all
    (function
      | Line _ -> false
      | Inline b | Indented b -> is_empty b)
    t.rev_items

let render ?(indent = 0) t =
  let buf = Buffer.create 1024 in
  let pad n = String.make (2 * n) ' ' in
  let rec go level t =
    List.iter
      (function
        | Line s ->
          Buffer.add_string buf (pad level);
          Buffer.add_string buf s;
          Buffer.add_char buf '\n'
        | Inline b -> go level b
        | Indented b ->
          go (level + 1) b;
          (* Close the delimited body as a unit expression. *)
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_string buf "()\n")
      (List.rev t.rev_items)
  in
  go indent t;
  Buffer.contents buf
