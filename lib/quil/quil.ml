type render = Expr.name_env -> Expr.Capture_table.t -> string

type lam1 = {
  bind1 : string -> Expr.name_env -> Expr.name_env;
  body1 : render;
}

type lam2 = {
  bind2 : string -> string -> Expr.name_env -> Expr.name_env;
  body2 : render;
}

type src =
  | Src_array of { elem_ty : string; array : render }
  | Src_range of { start : render; count : render }
  | Src_repeat of { value : render; count : render }

type stateful_pred =
  | Take_n of render
  | Skip_n of render
  | Take_while_p of lam1
  | Skip_while_p of lam1

type sink =
  | Group_by_sink of { key : lam1 }
  | Group_by_elem_sink of { key : lam1; elem : lam1 }
  | Group_by_agg_sink of { key : lam1; seed : render; step : lam2 }
  | Group_by_agg_sorted_sink of {
      key : lam1;
      key_default : string;
      seed : render;
      step : lam2;
    }
  | Order_by_sink of { key : lam1; descending : bool }
  | Distinct_sink
  | Reverse_sink
  | To_array_sink

type acc = {
  seed : render;
  step : accs:string list -> elem:string -> render;
  first : (elem:string -> render) option;
}

type agg = {
  accs : acc list;
  first_element : bool;
  require_nonempty : bool;
  early_exit : (accs:string list -> render) option;
  result : accs:string list -> render;
}

type op =
  | Trans of lam1
  | Trans_nested of nested_scalar
  | Pred of lam1
  | Pred_nested of nested_scalar
  | Pred_stateful of stateful_pred
  | Trans_idx of lam2
  | Pred_idx of lam2
  | Nested of nested
  | Hash_join of hash_join
  | Sink of sink
  | Agg of agg

and hash_join = {
  join_inner : chain;
  join_inner_key : lam1;
  join_outer_key : lam1;
  join_result : lam2;
}

and nested = {
  bind_outer : string -> Expr.name_env -> Expr.name_env;
  inner : chain;
  result2 : lam2 option;
}

and nested_scalar = {
  bind_outer_s : string -> Expr.name_env -> Expr.name_env;
  inner_s : chain;
}

and chain = {
  src : src;
  ops : op list;
}

let returns_scalar chain =
  match List.rev chain.ops with
  | Agg _ :: _ -> true
  | _ -> false

(* Grammar check, mirroring the FSM of Fig. 4: Agg may only be the last
   symbol before Ret; everything else may chain freely. *)
let rec validate chain =
  let rec go = function
    | [] -> Ok ()
    | Agg _ :: (_ :: _ as rest) ->
      Error
        (Printf.sprintf
           "Agg must be the penultimate symbol (followed only by Ret), but \
            %d operators follow it"
           (List.length rest))
    | Agg _ :: [] -> Ok ()
    | Trans _ :: rest | Trans_idx _ :: rest | Pred _ :: rest
    | Pred_idx _ :: rest | Pred_stateful _ :: rest | Sink _ :: rest ->
      go rest
    | Trans_nested n :: rest | Pred_nested n :: rest -> (
      match validate n.inner_s with
      | Error _ as e -> e
      | Ok () ->
        if returns_scalar n.inner_s then go rest
        else Error "nested Trans/Pred sub-query must return a scalar \
                    (end in Agg)")
    | Nested n :: rest -> (
      match validate n.inner with
      | Error _ as e -> e
      | Ok () ->
        if returns_scalar n.inner then
          Error "SelectMany sub-query must return a collection, not a scalar"
        else go rest)
    | Hash_join j :: rest -> (
      match validate j.join_inner with
      | Error _ as e -> e
      | Ok () ->
        if returns_scalar j.join_inner then
          Error "hash-join build side must be a collection"
        else go rest)
  in
  go chain.ops

let rec symbol_string chain =
  String.concat " " (("Src" :: List.map op_symbol chain.ops) @ [ "Ret" ])

and op_symbol = function
  | Trans _ -> "Trans"
  | Trans_idx _ -> "Trans"
  | Trans_nested n -> Printf.sprintf "Trans[%s]" (symbol_string n.inner_s)
  | Pred _ -> "Pred"
  | Pred_idx _ -> "Pred"
  | Pred_nested n -> Printf.sprintf "Pred[%s]" (symbol_string n.inner_s)
  | Pred_stateful _ -> "Pred"
  | Nested n -> Printf.sprintf "[%s]" (symbol_string n.inner)
  | Hash_join j -> Printf.sprintf "HashJoin[%s]" (symbol_string j.join_inner)
  | Sink (Group_by_sink _) -> "Sink:GroupBy"
  | Sink (Group_by_elem_sink _) -> "Sink:GroupBy"
  | Sink (Group_by_agg_sink _) -> "Sink:GroupByAggregate"
  | Sink (Group_by_agg_sorted_sink _) -> "Sink:GroupByAggregateSorted"
  | Sink (Order_by_sink _) -> "Sink:OrderBy"
  | Sink Distinct_sink -> "Sink:Distinct"
  | Sink Reverse_sink -> "Sink:Reverse"
  | Sink To_array_sink -> "Sink:ToArray"
  | Agg _ -> "Agg"

let rec operator_count chain =
  let op_count = function
    | Trans _ | Trans_idx _ | Pred _ | Pred_idx _ | Pred_stateful _
    | Sink _ | Agg _ ->
      1
    | Trans_nested n | Pred_nested n -> 1 + operator_count n.inner_s
    | Nested n -> 1 + operator_count n.inner
    | Hash_join j -> 1 + operator_count j.join_inner
  in
  1 + List.fold_left (fun acc op -> acc + op_count op) 0 chain.ops

let map_nested f = function
  | Trans_nested n -> Trans_nested { n with inner_s = f n.inner_s }
  | Pred_nested n -> Pred_nested { n with inner_s = f n.inner_s }
  | Nested n -> Nested { n with inner = f n.inner }
  | Hash_join j -> Hash_join { j with join_inner = f j.join_inner }
  | (Trans _ | Trans_idx _ | Pred _ | Pred_idx _ | Pred_stateful _
    | Sink _ | Agg _) as op ->
    op
