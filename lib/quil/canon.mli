(** Canonicalization: lower the typed query AST into a QUIL operator chain
    (section 3.1 — "Steno translates this AST into a chain of operators,
    by post-order traversing the tree, and yielding a canonical operator
    for each method-call expression").

    Responsibilities:
    - map each LINQ-level operator to its QUIL class per Table 1;
    - inline lambdas as render closures (after {!Expr.simplify});
    - desugar [Join] into the nested SelectMany-Where form the paper uses
      for equi-joins (section 5);
    - construct type-specialized aggregation plans (e.g. [Min] over floats
      seeds with [infinity]; generic element types fall back to
      first-element semantics with a type-derived placeholder seed). *)

exception Unsupported of string
(** Raised for queries outside the code-generatable fragment (e.g. a
    seedless aggregate over a type with no default literal). *)

val hash_join_enabled : bool ref
(** When true (default), [Join] lowers to the specialized hash join;
    when false, to the paper's nested SelectMany-Where loop. *)

val sorted_group_enabled : bool ref
(** When true (default), a [Group_by_agg] whose input is an [Order_by] on
    an alpha-equal key lowers to the one-pass sorted sink with O(1) live
    aggregation state (section 4.3). *)

val of_query : 'a Query.t -> Quil.chain

val of_scalar : 's Query.sq -> Quil.chain
(** The resulting chain always ends in [Agg]. *)

val of_specialized : 'a Query.t -> Quil.chain
(** Lower a query that has already been through {!Specialize.query} —
    for drivers that run (and account for) the specialization pass
    themselves. *)

val of_specialized_scalar : 's Query.sq -> Quil.chain

val default_literal : 'a Ty.t -> string option
(** OCaml source for a placeholder value of the type, used to initialize
    first-element accumulators; [None] when the type has no closed literal
    form (functions). *)
