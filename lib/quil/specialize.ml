let enabled = ref true

exception Not_applicable

(* -------------------------------------------------------------------- *)
(* Counting pattern: rewrite a lambda over (key, values array) into a
   lambda over (key, count), allowing the group variable to appear only
   as [Fst g] or [Array_length (Snd g)]. *)

let rec rewrite_count :
    type k a e.
    (k * a array) Expr.var -> (k * int) Expr.var -> e Expr.t -> e Expr.t =
 fun g g' e ->
  let r : type x. x Expr.t -> x Expr.t = fun e -> rewrite_count g g' e in
  match e with
  | Expr.Array_length (Expr.Snd (Expr.Var v)) when v.Expr.id = g.Expr.id ->
    (* The result type is [int] on both sides. *)
    Expr.Snd (Expr.Var g')
  | Expr.Fst (Expr.Var v) when v.Expr.id = g.Expr.id -> (
    match Ty.equal v.Expr.var_ty g.Expr.var_ty with
    | Some Ty.Refl -> Expr.Fst (Expr.Var g')
    | None -> raise Not_applicable)
  | Expr.Var v ->
    if v.Expr.id = g.Expr.id then raise Not_applicable else e
  | Expr.Const_unit | Expr.Const_bool _ | Expr.Const_int _
  | Expr.Const_float _ | Expr.Const_string _ | Expr.Capture _ ->
    e
  | Expr.If (c, a, b) -> Expr.If (r c, r a, r b)
  | Expr.Let (v, e1, body) -> Expr.Let (v, r e1, r body)
  | Expr.Pair (a, b) -> Expr.Pair (r a, r b)
  | Expr.Fst a -> Expr.Fst (r a)
  | Expr.Snd a -> Expr.Snd (r a)
  | Expr.Triple (a, b, c) -> Expr.Triple (r a, r b, r c)
  | Expr.Proj3_1 a -> Expr.Proj3_1 (r a)
  | Expr.Proj3_2 a -> Expr.Proj3_2 (r a)
  | Expr.Proj3_3 a -> Expr.Proj3_3 (r a)
  | Expr.Prim1 (p, a) -> Expr.Prim1 (p, r a)
  | Expr.Prim2 (p, a, b) -> Expr.Prim2 (p, r a, r b)
  | Expr.Array_get (arr, i) -> Expr.Array_get (r arr, r i)
  | Expr.Array_length arr -> Expr.Array_length (r arr)
  | Expr.Apply (f, a) -> Expr.Apply (r f, r a)

(* Result-selector pattern: rewrite an expression mentioning the group
   variable's key ([Fst g]) and the fold accumulator into an expression
   over the (key, aggregate) pair produced by GroupByAggregate. *)
let rec rewrite_result :
    type k a s e.
    (k * a array) Expr.var ->
    s Expr.var ->
    (k * s) Expr.var ->
    e Expr.t ->
    e Expr.t =
 fun g acc p e ->
  let r : type x. x Expr.t -> x Expr.t = fun e -> rewrite_result g acc p e in
  match e with
  | Expr.Fst (Expr.Var v) when v.Expr.id = g.Expr.id -> (
    match Ty.equal v.Expr.var_ty g.Expr.var_ty with
    | Some Ty.Refl -> Expr.Fst (Expr.Var p)
    | None -> raise Not_applicable)
  | Expr.Var v when v.Expr.id = acc.Expr.id -> (
    match Ty.equal v.Expr.var_ty acc.Expr.var_ty with
    | Some Ty.Refl -> Expr.Snd (Expr.Var p)
    | None -> raise Not_applicable)
  | Expr.Var v ->
    if v.Expr.id = g.Expr.id then raise Not_applicable else e
  | Expr.Const_unit | Expr.Const_bool _ | Expr.Const_int _
  | Expr.Const_float _ | Expr.Const_string _ | Expr.Capture _ ->
    e
  | Expr.If (c, a, b) -> Expr.If (r c, r a, r b)
  | Expr.Let (v, e1, body) -> Expr.Let (v, r e1, r body)
  | Expr.Pair (a, b) -> Expr.Pair (r a, r b)
  | Expr.Fst a -> Expr.Fst (r a)
  | Expr.Snd a -> Expr.Snd (r a)
  | Expr.Triple (a, b, c) -> Expr.Triple (r a, r b, r c)
  | Expr.Proj3_1 a -> Expr.Proj3_1 (r a)
  | Expr.Proj3_2 a -> Expr.Proj3_2 (r a)
  | Expr.Proj3_3 a -> Expr.Proj3_3 (r a)
  | Expr.Prim1 (p1, a) -> Expr.Prim1 (p1, r a)
  | Expr.Prim2 (p2, a, b) -> Expr.Prim2 (p2, r a, r b)
  | Expr.Array_get (arr, i) -> Expr.Array_get (r arr, r i)
  | Expr.Array_length arr -> Expr.Array_length (r arr)
  | Expr.Apply (f, a) -> Expr.Apply (r f, r a)

let mentions_var id e = List.mem id (Expr.free_var_ids e)

(* -------------------------------------------------------------------- *)
(* Folding pattern: a scalar sub-query whose source is exactly the group's
   values array, optionally through one element-wise Select. *)

(* Elements of the group are ['a]; the fold consumes ['e] elements
   produced by the optional mapping lambda. *)
type ('a, 'e) group_src =
  | Direct : ('a, 'a) group_src
  | Mapped : ('a, 'e) Expr.lam -> ('a, 'e) group_src

type ('a, 's) fold_plan = {
  fp_seed : 's Expr.t;
  fp_step : ('s, 'a, 's) Expr.lam2;
}

(* A recognized fold over the group's values: the plan plus the builder of
   the final expression from the accumulator variable. *)
type ('e, 'b) fold_parts =
  | Parts :
      ('e, 's) fold_plan * ('s Expr.var -> 'b Expr.t)
      -> ('e, 'b) fold_parts

let snd_array_ty : type k a. (k * a array) Expr.var -> a array Ty.t =
 fun g -> match g.Expr.var_ty with Ty.Pair (_, arr_ty) -> arr_ty

let match_group_src :
    type k a e.
    (k * a array) Expr.var -> e Query.t -> (a, e) group_src option =
 fun g src ->
  let is_group_values : type x. x array Expr.t -> bool = function
    | Expr.Snd (Expr.Var v) -> v.Expr.id = g.Expr.id
    | _ -> false
  in
  match src with
  | Query.Of_array (ty, arr) when is_group_values arr -> (
    (* The source elements are the group's values, so [e = a]. *)
    match Ty.equal (Ty.Array ty) (snd_array_ty g) with
    | Some Ty.Refl -> Some Direct
    | None -> None)
  | Query.Select (Query.Of_array (ty, arr), lam) when is_group_values arr -> (
    match Ty.equal (Ty.Array ty) (snd_array_ty g) with
    | Some Ty.Refl ->
      if mentions_var g.Expr.id lam.Expr.body then None else Some (Mapped lam)
    | None -> None)
  | _ -> None

(* Compose the fold with the optional element mapping: the specialized
   step consumes raw group elements. *)
let compose_step :
    type a e s.
    (a, e) group_src -> s Expr.t -> (s, e, s) Expr.lam2 -> a Ty.t ->
    (a, s) fold_plan =
 fun src seed step elem_ty ->
  match src with
  | Direct -> { fp_seed = seed; fp_step = step }
  | Mapped lam ->
    let acc = Expr.fresh_var "acc" (Expr.ty_of seed) in
    let x = Expr.fresh_var "x" elem_ty in
    let mapped = Expr.subst lam.Expr.param (Expr.Var x) lam.Expr.body in
    let body =
      Expr.subst step.Expr.param1 (Expr.Var acc)
        (Expr.subst step.Expr.param2 mapped step.Expr.body2)
    in
    { fp_seed = seed; fp_step = { Expr.param1 = acc; param2 = x; body2 = body } }

(* Pre-compose an element selector (Group_by_elem) so the plan consumes
   the raw source elements. *)
let compose_pre :
    type a e s. (a, e) Expr.lam -> (e, s) fold_plan -> (a, s) fold_plan =
 fun pre plan ->
  let acc = Expr.fresh_var "acc" (Expr.ty_of plan.fp_seed) in
  let x = Expr.fresh_var "x" pre.Expr.param.Expr.var_ty in
  let mapped = Expr.subst pre.Expr.param (Expr.Var x) pre.Expr.body in
  let body =
    Expr.subst plan.fp_step.Expr.param1 (Expr.Var acc)
      (Expr.subst plan.fp_step.Expr.param2 mapped plan.fp_step.Expr.body2)
  in
  {
    fp_seed = plan.fp_seed;
    fp_step = { Expr.param1 = acc; param2 = x; body2 = body };
  }

let const_step :
    type a s. s Expr.t -> (s Expr.t -> s Expr.t) -> a Ty.t -> (a, s) fold_plan
    =
 fun seed f elem_ty ->
  let acc = Expr.fresh_var "acc" (Expr.ty_of seed) in
  let x = Expr.fresh_var "x" elem_ty in
  {
    fp_seed = seed;
    fp_step = { Expr.param1 = acc; param2 = x; body2 = f (Expr.Var acc) };
  }

(* -------------------------------------------------------------------- *)

let rec query : type a. a Query.t -> a Query.t =
 fun q -> if not !enabled then q else query_always q

and query_always : type a. a Query.t -> a Query.t = function
  | Query.Of_array (_, _) as q -> q
  | Query.Range (_, _) as q -> q
  | Query.Repeat (_, _, _) as q -> q
  | Query.Select (Query.Group_by (q0, key), lam) -> (
    let q0 = query_always q0 in
    match count_pattern q0 key lam with
    | Some specialized -> specialized
    | None -> Query.Select (Query.Group_by (q0, key), lam))
  | Query.Select (Query.Group_by_elem (q0, key, elem), lam) -> (
    (* Counting is insensitive to the element selector. *)
    let q0 = query_always q0 in
    match count_pattern q0 key lam with
    | Some specialized -> specialized
    | None -> Query.Select (Query.Group_by_elem (q0, key, elem), lam))
  | Query.Select_q (Query.Group_by (q0, key), g, sq) -> (
    let q0 = query_always q0 in
    match fold_pattern q0 key None g sq with
    | Some specialized -> specialized
    | None -> Query.Select_q (Query.Group_by (q0, key), g, scalar_always sq))
  | Query.Select_q (Query.Group_by_elem (q0, key, elem), g, sq) -> (
    let q0 = query_always q0 in
    match fold_pattern q0 key (Some elem) g sq with
    | Some specialized -> specialized
    | None ->
      Query.Select_q (Query.Group_by_elem (q0, key, elem), g, scalar_always sq))
  | Query.Select (q, lam) -> Query.Select (query_always q, lam)
  | Query.Select_i (q, lam2) -> Query.Select_i (query_always q, lam2)
  | Query.Select_q (q, v, sq) ->
    Query.Select_q (query_always q, v, scalar_always sq)
  | Query.Where (q, lam) -> Query.Where (query_always q, lam)
  | Query.Where_i (q, lam2) -> Query.Where_i (query_always q, lam2)
  | Query.Where_q (q, v, sq) ->
    Query.Where_q (query_always q, v, scalar_always sq)
  | Query.Take (q, n) -> Query.Take (query_always q, n)
  | Query.Skip (q, n) -> Query.Skip (query_always q, n)
  | Query.Take_while (q, lam) -> Query.Take_while (query_always q, lam)
  | Query.Skip_while (q, lam) -> Query.Skip_while (query_always q, lam)
  | Query.Select_many (q, v, inner) ->
    Query.Select_many (query_always q, v, query_always inner)
  | Query.Select_many_result (q, v, inner, lam2) ->
    Query.Select_many_result (query_always q, v, query_always inner, lam2)
  | Query.Join (outer, inner, ok, ik, res) ->
    Query.Join (query_always outer, query_always inner, ok, ik, res)
  | Query.Group_by (q, key) -> Query.Group_by (query_always q, key)
  | Query.Group_by_elem (q, key, elem) ->
    Query.Group_by_elem (query_always q, key, elem)
  | Query.Group_by_agg (q, key, seed, step) ->
    Query.Group_by_agg (query_always q, key, seed, step)
  | Query.Order_by (q, key, dir) -> Query.Order_by (query_always q, key, dir)
  | Query.Distinct q -> Query.Distinct (query_always q)
  | Query.Rev q -> Query.Rev (query_always q)
  | Query.Materialize q -> Query.Materialize (query_always q)

and scalar : type s. s Query.sq -> s Query.sq =
 fun sq -> if not !enabled then sq else scalar_always sq

and scalar_always : type s. s Query.sq -> s Query.sq = function
  | Query.Aggregate (q, seed, step) -> Query.Aggregate (query_always q, seed, step)
  | Query.Aggregate_combinable (q, seed, step, combine) ->
    Query.Aggregate_combinable (query_always q, seed, step, combine)
  | Query.Aggregate_full (q, seed, step, result) ->
    Query.Aggregate_full (query_always q, seed, step, result)
  | Query.Sum_int q -> Query.Sum_int (query_always q)
  | Query.Sum_float q -> Query.Sum_float (query_always q)
  | Query.Count q -> Query.Count (query_always q)
  | Query.Average q -> Query.Average (query_always q)
  | Query.Min q -> Query.Min (query_always q)
  | Query.Max q -> Query.Max (query_always q)
  | Query.Min_by (q, key) -> Query.Min_by (query_always q, key)
  | Query.Max_by (q, key) -> Query.Max_by (query_always q, key)
  | Query.First q -> Query.First (query_always q)
  | Query.Last q -> Query.Last (query_always q)
  | Query.Element_at (q, n) -> Query.Element_at (query_always q, n)
  | Query.Any q -> Query.Any (query_always q)
  | Query.Exists (q, lam) -> Query.Exists (query_always q, lam)
  | Query.For_all (q, lam) -> Query.For_all (query_always q, lam)
  | Query.Contains (q, v) -> Query.Contains (query_always q, v)
  | Query.Map_scalar (sq, lam) -> Query.Map_scalar (scalar_always sq, lam)

(* group_by key |> select (fun g -> ...count...) *)
and count_pattern :
    type k a e b.
    a Query.t ->
    (a, k) Expr.lam ->
    ((k * e array), b) Expr.lam ->
    b Query.t option =
 fun q0 key lam ->
  let g = lam.Expr.param in
  let g' =
    Expr.fresh_var "kc" (Ty.Pair (Expr.ty_of key.Expr.body, Ty.Int))
  in
  match rewrite_count g g' lam.Expr.body with
  | body' ->
    let counter =
      Expr.lam2 "acc" Ty.Int "x" (Query.elem_ty q0) (fun acc _ ->
          Expr.Prim2 (Prim.Add_int, acc, Expr.Const_int 1))
    in
    Some
      (Query.Select
         ( Query.Group_by_agg (q0, key, Expr.Const_int 0, counter),
           { Expr.param = g'; body = body' } ))
  | exception Not_applicable -> None

(* group_by key |> select_sq (fun g -> <fold over (snd g)>), optionally
   through an element selector (Group_by_elem) and/or a Map_scalar
   post-processing of the aggregate. *)
and fold_pattern :
    type k a e b.
    a Query.t ->
    (a, k) Expr.lam ->
    (a, e) Expr.lam option ->
    (k * e array) Expr.var ->
    b Query.sq ->
    b Query.t option =
 fun q0 key pre g sq ->
  let elem_ty : e Ty.t =
    match pre with
    | Some lam -> Expr.ty_of lam.Expr.body
    | None -> (
      (* Without a selector the group elements are the source elements. *)
      match g.Expr.var_ty with Ty.Pair (_, Ty.Array t) -> t)
  in
  let build :
      type s.
      (e, s) fold_plan -> result:(s Expr.var -> b Expr.t) -> b Query.t option =
   fun plan ~result ->
    if mentions_var g.Expr.id plan.fp_seed then None
    else if mentions_var g.Expr.id plan.fp_step.Expr.body2 then None
    else begin
      (* Consume raw source elements: compose the element selector. *)
      let plan_a : (a, s) fold_plan =
        match pre with
        | Some lam ->
          if mentions_var g.Expr.id lam.Expr.body then raise Not_applicable
          else compose_pre lam plan
        | None -> (
          (* e = a in this case; witness via the group variable's type
             against the source element type. *)
          match
            Ty.equal g.Expr.var_ty
              (Ty.Pair (Expr.ty_of key.Expr.body, Ty.Array (Query.elem_ty q0)))
          with
          | Some Ty.Refl -> plan
          | None -> raise Not_applicable)
      in
      let p =
        Expr.fresh_var "ks"
          (Ty.Pair (Expr.ty_of key.Expr.body, Expr.ty_of plan.fp_seed))
      in
      let gba = Query.Group_by_agg (q0, key, plan_a.fp_seed, plan_a.fp_step) in
      let acc = Expr.fresh_var "acc" (Expr.ty_of plan.fp_seed) in
      match rewrite_result g acc p (result acc) with
      | body -> Some (Query.Select (gba, { Expr.param = p; body }))
      | exception Not_applicable -> None
    end
  in
  (* Decompose the scalar query into a fold plan over the group's values
     plus a result builder. *)
  let rec parts : type r. r Query.sq -> (e, r) fold_parts option = function
    | Query.Sum_int src -> (
      match match_group_src g src with
      | Some gs ->
        Some
          (Parts
             ( compose_step gs (Expr.Const_int 0)
                 (Expr.lam2 "acc" Ty.Int "x" Ty.Int (fun acc x ->
                      Expr.Prim2 (Prim.Add_int, acc, x)))
                 elem_ty,
               fun acc -> Expr.Var acc ))
      | None -> None)
    | Query.Sum_float src -> (
      match match_group_src g src with
      | Some gs ->
        Some
          (Parts
             ( compose_step gs (Expr.Const_float 0.0)
                 (Expr.lam2 "acc" Ty.Float "x" Ty.Float (fun acc x ->
                      Expr.Prim2 (Prim.Add_float, acc, x)))
                 elem_ty,
               fun acc -> Expr.Var acc ))
      | None -> None)
    | Query.Count src -> (
      match match_group_src g src with
      | Some _ ->
        Some
          (Parts
             ( const_step (Expr.Const_int 0)
                 (fun acc -> Expr.Prim2 (Prim.Add_int, acc, Expr.Const_int 1))
                 elem_ty,
               fun acc -> Expr.Var acc ))
      | None -> None)
    | Query.Aggregate (src, seed, step) -> (
      match match_group_src g src with
      | Some gs ->
        Some (Parts (compose_step gs seed step elem_ty, fun acc -> Expr.Var acc))
      | None -> None)
    | Query.Aggregate_combinable (src, seed, step, _) -> (
      match match_group_src g src with
      | Some gs ->
        Some (Parts (compose_step gs seed step elem_ty, fun acc -> Expr.Var acc))
      | None -> None)
    | Query.Aggregate_full (src, seed, step, res) -> (
      match match_group_src g src with
      | Some gs ->
        Some
          (Parts
             ( compose_step gs seed step elem_ty,
               fun acc -> Expr.subst res.Expr.param (Expr.Var acc) res.Expr.body
             ))
      | None -> None)
    | Query.Map_scalar (inner, post) -> (
      match parts inner with
      | Some (Parts (plan, mk)) ->
        Some
          (Parts
             ( plan,
               fun acc ->
                 Expr.subst post.Expr.param (mk acc) post.Expr.body ))
      | None -> None)
    | Query.Average _ | Query.Min _ | Query.Max _ | Query.Min_by _
    | Query.Max_by _ | Query.First _ | Query.Last _ | Query.Element_at _
    | Query.Any _ | Query.Exists _ | Query.For_all _ | Query.Contains _ ->
      None
  in
  match parts sq with
  | Some (Parts (plan, mk)) -> (
    try build plan ~result:mk with Not_applicable -> None)
  | None -> None
