exception Unsupported of string

(* Equi-joins lower to a hash join by default; disable to get the paper's
   literal nested SelectMany-Where loop (the ablation benchmark compares
   the two). *)
let hash_join_enabled = ref true

(* Recognize GroupByAggregate over input sorted by the same key and use
   the one-pass, O(1)-state sink (section 4.3's memory note). *)
let sorted_group_enabled = ref true

let rec default_literal : type a. a Ty.t -> string option = function
  | Ty.Unit -> Some "()"
  | Ty.Bool -> Some "false"
  | Ty.Int -> Some "0"
  | Ty.Float -> Some "0."
  | Ty.String -> Some "\"\""
  | Ty.Pair (a, b) -> (
    match default_literal a, default_literal b with
    | Some da, Some db -> Some (Printf.sprintf "(%s, %s)" da db)
    | _, _ -> None)
  | Ty.Triple (a, b, c) -> (
    match default_literal a, default_literal b, default_literal c with
    | Some da, Some db, Some dc ->
      Some (Printf.sprintf "(%s, %s, %s)" da db dc)
    | _, _, _ -> None)
  | Ty.Array _ -> Some "[||]"
  | Ty.List _ -> Some "[]"
  | Ty.Option _ -> Some "None"
  | Ty.Func (_, _) -> None

(* Render closures: printing is deferred until the code generator has
   chosen variable names and created the capture table. *)

let render_expr e : Quil.render =
 fun nenv tbl -> Expr.print ~captures:tbl nenv e

let literal s : Quil.render = fun _ _ -> s

let lam1_of (l : (_, _) Expr.lam) : Quil.lam1 =
  let body = Expr.simplify l.Expr.body in
  {
    Quil.bind1 = (fun name nenv -> Expr.name_env_add l.Expr.param name nenv);
    body1 = render_expr body;
  }

let lam2_of (l : (_, _, _) Expr.lam2) : Quil.lam2 =
  let body = Expr.simplify l.Expr.body2 in
  {
    Quil.bind2 =
      (fun n1 n2 nenv ->
        Expr.name_env_add l.Expr.param1 n1
          (Expr.name_env_add l.Expr.param2 n2 nenv));
    body2 = render_expr body;
  }

let bind_var v = fun name nenv -> Expr.name_env_add v name nenv

let append chain op = { chain with Quil.ops = chain.Quil.ops @ [ op ] }

(* Aggregation plans.  [accs] passed to step/result are already
   dereferenced, parenthesized accumulator expressions. *)

let acc1 x = function [ a ] -> x a | _ -> assert false
let acc2 x = function [ a; b ] -> x a b | _ -> assert false

let fold_agg ~seed ~(step : Quil.lam2) ?(result : Quil.lam1 option) () : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed;
          step =
            (fun ~accs ~elem nenv tbl ->
              acc1 (fun a -> step.Quil.body2 (step.Quil.bind2 a elem nenv) tbl) accs);
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = false;
    early_exit = None;
    result =
      (fun ~accs nenv tbl ->
        acc1
          (fun a ->
            match result with
            | None -> a
            | Some r -> r.Quil.body1 (r.Quil.bind1 a nenv) tbl)
          accs);
  }

let simple_fold ?early_exit ~seed ~step_code () : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed = literal seed;
          step = (fun ~accs ~elem _ _ -> acc1 (fun a -> step_code a elem) accs);
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = false;
    early_exit;
    result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
  }

let sum_int_agg =
  simple_fold ~seed:"0" ~step_code:(fun a e -> Printf.sprintf "(%s + %s)" a e) ()

let sum_float_agg =
  simple_fold ~seed:"0."
    ~step_code:(fun a e -> Printf.sprintf "(%s +. %s)" a e)
    ()

let count_agg =
  simple_fold ~seed:"0" ~step_code:(fun a _ -> Printf.sprintf "(%s + 1)" a) ()

let average_agg : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed = literal "0.";
          step =
            (fun ~accs ~elem _ _ ->
              acc2 (fun s _ -> Printf.sprintf "(%s +. %s)" s elem) accs);
          first = None;
        };
        {
          Quil.seed = literal "0";
          step =
            (fun ~accs ~elem:_ _ _ ->
              acc2 (fun _ n -> Printf.sprintf "(%s + 1)" n) accs);
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = true;
    early_exit = None;
    result =
      (fun ~accs _ _ ->
        acc2
          (fun s n -> Printf.sprintf "(%s /. Stdlib.float_of_int %s)" s n)
          accs);
  }

(* Min/Max: floats and ints get a neutral seed and a primitive comparison;
   other element types fall back to first-element semantics seeded with a
   type-derived placeholder. *)
let extremum_agg (type a) ~(is_min : bool) (ty : a Ty.t) : Quil.agg =
  let cmp_step op a e = Printf.sprintf "(if %s %s %s then %s else %s)" e op a e a in
  let op = if is_min then "<" else ">" in
  match ty with
  | Ty.Float ->
    let fn = if is_min then "Stdlib.Float.min" else "Stdlib.Float.max" in
    {
      Quil.accs =
        [
          {
            Quil.seed = literal (if is_min then "Stdlib.infinity" else "Stdlib.neg_infinity");
            step =
              (fun ~accs ~elem _ _ ->
                acc1 (fun a -> Printf.sprintf "(%s %s %s)" fn a elem) accs);
            first = None;
          };
        ];
      first_element = false;
      require_nonempty = true;
      early_exit = None;
      result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
    }
  | Ty.Int ->
    {
      Quil.accs =
        [
          {
            Quil.seed = literal (if is_min then "Stdlib.max_int" else "Stdlib.min_int");
            step =
              (fun ~accs ~elem _ _ -> acc1 (fun a -> cmp_step op a elem) accs);
            first = None;
          };
        ];
      first_element = false;
      require_nonempty = true;
      early_exit = None;
      result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
    }
  | other -> (
    match default_literal other with
    | None ->
      raise
        (Unsupported
           "Min/Max over a type with no default literal (e.g. functions)")
    | Some dflt ->
      {
        Quil.accs =
          [
            {
              Quil.seed = literal dflt;
              step =
                (fun ~accs ~elem _ _ -> acc1 (fun a -> cmp_step op a elem) accs);
              first = Some (fun ~elem _ _ -> elem);
            };
          ];
        first_element = true;
        require_nonempty = true;
        early_exit = None;
        result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
      })

let extremum_by_agg (type a k) ~(is_min : bool) (elt_ty : a Ty.t)
    (key_ty : k Ty.t) (key : Quil.lam1) : Quil.agg =
  let op = if is_min then "<" else ">" in
  let dflt ty what =
    match default_literal ty with
    | Some d -> d
    | None ->
      raise
        (Unsupported
           (Printf.sprintf
              "MinBy/MaxBy %s type has no default literal" what))
  in
  let elt_dflt = dflt elt_ty "element" in
  let key_dflt = dflt key_ty "key" in
  let key_of elem nenv tbl = key.Quil.body1 (key.Quil.bind1 elem nenv) tbl in
  {
    Quil.accs =
      [
        (* Best element; the placeholder seeds are never read before the
           first element overwrites them. *)
        {
          Quil.seed = literal elt_dflt;
          step =
            (fun ~accs ~elem nenv tbl ->
              acc2
                (fun best best_key ->
                  Printf.sprintf "(if %s %s %s then %s else %s)"
                    (key_of elem nenv tbl) op best_key elem best)
                accs);
          first = Some (fun ~elem _ _ -> elem);
        };
        (* Best key; bind the key once so it is not recomputed. *)
        {
          Quil.seed = literal key_dflt;
          step =
            (fun ~accs ~elem nenv tbl ->
              acc2
                (fun _ best_key ->
                  Printf.sprintf
                    "(let __k = %s in if __k %s %s then __k else %s)"
                    (key_of elem nenv tbl) op best_key best_key)
                accs);
          first = Some (fun ~elem nenv tbl -> key_of elem nenv tbl);
        };
      ];
    first_element = true;
    require_nonempty = true;
    early_exit = None;
    result = (fun ~accs _ _ -> acc2 (fun best _ -> best) accs);
  }

let first_agg (type a) (elt_ty : a Ty.t) : Quil.agg =
  let dflt =
    match default_literal elt_ty with
    | Some d -> d
    | None -> raise (Unsupported "First over a type with no default literal")
  in
  {
    Quil.accs =
      [
        {
          Quil.seed = literal dflt;
          step = (fun ~accs ~elem:_ _ _ -> acc1 (fun a -> a) accs);
          first = Some (fun ~elem _ _ -> elem);
        };
      ];
    first_element = true;
    require_nonempty = true;
    early_exit = Some (fun ~accs:_ _ _ -> "true");
    result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
  }

let last_agg (type a) (elt_ty : a Ty.t) : Quil.agg =
  let dflt =
    match default_literal elt_ty with
    | Some d -> d
    | None -> raise (Unsupported "Last over a type with no default literal")
  in
  {
    Quil.accs =
      [
        {
          Quil.seed = literal dflt;
          step = (fun ~accs:_ ~elem _ _ -> elem);
          first = Some (fun ~elem _ _ -> elem);
        };
      ];
    first_element = false;
    require_nonempty = true;
    early_exit = None;
    result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
  }

let any_agg =
  simple_fold ~seed:"false"
    ~step_code:(fun _ _ -> "true")
    ~early_exit:(fun ~accs _ _ -> acc1 (fun a -> a) accs)
    ()

let exists_agg (p : Quil.lam1) : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed = literal "false";
          step =
            (fun ~accs ~elem nenv tbl ->
              acc1
                (fun a ->
                  Printf.sprintf "(%s || %s)" a
                    (p.Quil.body1 (p.Quil.bind1 elem nenv) tbl))
                accs);
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = false;
    early_exit = Some (fun ~accs _ _ -> acc1 (fun a -> a) accs);
    result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
  }

let for_all_agg (p : Quil.lam1) : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed = literal "true";
          step =
            (fun ~accs ~elem nenv tbl ->
              acc1
                (fun a ->
                  Printf.sprintf "(%s && %s)" a
                    (p.Quil.body1 (p.Quil.bind1 elem nenv) tbl))
                accs);
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = false;
    early_exit = Some (fun ~accs _ _ -> acc1 (fun a -> Printf.sprintf "(not %s)" a) accs);
    result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
  }

let contains_agg (v : Quil.render) : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed = literal "false";
          step =
            (fun ~accs ~elem nenv tbl ->
              acc1
                (fun a ->
                  Printf.sprintf "(%s || (%s = %s))" a elem (v nenv tbl))
                accs);
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = false;
    early_exit = Some (fun ~accs _ _ -> acc1 (fun a -> a) accs);
    result = (fun ~accs _ _ -> acc1 (fun a -> a) accs);
  }

(* Lowering. *)

let rec lower : type a. a Query.t -> Quil.chain = function
  | Query.Of_array (ty, arr) ->
    {
      Quil.src =
        Quil.Src_array
          {
            elem_ty = Ty.to_string ty;
            array = render_expr (Expr.simplify arr);
          };
      ops = [];
    }
  | Query.Range (start, count) ->
    {
      Quil.src =
        Quil.Src_range
          {
            start = render_expr (Expr.simplify start);
            count = render_expr (Expr.simplify count);
          };
      ops = [];
    }
  | Query.Repeat (_, v, count) ->
    {
      Quil.src =
        Quil.Src_repeat
          {
            value = render_expr (Expr.simplify v);
            count = render_expr (Expr.simplify count);
          };
      ops = [];
    }
  | Query.Select (q, lam) -> append (lower q) (Quil.Trans (lam1_of lam))
  | Query.Select_i (q, lam2) ->
    append (lower q) (Quil.Trans_idx (lam2_of lam2))
  | Query.Select_q (q, v, sq) ->
    append (lower q)
      (Quil.Trans_nested
         { Quil.bind_outer_s = bind_var v; inner_s = lower_scalar sq })
  | Query.Where (q, lam) -> append (lower q) (Quil.Pred (lam1_of lam))
  | Query.Where_i (q, lam2) ->
    append (lower q) (Quil.Pred_idx (lam2_of lam2))
  | Query.Where_q (q, v, sq) ->
    append (lower q)
      (Quil.Pred_nested
         { Quil.bind_outer_s = bind_var v; inner_s = lower_scalar sq })
  | Query.Take (q, n) ->
    append (lower q)
      (Quil.Pred_stateful (Quil.Take_n (render_expr (Expr.simplify n))))
  | Query.Skip (q, n) ->
    append (lower q)
      (Quil.Pred_stateful (Quil.Skip_n (render_expr (Expr.simplify n))))
  | Query.Take_while (q, lam) ->
    append (lower q)
      (Quil.Pred_stateful (Quil.Take_while_p (lam1_of lam)))
  | Query.Skip_while (q, lam) ->
    append (lower q)
      (Quil.Pred_stateful (Quil.Skip_while_p (lam1_of lam)))
  | Query.Select_many (q, v, inner) ->
    append (lower q)
      (Quil.Nested
         { Quil.bind_outer = bind_var v; inner = lower inner; result2 = None })
  | Query.Select_many_result (q, v, inner, lam2) ->
    append (lower q)
      (Quil.Nested
         {
           Quil.bind_outer = bind_var v;
           inner = lower inner;
           result2 = Some (lam2_of lam2);
         })
  | Query.Join (outer, inner, ok, ik, res) ->
    let ok1 = lam1_of ok and ik1 = lam1_of ik in
    let res2 = lam2_of res in
    if !hash_join_enabled then
      append (lower outer)
        (Quil.Hash_join
           {
             Quil.join_inner = lower inner;
             join_inner_key = ik1;
             join_outer_key = ok1;
             join_result = res2;
           })
    else begin
      (* Equi-join as the nested SelectMany-Where loop of section 5.  The
         outer binding covers the outer key selector; the result
         selector's parameters are bound by the code generator when it
         reaches the nested return. *)
      let bind_outer = ok1.Quil.bind1 in
      let pred : Quil.lam1 =
        {
          Quil.bind1 = ik1.Quil.bind1;
          body1 =
            (fun nenv tbl ->
              Printf.sprintf "(%s = %s)" (ik1.Quil.body1 nenv tbl)
                (ok1.Quil.body1 nenv tbl));
        }
      in
      let inner_chain = append (lower inner) (Quil.Pred pred) in
      append (lower outer)
        (Quil.Nested
           { Quil.bind_outer; inner = inner_chain; result2 = Some res2 })
    end
  | Query.Group_by (q, key) ->
    append (lower q) (Quil.Sink (Quil.Group_by_sink { key = lam1_of key }))
  | Query.Group_by_elem (q, key, elem) ->
    append (lower q)
      (Quil.Sink
         (Quil.Group_by_elem_sink { key = lam1_of key; elem = lam1_of elem }))
  | Query.Group_by_agg (q, key, seed, step) -> (
    let hash_sink () =
      Quil.Sink
        (Quil.Group_by_agg_sink
           {
             key = lam1_of key;
             seed = render_expr (Expr.simplify seed);
             step = lam2_of step;
           })
    in
    match q with
    | Query.Order_by (_, sort_key, _)
      when !sorted_group_enabled && Expr.alpha_equal_lam key sort_key -> (
      match default_literal (Expr.ty_of key.Expr.body) with
      | Some key_default ->
        append (lower q)
          (Quil.Sink
             (Quil.Group_by_agg_sorted_sink
                {
                  key = lam1_of key;
                  key_default;
                  seed = render_expr (Expr.simplify seed);
                  step = lam2_of step;
                }))
      | None -> append (lower q) (hash_sink ()))
    | _ -> append (lower q) (hash_sink ()))
  | Query.Order_by (q, key, dir) ->
    append (lower q)
      (Quil.Sink
         (Quil.Order_by_sink
            { key = lam1_of key; descending = dir = Query.Descending }))
  | Query.Distinct q -> append (lower q) (Quil.Sink Quil.Distinct_sink)
  | Query.Rev q -> append (lower q) (Quil.Sink Quil.Reverse_sink)
  | Query.Materialize q -> append (lower q) (Quil.Sink Quil.To_array_sink)

and lower_scalar : type s. s Query.sq -> Quil.chain = function
  | Query.Aggregate (q, seed, step) ->
    append (lower q)
      (Quil.Agg
         (fold_agg ~seed:(render_expr (Expr.simplify seed))
            ~step:(lam2_of step) ()))
  | Query.Aggregate_combinable (q, seed, step, _) ->
    (* The combiner is a parallel-only annotation; generated code folds
       sequentially, exactly like a plain Aggregate. *)
    append (lower q)
      (Quil.Agg
         (fold_agg ~seed:(render_expr (Expr.simplify seed))
            ~step:(lam2_of step) ()))
  | Query.Aggregate_full (q, seed, step, result) ->
    append (lower q)
      (Quil.Agg
         (fold_agg ~seed:(render_expr (Expr.simplify seed))
            ~step:(lam2_of step) ~result:(lam1_of result) ()))
  | Query.Sum_int q -> append (lower q) (Quil.Agg sum_int_agg)
  | Query.Sum_float q -> append (lower q) (Quil.Agg sum_float_agg)
  | Query.Count q -> append (lower q) (Quil.Agg count_agg)
  | Query.Average q -> append (lower q) (Quil.Agg average_agg)
  | Query.Min q ->
    append (lower q) (Quil.Agg (extremum_agg ~is_min:true (Query.elem_ty q)))
  | Query.Max q ->
    append (lower q) (Quil.Agg (extremum_agg ~is_min:false (Query.elem_ty q)))
  | Query.Min_by (q, key) ->
    append (lower q)
      (Quil.Agg
         (extremum_by_agg ~is_min:true (Query.elem_ty q)
            (Expr.ty_of key.Expr.body) (lam1_of key)))
  | Query.Max_by (q, key) ->
    append (lower q)
      (Quil.Agg
         (extremum_by_agg ~is_min:false (Query.elem_ty q)
            (Expr.ty_of key.Expr.body) (lam1_of key)))
  | Query.First q -> append (lower q) (Quil.Agg (first_agg (Query.elem_ty q)))
  | Query.Last q -> append (lower q) (Quil.Agg (last_agg (Query.elem_ty q)))
  | Query.Element_at (q, n) ->
    (* ElementAt = Skip n then First: reuses early exit. *)
    lower_scalar (Query.First (Query.Skip (q, n)))
  | Query.Any q -> append (lower q) (Quil.Agg any_agg)
  | Query.Exists (q, lam) ->
    append (lower q) (Quil.Agg (exists_agg (lam1_of lam)))
  | Query.For_all (q, lam) ->
    append (lower q) (Quil.Agg (for_all_agg (lam1_of lam)))
  | Query.Contains (q, v) ->
    append (lower q)
      (Quil.Agg (contains_agg (render_expr (Expr.simplify v))))
  | Query.Map_scalar (sq, lam) -> (
    (* Compose the post-processing into the final Agg's result selector:
       the printed aggregate value is substituted for the parameter. *)
    let chain = lower_scalar sq in
    let l1 = lam1_of lam in
    match List.rev chain.Quil.ops with
    | Quil.Agg agg :: rev_rest ->
      let result ~accs nenv tbl =
        let inner = agg.Quil.result ~accs nenv tbl in
        l1.Quil.body1 (l1.Quil.bind1 inner nenv) tbl
      in
      {
        chain with
        Quil.ops = List.rev (Quil.Agg { agg with Quil.result = result } :: rev_rest);
      }
    | _ -> assert false (* scalar chains always end in Agg *))

(* Entry points: run the GroupBy-Aggregate specialization (section 4.3)
   before lowering, so the generated code stores per-key partial
   aggregates wherever the pattern applies.  The [of_specialized*] forms
   skip that pass for callers that have already run it (and timed it). *)
let of_specialized q = lower q

let of_specialized_scalar sq = lower_scalar sq

let of_query q = of_specialized (Specialize.query q)

let of_scalar sq = of_specialized_scalar (Specialize.scalar sq)
