(** Operator specialization (section 4.3 of the paper): detect GroupBy
    operators whose groups are immediately reduced by an aggregating
    selector, and replace them with the GroupByAggregate sink, which
    stores one partial aggregate per key instead of the bag of values.

    Two shapes are recognized, both produced naturally by the combinator
    API:

    - {b counting}: [group_by key |> select (fun g -> ... length (snd g) ...)]
      where the group's values are used only through [Array_length];
    - {b folding}: [group_by key |> select_sq (fun g -> aggregate ... (of_array (snd g)))]
      — a nested scalar query folding exactly the group's values
      (optionally through an element-wise [select]), with a result
      selector free to mention the group key.

    The rewrite is semantics-preserving: group order (first appearance)
    and fold order (source order within each group) are unchanged. *)

val query : 'a Query.t -> 'a Query.t
(** Apply the specialization bottom-up wherever it matches. *)

val scalar : 's Query.sq -> 's Query.sq

val enabled : bool ref
(** Global switch (default on), used by the ablation benchmark.  When
    false, {!query} and {!scalar} are the identity. *)
