(** QUIL: the Query Intermediate Language (section 4.1 of the paper).

    QUIL reduces the large LINQ operator surface to six fundamental
    operator classes — [Src], [Trans], [Pred], [Sink], [Agg], [Ret] — plus
    nested sub-queries, which may substitute for the transformation or
    predicate of an element-wise operator (section 5).  A chain of QUIL
    operators is what the code-generating pushdown automaton consumes.

    Types are erased at this level, exactly as the paper's code generator
    works on an untyped C# AST: every lambda has become a {!render}
    closure that prints the (inlined) body as OCaml source once the code
    generator has chosen variable names. *)

type render = Expr.name_env -> Expr.Capture_table.t -> string
(** Renders an expression as self-delimiting OCaml source, given the
    names assigned to in-scope query variables and the table assigning
    capture slots. *)

type lam1 = {
  bind1 : string -> Expr.name_env -> Expr.name_env;
      (** Bind the parameter to a generated variable name. *)
  body1 : render;
}

type lam2 = {
  bind2 : string -> string -> Expr.name_env -> Expr.name_env;
  body2 : render;
}

(** The [Src] symbol, annotated with the source's run-time type so the
    code generator can produce type-specialized iteration code
    (section 4.2). *)
type src =
  | Src_array of { elem_ty : string; array : render }
      (** Indexed iteration over an array-valued expression; [elem_ty] is
          the printed OCaml element type. *)
  | Src_range of { start : render; count : render }
  | Src_repeat of { value : render; count : render }

(** Stateful predicate-class operators (Take, Skip, ...): classified as
    [Pred] by Table 1; they require a counter or flag in the loop
    prelude. *)
type stateful_pred =
  | Take_n of render
  | Skip_n of render
  | Take_while_p of lam1
  | Skip_while_p of lam1

type sink =
  | Group_by_sink of { key : lam1 }
  | Group_by_elem_sink of { key : lam1; elem : lam1 }
  | Group_by_agg_sink of { key : lam1; seed : render; step : lam2 }
      (** The GroupByAggregate specialization (section 4.3). *)
  | Group_by_agg_sorted_sink of {
      key : lam1;
      key_default : string;  (** placeholder initializer for the key cell *)
      seed : render;
      step : lam2;
    }
      (** GroupByAggregate over input already sorted by the same key: one
          sequential pass with O(1) live keys and reduction variables (the
          memory optimization of section 4.3's final paragraph). *)
  | Order_by_sink of { key : lam1; descending : bool }
  | Distinct_sink
  | Reverse_sink
  | To_array_sink

(** Aggregation: a set of accumulators folded over the elements.
    [first_element] selects first-element-as-seed semantics (Min, Max,
    First, ...); [require_nonempty] makes the generated code raise on an
    empty input, matching LINQ. *)
type acc = {
  seed : render;
  step : accs:string list -> elem:string -> render;
      (** New value of this accumulator, given all accumulator variable
          names (dereferenced) and the current element name. *)
  first : (elem:string -> render) option;
      (** Value taken from the first element when [first_element]. *)
}

type agg = {
  accs : acc list;
  first_element : bool;
  require_nonempty : bool;
  early_exit : (accs:string list -> render) option;
      (** Condition on the accumulators under which no further element can
          change the result (Any, All, First, Contains, ...): the
          generated loop breaks out as soon as it holds. *)
  result : accs:string list -> render;
}

type op =
  | Trans of lam1
  | Trans_nested of nested_scalar
  | Pred of lam1
  | Pred_nested of nested_scalar
  | Pred_stateful of stateful_pred
  | Trans_idx of lam2
  | Pred_idx of lam2
  | Nested of nested  (** SelectMany *)
  | Hash_join of hash_join
      (** Specialized equi-join: build a hash index over the inner chain
          once (in the loop prelude), then probe it per outer element —
          replacing the quadratic nested-loop join the paper notes is
          inefficient for large inputs (section 5). *)
  | Sink of sink
  | Agg of agg

and hash_join = {
  join_inner : chain;  (** The build side; independent of the outer element. *)
  join_inner_key : lam1;
  join_outer_key : lam1;
  join_result : lam2;  (** outer element, inner element -> output element *)
}

and nested = {
  bind_outer : string -> Expr.name_env -> Expr.name_env;
      (** Bind the outer element variable for the inner chain
          (section 5.2: occurrences of the outer element are rewritten to
          the current element name). *)
  inner : chain;
  result2 : lam2 option;  (** SelectMany result selector. *)
}

and nested_scalar = {
  bind_outer_s : string -> Expr.name_env -> Expr.name_env;
  inner_s : chain;  (** Must end in [Agg]. *)
}

and chain = {
  src : src;
  ops : op list;
}

val returns_scalar : chain -> bool
(** True iff the chain's last operator is an [Agg] (the query returns a
    scalar, so [Ret] follows an [Agg] symbol). *)

val validate : chain -> (unit, string) result
(** Check the chain against the QUIL grammar (Fig. 4):
    [(query) ::= Src (Trans | Pred | Sink | (query))* Agg? Ret],
    recursively for nested chains; nested scalar chains must end in
    [Agg]. *)

val symbol_string : chain -> string
(** Flat rendering of the QUIL sentence, nested chains bracketed, e.g.
    ["Src Trans [Src Trans Agg Ret] Agg Ret"].  Sink symbols carry their
    kind (["Sink:GroupBy"], ["Sink:GroupByAggregate"], ...) so operator
    specialization is visible in dumps. *)

val op_symbol : op -> string
(** The symbol of one operator, as it appears in {!symbol_string}
    (nested chains bracketed inline).  Used to label per-operator probe
    points in profiled native code. *)

val operator_count : chain -> int

val map_nested : (chain -> chain) -> op -> op
(** [map_nested f op] rebuilds [op] with [f] applied to every chain nested
    directly inside it (the sub-query of [Nested], [Trans_nested],
    [Pred_nested], and the build side of [Hash_join]); operators without a
    nested chain are returned unchanged.  Used by chain-level rewrite
    passes to recurse uniformly. *)
