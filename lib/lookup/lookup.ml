(* Growable vector of values for one key. *)
type 'v bag = {
  mutable data : 'v array;
  mutable len : int;
}

let bag_create v =
  { data = Array.make 4 v; len = 1 }

let bag_add bag v =
  if bag.len = Array.length bag.data then begin
    let grown = Array.make (2 * bag.len) bag.data.(0) in
    Array.blit bag.data 0 grown 0 bag.len;
    bag.data <- grown
  end;
  bag.data.(bag.len) <- v;
  bag.len <- bag.len + 1

let bag_contents bag = Array.sub bag.data 0 bag.len

type ('k, 'v) t = {
  table : ('k, 'v bag) Hashtbl.t;
  mutable order : 'k list; (* keys in reverse first-appearance order *)
  mutable nkeys : int;
  mutable total : int;
}

let create ?(initial_capacity = 16) () =
  { table = Hashtbl.create initial_capacity; order = []; nkeys = 0; total = 0 }

let put t key value =
  (match Hashtbl.find_opt t.table key with
  | Some bag -> bag_add bag value
  | None ->
    Hashtbl.replace t.table key (bag_create value);
    t.order <- key :: t.order;
    t.nkeys <- t.nkeys + 1);
  t.total <- t.total + 1;
  t

let length t = t.nkeys

let total_count t = t.total

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some bag -> bag_contents bag
  | None -> [||]

let mem t key = Hashtbl.mem t.table key

let keys t = Array.of_list (List.rev t.order)

let groupings t = Array.map (fun k -> k, find t k) (keys t)

let iter f t = Array.iter (fun k -> f k (find t k)) (keys t)

let fold f acc t =
  Array.fold_left (fun acc k -> f acc k (find t k)) acc (keys t)

module Agg = struct
  type ('k, 's) t = {
    table : ('k, 's ref) Hashtbl.t;
    mutable order : 'k list;
    mutable nkeys : int;
    seed : 's;
  }

  let create ?(initial_capacity = 16) ~seed () =
    { table = Hashtbl.create initial_capacity; order = []; nkeys = 0; seed }

  let update t key f =
    match Hashtbl.find_opt t.table key with
    | Some cell -> cell := f !cell
    | None ->
      Hashtbl.replace t.table key (ref (f t.seed));
      t.order <- key :: t.order;
      t.nkeys <- t.nkeys + 1

  let find_opt t key =
    match Hashtbl.find_opt t.table key with
    | Some cell -> Some !cell
    | None -> None

  let length t = t.nkeys

  let keys t = Array.of_list (List.rev t.order)

  let entries t =
    Array.map
      (fun k ->
        match Hashtbl.find_opt t.table k with
        | Some cell -> k, !cell
        | None -> assert false)
      (keys t)

  let combine a b merge =
    Array.iter
      (fun (k, s) -> update a k (fun cur -> merge cur s))
      (entries b);
    a
end
