(** Key-to-bag multimap: the [Lookup<K, T>] utility class of the paper
    (Fig. 7b).

    The GroupBy sink operator folds a collection into a lookup with
    [put]; the groups are then enumerated in the order their keys first
    appeared, matching LINQ's [GroupBy] ordering guarantee.  Keys are
    compared with structural equality and hashed with the polymorphic
    hash function. *)

type ('k, 'v) t

val create : ?initial_capacity:int -> unit -> ('k, 'v) t

val put : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) t
(** [put lookup key value] appends [value] to the bag for [key] and returns
    the updated lookup.  The paper's [Put] method likewise returns the
    updated collection; the underlying storage is mutated in place. *)

val length : ('k, 'v) t -> int
(** Number of distinct keys. *)

val total_count : ('k, 'v) t -> int
(** Total number of stored values across all keys. *)

val find : ('k, 'v) t -> 'k -> 'v array
(** Values stored for a key, in insertion order; [| |] if the key is
    absent. *)

val mem : ('k, 'v) t -> 'k -> bool

val keys : ('k, 'v) t -> 'k array
(** Distinct keys in first-appearance order. *)

val groupings : ('k, 'v) t -> ('k * 'v array) array
(** All groups, keys in first-appearance order, values in insertion order. *)

val iter : ('k -> 'v array -> unit) -> ('k, 'v) t -> unit

val fold : ('acc -> 'k -> 'v array -> 'acc) -> 'acc -> ('k, 'v) t -> 'acc

(** {1 Aggregating sink}

    The GroupByAggregate specialization (section 4.3) stores one partial
    aggregate per key instead of the bag of values. *)

module Agg : sig
  type ('k, 's) t

  val create : ?initial_capacity:int -> seed:'s -> unit -> ('k, 's) t

  val update : ('k, 's) t -> 'k -> ('s -> 's) -> unit
  (** [update t key f] replaces the aggregate for [key] with [f current],
      where [current] is the stored aggregate or the seed for a fresh
      key. *)

  val combine : ('k, 's) t -> ('k, 's) t -> ('s -> 's -> 's) -> ('k, 's) t
  (** [combine a b merge] folds [b] into [a] (the distributed [Agg*]
      combining step, section 6) and returns [a]. *)

  val find_opt : ('k, 's) t -> 'k -> 's option
  val length : ('k, 's) t -> int

  val entries : ('k, 's) t -> ('k * 's) array
  (** Key-aggregate pairs in first-appearance order. *)
end
