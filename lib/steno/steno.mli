(** Steno: automatic optimization of declarative queries.

    The public entry point.  Build a query with the {!Query} combinators,
    then either run it directly through the unoptimized iterator pipeline
    ([Linq] backend), or optimize it:

    {[
      let q =
        Query.of_array Ty.Float xs
        |> Query.select (fun x -> Expr.Infix.(x *. x))
        |> Query.sum_float
      in
      let sum = Steno.scalar ~backend:Native q
    ]}

    The [Native] backend performs the full Steno pipeline of the paper:
    canonicalize to QUIL (section 3.1), generate fused loop code with the
    pushdown automaton (sections 4-5), compile it with the native
    compiler, load it, and bind captured values (section 3.3).  Compiled
    code is cached by generated source text, so a structurally identical
    query (e.g. the same query over a different captured array) reuses the
    compiled plugin and pays only environment re-extraction — the query
    caching the paper describes in section 7.1. *)

type backend =
  | Linq  (** Unoptimized iterator pipeline (the baseline). *)
  | Fused  (** In-process closure fusion (no compiler invocation). *)
  | Native  (** Full Steno: generated, natively compiled loop code. *)

val default_backend : backend ref
(** Initially [Native] when a native compiler is available, [Fused]
    otherwise. *)

(** {1 Running queries} *)

val to_array : ?backend:backend -> 'a Query.t -> 'a array
val to_list : ?backend:backend -> 'a Query.t -> 'a list
val scalar : ?backend:backend -> 's Query.sq -> 's

(** {1 Prepared queries}

    Separate optimization from execution to amortize or measure the
    one-off compilation cost. *)

type 'a prepared
type 's prepared_scalar

val prepare : ?backend:backend -> 'a Query.t -> 'a prepared
val prepare_scalar : ?backend:backend -> 's Query.sq -> 's prepared_scalar
val run : 'a prepared -> 'a array
val run_scalar : 's prepared_scalar -> 's

type compile_info = {
  backend : backend;
  cache_hit : bool;  (** Compiled plugin reused from the query cache. *)
  prepare_ms : float;
      (** Total preparation cost: canonicalization, code generation, and —
          on a cache miss — compiler invocation and loading. *)
  codegen_ms : float;  (** Of which QUIL lowering and code generation. *)
  compile_ms : float;  (** Of which external compiler + dynlink. *)
}

val info : 'a prepared -> compile_info
val info_scalar : 's prepared_scalar -> compile_info

(** {1 Inspection} *)

val generated_source : 'a Query.t -> string
(** The OCaml module Steno generates for this query. *)

val generated_source_scalar : 's Query.sq -> string

val quil : 'a Query.t -> string
(** The QUIL sentence, e.g. ["Src Pred Trans Agg Ret"]. *)

val quil_scalar : 's Query.sq -> string

(** {1 Cache control} *)

val cache_size : unit -> int
val clear_cache : unit -> unit

val native_available : unit -> bool
