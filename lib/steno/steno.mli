(** Steno: automatic optimization of declarative queries.

    The public entry point.  Build a query with the {!Query} combinators,
    then either run it directly through the unoptimized iterator pipeline
    ([Linq] backend), or optimize it:

    {[
      let q =
        Query.of_array Ty.Float xs
        |> Query.select (fun x -> Expr.Infix.(x *. x))
        |> Query.sum_float
      in
      let sum = Steno.scalar ~backend:Native q
    ]}

    The [Native] backend performs the full Steno pipeline of the paper:
    canonicalize to QUIL (section 3.1), generate fused loop code with the
    pushdown automaton (sections 4-5), compile it with the native
    compiler, load it, and bind captured values (section 3.3).  Compiled
    code is cached by generated source text, so a structurally identical
    query (e.g. the same query over a different captured array) reuses the
    compiled plugin and pays only environment re-extraction — the query
    caching the paper describes in section 7.1.

    All execution goes through an {!Engine}: an explicit value packaging
    the backend choice, the bounded plugin cache, the failure policy for
    the external compiler, and a telemetry sink.  Engines are safe to
    share across domains: the plugin cache takes sharded locks,
    concurrent identical prepares are collapsed onto one compile
    (single-flight), and the metrics write path is lock-free.  Clients
    of a shared engine speak through a {!Session}: a lightweight handle
    carrying per-client configuration overrides, tenant labels for
    metrics, and usage counters.  The free functions below are thin
    wrappers over a {!default_session} on a lazily-created
    {!default_engine}; servers hosting several tenants or configurations
    create their own engines and sessions (see [Steno_server] for a
    full admission-controlled front end). *)

type backend =
  | Linq  (** Unoptimized iterator pipeline (the baseline). *)
  | Fused  (** In-process closure fusion (no compiler invocation). *)
  | Native  (** Full Steno: generated, natively compiled loop code. *)

val backend_name : backend -> string
(** ["linq"], ["fused"] or ["native"]. *)

(** Why a [Native] preparation executed on the [Fused] backend instead
    (recorded in {!compile_info.fallback} and in telemetry). *)
type fallback_reason =
  | Compiler_unavailable
  | Compile_timeout of int  (** the engine's [compile_timeout_ms] *)
  | Compile_error of string
  | Load_error of string

val fallback_reason_message : fallback_reason -> string

type compile_info = {
  backend : backend;  (** The backend that actually executes the query. *)
  requested : backend;
      (** The backend asked for; differs from [backend] only when the
          engine fell back. *)
  cache_hit : bool;  (** Compiled plugin reused from the query cache. *)
  prepare_ms : float;
      (** Total preparation cost: specialization, canonicalization, code
          generation or staging, and — on a cache miss — compiler
          invocation and loading. *)
  codegen_ms : float;
      (** Of which QUIL lowering and code generation ([Native]), or
          specialization and staging ([Fused]/[Linq]) — so backend
          comparisons account for the work each backend really does at
          prepare time. *)
  compile_ms : float;  (** Of which external compiler + dynlink. *)
  fallback : fallback_reason option;
      (** Set when a [Native] request executed on [Fused]. *)
}

type 'a prepared
type 's prepared_scalar

(** {1 Profiles}

    With [profile = true] in the engine configuration, every preparation
    carries one probe point per top-level query operator, fed during
    execution: rows flowing out of each operator edge (so selectivity is
    the ratio of consecutive points), the indirect or closure calls each
    element costs at that operator, and — on the pull backend — the time
    spent inside upstream [move_next].  The call counts measure the
    paper's core claim directly: [Linq] observes two indirect calls per
    element per operator, [Fused] one closure call, [Native] zero.

    With [profile = false] (the default) none of this exists: staging
    applies no wrappers and generated code contains no probe
    increments — the unprofiled paths are byte-identical to a build
    without this feature. *)

type op_profile = {
  op_label : string;
      (** Operator label: the staged combinator name (["where"],
          ["select"], ...) on [Linq]/[Fused], the QUIL symbol (["Pred"],
          ["Trans"], ...) on [Native]. *)
  op_index : int;  (** position in source-to-sink order, [0] = source *)
  op_rows : int;  (** rows that left this operator, over all runs *)
  op_calls : int;  (** indirect/closure calls observed, over all runs *)
  op_ns : int;
      (** cumulative nanoseconds; on [Linq] the upstream-inclusive
          [move_next] time at this point (exclusive time is the
          difference of consecutive points), [0] on [Fused]/[Native]
          where per-operator time is meaningless inside a fused loop *)
}

type profile_snapshot = {
  ps_backend : backend;  (** backend that executed (after fallback) *)
  ps_runs : int;
  ps_run_ms : float;  (** total wall time of profiled runs *)
  ps_ops : op_profile list;  (** source-to-sink order *)
}

exception Check_failed of Check.diagnostic list
(** Raised by a [strict] engine's prepare when the static checks report
    [Error]-level diagnostics; carries exactly those errors. *)

(** {1 Configuration}

    One value describes everything an engine does: start from
    {!Config.default} and pipe it through the [with_*] combinators.

    {[
      let cfg =
        Steno.Config.(
          default
          |> with_backend Native
          |> with_tiering ~threshold:4
          |> with_disk_cache ~dir:(Pcache.default_dir ()))
      in
      let engine = Steno.Engine.create cfg
    ]}

    [Config.t] and [Engine.config] are the same record type, so the
    historical [{ Engine.default_config with backend = ... }] update
    syntax still works; the combinators are the supported surface and
    the only one that will grow fields without breaking callers. *)

module Config : sig
  (** Tiered-execution policy (a JIT for queries): prepare instantly on
      [Fused], count runs, and once a preparation crosses [threshold]
      runs compile [Native] in the background and hot-swap.  See
      {!Engine.config.tiering}. *)
  type tiering = { threshold : int }

  (** Cost-based adaptive optimization policy.  See
      {!Engine.config.adaptive}. *)
  type adaptive = {
    drift : float;
        (** Absolute selectivity divergence (observed vs assumed at
            prepare time) past which a profiled run retires the plan's
            statistics and triggers a background re-preparation. *)
    fused_below : int;
        (** Estimated source rows at or below which an engine-level
            [Native] dispatch is downgraded to [Fused]. *)
  }

  (** Persistent on-disk plugin store configuration.  See
      {!Engine.config.disk_cache}. *)
  type disk_cache = { dir : string; max_bytes : int; max_entries : int }

  (** Request-scoped tracing configuration.  See
      {!Engine.config.tracing}. *)
  type tracing = { sample : float; ring : int; slow_ms : float option }

  (** The full engine configuration.  The fields are documented on the
      (equal) {!Engine.config} re-export; prefer building values with
      {!default} and the combinators below, which stay source-compatible
      as fields are added. *)
  type t = {
    backend : backend;
    fallback : bool;
    optimize : bool;
    compile_timeout_ms : int option;
    cache_capacity : int;
    telemetry : Telemetry.sink;
    profile : bool;
    metrics : Metrics.t;
    strict : bool;
    tiering : tiering option;
    adaptive : adaptive option;
    disk_cache : disk_cache option;
    tracing : tracing option;
    admin_port : int option;
  }

  val default : t
  (** [Native] when a compiler is available ([Fused] otherwise),
      [fallback = true], [optimize = true], no timeout, capacity 128,
      null telemetry, [profile = false], the process-wide metrics
      registry, [strict = false], no tiering, no disk cache. *)

  val with_backend : backend -> t -> t
  val with_fallback : bool -> t -> t
  val with_optimize : bool -> t -> t
  val with_compile_timeout : int option -> t -> t
  val with_cache_capacity : int -> t -> t
  val with_telemetry : Telemetry.sink -> t -> t
  val with_profile : bool -> t -> t
  val with_metrics : Metrics.t -> t -> t
  val with_strict : bool -> t -> t

  val with_tiering : ?threshold:int -> t -> t
  (** Enable tiered execution with the given promotion threshold
      (default 8 runs; clamped to at least 1). *)

  val without_tiering : t -> t

  val with_adaptive : ?drift:float -> ?fused_below:int -> t -> t
  (** Enable cost-based adaptive optimization (defaults: [drift = 0.3],
      [fused_below = 64]).  See {!Engine.config.adaptive}; observations
      only flow when [profile] is also on. *)

  val without_adaptive : t -> t

  val with_disk_cache :
    dir:string -> ?max_bytes:int -> ?max_entries:int -> t -> t
  (** Enable the persistent plugin store rooted at [dir] (e.g.
      [Pcache.default_dir ()]).  Defaults: 256 MiB, 512 entries. *)

  val without_disk_cache : t -> t

  val with_tracing : ?sample:float -> ?ring:int -> ?slow_ms:float -> t -> t
  (** Enable request-scoped tracing: [sample] is the traced fraction of
      root requests (default [1.0], realised deterministically as
      1-in-k), [ring] the completed-trace ring capacity (default 256),
      [slow_ms] a latency threshold enabling the slow-query ring.  See
      {!Engine.config.tracing}. *)

  val without_tracing : t -> t

  val with_admin : port:int -> t -> t
  (** Ask for the HTTP admin/ops listener on [port] ([0] = an ephemeral
      port).  The engine itself never opens sockets: the host (e.g.
      [stenoc serve], or any caller of [Ops.start]) reads this field and
      starts the listener. *)

  val without_admin : t -> t
end

(** {1 Engines}

    An engine is the host-side runtime contract made explicit: which
    backend to use, how many compiled plugins to keep (bounded LRU),
    what to do when the external compiler fails or stalls, and where
    pipeline telemetry goes.  Engines are independent — each has its own
    cache and counters — and safe to share across domains. *)

module Engine : sig
  type t

  type config = Config.t = {
    backend : backend;  (** Default backend for this engine's queries. *)
    fallback : bool;
        (** When true, a [Native] preparation that cannot compile
            (compiler missing, compile/load error, or timeout) falls
            back to [Fused] and records the reason, instead of raising.
            When false, such failures raise
            [Dynload.Compilation_failed]. *)
    optimize : bool;
        (** When true (the default), every preparation first runs the
            {!Opt} algebraic rewrite engine over the query AST, and the
            Native path additionally runs the chain-level pass over the
            canonicalized QUIL.  The applied rules are recorded in the
            preparation ({!Prepared.rewrite_log}) and counted in
            telemetry ([optimize.rules_applied], under an ["optimize"]
            span).  The plugin cache key incorporates this flag, so
            optimized and unoptimized compilations never alias.  Set
            [false] to run plans exactly as written (the escape hatch
            for debugging a suspected rewrite). *)
    compile_timeout_ms : int option;
        (** Deadline for one external compiler invocation; the process
            is killed past it.  [None] waits indefinitely. *)
    cache_capacity : int;
        (** Bound on cached compiled plugins (per engine, LRU).  [0]
            disables caching. *)
    telemetry : Telemetry.sink;
        (** Receives a span per pipeline stage (optimize, specialize,
            canon, codegen, compile, dynlink, env-bind, run) and cache /
            fallback / rewrite counters.  {!Telemetry.null} costs one
            branch per stage. *)
    profile : bool;
        (** When true, preparations carry per-operator probe points (see
            {!type-op_profile}): staged backends wrap every operator,
            native code generation inserts row-count increments at each
            operator edge, and every run flushes per-run deltas into
            [metrics] ([steno_run_ms], [steno_runs_total],
            [steno_operator_rows_total], [steno_operator_calls_total],
            labelled by backend/op/index).  Profiled native code has
            distinct cache keys, so it never aliases unprofiled plugins.
            When false (the default), execution is exactly the
            unprofiled code — no wrapper, no increment, no registry
            write. *)
    metrics : Metrics.t;
        (** Registry receiving the profile flush (and anything else the
            host records); defaults to {!Metrics.default}. *)
    strict : bool;
        (** When true, {!prepare} and {!prepare_scalar} raise
            {!Check_failed} when the static checks report any
            [Error]-level diagnostic (e.g. a provable division by zero,
            or an aggregate over a provably empty source), instead of
            preparing a query that is guaranteed to raise at run time.
            [Warning] and [Hint] diagnostics never block.  When false
            (the default), diagnostics are only recorded
            ({!Prepared.diagnostics}, the [check_diagnostics_total]
            metric family) and never change behaviour. *)
    tiering : Config.tiering option;
        (** When set, a [Native] preparation on a non-profiling engine
            returns instantly on the [Fused] tier; each preparation
            counts its runs, and the run that reaches
            [threshold] triggers one background [Native] compile on the
            domain pool, after which the prepared handle is atomically
            hot-swapped (in-flight runs finish on the old tier, and
            concurrent promotions of the same query share one compile
            via the single-flight group).  {!Prepared.backend_used}
            tracks the live tier; promotions are counted in
            [steno_tier_promotions_total] by result.  A preparation
            whose promotion fails (e.g. no compiler) stays on [Fused]
            permanently — tiering never raises at prepare or run time.
            [None] (the default) keeps [Native] preparation
            synchronous. *)
    adaptive : Config.adaptive option;
        (** When set, every preparation runs a cost-based phase after
            the syntactic rewrite fixpoint, fed by the engine's per-plan
            statistics store ({!cost_store}; populated by profiled runs
            of the same plan, static priors otherwise):

            - pure conjuncts of fused filters are re-sorted
              most-selective-first — each reorder is logged as a
              ["stats-where-reorder"] rewrite and translation-validated
              like any other rule (statistics pick among provably
              equivalent plans, they are never trusted for soundness);
            - an engine-level [Native] dispatch whose estimated input is
              at most [fused_below] rows stays on [Fused] (an explicit
              per-call [?backend] always wins, and tiering supersedes
              this);
            - [Par]'s auto-partitioned helpers derive their partition
              count from estimated rows instead of one-chunk-per-worker.

            With [profile] also on, each run's per-operator row deltas
            feed the store, and a run whose observed selectivities
            diverge from the preparation's assumptions by more than
            [drift] retires the stale statistics and re-prepares in the
            background (hot-swapped atomically, like tier promotion).
            Decisions surface in {!Prepared.decisions} /
            {!type-analysis} and the [steno_adaptive_total{decision}]
            metric family.  [None] (the default) skips the phase
            entirely. *)
    disk_cache : Config.disk_cache option;
        (** When set, compiled plugins are also published to a
            content-addressed on-disk store ([Pcache]) keyed by the
            plugin cache key plus a compiler/ABI fingerprint, and
            looked up there before invoking the compiler — so a cold
            process pays roughly a [Dynlink] load (sub-millisecond)
            instead of a full compile (tens of milliseconds) for any
            query some earlier process compiled.  Lookups and evictions
            are counted in [steno_pcache_{hits,misses,evictions}_total];
            corrupt or incompatible entries are dropped and recompiled,
            never surfaced as errors.  [None] (the default) keeps
            compiled code in-process only. *)
    tracing : Config.tracing option;
        (** When set, the engine carries an enabled {!Trace.t} (see
            {!tracer}) and tees its telemetry into it, so every pipeline
            span and counter recorded while a trace context is installed
            (e.g. under [Server.submit]) lands in that request's trace —
            including spans from other domains: background tier
            promotions and single-flight leaders re-root the context via
            [Domain_pool]'s [?ctx].  Completed traces land in a bounded
            ring ([ring] entries, head-drop counted in
            [steno_trace_dropped_total]); requests at or over [slow_ms]
            (when set) also land in the slow-query ring with the
            optimized plan, tier and cache outcomes attached.  [sample]
            traces 1-in-k requests, deterministically.  [None] (the
            default) records nothing and costs one branch per
            instrumentation point. *)
    admin_port : int option;
        (** Port the host should serve the ops plane on ([/metrics],
            [/healthz], [/traces], [/slow] — see [Ops]); [0] requests an
            ephemeral port.  Stored configuration only: [Engine.create]
            opens no sockets. *)
  }

  val default_config : config
  (** Alias of {!Config.default}. *)

  val create : config -> t
  (** The one construction path: [Engine.create cfg].  Build [cfg] with
      the {!Config} combinators (or record update on
      {!default_config}). *)

  val config : t -> config

  val tracer : t -> Trace.t
  (** The engine's request tracer: enabled iff the configuration set
      {!Config.with_tracing}, {!Trace.disabled} otherwise.  Wrap work in
      [Trace.with_trace (Engine.tracer e) "request" f] to trace it;
      [Server.submit] does this per request. *)

  val telemetry : t -> Telemetry.sink

  val metrics : t -> Metrics.t

  val adaptive_config : t -> Config.adaptive option
  (** The engine's adaptive policy ([cfg.adaptive]); [Par]'s
      auto-partitioned helpers read it to decide whether to derive their
      partition count from the statistics store. *)

  val cost_store : t -> Cost.t
  (** The engine's per-plan statistics store.  Always allocated (even
      with [adaptive = None]) and physically shared by derived views of
      the engine — sessions and [explain_analyze]'s forced-profile copy
      feed the same store. *)

  (** {2 Execution}

      Two entry points per query shape.  [try_prepare] reports every
      refusal as a value; [prepare] is the raising wrapper over it, kept
      for code that treats refusal as a bug. *)

  (** Why an engine refused to prepare a query. *)
  type error =
    | Check_error of Check.diagnostic list
        (** A [strict] engine found [Error]-level static diagnostics;
            carries exactly those errors.  ({!prepare} raises these as
            {!Check_failed}.) *)
    | Compile_failure of fallback_reason
        (** The [Native] backend could not compile and the engine has
            [fallback = false].  ({!prepare} raises this as
            [Dynload.Compilation_failed].) *)

  val error_message : error -> string

  val try_prepare :
    ?backend:backend -> t -> 'a Query.t -> ('a prepared, error) result
  (** [?backend] overrides the engine's configured backend for this
      query only.  Never raises for a refusal; a server loop can turn
      the [Error] into a client reply without exception plumbing. *)

  val try_prepare_scalar :
    ?backend:backend -> t -> 's Query.sq -> ('s prepared_scalar, error) result

  val prepare : ?backend:backend -> t -> 'a Query.t -> 'a prepared
  (** [try_prepare] with refusals raised: {!Check_failed} for
      [Check_error], [Dynload.Compilation_failed] for
      [Compile_failure]. *)

  val prepare_scalar : ?backend:backend -> t -> 's Query.sq -> 's prepared_scalar
  val to_array : ?backend:backend -> t -> 'a Query.t -> 'a array
  val to_list : ?backend:backend -> t -> 'a Query.t -> 'a list
  val scalar : ?backend:backend -> t -> 's Query.sq -> 's

  (** {2 Static checks}

      The {!Check} passes — plan linter, expression analysis,
      parallelizability classifier, and the QUIL well-formedness PDA on
      the lowered chain — run automatically inside {!prepare} (under a
      ["check"] telemetry span, counted into [check_diagnostics_total]
      by severity and rule).  [check] runs them alone, without
      preparing: diagnostics are sorted by plan position and carry
      stable rule codes (SC000–SC007, see {!Check.rules}).  On a
      [strict] engine these also raise {!Check_failed} on
      [Error]-level findings. *)

  val check : t -> 'a Query.t -> Check.diagnostic list
  val check_scalar : t -> 's Query.sq -> Check.diagnostic list

  (** {2 Plugin cache} *)

  type cache_stats = {
    capacity : int;
    entries : int;
    hits : int;
    misses : int;
    evictions : int;
  }

  val cache_stats : t -> cache_stats
  val cache_size : t -> int
  val clear_cache : t -> unit
  (** Counters are cumulative and survive {!clear_cache}.  These cover
      the in-process LRU only; the persistent store reports through
      {!pcache_stats}. *)

  val pcache_stats : t -> Pcache.stats option
  (** Persistent-store figures; [None] unless the engine was configured
      with a [disk_cache]. *)

  val pcache_dir : t -> string option
  (** The fingerprint subdirectory this engine reads and writes. *)

  (** {2 Explain}

      What the optimizer would do to a query under this engine's
      configuration, without preparing or running it.  With
      [optimize = false] the before and after plans are identical and
      [rules] is empty. *)

  type explanation = {
    quil_before : string;  (** QUIL sentence of the plan as written. *)
    quil_after : string;  (** QUIL sentence after both rewrite passes. *)
    operators_before : int;
    operators_after : int;
        (** {!Quil.operator_count} of each plan; rewriting never
            increases it. *)
    rules : string list;
        (** Rules applied in order: AST rules, then chain rules.
            Consecutive firings of the same rule are compressed into one
            ["name (xN)"] entry. *)
    properties : (string * string) list;
        (** Per-operator static properties of the {e optimized} plan,
            source first: operator label paired with the rendered
            {!Check.Flow} record (cardinality interval, distinctness,
            sortedness, emptiness, purity). *)
    diagnostics : Check.diagnostic list;
        (** Static-check findings for the query as written. *)
  }

  val explain : t -> 'a Query.t -> explanation
  val explain_scalar : t -> 's Query.sq -> explanation

  val explain_to_string : explanation -> string
  (** Multi-line rendering: plan before/after, operator counts, the
      applied-rule list and the per-operator property annotations — what
      [stenoc explain] prints. *)

  (** {2 Verify}

      The translation validator's view of a query under this engine's
      configuration: replay the optimization pipeline and return every
      proof obligation it discharges — one per rewrite event (AST pass
      first, then the QUIL chain pass when the optimized plan lowers
      into the fragment) plus the whole-plan invariants.  [prepare]
      discharges the same obligations internally on every optimized
      preparation, counting outcomes into [steno_verify_total]; a
      rejected obligation there makes the engine fall back to the
      unoptimized plan (strict engines refuse instead, raising
      {!Check_failed} with an [SC012] diagnostic).  With
      [optimize = false] there are no rewrites and the list is empty. *)

  val verify : t -> 'a Query.t -> Check.Equiv.obligation list
  val verify_scalar : t -> 's Query.sq -> Check.Equiv.obligation list

  (** {2 Explain analyze}

      {!explain} plus one instrumented execution: what the optimizer did
      to the plan, and what actually flowed through it. *)

  type analysis = {
    a_requested : backend;
    a_backend : backend;  (** backend that executed (after fallback) *)
    a_explanation : explanation;  (** the rewrite log, as in {!explain} *)
    a_profile : profile_snapshot;  (** actual rows/calls/time per operator *)
    a_result_rows : int option;
        (** rows in the result; [None] for scalar queries *)
    a_decisions : string list;
        (** what the adaptive phase decided for this preparation, e.g.
            ["reordered: p2 before p1, selectivity 0.03 vs 0.71"] or
            ["backend: fused (est. 40 rows)"]; empty without
            [Config.with_adaptive] *)
  }

  val explain_analyze : ?backend:backend -> t -> 'a Query.t -> analysis
  (** Prepare the query with profiling forced on (regardless of the
      engine's [profile] flag — the engine's plugin cache is shared),
      run it once under probes, and return the annotated result.  The
      run also flushes to the engine's metrics registry. *)

  val explain_analyze_scalar :
    ?backend:backend -> t -> 's Query.sq -> analysis

  val analysis_to_string : analysis -> string
  (** Multi-line rendering: the {!explain_to_string} block followed by a
      per-operator table of actual rows, calls, and (on [Linq])
      exclusive time, then the adaptive decisions when any — what
      [stenoc analyze] prints. *)
end

(** {1 Sessions}

    A session is a client's handle onto a shared engine — the unit of
    multi-tenancy in a query service.  Sessions are cheap (no cache, no
    compiled state of their own): the underlying engine's plugin cache
    and single-flight group are shared by every session on it, while
    each session carries its own configuration overrides, metric labels,
    and usage counters.

    {[
      let engine = Steno.Engine.create Steno.Engine.default_config in
      let alice = Steno.Session.create engine ~client_id:"alice" in
      let bob =
        Steno.Session.create engine ~client_id:"bob" ~strict:true
          ~labels:[ "tier", "free" ]
      in
      let xs = Steno.Session.to_array alice q in
      ...
    ]}

    Runs through a session are timed into the engine's metrics registry
    ([steno_run_ms], [steno_runs_total]) labelled with the session's
    [client_id] and extra labels, so one OpenMetrics scrape breaks load
    down by tenant.  A session handle is domain-safe: its counters are
    atomic and everything it touches on the engine already is. *)

module Session : sig
  type t

  val create :
    ?backend:backend ->
    ?optimize:bool ->
    ?profile:bool ->
    ?strict:bool ->
    ?config:(Config.t -> Config.t) ->
    ?labels:(string * string) list ->
    Engine.t ->
    client_id:string ->
    t
  (** A session on [engine] for [client_id].  [config] transforms the
      engine's configuration for queries prepared through this session —
      compose the {!Config} combinators, e.g.
      [~config:Config.(with_strict true)] or
      [~config:(fun c -> Config.(c |> with_backend Fused))]; everything
      outside the configuration (cache, single-flight group, telemetry,
      metrics registry) is the engine's.  Overriding [optimize] or
      [profile] is safe on a shared cache: both flags are part of the
      plugin cache key, so sessions never alias each other's compiled
      code.  [labels] are extra metric labels (e.g. tenant tier)
      attached alongside [client_id].

      The [?backend]/[?optimize]/[?profile]/[?strict] flags are the
      pre-[Config] spelling of the same overrides, kept as a shim;
      [config] is applied after them and wins on conflict.
      @deprecated the individual flags — use [config]. *)

  val engine : t -> Engine.t
  (** The session's view of its engine — configuration overrides
      applied, cache shared.  Useful for {!Engine.explain} and friends
      under the session's flags. *)

  val client_id : t -> string
  val labels : t -> (string * string) list

  (** {2 Execution}

      The {!Engine} entry points, scoped to this session: prepared runs
      are timed and counted under the session's labels, and the
      session's {!stats} advance. *)

  val try_prepare :
    ?backend:backend -> t -> 'a Query.t -> ('a prepared, Engine.error) result

  val try_prepare_scalar :
    ?backend:backend ->
    t ->
    's Query.sq ->
    ('s prepared_scalar, Engine.error) result

  val prepare : ?backend:backend -> t -> 'a Query.t -> 'a prepared
  val prepare_scalar : ?backend:backend -> t -> 's Query.sq -> 's prepared_scalar
  val to_array : ?backend:backend -> t -> 'a Query.t -> 'a array
  val to_list : ?backend:backend -> t -> 'a Query.t -> 'a list
  val scalar : ?backend:backend -> t -> 's Query.sq -> 's

  (** {2 Stats} *)

  type stats = {
    prepares : int;  (** Prepare calls through this session. *)
    runs : int;  (** Runs of preparations made through this session. *)
    run_ms : float;  (** Total wall time of those runs. *)
  }

  val stats : t -> stats

  (** {2 Cache}

      The plugin cache is {e engine}-scoped, not session-scoped: these
      report on and clear the cache shared by every session on this
      session's engine.  In particular [clear_cache] evicts other
      tenants' hot entries — it is an operator action, not a client
      one. *)

  val cache_stats : t -> Engine.cache_stats
  val cache_size : t -> int
  val clear_cache : t -> unit
end

val default_engine : unit -> Engine.t
(** The engine behind the free functions, created on first use from
    {!Engine.default_config}.  This is the only process-global engine
    state; code that needs different settings builds its own
    {!Engine.t}.  Safe to call from any domain. *)

val default_session : unit -> Session.t
(** The session behind the free functions: [client_id = "default"] on
    {!default_engine}.  The free functions [prepare], [to_array], etc.
    are exactly this session's operations. *)

(** {1 Running queries} *)

val to_array : ?backend:backend -> 'a Query.t -> 'a array
val to_list : ?backend:backend -> 'a Query.t -> 'a list
val scalar : ?backend:backend -> 's Query.sq -> 's

(** {1 Prepared queries}

    Separate optimization from execution to amortize or measure the
    one-off compilation cost.  [prepare] returns an abstract handle;
    interrogate it through {!Prepared} (and scalar preparations through
    {!Prepared_scalar}). *)

val prepare : ?backend:backend -> 'a Query.t -> 'a prepared
val prepare_scalar : ?backend:backend -> 's Query.sq -> 's prepared_scalar

(** Accessors on a prepared collection query. *)
module Prepared : sig
  type 'a t = 'a prepared

  val run : 'a t -> 'a array
  (** Execute.  Reusable: captured inputs are re-read on each run. *)

  val backend_used : 'a t -> backend
  (** The backend that executes {e now} — after any fallback, and, on a
      tiered engine, reflecting the live tier: [Fused] until the
      background promotion lands, [Native] after. *)

  val compile_info : 'a t -> compile_info

  val rewrite_log : 'a t -> string list
  (** Optimizer rules applied while preparing this query, in order (AST
      rules first, then QUIL chain rules — the latter only on the
      Native path, which is the only one that builds the chain).
      Consecutive firings of one rule are compressed to ["name (xN)"].
      Empty when the engine was configured with [optimize = false]. *)

  val diagnostics : 'a t -> Check.diagnostic list
  (** The static-check findings recorded when this query was
      prepared. *)

  val profile : 'a t -> profile_snapshot option
  (** Per-operator counts accumulated over this preparation's runs so
      far; [None] unless the preparing engine had [profile = true]. *)

  val decisions : 'a t -> string list
  (** What the adaptive phase decided while preparing (predicate
      reorders, backend downgrades), as display lines; empty without
      [Config.with_adaptive]. *)
end

(** Accessors on a prepared scalar query. *)
module Prepared_scalar : sig
  type 's t = 's prepared_scalar

  val run : 's t -> 's
  val backend_used : 's t -> backend
  val compile_info : 's t -> compile_info
  val rewrite_log : 's t -> string list
  val diagnostics : 's t -> Check.diagnostic list
  val profile : 's t -> profile_snapshot option
  val decisions : 's t -> string list
end

(** {1 Inspection} *)

val generated_source : 'a Query.t -> string
(** The OCaml module Steno generates for this query. *)

val generated_source_scalar : 's Query.sq -> string

val quil : 'a Query.t -> string
(** The QUIL sentence, e.g. ["Src Pred Trans Agg Ret"]. *)

val quil_scalar : 's Query.sq -> string

(** {1 Default-engine cache control}

    Compatibility wrappers over [default_engine ()]'s cache.  Sharp
    edge: the scope is the {e default engine}, process-wide — these see
    and clear the cache shared by every session on the default engine,
    and see nothing of any engine you created yourself.  Code holding a
    session or engine should use {!Session.clear_cache} /
    {!Engine.clear_cache}, which name their scope explicitly. *)

val cache_size : unit -> int
val clear_cache : unit -> unit

val native_available : unit -> bool

(** The per-plan statistics store behind {!Config.with_adaptive},
    re-exported: clients inspect an engine's observations via
    [Steno.Cost.snapshot (Engine.cost_store eng) ~key] without a direct
    dependency on the library. *)
module Cost = Cost
