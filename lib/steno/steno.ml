type backend =
  | Linq
  | Fused
  | Native

let native_available = Dynload.is_available

let backend_name = function
  | Linq -> "linq"
  | Fused -> "fused"
  | Native -> "native"

type fallback_reason =
  | Compiler_unavailable
  | Compile_timeout of int
  | Compile_error of string
  | Load_error of string

let fallback_reason_message = function
  | Compiler_unavailable -> "native compiler unavailable"
  | Compile_timeout ms -> Printf.sprintf "compiler timed out after %d ms" ms
  | Compile_error msg -> "compiler failed: " ^ msg
  | Load_error msg -> "plugin load failed: " ^ msg

let fallback_reason_label = function
  | Compiler_unavailable -> "compiler-unavailable"
  | Compile_timeout _ -> "compile-timeout"
  | Compile_error _ -> "compile-error"
  | Load_error _ -> "load-error"

type compile_info = {
  backend : backend;
  requested : backend;
  cache_hit : bool;
  prepare_ms : float;
  codegen_ms : float;
  compile_ms : float;
  fallback : fallback_reason option;
}

(* {2 Profiling} *)

(* Per-preparation profile state ([profile:true] engines).  [prof_probe]
   holds one point per top-level operator; how the points are fed is
   backend-specific: Linq and Fused mutate them inline from staged
   wrappers, Native increments the [prof_native_rows] cells from
   generated code and the run wrapper folds the deltas into the points
   after each run. *)
type profile = {
  prof_backend : backend;
  prof_probe : Metrics.Probe.t;
  prof_native_rows : int array option;
      (* The capture-slot array bound into profiled native code; zeroed
         before each run so a run's counts are a delta. *)
  mutable prof_runs : int;
  mutable prof_run_ms : float;
}

type op_profile = {
  op_label : string;
  op_index : int;
  op_rows : int;
  op_calls : int;
  op_ns : int;
}

type profile_snapshot = {
  ps_backend : backend;
  ps_runs : int;
  ps_run_ms : float;
  ps_ops : op_profile list;
}

let profile_snapshot prof =
  {
    ps_backend = prof.prof_backend;
    ps_runs = prof.prof_runs;
    ps_run_ms = prof.prof_run_ms;
    ps_ops =
      List.map
        (fun (pt : Metrics.Probe.point) ->
          {
            op_label = pt.Metrics.Probe.pt_label;
            op_index = pt.Metrics.Probe.pt_index;
            op_rows = pt.Metrics.Probe.pt_rows;
            op_calls = pt.Metrics.Probe.pt_calls;
            op_ns = pt.Metrics.Probe.pt_ns;
          })
        (Metrics.Probe.points prof.prof_probe);
  }

(* Probe wrappers for the staged backends.  The point is allocated when
   the label is applied — once per operator, at staging — so the per-run
   cost is only the decorated iterator/folder. *)
let linq_probe_wrapper pr : Linq.wrapper =
  {
    Linq.wrap =
      (fun label ->
        let pt = Metrics.Probe.point pr label in
        fun e -> Enumerable.probe pt e);
  }

(* Only rows are counted per element: on the fused backend every row
   pushed downstream costs exactly one closure call, so the run wrapper
   reconciles [pt_calls <- pt_rows] once per run instead of paying a
   second increment on the hot path.

   Pure transforms push exactly what they receive, in the same push
   frame as their upstream — even a downstream early exit (take's stop
   exception) unwinds through transform and source together, so the
   counts cannot diverge.  Their points are marked [pt_derived] and not
   counted at all; the run wrapper copies the upstream point's rows once
   per run.  Barriers (order-by, rev, materialize) also preserve
   cardinality but decouple the push frames, so they stay counted. *)
let fused_preserves_rows = function
  | "select" | "select-i" | "select-sq" -> true
  | _ -> false

let fused_probe_wrapper pr : Fused.wrapper =
  {
    Fused.fwrap =
      (fun label ->
        let pt = Metrics.Probe.point pr label in
        if fused_preserves_rows label && pt.Metrics.Probe.pt_index > 0 then (
          pt.Metrics.Probe.pt_derived <- true;
          fun f -> f)
        else
          fun f ->
            {
              Fused.fold =
                (fun g z ->
                  f.Fused.fold
                    (fun acc x ->
                      pt.Metrics.Probe.pt_rows <-
                        pt.Metrics.Probe.pt_rows + 1;
                      g acc x)
                    z);
            });
  }

(* Collection and scalar preparations share one representation; the
   public ['a prepared] / ['s prepared_scalar] are typed views of it. *)
type 'r prep = {
  run_fn : unit -> 'r;
  p_info : compile_info;
  p_rules : string list;
      (* Optimizer rewrite log for this preparation, AST rules first,
         then QUIL chain rules (the latter only when the preparation
         actually lowered to QUIL, i.e. on the Native path). *)
  p_profile : profile option;
      (* Present iff the engine had [profile = true] at prepare time. *)
  p_diags : Check.diagnostic list;
      (* Static-check diagnostics for the query as written (computed
         before optimization). *)
  p_tier : backend Atomic.t;
      (* The backend currently executing this preparation.  Fixed for
         ordinary preparations; a tiered preparation starts at [Fused]
         and is atomically flipped to [Native] when the background
         promotion lands. *)
  p_decisions : string list;
      (* What the cost-based adaptive phase decided for this
         preparation, as display lines ("reordered: ...", "backend:
         fused (est. 40 rows)").  Empty without [Config.with_adaptive]. *)
}

exception Check_failed of Check.diagnostic list

type 'a prepared = 'a array prep
type 's prepared_scalar = 's prep

let now_ms = Telemetry.now_ms

(* Map the generated code's empty-sequence failure back to the exception
   the iterator pipeline raises, so backends agree observably.  Matched
   by prefix: the generated message may carry operator detail after it. *)
let translate_exn : exn -> exn = function
  | Failure msg
    when String.starts_with ~prefix:Codegen.empty_sequence_prefix msg ->
    Iterator.No_such_element
  | e -> e

(* How each backend stages one query, packaged so the engine's prepare
   logic (timing, caching, fallback, telemetry) exists once for both
   collection and scalar queries. *)
type 'r plan = {
  stage_linq : ?probe:Metrics.Probe.t -> Telemetry.sink -> unit -> 'r;
  stage_fused : ?probe:Metrics.Probe.t -> Telemetry.sink -> unit -> 'r;
  chain : Telemetry.sink -> Quil.chain;
  of_raw : Obj.t -> 'r;
}

let linq_wrapper = function
  | None -> Linq.unprobed
  | Some pr -> linq_probe_wrapper pr

let fused_wrapper = function
  | None -> Fused.unprobed
  | Some pr -> fused_probe_wrapper pr

let query_plan (q : 'a Query.t) : 'a array plan =
  {
    stage_linq =
      (fun ?probe sink ->
        let w = linq_wrapper probe in
        let staged =
          Telemetry.with_span sink "stage" (fun () -> Linq.stage_probed w q)
        in
        fun () -> Enumerable.to_array (staged Expr.Open.empty));
    stage_fused =
      (fun ?probe sink ->
        let w = fused_wrapper probe in
        let spec =
          Telemetry.with_span sink "specialize" (fun () -> Specialize.query q)
        in
        let staged =
          Telemetry.with_span sink "stage" (fun () ->
              Fused.stage_probed w spec)
        in
        fun () -> Fused.materialize (staged Expr.Open.empty));
    chain =
      (fun sink ->
        let spec =
          Telemetry.with_span sink "specialize" (fun () -> Specialize.query q)
        in
        Telemetry.with_span sink "canon" (fun () -> Canon.of_specialized spec));
    of_raw = (fun r : _ array -> Obj.obj r);
  }

let scalar_plan (sq : 's Query.sq) : 's plan =
  {
    stage_linq =
      (fun ?probe sink ->
        let w = linq_wrapper probe in
        let staged =
          Telemetry.with_span sink "stage" (fun () ->
              Linq.stage_sq_probed w sq)
        in
        fun () -> staged Expr.Open.empty);
    stage_fused =
      (fun ?probe sink ->
        let w = fused_wrapper probe in
        let spec =
          Telemetry.with_span sink "specialize" (fun () ->
              Specialize.scalar sq)
        in
        let staged =
          Telemetry.with_span sink "stage" (fun () ->
              Fused.stage_sq_probed w spec)
        in
        fun () -> staged Expr.Open.empty);
    chain =
      (fun sink ->
        let spec =
          Telemetry.with_span sink "specialize" (fun () ->
              Specialize.scalar sq)
        in
        Telemetry.with_span sink "canon" (fun () ->
            Canon.of_specialized_scalar spec));
    of_raw = Obj.obj;
  }

(* {1 Configuration} *)

module Config = struct
  type tiering = { threshold : int }

  type adaptive = { drift : float; fused_below : int }

  type disk_cache = { dir : string; max_bytes : int; max_entries : int }

  type tracing = { sample : float; ring : int; slow_ms : float option }

  type t = {
    backend : backend;
    fallback : bool;
    optimize : bool;
    compile_timeout_ms : int option;
    cache_capacity : int;
    telemetry : Telemetry.sink;
    profile : bool;
    metrics : Metrics.t;
    strict : bool;
    tiering : tiering option;
    adaptive : adaptive option;
    disk_cache : disk_cache option;
    tracing : tracing option;
    admin_port : int option;
  }

  let default =
    {
      backend = (if native_available () then Native else Fused);
      fallback = true;
      optimize = true;
      compile_timeout_ms = None;
      cache_capacity = 128;
      telemetry = Telemetry.null;
      profile = false;
      metrics = Metrics.default ();
      strict = false;
      tiering = None;
      adaptive = None;
      disk_cache = None;
      tracing = None;
      admin_port = None;
    }

  let with_backend backend t = { t with backend }
  let with_fallback fallback t = { t with fallback }
  let with_optimize optimize t = { t with optimize }
  let with_compile_timeout compile_timeout_ms t = { t with compile_timeout_ms }
  let with_cache_capacity cache_capacity t = { t with cache_capacity }
  let with_telemetry telemetry t = { t with telemetry }
  let with_profile profile t = { t with profile }
  let with_metrics metrics t = { t with metrics }
  let with_strict strict t = { t with strict }
  let with_tiering ?(threshold = 8) t = { t with tiering = Some { threshold } }
  let without_tiering t = { t with tiering = None }

  let with_adaptive ?(drift = 0.3) ?(fused_below = 64) t =
    { t with adaptive = Some { drift; fused_below } }

  let without_adaptive t = { t with adaptive = None }

  let with_disk_cache ~dir ?(max_bytes = 256 * 1024 * 1024)
      ?(max_entries = 512) t =
    { t with disk_cache = Some { dir; max_bytes; max_entries } }

  let without_disk_cache t = { t with disk_cache = None }

  let with_tracing ?(sample = 1.0) ?(ring = 256) ?slow_ms t =
    { t with tracing = Some { sample; ring; slow_ms } }

  let without_tracing t = { t with tracing = None }

  let with_admin ~port t = { t with admin_port = Some port }

  let without_admin t = { t with admin_port = None }
end

module Engine = struct
  (* Re-exported so existing [{ default_config with backend = ... }]
     record syntax keeps working; [Config.t] with its combinators is the
     primary construction surface. *)
  type config = Config.t = {
    backend : backend;
    fallback : bool;
    optimize : bool;
    compile_timeout_ms : int option;
    cache_capacity : int;
    telemetry : Telemetry.sink;
    profile : bool;
    metrics : Metrics.t;
    strict : bool;
    tiering : Config.tiering option;
    adaptive : Config.adaptive option;
    disk_cache : Config.disk_cache option;
    tracing : Config.tracing option;
    admin_port : int option;
  }

  type t = {
    cfg : config;
    tracer : Trace.t;
        (* Request-scoped tracing (see [Trace]); [Trace.disabled] unless
           the configuration asked for it.  The engine's telemetry sink
           is teed into the tracer at creation, so existing pipeline
           spans and counters flow into the active trace. *)
    cache : (string, Dynload.compiled) Steno_lru.t;
    flight :
      (string, (bool * Dynload.compiled, fallback_reason) result)
        Steno_flight.t;
        (* Single-flight group keyed by plugin cache key: concurrent
           identical prepares share one compile.  The flight value
           carries (cache_hit, plugin) on success so followers can
           report how the leader got the plugin. *)
    pcache : Pcache.t option;
        (* The persistent on-disk plugin store, when the configuration
           asked for one.  Consulted between the in-process LRU and the
           compiler. *)
    cost : Cost.t;
        (* Per-plan runtime statistics feeding the adaptive phase.
           Always allocated (it is a few words when unused) and shared
           by every derived engine copy — sessions and [force_profile]
           views feed the same store, which is exactly what lets a
           profiled run teach an unprofiled prepare. *)
  }

  let default_config = Config.default

  (* Instrument handles for the optional subsystems.  [Metrics.counter]
     is get-or-register on (name, labels), so these are cheap to call on
     the hot path and safe from any domain. *)
  let pcache_hits_c eng =
    Metrics.counter eng.cfg.metrics "steno_pcache_hits"
      ~help:"Plugin loads served from the persistent on-disk cache"

  let pcache_misses_c eng =
    Metrics.counter eng.cfg.metrics "steno_pcache_misses"
      ~help:
        "Persistent-cache lookups that found no usable entry (including \
         corrupt artifacts dropped at load time)"

  let pcache_evictions_c eng =
    Metrics.counter eng.cfg.metrics "steno_pcache_evictions"
      ~help:"Entries evicted from the persistent on-disk cache by its caps"

  let tier_promotions_c eng result =
    Metrics.counter eng.cfg.metrics "steno_tier_promotions"
      ~help:
        "Background tier promotions of hot prepared queries (Fused -> \
         Native)"
      ~labels:[ "result", result ]

  let adaptive_c eng decision =
    Metrics.counter eng.cfg.metrics "steno_adaptive"
      ~help:
        "Decisions taken by the cost-based adaptive optimization phase"
      ~labels:[ "decision", decision ]

  let create cfg =
    let tracer =
      match cfg.tracing with
      | None -> Trace.disabled
      | Some { Config.sample; ring; slow_ms } ->
        Trace.create ~sample ~ring ?slow_ms ~metrics:cfg.metrics ()
    in
    (* Forward pipeline telemetry into active traces: every stage span
       and counter the engine already reports lands in the trace of the
       request it served, with no second instrumentation point. *)
    let cfg =
      if Trace.enabled tracer then
        {
          cfg with
          telemetry = Telemetry.tee cfg.telemetry (Trace.telemetry_sink tracer);
        }
      else cfg
    in
    (* Dynlink cannot unload plugin code, so a released handle is only
       dropped — but the release is now observable rather than silent. *)
    let on_evict _key (_ : Dynload.compiled) =
      Telemetry.count cfg.telemetry "cache.release" 1
    in
    (* Shard the plugin-cache lock once the cache is large enough that
       shard-local LRU order is a good approximation of global order;
       tiny caches keep one shard and exact eviction order. *)
    let shards = if cfg.cache_capacity >= 32 then 8 else 1 in
    let pcache =
      match cfg.disk_cache with
      | None -> None
      | Some { Config.dir; max_bytes; max_entries } ->
        Some
          (Pcache.create ~max_bytes ~max_entries
             ~fingerprint:(Dynload.fingerprint ()) ~dir ())
    in
    let eng =
      {
        cfg;
        tracer;
        cache =
          Steno_lru.create ~on_evict ~shards ~capacity:cfg.cache_capacity ();
        flight = Steno_flight.create ();
        pcache;
        cost = Cost.create ();
      }
    in
    (* Register the optional-feature families eagerly, so a scrape shows
       them at zero before the first disk lookup or promotion. *)
    if pcache <> None then begin
      ignore (pcache_hits_c eng);
      ignore (pcache_misses_c eng);
      ignore (pcache_evictions_c eng)
    end;
    if cfg.tiering <> None then ignore (tier_promotions_c eng "ok");
    if cfg.adaptive <> None then begin
      ignore (adaptive_c eng "reorder");
      ignore (adaptive_c eng "backend-fused");
      ignore (adaptive_c eng "drift")
    end;
    eng

  let pcache_stats e = Option.map Pcache.stats e.pcache

  let pcache_dir e = Option.map Pcache.dir e.pcache

  let config e = e.cfg

  let adaptive_config e = e.cfg.adaptive

  let cost_store e = e.cost

  let tracer e = e.tracer

  let telemetry e = e.cfg.telemetry

  let metrics e = e.cfg.metrics

  type cache_stats = {
    capacity : int;
    entries : int;
    hits : int;
    misses : int;
    evictions : int;
  }

  let cache_stats e =
    let s = Steno_lru.stats e.cache in
    {
      capacity = s.Steno_lru.capacity;
      entries = s.Steno_lru.entries;
      hits = s.Steno_lru.hits;
      misses = s.Steno_lru.misses;
      evictions = s.Steno_lru.evictions;
    }

  let cache_size e = Steno_lru.length e.cache

  let clear_cache e = Steno_lru.clear e.cache

  let traced_run sink backend f =
    if not (Telemetry.enabled sink) then f
    else
      fun () ->
        Telemetry.with_span sink "run"
          ~attrs:[ "backend", backend_name backend ]
          f

  (* Wrap a preparation's run function with the profile bookkeeping:
     accumulate wall time and native row deltas into the probe points,
     and flush per-run deltas into the engine's metrics registry.  The
     instrument handles are registered once here, at prepare time. *)
  let wrap_profiled eng (prof : profile) run =
    let m = eng.cfg.metrics in
    let bl = [ "backend", backend_name prof.prof_backend ] in
    let run_hist =
      Metrics.histogram m "steno_run_ms"
        ~help:"Wall time of profiled query runs (milliseconds)" ~labels:bl
    in
    let runs_c =
      Metrics.counter m "steno_runs" ~help:"Profiled query runs" ~labels:bl
    in
    let handles =
      List.map
        (fun (pt : Metrics.Probe.point) ->
          let labels =
            bl
            @ [
                "op", pt.Metrics.Probe.pt_label;
                "index", string_of_int pt.Metrics.Probe.pt_index;
              ]
          in
          ( pt,
            Metrics.counter m "steno_operator_rows"
              ~help:"Rows leaving each operator edge of profiled queries"
              ~labels,
            Metrics.counter m "steno_operator_calls"
              ~help:
                "Indirect or closure calls observed per operator (0 on the \
                 native backend: compiled loops make none)"
              ~labels,
            ref 0,
            ref 0 ))
        (Metrics.Probe.points prof.prof_probe)
    in
    fun () ->
      (match prof.prof_native_rows with
      | Some arr -> Array.fill arr 0 (Array.length arr) 0
      | None -> ());
      let t0 = now_ms () in
      let r = run () in
      let dt = now_ms () -. t0 in
      prof.prof_runs <- prof.prof_runs + 1;
      prof.prof_run_ms <- prof.prof_run_ms +. dt;
      (match prof.prof_native_rows with
      | Some arr ->
        List.iteri
          (fun i (pt : Metrics.Probe.point) ->
            if i < Array.length arr then
              pt.Metrics.Probe.pt_rows <-
                pt.Metrics.Probe.pt_rows + Array.unsafe_get arr i)
          (Metrics.Probe.points prof.prof_probe)
      | None -> ());
      (* The fused wrapper counts only rows per element; one row = one
         closure call, settled here once per run.  Derived points
         (cardinality-preserving transforms) take the upstream point's
         accumulated rows. *)
      if prof.prof_backend = Fused then (
        let prev = ref 0 in
        List.iter
          (fun (pt : Metrics.Probe.point) ->
            if pt.Metrics.Probe.pt_derived then
              pt.Metrics.Probe.pt_rows <- !prev;
            prev := pt.Metrics.Probe.pt_rows;
            pt.Metrics.Probe.pt_calls <- pt.Metrics.Probe.pt_rows)
          (Metrics.Probe.points prof.prof_probe));
      Metrics.observe run_hist dt;
      Metrics.inc runs_c;
      List.iter
        (fun ((pt : Metrics.Probe.point), rows_c, calls_c, last_r, last_c) ->
          Metrics.add rows_c (pt.Metrics.Probe.pt_rows - !last_r);
          last_r := pt.Metrics.Probe.pt_rows;
          Metrics.add calls_c (pt.Metrics.Probe.pt_calls - !last_c);
          last_c := pt.Metrics.Probe.pt_calls)
        handles;
      r

  let error_to_reason : Dynload.error -> fallback_reason = function
    | Dynload.Unavailable -> Compiler_unavailable
    | Dynload.Timeout { timeout_ms } -> Compile_timeout timeout_ms
    | Dynload.Compile_error msg -> Compile_error msg
    | Dynload.Load_error msg -> Load_error msg

  (* Count every actual external-compiler invocation into the engine's
     metrics registry.  With the single-flight group below, "N
     concurrent identical prepares run exactly one compile" is an
     invariant tests can assert on this counter. *)
  let count_compile eng result =
    Metrics.inc
      (Metrics.counter eng.cfg.metrics "steno_compile"
         ~help:
           "External compiler invocations (cache hits and deduplicated \
            prepares do not count)"
         ~labels:[ "result", result ])

  (* The full Native pipeline: specialize/canon/codegen (spans emitted by
     the plan), then the bounded plugin cache, then compile+load under
     the engine's timeout, then environment binding.

     Cache lookup and compilation run inside a single-flight call keyed
     by the plugin cache key: when several domains prepare the same
     query concurrently, one of them (the leader) performs the lookup
     and — on a miss — the compile; the others block until it finishes
     and share its plugin (or its failure), instead of racing N compiler
     invocations for one cache slot. *)
  let compile_native eng (plan : 'r plan) ~t0 :
      ((unit -> 'r) * compile_info * profile option, fallback_reason) result
      =
    let sink = eng.cfg.telemetry in
    let chain = plan.chain sink in
    let native_probe =
      if eng.cfg.profile then Some (Codegen.probe_of_chain chain) else None
    in
    let out =
      Telemetry.with_span sink "codegen" (fun () ->
          Codegen.generate ?probe:native_probe chain)
    in
    let t1 = now_ms () in
    (* The generated source already reflects any rewriting (and any probe
       increments), but the key still carries the optimizer and profile
       flags explicitly: a plugin compiled with optimization off must
       never satisfy an optimized lookup of a coincidentally identical
       source (and vice versa), e.g. across a config change on a shared
       engine. *)
    let cache_key =
      (if eng.cfg.profile then "P1:" else "P0:")
      ^ (if eng.cfg.optimize then "O1:" else "O0:")
      ^ out.Codegen.source
    in
    (* The leader registers its trace id as the flight note, so a
       follower from another request can record which trace actually
       paid for the compile it joined. *)
    let note = Option.map Trace.ctx_id (Trace.current ()) in
    let led, leader_note, looked_up =
      Steno_flight.run ?note eng.flight cache_key @@ fun () ->
      match Steno_lru.find eng.cache cache_key with
      | Some p ->
        Telemetry.count sink "cache.hit" 1;
        Ok (true, p)
      | None -> (
        (* Between the in-process LRU and the compiler sits the
           persistent store: an artifact compiled by an earlier process
           (or another engine on the same directory) loads in ~the
           dynlink cost alone.  Anything wrong with a cached artifact —
           torn file, stale ABI that slipped past the fingerprint, a
           hostile edit — downgrades to a miss: drop the entry and let
           the compiler rebuild it. *)
        let from_disk =
          match eng.pcache with
          | None -> None
          | Some pc -> (
            Trace.with_span eng.tracer "pcache.lookup" @@ fun () ->
            match Pcache.find pc ~key:cache_key with
            | None ->
              Metrics.inc (pcache_misses_c eng);
              None
            | Some path -> (
              match
                try Dynload.load_file ~path ()
                with _ -> Error (Dynload.Load_error "cached plugin raised")
              with
              | Ok p ->
                Metrics.inc (pcache_hits_c eng);
                Telemetry.count sink "pcache.hit" 1;
                Telemetry.emit sink "dynlink" ~start_ms:t1
                  ~duration_ms:p.Dynload.timings.Dynload.load_ms ();
                Some p
              | Error _ ->
                Pcache.remove pc ~key:cache_key;
                Metrics.inc (pcache_misses_c eng);
                None))
        in
        match from_disk with
        | Some p ->
          if Steno_lru.add eng.cache cache_key p then
            Telemetry.count sink "cache.eviction" 1;
          (* No compile happened: for this preparation's cost accounting
             a disk hit is a cache hit. *)
          Ok (true, p)
        | None -> (
          match
            Dynload.compile_artifact ?timeout_ms:eng.cfg.compile_timeout_ms
              ~source:out.Codegen.source ()
          with
          | Error e ->
            count_compile eng "error";
            Error (error_to_reason e)
          | Ok a -> (
            match
              try Dynload.load_file ~path:a.Dynload.a_cmxs ()
              with e ->
                Dynload.remove_artifact a;
                raise e
            with
            | Error e ->
              Dynload.remove_artifact a;
              count_compile eng "error";
              Error (error_to_reason e)
            | Ok loaded ->
              let p =
                {
                  loaded with
                  Dynload.timings =
                    {
                      Dynload.write_ms = a.Dynload.a_write_ms;
                      compile_ms = a.Dynload.a_compile_ms;
                      load_ms = loaded.Dynload.timings.Dynload.load_ms;
                    };
                  source_path = a.Dynload.a_ml;
                }
              in
              (* Publish to the persistent store before the scratch
                 artifact is deleted. *)
              (match eng.pcache with
              | None -> ()
              | Some pc ->
                let evicted =
                  Pcache.store pc ~key:cache_key ~cmxs:a.Dynload.a_cmxs
                in
                if evicted > 0 then
                  Metrics.add (pcache_evictions_c eng) evicted);
              Dynload.remove_artifact a;
              count_compile eng "ok";
              Telemetry.count sink "cache.miss" 1;
              if Steno_lru.add eng.cache cache_key p then
                Telemetry.count sink "cache.eviction" 1;
              Telemetry.emit sink "compile" ~start_ms:t1
                ~duration_ms:p.Dynload.timings.Dynload.compile_ms ();
              Telemetry.emit sink "dynlink"
                ~start_ms:(t1 +. p.Dynload.timings.Dynload.compile_ms)
                ~duration_ms:p.Dynload.timings.Dynload.load_ms ();
              Ok (false, p))))
    in
    if not led then begin
      (* This prepare joined another domain's in-flight compile. *)
      Telemetry.count sink "flight.join" 1;
      (* Link this trace to the one that ran the compile. *)
      Trace.instant eng.tracer "flight.follow"
        ~attrs:
          (match leader_note with
          | Some leader_trace -> [ "leader_trace", leader_trace ]
          | None -> [])
        ();
      Metrics.inc
        (Metrics.counter eng.cfg.metrics "steno_prepare_dedup"
           ~help:
             "Prepares that joined another domain's in-flight compile \
              instead of invoking the compiler")
    end;
    match looked_up with
    | Error _ as e -> e
    | Ok (leader_hit, plugin) ->
      (* A follower reuses the leader's plugin without compiling, which
         is a cache hit as far as this preparation's cost accounting is
         concerned. *)
      let cache_hit = leader_hit || not led in
      Trace.annotate eng.tracer
        [
          "cache", (if cache_hit then "hit" else "miss");
          "dedup", (if led then "leader" else "follower");
        ];
      let t2 = now_ms () in
      let env =
        Telemetry.with_span sink "env-bind" (fun () ->
            Expr.Capture_table.to_env out.Codegen.table)
      in
      let raw_run () =
        try plugin.Dynload.run env with e -> raise (translate_exn e)
      in
      let info =
        {
          backend = Native;
          requested = Native;
          cache_hit;
          prepare_ms = now_ms () -. t0;
          codegen_ms = t1 -. t0;
          compile_ms = (if cache_hit then 0.0 else t2 -. t1);
          fallback = None;
        }
      in
      let prof =
        match native_probe with
        | None -> None
        | Some np ->
          (* One point per generated edge, same order as the labels; the
             run wrapper folds the array's per-run deltas into them. *)
          let pr = Metrics.Probe.create () in
          Array.iter
            (fun lbl -> ignore (Metrics.Probe.point pr lbl))
            np.Codegen.probe_labels;
          Some
            {
              prof_backend = Native;
              prof_probe = pr;
              prof_native_rows = Some np.Codegen.probe_rows;
              prof_runs = 0;
              prof_run_ms = 0.0;
            }
      in
      Ok ((fun () -> plan.of_raw (raw_run ())), info, prof)

  let prep_of_staged eng ~sink ~t0 ~requested ~actual ~fallback staged =
    let probe =
      if eng.cfg.profile then Some (Metrics.Probe.create ()) else None
    in
    let ts = now_ms () in
    let run = staged ?probe sink in
    let staging_ms = now_ms () -. ts in
    let prof =
      match probe with
      | None -> None
      | Some pr ->
        Some
          {
            prof_backend = actual;
            prof_probe = pr;
            prof_native_rows = None;
            prof_runs = 0;
            prof_run_ms = 0.0;
          }
    in
    let run =
      match prof with None -> run | Some p -> wrap_profiled eng p run
    in
    {
      run_fn = traced_run sink actual run;
      p_info =
        {
          backend = actual;
          requested;
          cache_hit = false;
          prepare_ms = now_ms () -. t0;
          codegen_ms = staging_ms;
          compile_ms = 0.0;
          fallback;
        };
      p_rules = [];
      p_profile = prof;
      p_diags = [];
      p_tier = Atomic.make actual;
      p_decisions = [];
    }

  let prepare_plan_result (eng : t) ?backend (plan : 'r plan) :
      ('r prep, fallback_reason) result =
    let requested = Option.value backend ~default:eng.cfg.backend in
    let sink = eng.cfg.telemetry in
    let t0 = now_ms () in
    Telemetry.with_span sink "prepare"
      ~attrs:[ "backend", backend_name requested ]
    @@ fun () ->
    match requested with
    | Linq ->
      Ok
        (prep_of_staged eng ~sink ~t0 ~requested ~actual:Linq ~fallback:None
           plan.stage_linq)
    | Fused ->
      Ok
        (prep_of_staged eng ~sink ~t0 ~requested ~actual:Fused ~fallback:None
           plan.stage_fused)
    | Native when eng.cfg.tiering <> None && not eng.cfg.profile ->
      (* Tiered execution: return instantly on the staged Fused tier and
         let run-count probes trigger a background Native compile.  Not
         combined with [profile] — the probe points are allocated per
         tier at staging/codegen time, so a hot swap would silently
         split the profile across two point sets; profiled engines keep
         the synchronous path below. *)
      let threshold =
        match eng.cfg.tiering with
        | Some { Config.threshold } -> max 1 threshold
        | None -> assert false
      in
      let base =
        prep_of_staged eng ~sink ~t0 ~requested ~actual:Fused ~fallback:None
          plan.stage_fused
      in
      let cell = Atomic.make base.run_fn in
      let runs = Atomic.make 0 in
      let started = Atomic.make false in
      let promote () =
        (* Runs on a pool domain.  [compile_native] goes through the
           single-flight group and both plugin caches, so concurrent
           promotions of the same query (even from different prepared
           handles) cost one compile — and a pcache hit makes promotion
           nearly free. *)
        Trace.with_span eng.tracer "tier.promote" @@ fun () ->
        match compile_native eng plan ~t0:(now_ms ()) with
        | Ok (run, _info, _prof) ->
          Atomic.set cell (traced_run sink Native run);
          Atomic.set base.p_tier Native;
          Telemetry.count sink "tier.promote" 1;
          Metrics.inc (tier_promotions_c eng "ok")
        | Error _ -> Metrics.inc (tier_promotions_c eng "failed")
        | exception _ -> Metrics.inc (tier_promotions_c eng "failed")
      in
      let run_fn () =
        let n = 1 + Atomic.fetch_and_add runs 1 in
        if n >= threshold && Atomic.compare_and_set started false true then
          (* The promotion compile runs later on a pool domain; handing
             it the current context attributes its spans to the request
             that tripped the threshold. *)
          Domain_pool.async ?ctx:(Trace.current ()) promote;
        Trace.annotate eng.tracer
          [ "tier", backend_name (Atomic.get base.p_tier) ];
        (* In-flight runs that loaded the cell before the swap finish on
           the old tier; the publication itself is a single atomic. *)
        (Atomic.get cell) ()
      in
      Ok { base with run_fn }
    | Native -> (
      match compile_native eng plan ~t0 with
      | Ok (run, info, prof) ->
        let run =
          match prof with None -> run | Some p -> wrap_profiled eng p run
        in
        Ok
          {
            run_fn = traced_run sink Native run;
            p_info = { info with prepare_ms = now_ms () -. t0 };
            p_rules = [];
            p_profile = prof;
            p_diags = [];
            p_tier = Atomic.make Native;
            p_decisions = [];
          }
      | Error reason when eng.cfg.fallback ->
        Telemetry.count sink "engine.fallback" 1;
        Telemetry.emit sink "fallback"
          ~attrs:[ "reason", fallback_reason_label reason ]
          ~start_ms:(now_ms ()) ~duration_ms:0.0 ();
        Ok
          (prep_of_staged eng ~sink ~t0 ~requested ~actual:Fused
             ~fallback:(Some reason) plan.stage_fused)
      | Error reason -> Error reason)

  (* One tick of the translation-validation outcome counter.  Counted
     once per validated plan (not per obligation), and only when the
     optimizer actually fired something. *)
  let count_verify eng result =
    Metrics.inc
      (Metrics.counter eng.cfg.metrics "steno_verify"
         ~help:"Translation-validation outcomes for optimizer rewrites"
         ~labels:[ "result", result ])

  let event_names events =
    List.map (fun (e : Opt.event) -> e.Opt.ev_rule) events

  (* AST-level rewriting, as its own telemetry span, followed by
     translation validation of the rewrite log.  [opt] is [Opt.query_ev]
     or [Opt.scalar_ev] and [validate] the matching [Check.Equiv]
     entry point, kept abstract so collection and scalar preparation
     share this.

     The optimizer is not trusted: every firing carries the facts that
     justified it, and the validator re-derives them on the captured
     terms.  An undischarged obligation rejects the optimized plan — the
     engine falls back to the plan as written (surfacing an [SC012]
     diagnostic) or, when [strict], refuses the preparation outright. *)
  let optimize_verified eng opt validate q =
    if not eng.cfg.optimize then Ok (q, [], [])
    else begin
      let sink = eng.cfg.telemetry in
      let q', events =
        Telemetry.with_span sink "optimize"
          ~attrs:[ "level", "ast" ]
          (fun () -> opt q)
      in
      Telemetry.count sink "optimize.rules_applied" (List.length events);
      if events = [] then Ok (q', [], [])
      else begin
        let obligations =
          Telemetry.with_span sink "verify"
            ~attrs:[ "level", "ast" ]
            (fun () -> validate q q' events)
        in
        if Check.Equiv.accepted obligations then begin
          count_verify eng "accepted";
          Ok (q', event_names events, [])
        end
        else begin
          count_verify eng "rejected";
          let detail =
            String.concat "; " (Check.Equiv.failures obligations)
          in
          let d = Check.rejected_rewrite detail in
          if eng.cfg.strict then Error [ d ] else Ok (q, [], [ d ])
        end
      end
    end

  (* Hook the QUIL chain pass into a plan.  The chain is only built on
     the Native path, and synchronously within [prepare_plan], so the
     returned ref holds the fired chain rules by the time the
     preparation exists.  The chain rewrite log is validated the same
     way as the AST one; a rejection falls back to the un-rewritten
     chain (strict raises {!Check_failed} out of the preparation). *)
  let with_chain_pass eng plan =
    if not eng.cfg.optimize then plan, ref []
    else begin
      let fired = ref [] in
      let chain sink =
        let c = plan.chain sink in
        let c', events =
          Telemetry.with_span sink "optimize"
            ~attrs:[ "level", "quil" ]
            (fun () -> Opt.chain_ev c)
        in
        Telemetry.count sink "optimize.rules_applied" (List.length events);
        if events = [] then c
        else begin
          let obligations =
            Telemetry.with_span sink "verify"
              ~attrs:[ "level", "quil" ]
              (fun () -> Check.Equiv.validate_chain ~before:c ~after:c' events)
          in
          if Check.Equiv.accepted obligations then begin
            count_verify eng "accepted";
            fired := event_names events;
            c'
          end
          else begin
            count_verify eng "rejected";
            let detail =
              String.concat "; " (Check.Equiv.failures obligations)
            in
            if eng.cfg.strict then
              raise (Check_failed [ Check.rejected_rewrite detail ])
            else c
          end
        end
      in
      { plan with chain }, fired
    end

  (* {2 Adaptive (cost-based) optimization}

     The phase that closes the profiler→optimizer loop, gated by
     [Config.with_adaptive] and running after the syntactic fixpoint:

     - an estimator answers "what fraction of rows passes this
       predicate?" from the engine's [Cost] store when the plan has run
       under profiling, falling back to a static prior
       ([Check_purity.truth]: provably-true 1.0, provably-false 0.0,
       otherwise 0.5);
     - [Opt.adaptive_query_ev] reorders fused pure conjuncts by those
       estimates, logging one "stats-where-reorder" event per inverted
       pair — validated like any other rewrite (statistics pick among
       sound plans; they cannot make an unsound one acceptable);
     - the same estimates drive a backend decision (tiny inputs skip
       Native dispatch) and, in [Par], the partition count;
     - profiled runs feed per-operator row deltas back into the store,
       and a run whose fresh observations drift beyond the configured
       threshold from the selectivities this preparation assumed retires
       the stale statistics and re-prepares in the background, hot-
       swapping the run function atomically (the tiering pattern). *)

  let static_selectivity (lam : (_, bool) Expr.lam) =
    match Check_purity.truth (Expr.simplify lam.Expr.body) with
    | Check_purity.True -> 1.0
    | Check_purity.False -> 0.0
    | Check_purity.Unknown -> 0.5

  let estimator_for eng ~key =
    {
      Opt.est =
        (fun lam ->
          match
            Cost.selectivity eng.cost ~key ~digest:(Cost.pred_digest lam)
          with
          | Some s -> s
          | None -> static_selectivity lam);
    }

  (* The recording schema: the probed operator spine of the plan that
     will actually execute, in probe-point order (source first), with
     each [Where]'s digest and the measured selectivity this preparation
     assumed for it — [None] when the assumption was only the static
     prior, so drift detection never fires against a guess (a fresh
     query whose true selectivity is far from 0.5 is the expected case,
     not a stale plan).  Nested sub-plans (join inner sides, subqueries)
     stage without probe points and are therefore not walked. *)
  type rec_op = R_src | R_where of string * float option | R_other

  (* Like [Opt.estimator] but honest about provenance: [None] when the
     store holds no observation for the predicate. *)
  type sel_oracle = { sel : 'a. ('a, bool) Expr.lam -> float option }

  let oracle_for eng ~key =
    {
      sel =
        (fun lam ->
          Cost.selectivity eng.cost ~key ~digest:(Cost.pred_digest lam));
    }

  let rec query_schema : type a. sel_oracle -> a Query.t -> rec_op list =
   fun est q ->
    match q with
    | Query.Of_array _ | Query.Range _ | Query.Repeat _ -> [ R_src ]
    | Query.Where (q0, p) ->
      query_schema est q0
      @ [ R_where (Cost.pred_digest p, est.sel p) ]
    | Query.Select (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Select_i (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Select_q (q0, _, _) -> query_schema est q0 @ [ R_other ]
    | Query.Where_i (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Where_q (q0, _, _) -> query_schema est q0 @ [ R_other ]
    | Query.Take (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Skip (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Take_while (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Skip_while (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Select_many (q0, _, _) -> query_schema est q0 @ [ R_other ]
    | Query.Select_many_result (q0, _, _, _) ->
      query_schema est q0 @ [ R_other ]
    | Query.Join (outer, _, _, _, _) -> query_schema est outer @ [ R_other ]
    | Query.Group_by (q0, _) -> query_schema est q0 @ [ R_other ]
    | Query.Group_by_elem (q0, _, _) -> query_schema est q0 @ [ R_other ]
    | Query.Group_by_agg (q0, _, _, _) -> query_schema est q0 @ [ R_other ]
    | Query.Order_by (q0, _, _) -> query_schema est q0 @ [ R_other ]
    | Query.Distinct q0 -> query_schema est q0 @ [ R_other ]
    | Query.Rev q0 -> query_schema est q0 @ [ R_other ]
    | Query.Materialize q0 -> query_schema est q0 @ [ R_other ]

  (* A scalar query's probe points cover only its collection spine (the
     aggregate itself gets no point), so its schema is the spine's. *)
  let rec sq_schema : type s. sel_oracle -> s Query.sq -> rec_op list =
   fun est sq ->
    match sq with
    | Query.Aggregate (q, _, _) -> query_schema est q
    | Query.Aggregate_full (q, _, _, _) -> query_schema est q
    | Query.Aggregate_combinable (q, _, _, _) -> query_schema est q
    | Query.Sum_int q -> query_schema est q
    | Query.Sum_float q -> query_schema est q
    | Query.Count q -> query_schema est q
    | Query.Average q -> query_schema est q
    | Query.Min q -> query_schema est q
    | Query.Max q -> query_schema est q
    | Query.Min_by (q, _) -> query_schema est q
    | Query.Max_by (q, _) -> query_schema est q
    | Query.First q -> query_schema est q
    | Query.Last q -> query_schema est q
    | Query.Element_at (q, _) -> query_schema est q
    | Query.Any q -> query_schema est q
    | Query.Exists (q, _) -> query_schema est q
    | Query.For_all (q, _) -> query_schema est q
    | Query.Contains (q, _) -> query_schema est q
    | Query.Map_scalar (sq, _) -> sq_schema est sq

  (* Positional compatibility between the schema and the probe labels
     the executing backend actually allocated.  The staged backends
     label spine operators one-to-one; the native chain may append
     sink points (e.g. the materialize), so the schema must be a label-
     compatible prefix.  Any mismatch disables recording for the
     preparation rather than feeding garbage into the store. *)
  let rec_op_matches op label =
    match op with
    | R_src ->
      List.mem label [ "of-array"; "range"; "repeat"; "Src" ]
    | R_where _ -> label = "where" || label = "Pred"
    | R_other -> true

  let reorder_decisions events =
    List.filter_map
      (fun (e : Opt.event) ->
        match e.Opt.ev_facts with
        | [ Check.Equiv.Stats_selectivity (h, d, sh, sd) ] ->
          Some
            (Printf.sprintf
               "reordered: %s before %s, selectivity %.2f vs %.2f"
               (Cost.pred_label h) (Cost.pred_label d) sh sd)
        | _ -> None)
      events

  (* Run the adaptive rewrite and validate its event log, mirroring
     [optimize_verified]: accepted → the re-sorted plan plus display
     decisions; rejected → fall back to the plan as given (SC012), or
     refuse outright under [strict]. *)
  let adaptive_rewrite eng ~est ~adapt ~validate q =
    let sink = eng.cfg.telemetry in
    let split = eng.cfg.profile in
    let q', events =
      Telemetry.with_span sink "optimize"
        ~attrs:[ "level", "adaptive" ]
        (fun () -> adapt est ~split q)
    in
    if events = [] then
      (* Nothing moved.  [q'] may still differ from [q] under profiling
         (pure conjuncts split into stacked filters so each gets its own
         probe point) — an eventless structural identity. *)
      Ok ((if split then q' else q), [], [], [])
    else begin
      let obligations =
        Telemetry.with_span sink "verify"
          ~attrs:[ "level", "adaptive" ]
          (fun () -> validate q q' events)
      in
      if Check.Equiv.accepted obligations then begin
        count_verify eng "accepted";
        List.iter (fun _ -> Metrics.inc (adaptive_c eng "reorder")) events;
        Ok (q', event_names events, [], reorder_decisions events)
      end
      else begin
        count_verify eng "rejected";
        Metrics.inc (adaptive_c eng "rejected");
        let detail = String.concat "; " (Check.Equiv.failures obligations) in
        let d = Check.rejected_rewrite detail in
        if eng.cfg.strict then Error [ d ] else Ok (q, [], [ d ], [])
      end
    end

  (* Cost-based backend choice: when the engine would dispatch to
     Native, a plan whose estimated input is tiny stays on the staged
     Fused tier — the compiled loop cannot amortize even a plugin-cache
     hit over a handful of rows.  Only engine-level dispatch is
     overridden (an explicit per-call [?backend] wins), and tiering
     already solves this warm-up problem its own way. *)
  let backend_choice eng ~key ~static_rows backend =
    match eng.cfg.adaptive, backend with
    | Some a, None
      when eng.cfg.backend = Native && eng.cfg.tiering = None -> (
      let est_rows =
        match Cost.avg_source_rows eng.cost ~key with
        | Some r -> Some (int_of_float (Float.round r))
        | None -> static_rows ()
      in
      match est_rows with
      | Some n when n <= a.Config.fused_below ->
        Metrics.inc (adaptive_c eng "backend-fused");
        ( Some Fused,
          [ Printf.sprintf "backend: fused (est. %d rows)" n ] )
      | _ -> backend, [])
    | _ -> backend, []

  (* Minimum per-run rows a predicate must have been tested on before a
     drift verdict: a couple of elements can always contradict an
     assumed fraction. *)
  let drift_min_tested = 4

  (* Wrap a profiled preparation's run function with observation
     recording and drift detection.  After every run the per-operator
     row deltas are folded into the cost store; the first run whose
     observed selectivities diverge from this preparation's assumptions
     by more than the configured threshold retires the stale statistics
     (they must not be averaged into the new distribution), seeds the
     fresh epoch with the post-drift run, and re-prepares in the
     background through the ordinary prepare path (hence single-flight
     and both plugin caches), hot-swapping the run function atomically
     when it lands.  The replacement preparation carries its own
     recording wrapper, so this one steps aside after the swap. *)
  let wrap_adaptive eng (a : Config.adaptive) ~key ~schema
      ~(rebuild : unit -> ('r prep, 'e) result) (p : 'r prep) : 'r prep =
    match p.p_profile with
    | None -> p
    | Some prof ->
      let pts = Array.of_list (Metrics.Probe.points prof.prof_probe) in
      let schema = Array.of_list schema in
      let n = Array.length schema in
      let compatible =
        n > 0
        && Array.length pts >= n
        && (let ok = ref true in
            Array.iteri
              (fun i op ->
                if
                  i < n
                  && not (rec_op_matches op pts.(i).Metrics.Probe.pt_label)
                then ok := false)
              schema;
            !ok)
      in
      if not compatible then p
      else begin
        let assumptions_live =
          Array.exists
            (function R_where (_, Some _) -> true | _ -> false)
            schema
        in
        let last = Array.make n 0 in
        let swapped : (unit -> 'r) option Atomic.t = Atomic.make None in
        let reprep_started = Atomic.make false in
        let base = p.run_fn in
        let reprepare () =
          Trace.with_span eng.tracer "adaptive.reprepare" @@ fun () ->
          match rebuild () with
          | Ok p' ->
            Atomic.set swapped (Some p'.run_fn);
            Atomic.set p.p_tier (Atomic.get p'.p_tier);
            Metrics.inc (adaptive_c eng "reprepare-ok")
          | Error _ -> Metrics.inc (adaptive_c eng "reprepare-failed")
          | exception _ -> Metrics.inc (adaptive_c eng "reprepare-failed")
        in
        let observe () =
          let deltas =
            Array.init n (fun i ->
                let d = pts.(i).Metrics.Probe.pt_rows - last.(i) in
                last.(i) <- pts.(i).Metrics.Probe.pt_rows;
                max 0 d)
          in
          let drifted = ref false in
          if assumptions_live && not (Atomic.get reprep_started) then
            Array.iteri
              (fun i op ->
                match op with
                | R_where (_, Some assumed) when i > 0 ->
                  let tested = deltas.(i - 1) in
                  if tested >= drift_min_tested then begin
                    let obs =
                      float_of_int deltas.(i) /. float_of_int tested
                    in
                    if Float.abs (obs -. assumed) > a.Config.drift then
                      drifted := true
                  end
                | _ -> ())
              schema;
          if
            !drifted
            && Atomic.compare_and_set reprep_started false true
          then begin
            Metrics.inc (adaptive_c eng "drift");
            (* Retire before seeding: the flipped distribution must not
               blend with the history that misled this preparation. *)
            Cost.retire eng.cost ~key;
            (* The re-prepare compiles later on a pool domain, through
               the full prepare pipeline (checks, rewrite, validation,
               caches). *)
            Domain_pool.async ?ctx:(Trace.current ()) reprepare
          end;
          let pred_deltas =
            let acc = ref [] in
            Array.iteri
              (fun i op ->
                match op with
                | R_where (digest, _) when i > 0 ->
                  acc :=
                    {
                      Cost.pd_digest = digest;
                      pd_tested = deltas.(i - 1);
                      pd_passed = deltas.(i);
                    }
                    :: !acc
                | _ -> ())
              schema;
            List.rev !acc
          in
          Cost.record eng.cost ~key ~source_rows:deltas.(0) pred_deltas
        in
        let run_fn () =
          match Atomic.get swapped with
          | Some f -> f ()
          | None ->
            let r = base () in
            (try observe () with _ -> ());
            r
        in
        { p with run_fn }
      end

  (* {2 Static checks} *)

  (* Compress runs of one rule firing repeatedly (e.g. [where-fuse]
     collapsing a long filter chain) into a single annotated entry, so
     rewrite logs stay readable.  Non-adjacent repeats are preserved:
     they record distinct phases of the rewrite. *)
  let dedup_consecutive names =
    let flush name n acc =
      (if n > 1 then Printf.sprintf "%s (x%d)" name n else name) :: acc
    in
    let rec go acc current = function
      | [] -> (
        match current with
        | None -> List.rev acc
        | Some (name, n) -> List.rev (flush name n acc))
      | x :: rest -> (
        match current with
        | Some (name, n) when String.equal name x -> go acc (Some (name, n + 1)) rest
        | Some (name, n) -> go (flush name n acc) (Some (x, 1)) rest
        | None -> go acc (Some (x, 1)) rest)
    in
    go [] None names

  (* Count every diagnostic into the metrics registry and the telemetry
     sink.  Recording never raises: strictness is the caller's policy
     decision, applied on the result. *)
  let record_diagnostics eng diags =
    let m = eng.cfg.metrics in
    List.iter
      (fun (d : Check.diagnostic) ->
        Metrics.inc
          (Metrics.counter m "check_diagnostics"
             ~help:"Diagnostics emitted by prepare-time static checks"
             ~labels:
               [
                 "severity", Check.severity_string d.Check.d_severity;
                 "rule", d.Check.d_code;
               ]))
      diags;
    if diags <> [] then
      Telemetry.count eng.cfg.telemetry "check.diagnostics"
        (List.length diags)

  (* Lint under its own telemetry span, record, then apply strictness:
     on a [strict] engine, [Error]-level diagnostics make the query
     unpreparable ([Error errs]); otherwise every diagnostic is merely
     reported alongside the preparation ([Ok diags]). *)
  let run_checks_result eng lint =
    let diags =
      Telemetry.with_span eng.cfg.telemetry "check" (fun () -> lint ())
    in
    record_diagnostics eng diags;
    if eng.cfg.strict then
      match Check.errors diags with
      | [] -> Ok diags
      | errs -> Error errs
    else Ok diags

  let run_checks eng lint =
    match run_checks_result eng lint with
    | Ok diags -> diags
    | Error errs -> raise (Check_failed errs)

  (* The PDA well-formedness assertion on the chain the Native path is
     about to codegen — after canonicalization and the QUIL rewrite
     pass, so it guards the optimizer's output, not just the
     builders'. *)
  let with_verified_chain plan =
    {
      plan with
      chain =
        (fun sink ->
          let c = plan.chain sink in
          Check.assert_well_formed c;
          c);
    }

  (* Satellite to [with_verified_chain]: that assertion only fires when
     the Native path actually builds the chain, so on the interpreted
     backends a malformed post-optimization chain would go unnoticed.
     On a [strict] engine, run the PDA acceptance eagerly on every
     prepare — on the chain as it will be after the QUIL rewrite pass,
     whatever backend executes.  Queries outside the QUIL fragment have
     no chain to check. *)
  let strict_pda eng canon_of x =
    if not eng.cfg.strict then Ok ()
    else
      match canon_of x with
      | exception Canon.Unsupported _ -> Ok ()
      | c -> (
        let c = if eng.cfg.optimize then fst (Opt.chain c) else c in
        Metrics.inc
          (Metrics.counter eng.cfg.metrics "steno_pda_checks"
             ~help:"Strict-mode PDA acceptance checks at prepare time"
             ~labels:[]);
        match Check.verify c with
        | Ok () -> Ok ()
        | Error msg -> Error [ Check.malformed msg ])

  (* An [SC000] diagnostic when the lowered chain fails the PDA.  Queries
     outside the QUIL fragment have no chain to verify. *)
  let chain_diags of_canon x =
    match of_canon x with
    | exception Canon.Unsupported _ -> []
    | chain -> (
      match Check.verify chain with
      | Ok () -> []
      | Error msg -> [ Check.malformed msg ])

  let check eng q =
    run_checks eng (fun () -> chain_diags Canon.of_query q @ Check.query q)

  let check_scalar eng sq =
    run_checks eng (fun () -> chain_diags Canon.of_scalar sq @ Check.scalar sq)

  (* {2 Preparing} *)

  (* Every way a preparation can be refused, as one value.  The raising
     entry points ([prepare], [prepare_scalar]) are wrappers that map
     this back onto the historical exceptions. *)
  type error =
    | Check_error of Check.diagnostic list
    | Compile_failure of fallback_reason

  let error_message = function
    | Check_error errs ->
      "static checks failed: "
      ^ String.concat "; " (List.map Check.to_string errs)
    | Compile_failure reason -> fallback_reason_message reason

  (* Attach the optimized plan's QUIL rendering to the active trace, so
     the slow-query log can show {e what} ran, not just how long.  Costs
     a canonicalization, so only under an active trace; queries outside
     the QUIL fragment simply have no plan attribute. *)
  let annotate_plan eng canon_of x =
    if Trace.enabled eng.tracer && Trace.current () <> None then
      match canon_of x with
      | exception _ -> ()
      | c ->
        let c = if eng.cfg.optimize then fst (Opt.chain c) else c in
        Trace.annotate eng.tracer [ "plan", Quil.symbol_string c ]

  (* [rec]: a drift re-preparation re-enters this function from a pool
     domain with the original query (and requested backend), so the
     replacement plan goes through the whole pipeline — checks, the
     syntactic fixpoint, a fresh adaptive pass over the post-drift
     statistics, validation, and both plugin caches. *)
  let rec try_prepare : 'a. ?backend:backend -> t -> 'a Query.t ->
      ('a array prep, error) result =
   fun ?backend eng q_orig ->
    let q = q_orig in
    match
      run_checks_result eng (fun () ->
          chain_diags Canon.of_query q @ Check.query q)
    with
    | Error errs -> Error (Check_error errs)
    | Ok diags -> (
      match
        optimize_verified eng Opt.query_ev
          (fun before after evs ->
            Check.Equiv.validate_query ~before ~after evs)
          q
      with
      | Error errs -> Error (Check_error errs)
      | Ok (q, ast_rules, verify_diags) -> (
        record_diagnostics eng verify_diags;
        (* The plan key is taken after the syntactic fixpoint but before
           the adaptive pass: the fixpoint is deterministic, so a drift
           re-preparation lands on the same key, while the key never
           depends on the statistics-driven ordering it feeds. *)
        let actx =
          match eng.cfg.adaptive with
          | None -> None
          | Some a ->
            let key = Cost.plan_key ~optimize:eng.cfg.optimize q in
            Some (a, key, estimator_for eng ~key)
        in
        let adaptive =
          match actx with
          | None -> Ok (q, [], [], [])
          | Some (_, _, est) ->
            adaptive_rewrite eng ~est
              ~adapt:(fun e ~split q -> Opt.adaptive_query_ev e ~split q)
              ~validate:(fun before after evs ->
                Check.Equiv.validate_query ~before ~after evs)
              q
        in
        match adaptive with
        | Error errs -> Error (Check_error errs)
        | Ok (q, ad_rules, ad_diags, ad_decisions) -> (
          record_diagnostics eng ad_diags;
          match strict_pda eng Canon.of_query q with
          | Error errs -> Error (Check_error errs)
          | Ok () -> (
            annotate_plan eng Canon.of_query q;
            let plan, chain_rules = with_chain_pass eng (query_plan q) in
            let backend', be_decisions =
              match actx with
              | Some (_, key, _) ->
                backend_choice eng ~key
                  ~static_rows:(fun () ->
                    ((Check_flow.props q).Check_flow.card).Check_purity.hi)
                  backend
              | None -> backend, []
            in
            match
              prepare_plan_result eng ?backend:backend'
                (with_verified_chain plan)
            with
            | Error reason -> Error (Compile_failure reason)
            | Ok p ->
              let p =
                {
                  p with
                  p_rules =
                    dedup_consecutive (ast_rules @ ad_rules @ !chain_rules);
                  p_diags = verify_diags @ ad_diags @ diags;
                  p_decisions = ad_decisions @ be_decisions;
                }
              in
              let p =
                match actx with
                | Some (a, key, _) when eng.cfg.profile ->
                  wrap_adaptive eng a ~key
                    ~schema:(query_schema (oracle_for eng ~key) q)
                    ~rebuild:(fun () -> try_prepare ?backend eng q_orig)
                    p
                | _ -> p
              in
              Ok p))))

  let rec try_prepare_scalar : 's. ?backend:backend -> t -> 's Query.sq ->
      ('s prep, error) result =
   fun ?backend eng sq_orig ->
    let sq = sq_orig in
    match
      run_checks_result eng (fun () ->
          chain_diags Canon.of_scalar sq @ Check.scalar sq)
    with
    | Error errs -> Error (Check_error errs)
    | Ok diags -> (
      match
        optimize_verified eng Opt.scalar_ev
          (fun before after evs ->
            Check.Equiv.validate_scalar ~before ~after evs)
          sq
      with
      | Error errs -> Error (Check_error errs)
      | Ok (sq, ast_rules, verify_diags) -> (
        record_diagnostics eng verify_diags;
        let actx =
          match eng.cfg.adaptive with
          | None -> None
          | Some a ->
            let key = Cost.scalar_key ~optimize:eng.cfg.optimize sq in
            Some (a, key, estimator_for eng ~key)
        in
        let adaptive =
          match actx with
          | None -> Ok (sq, [], [], [])
          | Some (_, _, est) ->
            adaptive_rewrite eng ~est
              ~adapt:(fun e ~split sq -> Opt.adaptive_scalar_ev e ~split sq)
              ~validate:(fun before after evs ->
                Check.Equiv.validate_scalar ~before ~after evs)
              sq
        in
        match adaptive with
        | Error errs -> Error (Check_error errs)
        | Ok (sq, ad_rules, ad_diags, ad_decisions) -> (
          record_diagnostics eng ad_diags;
          match strict_pda eng Canon.of_scalar sq with
          | Error errs -> Error (Check_error errs)
          | Ok () -> (
            annotate_plan eng Canon.of_scalar sq;
            let plan, chain_rules = with_chain_pass eng (scalar_plan sq) in
            let backend', be_decisions =
              match actx with
              | Some (_, key, _) ->
                (* No flow prior on the scalar side: the aggregate's own
                   cardinality is one, so only observed source rows can
                   justify skipping the native dispatch. *)
                backend_choice eng ~key ~static_rows:(fun () -> None) backend
              | None -> backend, []
            in
            match
              prepare_plan_result eng ?backend:backend'
                (with_verified_chain plan)
            with
            | Error reason -> Error (Compile_failure reason)
            | Ok p ->
              let p =
                {
                  p with
                  p_rules =
                    dedup_consecutive (ast_rules @ ad_rules @ !chain_rules);
                  p_diags = verify_diags @ ad_diags @ diags;
                  p_decisions = ad_decisions @ be_decisions;
                }
              in
              let p =
                match actx with
                | Some (a, key, _) when eng.cfg.profile ->
                  wrap_adaptive eng a ~key
                    ~schema:(sq_schema (oracle_for eng ~key) sq)
                    ~rebuild:(fun () -> try_prepare_scalar ?backend eng sq_orig)
                    p
                | _ -> p
              in
              Ok p))))

  let raise_error = function
    | Check_error errs -> raise (Check_failed errs)
    | Compile_failure reason ->
      raise (Dynload.Compilation_failed (fallback_reason_message reason))

  let prepare ?backend eng q =
    match try_prepare ?backend eng q with
    | Ok p -> p
    | Error e -> raise_error e

  let prepare_scalar ?backend eng sq =
    match try_prepare_scalar ?backend eng sq with
    | Ok p -> p
    | Error e -> raise_error e

  let to_array ?backend eng q = (prepare ?backend eng q).run_fn ()

  let to_list ?backend eng q = Array.to_list (to_array ?backend eng q)

  let scalar ?backend eng sq = (prepare_scalar ?backend eng sq).run_fn ()

  (* {2 Explain} *)

  type explanation = {
    quil_before : string;
    quil_after : string;
    operators_before : int;
    operators_after : int;
    rules : string list;
    properties : (string * string) list;
    diagnostics : Check.diagnostic list;
  }

  let rendered_props anns =
    List.map
      (fun (label, p) -> label, Check_flow.props_string p)
      anns

  let explain_chains eng ~before ~after_canon ~ast_rules ~properties
      ~diagnostics =
    let after, chain_rules =
      if eng.cfg.optimize then Opt.chain after_canon else after_canon, []
    in
    {
      quil_before = Quil.symbol_string before;
      quil_after = Quil.symbol_string after;
      operators_before = Quil.operator_count before;
      operators_after = Quil.operator_count after;
      rules = dedup_consecutive (ast_rules @ chain_rules);
      properties;
      diagnostics;
    }

  let explain eng q =
    let before = Canon.of_query q in
    let q', ast_rules =
      if eng.cfg.optimize then Opt.query q else q, []
    in
    let after_canon =
      if eng.cfg.optimize then Canon.of_query q' else before
    in
    explain_chains eng ~before ~after_canon ~ast_rules
      ~properties:(rendered_props (Check_flow.annotate q'))
      ~diagnostics:(Check.query q)

  let explain_scalar eng sq =
    let before = Canon.of_scalar sq in
    let sq', ast_rules =
      if eng.cfg.optimize then Opt.scalar sq else sq, []
    in
    let after_canon =
      if eng.cfg.optimize then Canon.of_scalar sq' else before
    in
    explain_chains eng ~before ~after_canon ~ast_rules
      ~properties:(rendered_props (Check_flow.annotate_scalar sq'))
      ~diagnostics:(Check.scalar sq)

  let explain_to_string ex =
    let b = Buffer.create 256 in
    Printf.bprintf b "plan before: %s\n" ex.quil_before;
    Printf.bprintf b "plan after:  %s\n" ex.quil_after;
    Printf.bprintf b "operators:   %d -> %d\n" ex.operators_before
      ex.operators_after;
    (match ex.rules with
    | [] -> Buffer.add_string b "rules applied: (none)\n"
    | rules ->
      Buffer.add_string b "rules applied:\n";
      List.iter (fun r -> Printf.bprintf b "  - %s\n" r) rules);
    (match ex.properties with
    | [] -> ()
    | ps ->
      Buffer.add_string b "properties:\n";
      List.iteri
        (fun i (label, s) ->
          Printf.bprintf b "  %d:%-12s %s\n" i label s)
        ps);
    (match ex.diagnostics with
    | [] -> ()
    | ds ->
      Buffer.add_string b "diagnostics:\n";
      List.iter (fun d -> Printf.bprintf b "  %s\n" (Check.to_string d)) ds);
    Buffer.contents b

  (* {2 Verify} *)

  (* Replay the whole optimization pipeline on [q] and return every
     proof obligation the translation validator discharges for it: the
     AST rewrite log first, then (when the optimized plan lowers into
     the QUIL fragment) the chain rewrite log.  An engine with
     [optimize = false] fires no rewrites and so owes no obligations. *)
  let verify_obligations of_canon eng opt validate x =
    if not eng.cfg.optimize then []
    else begin
      let x', events = opt x in
      let ast = validate x x' events in
      let chain_obs =
        match of_canon x' with
        | exception Canon.Unsupported _ -> []
        | c ->
          let c', cev = Opt.chain_ev c in
          Check.Equiv.validate_chain ~before:c ~after:c' cev
      in
      ast @ chain_obs
    end

  let verify eng q =
    verify_obligations Canon.of_query eng Opt.query_ev
      (fun before after evs -> Check.Equiv.validate_query ~before ~after evs)
      q

  let verify_scalar eng sq =
    verify_obligations Canon.of_scalar eng Opt.scalar_ev
      (fun before after evs ->
        Check.Equiv.validate_scalar ~before ~after evs)
      sq

  (* {2 Explain analyze} *)

  type analysis = {
    a_requested : backend;
    a_backend : backend;
    a_explanation : explanation;
    a_profile : profile_snapshot;
    a_result_rows : int option;
    a_decisions : string list;
  }

  (* A view of [eng] with profiling forced on; shares the plugin cache
     (profiled native code has distinct keys, so no aliasing). *)
  let force_profile eng =
    if eng.cfg.profile then eng
    else { eng with cfg = { eng.cfg with profile = true } }

  let analysis_of_prep ~requested ~explanation ~result_rows (p : _ prep) =
    let prof =
      match p.p_profile with
      | Some prof -> profile_snapshot prof
      | None ->
        (* Unreachable: the preparation came from a profiling engine. *)
        {
          ps_backend = p.p_info.backend;
          ps_runs = 0;
          ps_run_ms = 0.0;
          ps_ops = [];
        }
    in
    {
      a_requested = requested;
      a_backend = p.p_info.backend;
      a_explanation = explanation;
      a_profile = prof;
      a_result_rows = result_rows;
      a_decisions = p.p_decisions;
    }

  let explain_analyze ?backend eng q =
    let requested = Option.value backend ~default:eng.cfg.backend in
    let explanation = explain eng q in
    let p = prepare ?backend (force_profile eng) q in
    let r = p.run_fn () in
    analysis_of_prep ~requested ~explanation
      ~result_rows:(Some (Array.length r)) p

  let explain_analyze_scalar ?backend eng sq =
    let requested = Option.value backend ~default:eng.cfg.backend in
    let explanation = explain_scalar eng sq in
    let p = prepare_scalar ?backend (force_profile eng) sq in
    ignore (p.run_fn ());
    analysis_of_prep ~requested ~explanation ~result_rows:None p

  let analysis_to_string a =
    let b = Buffer.create 512 in
    Printf.bprintf b "backend:     %s%s\n"
      (backend_name a.a_backend)
      (if a.a_backend <> a.a_requested then
         Printf.sprintf " (requested %s, fell back)"
           (backend_name a.a_requested)
       else "");
    Buffer.add_string b (explain_to_string a.a_explanation);
    (match a.a_result_rows with
    | Some n -> Printf.bprintf b "result rows: %d\n" n
    | None -> Buffer.add_string b "result:      scalar\n");
    Printf.bprintf b "runs: %d, run time: %.3f ms\n" a.a_profile.ps_runs
      a.a_profile.ps_run_ms;
    (match a.a_profile.ps_ops with
    | [] -> Buffer.add_string b "operators: (no probe points)\n"
    | ops ->
      Printf.bprintf b "%-4s %-28s %12s %12s %10s\n" "#" "operator" "rows"
        "calls" "time(ms)";
      (* Linq point times are upstream-inclusive move_next time, so the
         per-operator exclusive time is the difference of consecutive
         points; fused loops and native code have no meaningful
         per-operator clock. *)
      let prev_ns = ref 0 in
      List.iter
        (fun op ->
          let time_cell =
            if a.a_profile.ps_backend = Linq then begin
              let excl = max 0 (op.op_ns - !prev_ns) in
              prev_ns := op.op_ns;
              Printf.sprintf "%.3f" (float_of_int excl /. 1e6)
            end
            else "-"
          in
          Printf.bprintf b "%-4d %-28s %12d %12d %10s\n" op.op_index
            op.op_label op.op_rows op.op_calls time_cell)
        ops);
    (match a.a_decisions with
    | [] -> ()
    | ds ->
      Buffer.add_string b "adaptive decisions:\n";
      List.iter (fun d -> Printf.bprintf b "  %s\n" d) ds);
    Buffer.contents b
end

(* {1 Sessions} *)

module Session = struct
  type stats = {
    prepares : int;
    runs : int;
    run_ms : float;
  }

  (* A session is a client-facing view of an engine: the engine value
     inside is a derived copy whose [cfg] carries the session's
     overrides, while the plugin cache and the single-flight group are
     physically shared with the base engine (config flags that change
     generated code are part of the cache key, so sharing never
     aliases).  The counters are atomics: one session handle may be
     driven from several domains. *)
  type t = {
    s_engine : Engine.t;
    s_client : string;
    s_labels : (string * string) list;
    s_prepares : int Atomic.t;
    s_runs : int Atomic.t;
    s_run_ms : float Atomic.t;
  }

  (* Same boxed-float CAS spin as the metrics shards. *)
  let rec add_float cell x =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. x)) then add_float cell x

  let create ?backend ?optimize ?profile ?strict ?config ?(labels = [])
      engine ~client_id =
    let cfg = Engine.config engine in
    let cfg =
      {
        cfg with
        Engine.backend = Option.value backend ~default:cfg.Engine.backend;
        optimize = Option.value optimize ~default:cfg.Engine.optimize;
        profile = Option.value profile ~default:cfg.Engine.profile;
        strict = Option.value strict ~default:cfg.Engine.strict;
      }
    in
    (* The [Config] combinator form of the overrides above; applied
       last, so it wins over the individual flags. *)
    let cfg = match config with None -> cfg | Some f -> f cfg in
    {
      s_engine = { engine with Engine.cfg };
      s_client = client_id;
      s_labels = labels;
      s_prepares = Atomic.make 0;
      s_runs = Atomic.make 0;
      s_run_ms = Atomic.make 0.0;
    }

  let engine s = s.s_engine

  let client_id s = s.s_client

  let labels s = s.s_labels

  (* Wrap a preparation's run function with the session's accounting:
     wall time and run count flow into the engine's metrics registry
     under this session's client/tenant labels, and into the session's
     own counters.  Instrument handles are registered once, here. *)
  let instrument s (p : 'r prep) : 'r prep =
    let m = Engine.metrics s.s_engine in
    let labels =
      ("backend", backend_name p.p_info.backend)
      :: ("client", s.s_client)
      :: s.s_labels
    in
    let hist =
      Metrics.histogram m "steno_run_ms"
        ~help:"Wall time of profiled query runs (milliseconds)" ~labels
    in
    let runs_c =
      Metrics.counter m "steno_runs" ~help:"Profiled query runs" ~labels
    in
    let base = p.run_fn in
    let run_fn () =
      let t0 = now_ms () in
      let r = base () in
      let dt = now_ms () -. t0 in
      Metrics.observe hist dt;
      Metrics.inc runs_c;
      Atomic.incr s.s_runs;
      add_float s.s_run_ms dt;
      r
    in
    { p with run_fn }

  (* Stamp the active trace (if any) with this session's identity, so a
     trace started outside [Server.submit] still records who asked. *)
  let annotate_trace s =
    Trace.annotate (Engine.tracer s.s_engine) [ "client", s.s_client ]

  let try_prepare ?backend s q =
    Atomic.incr s.s_prepares;
    annotate_trace s;
    Result.map (instrument s) (Engine.try_prepare ?backend s.s_engine q)

  let try_prepare_scalar ?backend s sq =
    Atomic.incr s.s_prepares;
    annotate_trace s;
    Result.map (instrument s)
      (Engine.try_prepare_scalar ?backend s.s_engine sq)

  let prepare ?backend s q =
    Atomic.incr s.s_prepares;
    annotate_trace s;
    instrument s (Engine.prepare ?backend s.s_engine q)

  let prepare_scalar ?backend s sq =
    Atomic.incr s.s_prepares;
    annotate_trace s;
    instrument s (Engine.prepare_scalar ?backend s.s_engine sq)

  let to_array ?backend s q = (prepare ?backend s q).run_fn ()

  let to_list ?backend s q = Array.to_list (to_array ?backend s q)

  let scalar ?backend s sq = (prepare_scalar ?backend s sq).run_fn ()

  let stats s =
    {
      prepares = Atomic.get s.s_prepares;
      runs = Atomic.get s.s_runs;
      run_ms = Atomic.get s.s_run_ms;
    }

  let cache_stats s = Engine.cache_stats s.s_engine

  let cache_size s = Engine.cache_size s.s_engine

  let clear_cache s = Engine.clear_cache s.s_engine
end

(* The compatibility default engine and session: the only process-global
   engine state, created on first use.  Published by CAS rather than
   [lazy]: forcing a lazy from two domains at once raises [RacyLazy],
   and the free functions below are documented as domain-safe. *)
let default_engine_v : Engine.t option Atomic.t = Atomic.make None

let rec default_engine () =
  match Atomic.get default_engine_v with
  | Some e -> e
  | None ->
    let e = Engine.create Engine.default_config in
    if Atomic.compare_and_set default_engine_v None (Some e) then e
    else default_engine ()

let default_session_v : Session.t option Atomic.t = Atomic.make None

let rec default_session () =
  match Atomic.get default_session_v with
  | Some s -> s
  | None ->
    let s = Session.create (default_engine ()) ~client_id:"default" in
    if Atomic.compare_and_set default_session_v None (Some s) then s
    else default_session ()

let prepare ?backend q = Session.prepare ?backend (default_session ()) q

let prepare_scalar ?backend sq =
  Session.prepare_scalar ?backend (default_session ()) sq

module Prepared = struct
  type 'a t = 'a prepared

  let run p = p.run_fn ()
  let backend_used p = Atomic.get p.p_tier
  let compile_info p = p.p_info
  let rewrite_log p = p.p_rules
  let diagnostics p = p.p_diags
  let profile p = Option.map profile_snapshot p.p_profile
  let decisions p = p.p_decisions
end

module Prepared_scalar = struct
  type 's t = 's prepared_scalar

  let run p = p.run_fn ()
  let backend_used p = Atomic.get p.p_tier
  let compile_info p = p.p_info
  let rewrite_log p = p.p_rules
  let diagnostics p = p.p_diags
  let profile p = Option.map profile_snapshot p.p_profile
  let decisions p = p.p_decisions
end

let to_array ?backend q = Prepared.run (prepare ?backend q)

let to_list ?backend q = Array.to_list (to_array ?backend q)

let scalar ?backend sq = Prepared_scalar.run (prepare_scalar ?backend sq)

let generated_source q = (Codegen.generate (Canon.of_query q)).Codegen.source

let generated_source_scalar sq =
  (Codegen.generate (Canon.of_scalar sq)).Codegen.source

let quil q = Quil.symbol_string (Canon.of_query q)

let quil_scalar sq = Quil.symbol_string (Canon.of_scalar sq)

let cache_size () = Engine.cache_size (default_engine ())

let clear_cache () = Engine.clear_cache (default_engine ())

(* Re-export so clients can speak to an engine's statistics store
   ([Engine.cost_store]) without depending on the library directly. *)
module Cost = Cost
