type backend =
  | Linq
  | Fused
  | Native

let native_available = Dynload.is_available

let default_backend = ref Fused

let () = if native_available () then default_backend := Native

type compile_info = {
  backend : backend;
  cache_hit : bool;
  prepare_ms : float;
  codegen_ms : float;
  compile_ms : float;
}

type 'a prepared = {
  run_fn : unit -> 'a array;
  p_info : compile_info;
}

type 's prepared_scalar = {
  run_sfn : unit -> 's;
  s_info : compile_info;
}

(* Query cache: generated source text -> loaded plugin.  Captured values
   print as environment slots, so two structurally identical queries over
   different data share one plugin (section 7.1's cached query object). *)
let cache : (string, Dynload.compiled) Hashtbl.t = Hashtbl.create 16

let cache_mutex = Mutex.create ()

let cache_size () = Mutex.protect cache_mutex (fun () -> Hashtbl.length cache)

let clear_cache () =
  Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Map the generated code's empty-sequence failure back to the exception
   the iterator pipeline raises, so backends agree observably. *)
let translate_exn : exn -> exn = function
  | Failure msg when msg = Codegen.empty_sequence_message ->
    Iterator.No_such_element
  | e -> e

let compile_native (chain : Quil.chain) =
  let t0 = now_ms () in
  let out = Codegen.generate chain in
  let t1 = now_ms () in
  let cached, plugin =
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache out.Codegen.source with
        | Some p -> true, Some p
        | None -> false, None)
  in
  let plugin =
    match plugin with
    | Some p -> p
    | None ->
      let p = Dynload.compile ~source:out.Codegen.source in
      Mutex.protect cache_mutex (fun () ->
          Hashtbl.replace cache out.Codegen.source p);
      p
  in
  let t2 = now_ms () in
  let env = Expr.Capture_table.to_env out.Codegen.table in
  let run () =
    try plugin.Dynload.run env with e -> raise (translate_exn e)
  in
  let info =
    {
      backend = Native;
      cache_hit = cached;
      prepare_ms = t2 -. t0;
      codegen_ms = t1 -. t0;
      compile_ms = (if cached then 0.0 else t2 -. t1);
    }
  in
  run, info

let no_compile backend t0 =
  {
    backend;
    cache_hit = false;
    prepare_ms = now_ms () -. t0;
    codegen_ms = 0.0;
    compile_ms = 0.0;
  }

let prepare ?backend (q : 'a Query.t) : 'a prepared =
  let backend = Option.value backend ~default:!default_backend in
  let t0 = now_ms () in
  match backend with
  | Linq ->
    let staged = Linq.stage q in
    {
      run_fn = (fun () -> Enumerable.to_array (staged Expr.Open.empty));
      p_info = no_compile Linq t0;
    }
  | Fused ->
    let staged = Fused.stage (Specialize.query q) in
    {
      run_fn = (fun () -> Fused.materialize (staged Expr.Open.empty));
      p_info = no_compile Fused t0;
    }
  | Native ->
    let run, info = compile_native (Canon.of_query q) in
    { run_fn = (fun () : 'a array -> Obj.obj (run ())); p_info = info }

let prepare_scalar ?backend (sq : 's Query.sq) : 's prepared_scalar =
  let backend = Option.value backend ~default:!default_backend in
  let t0 = now_ms () in
  match backend with
  | Linq ->
    let staged = Linq.stage_sq sq in
    {
      run_sfn = (fun () -> staged Expr.Open.empty);
      s_info = no_compile Linq t0;
    }
  | Fused ->
    let staged = Fused.stage_sq (Specialize.scalar sq) in
    {
      run_sfn = (fun () -> staged Expr.Open.empty);
      s_info = no_compile Fused t0;
    }
  | Native ->
    let run, info = compile_native (Canon.of_scalar sq) in
    { run_sfn = (fun () : 's -> Obj.obj (run ())); s_info = info }

let run p = p.run_fn ()

let run_scalar p = p.run_sfn ()

let info p = p.p_info

let info_scalar p = p.s_info

let to_array ?backend q = run (prepare ?backend q)

let to_list ?backend q = Array.to_list (to_array ?backend q)

let scalar ?backend sq = run_scalar (prepare_scalar ?backend sq)

let generated_source q = (Codegen.generate (Canon.of_query q)).Codegen.source

let generated_source_scalar sq =
  (Codegen.generate (Canon.of_scalar sq)).Codegen.source

let quil q = Quil.symbol_string (Canon.of_query q)

let quil_scalar sq = Quil.symbol_string (Canon.of_scalar sq)
