type backend =
  | Linq
  | Fused
  | Native

let native_available = Dynload.is_available

let backend_name = function
  | Linq -> "linq"
  | Fused -> "fused"
  | Native -> "native"

type fallback_reason =
  | Compiler_unavailable
  | Compile_timeout of int
  | Compile_error of string
  | Load_error of string

let fallback_reason_message = function
  | Compiler_unavailable -> "native compiler unavailable"
  | Compile_timeout ms -> Printf.sprintf "compiler timed out after %d ms" ms
  | Compile_error msg -> "compiler failed: " ^ msg
  | Load_error msg -> "plugin load failed: " ^ msg

let fallback_reason_label = function
  | Compiler_unavailable -> "compiler-unavailable"
  | Compile_timeout _ -> "compile-timeout"
  | Compile_error _ -> "compile-error"
  | Load_error _ -> "load-error"

type compile_info = {
  backend : backend;
  requested : backend;
  cache_hit : bool;
  prepare_ms : float;
  codegen_ms : float;
  compile_ms : float;
  fallback : fallback_reason option;
}

(* Collection and scalar preparations share one representation; the
   public ['a prepared] / ['s prepared_scalar] are typed views of it. *)
type 'r prep = {
  run_fn : unit -> 'r;
  p_info : compile_info;
  p_rules : string list;
      (* Optimizer rewrite log for this preparation, AST rules first,
         then QUIL chain rules (the latter only when the preparation
         actually lowered to QUIL, i.e. on the Native path). *)
}

type 'a prepared = 'a array prep
type 's prepared_scalar = 's prep

let now_ms = Telemetry.now_ms

(* Map the generated code's empty-sequence failure back to the exception
   the iterator pipeline raises, so backends agree observably.  Matched
   by prefix: the generated message may carry operator detail after it. *)
let translate_exn : exn -> exn = function
  | Failure msg
    when String.starts_with ~prefix:Codegen.empty_sequence_prefix msg ->
    Iterator.No_such_element
  | e -> e

(* How each backend stages one query, packaged so the engine's prepare
   logic (timing, caching, fallback, telemetry) exists once for both
   collection and scalar queries. *)
type 'r plan = {
  stage_linq : Telemetry.sink -> unit -> 'r;
  stage_fused : Telemetry.sink -> unit -> 'r;
  chain : Telemetry.sink -> Quil.chain;
  of_raw : Obj.t -> 'r;
}

let query_plan (q : 'a Query.t) : 'a array plan =
  {
    stage_linq =
      (fun sink ->
        let staged =
          Telemetry.with_span sink "stage" (fun () -> Linq.stage q)
        in
        fun () -> Enumerable.to_array (staged Expr.Open.empty));
    stage_fused =
      (fun sink ->
        let spec =
          Telemetry.with_span sink "specialize" (fun () -> Specialize.query q)
        in
        let staged =
          Telemetry.with_span sink "stage" (fun () -> Fused.stage spec)
        in
        fun () -> Fused.materialize (staged Expr.Open.empty));
    chain =
      (fun sink ->
        let spec =
          Telemetry.with_span sink "specialize" (fun () -> Specialize.query q)
        in
        Telemetry.with_span sink "canon" (fun () -> Canon.of_specialized spec));
    of_raw = (fun r : _ array -> Obj.obj r);
  }

let scalar_plan (sq : 's Query.sq) : 's plan =
  {
    stage_linq =
      (fun sink ->
        let staged =
          Telemetry.with_span sink "stage" (fun () -> Linq.stage_sq sq)
        in
        fun () -> staged Expr.Open.empty);
    stage_fused =
      (fun sink ->
        let spec =
          Telemetry.with_span sink "specialize" (fun () ->
              Specialize.scalar sq)
        in
        let staged =
          Telemetry.with_span sink "stage" (fun () -> Fused.stage_sq spec)
        in
        fun () -> staged Expr.Open.empty);
    chain =
      (fun sink ->
        let spec =
          Telemetry.with_span sink "specialize" (fun () ->
              Specialize.scalar sq)
        in
        Telemetry.with_span sink "canon" (fun () ->
            Canon.of_specialized_scalar spec));
    of_raw = Obj.obj;
  }

module Engine = struct
  type config = {
    backend : backend;
    fallback : bool;
    optimize : bool;
    compile_timeout_ms : int option;
    cache_capacity : int;
    telemetry : Telemetry.sink;
  }

  type t = {
    cfg : config;
    cache : (string, Dynload.compiled) Steno_lru.t;
  }

  let default_config =
    {
      backend = (if native_available () then Native else Fused);
      fallback = true;
      optimize = true;
      compile_timeout_ms = None;
      cache_capacity = 128;
      telemetry = Telemetry.null;
    }

  let create cfg =
    { cfg; cache = Steno_lru.create ~capacity:cfg.cache_capacity }

  let config e = e.cfg

  let telemetry e = e.cfg.telemetry

  type cache_stats = {
    capacity : int;
    entries : int;
    hits : int;
    misses : int;
    evictions : int;
  }

  let cache_stats e =
    let s = Steno_lru.stats e.cache in
    {
      capacity = s.Steno_lru.capacity;
      entries = s.Steno_lru.entries;
      hits = s.Steno_lru.hits;
      misses = s.Steno_lru.misses;
      evictions = s.Steno_lru.evictions;
    }

  let cache_size e = Steno_lru.length e.cache

  let clear_cache e = Steno_lru.clear e.cache

  let traced_run sink backend f =
    if not (Telemetry.enabled sink) then f
    else
      fun () ->
        Telemetry.with_span sink "run"
          ~attrs:[ "backend", backend_name backend ]
          f

  let error_to_reason : Dynload.error -> fallback_reason = function
    | Dynload.Unavailable -> Compiler_unavailable
    | Dynload.Timeout { timeout_ms } -> Compile_timeout timeout_ms
    | Dynload.Compile_error msg -> Compile_error msg
    | Dynload.Load_error msg -> Load_error msg

  (* The full Native pipeline: specialize/canon/codegen (spans emitted by
     the plan), then the bounded plugin cache, then compile+load under
     the engine's timeout, then environment binding. *)
  let compile_native eng (plan : 'r plan) ~t0 :
      ((unit -> 'r) * compile_info, fallback_reason) result =
    let sink = eng.cfg.telemetry in
    let chain = plan.chain sink in
    let out =
      Telemetry.with_span sink "codegen" (fun () -> Codegen.generate chain)
    in
    let t1 = now_ms () in
    (* The generated source already reflects any rewriting, but the key
       still carries the optimizer flag explicitly: a plugin compiled
       with optimization off must never satisfy an optimized lookup of a
       coincidentally identical source (and vice versa), e.g. across a
       config change on a shared engine. *)
    let cache_key =
      (if eng.cfg.optimize then "O1:" else "O0:") ^ out.Codegen.source
    in
    let looked_up =
      match Steno_lru.find eng.cache cache_key with
      | Some p ->
        Telemetry.count sink "cache.hit" 1;
        Ok (true, p)
      | None -> (
        match
          Dynload.compile_result ?timeout_ms:eng.cfg.compile_timeout_ms
            ~source:out.Codegen.source ()
        with
        | Error e -> Error (error_to_reason e)
        | Ok p ->
          Telemetry.count sink "cache.miss" 1;
          if Steno_lru.add eng.cache cache_key p then
            Telemetry.count sink "cache.eviction" 1;
          Telemetry.emit sink "compile" ~start_ms:t1
            ~duration_ms:p.Dynload.timings.Dynload.compile_ms ();
          Telemetry.emit sink "dynlink"
            ~start_ms:(t1 +. p.Dynload.timings.Dynload.compile_ms)
            ~duration_ms:p.Dynload.timings.Dynload.load_ms ();
          Ok (false, p))
    in
    match looked_up with
    | Error _ as e -> e
    | Ok (cache_hit, plugin) ->
      let t2 = now_ms () in
      let env =
        Telemetry.with_span sink "env-bind" (fun () ->
            Expr.Capture_table.to_env out.Codegen.table)
      in
      let raw_run () =
        try plugin.Dynload.run env with e -> raise (translate_exn e)
      in
      let info =
        {
          backend = Native;
          requested = Native;
          cache_hit;
          prepare_ms = now_ms () -. t0;
          codegen_ms = t1 -. t0;
          compile_ms = (if cache_hit then 0.0 else t2 -. t1);
          fallback = None;
        }
      in
      Ok ((fun () -> plan.of_raw (raw_run ())), info)

  let prep_of_staged ~sink ~t0 ~requested ~actual ~fallback staged =
    let ts = now_ms () in
    let run = staged sink in
    let staging_ms = now_ms () -. ts in
    {
      run_fn = traced_run sink actual run;
      p_info =
        {
          backend = actual;
          requested;
          cache_hit = false;
          prepare_ms = now_ms () -. t0;
          codegen_ms = staging_ms;
          compile_ms = 0.0;
          fallback;
        };
      p_rules = [];
    }

  let prepare_plan (eng : t) ?backend (plan : 'r plan) : 'r prep =
    let requested = Option.value backend ~default:eng.cfg.backend in
    let sink = eng.cfg.telemetry in
    let t0 = now_ms () in
    Telemetry.with_span sink "prepare"
      ~attrs:[ "backend", backend_name requested ]
    @@ fun () ->
    match requested with
    | Linq ->
      prep_of_staged ~sink ~t0 ~requested ~actual:Linq ~fallback:None
        plan.stage_linq
    | Fused ->
      prep_of_staged ~sink ~t0 ~requested ~actual:Fused ~fallback:None
        plan.stage_fused
    | Native -> (
      match compile_native eng plan ~t0 with
      | Ok (run, info) ->
        {
          run_fn = traced_run sink Native run;
          p_info = { info with prepare_ms = now_ms () -. t0 };
          p_rules = [];
        }
      | Error reason when eng.cfg.fallback ->
        Telemetry.count sink "engine.fallback" 1;
        Telemetry.emit sink "fallback"
          ~attrs:[ "reason", fallback_reason_label reason ]
          ~start_ms:(now_ms ()) ~duration_ms:0.0 ();
        prep_of_staged ~sink ~t0 ~requested ~actual:Fused
          ~fallback:(Some reason) plan.stage_fused
      | Error reason ->
        raise (Dynload.Compilation_failed (fallback_reason_message reason)))

  (* AST-level rewriting, as its own telemetry span.  [opt] is
     [Opt.query] or [Opt.scalar], kept abstract so collection and scalar
     preparation share this. *)
  let optimize_ast eng opt q =
    if not eng.cfg.optimize then q, []
    else begin
      let sink = eng.cfg.telemetry in
      let q', rules =
        Telemetry.with_span sink "optimize"
          ~attrs:[ "level", "ast" ]
          (fun () -> opt q)
      in
      Telemetry.count sink "optimize.rules_applied" (List.length rules);
      q', rules
    end

  (* Hook the QUIL chain pass into a plan.  The chain is only built on
     the Native path, and synchronously within [prepare_plan], so the
     returned ref holds the fired chain rules by the time the
     preparation exists. *)
  let with_chain_pass eng plan =
    if not eng.cfg.optimize then plan, ref []
    else begin
      let fired = ref [] in
      let chain sink =
        let c = plan.chain sink in
        let c, rules =
          Telemetry.with_span sink "optimize"
            ~attrs:[ "level", "quil" ]
            (fun () -> Opt.chain c)
        in
        Telemetry.count sink "optimize.rules_applied" (List.length rules);
        fired := rules;
        c
      in
      { plan with chain }, fired
    end

  let prepare ?backend eng q =
    let q, ast_rules = optimize_ast eng Opt.query q in
    let plan, chain_rules = with_chain_pass eng (query_plan q) in
    let p = prepare_plan eng ?backend plan in
    { p with p_rules = ast_rules @ !chain_rules }

  let prepare_scalar ?backend eng sq =
    let sq, ast_rules = optimize_ast eng Opt.scalar sq in
    let plan, chain_rules = with_chain_pass eng (scalar_plan sq) in
    let p = prepare_plan eng ?backend plan in
    { p with p_rules = ast_rules @ !chain_rules }

  let to_array ?backend eng q = (prepare ?backend eng q).run_fn ()

  let to_list ?backend eng q = Array.to_list (to_array ?backend eng q)

  let scalar ?backend eng sq = (prepare_scalar ?backend eng sq).run_fn ()

  (* {2 Explain} *)

  type explanation = {
    quil_before : string;
    quil_after : string;
    operators_before : int;
    operators_after : int;
    rules : string list;
  }

  let explain_chains eng ~before ~after_canon ~ast_rules =
    let after, chain_rules =
      if eng.cfg.optimize then Opt.chain after_canon else after_canon, []
    in
    {
      quil_before = Quil.symbol_string before;
      quil_after = Quil.symbol_string after;
      operators_before = Quil.operator_count before;
      operators_after = Quil.operator_count after;
      rules = ast_rules @ chain_rules;
    }

  let explain eng q =
    let before = Canon.of_query q in
    let after_canon, ast_rules =
      if eng.cfg.optimize then
        let q', rules = Opt.query q in
        Canon.of_query q', rules
      else before, []
    in
    explain_chains eng ~before ~after_canon ~ast_rules

  let explain_scalar eng sq =
    let before = Canon.of_scalar sq in
    let after_canon, ast_rules =
      if eng.cfg.optimize then
        let sq', rules = Opt.scalar sq in
        Canon.of_scalar sq', rules
      else before, []
    in
    explain_chains eng ~before ~after_canon ~ast_rules

  let explain_to_string ex =
    let b = Buffer.create 256 in
    Printf.bprintf b "plan before: %s\n" ex.quil_before;
    Printf.bprintf b "plan after:  %s\n" ex.quil_after;
    Printf.bprintf b "operators:   %d -> %d\n" ex.operators_before
      ex.operators_after;
    (match ex.rules with
    | [] -> Buffer.add_string b "rules applied: (none)\n"
    | rules ->
      Buffer.add_string b "rules applied:\n";
      List.iter (fun r -> Printf.bprintf b "  - %s\n" r) rules);
    Buffer.contents b
end

(* The compatibility default engine: the only process-global engine
   state, created on first use. *)
let default_engine_v = lazy (Engine.create Engine.default_config)

let default_engine () = Lazy.force default_engine_v

let prepare ?backend q = Engine.prepare ?backend (default_engine ()) q

let prepare_scalar ?backend sq =
  Engine.prepare_scalar ?backend (default_engine ()) sq

let run p = p.run_fn ()

let run_scalar p = p.run_fn ()

let info p = p.p_info

let info_scalar p = p.p_info

let rewrite_log p = p.p_rules

let rewrite_log_scalar p = p.p_rules

module Prepared = struct
  type 'a t = 'a prepared

  let run p = p.run_fn ()
  let backend_used p = p.p_info.backend
  let compile_info p = p.p_info
  let rewrite_log p = p.p_rules
end

module Prepared_scalar = struct
  type 's t = 's prepared_scalar

  let run p = p.run_fn ()
  let backend_used p = p.p_info.backend
  let compile_info p = p.p_info
  let rewrite_log p = p.p_rules
end

let to_array ?backend q = run (prepare ?backend q)

let to_list ?backend q = Array.to_list (to_array ?backend q)

let scalar ?backend sq = run_scalar (prepare_scalar ?backend sq)

let generated_source q = (Codegen.generate (Canon.of_query q)).Codegen.source

let generated_source_scalar sq =
  (Codegen.generate (Canon.of_scalar sq)).Codegen.source

let quil q = Quil.symbol_string (Canon.of_query q)

let quil_scalar sq = Quil.symbol_string (Canon.of_scalar sq)

let cache_size () = Engine.cache_size (default_engine ())

let clear_cache () = Engine.clear_cache (default_engine ())
