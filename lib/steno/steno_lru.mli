(** A small bounded LRU cache with hit/miss/eviction accounting — the
    per-engine plugin cache behind [Steno.Engine] (the paper's section
    7.1 query cache, made bounded and observable).

    Thread-safe: the cache is split into independent {e shards}, each
    guarded by its own mutex, and a key's shard is chosen by hashing the
    key — so concurrent domains operating on distinct keys contend only
    when the keys collide on a shard.  With the default [shards = 1] the
    cache is a single exact LRU; with more shards, recency and eviction
    are exact {e within} a shard (capacity is divided across shards), an
    approximation that trades global recency order for lock sharding.

    Recency is exact LRU per shard ({!find} promotes); entries live on
    an intrusive doubly-linked recency list, so find, add and eviction
    are all O(1).  Evicted values are handed to the [on_evict] callback
    rather than dropped on the floor, so cached resources (e.g. Native
    plugin handles) can be released or accounted. *)

type ('k, 'v) t

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create :
  ?on_evict:('k -> 'v -> unit) ->
  ?shards:int ->
  capacity:int ->
  unit ->
  ('k, 'v) t
(** [capacity <= 0] disables the cache: every {!find} misses and {!add}
    passes the value straight to [on_evict] (if any) without storing it.

    [shards] (default [1]) splits the cache into that many independently
    locked sub-caches; it is clamped to [capacity] so no shard ever has
    zero capacity.  Use more shards for caches hammered by concurrent
    domains; keep [1] where exact global LRU order matters.

    [on_evict] fires for every value leaving the cache: LRU eviction on
    a full {!add}, replacement of an existing key's value, {!clear}
    (LRU-to-MRU order), and the disabled-cache case above.  It is always
    invoked outside the cache lock, on the thread that triggered the
    removal, so it may call back into the cache; it must not assume the
    key is absent by the time it runs. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used and counts a hit; counts a
    miss on [None]. *)

val add : ('k, 'v) t -> 'k -> 'v -> bool
(** Insert as most-recently-used, evicting the least-recently-used entry
    if the cache is full; returns [true] when an entry was evicted
    (replacing an existing key's value promotes it and does not count as
    an eviction, though the old value is still passed to [on_evict]). *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency or counters. *)

val length : ('k, 'v) t -> int

val stats : ('k, 'v) t -> stats

val clear : ('k, 'v) t -> unit
(** Drop all entries (each reaches [on_evict]).  Counters are cumulative
    and survive a clear. *)
