(** A small bounded LRU cache with hit/miss/eviction accounting — the
    per-engine plugin cache behind [Steno.Engine] (the paper's section
    7.1 query cache, made bounded and observable).

    Thread-safe: every operation holds the cache's internal mutex.
    Recency is exact LRU ({!find} promotes); eviction scans for the
    least-recently-used entry, which is linear in the entry count —
    entries are compiled plugins, so capacities are small and an eviction
    is always dwarfed by the compile that triggered it. *)

type ('k, 'v) t

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : capacity:int -> ('k, 'v) t
(** [capacity <= 0] disables the cache: every {!find} misses and {!add}
    drops the value. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used and counts a hit; counts a
    miss on [None]. *)

val add : ('k, 'v) t -> 'k -> 'v -> bool
(** Insert as most-recently-used, evicting the least-recently-used entry
    if the cache is full; returns [true] when an entry was evicted.
    Re-adding an existing key replaces its value and promotes it. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency or counters. *)

val length : ('k, 'v) t -> int

val stats : ('k, 'v) t -> stats

val clear : ('k, 'v) t -> unit
(** Drop all entries.  Counters are cumulative and survive a clear. *)
