(** Single-flight execution groups: at most one in-flight computation
    per key.

    The serving problem this solves (ROADMAP "query service"): two
    clients preparing the same query race duplicate [ocamlopt]
    invocations — each pays the full ~30 ms compile and one result is
    thrown away.  A single-flight group collapses the race: the first
    caller for a key becomes the {e leader} and runs the computation;
    callers arriving while it is in flight become {e followers} and
    block until the leader finishes, then share its result.  A leader's
    exception is broadcast too: every follower re-raises it, so a failed
    compile sheds all its waiters at once instead of retrying N times.

    Once a call completes it is forgotten — a later caller for the same
    key leads a fresh computation.  Deduplication is therefore only of
    {e concurrent} calls; memoization across calls is the cache's job
    (the caller is expected to consult its cache inside the leader
    body, see [Steno.Engine]).

    Domain-safe: followers block on a per-call condition variable; the
    group's own lock is held only for the table lookup, never during the
    computation. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t

val run : ?note:string -> ('k, 'v) t -> 'k -> (unit -> 'v) -> bool * string option * 'v
(** [run t k f] returns [(led, leader_note, v)]: if no call for [k] is
    in flight, runs [f ()] as the leader ([led = true],
    [leader_note = None]); otherwise blocks until the in-flight leader
    for [k] finishes and returns its result ([led = false],
    [leader_note] = the [?note] the leader registered, if any).  The
    note lets a follower link to the leader's identity — e.g. record the
    trace id of the request whose compile it joined.  If the leader's
    [f] raises, the exception is re-raised in the leader {e and} in
    every follower. *)

val in_flight : ('k, 'v) t -> int
(** Number of keys currently being computed (for tests/diagnostics). *)
