(* At most one in-flight computation per key; followers block on the
   call's condition variable and share the leader's outcome (value or
   exception). *)

type 'v outcome = ('v, exn) result

type 'v call = {
  c_mu : Mutex.t;
  c_cv : Condition.t;
  c_note : string option;  (* leader-provided, e.g. its trace id *)
  mutable c_done : 'v outcome option;  (* None while in flight *)
}

type ('k, 'v) t = {
  mu : Mutex.t;
  calls : ('k, 'v call) Hashtbl.t;
}

let create () = { mu = Mutex.create (); calls = Hashtbl.create 16 }

let in_flight t = Mutex.protect t.mu (fun () -> Hashtbl.length t.calls)

let await (c : _ call) =
  Mutex.protect c.c_mu @@ fun () ->
  let rec go () =
    match c.c_done with
    | Some outcome -> outcome
    | None ->
      Condition.wait c.c_cv c.c_mu;
      go ()
  in
  go ()

let run ?note t k f =
  let role =
    Mutex.protect t.mu @@ fun () ->
    match Hashtbl.find_opt t.calls k with
    | Some c -> `Follow c
    | None ->
      let c =
        {
          c_mu = Mutex.create ();
          c_cv = Condition.create ();
          c_note = note;
          c_done = None;
        }
      in
      Hashtbl.replace t.calls k c;
      `Lead c
  in
  match role with
  | `Follow c -> (
    match await c with
    | Ok v -> false, c.c_note, v
    | Error e -> raise e)
  | `Lead c ->
    let outcome = try Ok (f ()) with e -> Error e in
    (* Retire the call before broadcasting: a caller arriving after this
       point leads a fresh computation (and will consult whatever cache
       the leader populated); callers already waiting hold a reference
       to [c] and read its settled outcome. *)
    Mutex.protect t.mu (fun () -> Hashtbl.remove t.calls k);
    Mutex.protect c.c_mu (fun () ->
        c.c_done <- Some outcome;
        Condition.broadcast c.c_cv);
    (match outcome with
    | Ok v -> true, None, v
    | Error e -> raise e)
