(* Intrusive doubly-linked recency list: head = most recently used,
   tail = least recently used.  The hash table maps keys to list nodes,
   so find/add/evict are all O(1). *)
type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  on_evict : ('k -> 'v -> unit) option;
  mu : Mutex.t;
}

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ?on_evict ~capacity () =
  {
    capacity;
    table = Hashtbl.create (max 16 (min capacity 256));
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    on_evict;
    mu = Mutex.create ();
  }

let unlink (t : (_, _) t) node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front (t : (_, _) t) node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let find (t : (_, _) t) k =
  Mutex.protect t.mu @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some node ->
    promote t node;
    t.hits <- t.hits + 1;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* Pop the LRU entry; returns the victim so the caller can fire
   [on_evict] after releasing the lock. *)
let evict_lru (t : (_, _) t) =
  match t.tail with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1;
    Some (node.key, node.value)
  | None -> None

let notify t victims =
  match t.on_evict with
  | None -> ()
  | Some f -> List.iter (fun (k, v) -> f k v) victims

let add (t : (_, _) t) k v =
  if t.capacity <= 0 then begin
    (* A disabled cache still never owns the value. *)
    notify t [ k, v ];
    false
  end
  else begin
    let victim =
      Mutex.protect t.mu @@ fun () ->
      match Hashtbl.find_opt t.table k with
      | Some node ->
        let old = node.value in
        node.value <- v;
        promote t node;
        (* The replaced value is released like an eviction, but is not
           counted as one (the key never left the cache). *)
        if old == v then None else Some (`Replaced (k, old))
      | None ->
        let victim =
          if Hashtbl.length t.table >= t.capacity then evict_lru t else None
        in
        let node = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k node;
        push_front t node;
        (match victim with Some kv -> Some (`Evicted kv) | None -> None)
    in
    (* Callbacks run outside the lock: they may be arbitrary user code
       (releasing plugin handles, logging) and must not deadlock against
       concurrent cache operations. *)
    match victim with
    | Some (`Evicted kv) ->
      notify t [ kv ];
      true
    | Some (`Replaced kv) ->
      notify t [ kv ];
      false
    | None -> false
  end

let mem (t : (_, _) t) k = Mutex.protect t.mu (fun () -> Hashtbl.mem t.table k)

let length (t : (_, _) t) = Mutex.protect t.mu (fun () -> Hashtbl.length t.table)

let stats (t : (_, _) t) : stats =
  Mutex.protect t.mu @@ fun () ->
  {
    capacity = t.capacity;
    entries = Hashtbl.length t.table;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let clear (t : (_, _) t) =
  let victims =
    Mutex.protect t.mu @@ fun () ->
    (* Collect in LRU-to-MRU order, mirroring eviction order. *)
    let rec walk acc = function
      | Some node -> walk ((node.key, node.value) :: acc) node.prev
      | None -> acc
    in
    let vs = List.rev (walk [] t.tail) in
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None;
    vs
  in
  notify t victims
