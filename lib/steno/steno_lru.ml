type 'v entry = {
  value : 'v;
  mutable last_use : int;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, 'v entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mu : Mutex.t;
}

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create (max 16 (min capacity 256));
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mu = Mutex.create ();
  }

let next_tick (t : (_, _) t) =
  t.tick <- t.tick + 1;
  t.tick

let find (t : (_, _) t) k =
  Mutex.protect t.mu @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some e ->
    e.last_use <- next_tick t;
    t.hits <- t.hits + 1;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru (t : (_, _) t) =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add (t : (_, _) t) k v =
  if t.capacity <= 0 then false
  else
    Mutex.protect t.mu @@ fun () ->
    let evict =
      (not (Hashtbl.mem t.table k)) && Hashtbl.length t.table >= t.capacity
    in
    if evict then evict_lru t;
    Hashtbl.replace t.table k { value = v; last_use = next_tick t };
    evict

let mem (t : (_, _) t) k = Mutex.protect t.mu (fun () -> Hashtbl.mem t.table k)

let length (t : (_, _) t) = Mutex.protect t.mu (fun () -> Hashtbl.length t.table)

let stats (t : (_, _) t) : stats =
  Mutex.protect t.mu @@ fun () ->
  {
    capacity = t.capacity;
    entries = Hashtbl.length t.table;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let clear (t : (_, _) t) = Mutex.protect t.mu (fun () -> Hashtbl.reset t.table)
