(* Intrusive doubly-linked recency list: head = most recently used,
   tail = least recently used.  The hash table maps keys to list nodes,
   so find/add/evict are all O(1).

   Concurrency: the cache is split into [shards] independent sub-caches,
   each with its own mutex, table and recency list; a key's shard is
   chosen by hashing the key, so concurrent operations on distinct keys
   contend only when they hash to the same shard.  With [shards = 1]
   (the default) the cache is one exact LRU; with more shards, recency
   and eviction are exact *within* a shard and the capacity is divided
   across shards. *)
type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) shard = {
  sh_capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mu : Mutex.t;
}

type ('k, 'v) t = {
  capacity : int;
  shards : ('k, 'v) shard array;
  on_evict : ('k -> 'v -> unit) option;
}

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

let make_shard capacity =
  {
    sh_capacity = capacity;
    table = Hashtbl.create (max 16 (min (max capacity 1) 256));
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    mu = Mutex.create ();
  }

let create ?on_evict ?(shards = 1) ~capacity () =
  (* Never create a shard that cannot hold at least one entry: a
     zero-capacity shard would silently drop every key hashing to it.
     A disabled cache (capacity <= 0) keeps one disabled shard. *)
  let n =
    if capacity <= 0 then 1 else max 1 (min shards capacity)
  in
  let shard_caps =
    if capacity <= 0 then [| capacity |]
    else
      Array.init n (fun i ->
          (capacity / n) + (if i < capacity mod n then 1 else 0))
  in
  {
    capacity;
    shards = Array.map make_shard shard_caps;
    on_evict;
  }

let shard_of (t : (_, _) t) k =
  let n = Array.length t.shards in
  if n = 1 then t.shards.(0)
  else t.shards.(Hashtbl.hash k mod n)

let unlink (s : (_, _) shard) node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> s.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> s.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front (s : (_, _) shard) node =
  node.prev <- None;
  node.next <- s.head;
  (match s.head with
  | Some h -> h.prev <- Some node
  | None -> s.tail <- Some node);
  s.head <- Some node

let promote s node =
  if s.head != Some node then begin
    unlink s node;
    push_front s node
  end

let find (t : (_, _) t) k =
  let s = shard_of t k in
  Mutex.protect s.mu @@ fun () ->
  match Hashtbl.find_opt s.table k with
  | Some node ->
    promote s node;
    s.hits <- s.hits + 1;
    Some node.value
  | None ->
    s.misses <- s.misses + 1;
    None

(* Pop the LRU entry; returns the victim so the caller can fire
   [on_evict] after releasing the lock. *)
let evict_lru (s : (_, _) shard) =
  match s.tail with
  | Some node ->
    unlink s node;
    Hashtbl.remove s.table node.key;
    s.evictions <- s.evictions + 1;
    Some (node.key, node.value)
  | None -> None

let notify t victims =
  match t.on_evict with
  | None -> ()
  | Some f -> List.iter (fun (k, v) -> f k v) victims

let add (t : (_, _) t) k v =
  let s = shard_of t k in
  if s.sh_capacity <= 0 then begin
    (* A disabled cache still never owns the value. *)
    notify t [ k, v ];
    false
  end
  else begin
    let victim =
      Mutex.protect s.mu @@ fun () ->
      match Hashtbl.find_opt s.table k with
      | Some node ->
        let old = node.value in
        node.value <- v;
        promote s node;
        (* The replaced value is released like an eviction, but is not
           counted as one (the key never left the cache). *)
        if old == v then None else Some (`Replaced (k, old))
      | None ->
        let victim =
          if Hashtbl.length s.table >= s.sh_capacity then evict_lru s
          else None
        in
        let node = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace s.table k node;
        push_front s node;
        (match victim with Some kv -> Some (`Evicted kv) | None -> None)
    in
    (* Callbacks run outside the lock: they may be arbitrary user code
       (releasing plugin handles, logging) and must not deadlock against
       concurrent cache operations. *)
    match victim with
    | Some (`Evicted kv) ->
      notify t [ kv ];
      true
    | Some (`Replaced kv) ->
      notify t [ kv ];
      false
    | None -> false
  end

let mem (t : (_, _) t) k =
  let s = shard_of t k in
  Mutex.protect s.mu (fun () -> Hashtbl.mem s.table k)

let length (t : (_, _) t) =
  Array.fold_left
    (fun acc s ->
      acc + Mutex.protect s.mu (fun () -> Hashtbl.length s.table))
    0 t.shards

let stats (t : (_, _) t) : stats =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.mu @@ fun () ->
      {
        acc with
        entries = acc.entries + Hashtbl.length s.table;
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions;
      })
    { capacity = t.capacity; entries = 0; hits = 0; misses = 0; evictions = 0 }
    t.shards

let clear (t : (_, _) t) =
  (* Per shard: collect victims under the shard lock, notify outside it,
     in LRU-to-MRU order (mirroring eviction order) within each shard. *)
  Array.iter
    (fun s ->
      let victims =
        Mutex.protect s.mu @@ fun () ->
        let rec walk acc = function
          | Some node -> walk ((node.key, node.value) :: acc) node.prev
          | None -> acc
        in
        let vs = List.rev (walk [] s.tail) in
        Hashtbl.reset s.table;
        s.head <- None;
        s.tail <- None;
        vs
      in
      notify t victims)
    t.shards
