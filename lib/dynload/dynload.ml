exception Compilation_failed of string

type timings = {
  write_ms : float;
  compile_ms : float;
  load_ms : float;
}

type compiled = {
  run : Obj.t array -> Obj.t;
  timings : timings;
  source_path : string;
}

let keep_artifacts = ref false

let workdir_lazy =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "steno-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     at_exit (fun () ->
         if not !keep_artifacts then
           try
             Sys.readdir dir
             |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
             Unix.rmdir dir
           with Sys_error _ | Unix.Unix_error _ -> ());
     dir)

let workdir () = Lazy.force workdir_lazy

let compiler_command =
  lazy
    (let candidates =
       [ "ocamlfind ocamlopt -package ''"; "ocamlopt.opt"; "ocamlopt" ]
     in
     let works cmd =
       Sys.command (Printf.sprintf "%s -version > /dev/null 2>&1" cmd) = 0
     in
     List.find_opt works [ "ocamlopt.opt"; "ocamlopt" ]
     |> function
     | Some c -> Some c
     | None -> if works (List.nth candidates 0) then Some "ocamlfind ocamlopt" else None)

let is_available () =
  Dynlink.is_native && Lazy.force compiler_command <> None

let next_plugin = Atomic.make 0

(* Dynlink is not re-entrant; serialize loads across domains. *)
let load_mutex = Mutex.create ()

let now_ms () = Unix.gettimeofday () *. 1000.0

(* The plugin's initializer raises [Steno_result fn]; Dynlink surfaces
   initializer exceptions wrapped in [Library's_module_initializers_failed].
   We verify the exception constructor's name before trusting the
   payload. *)
let extract_result (e : exn) : (Obj.t array -> Obj.t) option =
  let r = Obj.repr e in
  if Obj.is_block r && Obj.size r = 2 then begin
    let slot = Obj.field r 0 in
    if
      Obj.is_block slot
      && Obj.size slot >= 1
      && Obj.tag (Obj.field slot 0) = Obj.string_tag
      && (let name : string = Obj.obj (Obj.field slot 0) in
          String.equal name "Steno_result"
          || (String.length name > 13
             && String.equal
                  (String.sub name (String.length name - 13) 13)
                  ".Steno_result"))
    then Some (Obj.obj (Obj.field r 1))
    else None
  end
  else None

let run_command cmd =
  let out_file = Filename.concat (workdir ()) "compile.log" in
  let full = Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out_file) in
  let status = Sys.command full in
  let output =
    try
      let ic = open_in out_file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error _ -> ""
  in
  if status <> 0 then
    raise
      (Compilation_failed
         (Printf.sprintf "command failed (%d): %s\n%s" status cmd output))

let compile ~source =
  let compiler =
    match Lazy.force compiler_command with
    | Some c -> c
    | None -> raise (Compilation_failed "no native OCaml compiler on PATH")
  in
  let id = Atomic.fetch_and_add next_plugin 1 in
  let modname = Printf.sprintf "steno_plugin_%d_%d" (Unix.getpid ()) id in
  let dir = workdir () in
  let ml = Filename.concat dir (modname ^ ".ml") in
  let cmxs = Filename.concat dir (modname ^ ".cmxs") in
  let t0 = now_ms () in
  let oc = open_out ml in
  output_string oc source;
  close_out oc;
  let t1 = now_ms () in
  run_command
    (Printf.sprintf "%s -shared -I %s %s -o %s" compiler (Filename.quote dir)
       (Filename.quote ml) (Filename.quote cmxs));
  let t2 = now_ms () in
  let result = ref None in
  Mutex.lock load_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock load_mutex) @@ fun () ->
  (try
     Dynlink.loadfile_private cmxs;
     raise (Compilation_failed "plugin did not hand back a query function")
   with
  | Dynlink.Error (Dynlink.Library's_module_initializers_failed e) -> (
    match extract_result e with
    | Some fn -> result := Some fn
    | None -> raise e)
  | Dynlink.Error err ->
    raise (Compilation_failed (Dynlink.error_message err)));
  let t3 = now_ms () in
  if not !keep_artifacts then begin
    List.iter
      (fun ext ->
        try Sys.remove (Filename.concat dir (modname ^ ext))
        with Sys_error _ -> ())
      [ ".cmi"; ".cmx"; ".o"; ".cmxs"; ".ml" ]
  end;
  match !result with
  | Some run ->
    {
      run;
      timings =
        { write_ms = t1 -. t0; compile_ms = t2 -. t1; load_ms = t3 -. t2 };
      source_path = ml;
    }
  | None -> raise (Compilation_failed "no result extracted")
