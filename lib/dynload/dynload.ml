exception Compilation_failed of string

type timings = {
  write_ms : float;
  compile_ms : float;
  load_ms : float;
}

type compiled = {
  run : Obj.t array -> Obj.t;
  timings : timings;
  source_path : string;
}

type error =
  | Unavailable
  | Timeout of { timeout_ms : int }
  | Compile_error of string
  | Load_error of string

let error_message = function
  | Unavailable -> "no native OCaml compiler on PATH"
  | Timeout { timeout_ms } ->
    Printf.sprintf "compiler exceeded %d ms and was killed" timeout_ms
  | Compile_error out -> out
  | Load_error msg -> msg

let keep_artifacts = ref false

let disabled = ref false

(* [Lazy.force] from several domains at once raises [RacyLazy]; the
   process-wide lazies below (scratch dir, compiler probe) are forced
   under one mutex so concurrent engines initialize them safely.  The
   lock is only contended during initialization: both lazies settle on
   first use. *)
let init_mu = Mutex.create ()

let force_shared l = Mutex.protect init_mu (fun () -> Lazy.force l)

let workdir_lazy =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "steno-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     at_exit (fun () ->
         if not !keep_artifacts then
           try
             Sys.readdir dir
             |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
             Unix.rmdir dir
           with Sys_error _ | Unix.Unix_error _ -> ());
     dir)

let workdir () = force_shared workdir_lazy

let compiler_command =
  lazy
    (let candidates =
       [ "ocamlfind ocamlopt -package ''"; "ocamlopt.opt"; "ocamlopt" ]
     in
     let works cmd =
       Sys.command (Printf.sprintf "%s -version > /dev/null 2>&1" cmd) = 0
     in
     List.find_opt works [ "ocamlopt.opt"; "ocamlopt" ]
     |> function
     | Some c -> Some c
     | None -> if works (List.nth candidates 0) then Some "ocamlfind ocamlopt" else None)

let is_available () =
  (not !disabled) && Dynlink.is_native && force_shared compiler_command <> None

(* Toolchain/ABI fingerprint for the persistent plugin cache: a [.cmxs]
   built by one compiler must never be offered to a runtime built by
   another, so the on-disk store namespaces entries by this string. *)
let command_first_line cmd =
  try
    let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> ""

let fingerprint_lazy =
  lazy
    (let compiler_ver =
       match Lazy.force compiler_command with
       | None -> "nocc"
       | Some c -> (
         match command_first_line (c ^ " -version") with
         | "" -> "nocc"
         | v -> v)
     in
     Printf.sprintf "ocaml%s-w%d-%s" Sys.ocaml_version Sys.word_size
       compiler_ver)

let fingerprint () = force_shared fingerprint_lazy

let next_plugin = Atomic.make 0

(* Dynlink is not re-entrant; serialize loads across domains. *)
let load_mutex = Mutex.create ()

let now_ms () = Unix.gettimeofday () *. 1000.0

(* The plugin's initializer raises [Steno_result fn]; Dynlink surfaces
   initializer exceptions wrapped in [Library's_module_initializers_failed].
   We verify the exception constructor's name before trusting the
   payload. *)
let extract_result (e : exn) : (Obj.t array -> Obj.t) option =
  let r = Obj.repr e in
  if Obj.is_block r && Obj.size r = 2 then begin
    let slot = Obj.field r 0 in
    if
      Obj.is_block slot
      && Obj.size slot >= 1
      && Obj.tag (Obj.field slot 0) = Obj.string_tag
      && (let name : string = Obj.obj (Obj.field slot 0) in
          String.equal name "Steno_result"
          || (String.length name > 13
             && String.equal
                  (String.sub name (String.length name - 13) 13)
                  ".Steno_result"))
    then Some (Obj.obj (Obj.field r 1))
    else None
  end
  else None

(* Run the compiler as a child process with output captured to a log
   file.  [exec] replaces the intermediate shell, so a timeout kill
   reaches the compiler itself.  The log file is caller-supplied and
   unique per compilation: concurrent compiles must not truncate each
   other's output (they used to share one "compile.log"). *)
let run_command ?timeout_ms ~out_file cmd : (unit, error) result =
  let fd =
    Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.create_process "/bin/sh"
          [| "/bin/sh"; "-c"; "exec " ^ cmd |]
          Unix.stdin fd fd)
  in
  let read_output () =
    try
      let ic = open_in out_file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error _ -> ""
  in
  let status =
    match timeout_ms with
    | None -> Some (snd (Unix.waitpid [] pid))
    | Some timeout_ms ->
      let deadline =
        Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.0)
      in
      let rec poll () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            None
          end
          else begin
            Unix.sleepf 0.002;
            poll ()
          end
        | _, st -> Some st
      in
      poll ()
  in
  match status with
  | None ->
    Error (Timeout { timeout_ms = Option.value timeout_ms ~default:0 })
  | Some (Unix.WEXITED 0) -> Ok ()
  | Some st ->
    let describe = function
      | Unix.WEXITED c -> Printf.sprintf "exit %d" c
      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
      | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
    in
    Error
      (Compile_error
         (Printf.sprintf "command failed (%s): %s\n%s" (describe st) cmd
            (read_output ())))

type artifact = {
  a_cmxs : string;
  a_ml : string;
  a_modname : string;
  a_write_ms : float;
  a_compile_ms : float;
}

(* Compile-only half: write the source and run the external compiler,
   leaving the artifacts on disk for the caller to load (and, with the
   persistent cache, to copy into the store).  Pair with {!load_file}
   and {!remove_artifact}. *)
let compile_artifact ?timeout_ms ~source () : (artifact, error) result =
  if !disabled then Error Unavailable
  else
    match force_shared compiler_command with
    | None -> Error Unavailable
    | _ when not Dynlink.is_native -> Error Unavailable
    | Some compiler -> (
      let id = Atomic.fetch_and_add next_plugin 1 in
      let modname = Printf.sprintf "steno_plugin_%d_%d" (Unix.getpid ()) id in
      let dir = workdir () in
      let ml = Filename.concat dir (modname ^ ".ml") in
      let cmxs = Filename.concat dir (modname ^ ".cmxs") in
      let cleanup () =
        List.iter
          (fun ext ->
            try Sys.remove (Filename.concat dir (modname ^ ext))
            with Sys_error _ -> ())
          [ ".cmi"; ".cmx"; ".o"; ".cmxs"; ".ml"; ".log" ]
      in
      let t0 = now_ms () in
      let oc = open_out ml in
      output_string oc source;
      close_out oc;
      let t1 = now_ms () in
      match
        run_command ?timeout_ms
          ~out_file:(Filename.concat dir (modname ^ ".log"))
          (Printf.sprintf "%s -shared -I %s %s -o %s" compiler
             (Filename.quote dir) (Filename.quote ml) (Filename.quote cmxs))
      with
      | Error e ->
        if not !keep_artifacts then cleanup ();
        Error e
      | Ok () ->
        let t2 = now_ms () in
        Ok
          {
            a_cmxs = cmxs;
            a_ml = ml;
            a_modname = modname;
            a_write_ms = t1 -. t0;
            a_compile_ms = t2 -. t1;
          })

let remove_artifact a =
  if not !keep_artifacts then
    let dir = Filename.dirname a.a_cmxs in
    List.iter
      (fun ext ->
        try Sys.remove (Filename.concat dir (a.a_modname ^ ext))
        with Sys_error _ -> ())
      [ ".cmi"; ".cmx"; ".o"; ".cmxs"; ".ml"; ".log" ]

(* Load-only half: dynlink a plugin [.cmxs] — freshly built or pulled
   from the persistent store — and perform the [Steno_result] handshake.
   [loadfile_private] keeps each load's module in a private namespace,
   so the same module name can be loaded repeatedly in one process and
   a cached artifact's embedded name (stamped by whichever process
   compiled it) never collides with ours. *)
let load_file ~path () : (compiled, error) result =
  if !disabled then Error Unavailable
  else if not Dynlink.is_native then Error Unavailable
  else begin
    let t0 = now_ms () in
    let outcome =
      Mutex.lock load_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock load_mutex)
      @@ fun () ->
      try
        Dynlink.loadfile_private path;
        Error (Load_error "plugin did not hand back a query function")
      with
      | Dynlink.Error (Dynlink.Library's_module_initializers_failed e) -> (
        match extract_result e with
        | Some fn -> Ok fn
        | None ->
          (* A foreign exception escaping the initializer is a host
             bug, not a compilation outcome; let it propagate. *)
          raise e)
      | Dynlink.Error err -> Error (Load_error (Dynlink.error_message err))
    in
    let t1 = now_ms () in
    match outcome with
    | Error _ as e -> e
    | Ok run ->
      Ok
        {
          run;
          timings = { write_ms = 0.0; compile_ms = 0.0; load_ms = t1 -. t0 };
          source_path = path;
        }
  end

let compile_result ?timeout_ms ~source () : (compiled, error) result =
  match compile_artifact ?timeout_ms ~source () with
  | Error e -> Error e
  | Ok a -> (
    let finish outcome =
      remove_artifact a;
      outcome
    in
    match
      try load_file ~path:a.a_cmxs ()
      with e ->
        remove_artifact a;
        raise e
    with
    | Error _ as e -> finish e
    | Ok c ->
      finish
        (Ok
           {
             c with
             timings =
               {
                 write_ms = a.a_write_ms;
                 compile_ms = a.a_compile_ms;
                 load_ms = c.timings.load_ms;
               };
             source_path = a.a_ml;
           }))

let compile ~source =
  match compile_result ~source () with
  | Ok c -> c
  | Error e -> raise (Compilation_failed (error_message e))
