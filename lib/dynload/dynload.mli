(** Runtime native compilation and loading of generated query code
    (section 3.3 of the paper).

    The paper invokes the C# compiler on the generated class, loads the
    resulting DLL, and patches captured variables in via reflection; this
    module invokes [ocamlopt -shared] on the generated module, loads the
    [.cmxs] with [Dynlink], and passes captured values through an
    [Obj.t array] environment.

    The generated plugin is self-contained (references only [Stdlib]) and
    hands its compiled query function back to the host by raising a
    [Steno_result] exception from its initializer — no shared interface
    files are needed, which keeps plugin compilation hermetic.

    Compilation has a deliberate, measurable one-off cost (tens of
    milliseconds; section 7.1 reports 69 ms for the C# pipeline); use
    {!timings} to account for it, and cache {!compiled} values across
    invocations. *)

exception Compilation_failed of string

type timings = {
  write_ms : float;  (** writing the source file *)
  compile_ms : float;  (** [ocamlopt -shared] *)
  load_ms : float;  (** [Dynlink.loadfile_private] + handshake *)
}

type compiled = {
  run : Obj.t array -> Obj.t;
      (** The query function: environment of captured values in slot
          order to query result. *)
  timings : timings;
  source_path : string;  (** Kept for inspection; see {!keep_artifacts}. *)
}

(** Why a compilation could not produce a loaded plugin.  Foreign
    exceptions escaping a plugin's initializer are host-level bugs and
    propagate as raw exceptions instead. *)
type error =
  | Unavailable  (** No native compiler on PATH, or native [Dynlink]
                     unsupported, or {!disabled} set. *)
  | Timeout of { timeout_ms : int }
      (** The compiler process exceeded its deadline and was killed. *)
  | Compile_error of string  (** Nonzero compiler exit; carries output. *)
  | Load_error of string  (** [Dynlink] failure or a plugin that never
                              performed the handshake. *)

val error_message : error -> string

val is_available : unit -> bool
(** Whether a native compiler can be invoked ([ocamlfind ocamlopt] or
    [ocamlopt] on PATH) and native dynlink is supported. *)

val compile_result :
  ?timeout_ms:int -> source:string -> unit -> (compiled, error) result
(** Write, compile and load a generated plugin.  [timeout_ms] bounds the
    external compiler process: past the deadline it is killed and
    [Error (Timeout _)] is returned, so a wedged or pathologically slow
    compiler can never stall a query.  Thread- and domain-safe: each call
    uses a fresh module name. *)

val compile : source:string -> compiled
(** {!compile_result} without a timeout, raising {!Compilation_failed}
    with the error message instead of returning [Error]. *)

val disabled : bool ref
(** Test hook: when set, {!is_available} is false and every compilation
    returns [Error Unavailable], simulating a host with no compiler. *)

val keep_artifacts : bool ref
(** When false (default), the temporary [.ml]/[.cmx]/[.cmxs] files are
    deleted after loading; set to true to inspect generated code on
    disk. *)

val workdir : unit -> string
(** The per-process scratch directory that plugins are built in. *)
