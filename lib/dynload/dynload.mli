(** Runtime native compilation and loading of generated query code
    (section 3.3 of the paper).

    The paper invokes the C# compiler on the generated class, loads the
    resulting DLL, and patches captured variables in via reflection; this
    module invokes [ocamlopt -shared] on the generated module, loads the
    [.cmxs] with [Dynlink], and passes captured values through an
    [Obj.t array] environment.

    The generated plugin is self-contained (references only [Stdlib]) and
    hands its compiled query function back to the host by raising a
    [Steno_result] exception from its initializer — no shared interface
    files are needed, which keeps plugin compilation hermetic.

    Compilation has a deliberate, measurable one-off cost (tens of
    milliseconds; section 7.1 reports 69 ms for the C# pipeline); use
    {!timings} to account for it, and cache {!compiled} values across
    invocations. *)

exception Compilation_failed of string

type timings = {
  write_ms : float;  (** writing the source file *)
  compile_ms : float;  (** [ocamlopt -shared] *)
  load_ms : float;  (** [Dynlink.loadfile_private] + handshake *)
}

type compiled = {
  run : Obj.t array -> Obj.t;
      (** The query function: environment of captured values in slot
          order to query result. *)
  timings : timings;
  source_path : string;  (** Kept for inspection; see {!keep_artifacts}. *)
}

(** Why a compilation could not produce a loaded plugin.  Foreign
    exceptions escaping a plugin's initializer are host-level bugs and
    propagate as raw exceptions instead. *)
type error =
  | Unavailable  (** No native compiler on PATH, or native [Dynlink]
                     unsupported, or {!disabled} set. *)
  | Timeout of { timeout_ms : int }
      (** The compiler process exceeded its deadline and was killed. *)
  | Compile_error of string  (** Nonzero compiler exit; carries output. *)
  | Load_error of string  (** [Dynlink] failure or a plugin that never
                              performed the handshake. *)

val error_message : error -> string

val is_available : unit -> bool
(** Whether a native compiler can be invoked ([ocamlfind ocamlopt] or
    [ocamlopt] on PATH) and native dynlink is supported. *)

val compile_result :
  ?timeout_ms:int -> source:string -> unit -> (compiled, error) result
(** Write, compile and load a generated plugin.  [timeout_ms] bounds the
    external compiler process: past the deadline it is killed and
    [Error (Timeout _)] is returned, so a wedged or pathologically slow
    compiler can never stall a query.  Thread- and domain-safe: each call
    uses a fresh module name.  Equivalent to {!compile_artifact} +
    {!load_file} + {!remove_artifact}. *)

(** {1 Split compile/load pipeline}

    The persistent plugin cache ([Pcache]) needs the two halves
    separately: compile once, copy the artifact into the store, load —
    and on a later run in another process, skip straight to the load. *)

type artifact = {
  a_cmxs : string;  (** the compiled shared object, ready to load *)
  a_ml : string;  (** the generated source it was built from *)
  a_modname : string;  (** module name stamped into the plugin *)
  a_write_ms : float;
  a_compile_ms : float;
}

val compile_artifact :
  ?timeout_ms:int -> source:string -> unit -> (artifact, error) result
(** Write the source and run [ocamlopt -shared], leaving every artifact
    on disk.  The caller must eventually call {!remove_artifact}. *)

val load_file : path:string -> unit -> (compiled, error) result
(** Dynlink the plugin at [path] and perform the [Steno_result]
    handshake.  Uses [Dynlink.loadfile_private], so repeated loads of
    the same module name — including a cached artifact stamped by
    another process — are safe.  The returned [timings] carry only
    [load_ms].  Any [Dynlink] failure is [Error (Load_error _)]; treat
    it as "this artifact is unusable" (delete and recompile), not as a
    fatal condition. *)

val remove_artifact : artifact -> unit
(** Delete the artifact's on-disk files (no-op when {!keep_artifacts}
    is set). *)

val fingerprint : unit -> string
(** Identifies the compiler/ABI this process compiles and loads against
    (OCaml version, word size, native-compiler version).  The
    persistent cache namespaces entries by this string so artifacts
    from an incompatible toolchain are never offered to [Dynlink]. *)

val compile : source:string -> compiled
(** {!compile_result} without a timeout, raising {!Compilation_failed}
    with the error message instead of returning [Error]. *)

val disabled : bool ref
(** Test hook: when set, {!is_available} is false and every compilation
    returns [Error Unavailable], simulating a host with no compiler. *)

val keep_artifacts : bool ref
(** When false (default), the temporary [.ml]/[.cmx]/[.cmxs] files are
    deleted after loading; set to true to inspect generated code on
    disk. *)

val workdir : unit -> string
(** The per-process scratch directory that plugins are built in. *)
