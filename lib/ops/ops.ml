(* The ops plane: a minimal HTTP/1.0 listener over stdlib [Unix] only.

   Admin traffic is low-rate and trusted (bind is loopback-only), so the
   server is deliberately primitive: one accept loop on a dedicated
   domain, one connection served at a time, every response
   [Connection: close].  What matters is that it cannot wedge the
   process — per-connection receive/send timeouts, every handler
   exception answers 500, and [stop] closes the listener out from under
   the accept loop and joins it. *)

type t = {
  o_engine : Steno.Engine.t;
  o_fd : Unix.file_descr;
  o_port : int;
  o_stop : bool Atomic.t;
  mutable o_domain : unit Domain.t option;
}

let http_status = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | _ -> "500 Internal Server Error"

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      if n > 0 then go (off + n)
  in
  go 0

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n"
      (http_status status) content_type (String.length body)
  in
  write_all fd (head ^ body)

(* The request line is all we need ([GET /path HTTP/1.x]). *)
let read_request_line fd =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > 4096 then None
    else
      match Unix.read fd byte 0 1 with
      | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | _ ->
        let c = Bytes.get byte 0 in
        if c = '\n' then Some (Buffer.contents buf) else begin
          if c <> '\r' then Buffer.add_char buf c;
          go ()
        end
  in
  go ()

(* Consume the remaining headers up to the blank line.  Closing a socket
   with unread request bytes still buffered turns the close into a TCP
   reset, which clients report as ECONNRESET instead of a clean response
   — so drain (bounded) before answering. *)
let drain_headers fd =
  let byte = Bytes.create 1 in
  (* [blank] is true while only [\r] has been seen on the current line;
     a [\n] read in that state is the empty line ending the headers. *)
  let rec go blank budget =
    if budget > 0 then
      match Unix.read fd byte 0 1 with
      | 0 -> ()
      | _ -> (
        match Bytes.get byte 0 with
        | '\n' -> if not blank then go true (budget - 1)
        | '\r' -> go blank (budget - 1)
        | _ -> go false (budget - 1))
  in
  try go true 16_384 with Unix.Unix_error _ -> ()

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | meth :: target :: _ ->
    (* Strip any query string: routes take no parameters. *)
    let path =
      match String.index_opt target '?' with
      | Some i -> String.sub target 0 i
      | None -> target
    in
    Some (String.uppercase_ascii meth, path)
  | _ -> None

let handle t = function
  | "GET", "/healthz" -> 200, "text/plain; charset=utf-8", "ok\n"
  | "GET", "/metrics" ->
    (* Byte-identical to [Metrics.render]: the handler adds transport,
       never content. *)
    ( 200,
      "application/openmetrics-text; version=1.0.0; charset=utf-8",
      Metrics.render (Steno.Engine.metrics t.o_engine) )
  | "GET", "/traces" ->
    ( 200,
      "application/json; charset=utf-8",
      Trace.export_chrome (Steno.Engine.tracer t.o_engine) )
  | "GET", "/slow" ->
    ( 200,
      "text/plain; charset=utf-8",
      Trace.slow_report (Steno.Engine.tracer t.o_engine) )
  | "GET", _ -> 404, "text/plain; charset=utf-8", "not found\n"
  | _ -> 405, "text/plain; charset=utf-8", "method not allowed\n"

let serve_connection t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* A stalled or hostile peer must not hold the single accept loop
         hostage. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0;
      match Option.bind (read_request_line fd) parse_request_line with
      | None -> ()
      | Some req ->
        drain_headers fd;
        let status, content_type, body =
          try handle t req
          with e ->
            500, "text/plain; charset=utf-8", Printexc.to_string e ^ "\n"
        in
        respond fd ~status ~content_type body)

let accept_loop t () =
  let rec go () =
    if not (Atomic.get t.o_stop) then begin
      (match Unix.accept t.o_fd with
      | fd, _ -> (
        try serve_connection t fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
        (* [stop] closed the listener. *)
        ()
      | exception Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

let start ?port engine =
  (* A peer that closes before the response is fully written turns the
     next [Unix.write] into SIGPIPE, whose default disposition kills the
     whole process.  Ignoring it surfaces the disconnect as
     [Unix_error EPIPE], which the accept loop already swallows.
     ([Invalid_argument]: platforms without SIGPIPE.) *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let port =
    match port with
    | Some p -> p
    | None -> (
      match (Steno.Engine.config engine).Steno.Engine.admin_port with
      | Some p -> p
      | None -> 0)
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> assert false
  in
  let t =
    {
      o_engine = engine;
      o_fd = fd;
      o_port = bound_port;
      o_stop = Atomic.make false;
      o_domain = None;
    }
  in
  t.o_domain <- Some (Domain.spawn (accept_loop t));
  t

let port t = t.o_port

let engine t = t.o_engine

let stop t =
  if not (Atomic.exchange t.o_stop true) then begin
    (* A blocked [accept] is not reliably woken by closing its fd from
       another domain; a throwaway loopback connection is. *)
    (try
       let fd = Unix.socket PF_INET SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, t.o_port)))
     with Unix.Unix_error _ -> ());
    (match t.o_domain with
    | Some d ->
      t.o_domain <- None;
      Domain.join d
    | None -> ());
    try Unix.close t.o_fd with Unix.Unix_error _ -> ()
  end
