(** The ops plane: a minimal HTTP/1.0 admin listener over one engine.

    Four read-only endpoints, loopback-only, stdlib [Unix] sockets:

    {t | Path        | Content                                          |
       |-------------|--------------------------------------------------|
       | [/healthz]  | liveness — always [200 ok]                       |
       | [/metrics]  | OpenMetrics text, byte-identical to {!Metrics.render} of the engine's registry |
       | [/traces]   | the trace ring as Chrome [trace_event] JSON ({!Trace.export_chrome}) |
       | [/slow]     | the slow-query ring as text ({!Trace.slow_report}) |}

    The listener runs an accept loop on one dedicated domain and serves
    one connection at a time with receive/send timeouts and
    [Connection: close] — an admin plane, not a data plane.  Handler
    exceptions answer [500]; they never escape the loop.

    The engine itself never opens sockets: {!start} is called by the
    host ([stenoc serve --admin-port], tests, or any embedder), reading
    {!Steno.Config.with_admin} for the default port. *)

type t

val start : ?port:int -> Steno.Engine.t -> t
(** Bind [127.0.0.1:port] and serve.  [port] defaults to the engine
    configuration's [admin_port] (and to [0] — an ephemeral port — when
    that is unset); read the bound port back with {!port}.
    @raise Unix.Unix_error when the bind fails (e.g. port in use). *)

val port : t -> int
(** The actually-bound port (useful with [port = 0]). *)

val engine : t -> Steno.Engine.t

val stop : t -> unit
(** Stop accepting, join the listener domain, release the socket.
    Idempotent. *)
