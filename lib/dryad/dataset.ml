type 'a t = { parts : 'a array array }

let of_partitions parts = { parts }

let of_array ~parts arr = { parts = Par.partition ~parts arr }

let generate ~parts ~per_partition f =
  {
    parts =
      Array.init parts (fun p -> Array.init per_partition (fun i -> f ~part:p i));
  }

let partitions t = t.parts

let num_partitions t = Array.length t.parts

let total_length t = Array.fold_left (fun n p -> n + Array.length p) 0 t.parts

let collect t = Array.concat (Array.to_list t.parts)
