type metrics = {
  mutable stages : int;
  mutable vertices : int;
  mutable exchanged : int;
  mutable gathered : int;
  mutable busy_ms : float;
}

type cluster = {
  workers : int;
  engine : Steno.Engine.t;
  m : metrics;
}

let create ?workers ?engine () =
  let workers =
    Option.value workers ~default:(Domain_pool.recommended_workers ())
  in
  let engine =
    match engine with
    | Some e -> e
    | None -> Steno.default_engine ()
  in
  {
    workers;
    engine;
    m = { stages = 0; vertices = 0; exchanged = 0; gathered = 0; busy_ms = 0.0 };
  }

let workers c = c.workers

let engine c = c.engine

let metrics c = c.m

let reset_metrics c =
  c.m.stages <- 0;
  c.m.vertices <- 0;
  c.m.exchanged <- 0;
  c.m.gathered <- 0;
  c.m.busy_ms <- 0.0

(* One stage = one vertex per partition, fanned out on the pool.  The
   whole stage runs under a "stage" span; each vertex records its own
   "vertex" span from the domain that executed it, so the sink sees both
   the stage wall time and the per-vertex distribution.  The same
   quantities feed the engine's metrics registry: stage wall time and
   per-vertex queue wait (stage start to vertex start) as histograms,
   cumulative stage/vertex counts as gauges. *)
let run_stage c f parts =
  let sink = Steno.Engine.telemetry c.engine in
  let reg = Steno.Engine.metrics c.engine in
  let stage_h =
    Metrics.histogram reg "steno_stage_ms"
      ~help:"Wall time of one Dryad stage (all vertices, milliseconds)"
  in
  let vertex_wait_h =
    Metrics.histogram reg "steno_vertex_queue_wait_ms"
      ~help:"Delay between stage start and a worker starting each vertex"
  in
  let vertex_h =
    Metrics.histogram reg "steno_vertex_ms"
      ~help:"Wall time of one vertex's execution (milliseconds)"
  in
  let stage_id = c.m.stages in
  c.m.stages <- c.m.stages + 1;
  c.m.vertices <- c.m.vertices + Array.length parts;
  Metrics.set_gauge
    (Metrics.gauge reg "steno_dryad_stages"
       ~help:"Stages executed by this cluster")
    (float_of_int c.m.stages);
  Metrics.set_gauge
    (Metrics.gauge reg "steno_dryad_vertices"
       ~help:"Vertices executed by this cluster")
    (float_of_int c.m.vertices);
  let t0 = Telemetry.now_ms () in
  let out =
    Telemetry.with_span sink "stage"
      ~attrs:
        [
          "stage", string_of_int stage_id;
          "vertices", string_of_int (Array.length parts);
        ]
      (fun () ->
        Domain_pool.run ~workers:c.workers ~tasks:(Array.length parts)
          (fun i ->
            let vstart = Telemetry.now_ms () in
            Metrics.observe vertex_wait_h (vstart -. t0);
            let r =
              Telemetry.with_span sink "vertex"
                ~attrs:
                  [ "stage", string_of_int stage_id; "index", string_of_int i ]
                (fun () -> f parts.(i))
            in
            Metrics.observe vertex_h (Telemetry.now_ms () -. vstart);
            r))
  in
  let dt = Telemetry.now_ms () -. t0 in
  c.m.busy_ms <- c.m.busy_ms +. dt;
  Metrics.observe stage_h dt;
  out

let map_partitions c f ds =
  Dataset.of_partitions (run_stage c f (Dataset.partitions ds))

(* Compile the shared plugin once before fanning out, so concurrent
   vertices hit the query cache instead of racing to compile. *)
let prewarm ?backend prepare parts =
  if Array.length parts > 0 then ignore (prepare ?backend parts.(0))

let apply_query c ?backend build ds =
  let parts = Dataset.partitions ds in
  prewarm ?backend
    (fun ?backend p -> Steno.Engine.prepare ?backend c.engine (build p))
    parts;
  Dataset.of_partitions
    (run_stage c
       (fun part -> Steno.Engine.to_array ?backend c.engine (build part))
       parts)

let apply_query_checked c ?backend build ds =
  let sample =
    let parts = Dataset.partitions ds in
    if Array.length parts > 0 then parts.(0) else [||]
  in
  (match (Check_homo.classify (build sample)).Check_homo.r_blocker with
  | None -> ()
  | Some b ->
    let reason =
      match b.Check_homo.o_verdict with
      | Check_homo.Blocking r -> r
      | Check_homo.Splittable -> "unknown"
    in
    invalid_arg
      (Printf.sprintf
         "Dryad.apply_query_checked: per-partition results are not the \
          sequential results: operator %d (%s) %s"
         b.Check_homo.o_index b.Check_homo.o_label reason));
  apply_query c ?backend build ds

let apply_scalar c ?backend build ds =
  let parts = Dataset.partitions ds in
  prewarm ?backend
    (fun ?backend p -> Steno.Engine.prepare_scalar ?backend c.engine (build p))
    parts;
  run_stage c
    (fun part -> Steno.Engine.scalar ?backend c.engine (build part))
    parts

let exchange c ~parts ~key ds =
  if parts <= 0 then invalid_arg "Dryad.exchange: parts must be positive";
  (* Stage 1: each source vertex buckets its elements by destination. *)
  let bucketed =
    run_stage c
      (fun part ->
        let buckets = Array.make parts [] in
        Array.iter
          (fun x ->
            let d = ((key x mod parts) + parts) mod parts in
            buckets.(d) <- x :: buckets.(d))
          part;
        Array.map (fun l -> Array.of_list (List.rev l)) buckets)
      (Dataset.partitions ds)
  in
  c.m.exchanged <- c.m.exchanged + Dataset.total_length ds;
  Telemetry.count
    (Steno.Engine.telemetry c.engine)
    "dryad.exchanged" (Dataset.total_length ds);
  (* Stage 2: each destination vertex concatenates its incoming chunks. *)
  let dests =
    run_stage c
      (fun chunks -> Array.concat (Array.to_list chunks))
      (Array.init parts (fun d -> Array.map (fun b -> b.(d)) bucketed))
  in
  Dataset.of_partitions dests

let gather c ds =
  c.m.gathered <- c.m.gathered + Dataset.total_length ds;
  Telemetry.count
    (Steno.Engine.telemetry c.engine)
    "dryad.gathered" (Dataset.total_length ds);
  Dataset.collect ds

let sort_by c ?(sample_rate = 16) ~key ds =
  let parts = Dataset.num_partitions ds in
  if parts <= 1 then
    map_partitions c
      (fun part ->
        let out = Array.copy part in
        Array.sort (fun a b -> compare (key a) (key b)) out;
        out)
      ds
  else begin
    (* Stage 1: sample each partition and gather the sample keys. *)
    let samples =
      run_stage c
        (fun part ->
          let n = Array.length part in
          let step = max 1 sample_rate in
          Array.init ((n + step - 1) / step) (fun i -> key part.(i * step)))
        (Dataset.partitions ds)
    in
    let all = Array.concat (Array.to_list samples) in
    c.m.gathered <- c.m.gathered + Array.length all;
    Array.sort compare all;
    (* Range boundaries: parts-1 evenly spaced sample quantiles. *)
    let boundaries =
      Array.init (parts - 1) (fun i ->
          if Array.length all = 0 then None
          else Some all.((i + 1) * Array.length all / parts))
    in
    let route x =
      let k = key x in
      (* First partition whose upper boundary admits k. *)
      let rec go lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          match boundaries.(mid) with
          | Some b when compare k b <= 0 -> go lo mid
          | Some _ -> go (mid + 1) hi
          | None -> lo
      in
      go 0 (parts - 1)
    in
    let redistributed = exchange c ~parts ~key:route ds in
    map_partitions c
      (fun part ->
        let out = Array.copy part in
        Array.sort (fun a b -> compare (key a) (key b)) out;
        out)
      redistributed
  end

let reduce_partials c ~combine ds =
  let all = gather c ds in
  let merged = Lookup.Agg.create ~seed:None () in
  Array.iter
    (fun (k, s) ->
      Lookup.Agg.update merged k (function
        | None -> Some s
        | Some cur -> Some (combine cur s)))
    all;
  Array.map
    (fun (k, s) ->
      match s with
      | Some s -> k, s
      | None -> assert false)
    (Lookup.Agg.entries merged)

let group_agg_exchange c ~parts ~combine ds =
  let redistributed = exchange c ~parts ~key:(fun (k, _) -> Hashtbl.hash k) ds in
  map_partitions c
    (fun part ->
      let merged = Lookup.Agg.create ~seed:None () in
      Array.iter
        (fun (k, s) ->
          Lookup.Agg.update merged k (function
            | None -> Some s
            | Some cur -> Some (combine cur s)))
        part;
      Array.map
        (fun (k, s) ->
          match s with
          | Some s -> k, s
          | None -> assert false)
        (Lookup.Agg.entries merged))
    redistributed
