(** A simulated Dryad/DryadLINQ execution engine (sections 6-7 of the
    paper).

    A job is a sequence of {e stages}; each stage runs one {e vertex} per
    input partition, in parallel on a pool of domains (standing in for
    cluster machines).  Vertex code is a sequential query over its
    partition — precisely the unit that Steno optimizes — so the engine
    accepts a query builder and executes it with a chosen backend:
    [Linq] reproduces unoptimized DryadLINQ vertices, [Native] reproduces
    Steno-optimized vertices (compiled once and shared across vertices,
    because partitions differ only in the captured source array).

    The paper's distributed-aggregation optimization (partial [Agg_i] per
    partition, combining [Agg*], ref. [33]) is provided by
    {!reduce_partials} and {!group_agg_exchange}. *)

type cluster

val create : ?workers:int -> ?engine:Steno.Engine.t -> unit -> cluster
(** A simulated cluster executing up to [workers] vertices concurrently
    (default: the machine's recommended domain count).  Vertex queries
    prepare and run through [engine] (default:
    [Steno.default_engine ()]); its telemetry sink receives one
    ["stage"] span per stage and one ["vertex"] span per vertex — the
    per-stage / per-vertex roll-up — plus ["dryad.exchanged"] /
    ["dryad.gathered"] counters. *)

val workers : cluster -> int

val engine : cluster -> Steno.Engine.t

(** {1 Execution metrics} *)

type metrics = {
  mutable stages : int;  (** stages executed *)
  mutable vertices : int;  (** vertex executions *)
  mutable exchanged : int;  (** elements moved across partitions *)
  mutable gathered : int;  (** elements collected to the master *)
  mutable busy_ms : float;  (** summed wall time of all stages *)
}

val metrics : cluster -> metrics
val reset_metrics : cluster -> unit

(** {1 Stages} *)

val map_partitions : cluster -> ('a array -> 'b array) -> 'a Dataset.t -> 'b Dataset.t
(** One vertex per partition running arbitrary host code (an escape
    hatch; prefer {!apply_query} for measurable query vertices). *)

val apply_query :
  cluster ->
  ?backend:Steno.backend ->
  ('a array -> 'b Query.t) ->
  'a Dataset.t ->
  'b Dataset.t
(** The Steno-integrated vertex (the paper's [HomomorphicApply] extended
    to the cluster): each vertex evaluates the query built over its
    partition with the given backend. *)

val apply_query_checked :
  cluster ->
  ?backend:Steno.backend ->
  ('a array -> 'b Query.t) ->
  'a Dataset.t ->
  'b Dataset.t
(** {!apply_query} guarded by the {!Check.Homo} classifier: raises
    [Invalid_argument] naming the first blocking operator and why, when
    the per-partition evaluation would not equal the sequential one
    (e.g. a global sort or a positional cut in the spine). *)

val apply_scalar :
  cluster ->
  ?backend:Steno.backend ->
  ('a array -> 's Query.sq) ->
  'a Dataset.t ->
  's array
(** Per-partition partial aggregation: one scalar per partition (the
    [Agg_i] stage of Fig. 12). *)

val exchange :
  cluster -> parts:int -> key:('a -> int) -> 'a Dataset.t -> 'a Dataset.t
(** Hash-repartition: element [x] moves to partition
    [key x mod parts].  Counts every element into
    [metrics.exchanged]. *)

val gather : cluster -> 'a Dataset.t -> 'a array
(** Collect a (small) dataset to the master, counting
    [metrics.gathered]. *)

(** {1 Distributed sort}

    DryadLINQ "transforms an OrderBy Sink operator into a distributed
    sort, which samples the data to estimate an appropriate partitioning,
    range-partitions the data based on that estimate, and sorts each
    resulting partition in parallel" (section 6).  [sort_by] is that
    pipeline. *)

val sort_by :
  cluster ->
  ?sample_rate:int ->
  key:('a -> 'k) ->
  'a Dataset.t ->
  'a Dataset.t
(** Globally sort the dataset by key (ascending, polymorphic comparison):
    partition [i] holds keys no greater than partition [i+1]'s, and each
    partition is locally sorted, so {!Dataset.collect} yields a fully
    sorted array.  [sample_rate] controls how many elements per partition
    feed the boundary estimate (default: every 16th element, at least
    one). *)

(** {1 Distributed aggregation} *)

val reduce_partials :
  cluster ->
  combine:('s -> 's -> 's) ->
  ('k * 's) Dataset.t ->
  ('k * 's) array
(** The [Agg*] step: gather per-partition (key, partial) pairs to the
    master and merge partials per key.  Suitable when the key set is
    small (e.g. k-means cluster ids). *)

val group_agg_exchange :
  cluster ->
  parts:int ->
  combine:('s -> 's -> 's) ->
  ('k * 's) Dataset.t ->
  ('k * 's) Dataset.t
(** Scalable [Agg*]: hash-exchange partials by key, then merge within
    each partition — the pattern DryadLINQ uses when the key set is too
    large for one machine (section 4.3 / ref. [33]). *)
