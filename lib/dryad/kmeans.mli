(** Distributed k-means clustering — the paper's representative DryadLINQ
    workload (section 7.2), packaged as a library so the example, the
    Figure 14 benchmark and the tests share one implementation.

    Each iteration is the two-step job of the paper:
    + in parallel per partition: assign every point to its nearest
      centroid (a nested query) and fold per-cluster partial vector sums
      with the GroupByAggregate sink;
    + merge the partials from all partitions ([Agg*]) and recompute the
      centroids as means.

    Points are dense [float array]s of dimension [d]. *)

type distance =
  | Expression
      (** The squared distance is a pure expression-level nested query
          (an [aggregate] over [range 0 d]): Steno fuses it into the
          generated loop, so both the overhead {e and} the useful work are
          declarative. *)
  | Udf
      (** The squared distance is a captured host function, as a
          DryadLINQ user-defined function would be: opaque to the
          optimizer, identical cost in all backends — the configuration
          Figure 14 varies dimension against. *)

val assignment_query :
  distance:distance ->
  centroids:float array array ->
  float array array ->
  (int * (float array * int)) Query.t
(** The per-partition step-1 query over one partition's points: yields
    per-cluster [(sum-vector, count)] partials.  All centroids must share
    the points' dimension. *)

val iterate :
  Dryad.cluster ->
  ?backend:Steno.backend ->
  distance:distance ->
  centroids:float array array ->
  float array Dataset.t ->
  float array array
(** One full iteration over the cluster: returns the new centroids.
    Clusters that attracted no points keep their previous centroid. *)

val run :
  Dryad.cluster ->
  ?backend:Steno.backend ->
  ?distance:distance ->
  iterations:int ->
  k:int ->
  float array Dataset.t ->
  float array array
(** Run [iterations] rounds from deterministic initial centroids (evenly
    spaced input points).  Raises [Invalid_argument] on an empty dataset
    or non-positive [k]. *)
