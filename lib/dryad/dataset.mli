(** A distributed dataset: the unit of data in the simulated cluster.

    As in DryadLINQ, a large collection is divided into partitions and a
    query executes in parallel on each partition (section 6 of the
    paper).  Here every partition is an in-memory array owned by the
    simulated cluster; vertex code only ever sees one partition at a
    time, which is the property that makes per-vertex Steno optimization
    valid. *)

type 'a t

val of_partitions : 'a array array -> 'a t

val of_array : parts:int -> 'a array -> 'a t
(** Range-partition an array into [parts] near-equal contiguous chunks. *)

val generate : parts:int -> per_partition:int -> (part:int -> int -> 'a) -> 'a t
(** [generate ~parts ~per_partition f] builds partition [p] as
    [[| f ~part:p 0; ...; f ~part:p (per_partition - 1) |]] — the analog
    of loading a partitioned input without materializing it centrally. *)

val partitions : 'a t -> 'a array array
val num_partitions : 'a t -> int
val total_length : 'a t -> int

val collect : 'a t -> 'a array
(** Gather all partitions to the "master", in partition order. *)
