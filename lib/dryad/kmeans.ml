module I = Expr.Infix

type distance =
  | Expression
  | Udf

let dims centroids =
  if Array.length centroids = 0 then invalid_arg "Kmeans: no centroids";
  Array.length centroids.(0)

(* The squared-distance scalar query from point [p] to centroid [j], as a
   pure expression-level fold over the dimensions. *)
let expression_distance ~flat ~d p j =
  Query.range ~start:0 ~count:d
  |> Query.aggregate ~seed:(Expr.float 0.0) ~step:(fun acc i ->
         Expr.let_ "dx"
           I.(p.%(i) -. flat.%(I.(j * Expr.int d) + i))
           (fun dx -> I.(acc +. (dx *. dx))))

let assignment_query ~distance ~centroids part =
  let k = Array.length centroids in
  let d = dims centroids in
  let flat_arr = Array.concat (Array.to_list centroids) in
  let flat = Expr.capture (Ty.Array Ty.Float) flat_arr in
  let vec_add =
    Expr.capture
      (Ty.Func (Ty.Array Ty.Float, Ty.Func (Ty.Array Ty.Float, Ty.Array Ty.Float)))
      (fun a b -> Array.mapi (fun i x -> x +. b.(i)) a)
  in
  let zero_vec = Expr.capture (Ty.Array Ty.Float) (Array.make d 0.0) in
  let dist_udf =
    Expr.capture
      (Ty.Func (Ty.Array Ty.Float, Ty.Func (Ty.Int, Ty.Float)))
      (fun p j ->
        let s = ref 0.0 in
        let base = j * d in
        for i = 0 to d - 1 do
          let dx = Array.unsafe_get p i -. Array.unsafe_get flat_arr (base + i) in
          s := !s +. (dx *. dx)
        done;
        !s)
  in
  Query.of_array (Ty.Array Ty.Float) part
  |> Query.select_sq (fun p ->
         (* (cluster, distance, point) of the nearest centroid. *)
         (match distance with
         | Expression ->
           Query.range ~start:0 ~count:k
           |> Query.select_sq (fun j ->
                  expression_distance ~flat ~d p j
                  |> Query.map_scalar (fun dist -> Expr.Triple (j, dist, p)))
         | Udf ->
           Query.range ~start:0 ~count:k
           |> Query.select (fun j ->
                  Expr.Triple (j, Expr.Apply (Expr.Apply (dist_udf, p), j), p)))
         |> Query.min_by (fun t -> Expr.Proj3_2 t))
  |> Query.group_by_agg
       ~key:(fun t -> Expr.Proj3_1 t)
       ~seed:(Expr.Pair (zero_vec, Expr.int 0))
       ~step:(fun acc t ->
         Expr.Pair
           ( Expr.Apply (Expr.Apply (vec_add, Expr.Fst acc), Expr.Proj3_3 t),
             I.(Expr.Snd acc + Expr.int 1) ))

let iterate cluster ?backend ~distance ~centroids ds =
  let partials =
    Dryad.apply_query cluster ?backend
      (assignment_query ~distance ~centroids)
      ds
  in
  let merged =
    Dryad.reduce_partials cluster
      ~combine:(fun (s1, n1) (s2, n2) ->
        Array.mapi (fun i x -> x +. s2.(i)) s1, n1 + n2)
      partials
  in
  let next = Array.map Array.copy centroids in
  Array.iter
    (fun (j, (sums, count)) ->
      if count > 0 then
        next.(j) <- Array.map (fun s -> s /. float_of_int count) sums)
    merged;
  next

let run cluster ?backend ?(distance = Expression) ~iterations ~k ds =
  if k <= 0 then invalid_arg "Kmeans.run: k must be positive";
  let n = Dataset.total_length ds in
  if n = 0 then invalid_arg "Kmeans.run: empty dataset";
  let all = Dataset.collect ds in
  let centroids =
    ref (Array.init k (fun j -> Array.copy all.(j * n / k)))
  in
  for _ = 1 to iterations do
    centroids := iterate cluster ?backend ~distance ~centroids:!centroids ds
  done;
  !centroids
