(** Run-time type representations.

    Steno generates source code that reconstructs captured run-time values
    from an untyped environment (the analog of the paper's reflection-set
    placeholder fields, section 3.3).  To do that safely it must know, at
    code-generation time, the OCaml type of every captured value.  A ['a t]
    is a first-class description of the type ['a]: rich enough to print as
    OCaml source, and equipped with an equality witness so that two
    independently-built descriptions of the same type can be unified. *)

type _ t =
  | Unit : unit t
  | Bool : bool t
  | Int : int t
  | Float : float t
  | String : string t
  | Pair : 'a t * 'b t -> ('a * 'b) t
  | Triple : 'a t * 'b t * 'c t -> ('a * 'b * 'c) t
  | Array : 'a t -> 'a array t
  | List : 'a t -> 'a list t
  | Option : 'a t -> 'a option t
  | Func : 'a t * 'b t -> ('a -> 'b) t

type ('a, 'b) eq = Refl : ('a, 'a) eq

val equal : 'a t -> 'b t -> ('a, 'b) eq option
(** [equal a b] is [Some Refl] iff [a] and [b] describe the same type. *)

val to_string : 'a t -> string
(** [to_string ty] renders [ty] as OCaml source, e.g. ["(float * int) array"].
    The result is always self-delimiting (parenthesized when compound) so it
    can be spliced into a type annotation. *)

val pp : Format.formatter -> 'a t -> unit

val pp_value : 'a t -> Format.formatter -> 'a -> unit
(** [pp_value ty] prints a value of type ['a] for diagnostics.  Functions
    print as ["<fun>"]. *)

val compare_values : 'a t -> 'a -> 'a -> int
(** Structural comparison specialised by the type representation.  Raises
    [Invalid_argument] on [Func] (functions are not comparable). *)
