type _ t =
  | Unit : unit t
  | Bool : bool t
  | Int : int t
  | Float : float t
  | String : string t
  | Pair : 'a t * 'b t -> ('a * 'b) t
  | Triple : 'a t * 'b t * 'c t -> ('a * 'b * 'c) t
  | Array : 'a t -> 'a array t
  | List : 'a t -> 'a list t
  | Option : 'a t -> 'a option t
  | Func : 'a t * 'b t -> ('a -> 'b) t

type ('a, 'b) eq = Refl : ('a, 'a) eq

let rec equal : type a b. a t -> b t -> (a, b) eq option =
 fun a b ->
  match a, b with
  | Unit, Unit -> Some Refl
  | Bool, Bool -> Some Refl
  | Int, Int -> Some Refl
  | Float, Float -> Some Refl
  | String, String -> Some Refl
  | Pair (a1, a2), Pair (b1, b2) -> (
    match equal a1 b1, equal a2 b2 with
    | Some Refl, Some Refl -> Some Refl
    | _, _ -> None)
  | Triple (a1, a2, a3), Triple (b1, b2, b3) -> (
    match equal a1 b1, equal a2 b2, equal a3 b3 with
    | Some Refl, Some Refl, Some Refl -> Some Refl
    | _, _, _ -> None)
  | Array a1, Array b1 -> (
    match equal a1 b1 with Some Refl -> Some Refl | None -> None)
  | List a1, List b1 -> (
    match equal a1 b1 with Some Refl -> Some Refl | None -> None)
  | Option a1, Option b1 -> (
    match equal a1 b1 with Some Refl -> Some Refl | None -> None)
  | Func (a1, a2), Func (b1, b2) -> (
    match equal a1 b1, equal a2 b2 with
    | Some Refl, Some Refl -> Some Refl
    | _, _ -> None)
  | Unit, _
  | Bool, _
  | Int, _
  | Float, _
  | String, _
  | Pair _, _
  | Triple _, _
  | Array _, _
  | List _, _
  | Option _, _
  | Func _, _ ->
    None

(* Rendering: atoms print bare; compound types print parenthesized so the
   result can always be spliced into a larger type expression. *)
let rec to_string : type a. a t -> string = function
  | Unit -> "unit"
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Pair (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Triple (a, b, c) ->
    Printf.sprintf "(%s * %s * %s)" (to_string a) (to_string b) (to_string c)
  | Array a -> Printf.sprintf "(%s array)" (to_string a)
  | List a -> Printf.sprintf "(%s list)" (to_string a)
  | Option a -> Printf.sprintf "(%s option)" (to_string a)
  | Func (a, b) -> Printf.sprintf "(%s -> %s)" (to_string a) (to_string b)

let pp fmt ty = Format.pp_print_string fmt (to_string ty)

let rec pp_value : type a. a t -> Format.formatter -> a -> unit =
 fun ty fmt v ->
  match ty with
  | Unit -> Format.pp_print_string fmt "()"
  | Bool -> Format.pp_print_bool fmt v
  | Int -> Format.pp_print_int fmt v
  | Float -> Format.fprintf fmt "%.17g" v
  | String -> Format.fprintf fmt "%S" v
  | Pair (a, b) ->
    let x, y = v in
    Format.fprintf fmt "(%a, %a)" (pp_value a) x (pp_value b) y
  | Triple (a, b, c) ->
    let x, y, z = v in
    Format.fprintf fmt "(%a, %a, %a)" (pp_value a) x (pp_value b) y
      (pp_value c) z
  | Array a ->
    Format.fprintf fmt "[|%a|]"
      (Format.pp_print_seq
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (fun fmt x -> pp_value a fmt x))
      (Array.to_seq v)
  | List a ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (fun fmt x -> pp_value a fmt x))
      v
  | Option a -> (
    match v with
    | None -> Format.pp_print_string fmt "None"
    | Some x -> Format.fprintf fmt "Some %a" (pp_value a) x)
  | Func (_, _) -> Format.pp_print_string fmt "<fun>"

let rec compare_values : type a. a t -> a -> a -> int =
 fun ty x y ->
  match ty with
  | Unit -> 0
  | Bool -> Bool.compare x y
  | Int -> Int.compare x y
  | Float -> Float.compare x y
  | String -> String.compare x y
  | Pair (a, b) ->
    let x1, x2 = x and y1, y2 = y in
    let c = compare_values a x1 y1 in
    if c <> 0 then c else compare_values b x2 y2
  | Triple (a, b, c) ->
    let x1, x2, x3 = x and y1, y2, y3 = y in
    let c1 = compare_values a x1 y1 in
    if c1 <> 0 then c1
    else
      let c2 = compare_values b x2 y2 in
      if c2 <> 0 then c2 else compare_values c x3 y3
  | Array a ->
    let lx = Array.length x and ly = Array.length y in
    let rec go i =
      if i >= lx || i >= ly then Int.compare lx ly
      else
        let c = compare_values a x.(i) y.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  | List a -> (
    match x, y with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | hx :: tx, hy :: ty' ->
      let c = compare_values a hx hy in
      if c <> 0 then c else compare_values (List a) tx ty')
  | Option a -> (
    match x, y with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some vx, Some vy -> compare_values a vx vy)
  | Func (_, _) -> invalid_arg "Ty.compare_values: functions"
