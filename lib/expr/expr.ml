type 'a var = {
  id : int;
  name : string;
  var_ty : 'a Ty.t;
}

type _ t =
  | Var : 'a var -> 'a t
  | Const_unit : unit t
  | Const_bool : bool -> bool t
  | Const_int : int -> int t
  | Const_float : float -> float t
  | Const_string : string -> string t
  | Capture : 'a Ty.t * 'a -> 'a t
  | If : bool t * 'a t * 'a t -> 'a t
  | Let : 'a var * 'a t * 'b t -> 'b t
  | Pair : 'a t * 'b t -> ('a * 'b) t
  | Fst : ('a * 'b) t -> 'a t
  | Snd : ('a * 'b) t -> 'b t
  | Triple : 'a t * 'b t * 'c t -> ('a * 'b * 'c) t
  | Proj3_1 : ('a * 'b * 'c) t -> 'a t
  | Proj3_2 : ('a * 'b * 'c) t -> 'b t
  | Proj3_3 : ('a * 'b * 'c) t -> 'c t
  | Prim1 : ('a, 'b) Prim.t1 * 'a t -> 'b t
  | Prim2 : ('a, 'b, 'c) Prim.t2 * 'a t * 'b t -> 'c t
  | Array_get : 'a array t * int t -> 'a t
  | Array_length : 'a array t -> int t
  | Apply : ('a -> 'b) t * 'a t -> 'b t

type ('a, 'b) lam = { param : 'a var; body : 'b t }
type ('a, 'b, 'c) lam2 = { param1 : 'a var; param2 : 'b var; body2 : 'c t }

let next_id = Atomic.make 0

let fresh_var name var_ty = { id = Atomic.fetch_and_add next_id 1; name; var_ty }

let lam name ty f =
  let param = fresh_var name ty in
  { param; body = f (Var param) }

let lam2 name1 ty1 name2 ty2 f =
  let param1 = fresh_var name1 ty1 in
  let param2 = fresh_var name2 ty2 in
  { param1; param2; body2 = f (Var param1) (Var param2) }

let capture ty v = Capture (ty, v)
let unit = Const_unit
let bool b = Const_bool b
let int n = Const_int n
let float x = Const_float x
let string s = Const_string s

(* Typing: synthesized bottom-up; every leaf carries its type. *)
let rec ty_of : type a. a t -> a Ty.t = function
  | Var v -> v.var_ty
  | Const_unit -> Ty.Unit
  | Const_bool _ -> Ty.Bool
  | Const_int _ -> Ty.Int
  | Const_float _ -> Ty.Float
  | Const_string _ -> Ty.String
  | Capture (ty, _) -> ty
  | If (_, a, _) -> ty_of a
  | Let (_, _, body) -> ty_of body
  | Pair (a, b) -> Ty.Pair (ty_of a, ty_of b)
  | Fst a -> ( match ty_of a with Ty.Pair (ta, _) -> ta)
  | Snd a -> ( match ty_of a with Ty.Pair (_, tb) -> tb)
  | Triple (a, b, c) -> Ty.Triple (ty_of a, ty_of b, ty_of c)
  | Proj3_1 a -> ( match ty_of a with Ty.Triple (ta, _, _) -> ta)
  | Proj3_2 a -> ( match ty_of a with Ty.Triple (_, tb, _) -> tb)
  | Proj3_3 a -> ( match ty_of a with Ty.Triple (_, _, tc) -> tc)
  | Prim1 (p, a) -> ty_of_prim1 p (ty_of a)
  | Prim2 (p, a, b) -> ty_of_prim2 p (ty_of a) (ty_of b)
  | Array_get (arr, _) -> ( match ty_of arr with Ty.Array ty -> ty)
  | Array_length _ -> Ty.Int
  | Apply (f, _) -> ( match ty_of f with Ty.Func (_, tb) -> tb)

and ty_of_prim1 : type a b. (a, b) Prim.t1 -> a Ty.t -> b Ty.t =
 fun p _ ->
  match p with
  | Prim.Neg_int -> Ty.Int
  | Prim.Neg_float -> Ty.Float
  | Prim.Not -> Ty.Bool
  | Prim.Abs_int -> Ty.Int
  | Prim.Abs_float -> Ty.Float
  | Prim.Sqrt -> Ty.Float
  | Prim.Exp -> Ty.Float
  | Prim.Log -> Ty.Float
  | Prim.Sin -> Ty.Float
  | Prim.Cos -> Ty.Float
  | Prim.Float_of_int -> Ty.Float
  | Prim.Truncate -> Ty.Int
  | Prim.Round -> Ty.Int
  | Prim.String_length -> Ty.Int

and ty_of_prim2 : type a b c. (a, b, c) Prim.t2 -> a Ty.t -> b Ty.t -> c Ty.t =
 fun p _ _ ->
  match p with
  | Prim.Add_int -> Ty.Int
  | Prim.Sub_int -> Ty.Int
  | Prim.Mul_int -> Ty.Int
  | Prim.Div_int -> Ty.Int
  | Prim.Mod_int -> Ty.Int
  | Prim.Add_float -> Ty.Float
  | Prim.Sub_float -> Ty.Float
  | Prim.Mul_float -> Ty.Float
  | Prim.Div_float -> Ty.Float
  | Prim.Pow_float -> Ty.Float
  | Prim.Min_int -> Ty.Int
  | Prim.Max_int -> Ty.Int
  | Prim.Min_float -> Ty.Float
  | Prim.Max_float -> Ty.Float
  | Prim.Eq -> Ty.Bool
  | Prim.Ne -> Ty.Bool
  | Prim.Lt -> Ty.Bool
  | Prim.Le -> Ty.Bool
  | Prim.Gt -> Ty.Bool
  | Prim.Ge -> Ty.Bool
  | Prim.And -> Ty.Bool
  | Prim.Or -> Ty.Bool
  | Prim.String_concat -> Ty.String

let let_ name e f =
  let v = fresh_var name (ty_of e) in
  Let (v, e, f (Var v))

(* Staging: walk the AST once, producing a closure over the runtime
   environment.  The environment maps variable ids to values; the pairing
   of id and type is sound because ids are globally unique and a binding is
   only ever created for the variable that owns the id. *)

type env = (int * Obj.t) list

let env_lookup env id =
  let rec go = function
    | [] -> invalid_arg "Expr: free variable during evaluation"
    | (i, v) :: rest -> if i = id then v else go rest
  in
  go env

let rec compile : type a. a t -> env -> a = function
  | Var v ->
    let id = v.id in
    fun env -> Obj.obj (env_lookup env id)
  | Const_unit -> fun _ -> ()
  | Const_bool b -> fun _ -> b
  | Const_int n -> fun _ -> n
  | Const_float x -> fun _ -> x
  | Const_string s -> fun _ -> s
  | Capture (_, v) -> fun _ -> v
  | If (c, a, b) ->
    let fc = compile c and fa = compile a and fb = compile b in
    fun env -> if fc env then fa env else fb env
  | Let (v, e, body) ->
    let fe = compile e and fbody = compile body in
    let id = v.id in
    fun env -> fbody ((id, Obj.repr (fe env)) :: env)
  | Pair (a, b) ->
    let fa = compile a and fb = compile b in
    fun env -> fa env, fb env
  | Fst a ->
    let fa = compile a in
    fun env -> fst (fa env)
  | Snd a ->
    let fa = compile a in
    fun env -> snd (fa env)
  | Triple (a, b, c) ->
    let fa = compile a and fb = compile b and fc = compile c in
    fun env -> fa env, fb env, fc env
  | Proj3_1 a ->
    let fa = compile a in
    fun env ->
      let x, _, _ = fa env in
      x
  | Proj3_2 a ->
    let fa = compile a in
    fun env ->
      let _, y, _ = fa env in
      y
  | Proj3_3 a ->
    let fa = compile a in
    fun env ->
      let _, _, z = fa env in
      z
  | Prim2 (Prim.And, a, b) ->
    (* Short-circuit, matching the generated code's use of [&&]. *)
    let fa = compile a and fb = compile b in
    fun env -> fa env && fb env
  | Prim2 (Prim.Or, a, b) ->
    let fa = compile a and fb = compile b in
    fun env -> fa env || fb env
  | Prim1 (p, a) ->
    let f = Prim.eval1 p and fa = compile a in
    fun env -> f (fa env)
  | Prim2 (p, a, b) ->
    let f = Prim.eval2 p and fa = compile a and fb = compile b in
    fun env -> f (fa env) (fb env)
  | Array_get (arr, i) ->
    let farr = compile arr and fi = compile i in
    fun env -> (farr env).(fi env)
  | Array_length arr ->
    let farr = compile arr in
    fun env -> Array.length (farr env)
  | Apply (f, a) ->
    let ff = compile f and fa = compile a in
    fun env -> ff env (fa env)

let eval e = compile e []

let stage { param; body } =
  let f = compile body in
  let id = param.id in
  fun x -> f [ id, Obj.repr x ]

let stage2 { param1; param2; body2 } =
  let f = compile body2 in
  let id1 = param1.id and id2 = param2.id in
  fun x y -> f [ id1, Obj.repr x; id2, Obj.repr y ]

module Open = struct
  type nonrec env = env

  let empty = []
  let bind v x env = (v.id, Obj.repr x) :: env
  let compile = compile

  let compile_lam { param; body } =
    let f = compile body in
    let id = param.id in
    fun env x -> f ((id, Obj.repr x) :: env)

  let compile_lam2 { param1; param2; body2 } =
    let f = compile body2 in
    let id1 = param1.id and id2 = param2.id in
    fun env x y -> f ((id1, Obj.repr x) :: (id2, Obj.repr y) :: env)
end

(* Analysis. *)

let free_var_ids e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go : type a. int list -> a t -> unit =
   fun bound e ->
    match e with
    | Var v ->
      if (not (List.mem v.id bound)) && not (Hashtbl.mem seen v.id) then begin
        Hashtbl.replace seen v.id ();
        out := v.id :: !out
      end
    | Const_unit | Const_bool _ | Const_int _ | Const_float _
    | Const_string _ | Capture _ ->
      ()
    | If (c, a, b) ->
      go bound c;
      go bound a;
      go bound b
    | Let (v, e1, body) ->
      go bound e1;
      go (v.id :: bound) body
    | Pair (a, b) ->
      go bound a;
      go bound b
    | Fst a -> go bound a
    | Snd a -> go bound a
    | Triple (a, b, c) ->
      go bound a;
      go bound b;
      go bound c
    | Proj3_1 a -> go bound a
    | Proj3_2 a -> go bound a
    | Proj3_3 a -> go bound a
    | Prim1 (_, a) -> go bound a
    | Prim2 (_, a, b) ->
      go bound a;
      go bound b
    | Array_get (arr, i) ->
      go bound arr;
      go bound i
    | Array_length arr -> go bound arr
    | Apply (f, a) ->
      go bound f;
      go bound a
  in
  go [] e;
  List.rev !out

let rec size : type a. a t -> int = function
  | Var _ | Const_unit | Const_bool _ | Const_int _ | Const_float _
  | Const_string _ | Capture _ ->
    1
  | If (c, a, b) -> 1 + size c + size a + size b
  | Let (_, e, body) -> 1 + size e + size body
  | Pair (a, b) -> 1 + size a + size b
  | Fst a -> 1 + size a
  | Snd a -> 1 + size a
  | Triple (a, b, c) -> 1 + size a + size b + size c
  | Proj3_1 a -> 1 + size a
  | Proj3_2 a -> 1 + size a
  | Proj3_3 a -> 1 + size a
  | Prim1 (_, a) -> 1 + size a
  | Prim2 (_, a, b) -> 1 + size a + size b
  | Array_get (arr, i) -> 1 + size arr + size i
  | Array_length arr -> 1 + size arr
  | Apply (f, a) -> 1 + size f + size a

(* Simplification: bottom-up constant folding plus elimination of lets
   binding atoms.  An expression with no variables, captures or host
   applications is a compile-time constant; it folds when its type has a
   literal form. *)

let const_of_ty : type a. a Ty.t -> a -> a t option =
 fun ty v ->
  match ty with
  | Ty.Unit -> Some Const_unit
  | Ty.Bool -> Some (Const_bool v)
  | Ty.Int -> Some (Const_int v)
  | Ty.Float -> Some (Const_float v)
  | Ty.String -> Some (Const_string v)
  | Ty.Pair (_, _) -> None
  | Ty.Triple (_, _, _) -> None
  | Ty.Array _ -> None
  | Ty.List _ -> None
  | Ty.Option _ -> None
  | Ty.Func (_, _) -> None

let rec is_static : type a. a t -> bool = function
  | Var _ | Capture _ | Apply _ -> false
  | Const_unit | Const_bool _ | Const_int _ | Const_float _ | Const_string _
    ->
    true
  | If (c, a, b) -> is_static c && is_static a && is_static b
  | Let (_, e, body) -> is_static e && is_static body
  | Pair (a, b) -> is_static a && is_static b
  | Fst a -> is_static a
  | Snd a -> is_static a
  | Triple (a, b, c) -> is_static a && is_static b && is_static c
  | Proj3_1 a -> is_static a
  | Proj3_2 a -> is_static a
  | Proj3_3 a -> is_static a
  | Prim1 (_, a) -> is_static a
  | Prim2 (_, a, b) -> is_static a && is_static b
  | Array_get (arr, i) -> is_static arr && is_static i
  | Array_length arr -> is_static arr

let rec subst : type a b. a var -> a t -> b t -> b t =
 fun v repl e ->
  let sub : type c. c t -> c t = fun e -> subst v repl e in
  match e with
  | Var w -> (
    if w.id <> v.id then e
    else
      match Ty.equal w.var_ty (ty_of repl) with
      | Some Ty.Refl -> repl
      | None -> e)
  | Const_unit | Const_bool _ | Const_int _ | Const_float _ | Const_string _
  | Capture _ ->
    e
  | If (c, a, b) -> If (sub c, sub a, sub b)
  | Let (w, e1, body) ->
    if w.id = v.id then Let (w, sub e1, body) else Let (w, sub e1, sub body)
  | Pair (a, b) -> Pair (sub a, sub b)
  | Fst a -> Fst (sub a)
  | Snd a -> Snd (sub a)
  | Triple (a, b, c) -> Triple (sub a, sub b, sub c)
  | Proj3_1 a -> Proj3_1 (sub a)
  | Proj3_2 a -> Proj3_2 (sub a)
  | Proj3_3 a -> Proj3_3 (sub a)
  | Prim1 (p, a) -> Prim1 (p, sub a)
  | Prim2 (p, a, b) -> Prim2 (p, sub a, sub b)
  | Array_get (arr, i) -> Array_get (sub arr, sub i)
  | Array_length arr -> Array_length (sub arr)
  | Apply (f, a) -> Apply (sub f, sub a)

let is_atom : type a. a t -> bool = function
  | Var _ | Const_unit | Const_bool _ | Const_int _ | Const_float _
  | Const_string _ | Capture _ ->
    true
  | If _ | Let _ | Pair _ | Fst _ | Snd _ | Triple _ | Proj3_1 _ | Proj3_2 _
  | Proj3_3 _ | Prim1 _ | Prim2 _ | Array_get _ | Array_length _ | Apply _ ->
    false

let rec simplify : type a. a t -> a t =
 fun e ->
  let fold : type b. b t -> b t =
   fun e ->
    if is_static e then
      match const_of_ty (ty_of e) (eval e) with Some c -> c | None -> e
    else e
  in
  match e with
  | Var _ | Const_unit | Const_bool _ | Const_int _ | Const_float _
  | Const_string _ | Capture _ ->
    e
  | If (c, a, b) -> (
    match simplify c with
    | Const_bool true -> simplify a
    | Const_bool false -> simplify b
    | c' -> fold (If (c', simplify a, simplify b)))
  | Let (v, e1, body) ->
    let e1' = simplify e1 in
    if is_atom e1' then simplify (subst v e1' body)
    else Let (v, e1', simplify body)
  | Pair (a, b) -> Pair (simplify a, simplify b)
  | Fst a -> (
    match simplify a with Pair (x, _) -> x | a' -> fold (Fst a'))
  | Snd a -> (
    match simplify a with Pair (_, y) -> y | a' -> fold (Snd a'))
  | Triple (a, b, c) -> Triple (simplify a, simplify b, simplify c)
  | Proj3_1 a -> (
    match simplify a with Triple (x, _, _) -> x | a' -> fold (Proj3_1 a'))
  | Proj3_2 a -> (
    match simplify a with Triple (_, y, _) -> y | a' -> fold (Proj3_2 a'))
  | Proj3_3 a -> (
    match simplify a with Triple (_, _, z) -> z | a' -> fold (Proj3_3 a'))
  | Prim1 (p, a) -> fold (Prim1 (p, simplify a))
  | Prim2 (p, a, b) -> fold (Prim2 (p, simplify a, simplify b))
  | Array_get (arr, i) -> Array_get (simplify arr, simplify i)
  | Array_length arr -> fold (Array_length (simplify arr))
  | Apply (f, a) -> Apply (simplify f, simplify a)

(* Alpha-equivalence: compare two expressions structurally, relating
   bound variables positionally.  Types are erased for the comparison;
   primitive operators compare by name, constants by value, captures by
   physical equality of the value. *)
let alpha_equal_open (pairs : (int * int) list) ea eb =
  let rec go : type a b. (int * int) list -> a t -> b t -> bool =
   fun env ea eb ->
    match ea, eb with
    | Var va, Var vb ->
      let rec lookup = function
        | [] -> va.id = vb.id
        | (ia, ib) :: rest ->
          if ia = va.id || ib = vb.id then ia = va.id && ib = vb.id
          else lookup rest
      in
      lookup env
    | Const_unit, Const_unit -> true
    | Const_bool a, Const_bool b -> a = b
    | Const_int a, Const_int b -> a = b
    | Const_float a, Const_float b -> Float.equal a b
    | Const_string a, Const_string b -> String.equal a b
    | Capture (_, va), Capture (_, vb) -> Obj.repr va == Obj.repr vb
    | If (ca, ta, fa), If (cb, tb, fb) ->
      go env ca cb && go env ta tb && go env fa fb
    | Let (va, ea1, ba), Let (vb, eb1, bb) ->
      go env ea1 eb1 && go ((va.id, vb.id) :: env) ba bb
    | Pair (a1, a2), Pair (b1, b2) -> go env a1 b1 && go env a2 b2
    | Fst a, Fst b -> go env a b
    | Snd a, Snd b -> go env a b
    | Triple (a1, a2, a3), Triple (b1, b2, b3) ->
      go env a1 b1 && go env a2 b2 && go env a3 b3
    | Proj3_1 a, Proj3_1 b -> go env a b
    | Proj3_2 a, Proj3_2 b -> go env a b
    | Proj3_3 a, Proj3_3 b -> go env a b
    | Prim1 (pa, a), Prim1 (pb, b) ->
      String.equal (Prim.name1 pa) (Prim.name1 pb) && go env a b
    | Prim2 (pa, a1, a2), Prim2 (pb, b1, b2) ->
      String.equal (Prim.name2 pa) (Prim.name2 pb)
      && go env a1 b1 && go env a2 b2
    | Array_get (a1, a2), Array_get (b1, b2) -> go env a1 b1 && go env a2 b2
    | Array_length a, Array_length b -> go env a b
    | Apply (f1, a1), Apply (f2, a2) -> go env f1 f2 && go env a1 a2
    | ( ( Var _ | Const_unit | Const_bool _ | Const_int _ | Const_float _
        | Const_string _ | Capture _ | If _ | Let _ | Pair _ | Fst _ | Snd _
        | Triple _ | Proj3_1 _ | Proj3_2 _ | Proj3_3 _ | Prim1 _ | Prim2 _
        | Array_get _ | Array_length _ | Apply _ ),
        _ ) ->
      false
  in
  go pairs ea eb

let alpha_equal_lam la lb =
  alpha_equal_open [ la.param.id, lb.param.id ] la.body lb.body

(* Capture environment. *)

module Capture_table = struct
  type entry = Entry : 'a Ty.t * 'a -> entry

  type t = { mutable slots : entry list (* reversed *); mutable n : int }

  let create () = { slots = []; n = 0 }

  let register (type a) t (ty : a Ty.t) (v : a) =
    let rec find i = function
      | [] -> None
      | Entry (ty', v') :: rest -> (
        match Ty.equal ty ty' with
        | Some Ty.Refl when v' == v -> Some (t.n - 1 - i)
        | Some Ty.Refl | None -> find (i + 1) rest)
    in
    match find 0 t.slots with
    | Some slot -> slot
    | None ->
      t.slots <- Entry (ty, v) :: t.slots;
      t.n <- t.n + 1;
      t.n - 1

  let entries t = Array.of_list (List.rev t.slots)

  let length t = t.n

  let to_env t =
    Array.map (fun (Entry (_, v)) -> Obj.repr v) (entries t)

  let slot_name i = Printf.sprintf "__c%d" i

  let slot_binding i (Entry (ty, _)) =
    Printf.sprintf "let %s : %s = Stdlib.Obj.obj (Stdlib.Array.get __env %d) in"
      (slot_name i) (Ty.to_string ty) i
end

(* Printing. *)

type name_env = (int * string) list

let name_env_empty = []

let name_env_add v name env = (v.id, name) :: env

let float_literal x =
  (* Hexadecimal float literals are exact and are valid OCaml syntax. *)
  if Float.is_integer x && Float.abs x < 1e16 then
    Printf.sprintf "(%.1f)" x
  else Printf.sprintf "(%h)" x

let print ?captures env e =
  let lookup env id =
    match List.assoc_opt id env with
    | Some name -> name
    | None -> invalid_arg "Expr.print: free variable with no assigned name"
  in
  let fresh_local = ref 0 in
  let rec go : type a. name_env -> a t -> string =
   fun env e ->
    match e with
    | Var v -> lookup env v.id
    | Const_unit -> "()"
    | Const_bool b -> string_of_bool b
    | Const_int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
    | Const_float x -> float_literal x
    | Const_string s -> Printf.sprintf "%S" s
    | Capture (ty, v) -> (
      match captures with
      | Some table -> Capture_table.slot_name (Capture_table.register table ty v)
      | None -> invalid_arg "Expr.print: capture without a capture table")
    (* Sub-expressions are rendered in left-to-right order with explicit
       lets, so capture slots are assigned in reading order (OCaml
       evaluates function arguments right to left). *)
    | If (c, a, b) ->
      let sc = go env c in
      let sa = go env a in
      let sb = go env b in
      Printf.sprintf "(if %s then %s else %s)" sc sa sb
    | Let (v, e1, body) ->
      let name = Printf.sprintf "__l%d" !fresh_local in
      incr fresh_local;
      let se = go env e1 in
      let sbody = go ((v.id, name) :: env) body in
      Printf.sprintf "(let %s = %s in %s)" name se sbody
    | Pair (a, b) ->
      let sa = go env a in
      let sb = go env b in
      Printf.sprintf "(%s, %s)" sa sb
    | Fst a -> Printf.sprintf "(Stdlib.fst %s)" (go env a)
    | Snd a -> Printf.sprintf "(Stdlib.snd %s)" (go env a)
    | Triple (a, b, c) ->
      let sa = go env a in
      let sb = go env b in
      let sc = go env c in
      Printf.sprintf "(%s, %s, %s)" sa sb sc
    | Proj3_1 a ->
      Printf.sprintf "(let (__x, _, _) = %s in __x)" (go env a)
    | Proj3_2 a ->
      Printf.sprintf "(let (_, __x, _) = %s in __x)" (go env a)
    | Proj3_3 a ->
      Printf.sprintf "(let (_, _, __x) = %s in __x)" (go env a)
    | Prim1 (p, a) -> Prim.print1 p (go env a)
    | Prim2 (p, a, b) ->
      let sa = go env a in
      let sb = go env b in
      Prim.print2 p sa sb
    | Array_get (arr, i) ->
      let sarr = go env arr in
      let si = go env i in
      Printf.sprintf "(Stdlib.Array.unsafe_get %s %s)" sarr si
    | Array_length arr ->
      Printf.sprintf "(Stdlib.Array.length %s)" (go env arr)
    | Apply (f, a) ->
      let sf = go env f in
      let sa = go env a in
      Printf.sprintf "(%s %s)" sf sa
  in
  go env e

let pp_debug fmt e =
  let rec go : type a. Format.formatter -> a t -> unit =
   fun fmt e ->
    match e with
    | Var v -> Format.fprintf fmt "%s#%d" v.name v.id
    | Const_unit -> Format.pp_print_string fmt "()"
    | Const_bool b -> Format.pp_print_bool fmt b
    | Const_int n -> Format.pp_print_int fmt n
    | Const_float x -> Format.fprintf fmt "%g" x
    | Const_string s -> Format.fprintf fmt "%S" s
    | Capture (ty, _) -> Format.fprintf fmt "<capture:%s>" (Ty.to_string ty)
    | If (c, a, b) ->
      Format.fprintf fmt "(if %a %a %a)" go c go a go b
    | Let (v, e1, body) ->
      Format.fprintf fmt "(let %s#%d %a %a)" v.name v.id go e1 go body
    | Pair (a, b) -> Format.fprintf fmt "(pair %a %a)" go a go b
    | Fst a -> Format.fprintf fmt "(fst %a)" go a
    | Snd a -> Format.fprintf fmt "(snd %a)" go a
    | Triple (a, b, c) ->
      Format.fprintf fmt "(triple %a %a %a)" go a go b go c
    | Proj3_1 a -> Format.fprintf fmt "(proj3_1 %a)" go a
    | Proj3_2 a -> Format.fprintf fmt "(proj3_2 %a)" go a
    | Proj3_3 a -> Format.fprintf fmt "(proj3_3 %a)" go a
    | Prim1 (p, a) -> Format.fprintf fmt "(%s %a)" (Prim.name1 p) go a
    | Prim2 (p, a, b) ->
      Format.fprintf fmt "(%s %a %a)" (Prim.name2 p) go a go b
    | Array_get (arr, i) -> Format.fprintf fmt "(get %a %a)" go arr go i
    | Array_length arr -> Format.fprintf fmt "(length %a)" go arr
    | Apply (f, a) -> Format.fprintf fmt "(apply %a %a)" go f go a
  in
  go fmt e

module Infix = struct
  let ( + ) a b = Prim2 (Prim.Add_int, a, b)
  let ( - ) a b = Prim2 (Prim.Sub_int, a, b)
  let ( * ) a b = Prim2 (Prim.Mul_int, a, b)
  let ( / ) a b = Prim2 (Prim.Div_int, a, b)
  let ( mod ) a b = Prim2 (Prim.Mod_int, a, b)
  let ( +. ) a b = Prim2 (Prim.Add_float, a, b)
  let ( -. ) a b = Prim2 (Prim.Sub_float, a, b)
  let ( *. ) a b = Prim2 (Prim.Mul_float, a, b)
  let ( /. ) a b = Prim2 (Prim.Div_float, a, b)
  let ( ** ) a b = Prim2 (Prim.Pow_float, a, b)
  let ( = ) a b = Prim2 (Prim.Eq, a, b)
  let ( <> ) a b = Prim2 (Prim.Ne, a, b)
  let ( < ) a b = Prim2 (Prim.Lt, a, b)
  let ( <= ) a b = Prim2 (Prim.Le, a, b)
  let ( > ) a b = Prim2 (Prim.Gt, a, b)
  let ( >= ) a b = Prim2 (Prim.Ge, a, b)
  let ( && ) a b = Prim2 (Prim.And, a, b)
  let ( || ) a b = Prim2 (Prim.Or, a, b)
  let not a = Prim1 (Prim.Not, a)
  let ( .%() ) arr i = Array_get (arr, i)
end
