(** Primitive operators of the expression language.

    Each primitive knows how to evaluate itself and how to print itself as
    OCaml source.  Primitives are the only leaves of computation other than
    constants, variables and captured values, so adding a primitive here
    extends both the interpreter (LINQ and fused backends) and the code
    generator (native backend) at once. *)

type ('a, 'b) t1 =
  | Neg_int : (int, int) t1
  | Neg_float : (float, float) t1
  | Not : (bool, bool) t1
  | Abs_int : (int, int) t1
  | Abs_float : (float, float) t1
  | Sqrt : (float, float) t1
  | Exp : (float, float) t1
  | Log : (float, float) t1
  | Sin : (float, float) t1
  | Cos : (float, float) t1
  | Float_of_int : (int, float) t1
  | Truncate : (float, int) t1
  | Round : (float, int) t1
  | String_length : (string, int) t1

type ('a, 'b, 'c) t2 =
  | Add_int : (int, int, int) t2
  | Sub_int : (int, int, int) t2
  | Mul_int : (int, int, int) t2
  | Div_int : (int, int, int) t2
  | Mod_int : (int, int, int) t2
  | Add_float : (float, float, float) t2
  | Sub_float : (float, float, float) t2
  | Mul_float : (float, float, float) t2
  | Div_float : (float, float, float) t2
  | Pow_float : (float, float, float) t2
  | Min_int : (int, int, int) t2
  | Max_int : (int, int, int) t2
  | Min_float : (float, float, float) t2
  | Max_float : (float, float, float) t2
  | Eq : ('a, 'a, bool) t2
  | Ne : ('a, 'a, bool) t2
  | Lt : ('a, 'a, bool) t2
  | Le : ('a, 'a, bool) t2
  | Gt : ('a, 'a, bool) t2
  | Ge : ('a, 'a, bool) t2
  | And : (bool, bool, bool) t2
  | Or : (bool, bool, bool) t2
  | String_concat : (string, string, string) t2

val eval1 : ('a, 'b) t1 -> 'a -> 'b
val eval2 : ('a, 'b, 'c) t2 -> 'a -> 'b -> 'c

val print1 : ('a, 'b) t1 -> string -> string
(** [print1 p arg] renders the application of [p] to the already-rendered,
    self-delimiting operand [arg] as a self-delimiting OCaml expression. *)

val print2 : ('a, 'b, 'c) t2 -> string -> string -> string

val name1 : ('a, 'b) t1 -> string
(** Stable name for diagnostics and QUIL dumps. *)

val name2 : ('a, 'b, 'c) t2 -> string
