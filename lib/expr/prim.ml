type ('a, 'b) t1 =
  | Neg_int : (int, int) t1
  | Neg_float : (float, float) t1
  | Not : (bool, bool) t1
  | Abs_int : (int, int) t1
  | Abs_float : (float, float) t1
  | Sqrt : (float, float) t1
  | Exp : (float, float) t1
  | Log : (float, float) t1
  | Sin : (float, float) t1
  | Cos : (float, float) t1
  | Float_of_int : (int, float) t1
  | Truncate : (float, int) t1
  | Round : (float, int) t1
  | String_length : (string, int) t1

type ('a, 'b, 'c) t2 =
  | Add_int : (int, int, int) t2
  | Sub_int : (int, int, int) t2
  | Mul_int : (int, int, int) t2
  | Div_int : (int, int, int) t2
  | Mod_int : (int, int, int) t2
  | Add_float : (float, float, float) t2
  | Sub_float : (float, float, float) t2
  | Mul_float : (float, float, float) t2
  | Div_float : (float, float, float) t2
  | Pow_float : (float, float, float) t2
  | Min_int : (int, int, int) t2
  | Max_int : (int, int, int) t2
  | Min_float : (float, float, float) t2
  | Max_float : (float, float, float) t2
  | Eq : ('a, 'a, bool) t2
  | Ne : ('a, 'a, bool) t2
  | Lt : ('a, 'a, bool) t2
  | Le : ('a, 'a, bool) t2
  | Gt : ('a, 'a, bool) t2
  | Ge : ('a, 'a, bool) t2
  | And : (bool, bool, bool) t2
  | Or : (bool, bool, bool) t2
  | String_concat : (string, string, string) t2

let eval1 : type a b. (a, b) t1 -> a -> b = function
  | Neg_int -> fun x -> -x
  | Neg_float -> fun x -> -.x
  | Not -> not
  | Abs_int -> abs
  | Abs_float -> abs_float
  | Sqrt -> sqrt
  | Exp -> exp
  | Log -> log
  | Sin -> sin
  | Cos -> cos
  | Float_of_int -> float_of_int
  | Truncate -> truncate
  | Round -> fun x -> int_of_float (Float.round x)
  | String_length -> String.length

let eval2 : type a b c. (a, b, c) t2 -> a -> b -> c = function
  | Add_int -> ( + )
  | Sub_int -> ( - )
  | Mul_int -> ( * )
  | Div_int -> ( / )
  | Mod_int -> ( mod )
  | Add_float -> ( +. )
  | Sub_float -> ( -. )
  | Mul_float -> ( *. )
  | Div_float -> ( /. )
  | Pow_float -> ( ** )
  | Min_int -> min
  | Max_int -> max
  | Min_float -> Float.min
  | Max_float -> Float.max
  | Eq -> fun a b -> a = b
  | Ne -> fun a b -> a <> b
  | Lt -> fun a b -> a < b
  | Le -> fun a b -> a <= b
  | Gt -> fun a b -> a > b
  | Ge -> fun a b -> a >= b
  | And -> ( && )
  | Or -> ( || )
  | String_concat -> ( ^ )

let print1 : type a b. (a, b) t1 -> string -> string =
 fun p arg ->
  match p with
  | Neg_int -> Printf.sprintf "(- %s)" arg
  | Neg_float -> Printf.sprintf "(-. %s)" arg
  | Not -> Printf.sprintf "(not %s)" arg
  | Abs_int -> Printf.sprintf "(Stdlib.abs %s)" arg
  | Abs_float -> Printf.sprintf "(Stdlib.abs_float %s)" arg
  | Sqrt -> Printf.sprintf "(Stdlib.sqrt %s)" arg
  | Exp -> Printf.sprintf "(Stdlib.exp %s)" arg
  | Log -> Printf.sprintf "(Stdlib.log %s)" arg
  | Sin -> Printf.sprintf "(Stdlib.sin %s)" arg
  | Cos -> Printf.sprintf "(Stdlib.cos %s)" arg
  | Float_of_int -> Printf.sprintf "(Stdlib.float_of_int %s)" arg
  | Truncate -> Printf.sprintf "(Stdlib.truncate %s)" arg
  | Round -> Printf.sprintf "(Stdlib.int_of_float (Stdlib.Float.round %s))" arg
  | String_length -> Printf.sprintf "(Stdlib.String.length %s)" arg

let print2 : type a b c. (a, b, c) t2 -> string -> string -> string =
 fun p a b ->
  let infix op = Printf.sprintf "(%s %s %s)" a op b in
  match p with
  | Add_int -> infix "+"
  | Sub_int -> infix "-"
  | Mul_int -> infix "*"
  | Div_int -> infix "/"
  | Mod_int -> infix "mod"
  | Add_float -> infix "+."
  | Sub_float -> infix "-."
  | Mul_float -> infix "*."
  | Div_float -> infix "/."
  | Pow_float -> infix "**"
  | Min_int -> Printf.sprintf "(Stdlib.min %s %s : int)" a b
  | Max_int -> Printf.sprintf "(Stdlib.max %s %s : int)" a b
  | Min_float -> Printf.sprintf "(Stdlib.Float.min %s %s)" a b
  | Max_float -> Printf.sprintf "(Stdlib.Float.max %s %s)" a b
  | Eq -> infix "="
  | Ne -> infix "<>"
  | Lt -> infix "<"
  | Le -> infix "<="
  | Gt -> infix ">"
  | Ge -> infix ">="
  | And -> infix "&&"
  | Or -> infix "||"
  | String_concat -> infix "^"

let name1 : type a b. (a, b) t1 -> string = function
  | Neg_int -> "neg"
  | Neg_float -> "neg."
  | Not -> "not"
  | Abs_int -> "abs"
  | Abs_float -> "abs."
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Float_of_int -> "float_of_int"
  | Truncate -> "truncate"
  | Round -> "round"
  | String_length -> "strlen"

let name2 : type a b c. (a, b, c) t2 -> string = function
  | Add_int -> "+"
  | Sub_int -> "-"
  | Mul_int -> "*"
  | Div_int -> "/"
  | Mod_int -> "mod"
  | Add_float -> "+."
  | Sub_float -> "-."
  | Mul_float -> "*."
  | Div_float -> "/."
  | Pow_float -> "**"
  | Min_int -> "min"
  | Max_int -> "max"
  | Min_float -> "min."
  | Max_float -> "max."
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | String_concat -> "^"
