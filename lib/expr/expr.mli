(** Typed expression trees: the lambda language of Steno queries.

    LINQ queries carry their predicates and transformations as expression
    trees that the query provider can inspect at run time (section 3.1 of
    the paper).  This module is the OCaml analog: a GADT-typed AST rich
    enough to (i) evaluate directly (for the unoptimized LINQ backend),
    (ii) stage into closures (the analog of compiling a lambda to a
    delegate), and (iii) print as OCaml source with the lambda inlined
    (the Steno native backend).

    Run-time values enter an expression through {!capture}, which records
    the value together with its {!Ty.t}; code generation later assigns all
    captures to environment slots (section 3.3). *)

type 'a var = private {
  id : int;  (** globally unique *)
  name : string;  (** base name for diagnostics; printing renames *)
  var_ty : 'a Ty.t;
}

type _ t =
  | Var : 'a var -> 'a t
  | Const_unit : unit t
  | Const_bool : bool -> bool t
  | Const_int : int -> int t
  | Const_float : float -> float t
  | Const_string : string -> string t
  | Capture : 'a Ty.t * 'a -> 'a t
  | If : bool t * 'a t * 'a t -> 'a t
  | Let : 'a var * 'a t * 'b t -> 'b t
  | Pair : 'a t * 'b t -> ('a * 'b) t
  | Fst : ('a * 'b) t -> 'a t
  | Snd : ('a * 'b) t -> 'b t
  | Triple : 'a t * 'b t * 'c t -> ('a * 'b * 'c) t
  | Proj3_1 : ('a * 'b * 'c) t -> 'a t
  | Proj3_2 : ('a * 'b * 'c) t -> 'b t
  | Proj3_3 : ('a * 'b * 'c) t -> 'c t
  | Prim1 : ('a, 'b) Prim.t1 * 'a t -> 'b t
  | Prim2 : ('a, 'b, 'c) Prim.t2 * 'a t * 'b t -> 'c t
  | Array_get : 'a array t * int t -> 'a t
  | Array_length : 'a array t -> int t
  | Apply : ('a -> 'b) t * 'a t -> 'b t
      (** Application of a captured host function: opaque to optimization,
          like a non-expression delegate in LINQ. *)

type ('a, 'b) lam = { param : 'a var; body : 'b t }
type ('a, 'b, 'c) lam2 = { param1 : 'a var; param2 : 'b var; body2 : 'c t }

(** {1 Construction} *)

val fresh_var : string -> 'a Ty.t -> 'a var

val lam : string -> 'a Ty.t -> ('a t -> 'b t) -> ('a, 'b) lam
(** [lam name ty f] builds a one-parameter lambda in higher-order abstract
    style: [f] receives the parameter as an expression. *)

val lam2 :
  string ->
  'a Ty.t ->
  string ->
  'b Ty.t ->
  ('a t -> 'b t -> 'c t) ->
  ('a, 'b, 'c) lam2

val let_ : string -> 'a t -> ('a t -> 'b t) -> 'b t
(** [let_ name e f] binds [e] once and uses it via the variable given to
    [f]; the type of the variable is synthesized from [e]. *)

val capture : 'a Ty.t -> 'a -> 'a t

val unit : unit t
val bool : bool -> bool t
val int : int -> int t
val float : float -> float t
val string : string -> string t

(** {1 Typing} *)

val ty_of : 'a t -> 'a Ty.t
(** Synthesize the type representation of an expression.  Total: every
    leaf carries its type. *)

(** {1 Evaluation} *)

val eval : 'a t -> 'a
(** Evaluate a closed expression.  Raises [Invalid_argument] on a free
    variable. *)

val stage : ('a, 'b) lam -> 'a -> 'b
(** Compile a lambda to a closure by walking the AST once (the analog of
    LINQ compiling an expression tree to a delegate): after staging, each
    call performs one indirect call per node and no AST dispatch. *)

val stage2 : ('a, 'b, 'c) lam2 -> 'a -> 'b -> 'c

(** {1 Open-expression compilation}

    Interpreting a nested query requires compiling expressions whose free
    variables are bound per outer element (section 5.2: the nested query
    refers to the current element of the outer query).  [Open.compile]
    walks the AST once; the resulting closure is applied to a binding
    environment each time. *)

module Open : sig
  type env

  val empty : env
  val bind : 'a var -> 'a -> env -> env
  val compile : 'a t -> env -> 'a
  val compile_lam : ('a, 'b) lam -> env -> 'a -> 'b
  val compile_lam2 : ('a, 'b, 'c) lam2 -> env -> 'a -> 'b -> 'c
end

(** {1 Analysis and transformation} *)

val free_var_ids : 'a t -> int list
(** Ids of variables occurring free, each listed once, in first-occurrence
    order. *)

val simplify : 'a t -> 'a t
(** Constant folding and trivial-let elimination.  Captures are not
    folded (their values are only fixed at invocation time). *)

val subst : 'a var -> 'a t -> 'b t -> 'b t
(** Capture-avoiding substitution of a variable (ids are globally unique,
    so shadowing cannot occur). *)

val alpha_equal_lam : ('a, 'k) lam -> ('b, 'j) lam -> bool
(** Structural equality of two lambdas up to renaming of their parameters
    (and of internal lets).  Captured values compare by physical equality;
    used by optimization passes to recognize that two selectors compute
    the same key. *)

val size : 'a t -> int
(** Number of AST nodes, for diagnostics and cost heuristics. *)

(** {1 Capture environment}

    Code generation assigns each captured value an index in the [Obj.t
    array] environment passed to a compiled query — the analog of the
    paper's placeholder instance fields set by reflection (section 3.3).
    Slots are assigned in printing order, so re-extracting from a
    structurally identical query yields an aligned environment. *)

module Capture_table : sig
  type entry = Entry : 'a Ty.t * 'a -> entry
  type t

  val create : unit -> t

  val register : t -> 'a Ty.t -> 'a -> int
  (** Slot index for this capture; physically equal values of equal type
      share a slot. *)

  val entries : t -> entry array
  val length : t -> int

  val to_env : t -> Obj.t array
  (** The runtime environment to pass to a compiled query. *)

  val slot_name : int -> string
  (** Identifier generated code binds for slot [i]. *)

  val slot_binding : int -> entry -> string
  (** [slot_binding i entry] is the OCaml line binding slot [i] from the
      environment array, e.g.
      ["let __c0 : (float array) = Stdlib.Obj.obj (Stdlib.Array.get __env 0) in"]. *)
end

(** {1 Printing} *)

type name_env
(** Maps variable ids to the OCaml identifiers chosen by the code
    generator. *)

val name_env_empty : name_env
val name_env_add : 'a var -> string -> name_env -> name_env

val print : ?captures:Capture_table.t -> name_env -> 'a t -> string
(** [print env e] renders [e] as a self-delimiting OCaml expression.  Free
    variables are looked up in [env] (raises [Invalid_argument] when
    missing).  [Capture] nodes are registered in [captures] and rendered
    as slot identifiers; without a table a capture raises. *)

val pp_debug : Format.formatter -> 'a t -> unit
(** Compact dump for diagnostics and tests. *)

(** {1 Infix sugar}

    Open [Expr.Infix] locally to write expression bodies with ordinary
    operator syntax.  The operators shadow [Stdlib]'s, as is conventional
    for embedded DSLs. *)

module Infix : sig
  val ( + ) : int t -> int t -> int t
  val ( - ) : int t -> int t -> int t
  val ( * ) : int t -> int t -> int t
  val ( / ) : int t -> int t -> int t
  val ( mod ) : int t -> int t -> int t
  val ( +. ) : float t -> float t -> float t
  val ( -. ) : float t -> float t -> float t
  val ( *. ) : float t -> float t -> float t
  val ( /. ) : float t -> float t -> float t
  val ( ** ) : float t -> float t -> float t
  val ( = ) : 'a t -> 'a t -> bool t
  val ( <> ) : 'a t -> 'a t -> bool t
  val ( < ) : 'a t -> 'a t -> bool t
  val ( <= ) : 'a t -> 'a t -> bool t
  val ( > ) : 'a t -> 'a t -> bool t
  val ( >= ) : 'a t -> 'a t -> bool t
  val ( && ) : bool t -> bool t -> bool t
  val ( || ) : bool t -> bool t -> bool t
  val not : bool t -> bool t
  val ( .%() ) : 'a array t -> int t -> 'a t
  (** [arr.%(i)] is array indexing. *)
end
