(** A concurrent query service over one shared {!Steno.Engine}.

    The server is the admission-control front end the engine itself does
    not provide: the engine makes concurrent prepares and runs {e safe}
    (sharded cache locks, single-flight compiles, lock-free metric
    writes), while the server decides {e how many} of them may be in
    flight at once, and sheds the rest instead of queueing without
    bound.

    The model: each client is a {!Steno.Session.t}, memoized by client
    id, so tenant labels and per-client stats come for free.  A request
    is a function over that session, submitted with {!submit}:

    {[
      let server = Server.create engine ~max_inflight:4 ~max_queue:64 in
      match
        Server.submit server ~client_id:"alice" (fun sess ->
            Steno.Session.to_array sess q)
      with
      | Server.Done rows -> ...
      | Server.Rejected reason -> (* shed; tell the client to back off *)
      | Server.Failed exn -> (* the request itself raised *)
    ]}

    Admission is two-level: up to [max_inflight] requests execute
    concurrently; beyond that, up to [max_queue] callers block waiting
    for a slot; beyond {e that}, [submit] returns [Rejected Queue_full]
    immediately — load-shedding is a value, never an exception, and
    never a crash.  Every outcome is counted into the engine's metrics
    registry ([steno_server_requests_total] labelled by client and
    outcome, queue wait into [steno_server_queue_ms]).

    Domain-safe throughout; [submit] is designed to be called from many
    domains at once. *)

type t

type reject_reason =
  | Queue_full  (** [max_inflight] running and [max_queue] waiting. *)
  | Shutting_down  (** {!shutdown} has begun; no new work admitted. *)

val reject_reason_message : reject_reason -> string

(** Result of one submitted request. *)
type 'a outcome =
  | Done of 'a
  | Rejected of reject_reason
      (** Shed before execution: the request function never ran. *)
  | Failed of exn
      (** The request function raised after admission.  The exception is
          returned, not re-raised: one poisonous query must not unwind a
          server loop serving other clients. *)

val create : ?max_inflight:int -> ?max_queue:int -> Steno.Engine.t -> t
(** A server over [engine].  [max_inflight] bounds concurrently
    executing requests (default: the domain count recommendation,
    minimum 1); [max_queue] bounds callers blocked waiting for a slot
    (default [64]; [0] means shed as soon as all slots are busy). *)

val engine : t -> Steno.Engine.t

val session : t -> client_id:string -> Steno.Session.t
(** The session for [client_id], created on first use and memoized: two
    submissions for one client observe one session (shared stats,
    one set of metric series). *)

val submit : t -> client_id:string -> (Steno.Session.t -> 'a) -> 'a outcome
(** Run a request for [client_id] under admission control.  Blocks
    while a free execution slot exists or the wait queue has room;
    returns [Rejected] without running the function otherwise.

    On a tracing-enabled engine ({!Steno.Config.with_tracing}) each
    submission is one trace root named ["request"], annotated with the
    client, queue wait and outcome; everything the request does —
    prepare/optimize/codegen spans, cache and dedup events, even the
    background tier-promotion compile it may trigger on the domain pool
    — is recorded under that trace's id. *)

type stats = {
  accepted : int;  (** Requests admitted (completed + failed + running). *)
  completed : int;  (** Requests that returned a value. *)
  failed : int;  (** Requests that raised. *)
  rejected : int;  (** Requests shed by admission control. *)
  inflight : int;  (** Currently executing (snapshot). *)
  queued : int;  (** Currently waiting for a slot (snapshot). *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Stop admitting, wake every queued caller with
    [Rejected Shutting_down], and wait for in-flight requests to
    finish.  Idempotent; [submit] after shutdown returns
    [Rejected Shutting_down]. *)
