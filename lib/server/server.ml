type reject_reason =
  | Queue_full
  | Shutting_down

let reject_reason_message = function
  | Queue_full -> "server at capacity (inflight and queue limits reached)"
  | Shutting_down -> "server is shutting down"

type 'a outcome =
  | Done of 'a
  | Rejected of reject_reason
  | Failed of exn

(* All admission state lives behind one mutex; the condition variable
   wakes queued callers when a slot frees (or shutdown begins).  The
   lock is never held while a request executes — only around the small
   counter transitions — so the engine's own concurrency (sharded cache,
   single-flight) is what requests actually contend on. *)
type t = {
  srv_engine : Steno.Engine.t;
  max_inflight : int;
  max_queue : int;
  mu : Mutex.t;
  cv : Condition.t;
  sessions : (string, Steno.Session.t) Hashtbl.t;  (* under [mu] *)
  mutable inflight : int;
  mutable queued : int;
  mutable shut : bool;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
}

let create ?max_inflight ?(max_queue = 64) engine =
  let max_inflight =
    match max_inflight with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  if max_queue < 0 then invalid_arg "Server.create: max_queue < 0";
  (* Register the server families eagerly, so a scrape shows them at
     zero before the first request arrives.  The per-client counter
     series appear as requests do; the zero-valued family pins the
     HELP/TYPE headers. *)
  let m = Steno.Engine.metrics engine in
  ignore
    (Metrics.counter m "steno_server_requests"
       ~help:"Requests submitted to the query server, by final outcome");
  ignore
    (Metrics.histogram m "steno_server_queue_ms"
       ~help:"Time admitted requests spent waiting for an execution slot");
  {
    srv_engine = engine;
    max_inflight;
    max_queue;
    mu = Mutex.create ();
    cv = Condition.create ();
    sessions = Hashtbl.create 16;
    inflight = 0;
    queued = 0;
    shut = false;
    accepted = 0;
    completed = 0;
    failed = 0;
    rejected = 0;
  }

let engine t = t.srv_engine

let session t ~client_id =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.sessions client_id with
      | Some s -> s
      | None ->
        let s = Steno.Session.create t.srv_engine ~client_id in
        Hashtbl.replace t.sessions client_id s;
        s)

let outcome_label = function
  | Done _ -> "ok"
  | Rejected _ -> "rejected"
  | Failed _ -> "failed"

let count_request t ~client_id outcome =
  Metrics.inc
    (Metrics.counter
       (Steno.Engine.metrics t.srv_engine)
       "steno_server_requests"
       ~help:"Requests submitted to the query server, by final outcome"
       ~labels:[ "client", client_id; "outcome", outcome_label outcome ])

let observe_queue_wait t ms =
  Metrics.observe
    (Metrics.histogram
       (Steno.Engine.metrics t.srv_engine)
       "steno_server_queue_ms"
       ~help:"Time admitted requests spent waiting for an execution slot")
    ms

(* Admission: a free slot admits immediately; otherwise the caller joins
   the bounded wait queue, or is shed.  Queued callers re-check on every
   wake — both a freed slot and shutdown broadcast [cv]. *)
let admit t =
  Mutex.protect t.mu (fun () ->
      if t.shut then begin
        t.rejected <- t.rejected + 1;
        Error Shutting_down
      end
      else if t.inflight < t.max_inflight then begin
        t.inflight <- t.inflight + 1;
        t.accepted <- t.accepted + 1;
        Ok ()
      end
      else if t.queued >= t.max_queue then begin
        t.rejected <- t.rejected + 1;
        Error Queue_full
      end
      else begin
        t.queued <- t.queued + 1;
        let rec wait () =
          if t.shut then begin
            t.queued <- t.queued - 1;
            t.rejected <- t.rejected + 1;
            (* [shutdown] drains on [cv] until the queue empties. *)
            Condition.broadcast t.cv;
            Error Shutting_down
          end
          else if t.inflight < t.max_inflight then begin
            t.queued <- t.queued - 1;
            t.inflight <- t.inflight + 1;
            t.accepted <- t.accepted + 1;
            Ok ()
          end
          else begin
            Condition.wait t.cv t.mu;
            wait ()
          end
        in
        wait ()
      end)

let release t ~ok =
  Mutex.protect t.mu (fun () ->
      t.inflight <- t.inflight - 1;
      if ok then t.completed <- t.completed + 1 else t.failed <- t.failed + 1;
      (* Both queued callers and a draining [shutdown] wait on [cv]. *)
      Condition.broadcast t.cv)

let submit t ~client_id f =
  let sess = session t ~client_id in
  (* The request root: one trace per submission (subject to the
     tracer's sampling), covering admission wait, the request body, and
     — via the context handed to the domain pool — any background
     promotion compile this request triggers. *)
  let tracer = Steno.Engine.tracer t.srv_engine in
  Trace.with_trace tracer "request" ~attrs:[ "client", client_id ]
  @@ fun () ->
  let t0 = Telemetry.now_ms () in
  let outcome =
    match admit t with
    | Error reason -> Rejected reason
    | Ok () ->
      let queue_ms = Telemetry.now_ms () -. t0 in
      observe_queue_wait t queue_ms;
      Trace.annotate tracer [ "queue_ms", Printf.sprintf "%.3f" queue_ms ];
      (match f sess with
      | v ->
        release t ~ok:true;
        Done v
      | exception e ->
        release t ~ok:false;
        Failed e)
  in
  count_request t ~client_id outcome;
  Trace.annotate tracer [ "outcome", outcome_label outcome ];
  outcome

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  rejected : int;
  inflight : int;
  queued : int;
}

let stats t =
  Mutex.protect t.mu (fun () ->
      {
        accepted = t.accepted;
        completed = t.completed;
        failed = t.failed;
        rejected = t.rejected;
        inflight = t.inflight;
        queued = t.queued;
      })

let shutdown t =
  Mutex.protect t.mu (fun () ->
      t.shut <- true;
      Condition.broadcast t.cv;
      while t.inflight > 0 || t.queued > 0 do
        Condition.wait t.cv t.mu
      done)
