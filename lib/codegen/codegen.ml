exception Invalid_chain of string

let empty_sequence_prefix = "steno: sequence contains no elements"

let empty_sequence_message = empty_sequence_prefix

type output = {
  source : string;
  table : Expr.Capture_table.t;
  symbols : string;
}

(* Profiling support: when generating under [?probe], the emitted code
   increments one cell of a captured [int array] per operator {e edge} —
   after the Src element binding and after each top-level operator — so a
   profiled run yields exact rows-in/rows-out per operator.  The counter
   array reaches the plugin through an ordinary capture slot, and the
   increments are part of the source text, so profiled and unprofiled
   compilations can never alias in the plugin cache. *)
type probe = {
  probe_rows : int array;  (* one cell per edge, mutated by the plugin *)
  probe_labels : string array;  (* edge labels, Src first *)
}

let probe_of_chain (chain : Quil.chain) =
  (* One edge per top-level operator that passes elements downstream; a
     terminal Agg produces a scalar, not an edge.  Nested chains run
     inside their enclosing operator and are not separate edges. *)
  let labels =
    "Src"
    :: List.filter_map
         (function Quil.Agg _ -> None | op -> Some (Quil.op_symbol op))
         chain.Quil.ops
  in
  {
    probe_rows = Array.make (List.length labels) 0;
    probe_labels = Array.of_list labels;
  }

(* Generation context: a name counter and the capture table that render
   closures register slots into; [probe_var]/[probe_on]/[next_edge] carry
   the profiling state ([probe_on] is cleared while generating nested
   chains, which are not top-level edges). *)
type ctx = {
  mutable counter : int;
  tbl : Expr.Capture_table.t;
  mutable probe_var : string option;
  mutable probe_on : bool;
  mutable next_edge : int;
}

let mark_edge ctx block =
  match ctx.probe_var with
  | Some var when ctx.probe_on ->
    let e = ctx.next_edge in
    ctx.next_edge <- e + 1;
    Block.linef block
      "Stdlib.Array.unsafe_set %s %d (Stdlib.Array.unsafe_get %s %d + 1);"
      var e var e
  | _ -> ()

(* A sink's edge is counted in one step at ω, where the materialized
   array's length is the row count. *)
let mark_edge_len ctx block arr =
  match ctx.probe_var with
  | Some var when ctx.probe_on ->
    let e = ctx.next_edge in
    ctx.next_edge <- e + 1;
    Block.linef block
      "Stdlib.Array.unsafe_set %s %d (Stdlib.Array.unsafe_get %s %d + \
       Stdlib.Array.length %s);"
      var e var e arr
  | _ -> ()

let with_probe_off ctx f =
  let saved = ctx.probe_on in
  ctx.probe_on <- false;
  let r = f () in
  ctx.probe_on <- saved;
  r

let fresh ctx prefix =
  let n = ctx.counter in
  ctx.counter <- n + 1;
  Printf.sprintf "__%s%d" prefix n

(* Exception constructors must be capitalized, so the break exceptions
   cannot share the [__]-prefixed namespace. *)
let fresh_exception ctx =
  let n = ctx.counter in
  ctx.counter <- n + 1;
  Printf.sprintf "Steno_brk%d" n

(* One level of the insertion-point stack (Fig. 9): the loop prelude,
   body and postlude of the innermost loop under construction, plus the
   local exception that breaks out of this loop (used by early-exiting
   operators: Take, First, Any, ...). *)
type frame = {
  alpha : Block.t;
  mu : Block.t;
  omega : Block.t;
  brk : string;
}

let render ctx nenv (r : Quil.render) = r nenv ctx.tbl

(* Whether the loop about to be opened must support breaking out early.
   The scan covers exactly the operators that execute inside this loop's
   frame: it stops at a sink (subsequent operators run in a fresh loop
   over the materialized collection) and does not descend into nested
   chains (those open their own loops). *)
let rec needs_break : Quil.op list -> bool = function
  | [] -> false
  | Quil.Pred_stateful (Quil.Take_n _ | Quil.Take_while_p _) :: _ -> true
  | Quil.Pred_stateful (Quil.Skip_n _ | Quil.Skip_while_p _) :: rest ->
    needs_break rest
  | Quil.Agg a :: _ -> a.Quil.early_exit <> None
  | Quil.Sink _ :: _ -> false
  | ( Quil.Trans _ | Quil.Trans_idx _ | Quil.Pred _ | Quil.Pred_idx _
    | Quil.Trans_nested _ | Quil.Pred_nested _ )
    :: rest ->
    needs_break rest
  | Quil.Nested _ :: rest -> needs_break rest
  | Quil.Hash_join _ :: rest -> needs_break rest

(* Where generation of an operator chain ends up (the PDA state at Ret):
   ITERATING exposes the current element inside the innermost loop body;
   AGGREGATING exposes the reduced value, bound in the loop postlude;
   SINKING exposes the materialized intermediate collection. *)
type final =
  | Final_iter of { elem : string; mu : Block.t }
  | Final_scalar of { var : string }
  | Final_array of { var : string }

(* Open a loop at insertion point [at], returning the new frame and the
   current-element variable: the Src transition. *)
let gen_loop ctx ~at ~breakable nenv (src : Quil.src) =
  let alpha = Block.inline at in
  let elem = fresh ctx "elem" in
  let ix = fresh ctx "ix" in
  let brk = if breakable then fresh_exception ctx else "" in
  let open_loop header bind_elem =
    (* The exception wrapper costs the optimizer (it defeats accumulator
       unboxing across the handler), so it is only emitted for chains
       containing an early-exiting operator. *)
    let loop =
      if breakable then begin
        Block.linef at "let exception %s in" brk;
        Block.line at "(try";
        let loop = Block.indented at in
        Block.linef at "with %s -> ());" brk;
        loop
      end
      else Block.inline at
    in
    Block.line loop header;
    let mu = Block.indented loop in
    Block.line mu bind_elem;
    Block.line loop "done;";
    let omega = Block.inline at in
    { alpha; mu; omega; brk }, elem
  in
  match src with
  | Quil.Src_array { elem_ty; array } ->
    let src_var = fresh ctx "src" in
    Block.linef alpha "let %s : %s array = %s in" src_var elem_ty
      (render ctx nenv array);
    open_loop
      (Printf.sprintf "for %s = 0 to Stdlib.Array.length %s - 1 do" ix
         src_var)
      (Printf.sprintf "let %s = Stdlib.Array.unsafe_get %s %s in" elem
         src_var ix)
  | Quil.Src_range { start; count } ->
    let start_var = fresh ctx "start" in
    let count_var = fresh ctx "count" in
    Block.linef alpha "let %s : int = %s in" start_var (render ctx nenv start);
    Block.linef alpha "let %s : int = %s in" count_var (render ctx nenv count);
    open_loop
      (Printf.sprintf "for %s = 0 to %s - 1 do" ix count_var)
      (Printf.sprintf "let %s = %s + %s in" elem start_var ix)
  | Quil.Src_repeat { value; count } ->
    let value_var = fresh ctx "value" in
    let count_var = fresh ctx "count" in
    Block.linef alpha "let %s = %s in" value_var (render ctx nenv value);
    Block.linef alpha "let %s : int = %s in" count_var (render ctx nenv count);
    open_loop
      (Printf.sprintf "for %s = 1 to %s do" ix count_var)
      (Printf.sprintf "let %s = %s in" elem value_var)

(* A loop over an already-materialized array variable (iterating a sink
   collection, or a flattened inner collection). *)
let gen_array_loop ctx ~at ~breakable var =
  let alpha = Block.inline at in
  let elem = fresh ctx "elem" in
  let ix = fresh ctx "ix" in
  let brk = if breakable then fresh_exception ctx else "" in
  let loop =
    if breakable then begin
      Block.linef at "let exception %s in" brk;
      Block.line at "(try";
      let loop = Block.indented at in
      Block.linef at "with %s -> ());" brk;
      loop
    end
    else Block.inline at
  in
  Block.linef loop "for %s = 0 to Stdlib.Array.length %s - 1 do" ix var;
  let mu = Block.indented loop in
  Block.linef mu "let %s = Stdlib.Array.unsafe_get %s %s in" elem var ix;
  Block.line loop "done;";
  let omega = Block.inline at in
  { alpha; mu; omega; brk }, elem

(* Render a one-parameter inlined lambda applied to the element. *)
let app1 ctx nenv (l : Quil.lam1) elem = l.Quil.body1 (l.Quil.bind1 elem nenv) ctx.tbl

let app2 ctx nenv (l : Quil.lam2) a b = l.Quil.body2 (l.Quil.bind2 a b nenv) ctx.tbl

(* Aggregation (Fig. 7a): declarations at α, update at µ, result bound at
   ω.  Returns the name holding the result. *)
let gen_agg ctx frame nenv elem (agg : Quil.agg) =
  let base = fresh ctx "agg" in
  let acc_vars =
    List.mapi (fun i _ -> Printf.sprintf "%s_%d" base i) agg.Quil.accs
  in
  let acc_exprs = List.map (fun v -> Printf.sprintf "(!%s)" v) acc_vars in
  List.iter2
    (fun var (acc : Quil.acc) ->
      Block.linef frame.alpha "let %s = ref (%s) in" var
        (render ctx nenv acc.Quil.seed))
    acc_vars agg.Quil.accs;
  let needs_flag = agg.Quil.first_element || agg.Quil.require_nonempty in
  let has_var = if needs_flag then fresh ctx "has" else "" in
  if needs_flag then Block.linef frame.alpha "let %s = ref false in" has_var;
  (* Update: compute every new accumulator value from the old ones before
     assigning, so multi-accumulator steps see a consistent snapshot. *)
  let emit_steps block =
    let temps =
      List.map2
        (fun (acc : Quil.acc) _ ->
          let t = fresh ctx "t" in
          t, acc)
        agg.Quil.accs acc_vars
    in
    List.iter
      (fun (t, (acc : Quil.acc)) ->
        Block.linef block "let %s = %s in" t
          (acc.Quil.step ~accs:acc_exprs ~elem nenv ctx.tbl))
      temps;
    List.iter2
      (fun var (t, _) -> Block.linef block "%s := %s;" var t)
      acc_vars temps
  in
  if agg.Quil.first_element then begin
    Block.linef frame.mu "if !%s then begin" has_var;
    let then_b = Block.indented frame.mu in
    emit_steps then_b;
    Block.line frame.mu "end else begin";
    let else_b = Block.indented frame.mu in
    List.iter2
      (fun var (acc : Quil.acc) ->
        match acc.Quil.first with
        | Some first -> Block.linef else_b "%s := %s;" var (first ~elem nenv ctx.tbl)
        | None ->
          Block.linef else_b "%s := %s;" var
            (acc.Quil.step ~accs:acc_exprs ~elem nenv ctx.tbl))
      acc_vars agg.Quil.accs;
    Block.linef else_b "%s := true;" has_var;
    Block.line frame.mu "end;"
  end
  else begin
    emit_steps frame.mu;
    if needs_flag then Block.linef frame.mu "%s := true;" has_var
  end;
  (match agg.Quil.early_exit with
  | Some cond ->
    Block.linef frame.mu "if %s then Stdlib.raise_notrace %s;"
      (cond ~accs:acc_exprs nenv ctx.tbl)
      frame.brk
  | None -> ());
  if agg.Quil.require_nonempty then
    Block.linef frame.omega
      "if not !%s then Stdlib.raise (Stdlib.Failure %S);" has_var
      empty_sequence_message;
  let ret = fresh ctx "ret" in
  Block.linef frame.omega "let %s = %s in" ret
    (agg.Quil.result ~accs:acc_exprs nenv ctx.tbl);
  ret

(* Sink operators (Fig. 7b): accumulate at µ into state declared at α,
   materialize the intermediate collection at ω.  Returns the name of the
   materialized array. *)
let gen_sink ctx frame nenv elem (sink : Quil.sink) =
  let base = fresh ctx "sink" in
  let out = Printf.sprintf "%s_arr" base in
  (match sink with
  | Quil.Group_by_sink { key } | Quil.Group_by_elem_sink { key; elem = _ } ->
    let stored =
      match sink with
      | Quil.Group_by_elem_sink { elem = e; _ } -> app1 ctx nenv e elem
      | Quil.Group_by_sink _ -> elem
      | Quil.Group_by_agg_sink _ | Quil.Group_by_agg_sorted_sink _
      | Quil.Order_by_sink _ | Quil.Distinct_sink | Quil.Reverse_sink
      | Quil.To_array_sink ->
        assert false
    in
    Block.linef frame.alpha "let %s_tbl = Stdlib.Hashtbl.create 64 in" base;
    Block.linef frame.alpha "let %s_order = ref [] in" base;
    let k = fresh ctx "k" in
    Block.linef frame.mu "let %s = %s in" k (app1 ctx nenv key elem);
    Block.linef frame.mu
      "(match Stdlib.Hashtbl.find_opt %s_tbl %s with Some __b -> __b := %s \
       :: !__b | None -> Stdlib.Hashtbl.replace %s_tbl %s (ref [ %s ]); \
       %s_order := %s :: !%s_order);"
      base k stored base k stored base k base;
    Block.linef frame.omega
      "let %s = Stdlib.Array.of_list (Stdlib.List.rev_map (fun __k -> (__k, \
       Stdlib.Array.of_list (Stdlib.List.rev !(Stdlib.Hashtbl.find %s_tbl \
       __k)))) !%s_order) in"
      out base base
  | Quil.Group_by_agg_sink { key; seed; step } ->
    Block.linef frame.alpha "let %s_tbl = Stdlib.Hashtbl.create 64 in" base;
    Block.linef frame.alpha "let %s_order = ref [] in" base;
    let k = fresh ctx "k" in
    Block.linef frame.mu "let %s = %s in" k (app1 ctx nenv key elem);
    Block.linef frame.mu
      "(match Stdlib.Hashtbl.find_opt %s_tbl %s with Some __cell -> __cell \
       := %s | None -> Stdlib.Hashtbl.replace %s_tbl %s (ref (%s)); %s_order \
       := %s :: !%s_order);"
      base k
      (app2 ctx nenv step "(!__cell)" elem)
      base k
      (app2 ctx nenv step (Printf.sprintf "(%s)" (render ctx nenv seed)) elem)
      base k base;
    Block.linef frame.omega
      "let %s = Stdlib.Array.of_list (Stdlib.List.rev_map (fun __k -> (__k, \
       !(Stdlib.Hashtbl.find %s_tbl __k))) !%s_order) in"
      out base base
  | Quil.Group_by_agg_sorted_sink { key; key_default; seed; step } ->
    (* Input is sorted by the key: one sequential pass, one live key and
       one live accumulator; finished groups go straight to the output
       buffer. *)
    Block.linef frame.alpha "let %s_has = ref false in" base;
    Block.linef frame.alpha "let %s_key = ref (%s) in" base key_default;
    Block.linef frame.alpha "let %s_acc = ref (%s) in" base
      (render ctx nenv seed);
    Block.linef frame.alpha "let %s_buf = ref [] in" base;
    let k = fresh ctx "k" in
    Block.linef frame.mu "let %s = %s in" k (app1 ctx nenv key elem);
    Block.linef frame.mu "if not !%s_has then begin %s_has := true; %s_key \
                          := %s; %s_acc := %s end"
      base base base k base
      (app2 ctx nenv step (Printf.sprintf "(%s)" (render ctx nenv seed)) elem);
    Block.linef frame.mu "else if %s = !%s_key then %s_acc := %s" k base base
      (app2 ctx nenv step (Printf.sprintf "(!%s_acc)" base) elem);
    Block.linef frame.mu
      "else begin %s_buf := (!%s_key, !%s_acc) :: !%s_buf; %s_key := %s; \
       %s_acc := %s end;"
      base base base base base k base
      (app2 ctx nenv step (Printf.sprintf "(%s)" (render ctx nenv seed)) elem);
    Block.linef frame.omega
      "if !%s_has then %s_buf := (!%s_key, !%s_acc) :: !%s_buf;" base base
      base base base;
    Block.linef frame.omega
      "let %s = Stdlib.Array.of_list (Stdlib.List.rev !%s_buf) in" out base
  | Quil.Order_by_sink { key; descending } ->
    Block.linef frame.alpha "let %s_buf = ref [] in" base;
    Block.linef frame.mu "%s_buf := %s :: !%s_buf;" base elem base;
    let cmp =
      if descending then "Stdlib.compare __k2 __k1"
      else "Stdlib.compare __k1 __k2"
    in
    Block.linef frame.omega
      "let %s = let __arr = Stdlib.Array.of_list (Stdlib.List.rev !%s_buf) \
       in let __dec = Stdlib.Array.mapi (fun __i __x -> (%s, __i, __x)) \
       __arr in Stdlib.Array.sort (fun (__k1, __i1, _) (__k2, __i2, _) -> \
       let __c = %s in if __c <> 0 then __c else Stdlib.compare __i1 __i2) \
       __dec; Stdlib.Array.map (fun (_, _, __x) -> __x) __dec in"
      out base
      (app1 ctx nenv key "__x")
      cmp
  | Quil.Distinct_sink ->
    Block.linef frame.alpha "let %s_tbl = Stdlib.Hashtbl.create 64 in" base;
    Block.linef frame.alpha "let %s_buf = ref [] in" base;
    Block.linef frame.mu
      "if not (Stdlib.Hashtbl.mem %s_tbl %s) then begin \
       Stdlib.Hashtbl.replace %s_tbl %s (); %s_buf := %s :: !%s_buf end;"
      base elem base elem base elem base;
    Block.linef frame.omega
      "let %s = Stdlib.Array.of_list (Stdlib.List.rev !%s_buf) in" out base
  | Quil.Reverse_sink ->
    Block.linef frame.alpha "let %s_buf = ref [] in" base;
    Block.linef frame.mu "%s_buf := %s :: !%s_buf;" base elem base;
    Block.linef frame.omega "let %s = Stdlib.Array.of_list !%s_buf in" out
      base
  | Quil.To_array_sink ->
    Block.linef frame.alpha "let %s_buf = ref [] in" base;
    Block.linef frame.mu "%s_buf := %s :: !%s_buf;" base elem base;
    Block.linef frame.omega
      "let %s = Stdlib.Array.of_list (Stdlib.List.rev !%s_buf) in" out base);
  out

(* The operator-chain transitions of the automaton. *)
let rec gen_ops ctx frame nenv elem (ops : Quil.op list) : final =
  match ops with
  | [] -> Final_iter { elem; mu = frame.mu }
  | Quil.Agg agg :: rest ->
    if rest <> [] then
      raise (Invalid_chain "Agg must be the last operator before Ret");
    let var = gen_agg ctx frame nenv elem agg in
    Final_scalar { var }
  | Quil.Trans lam :: rest ->
    let elem' = fresh ctx "elem" in
    Block.linef frame.mu "let %s = %s in" elem' (app1 ctx nenv lam elem);
    mark_edge ctx frame.mu;
    gen_ops ctx frame nenv elem' rest
  | Quil.Trans_idx lam2 :: rest ->
    (* Indexed transform: a position counter in the loop prelude. *)
    let idx = fresh ctx "pos" in
    Block.linef frame.alpha "let %s = ref (-1) in" idx;
    Block.linef frame.mu "Stdlib.incr %s;" idx;
    let elem' = fresh ctx "elem" in
    Block.linef frame.mu "let %s = %s in" elem'
      (app2 ctx nenv lam2 (Printf.sprintf "(!%s)" idx) elem);
    mark_edge ctx frame.mu;
    gen_ops ctx frame nenv elem' rest
  | Quil.Pred lam :: rest ->
    (* Fig. 6b: the paper emits [if (!p) continue]; structurally, the rest
       of the loop body moves inside the conditional instead. *)
    Block.linef frame.mu "if %s then begin" (app1 ctx nenv lam elem);
    let body = Block.indented frame.mu in
    Block.line frame.mu "end;";
    mark_edge ctx body;
    gen_ops ctx { frame with mu = body } nenv elem rest
  | Quil.Pred_idx lam2 :: rest ->
    let idx = fresh ctx "pos" in
    Block.linef frame.alpha "let %s = ref (-1) in" idx;
    Block.linef frame.mu "Stdlib.incr %s;" idx;
    Block.linef frame.mu "if %s then begin"
      (app2 ctx nenv lam2 (Printf.sprintf "(!%s)" idx) elem);
    let body = Block.indented frame.mu in
    Block.line frame.mu "end;";
    mark_edge ctx body;
    gen_ops ctx { frame with mu = body } nenv elem rest
  | Quil.Pred_stateful sp :: rest -> (
    match sp with
    | Quil.Take_n n ->
      let c = fresh ctx "taken" in
      let n_var = fresh ctx "take_n" in
      Block.linef frame.alpha "let %s : int = %s in" n_var (render ctx nenv n);
      Block.linef frame.alpha "let %s = ref 0 in" c;
      Block.linef frame.mu
        "if !%s >= %s then Stdlib.raise_notrace %s else Stdlib.incr %s;" c
        n_var frame.brk c;
      mark_edge ctx frame.mu;
      gen_ops ctx frame nenv elem rest
    | Quil.Skip_n n ->
      let c = fresh ctx "skipped" in
      let n_var = fresh ctx "skip_n" in
      Block.linef frame.alpha "let %s : int = %s in" n_var (render ctx nenv n);
      Block.linef frame.alpha "let %s = ref 0 in" c;
      Block.linef frame.mu "if !%s < %s then Stdlib.incr %s else begin" c
        n_var c;
      let body = Block.indented frame.mu in
      Block.line frame.mu "end;";
      mark_edge ctx body;
      gen_ops ctx { frame with mu = body } nenv elem rest
    | Quil.Take_while_p p ->
      Block.linef frame.mu "if not %s then Stdlib.raise_notrace %s;"
        (app1 ctx nenv p elem) frame.brk;
      mark_edge ctx frame.mu;
      gen_ops ctx frame nenv elem rest
    | Quil.Skip_while_p p ->
      let skipping = fresh ctx "skipping" in
      Block.linef frame.alpha "let %s = ref true in" skipping;
      Block.linef frame.mu "if !%s && %s then () else begin %s := false;"
        skipping (app1 ctx nenv p elem) skipping;
      let body = Block.indented frame.mu in
      Block.line frame.mu "end;";
      mark_edge ctx body;
      gen_ops ctx { frame with mu = body } nenv elem rest)
  | Quil.Sink sink :: rest -> (
    let arr = gen_sink ctx frame nenv elem sink in
    mark_edge_len ctx frame.omega arr;
    match rest with
    | [] -> Final_array { var = arr }
    | _ :: _ ->
      (* SINKING state: open a new loop over the materialized collection
         at ω and reset the insertion pointers relative to it. *)
      let frame', elem' =
        gen_array_loop ctx ~at:frame.omega ~breakable:(needs_break rest) arr
      in
      gen_ops ctx frame' nenv elem' rest)
  | Quil.Trans_nested ns :: rest ->
    let var =
      with_probe_off ctx (fun () -> gen_nested_scalar ctx frame nenv elem ns)
    in
    mark_edge ctx frame.mu;
    gen_ops ctx frame nenv var rest
  | Quil.Pred_nested ns :: rest ->
    let var =
      with_probe_off ctx (fun () -> gen_nested_scalar ctx frame nenv elem ns)
    in
    Block.linef frame.mu "if %s then begin" var;
    let body = Block.indented frame.mu in
    Block.line frame.mu "end;";
    mark_edge ctx body;
    gen_ops ctx { frame with mu = body } nenv elem rest
  | Quil.Hash_join j :: rest ->
    (* Build phase (once, in the loop prelude): index the inner chain's
       elements by key, preserving inner order within each bucket. *)
    let tbl = fresh ctx "jtbl" in
    Block.linef frame.alpha "let %s = Stdlib.Hashtbl.create 64 in" tbl;
    let build = Block.inline frame.alpha in
    let build_frame, build_elem =
      gen_loop ctx ~at:build
        ~breakable:(needs_break j.Quil.join_inner.Quil.ops)
        nenv j.Quil.join_inner.Quil.src
    in
    let add_to_table mu ielem =
      let k = fresh ctx "k" in
      Block.linef mu "let %s = %s in" k
        (app1 ctx nenv j.Quil.join_inner_key ielem);
      Block.linef mu
        "(match Stdlib.Hashtbl.find_opt %s %s with Some __b -> __b := %s :: \
         !__b | None -> Stdlib.Hashtbl.replace %s %s (ref [ %s ]));"
        tbl k ielem tbl k ielem
    in
    (* The build side is a nested chain, not a top-level edge. *)
    (match
       with_probe_off ctx (fun () ->
           gen_ops ctx build_frame nenv build_elem j.Quil.join_inner.Quil.ops)
     with
    | Final_iter { elem = ie; mu = im } -> add_to_table im ie
    | Final_array { var } ->
      let f, e = gen_array_loop ctx ~at:build_frame.omega ~breakable:false var in
      add_to_table f.mu e
    | Final_scalar _ ->
      raise (Invalid_chain "hash-join build side returned a scalar"));
    Block.linef frame.alpha
      "Stdlib.Hashtbl.filter_map_inplace (fun _ __b -> __b := \
       Stdlib.List.rev !__b; Some __b) %s;"
      tbl;
    (* Probe phase: per outer element, iterate the matching bucket. *)
    let bucket = fresh ctx "bucket" in
    Block.linef frame.mu
      "let %s = match Stdlib.Hashtbl.find_opt %s %s with Some __b -> !__b | \
       None -> [] in"
      bucket tbl
      (app1 ctx nenv j.Quil.join_outer_key elem);
    let probe_elem = fresh ctx "elem" in
    Block.linef frame.mu "Stdlib.List.iter (fun %s ->" probe_elem;
    let body = Block.indented frame.mu in
    Block.linef frame.mu ") %s;" bucket;
    let joined = fresh ctx "elem" in
    Block.linef body "let %s = %s in" joined
      (app2 ctx nenv j.Quil.join_result elem probe_elem);
    mark_edge ctx body;
    gen_ops ctx { frame with mu = body } nenv joined rest
  | Quil.Nested n :: rest -> (
    (* SelectMany (Fig. 11): generate the inner loop inside the current
       loop body; the continuation of the outer chain consumes elements
       inside the inner loop body, while declarations and returns keep
       using the outer α and ω. *)
    let nenv' = n.Quil.bind_outer elem nenv in
    let inner_frame, inner_elem =
      gen_loop ctx ~at:frame.mu
        ~breakable:(needs_break n.Quil.inner.Quil.ops)
        nenv' n.Quil.inner.Quil.src
    in
    (* The inner chain's operators are not top-level edges; the Nested
       edge itself counts flattened elements at the continuation point. *)
    let inner_final =
      with_probe_off ctx (fun () ->
          gen_ops ctx inner_frame nenv' inner_elem n.Quil.inner.Quil.ops)
    in
    let continue_at mu inner_elem =
      let elem', mu' =
        match n.Quil.result2 with
        | None -> inner_elem, mu
        | Some res ->
          let e = fresh ctx "elem" in
          Block.linef mu "let %s = %s in" e (app2 ctx nenv res elem inner_elem);
          e, mu
      in
      mark_edge ctx mu';
      gen_ops ctx { frame with mu = mu' } nenv elem' rest
    in
    match inner_final with
    | Final_iter { elem = ie; mu = im } -> continue_at im ie
    | Final_array { var } ->
      (* The inner chain ended in a sink: its collection materializes once
         per outer element (in the inner ω, i.e. inside the outer µ); loop
         over it there. *)
      let f, e = gen_array_loop ctx ~at:inner_frame.omega ~breakable:false var in
      ignore f.alpha;
      continue_at f.mu e
    | Final_scalar _ ->
      raise (Invalid_chain "SelectMany sub-query returned a scalar"))

(* A nested scalar sub-query (Trans/Pred position, Fig. 10): the whole
   inner loop lives in the outer loop body, and the aggregate is bound in
   the inner postlude, which shares the outer body's scope. *)
and gen_nested_scalar ctx frame nenv elem (ns : Quil.nested_scalar) =
  let nenv' = ns.Quil.bind_outer_s elem nenv in
  let inner_frame, inner_elem =
    gen_loop ctx ~at:frame.mu
      ~breakable:(needs_break ns.Quil.inner_s.Quil.ops)
      nenv' ns.Quil.inner_s.Quil.src
  in
  match gen_ops ctx inner_frame nenv' inner_elem ns.Quil.inner_s.Quil.ops with
  | Final_scalar { var } -> var
  | Final_iter _ | Final_array _ ->
    raise (Invalid_chain "nested Trans/Pred sub-query must end in Agg")

let generate ?probe chain =
  (match Quil.validate chain with
  | Ok () -> ()
  | Error msg -> raise (Invalid_chain msg));
  let ctx =
    {
      counter = 0;
      tbl = Expr.Capture_table.create ();
      probe_var = None;
      probe_on = true;
      next_edge = 0;
    }
  in
  (match probe with
  | None -> ()
  | Some pr ->
    let slot =
      Expr.Capture_table.register ctx.tbl Ty.(Array Int) pr.probe_rows
    in
    ctx.probe_var <- Some (Expr.Capture_table.slot_name slot));
  let top = Block.create () in
  let captures_block = Block.inline top in
  let body = Block.inline top in
  let nenv = Expr.name_env_empty in
  let frame, elem =
    gen_loop ctx ~at:body
      ~breakable:(needs_break chain.Quil.ops)
      nenv chain.Quil.src
  in
  mark_edge ctx frame.mu;
  (match gen_ops ctx frame nenv elem chain.Quil.ops with
  | Final_scalar { var } ->
    Block.linef body "__result := Stdlib.Obj.repr %s;" var
  | Final_array { var } ->
    Block.linef body "__result := Stdlib.Obj.repr %s;" var
  | Final_iter { elem; mu } ->
    (* Collection result: materialize into an array (footnote 3). *)
    let buf = fresh ctx "out" in
    Block.linef frame.alpha "let %s = ref [] in" buf;
    Block.linef mu "%s := %s :: !%s;" buf elem buf;
    Block.linef body
      "__result := Stdlib.Obj.repr (Stdlib.Array.of_list (Stdlib.List.rev \
       !%s));"
      buf);
  (* Capture slots are known only now that every render has run. *)
  Array.iteri
    (fun i entry ->
      Block.line captures_block (Expr.Capture_table.slot_binding i entry))
    (Expr.Capture_table.entries ctx.tbl);
  let source =
    String.concat "\n"
      [
        "(* Generated by Steno - do not edit. *)";
        "[@@@ocaml.warning \"-a\"]";
        "";
        "exception Steno_result of Stdlib.Obj.t";
        "";
        "let __query (__env : Stdlib.Obj.t array) : Stdlib.Obj.t =";
        "  let _ = __env in";
        "  let __result = Stdlib.ref (Stdlib.Obj.repr ()) in";
        Block.render ~indent:1 top;
        "  !__result";
        "";
        "let () = Stdlib.raise (Steno_result (Stdlib.Obj.repr __query))";
        "";
      ]
  in
  { source; table = ctx.tbl; symbols = Quil.symbol_string chain }

let body_only output =
  (* Everything between the function header and the result read. *)
  let lines = String.split_on_char '\n' output.source in
  let rec drop_to_header = function
    | [] -> []
    | l :: rest ->
      if String.length l >= 11 && String.sub l 0 11 = "let __query" then rest
      else drop_to_header rest
  in
  let rec take_body acc = function
    | [] -> List.rev acc
    | l :: _ when String.trim l = "!__result" -> List.rev acc
    | l :: rest -> take_body (l :: acc) rest
  in
  String.concat "\n" (take_body [] (drop_to_header lines))
