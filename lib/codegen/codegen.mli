(** The Steno code generator: a deterministic pushdown automaton over QUIL
    that emits type-specialized, inlined, loop-based imperative code
    (sections 4 and 5 of the paper).

    Each QUIL symbol drives one transition:
    - [Src] opens a loop and pushes a fresh (α, µ, ω) insertion-point
      triple (Fig. 5 / Fig. 9);
    - [Trans]/[Pred] insert element-wise code at µ (Fig. 6);
    - [Agg]/[Sink] declare reduction state at α and update it at µ
      (Fig. 7);
    - a [Sink] followed by more operators materializes the intermediate
      collection and opens a new loop over it at ω (the SINKING state);
    - nested queries recurse, and a nested collection [Ret] splices the
      outer continuation into the nested loop body (Fig. 11), while a
      nested scalar [Ret] binds the aggregate into the nested postlude
      (Fig. 10);
    - the final [Ret] stores the query result (Fig. 8) — a collection
      result is materialized into an array, per footnote 3 of the paper.

    The emitted program is a self-contained OCaml module referencing only
    [Stdlib]:
    {v
exception Steno_result of Stdlib.Obj.t
let __query (__env : Stdlib.Obj.t array) : Stdlib.Obj.t = ...
let () = Stdlib.raise (Steno_result (Stdlib.Obj.repr __query))
    v}
    Captured values arrive through [__env] (section 3.3); an empty-input
    seedless aggregate raises [Failure empty_sequence_message]. *)

exception Invalid_chain of string
(** The chain does not satisfy the QUIL grammar (Fig. 4). *)

type output = {
  source : string;  (** Complete OCaml source of the plugin module. *)
  table : Expr.Capture_table.t;
      (** Capture slots registered while printing, in slot order; use
          {!Expr.Capture_table.to_env} to build the runtime argument. *)
  symbols : string;  (** The QUIL sentence, for diagnostics. *)
}

type probe = {
  probe_rows : int array;
      (** One cell per operator edge, incremented by the generated code;
          registered as a capture slot so re-preparations of a cached
          plugin can bind a fresh array. *)
  probe_labels : string array;
      (** Label of each edge, parallel to [probe_rows]: ["Src"] then the
          {!Quil.op_symbol} of every top-level non-[Agg] operator. *)
}

val probe_of_chain : Quil.chain -> probe
(** Fresh, zeroed probe sized for [chain]'s top-level operator edges.
    Edge [k] counts the rows {e leaving} the [k]-th probed point: rows
    into operator [k] = rows out of edge [k-1].  A terminal [Agg]
    produces a scalar, not an edge; nested sub-chains are not probed
    (their cost lands in the enclosing operator's edge). *)

val generate : ?probe:probe -> Quil.chain -> output
(** With [?probe], the emitted loops additionally increment the probe's
    row cells at each operator edge — the profiled source therefore
    differs textually from the unprofiled one and cannot alias it in a
    plugin cache. *)

val empty_sequence_message : string
(** Payload of the [Failure] raised by generated code when a
    [require_nonempty] aggregate sees no elements. *)

val empty_sequence_prefix : string
(** Stable prefix of {!empty_sequence_message}.  Hosts mapping the
    generated code's failure back to [Iterator.No_such_element] must
    match on this prefix, not the whole message: later codegen versions
    may append operator detail after it. *)

val body_only : output -> string
(** The generated query function body without the module wrapper, for
    display and tests. *)
