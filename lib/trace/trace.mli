(** Request-scoped tracing that survives domain hops.

    {!Telemetry} spans nest via a per-domain stack, so one logical
    request that crosses domains — [Server.submit] → single-flight
    compile leader → [Domain_pool.async] tier promotion — loses its
    identity.  A {!ctx} is that identity made explicit: {!with_trace}
    creates it at the request root, installs it in domain-local storage,
    and {!with_ctx} re-roots it on any worker domain, so every span
    recorded while it is installed lands in the same per-trace
    accumulator regardless of where it ran.  A trace is thereby shredded
    into flat per-stage records (name, start, duration, domain, attrs);
    ordering and nesting are reconstructed from timestamps, never from
    stack shape — which is what lets a background compile report into
    the trace of the request that triggered it, even after that
    request's root span has completed.

    Completed traces land in a fixed-size lock-sharded ring buffer with
    head-drop overflow accounting ([steno_trace_dropped_total]);
    requests slower than a configurable threshold additionally land in a
    second, smaller slow-query ring.  Trace ids are random-free: an
    epoch string (pid + start second) plus an atomic sequence number,
    which also drives deterministic 1-in-k sampling. *)

type kind =
  | Interval  (** a timed stage *)
  | Instant  (** a point event, e.g. a cache hit *)

type span = {
  sp_name : string;
  sp_kind : kind;
  sp_start_ms : float;  (** {!Telemetry.now_ms} monotonic timestamp *)
  sp_duration_ms : float;  (** [0.] for instants *)
  sp_domain : int;  (** domain the span was recorded on *)
  sp_attrs : (string * string) list;
}

type ctx
(** A live trace: the mutable accumulator spans are recorded into.
    Capture it with {!current} before handing work to another domain,
    then re-install it there with {!with_ctx}. *)

type trace = ctx
(** A trace read back from a ring.  The same value — rings hold the
    accumulators themselves, so spans recorded after ring insertion
    (late background work) are still visible. *)

type t
(** A tracer: sampling policy, the trace and slow-query rings, and their
    overflow counters. *)

val disabled : t
(** Records nothing; every operation is a cheap no-op. *)

val create :
  ?sample:float ->
  ?ring:int ->
  ?slow_ms:float ->
  ?max_spans:int ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** [create ()] is an always-on tracer with a 256-trace ring and no slow
    log.  [sample] is the fraction of root requests traced (default
    [1.0]; realised as deterministic 1-in-[round (1/sample)] on the root
    sequence counter, no randomness).  [ring] bounds retained traces;
    overflow head-drops the oldest and bumps [steno_trace_dropped_total]
    in [metrics] (default {!Metrics.default}).  [slow_ms] enables the
    slow-query ring (capacity [max 16 (ring/4)]) for requests at or over
    the threshold.  [max_spans] caps spans retained per trace (excess is
    counted, not stored). *)

val enabled : t -> bool

(** {1 Context propagation} *)

val current : unit -> ctx option
(** The trace installed on the calling domain, if any. *)

val ctx_id : ctx -> string

val with_ctx : ctx option -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] installed on the calling
    domain, restoring the previous context afterwards.  This is the
    cross-domain hop: capture {!current} where work is scheduled, pass
    it to the worker, wrap the work in [with_ctx]. *)

val with_trace :
  t -> string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** [with_trace t name f] — the request root.  Subject to sampling,
    creates a fresh trace, installs it for the extent of [f], records
    [name] as the root span, and on completion pushes the trace to the
    ring (and the slow ring if over threshold).  If a trace is already
    installed, degrades to {!with_span} — nested roots do not fork a
    second identity.  Exceptions are recorded as an ["error"] attribute
    and re-raised. *)

(** {1 Recording}

    All recording is a no-op unless the tracer is enabled {e and} a
    context is installed on the calling domain. *)

val with_span :
  t -> string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a

val record :
  t ->
  string ->
  ?attrs:(string * string) list ->
  start_ms:float ->
  duration_ms:float ->
  unit ->
  unit
(** An already-measured interval. *)

val instant : t -> string -> ?attrs:(string * string) list -> unit -> unit

val annotate : t -> (string * string) list -> unit
(** Attach attributes to the current trace itself (shown on the root
    span in exports): plan text, backend/tier used, cache outcomes. *)

val telemetry_sink : t -> Telemetry.sink
(** A sink forwarding every telemetry span into the active trace and
    every counter event as an {!Instant} — tee it onto an engine's
    telemetry so existing pipeline instrumentation (prepare, optimize,
    codegen, compile, dynlink, run, cache/pcache/dedup counts) flows
    into traces with no second annotation. *)

(** {1 Reading} *)

val traces : t -> trace list
(** Ring contents, oldest first. *)

val slow : t -> trace list

val dropped : t -> int
(** Total head-dropped entries over both rings. *)

val id : trace -> string
val root : trace -> string
val start_ms : trace -> float
val duration_ms : trace -> float
(** [0.] while the root is still open. *)

val complete : trace -> bool
val attrs : trace -> (string * string) list

val spans : trace -> span list
(** In completion order. *)

val truncated : trace -> int
(** Spans refused past [max_spans]. *)

val find_span : trace -> string -> span option

(** {1 Export} *)

val export_chrome : t -> string
(** The trace ring as Chrome [trace_event] JSON (object form), loadable
    in chrome://tracing and Perfetto.  One process per trace
    (pid = trace sequence, named [trace <id> <root>]); spans are
    complete events on the domain they ran on, so cross-domain work
    appears on its own track and nesting is reconstructed from time
    containment. *)

val export_chrome_traces : trace list -> string
(** Export an explicit trace list (e.g. {!slow}). *)

val slow_report : t -> string
(** The slow-query ring as human-readable text, worst first: one header
    line per trace (id, root, duration, request attributes) and one line
    per span (offset, name, duration, domain, attrs). *)
