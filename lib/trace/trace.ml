(* Request-scoped tracing: the identity layer telemetry lacks.

   Telemetry spans nest via a per-domain stack, so a request that hops
   domains (Server.submit -> single-flight compile leader ->
   Domain_pool.async tier promotion) loses its identity.  A trace
   context is an explicit value: the root creates it, every span
   recorded while it is installed (on any domain) lands in the same
   per-trace accumulator, and [with_ctx] re-roots it on a worker.  One
   logical request is thereby shredded into flat per-stage records —
   ordering and nesting are reconstructed from timestamps and domain
   ids, never from stack shape. *)

let now_ms = Telemetry.now_ms

type kind =
  | Interval
  | Instant

type span = {
  sp_name : string;
  sp_kind : kind;
  sp_start_ms : float;
  sp_duration_ms : float;  (* 0 for instants *)
  sp_domain : int;  (* the domain the span was recorded on *)
  sp_attrs : (string * string) list;
}

(* The per-trace accumulator.  Mutable under its own mutex: spans arrive
   from any domain holding the context, including after the root span
   has completed (a background tier-promotion compile reports into the
   trace that triggered it). *)
type data = {
  d_id : string;
  d_seq : int;
  d_root : string;
  d_start_ms : float;
  d_mu : Mutex.t;
  mutable d_attrs : (string * string) list;
  mutable d_spans : span list;  (* reverse completion order *)
  mutable d_nspans : int;
  mutable d_truncated : int;  (* spans refused past the per-trace cap *)
  mutable d_done : bool;
  mutable d_duration_ms : float;  (* of the root span; 0 while open *)
}

type ctx = data

type trace = data

(* The installed context, per domain.  [None] means spans recorded here
   go nowhere — tracing costs one DLS read when no request is active. *)
let current_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key

let ctx_id (d : ctx) = d.d_id

let with_ctx ctx f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* {2 Lock-sharded trace ring}

   A fixed-size buffer of completed traces.  Shards are selected by
   trace sequence number, so concurrent completions rarely contend on
   one lock; within a shard the buffer is circular and a push over a
   full shard head-drops the oldest entry, counting the drop. *)

type shard = {
  s_mu : Mutex.t;
  s_buf : data option array;
  mutable s_next : int;
  mutable s_dropped : int;
}

type ring = { r_shards : shard array }

let ring_create ~capacity =
  let capacity = max 1 capacity in
  let nshards = if capacity >= 32 then 8 else 1 in
  let per_shard = max 1 ((capacity + nshards - 1) / nshards) in
  {
    r_shards =
      Array.init nshards (fun _ ->
          {
            s_mu = Mutex.create ();
            s_buf = Array.make per_shard None;
            s_next = 0;
            s_dropped = 0;
          });
  }

let ring_push ring ~seq ~on_drop d =
  let sh = ring.r_shards.(seq mod Array.length ring.r_shards) in
  Mutex.protect sh.s_mu (fun () ->
      let slot = sh.s_next mod Array.length sh.s_buf in
      (match sh.s_buf.(slot) with
      | Some _ ->
        sh.s_dropped <- sh.s_dropped + 1;
        on_drop ()
      | None -> ());
      sh.s_buf.(slot) <- Some d;
      sh.s_next <- sh.s_next + 1)

let ring_snapshot ring =
  let all =
    Array.to_list ring.r_shards
    |> List.concat_map (fun sh ->
           Mutex.protect sh.s_mu (fun () ->
               Array.to_list sh.s_buf |> List.filter_map Fun.id))
  in
  List.sort (fun a b -> compare (a.d_start_ms, a.d_seq) (b.d_start_ms, b.d_seq)) all

let ring_dropped ring =
  Array.fold_left
    (fun acc sh -> acc + Mutex.protect sh.s_mu (fun () -> sh.s_dropped))
    0 ring.r_shards

(* {2 Tracers} *)

type t = {
  t_enabled : bool;
  t_every : int;  (* record 1 trace in [t_every]; 0 records none *)
  t_slow_ms : float option;
  t_max_spans : int;
  t_epoch : string;  (* pid + wall-clock second: ids survive restarts *)
  t_seq : int Atomic.t;
  t_ring : ring;
  t_slow : ring;
  t_dropped : Metrics.counter;
  t_slow_dropped : Metrics.counter;
  t_completed : Metrics.counter;
  t_slow_captured : Metrics.counter;
}

let dropped_counter m ring_label =
  Metrics.counter m "steno_trace_dropped"
    ~help:"Completed traces head-dropped from a full trace ring"
    ~labels:[ "ring", ring_label ]

let disabled =
  let m = Metrics.create () in
  {
    t_enabled = false;
    t_every = 1;
    t_slow_ms = None;
    t_max_spans = 0;
    t_epoch = "off";
    t_seq = Atomic.make 0;
    t_ring = ring_create ~capacity:1;
    t_slow = ring_create ~capacity:1;
    t_dropped = dropped_counter m "trace";
    t_slow_dropped = dropped_counter m "slow";
    t_completed = Metrics.counter m "steno_traces";
    t_slow_captured = Metrics.counter m "steno_slow_queries";
  }

let enabled t = t.t_enabled

let create ?(sample = 1.0) ?(ring = 256) ?slow_ms ?(max_spans = 4096) ?metrics
    () =
  let m = match metrics with Some m -> m | None -> Metrics.default () in
  let every =
    (* Random-free rate sampling: 1 trace in [round (1/sample)].  The
       decision is the root sequence counter, so it is deterministic and
       costs no RNG state. *)
    if sample >= 1.0 then 1
    else if sample <= 0.0 then 0 (* disabled: not even the first request *)
    else max 1 (int_of_float (Float.round (1.0 /. sample)))
  in
  {
    t_enabled = true;
    t_every = every;
    t_slow_ms = slow_ms;
    t_max_spans = max 1 max_spans;
    t_epoch =
      Printf.sprintf "%x-%x" (Unix.getpid ())
        (int_of_float (Unix.gettimeofday ()) land 0xffffff);
    t_seq = Atomic.make 0;
    t_ring = ring_create ~capacity:ring;
    t_slow = ring_create ~capacity:(max 16 (ring / 4));
    t_dropped = dropped_counter m "trace";
    t_slow_dropped = dropped_counter m "slow";
    t_completed =
      Metrics.counter m "steno_traces" ~help:"Completed (sampled) traces";
    t_slow_captured =
      Metrics.counter m "steno_slow_queries"
        ~help:"Requests captured by the slow-query ring";
  }

let active t = t.t_enabled && current () <> None

(* {2 Recording} *)

let push_span t (d : data) sp =
  Mutex.protect d.d_mu (fun () ->
      if d.d_nspans >= t.t_max_spans then d.d_truncated <- d.d_truncated + 1
      else begin
        d.d_spans <- sp :: d.d_spans;
        d.d_nspans <- d.d_nspans + 1
      end)

let record t name ?(attrs = []) ~start_ms ~duration_ms () =
  if t.t_enabled then
    match current () with
    | None -> ()
    | Some d ->
      push_span t d
        {
          sp_name = name;
          sp_kind = Interval;
          sp_start_ms = start_ms;
          sp_duration_ms = duration_ms;
          sp_domain = (Domain.self () :> int);
          sp_attrs = attrs;
        }

let instant t name ?(attrs = []) () =
  if t.t_enabled then
    match current () with
    | None -> ()
    | Some d ->
      push_span t d
        {
          sp_name = name;
          sp_kind = Instant;
          sp_start_ms = now_ms ();
          sp_duration_ms = 0.0;
          sp_domain = (Domain.self () :> int);
          sp_attrs = attrs;
        }

let annotate t attrs =
  if t.t_enabled && attrs <> [] then
    match current () with
    | None -> ()
    | Some d ->
      Mutex.protect d.d_mu (fun () ->
          (* Re-annotation replaces, never accumulates: a hot loop that
             annotates the same key every run (e.g. [tier]) must not grow
             the trace unboundedly, so duplicates are dropped at
             insertion — [d_attrs] stays bounded by the number of
             distinct keys. *)
          let changed =
            List.filter
              (fun (k, v) -> List.assoc_opt k d.d_attrs <> Some v)
              attrs
          in
          if changed <> [] then
            d.d_attrs <-
              changed
              @ List.filter
                  (fun (k, _) -> not (List.mem_assoc k changed))
                  d.d_attrs)

let with_span t name ?(attrs = []) f =
  if not (active t) then f ()
  else begin
    let start_ms = now_ms () in
    match f () with
    | v ->
      record t name ~attrs ~start_ms
        ~duration_ms:(Telemetry.duration_since start_ms) ();
      v
    | exception e ->
      record t name
        ~attrs:(("error", Printexc.to_string e) :: attrs)
        ~start_ms
        ~duration_ms:(Telemetry.duration_since start_ms) ();
      raise e
  end

let with_trace t name ?(attrs = []) f =
  if not t.t_enabled then f ()
  else if current () <> None then
    (* Already inside a trace (e.g. a nested submit): record a span, do
       not fork a second identity. *)
    with_span t name ~attrs f
  else begin
    let n = Atomic.fetch_and_add t.t_seq 1 in
    if t.t_every <= 0 || n mod t.t_every <> 0 then f ()
    else begin
      let d =
        {
          d_id = Printf.sprintf "%s-%d" t.t_epoch n;
          d_seq = n;
          d_root = name;
          d_start_ms = now_ms ();
          d_mu = Mutex.create ();
          d_attrs = attrs;
          d_spans = [];
          d_nspans = 0;
          d_truncated = 0;
          d_done = false;
          d_duration_ms = 0.0;
        }
      in
      let finish extra =
        let duration_ms = Telemetry.duration_since d.d_start_ms in
        Mutex.protect d.d_mu (fun () ->
            d.d_done <- true;
            d.d_duration_ms <- duration_ms;
            if extra <> [] then d.d_attrs <- extra @ d.d_attrs);
        push_span t d
          {
            sp_name = name;
            sp_kind = Interval;
            sp_start_ms = d.d_start_ms;
            sp_duration_ms = duration_ms;
            sp_domain = (Domain.self () :> int);
            sp_attrs = [];
          };
        (* Shard by the sampled-trace index, not the raw sequence:
           sampled seqs are exactly the multiples of [t_every], which
           would alias onto a subset of the power-of-two shard count
           (down to one shard at [t_every = 8]). *)
        let shard_seq = n / t.t_every in
        ring_push t.t_ring ~seq:shard_seq
          ~on_drop:(fun () -> Metrics.inc t.t_dropped)
          d;
        Metrics.inc t.t_completed;
        match t.t_slow_ms with
        | Some threshold when duration_ms >= threshold ->
          ring_push t.t_slow ~seq:shard_seq
            ~on_drop:(fun () -> Metrics.inc t.t_slow_dropped)
            d;
          Metrics.inc t.t_slow_captured
        | _ -> ()
      in
      with_ctx (Some d) (fun () ->
          match f () with
          | v ->
            finish [];
            v
          | exception e ->
            finish [ "error", Printexc.to_string e ];
            raise e)
    end
  end

(* {2 Telemetry bridge}

   Every span the pipeline already reports (prepare, optimize, codegen,
   compile, dynlink, run, ...) is forwarded into the active trace, and
   every counter event becomes an instant — so the engine's existing
   instrumentation points need no second annotation. *)

let telemetry_sink t =
  if not t.t_enabled then Telemetry.null
  else
    Telemetry.make
      ~on_span:(fun (s : Telemetry.span) ->
        record t s.Telemetry.name ~attrs:s.Telemetry.attrs
          ~start_ms:s.Telemetry.start_ms ~duration_ms:s.Telemetry.duration_ms
          ())
      ~on_count:(fun name n ->
        instant t name ~attrs:[ "n", string_of_int n ] ())
      ()

(* {2 Reading} *)

let traces t = ring_snapshot t.t_ring

let slow t = ring_snapshot t.t_slow

let dropped t = ring_dropped t.t_ring + ring_dropped t.t_slow

let id (d : trace) = d.d_id

let root (d : trace) = d.d_root

let start_ms (d : trace) = d.d_start_ms

let duration_ms (d : trace) = Mutex.protect d.d_mu (fun () -> d.d_duration_ms)

let complete (d : trace) = Mutex.protect d.d_mu (fun () -> d.d_done)

let attrs (d : trace) =
  (* [d_attrs] is newest-first; keep the newest value per key
     (re-annotation wins, e.g. [tier] updated after a promotion), then
     restore chronological order. *)
  let newest_first = Mutex.protect d.d_mu (fun () -> d.d_attrs) in
  let seen = Hashtbl.create 8 in
  List.rev
    (List.filter
       (fun (k, _) ->
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.add seen k ();
           true
         end)
       newest_first)

let spans (d : trace) = Mutex.protect d.d_mu (fun () -> List.rev d.d_spans)

let truncated (d : trace) = Mutex.protect d.d_mu (fun () -> d.d_truncated)

let find_span (d : trace) name =
  List.find_opt (fun sp -> sp.sp_name = name) (spans d)

(* {2 Chrome trace_event exporter}

   The JSON-object form ({"traceEvents": [...]}), loadable in
   chrome://tracing and Perfetto.  Each trace renders as one process
   (pid = trace sequence number, named by a metadata event); spans are
   complete events ("ph":"X") on the domain they ran on, so nesting is
   reconstructed from time containment per (pid, tid) and cross-domain
   work appears on its own track.  Timestamps are microseconds on the
   process-wide monotonic clock shared by every span. *)

let esc = Telemetry.json_escape

let chrome_args buf kvs =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Printf.bprintf buf {|"%s":"%s"|} (esc k) (esc v))
    kvs;
  Buffer.add_string buf "}"

let chrome_event buf ~first ~pid ~tid ~ph ~name ~ts ?dur ?scope args =
  if not first then Buffer.add_string buf ",\n";
  Printf.bprintf buf {|{"name":"%s","cat":"steno","ph":"%s","pid":%d,"tid":%d,"ts":%.3f|}
    (esc name) ph pid tid ts;
  (match dur with Some d -> Printf.bprintf buf {|,"dur":%.3f|} d | None -> ());
  (match scope with Some s -> Printf.bprintf buf {|,"s":"%s"|} s | None -> ());
  Buffer.add_string buf {|,"args":|};
  chrome_args buf args;
  Buffer.add_string buf "}"

let export_chrome_traces ts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit ~pid ~tid ~ph ~name ~ts ?dur ?scope args =
    chrome_event buf ~first:!first ~pid ~tid ~ph ~name ~ts ?dur ?scope args;
    first := false
  in
  List.iter
    (fun d ->
      let pid = d.d_seq in
      let d_attrs = attrs d in
      emit ~pid ~tid:0 ~ph:"M" ~name:"process_name" ~ts:0.0
        [ "name", Printf.sprintf "trace %s %s" d.d_id d.d_root ];
      List.iter
        (fun sp ->
          let args =
            match sp.sp_kind with
            | Interval when sp.sp_name = d.d_root ->
              (* The root span carries the trace identity and the
                 request-level annotations. *)
              (("trace_id", d.d_id) :: d_attrs) @ sp.sp_attrs
            | _ -> sp.sp_attrs
          in
          match sp.sp_kind with
          | Interval ->
            emit ~pid ~tid:sp.sp_domain ~ph:"X" ~name:sp.sp_name
              ~ts:(sp.sp_start_ms *. 1000.0)
              ~dur:(sp.sp_duration_ms *. 1000.0)
              args
          | Instant ->
            emit ~pid ~tid:sp.sp_domain ~ph:"i" ~name:sp.sp_name
              ~ts:(sp.sp_start_ms *. 1000.0) ~scope:"t" args)
        (spans d))
    ts;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let export_chrome t = export_chrome_traces (traces t)

(* {2 Slow-query report} *)

let span_line buf (d : data) sp =
  Printf.bprintf buf "  %+9.3f ms %-12s %8.3f ms  d%d%s\n"
    (sp.sp_start_ms -. d.d_start_ms)
    sp.sp_name sp.sp_duration_ms sp.sp_domain
    (match sp.sp_attrs with
    | [] -> ""
    | attrs ->
      "  "
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))

let slow_report t =
  let buf = Buffer.create 1024 in
  let entries = slow t in
  (match t.t_slow_ms with
  | Some threshold ->
    Printf.bprintf buf "# slow queries (threshold %.1f ms): %d captured\n"
      threshold (List.length entries)
  | None -> Buffer.add_string buf "# slow-query capture disabled (no slow_ms)\n");
  List.iter
    (fun d ->
      Printf.bprintf buf "trace %s %s %.3f ms%s\n" d.d_id d.d_root
        (duration_ms d)
        (match attrs d with
        | [] -> ""
        | attrs ->
          "  "
          ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs));
      List.iter (fun sp -> span_line buf d sp) (spans d);
      let tr = truncated d in
      if tr > 0 then Printf.bprintf buf "  ... %d spans truncated\n" tr)
    (* Worst first. *)
    (List.sort (fun a b -> compare (duration_ms b) (duration_ms a)) entries);
  Buffer.contents buf
