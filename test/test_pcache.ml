(* The persistent plugin cache and tiered execution (PR 7).

   Covers the [Pcache] store in isolation (publication, key
   verification, LRU-by-mtime eviction, corruption-as-miss), the
   [Steno.Config] construction surface, and the engine integration:
   cross-process persistence (a child process compiles, the parent
   prepares with zero compiler runs), corrupted-entry recovery, and
   background tier promotion under concurrent runs.

   Cross-process protocol: when [STENO_PCACHE_CHILD] is set, this binary
   does not run alcotest at all — it compiles the shared test query into
   the store named by the variable and exits (0 on success), serving as
   the "earlier process" of the persistence test. *)

module I = Expr.Infix

let seq = ref 0

let fresh_dir () =
  incr seq;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "steno-test-pcache-%d-%d" (Unix.getpid ()) !seq)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf d =
  if Sys.file_exists d then begin
    Sys.readdir d
    |> Array.iter (fun f ->
           let p = Filename.concat d f in
           if Sys.is_directory p then rm_rf p else try Sys.remove p with _ -> ());
    try Unix.rmdir d with _ -> ()
  end

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* {2 The shared cross-process query}

   Parent and child construct this query from the same code, so both
   processes generate byte-identical source — and hence the same pcache
   key. *)

let xs = Array.init 64 (fun i -> (i * 7) mod 43)

let shared_query () =
  Query.of_array Ty.Int xs
  |> Query.select (fun x -> I.((x * Expr.int 3) + Expr.int 11))
  |> Query.sum_int

let shared_expected = Array.fold_left (fun a x -> a + ((x * 3) + 11)) 0 xs

let compiles_ok reg =
  Metrics.counter_value
    (Metrics.counter reg "steno_compile" ~labels:[ "result", "ok" ])

let native_engine ?tiering ?dir reg =
  let cfg =
    Steno.Config.(
      default |> with_backend Steno.Native |> with_metrics reg
      |> with_fallback false)
  in
  let cfg =
    match dir with
    | None -> cfg
    | Some dir -> Steno.Config.with_disk_cache ~dir cfg
  in
  let cfg =
    match tiering with
    | None -> cfg
    | Some threshold -> Steno.Config.with_tiering ~threshold cfg
  in
  Steno.Engine.create cfg

let child_main dir =
  let reg = Metrics.create () in
  let eng = native_engine ~dir reg in
  match Steno.Engine.try_prepare_scalar eng (shared_query ()) with
  | Error _ -> exit 3
  | Ok p ->
    let ok =
      Steno.Prepared_scalar.run p = shared_expected && compiles_ok reg = 1
    in
    exit (if ok then 0 else 1)

(* {2 Pcache unit tests} *)

let mk_store ?max_bytes ?max_entries dir =
  Pcache.create ?max_bytes ?max_entries ~fingerprint:"test-fp-1" ~dir ()

let test_store_roundtrip () =
  let dir = fresh_dir () in
  let payload = Filename.concat dir "payload.bin" in
  write_file payload "not really native code";
  let pc = mk_store dir in
  Alcotest.(check (option string)) "miss before store" None
    (Pcache.find pc ~key:"k1");
  ignore (Pcache.store pc ~key:"k1" ~cmxs:payload);
  (match Pcache.find pc ~key:"k1" with
  | None -> Alcotest.fail "expected a hit after store"
  | Some path ->
    let ic = open_in_bin path in
    let got = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Alcotest.(check string) "published bytes" "not really native code" got);
  let s = Pcache.stats pc in
  Alcotest.(check int) "entries" 1 s.Pcache.st_entries;
  Alcotest.(check int) "hits" 1 s.Pcache.st_hits;
  Alcotest.(check int) "misses" 1 s.Pcache.st_misses;
  (* A second handle on the same directory (fresh counters) sees the
     entry: persistence is the whole point. *)
  let pc2 = mk_store dir in
  Alcotest.(check bool) "second handle hits" true
    (Pcache.find pc2 ~key:"k1" <> None);
  (* A different fingerprint namespaces to a different subdirectory. *)
  let other = Pcache.create ~fingerprint:"test-fp-2" ~dir () in
  Alcotest.(check (option string)) "other fingerprint misses" None
    (Pcache.find other ~key:"k1");
  Alcotest.(check int) "clear removes the entry" 1 (Pcache.clear pc);
  Alcotest.(check (option string)) "miss after clear" None
    (Pcache.find pc ~key:"k1");
  rm_rf dir

let test_key_verification () =
  let dir = fresh_dir () in
  let payload = Filename.concat dir "payload.bin" in
  write_file payload "bytes";
  let pc = mk_store dir in
  ignore (Pcache.store pc ~key:"the real key" ~cmxs:payload);
  (match Pcache.find pc ~key:"the real key" with
  | None -> Alcotest.fail "expected a hit"
  | Some cmxs ->
    (* Corrupt the stored key: the entry must stop matching even though
       the artifact is intact (torn write / hash collision guard). *)
    let keyf = Filename.chop_suffix cmxs ".cmxs" ^ ".key" in
    write_file keyf "the real key, torn";
    Alcotest.(check (option string)) "mismatched key is a miss" None
      (Pcache.find pc ~key:"the real key"));
  rm_rf dir

let test_eviction_lru_by_mtime () =
  let dir = fresh_dir () in
  let payload = Filename.concat dir "payload.bin" in
  write_file payload "0123456789";
  let pc = mk_store ~max_entries:2 dir in
  ignore (Pcache.store pc ~key:"k1" ~cmxs:payload);
  ignore (Pcache.store pc ~key:"k2" ~cmxs:payload);
  (* Backdate k1 (the eviction clock is the artifact's mtime; [find]
     freshens it, so pin the times after the lookups). *)
  (match Pcache.find pc ~key:"k1" with
  | Some p -> Unix.utimes p 1000.0 1000.0
  | None -> Alcotest.fail "k1 missing");
  (match Pcache.find pc ~key:"k2" with
  | Some p -> Unix.utimes p 2000.0 2000.0
  | None -> Alcotest.fail "k2 missing");
  let evicted = Pcache.store pc ~key:"k3" ~cmxs:payload in
  Alcotest.(check int) "one entry evicted" 1 evicted;
  Alcotest.(check (option string)) "oldest (k1) evicted" None
    (Pcache.find pc ~key:"k1");
  Alcotest.(check bool) "k2 survives" true (Pcache.find pc ~key:"k2" <> None);
  Alcotest.(check bool) "k3 survives" true (Pcache.find pc ~key:"k3" <> None);
  Alcotest.(check int) "eviction counted" 1
    (Pcache.stats pc).Pcache.st_evictions;
  rm_rf dir

(* Entries published within one second share an mtime on filesystems
   with whole-second stamps, and [Unix.utimes] with equal times models
   that exactly: eviction must then pick a deterministic victim (lowest
   key hash), not whatever order [readdir] happened to return. *)
let test_eviction_mtime_tie_deterministic () =
  let keys = [ "tie-a"; "tie-b"; "tie-c" ] in
  let hash k = Digest.to_hex (Digest.string k) in
  let survivor_hash k = hash k <> List.hd (List.sort compare (List.map hash keys)) in
  let run_once () =
    let dir = fresh_dir () in
    let payload = Filename.concat dir "payload.bin" in
    write_file payload "0123456789";
    let pc = mk_store ~max_entries:3 dir in
    List.iter (fun k -> ignore (Pcache.store pc ~key:k ~cmxs:payload)) keys;
    (* Pin every artifact and key file to the same whole-second stamp. *)
    List.iter
      (fun k ->
        match Pcache.find pc ~key:k with
        | Some p ->
          Unix.utimes p 1000.0 1000.0;
          Unix.utimes (Filename.chop_suffix p ".cmxs" ^ ".key") 1000.0 1000.0
        | None -> Alcotest.fail (k ^ " missing"))
      keys;
    ignore (Pcache.store pc ~key:"tie-d" ~cmxs:payload);
    let surviving = List.filter (fun k -> Pcache.find pc ~key:k <> None) keys in
    rm_rf dir;
    surviving
  in
  let first = run_once () in
  Alcotest.(check int) "exactly one tied entry evicted" 2 (List.length first);
  Alcotest.(check (list string))
    "victim is the lowest hash, not readdir order"
    (List.filter survivor_hash keys)
    first;
  (* And the choice is reproducible across fresh directories. *)
  Alcotest.(check (list string)) "stable across runs" first (run_once ())

let test_corrupt_store_never_raises () =
  let dir = fresh_dir () in
  let payload = Filename.concat dir "payload.bin" in
  write_file payload "bytes";
  let pc = mk_store dir in
  ignore (Pcache.store pc ~key:"k" ~cmxs:payload);
  (* Strew wreckage through the store directory: a stray temp file, a
     key with no artifact, an unreadable name.  Everything must stay a
     miss or a survivor — never an exception. *)
  let root = Pcache.dir pc in
  write_file (Filename.concat root "orphan.key") "k-orphan";
  write_file (Filename.concat root "junk.cmxs.tmp.999.7") "torn";
  ignore (Pcache.find pc ~key:"k-orphan");
  Alcotest.(check bool) "real entry still hits" true
    (Pcache.find pc ~key:"k" <> None);
  ignore (Pcache.stats pc);
  ignore (Pcache.clear pc);
  (* Operations on an unusable root degrade to misses, not failures. *)
  let dead =
    Pcache.create ~fingerprint:"fp" ~dir:"/dev/null/not-a-directory" ()
  in
  Alcotest.(check (option string)) "unusable store misses" None
    (Pcache.find dead ~key:"k");
  Alcotest.(check int) "unusable store stores nothing" 0
    (Pcache.store dead ~key:"k" ~cmxs:payload);
  rm_rf dir

(* {2 Config} *)

let test_config_builders () =
  let base = Steno.Config.default in
  Alcotest.(check bool) "no tiering by default" true
    (base.Steno.Config.tiering = None);
  Alcotest.(check bool) "no disk cache by default" true
    (base.Steno.Config.disk_cache = None);
  Alcotest.(check bool) "default_config is Config.default" true
    (Steno.Engine.default_config == base);
  let cfg =
    Steno.Config.(
      base |> with_backend Steno.Fused |> with_strict true
      |> with_cache_capacity 7 |> with_tiering
      |> with_disk_cache ~dir:"/tmp/x" ~max_bytes:1024 ~max_entries:3)
  in
  Alcotest.(check bool) "backend set" true
    (cfg.Steno.Config.backend = Steno.Fused);
  Alcotest.(check bool) "strict set" true cfg.Steno.Config.strict;
  Alcotest.(check int) "capacity set" 7 cfg.Steno.Config.cache_capacity;
  (match cfg.Steno.Config.tiering with
  | Some { Steno.Config.threshold } ->
    Alcotest.(check int) "default threshold" 8 threshold
  | None -> Alcotest.fail "tiering not set");
  (match cfg.Steno.Config.disk_cache with
  | Some { Steno.Config.dir; max_bytes; max_entries } ->
    Alcotest.(check string) "dir" "/tmp/x" dir;
    Alcotest.(check int) "max_bytes" 1024 max_bytes;
    Alcotest.(check int) "max_entries" 3 max_entries
  | None -> Alcotest.fail "disk cache not set");
  let off = Steno.Config.(cfg |> without_tiering |> without_disk_cache) in
  Alcotest.(check bool) "without_tiering" true
    (off.Steno.Config.tiering = None);
  Alcotest.(check bool) "without_disk_cache" true
    (off.Steno.Config.disk_cache = None);
  (* The old record-update spelling still builds the same type. *)
  let eng =
    Steno.Engine.(create { default_config with backend = Steno.Linq })
  in
  Alcotest.(check bool) "record update works" true
    ((Steno.Engine.config eng).Steno.Engine.backend = Steno.Linq);
  (* Session ?config transformer wins over the engine's flags. *)
  let s =
    Steno.Session.create eng ~client_id:"c"
      ~config:Steno.Config.(with_backend Steno.Fused)
  in
  Alcotest.(check bool) "session config override" true
    ((Steno.Engine.config (Steno.Session.engine s)).Steno.Engine.backend
    = Steno.Fused)

(* {2 Engine integration (need the native toolchain)} *)

let skip_without_native () =
  if not (Steno.native_available ()) then begin
    Printf.printf "  (skipped: no native toolchain)\n";
    true
  end
  else false

let test_cross_process_persistence () =
  if skip_without_native () then ()
  else begin
    let dir = fresh_dir () in
    (* The "earlier process": this same binary, in child mode. *)
    let env =
      Array.append (Unix.environment ())
        [| "STENO_PCACHE_CHILD=" ^ dir |]
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process_env Sys.executable_name
        [| Sys.executable_name |]
        env Unix.stdin devnull devnull
    in
    Unix.close devnull;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, st ->
      let s =
        match st with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
      in
      Alcotest.fail ("child compile process failed: " ^ s));
    (* The "restarted process": a fresh engine and registry on the same
       store must prepare without invoking the compiler at all. *)
    let reg = Metrics.create () in
    let eng = native_engine ~dir reg in
    let p = Steno.Engine.prepare_scalar eng (shared_query ()) in
    Alcotest.(check int) "result" shared_expected
      (Steno.Prepared_scalar.run p);
    Alcotest.(check int) "zero compiles in parent" 0 (compiles_ok reg);
    Alcotest.(check bool) "reported as a cache hit" true
      (Steno.Prepared_scalar.compile_info p).Steno.cache_hit;
    (match Steno.Engine.pcache_stats eng with
    | None -> Alcotest.fail "engine has no pcache"
    | Some s -> Alcotest.(check int) "one disk hit" 1 s.Pcache.st_hits);
    rm_rf dir
  end

let test_corrupted_entry_recovers () =
  if skip_without_native () then ()
  else begin
    let dir = fresh_dir () in
    let reg1 = Metrics.create () in
    let eng1 = native_engine ~dir reg1 in
    let p1 = Steno.Engine.prepare_scalar eng1 (shared_query ()) in
    Alcotest.(check int) "seed result" shared_expected
      (Steno.Prepared_scalar.run p1);
    Alcotest.(check int) "seed compiled once" 1 (compiles_ok reg1);
    (* Truncate every stored artifact to garbage. *)
    let root =
      match Steno.Engine.pcache_dir eng1 with
      | Some d -> d
      | None -> Alcotest.fail "no pcache dir"
    in
    let corrupted = ref 0 in
    Sys.readdir root
    |> Array.iter (fun f ->
           if Filename.check_suffix f ".cmxs" then begin
             write_file (Filename.concat root f) "garbage, not a plugin";
             incr corrupted
           end);
    Alcotest.(check bool) "something to corrupt" true (!corrupted > 0);
    (* A fresh engine must shrug: load fails, entry is dropped, compile
       runs, result is right. *)
    let reg2 = Metrics.create () in
    let eng2 = native_engine ~dir reg2 in
    let p2 = Steno.Engine.prepare_scalar eng2 (shared_query ()) in
    Alcotest.(check int) "recovered result" shared_expected
      (Steno.Prepared_scalar.run p2);
    Alcotest.(check int) "recompiled once" 1 (compiles_ok reg2);
    Alcotest.(check bool) "not a cache hit" false
      (Steno.Prepared_scalar.compile_info p2).Steno.cache_hit;
    Alcotest.(check bool) "miss counted" true
      (Metrics.counter_value (Metrics.counter reg2 "steno_pcache_misses") >= 1);
    (* The recompile republished a good artifact: a third engine hits. *)
    let reg3 = Metrics.create () in
    let eng3 = native_engine ~dir reg3 in
    let p3 = Steno.Engine.prepare_scalar eng3 (shared_query ()) in
    Alcotest.(check int) "third engine result" shared_expected
      (Steno.Prepared_scalar.run p3);
    Alcotest.(check int) "third engine compiles" 0 (compiles_ok reg3);
    rm_rf dir
  end

let test_tier_promotion_concurrent () =
  if skip_without_native () then ()
  else begin
    let threshold = 4 in
    let reg = Metrics.create () in
    let eng = native_engine ~tiering:threshold reg in
    let p = Steno.Engine.prepare_scalar eng (shared_query ()) in
    (* Tiered prepare is instant: Fused executes, Native was requested,
       nothing compiled yet. *)
    let i = Steno.Prepared_scalar.compile_info p in
    Alcotest.(check bool) "starts on fused" true
      (Steno.Prepared_scalar.backend_used p = Steno.Fused);
    Alcotest.(check bool) "info backend fused" true (i.Steno.backend = Steno.Fused);
    Alcotest.(check bool) "info requested native" true
      (i.Steno.requested = Steno.Native);
    Alcotest.(check int) "no compile at prepare" 0 (compiles_ok reg);
    (* Hammer the preparation from several domains across the promotion
       point: every run, on either tier, must agree with the reference
       result. *)
    let results =
      Domain_pool.run ~workers:4 ~tasks:64 (fun _ ->
          Steno.Prepared_scalar.run p)
    in
    Array.iter
      (fun r ->
        Alcotest.(check int) "differential across the swap" shared_expected r)
      results;
    (* The promotion is asynchronous; wait (bounded) for the swap. *)
    let deadline = Unix.gettimeofday () +. 30.0 in
    while
      Steno.Prepared_scalar.backend_used p <> Steno.Native
      && Unix.gettimeofday () < deadline
    do
      Unix.sleepf 0.01
    done;
    Alcotest.(check bool) "promoted to native" true
      (Steno.Prepared_scalar.backend_used p = Steno.Native);
    Alcotest.(check int) "exactly one background compile" 1
      (compiles_ok reg);
    Alcotest.(check int) "post-swap result" shared_expected
      (Steno.Prepared_scalar.run p);
    Alcotest.(check int) "one promotion counted" 1
      (Metrics.counter_value
         (Metrics.counter reg "steno_tier_promotions"
            ~labels:[ "result", "ok" ]));
    (* Re-preparing the same query now hits the in-process plugin cache:
       still exactly one compiler run ever. *)
    let p2 = Steno.Engine.prepare_scalar eng (shared_query ()) in
    ignore (Steno.Prepared_scalar.run p2);
    let deadline = Unix.gettimeofday () +. 30.0 in
    let rec spin () =
      if Steno.Prepared_scalar.backend_used p2 = Steno.Native then ()
      else if Unix.gettimeofday () > deadline then ()
      else begin
        ignore (Steno.Prepared_scalar.run p2);
        Unix.sleepf 0.01;
        spin ()
      end
    in
    spin ();
    Alcotest.(check int) "still one compile after re-prepare" 1
      (compiles_ok reg)
  end

let test_tiering_without_compiler_stays_fused () =
  (* With the compiler gated off, promotion fails in the background and
     the preparation keeps serving Fused — never an exception. *)
  let was = !Dynload.disabled in
  Dynload.disabled := true;
  Fun.protect
    ~finally:(fun () -> Dynload.disabled := was)
    (fun () ->
      let reg = Metrics.create () in
      let eng =
        Steno.Engine.create
          Steno.Config.(
            default |> with_backend Steno.Native |> with_metrics reg
            |> with_tiering ~threshold:1)
      in
      let p = Steno.Engine.prepare_scalar eng (shared_query ()) in
      for _ = 1 to 5 do
        Alcotest.(check int) "fused result" shared_expected
          (Steno.Prepared_scalar.run p)
      done;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        Metrics.counter_value
          (Metrics.counter reg "steno_tier_promotions"
             ~labels:[ "result", "failed" ])
        = 0
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.01
      done;
      Alcotest.(check int) "failed promotion counted" 1
        (Metrics.counter_value
           (Metrics.counter reg "steno_tier_promotions"
              ~labels:[ "result", "failed" ]));
      Alcotest.(check bool) "still fused" true
        (Steno.Prepared_scalar.backend_used p = Steno.Fused);
      Alcotest.(check int) "still correct" shared_expected
        (Steno.Prepared_scalar.run p))

let () =
  (match Sys.getenv_opt "STENO_PCACHE_CHILD" with
  | Some dir -> child_main dir
  | None -> ());
  Alcotest.run "pcache"
    [
      ( "store",
        [
          Alcotest.test_case "roundtrip + fingerprints" `Quick
            test_store_roundtrip;
          Alcotest.test_case "key verification" `Quick test_key_verification;
          Alcotest.test_case "mtime-tie eviction deterministic" `Quick
            test_eviction_mtime_tie_deterministic;
          Alcotest.test_case "lru-by-mtime eviction" `Quick
            test_eviction_lru_by_mtime;
          Alcotest.test_case "corruption never raises" `Quick
            test_corrupt_store_never_raises;
        ] );
      ( "config",
        [ Alcotest.test_case "builders" `Quick test_config_builders ] );
      ( "persistence",
        [
          Alcotest.test_case "cross-process reuse" `Quick
            test_cross_process_persistence;
          Alcotest.test_case "corrupted entry recovery" `Quick
            test_corrupted_entry_recovers;
        ] );
      ( "tiering",
        [
          Alcotest.test_case "concurrent promotion" `Quick
            test_tier_promotion_concurrent;
          Alcotest.test_case "no compiler: stays fused" `Quick
            test_tiering_without_compiler_stays_fused;
        ] );
    ]
