(* The driver: prepared queries, the query cache, compile-info accounting
   and inspection helpers. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let with_native f = if Steno.native_available () then f () else ()

let test_prepare_and_rerun () =
  let q = ints [| 1; 2; 3 |] |> Query.select (fun x -> I.(x * x)) in
  List.iter
    (fun b ->
      let p = Steno.prepare ~backend:b q in
      Alcotest.(check (array int)) "run" [| 1; 4; 9 |] (Steno.Prepared.run p);
      Alcotest.(check (array int)) "re-run" [| 1; 4; 9 |] (Steno.Prepared.run p))
    (if Steno.native_available () then [ Steno.Linq; Steno.Fused; Steno.Native ]
     else [ Steno.Linq; Steno.Fused ])

let test_cache_hit_on_identical_structure () =
  with_native @@ fun () ->
  Steno.clear_cache ();
  let mk arr = Query.sum_int (ints arr |> Query.select (fun x -> I.(x + Expr.int 1))) in
  let p1 = Steno.prepare_scalar ~backend:Steno.Native (mk [| 1; 2 |]) in
  Alcotest.(check bool) "first is a miss" false (Steno.Prepared_scalar.compile_info p1).Steno.cache_hit;
  Alcotest.(check int) "sum 1" 5 (Steno.Prepared_scalar.run p1);
  (* Same structure, different captured data: cache hit, correct result. *)
  let p2 = Steno.prepare_scalar ~backend:Steno.Native (mk [| 10; 20; 30 |]) in
  Alcotest.(check bool) "second is a hit" true (Steno.Prepared_scalar.compile_info p2).Steno.cache_hit;
  Alcotest.(check int) "sum 2" 63 (Steno.Prepared_scalar.run p2);
  Alcotest.(check int) "one cached plugin" 1 (Steno.cache_size ());
  (* Different structure compiles separately. *)
  let p3 =
    Steno.prepare_scalar ~backend:Steno.Native
      (Query.sum_int (ints [| 1 |] |> Query.select (fun x -> I.(x * Expr.int 2))))
  in
  Alcotest.(check bool) "different structure misses" false
    (Steno.Prepared_scalar.compile_info p3).Steno.cache_hit;
  Alcotest.(check int) "two cached plugins" 2 (Steno.cache_size ())

let test_compile_info_timings () =
  with_native @@ fun () ->
  Steno.clear_cache ();
  let q = Query.sum_int (ints [| 1; 2; 3 |] |> Query.where (fun x -> I.(x > Expr.int 1))) in
  let p = Steno.prepare_scalar ~backend:Steno.Native q in
  let i = Steno.Prepared_scalar.compile_info p in
  Alcotest.(check bool) "compile cost present on miss" true (i.Steno.compile_ms > 0.5);
  Alcotest.(check bool) "prepare >= compile" true
    (i.Steno.prepare_ms >= i.Steno.compile_ms);
  let p2 = Steno.prepare_scalar ~backend:Steno.Native q in
  let i2 = Steno.Prepared_scalar.compile_info p2 in
  Alcotest.(check bool) "hit pays no compile" true (i2.Steno.compile_ms = 0.0)

let test_inspection () =
  let q = ints [| 1 |] |> Query.where (fun x -> I.(x > Expr.int 0)) in
  Alcotest.(check string) "quil" "Src Pred Ret" (Steno.quil q);
  Alcotest.(check string) "quil scalar" "Src Pred Agg Ret"
    (Steno.quil_scalar (Query.count q));
  let src = Steno.generated_source q in
  Alcotest.(check bool) "source mentions __query" true
    (String.length src > 0
    &&
    let needle = "let __query" in
    let rec go i =
      i + String.length needle <= String.length src
      && (String.sub src i (String.length needle) = needle || go (i + 1))
    in
    go 0)

let test_empty_seq_exception_parity () =
  with_native @@ fun () ->
  let sq = Query.min_elt (ints [||]) in
  Alcotest.check_raises "native raises No_such_element" Iterator.No_such_element
    (fun () -> ignore (Steno.scalar ~backend:Steno.Native sq))

let test_default_backend () =
  (* The default must be usable whatever the environment. *)
  let q = Query.sum_int (ints [| 4; 5 |]) in
  Alcotest.(check int) "default backend works" 9 (Steno.scalar q)

let test_compilation_failure_surfaces () =
  with_native @@ fun () ->
  Alcotest.(check bool) "bad source rejected" true
    (match Dynload.compile ~source:"let x = (" with
    | exception Dynload.Compilation_failed _ -> true
    | _ -> false)

let () =
  Alcotest.run "steno"
    [
      ( "driver",
        [
          Alcotest.test_case "prepare/run" `Quick test_prepare_and_rerun;
          Alcotest.test_case "cache" `Quick test_cache_hit_on_identical_structure;
          Alcotest.test_case "timings" `Quick test_compile_info_timings;
          Alcotest.test_case "inspection" `Quick test_inspection;
          Alcotest.test_case "exception parity" `Quick test_empty_seq_exception_parity;
          Alcotest.test_case "default backend" `Quick test_default_backend;
          Alcotest.test_case "compile failure" `Quick test_compilation_failure_surfaces;
        ] );
    ]
