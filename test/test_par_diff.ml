(* Differential testing: parallel scalar execution vs the Reference
   interpreter, across all three backends, on inputs chosen to expose
   partial-aggregation bugs — ties that span partition boundaries,
   empty and singleton partitions, lengths not divisible by the
   partition count, and a non-commutative (but associative) user
   combiner that detects any merge-order mistake. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs
let floats xs = Query.of_array Ty.Float xs

let engine_of backend =
  Steno.Engine.create { Steno.Engine.default_config with backend }

(* Every backend that can run on this host, so a codegen bug in one
   backend cannot hide behind the others. *)
let backends () =
  [ "linq", Steno.Linq; "fused", Steno.Fused ]
  @ (if Steno.native_available () then [ "native", Steno.Native ] else [])

let partitionings = [ 1, 1; 4, 5; 8, 3; 3, 8 ]

(* Run [sq] through Par.scalar_auto on every backend and partitioning
   and demand exact agreement with Reference. *)
let differential : type s. string -> (s -> s -> bool) -> s Query.sq -> unit =
 fun name eq sq ->
  let expected = try Ok (Reference.scalar sq) with e -> Error e in
  List.iter
    (fun (bname, backend) ->
      let engine = engine_of backend in
      List.iter
        (fun (workers, parts) ->
          let label = Printf.sprintf "%s [%s w=%d p=%d]" name bname workers parts in
          let got =
            try Ok (Par.scalar_auto ~engine ~workers ~parts sq)
            with e -> Error e
          in
          match expected, got with
          | Ok e, Ok g ->
            if not (eq e g) then Alcotest.failf "%s: diverged from Reference" label
          | Error a, Error b when a = b -> ()
          | Error _, Ok _ -> Alcotest.failf "%s: Reference raised, parallel did not" label
          | Ok _, Error e ->
            Alcotest.failf "%s: parallel raised %s" label (Printexc.to_string e)
          | Error _, Error e ->
            Alcotest.failf "%s: raised the wrong exception %s" label
              (Printexc.to_string e))
        partitionings)
    (backends ())

let deq a b = a = b
let feq a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Min_by/Max_by must keep the leftmost element among key ties, even
   when the tied elements land in different partitions.  Values are all
   distinct so picking any other tied element is caught. *)
let test_tie_heavy_extrema () =
  let tie_heavy = Array.init 64 (fun i -> 100 + i) in
  let key x = I.(x mod Expr.int 3) in
  differential "min_by ties" deq (ints tie_heavy |> Query.min_by key);
  differential "max_by ties" deq (ints tie_heavy |> Query.max_by key);
  (* All keys equal: every partition's partial ties with every other. *)
  let all_tied = Array.init 17 (fun i -> 1000 + i) in
  differential "min_by all tied" deq
    (ints all_tied |> Query.min_by (fun _ -> Expr.int 0));
  differential "max_by all tied" deq
    (ints all_tied |> Query.max_by (fun _ -> Expr.int 0))

(* Empty and singleton sources under many workers: some partitions hold
   nothing, and the empty-input behaviour (raise vs identity) must match
   the sequential semantics exactly. *)
let test_degenerate_partitions () =
  let empty = [||] and one = [| 42 |] in
  differential "empty sum" deq (Query.sum_int (ints empty));
  differential "empty count" deq (Query.count (ints empty));
  differential "empty min" deq (Query.min_elt (ints empty));
  differential "empty first" deq (Query.first (ints empty));
  differential "empty average" feq (Query.average (floats [||]));
  differential "empty any" deq (Query.any (ints empty));
  differential "empty contains" deq (Query.contains (Expr.int 7) (ints empty));
  differential "empty for_all" deq
    (ints empty |> Query.for_all (fun x -> I.(x > Expr.int 0)));
  differential "singleton min" deq (Query.min_elt (ints one));
  differential "singleton first" deq (Query.first (ints one));
  differential "singleton last" deq (Query.last (ints one));
  differential "singleton average" feq (Query.average (floats [| 3.5 |]))

(* Average over lengths sharing no factor with the partition counts:
   the (sum, count) partials have unequal weights, so any merge that
   averages averages — instead of summing sums and counts — diverges. *)
let test_average_uneven_lengths () =
  List.iter
    (fun n ->
      let data = Array.init n (fun i -> float_of_int ((i * 31) mod 101) /. 7.0) in
      differential (Printf.sprintf "average n=%d" n) feq (Query.average (floats data));
      differential
        (Printf.sprintf "filtered average n=%d" n)
        feq
        (floats data
        |> Query.where (fun x -> I.(x < Expr.float 9.0))
        |> Query.average))
    [ 7; 13; 97; 101; 1000 ]

(* A user-declared aggregate whose combiner is associative but NOT
   commutative: 2x2 integer matrix product.  Any reordering or
   re-association mistake in the Agg* merge changes the product. *)
let test_noncommutative_user_aggregate () =
  let mat_mul ((a, b), (c, d)) ((e, f), (g, h)) =
    ( ((a * e) + (b * g), (a * f) + (b * h)),
      ((c * e) + (d * g), (c * f) + (d * h)) )
  in
  let identity = Expr.Pair (Expr.Pair (Expr.int 1, Expr.int 0),
                            Expr.Pair (Expr.int 0, Expr.int 1))
  in
  (* acc * [[x,1],[1,0]] — the continued-fraction matrices, which do
     not commute with each other for distinct x. *)
  let step acc x =
    let a = Expr.Fst (Expr.Fst acc) and b = Expr.Snd (Expr.Fst acc) in
    let c = Expr.Fst (Expr.Snd acc) and d = Expr.Snd (Expr.Snd acc) in
    Expr.Pair
      ( Expr.Pair (I.((a * x) + b), a),
        Expr.Pair (I.((c * x) + d), c) )
  in
  let data = Array.init 48 (fun i -> (i * 5) mod 3) in
  let sq =
    ints data |> Query.aggregate ~combine:mat_mul ~seed:identity ~step
  in
  differential "matrix product" deq sq;
  (* The same combiner over a filtered homomorphic prefix. *)
  let filtered =
    ints data
    |> Query.where (fun x -> I.(x < Expr.int 2))
    |> Query.aggregate ~combine:mat_mul ~seed:identity ~step
  in
  differential "filtered matrix product" deq filtered

(* First/Last across partitions where the interesting element sits at a
   partition boundary after filtering. *)
let test_positional_scalars () =
  let data = Array.init 50 (fun i -> i) in
  let filtered f = ints data |> Query.where f in
  differential "first after filter" deq
    (Query.first (filtered (fun x -> I.(x mod Expr.int 13 = Expr.int 12))));
  differential "last after filter" deq
    (Query.last (filtered (fun x -> I.(x mod Expr.int 13 = Expr.int 12))));
  differential "first survivor in last partition" deq
    (Query.first (filtered (fun x -> I.(x > Expr.int 47))));
  differential "last survivor in first partition" deq
    (Query.last (filtered (fun x -> I.(x < Expr.int 2))))

(* Short-circuiting quantifiers: cancellation must never change the
   answer, whichever partition would have produced it. *)
let test_quantifiers () =
  let data = Array.init 200 (fun i -> i) in
  differential "contains hit in last partition" deq
    (ints data |> Query.contains (Expr.int 199));
  differential "contains miss" deq (ints data |> Query.contains (Expr.int 777));
  differential "exists hit early" deq
    (ints data |> Query.exists (fun x -> I.(x = Expr.int 0)));
  differential "for_all violated mid-stream" deq
    (ints data |> Query.for_all (fun x -> I.(x <> Expr.int 101)));
  differential "for_all holds" deq
    (ints data |> Query.for_all (fun x -> I.(x < Expr.int 1000)))

(* Partitioned GroupBy-Aggregate vs the Reference interpreter on every
   backend: per-key sums with keys interleaved across partitions must
   come back in global first-appearance order. *)
let test_group_aggregate_diff () =
  let data = Array.init 120 (fun i -> (i * 7) mod 11) in
  let q =
    ints data
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 4))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x))
  in
  let expected = Reference.to_list q in
  List.iter
    (fun (bname, backend) ->
      let engine = engine_of backend in
      List.iter
        (fun (workers, parts) ->
          let got =
            Array.to_list
              (Par.group_aggregate ~engine ~workers ~parts ~combine:( + ) q)
          in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "group_agg [%s w=%d p=%d]" bname workers parts)
            expected got)
        partitionings)
    (backends ())

let () =
  Alcotest.run "par-diff"
    [
      ( "scalars",
        [
          Alcotest.test_case "tie-heavy extrema" `Quick test_tie_heavy_extrema;
          Alcotest.test_case "degenerate partitions" `Quick
            test_degenerate_partitions;
          Alcotest.test_case "uneven average" `Quick test_average_uneven_lengths;
          Alcotest.test_case "non-commutative combiner" `Quick
            test_noncommutative_user_aggregate;
          Alcotest.test_case "positional" `Quick test_positional_scalars;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "group aggregate" `Quick test_group_aggregate_diff;
        ] );
    ]
