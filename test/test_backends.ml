(* Differential testing: the Reference list semantics, the LINQ iterator
   pipeline, the Fused closure backend and Steno-generated native code
   must agree on every query — including raising the same exception on
   empty seedless aggregates. *)

module I = Expr.Infix

let backends =
  if Steno.native_available () then [ Steno.Linq; Steno.Fused; Steno.Native ]
  else [ Steno.Linq; Steno.Fused ]

let backend_name = function
  | Steno.Linq -> "linq"
  | Steno.Fused -> "fused"
  | Steno.Native -> "native"

let show : type a. a Ty.t -> a -> string =
 fun ty v -> Format.asprintf "%a" (Ty.pp_value ty) v

let check_q name (q : 'a Query.t) =
  let ty = Ty.Array (Query.elem_ty q) in
  let expected = Array.of_list (Reference.to_list q) in
  List.iter
    (fun b ->
      let got = Steno.to_array ~backend:b q in
      if Ty.compare_values ty got expected <> 0 then
        Alcotest.failf "%s/%s: got %s, want %s" name (backend_name b)
          (show ty got) (show ty expected))
    backends

let check_sq name (sq : 's Query.sq) =
  let ty = Query.scalar_ty sq in
  let expected =
    match Reference.scalar sq with
    | v -> Ok v
    | exception Iterator.No_such_element -> Error `Empty
  in
  List.iter
    (fun b ->
      let got =
        match Steno.scalar ~backend:b sq with
        | v -> Ok v
        | exception Iterator.No_such_element -> Error `Empty
      in
      match expected, got with
      | Ok e, Ok g ->
        if Ty.compare_values ty g e <> 0 then
          Alcotest.failf "%s/%s: got %s, want %s" name (backend_name b)
            (show ty g) (show ty e)
      | Error `Empty, Error `Empty -> ()
      | Ok e, Error `Empty ->
        Alcotest.failf "%s/%s: raised on non-empty (want %s)" name
          (backend_name b) (show ty e)
      | Error `Empty, Ok g ->
        Alcotest.failf "%s/%s: got %s, want empty-sequence failure" name
          (backend_name b) (show ty g))
    backends

let ints xs = Query.of_array Ty.Int xs

let floats xs = Query.of_array Ty.Float xs

let sample_ints = [| 5; 3; 8; 1; 9; 2; 8; 3; 7; 0 |]

let sample_floats = [| 1.5; -2.25; 3.0; 0.5; -1.0; 4.75 |]

(* Element-wise pipelines *)

let test_elementwise () =
  check_q "select" (ints sample_ints |> Query.select (fun x -> I.(x * x)));
  check_q "where"
    (ints sample_ints |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 1)));
  check_q "where-select"
    (ints sample_ints
    |> Query.where (fun x -> I.(x > Expr.int 2))
    |> Query.select (fun x -> I.(x + Expr.int 100)));
  check_q "select-where-select"
    (ints sample_ints
    |> Query.select (fun x -> I.(x * Expr.int 3))
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x - Expr.int 1)));
  check_q "float pipeline"
    (floats sample_floats
    |> Query.select (fun x -> I.((x *. x) +. Expr.float 1.0))
    |> Query.where (fun x -> I.(x > Expr.float 2.0)))

let test_stateful_preds () =
  check_q "take" (ints sample_ints |> Query.take 4);
  check_q "take 0" (ints sample_ints |> Query.take 0);
  check_q "take beyond" (ints sample_ints |> Query.take 99);
  check_q "skip" (ints sample_ints |> Query.skip 4);
  check_q "skip beyond" (ints sample_ints |> Query.skip 99);
  check_q "take-skip mix"
    (ints sample_ints |> Query.skip 2 |> Query.take 5 |> Query.skip 1);
  check_q "take_while" (ints sample_ints |> Query.take_while (fun x -> I.(x > Expr.int 0)));
  check_q "skip_while" (ints sample_ints |> Query.skip_while (fun x -> I.(x > Expr.int 2)));
  check_q "take_while after select"
    (ints sample_ints
    |> Query.select (fun x -> I.(x - Expr.int 4))
    |> Query.take_while (fun x -> I.(not (x = Expr.int 0))))

let test_indexed_ops () =
  check_q "select_i"
    (ints sample_ints |> Query.select_i (fun i x -> I.((i * Expr.int 100) + x)));
  check_q "where_i (even positions)"
    (ints sample_ints |> Query.where_i (fun i _ -> I.(i mod Expr.int 2 = Expr.int 0)));
  check_q "where then select_i (positions after filter)"
    (ints sample_ints
    |> Query.where (fun x -> I.(x > Expr.int 2))
    |> Query.select_i (fun i x -> Expr.Pair (i, x)));
  check_q "select_i after skip"
    (ints sample_ints |> Query.skip 3 |> Query.select_i (fun i x -> I.(i + x)))

let test_positional_aggregates () =
  check_sq "last" (Query.last (ints sample_ints));
  check_sq "last filtered"
    (Query.last (ints sample_ints |> Query.where (fun x -> I.(x < Expr.int 5))));
  check_sq "last empty" (Query.last (ints [||]));
  check_sq "element_at 0" (Query.element_at 0 (ints sample_ints));
  check_sq "element_at mid" (Query.element_at 5 (ints sample_ints));
  check_sq "element_at out of range" (Query.element_at 99 (ints sample_ints));
  check_sq "sum_by_int" (Query.sum_by_int (fun x -> I.(x * x)) (ints sample_ints));
  check_sq "average_by"
    (Query.average_by (fun x -> I.(x *. x)) (floats sample_floats));
  check_sq "count_where" (Query.count_where (fun x -> I.(x > Expr.int 4)) (ints sample_ints))

let test_sources () =
  check_q "range" (Query.range ~start:(-3) ~count:7);
  check_q "range empty" (Query.range ~start:0 ~count:0);
  check_q "repeat" (Query.repeat Ty.Int 42 ~count:5);
  check_q "range pipeline"
    (Query.range ~start:0 ~count:20
    |> Query.where (fun x -> I.(x mod Expr.int 3 = Expr.int 0))
    |> Query.select (fun x -> I.(x * x)));
  check_q "empty source" (ints [||] |> Query.select (fun x -> x))

let test_sinks () =
  check_q "order_by" (ints sample_ints |> Query.order_by (fun x -> x));
  check_q "order_by desc"
    (ints sample_ints |> Query.order_by ~order:Query.Descending (fun x -> x));
  check_q "order_by key"
    (ints sample_ints |> Query.order_by (fun x -> I.(x mod Expr.int 3)));
  check_q "distinct" (ints sample_ints |> Query.distinct);
  check_q "rev" (ints sample_ints |> Query.rev);
  check_q "materialize" (ints sample_ints |> Query.materialize);
  check_q "distinct then sort"
    (ints sample_ints |> Query.distinct |> Query.order_by (fun x -> x));
  check_q "sort then take"
    (ints sample_ints |> Query.order_by (fun x -> x) |> Query.take 3);
  check_q "where then sort then select"
    (ints sample_ints
    |> Query.where (fun x -> I.(x > Expr.int 1))
    |> Query.order_by (fun x -> I.(Expr.int 0 - x))
    |> Query.select (fun x -> I.(x * Expr.int 2)))

let test_group_by () =
  check_q "group_by" (ints sample_ints |> Query.group_by (fun x -> I.(x mod Expr.int 3)));
  check_q "group_by_elem"
    (ints sample_ints
    |> Query.group_by_elem ~key:(fun x -> I.(x mod Expr.int 3)) ~elem:(fun x -> I.(x * x)));
  check_q "group_by_agg count"
    (ints sample_ints
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 3))
         ~seed:(Expr.int 0)
         ~step:(fun acc _ -> I.(acc + Expr.int 1)));
  check_q "group_by_agg sum"
    (ints sample_ints
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 2))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x)));
  check_q "group then project key"
    (ints sample_ints
    |> Query.group_by (fun x -> I.(x mod Expr.int 3))
    |> Query.select (fun g -> Expr.Fst g));
  check_q "group-having (GROUP BY ... HAVING)"
    (ints sample_ints
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 3))
         ~seed:(Expr.int 0)
         ~step:(fun acc _ -> I.(acc + Expr.int 1))
    |> Query.where (fun g -> I.(Expr.Snd g > Expr.int 2)))

let test_join_strategies () =
  let pairs xs = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) xs in
  let left = pairs (Array.init 30 (fun i -> i mod 7, i)) in
  let right = pairs (Array.init 20 (fun i -> i mod 7, 100 + i)) in
  let joined =
    left
    |> Query.join ~inner:right
         ~outer_key:(fun l -> Expr.Fst l)
         ~inner_key:(fun r -> Expr.Fst r)
         ~result:(fun l r -> Expr.Pair (Expr.Snd l, Expr.Snd r))
  in
  check_q "join (hash strategy)" joined;
  Canon.hash_join_enabled := false;
  Fun.protect ~finally:(fun () -> Canon.hash_join_enabled := true) (fun () ->
      check_q "join (nested-loop strategy)" joined);
  (* A join whose build side has its own pipeline. *)
  check_q "join with filtered inner"
    (left
    |> Query.join
         ~inner:(right |> Query.where (fun r -> I.(Expr.Snd r mod Expr.int 2 = Expr.int 0)))
         ~outer_key:(fun l -> Expr.Fst l)
         ~inner_key:(fun r -> Expr.Fst r)
         ~result:(fun l r -> Expr.Pair (Expr.Snd l, Expr.Snd r)))

let test_sorted_group_agg () =
  let q =
    ints sample_ints
    |> Query.order_by (fun x -> I.(x mod Expr.int 3))
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 3))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x))
  in
  check_q "sorted group-aggregate" q;
  Canon.sorted_group_enabled := false;
  Fun.protect ~finally:(fun () -> Canon.sorted_group_enabled := true)
    (fun () -> check_q "hash sink on sorted input" q)

let test_nested () =
  check_q "select_many"
    (ints [| 1; 2; 3 |]
    |> Query.select_many (fun x -> Query.range ~start:0 ~count:3 |> Query.select (fun y -> I.(y + (x * Expr.int 10)))));
  check_q "select_many over captured"
    (ints [| 1; 2 |]
    |> Query.select_many (fun x ->
           Query.of_array Ty.Int [| 10; 20 |] |> Query.select (fun y -> I.(x + y))));
  check_q "select_many_result"
    (ints [| 1; 2; 3 |]
    |> Query.select_many_result
         (fun x -> Query.range ~start:0 ~count:2 |> Query.where (fun y -> I.(not (y = x))))
         (fun x y -> I.((x * Expr.int 100) + y)));
  check_q "triple nesting (cartesian)"
    (ints [| 1; 2 |]
    |> Query.select_many (fun x ->
           ints [| 3; 4 |]
           |> Query.select_many (fun y ->
                  ints [| 5; 6 |] |> Query.select (fun z -> I.((x * Expr.int 100) + (y * Expr.int 10) + z)))));
  check_q "nested with inner sink"
    (ints [| 3; 1 |]
    |> Query.select_many (fun x ->
           ints [| 2; 1; 2 |] |> Query.distinct |> Query.select (fun y -> I.(x + y))));
  check_q "select_sq (scalar subquery)"
    (ints [| 1; 2; 3 |]
    |> Query.select_sq (fun x ->
           Query.range ~start:0 ~count:4 |> Query.select (fun y -> I.(y * x)) |> Query.sum_int));
  check_q "where_sq (exists subquery)"
    (ints sample_ints
    |> Query.where_sq (fun x ->
           Query.of_array Ty.Int [| 2; 5; 8 |] |> Query.exists (fun y -> I.(y = x))));
  check_q "join"
    (Query.join
       ~inner:(Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) [| 1, 10; 2, 20; 1, 30 |])
       ~outer_key:(fun p -> Expr.Fst p)
       ~inner_key:(fun o -> Expr.Fst o)
       ~result:(fun p o -> Expr.Pair (Expr.Snd p, Expr.Snd o))
       (Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) [| 1, 100; 3, 300 |]))

let test_aggregates () =
  let q = ints sample_ints in
  check_sq "sum_int" (Query.sum_int q);
  check_sq "sum_float" (Query.sum_float (floats sample_floats));
  check_sq "count" (Query.count q);
  check_sq "average" (Query.average (floats sample_floats));
  check_sq "min int" (Query.min_elt q);
  check_sq "max int" (Query.max_elt q);
  check_sq "min float" (Query.min_elt (floats sample_floats));
  check_sq "max float" (Query.max_elt (floats sample_floats));
  check_sq "min pair (generic)"
    (Query.min_elt (q |> Query.select (fun x -> Expr.Pair (I.(x mod Expr.int 3), x))));
  check_sq "min_by" (Query.min_by (fun x -> I.(x mod Expr.int 4)) q);
  check_sq "max_by" (Query.max_by (fun x -> I.(x mod Expr.int 4)) q);
  check_sq "first" (Query.first q);
  check_sq "first filtered" (Query.first (q |> Query.where (fun x -> I.(x > Expr.int 7))));
  check_sq "any" (Query.any q);
  check_sq "any empty" (Query.any (ints [||]));
  check_sq "exists true" (Query.exists (fun x -> I.(x = Expr.int 9)) q);
  check_sq "exists false" (Query.exists (fun x -> I.(x = Expr.int 99)) q);
  check_sq "for_all" (Query.for_all (fun x -> I.(x >= Expr.int 0)) q);
  check_sq "contains" (Query.contains (Expr.int 7) q);
  check_sq "aggregate" (Query.aggregate ~seed:(Expr.int 1) ~step:(fun a x -> I.(a + (x * Expr.int 2))) q);
  check_sq "aggregate_full"
    (Query.aggregate_full ~seed:(Expr.int 0) ~step:(fun a x -> I.(a + x))
       ~result:(fun a -> I.(a * Expr.int 7)) q);
  check_sq "sum after pipeline"
    (Query.sum_int
       (q |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0)) |> Query.select (fun x -> I.(x * x))))

let test_map_scalar () =
  let q = ints sample_ints |> Query.where (fun x -> I.(x > Expr.int 2)) in
  check_sq "map_scalar over sum"
    (Query.sum_int q |> Query.map_scalar (fun s -> I.(s * Expr.int 3)));
  check_sq "map_scalar over count"
    (Query.count q |> Query.map_scalar (fun c -> Expr.Pair (c, c)));
  check_sq "map_scalar over min (empty raises through)"
    (Query.min_elt (ints [||]) |> Query.map_scalar (fun m -> I.(m + Expr.int 1)));
  (* As a nested subquery post-processing (what the textual front end
     produces for embedded aggregates). *)
  check_q "select_sq with map_scalar"
    (ints [| 1; 2; 3 |]
    |> Query.select_sq (fun x ->
           Query.sum_int (Query.range ~start:0 ~count:4)
           |> Query.map_scalar (fun s -> I.(s + x))))

let test_empty_aggregates () =
  let e = ints [||] in
  check_sq "min empty" (Query.min_elt e);
  check_sq "max empty" (Query.max_elt e);
  check_sq "first empty" (Query.first e);
  check_sq "average empty" (Query.average (floats [||]));
  check_sq "min_by empty" (Query.min_by (fun x -> x) e);
  check_sq "min filtered-to-empty"
    (Query.min_elt (ints sample_ints |> Query.where (fun x -> I.(x > Expr.int 100))))

let test_nested_aggregate_positions () =
  (* Aggregates over nested queries: the outer Agg's update sits in the
     innermost loop (section 5's Sum-of-SelectMany example). *)
  check_sq "sum of cartesian"
    (Query.sum_int
       (ints [| 1; 2; 3 |]
       |> Query.select_many (fun x ->
              ints [| 10; 20 |] |> Query.select (fun y -> I.(x * y)))));
  check_sq "count of nested filtered"
    (Query.count
       (ints sample_ints
       |> Query.select_many (fun x ->
              Query.range ~start:0 ~count:5 |> Query.where (fun y -> I.(y < x)))));
  check_sq "min_by over subquery sums"
    (Query.min_by
       (fun p -> Expr.Snd p)
       (ints [| 3; 1; 2 |]
       |> Query.select_sq (fun x ->
              Query.range ~start:0 ~count:3
              |> Query.aggregate_full ~seed:(Expr.int 0)
                   ~step:(fun a y -> I.(a + (y * x)))
                   ~result:(fun a -> Expr.Pair (x, a)))))

(* Random pipelines over int arrays: all four implementations agree. *)
let random_query_agree =
  let open QCheck in
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun k q -> Query.select (fun x -> I.(x + Expr.int k)) q) Gen.small_int;
        Gen.map (fun k q -> Query.select (fun x -> I.(x * Expr.int Stdlib.(1 + (k mod 3)))) q) Gen.small_int;
        Gen.map
          (fun k q -> Query.where (fun x -> I.(x mod Expr.int Stdlib.(2 + (k mod 3)) = Expr.int 0)) q)
          Gen.small_int;
        Gen.map (fun n q -> Query.take (n mod 12) q) Gen.small_int;
        Gen.map (fun n q -> Query.skip (n mod 6) q) Gen.small_int;
        Gen.return (fun q -> Query.distinct q);
        Gen.return (fun q -> Query.rev q);
        Gen.return (fun q -> Query.order_by (fun x -> I.(x mod Expr.int 5)) q);
        Gen.return (fun q -> Query.materialize q);
        Gen.map
          (fun k q ->
            Query.take_while (fun x -> I.(not (x = Expr.int Stdlib.(k mod 7)))) q)
          Gen.small_int;
      ]
  in
  let gen = Gen.(pair (list_size (int_bound 4) op_gen) (array_size (int_bound 12) (int_bound 20))) in
  Test.make ~name:"random pipelines agree across all backends" ~count:20
    (make gen)
    (fun (ops, data) ->
      let q = List.fold_left (fun q op -> op q) (ints data) ops in
      let expected = Reference.to_list q in
      List.for_all
        (fun b -> Steno.to_list ~backend:b q = expected)
        backends)

let random_scalar_agree =
  let open QCheck in
  let wrap_gen =
    Gen.oneofl
      [
        (fun q -> `I (Query.sum_int q));
        (fun q -> `I (Query.count q));
        (fun q -> `I (Query.min_elt q));
        (fun q -> `I (Query.max_elt q));
        (fun q -> `B (Query.any q));
        (fun q -> `B (Query.exists (fun x -> I.(x > Expr.int 10)) q));
        (fun q -> `B (Query.for_all (fun x -> I.(x >= Expr.int 0)) q));
        (fun q -> `I (Query.first q));
      ]
  in
  let gen = Gen.(pair wrap_gen (array_size (int_bound 10) (int_bound 30))) in
  Test.make ~name:"random scalar queries agree across all backends" ~count:20
    (make gen)
    (fun (wrap, data) ->
      let base = ints data |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0)) in
      let agree : type s. s Query.sq -> bool =
       fun sq ->
        let expected =
          match Reference.scalar sq with
          | v -> Ok v
          | exception Iterator.No_such_element -> Error `Empty
        in
        List.for_all
          (fun b ->
            let got =
              match Steno.scalar ~backend:b sq with
              | v -> Ok v
              | exception Iterator.No_such_element -> Error `Empty
            in
            got = expected)
          backends
      in
      match wrap base with `I sq -> agree sq | `B sq -> agree sq)

let random_float_pipelines_agree =
  let open QCheck in
  let op_gen =
    Gen.oneof
      [
        Gen.map
          (fun k q ->
            Query.select (fun x -> I.(x +. Expr.float (float_of_int k))) q)
          Gen.small_int;
        Gen.map
          (fun k q ->
            Query.select
              (fun x -> I.(x *. Expr.float (float_of_int Stdlib.(1 + (k mod 3)))))
              q)
          Gen.small_int;
        Gen.return (fun q -> Query.select (fun x -> I.(x *. x)) q);
        Gen.map
          (fun k q ->
            Query.where
              (fun x -> I.(x > Expr.float (float_of_int Stdlib.(k mod 10))))
              q)
          Gen.small_int;
        Gen.map (fun n q -> Query.take (n mod 10) q) Gen.small_int;
        Gen.return (fun q -> Query.order_by (fun x -> x) q);
      ]
  in
  let gen =
    Gen.(
      pair
        (list_size (int_bound 4) op_gen)
        (array_size (int_bound 12) (map float_of_int (int_bound 40))))
  in
  Test.make ~name:"random float pipelines agree (sum)" ~count:20 (make gen)
    (fun (ops, data) ->
      let q = List.fold_left (fun q op -> op q) (floats data) ops in
      let sq = Query.sum_float q in
      let expected = Reference.scalar sq in
      List.for_all
        (fun b ->
          Float.abs (Steno.scalar ~backend:b sq -. expected)
          <= 1e-9 *. Float.max 1.0 (Float.abs expected))
        backends)

let () =
  Alcotest.run "backends"
    [
      ( "differential",
        [
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "stateful preds" `Quick test_stateful_preds;
          Alcotest.test_case "indexed ops" `Quick test_indexed_ops;
          Alcotest.test_case "positional aggregates" `Quick test_positional_aggregates;
          Alcotest.test_case "sources" `Quick test_sources;
          Alcotest.test_case "sinks" `Quick test_sinks;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "join strategies" `Quick test_join_strategies;
          Alcotest.test_case "sorted group agg" `Quick test_sorted_group_agg;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "map_scalar" `Quick test_map_scalar;
          Alcotest.test_case "empty aggregates" `Quick test_empty_aggregates;
          Alcotest.test_case "nested aggregates" `Quick test_nested_aggregate_positions;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest random_query_agree;
          QCheck_alcotest.to_alcotest random_scalar_agree;
          QCheck_alcotest.to_alcotest random_float_pipelines_agree;
        ] );
    ]
