(* Engine values: the bounded LRU plugin cache and the Native -> Fused
   compile fallback. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let with_native f = if Steno.native_available () then f () else ()

let engine ?(fallback = true) ?(optimize = true) ?compile_timeout_ms
    ?(cache_capacity = 128) ?(telemetry = Telemetry.null) backend =
  Steno.Engine.create
    {
      Steno.Engine.default_config with
      backend;
      fallback;
      optimize;
      compile_timeout_ms;
      cache_capacity;
      telemetry;
    }

(* A family of structurally distinct scalar queries: [nth_query k] sums
   x + 1 + ... + 1 (k + 1 additions), so each k compiles separately. *)
let nth_query k xs =
  let rec grow e n = if n = 0 then e else grow I.(e + Expr.int 1) (n - 1) in
  Query.sum_int (ints xs |> Query.select (fun x -> grow x (k + 1)))

(* LRU unit tests (no compiler needed). *)

let test_lru_eviction_order () =
  let c = Steno_lru.create ~capacity:2 () in
  Alcotest.(check bool) "no eviction on a" false (Steno_lru.add c "a" 1);
  Alcotest.(check bool) "no eviction on b" false (Steno_lru.add c "b" 2);
  (* Touch [a] so [b] becomes least recently used. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Steno_lru.find c "a");
  Alcotest.(check bool) "adding c evicts" true (Steno_lru.add c "c" 3);
  Alcotest.(check bool) "b was the LRU victim" false (Steno_lru.mem c "b");
  Alcotest.(check bool) "a survived" true (Steno_lru.mem c "a");
  Alcotest.(check bool) "c inserted" true (Steno_lru.mem c "c");
  Alcotest.(check int) "still at capacity" 2 (Steno_lru.length c)

let test_lru_stats () =
  let c = Steno_lru.create ~capacity:1 () in
  ignore (Steno_lru.find c "missing");
  ignore (Steno_lru.add c "x" 0);
  ignore (Steno_lru.find c "x");
  ignore (Steno_lru.add c "y" 1);
  (* evicts x *)
  ignore (Steno_lru.find c "x");
  (* miss *)
  let s = Steno_lru.stats c in
  Alcotest.(check int) "capacity" 1 s.Steno_lru.capacity;
  Alcotest.(check int) "entries" 1 s.Steno_lru.entries;
  Alcotest.(check int) "hits" 1 s.Steno_lru.hits;
  Alcotest.(check int) "misses" 2 s.Steno_lru.misses;
  Alcotest.(check int) "evictions" 1 s.Steno_lru.evictions;
  Steno_lru.clear c;
  let s = Steno_lru.stats c in
  Alcotest.(check int) "clear drops entries" 0 s.Steno_lru.entries;
  Alcotest.(check int) "counters survive clear" 1 s.Steno_lru.hits

let test_lru_zero_capacity () =
  let c = Steno_lru.create ~capacity:0 () in
  Alcotest.(check bool) "add is a no-op" false (Steno_lru.add c "a" 1);
  Alcotest.(check (option int)) "never stores" None (Steno_lru.find c "a");
  Alcotest.(check int) "empty" 0 (Steno_lru.length c)

(* Regression (PR 5): evicted values used to be dropped on the floor;
   now every value leaving the cache reaches [on_evict], in LRU order. *)
let test_lru_on_evict () =
  let released = ref [] in
  let on_evict k v = released := (k, v) :: !released in
  let c = Steno_lru.create ~on_evict ~capacity:2 () in
  ignore (Steno_lru.add c "a" 1);
  ignore (Steno_lru.add c "b" 2);
  Alcotest.(check (list (pair string int))) "nothing released" []
    (List.rev !released);
  (* Touch [a]; then adding two more keys must evict b first, then a. *)
  ignore (Steno_lru.find c "a");
  Alcotest.(check bool) "c evicts" true (Steno_lru.add c "c" 3);
  Alcotest.(check bool) "d evicts" true (Steno_lru.add c "d" 4);
  Alcotest.(check (list (pair string int)))
    "eviction order is LRU" [ "b", 2; "a", 1 ] (List.rev !released);
  (* Replacing an existing key's value releases the old value but is not
     an eviction. *)
  released := [];
  Alcotest.(check bool) "replace is not an eviction" false
    (Steno_lru.add c "d" 5);
  Alcotest.(check (list (pair string int))) "old value released" [ "d", 4 ]
    (List.rev !released);
  let s = Steno_lru.stats c in
  Alcotest.(check int) "two true evictions" 2 s.Steno_lru.evictions;
  (* Clear hands back the survivors, LRU to MRU. *)
  released := [];
  Steno_lru.clear c;
  Alcotest.(check (list (pair string int)))
    "clear releases survivors in LRU order" [ "c", 3; "d", 5 ]
    (List.rev !released);
  (* A disabled cache passes values straight through. *)
  released := [];
  let c0 = Steno_lru.create ~on_evict ~capacity:0 () in
  ignore (Steno_lru.add c0 "x" 9);
  Alcotest.(check (list (pair string int))) "disabled cache releases" [ "x", 9 ]
    (List.rev !released)

(* Engine-level cache accounting. *)

let test_engine_cache_stats () =
  with_native @@ fun () ->
  let eng = engine ~cache_capacity:2 Steno.Native in
  (* Three distinct queries through a capacity-2 cache: the third insert
     evicts the first. *)
  Alcotest.(check int) "q0" 8 (Steno.Engine.scalar eng (nth_query 0 [| 3; 3 |]));
  Alcotest.(check int) "q1" 10 (Steno.Engine.scalar eng (nth_query 1 [| 3; 3 |]));
  (* Re-run q1: structural cache hit. *)
  Alcotest.(check int) "q1 hit" 14 (Steno.Engine.scalar eng (nth_query 1 [| 5; 5 |]));
  Alcotest.(check int) "q2" 12 (Steno.Engine.scalar eng (nth_query 2 [| 3; 3 |]));
  let s = Steno.Engine.cache_stats eng in
  Alcotest.(check int) "entries bounded" 2 s.Steno.Engine.entries;
  Alcotest.(check int) "capacity" 2 s.Steno.Engine.capacity;
  Alcotest.(check int) "hits" 1 s.Steno.Engine.hits;
  Alcotest.(check int) "misses" 3 s.Steno.Engine.misses;
  Alcotest.(check int) "evictions" 1 s.Steno.Engine.evictions;
  (* q0 was evicted, so preparing it again misses and compiles afresh. *)
  Alcotest.(check int) "q0 again" 8 (Steno.Engine.scalar eng (nth_query 0 [| 3; 3 |]));
  let s = Steno.Engine.cache_stats eng in
  Alcotest.(check int) "recompiled after eviction" 4 s.Steno.Engine.misses;
  Steno.Engine.clear_cache eng;
  Alcotest.(check int) "clear empties" 0 (Steno.Engine.cache_size eng)

let test_engines_are_independent () =
  with_native @@ fun () ->
  let a = engine Steno.Native and b = engine Steno.Native in
  ignore (Steno.Engine.scalar a (nth_query 0 [| 1 |]));
  Alcotest.(check int) "a cached one plugin" 1 (Steno.Engine.cache_size a);
  Alcotest.(check int) "b untouched" 0 (Steno.Engine.cache_size b)

(* Fallback. *)

let without_compiler f =
  Dynload.disabled := true;
  Fun.protect ~finally:(fun () -> Dynload.disabled := false) f

let test_fallback_compiler_unavailable () =
  without_compiler @@ fun () ->
  let eng = engine Steno.Native in
  let sq = nth_query 0 [| 2; 5 |] in
  let p = Steno.Engine.prepare_scalar eng sq in
  let i = Steno.Prepared_scalar.compile_info p in
  Alcotest.(check bool) "requested native" true (i.Steno.requested = Steno.Native);
  Alcotest.(check bool) "ran fused" true (i.Steno.backend = Steno.Fused);
  Alcotest.(check bool) "reason recorded" true
    (i.Steno.fallback = Some Steno.Compiler_unavailable);
  (* Differential check: the fallback result matches a straight Fused run. *)
  Alcotest.(check int) "correct result via fallback"
    (Steno.scalar ~backend:Steno.Fused sq)
    (Steno.Prepared_scalar.run p)

let test_fallback_disabled_raises () =
  without_compiler @@ fun () ->
  let eng = engine ~fallback:false Steno.Native in
  Alcotest.(check bool) "strict engine raises" true
    (match Steno.Engine.scalar eng (nth_query 0 [| 1 |]) with
    | exception Dynload.Compilation_failed _ -> true
    | _ -> false)

let test_fallback_on_timeout () =
  with_native @@ fun () ->
  (* A zero deadline kills the compiler immediately; the engine must
     still answer, via Fused, and record the timeout. *)
  let eng = engine ~compile_timeout_ms:0 Steno.Native in
  let sq = nth_query 0 [| 4; 6 |] in
  let p = Steno.Engine.prepare_scalar eng sq in
  let i = Steno.Prepared_scalar.compile_info p in
  Alcotest.(check bool) "timeout recorded" true
    (i.Steno.fallback = Some (Steno.Compile_timeout 0));
  Alcotest.(check bool) "ran fused" true (i.Steno.backend = Steno.Fused);
  Alcotest.(check int) "correct result"
    (Steno.scalar ~backend:Steno.Fused sq)
    (Steno.Prepared_scalar.run p)

(* Exception parity: all backends raise the same exception for an empty
   sequence, whatever path (iterator, fused closure, compiled plugin with
   message translation) produced it. *)

let test_exception_parity_all_backends () =
  let backends =
    if Steno.native_available () then
      [ Steno.Linq; Steno.Fused; Steno.Native ]
    else [ Steno.Linq; Steno.Fused ]
  in
  List.iter
    (fun b ->
      let sq = Query.min_elt (ints [||]) in
      Alcotest.check_raises
        (Steno.backend_name b ^ " raises No_such_element")
        Iterator.No_such_element
        (fun () -> ignore (Steno.scalar ~backend:b sq)))
    backends

let () =
  Alcotest.run "engine"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "stats" `Quick test_lru_stats;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "on_evict callback" `Quick test_lru_on_evict;
        ] );
      ( "cache",
        [
          Alcotest.test_case "engine stats" `Quick test_engine_cache_stats;
          Alcotest.test_case "independence" `Quick test_engines_are_independent;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "compiler unavailable" `Quick
            test_fallback_compiler_unavailable;
          Alcotest.test_case "strict raises" `Quick test_fallback_disabled_raises;
          Alcotest.test_case "timeout" `Quick test_fallback_on_timeout;
          Alcotest.test_case "exception parity" `Quick
            test_exception_parity_all_backends;
        ] );
    ]
