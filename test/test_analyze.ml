(* explain_analyze differential suite: profiled execution must return
   exactly what the Reference list semantics returns (probes must not
   change results), the analysis row counts must match, and the
   per-operator call counts must exhibit the paper's claim — one closure
   call per row on Fused, zero indirect calls on Native. *)

module I = Expr.Infix

let backends =
  if Steno.native_available () then [ Steno.Linq; Steno.Fused; Steno.Native ]
  else [ Steno.Linq; Steno.Fused ]

let backend_name = function
  | Steno.Linq -> "linq"
  | Steno.Fused -> "fused"
  | Steno.Native -> "native"

let show : type a. a Ty.t -> a -> string =
 fun ty v -> Format.asprintf "%a" (Ty.pp_value ty) v

(* One profiled engine per backend, shared across the suite so native
   compilations hit the plugin cache between explain_analyze and the
   profiled preparations. *)
let engines =
  lazy
    (List.map
       (fun b ->
         ( b,
           Steno.Engine.create
             {
               Steno.Engine.default_config with
               backend = b;
               profile = true;
               metrics = Metrics.create ();
               telemetry = Telemetry.null;
             } ))
       backends)

let engine_for b = List.assoc b (Lazy.force engines)

let check_claim name b (ps : Steno.profile_snapshot) =
  List.iter
    (fun (op : Steno.op_profile) ->
      match b with
      | Steno.Fused ->
        if op.Steno.op_calls <> op.Steno.op_rows then
          Alcotest.failf "%s/fused %s: %d calls <> %d rows" name
            op.Steno.op_label op.Steno.op_calls op.Steno.op_rows
      | Steno.Native ->
        if op.Steno.op_calls <> 0 then
          Alcotest.failf "%s/native %s: %d indirect calls, want 0" name
            op.Steno.op_label op.Steno.op_calls
      | Steno.Linq ->
        (* Every yielded row costs at least one move_next call. *)
        if op.Steno.op_calls < op.Steno.op_rows then
          Alcotest.failf "%s/linq %s: %d calls < %d rows" name
            op.Steno.op_label op.Steno.op_calls op.Steno.op_rows)
    ps.Steno.ps_ops

let check_q name (q : 'a Query.t) =
  let ty = Ty.Array (Query.elem_ty q) in
  let expected = Array.of_list (Reference.to_list q) in
  List.iter
    (fun b ->
      let eng = engine_for b in
      let a = Steno.Engine.explain_analyze ~backend:b eng q in
      Alcotest.(check (option int))
        (Printf.sprintf "%s/%s result rows vs reference" name (backend_name b))
        (Some (Array.length expected))
        a.Steno.Engine.a_result_rows;
      let ps = a.Steno.Engine.a_profile in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s has operator points" name (backend_name b))
        true
        (ps.Steno.ps_ops <> []);
      Alcotest.(check int)
        (Printf.sprintf "%s/%s analysis ran once" name (backend_name b))
        1 ps.Steno.ps_runs;
      (* The last operator's output is the result stream. *)
      (match List.rev ps.Steno.ps_ops with
      | last :: _ when b <> Steno.Native ->
        Alcotest.(check int)
          (Printf.sprintf "%s/%s last-operator rows" name (backend_name b))
          (Array.length expected) last.Steno.op_rows
      | _ -> ());
      check_claim name b ps;
      (* A profiled preparation returns exactly the reference rows, on
         every run, and its snapshot accumulates. *)
      let p = Steno.Engine.prepare ~backend:b eng q in
      let got = Steno.Prepared.run p in
      if Ty.compare_values ty got expected <> 0 then
        Alcotest.failf "%s/%s profiled: got %s, want %s" name (backend_name b)
          (show ty got) (show ty expected);
      let got2 = Steno.Prepared.run p in
      if Ty.compare_values ty got2 expected <> 0 then
        Alcotest.failf "%s/%s profiled rerun: got %s, want %s" name
          (backend_name b) (show ty got2) (show ty expected);
      match Steno.Prepared.profile p with
      | None ->
        Alcotest.failf "%s/%s: profiled engine gave no snapshot" name
          (backend_name b)
      | Some ps ->
        Alcotest.(check int)
          (Printf.sprintf "%s/%s runs accumulate" name (backend_name b))
          2 ps.Steno.ps_runs)
    backends

let check_sq name (sq : 's Query.sq) =
  let ty = Query.scalar_ty sq in
  let expected =
    match Reference.scalar sq with
    | v -> Ok v
    | exception Iterator.No_such_element -> Error `Empty
  in
  List.iter
    (fun b ->
      let eng = engine_for b in
      (match expected with
      | Ok _ ->
        let a = Steno.Engine.explain_analyze_scalar ~backend:b eng sq in
        Alcotest.(check (option int))
          (Printf.sprintf "%s/%s scalar has no row count" name
             (backend_name b))
          None a.Steno.Engine.a_result_rows;
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s has operator points" name (backend_name b))
          true
          (a.Steno.Engine.a_profile.Steno.ps_ops <> []);
        check_claim name b a.Steno.Engine.a_profile
      | Error `Empty -> ());
      let p = Steno.Engine.prepare_scalar ~backend:b eng sq in
      let got =
        match Steno.Prepared_scalar.run p with
        | v -> Ok v
        | exception Iterator.No_such_element -> Error `Empty
      in
      match expected, got with
      | Ok e, Ok g ->
        if Ty.compare_values ty g e <> 0 then
          Alcotest.failf "%s/%s profiled: got %s, want %s" name
            (backend_name b) (show ty g) (show ty e)
      | Error `Empty, Error `Empty -> ()
      | Ok e, Error `Empty ->
        Alcotest.failf "%s/%s profiled raised on non-empty (want %s)" name
          (backend_name b) (show ty e)
      | Error `Empty, Ok g ->
        Alcotest.failf "%s/%s profiled got %s, want empty-sequence failure"
          name (backend_name b) (show ty g))
    backends

let ints xs = Query.of_array Ty.Int xs

let sample = [| 5; 3; 8; 1; 9; 2; 8; 3; 7; 0 |]

let test_pipelines () =
  check_q "where-select"
    (ints sample
    |> Query.where (fun x -> I.(x > Expr.int 2))
    |> Query.select (fun x -> I.(x * x)));
  check_q "skip-take"
    (ints sample |> Query.skip 2 |> Query.take 5);
  check_q "filtered to empty"
    (ints sample |> Query.where (fun x -> I.(x > Expr.int 100)));
  check_q "order_by then take"
    (ints sample |> Query.order_by (fun x -> x) |> Query.take 3);
  check_q "distinct" (ints sample |> Query.distinct)

let test_groups_and_joins () =
  check_q "group_by_agg sum"
    (ints sample
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 3))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x)));
  let pairs xs = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) xs in
  check_q "join"
    (pairs (Array.init 12 (fun i -> i mod 4, i))
    |> Query.join
         ~inner:(pairs (Array.init 8 (fun i -> i mod 4, 100 + i)))
         ~outer_key:(fun l -> Expr.Fst l)
         ~inner_key:(fun r -> Expr.Fst r)
         ~result:(fun l r -> Expr.Pair (Expr.Snd l, Expr.Snd r)));
  check_q "select_many"
    (ints [| 1; 2; 3 |]
    |> Query.select_many (fun x ->
           Query.range ~start:0 ~count:3
           |> Query.select (fun y -> I.(y + (x * Expr.int 10)))));
  check_q "where_sq exists"
    (ints sample
    |> Query.where_sq (fun x ->
           Query.of_array Ty.Int [| 2; 5; 8 |]
           |> Query.exists (fun y -> I.(y = x))))

let test_scalars () =
  check_sq "sum of squares of evens"
    (Query.sum_int
       (ints sample
       |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
       |> Query.select (fun x -> I.(x * x))));
  check_sq "count" (Query.count (ints sample));
  check_sq "exists (early exit)"
    (Query.exists (fun x -> I.(x = Expr.int 9)) (ints sample));
  check_sq "min empty raises through probes" (Query.min_elt (ints [||]))

let test_analysis_rendering () =
  let eng = engine_for Steno.Linq in
  let a =
    Steno.Engine.explain_analyze ~backend:Steno.Linq eng
      (ints sample |> Query.where (fun x -> I.(x > Expr.int 2)))
  in
  let s = Steno.Engine.analysis_to_string a in
  List.iter
    (fun needle ->
      let n = String.length needle and m = String.length s in
      let rec contains i =
        i + n <= m && (String.sub s i n = needle || contains (i + 1))
      in
      if not (contains 0) then
        Alcotest.failf "analysis_to_string missing %S in:\n%s" needle s)
    [ "backend:"; "rows"; "calls"; "where" ]

let () =
  Alcotest.run "analyze"
    [
      ( "differential",
        [
          Alcotest.test_case "pipelines" `Quick test_pipelines;
          Alcotest.test_case "groups and joins" `Quick test_groups_and_joins;
          Alcotest.test_case "scalars" `Quick test_scalars;
        ] );
      ( "rendering",
        [ Alcotest.test_case "table fields" `Quick test_analysis_rendering ] );
    ]
