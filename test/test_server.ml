(* The serving layer under Domain-level concurrency: single-flight
   prepare deduplication (exactly one compile for N concurrent identical
   prepares), sharded LRU integrity under hammering, session accounting
   and tenant labels, result-returning prepare errors, and Server
   admission control / load shedding. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let with_native f = if Steno.native_available () then f () else ()

let data = [| 5; 2; 8; 2; 11; 14; 3; 8; 0; 7; 12; 9 |]

(* A family of structurally distinct scalar queries: [nth_query k] sums
   x + 1 + ... + 1 (k + 1 additions), so each k compiles separately. *)
let nth_query k xs =
  let rec grow e n = if n = 0 then e else grow I.(e + Expr.int 1) (n - 1) in
  Query.sum_int (ints xs |> Query.select (fun x -> grow x (k + 1)))

let engine ?(backend = Steno.Fused) ?(strict = false) ?(fallback = true)
    ?(cache_capacity = 128) ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  Steno.Engine.create
    {
      Steno.Engine.default_config with
      backend;
      strict;
      fallback;
      cache_capacity;
      metrics;
    }

(* A spin barrier: domains pile up on it and release together, so the
   engine really sees concurrent calls (even on one core the released
   domains interleave inside the compile window). *)
let barrier n =
  let waiting = Atomic.make 0 in
  fun () ->
    Atomic.incr waiting;
    while Atomic.get waiting < n do
      Domain.cpu_relax ()
    done

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* {2 Single-flight} *)

(* N domains prepare the same query at once: the compile counter must
   read exactly 1, and every domain other than the leader either joined
   the in-flight compile or hit the cache the leader populated. *)
let test_single_flight_one_compile () =
  with_native @@ fun () ->
  let reg = Metrics.create () in
  let eng = engine ~backend:Steno.Native ~metrics:reg () in
  let n = 4 in
  let enter = barrier n in
  let doms =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            enter ();
            Steno.Engine.scalar eng (nth_query 0 data)))
  in
  let expected = Reference.scalar (nth_query 0 data) in
  List.iter
    (fun d -> Alcotest.(check int) "all domains agree" expected (Domain.join d))
    doms;
  let compiles =
    Metrics.counter_value
      (Metrics.counter reg "steno_compile" ~labels:[ "result", "ok" ])
  in
  Alcotest.(check int) "exactly one compile" 1 compiles;
  let dedup =
    Metrics.counter_value (Metrics.counter reg "steno_prepare_dedup")
  in
  let s = Steno.Engine.cache_stats eng in
  Alcotest.(check int) "every non-leader joined or hit the cache" (n - 1)
    (dedup + s.Steno.Engine.hits)

(* Distinct queries from several domains: each compiles independently
   and must agree with the reference evaluator. *)
let test_distinct_queries_differential () =
  with_native @@ fun () ->
  let eng = engine ~backend:Steno.Native ~cache_capacity:64 () in
  let n = 4 in
  let per = 2 in
  let enter = barrier n in
  let doms =
    List.init n (fun d ->
        Domain.spawn (fun () ->
            enter ();
            List.init per (fun j ->
                let k = (d * per) + j in
                Steno.Engine.scalar eng (nth_query k data))))
  in
  List.iteri
    (fun d dom ->
      List.iteri
        (fun j got ->
          let k = (d * per) + j in
          Alcotest.(check int)
            (Printf.sprintf "query %d agrees with Reference" k)
            (Reference.scalar (nth_query k data))
            got)
        (Domain.join dom))
    doms

(* {2 Sharded LRU under load} *)

(* Hammer a sharded cache from several domains with overlapping key
   sets; afterwards the structure must be untorn: bounded, stats
   consistent, every surviving value still correct. *)
let test_lru_sharded_hammer () =
  let cap = 32 in
  let c = Steno_lru.create ~shards:8 ~capacity:cap () in
  let n = 4 in
  let ops = 5_000 in
  let enter = barrier n in
  let doms =
    List.init n (fun d ->
        Domain.spawn (fun () ->
            enter ();
            for i = 0 to ops - 1 do
              let k = Printf.sprintf "key-%d" (i * (d + 7) mod 97) in
              match Steno_lru.find c k with
              | Some v -> if v <> String.length k then failwith "torn value"
              | None -> ignore (Steno_lru.add c k (String.length k))
            done))
  in
  List.iter Domain.join doms;
  let s = Steno_lru.stats c in
  Alcotest.(check bool) "bounded by capacity" true (Steno_lru.length c <= cap);
  Alcotest.(check int) "entries agrees with length" (Steno_lru.length c)
    s.Steno_lru.entries;
  Alcotest.(check int) "every lookup accounted" (n * ops)
    (s.Steno_lru.hits + s.Steno_lru.misses);
  for i = 0 to 96 do
    let k = Printf.sprintf "key-%d" i in
    match Steno_lru.find c k with
    | Some v -> Alcotest.(check int) "survivor intact" (String.length k) v
    | None -> ()
  done

(* {2 Result-returning prepare} *)

let div_zero_query =
  ints data
  |> Query.where (fun x -> I.(x / (Expr.int 5 - Expr.int 5) > Expr.int 0))

let test_try_prepare_check_error () =
  let strict = engine ~strict:true () in
  (match Steno.Engine.try_prepare strict div_zero_query with
  | Error (Steno.Engine.Check_error errs) ->
    Alcotest.(check bool) "carries the errors" true (errs <> [])
  | Ok _ -> Alcotest.fail "strict try_prepare accepted a division by zero"
  | Error e ->
    Alcotest.failf "wrong error: %s" (Steno.Engine.error_message e));
  (* The raising wrapper agrees with the result surface. *)
  (match Steno.Engine.prepare strict div_zero_query with
  | exception Steno.Check_failed _ -> ()
  | _ -> Alcotest.fail "prepare did not raise where try_prepare refused");
  (* A lax engine prepares the same query and only records diagnostics. *)
  let lax = engine () in
  match Steno.Engine.try_prepare lax div_zero_query with
  | Ok p ->
    Alcotest.(check bool) "diagnostics recorded" true
      (Steno.Prepared.diagnostics p <> [])
  | Error e ->
    Alcotest.failf "lax engine refused: %s" (Steno.Engine.error_message e)

let test_try_prepare_compile_failure () =
  let eng = engine ~backend:Steno.Native ~fallback:false () in
  let was = !Dynload.disabled in
  Dynload.disabled := true;
  Fun.protect ~finally:(fun () -> Dynload.disabled := was) @@ fun () ->
  match Steno.Engine.try_prepare_scalar eng (nth_query 0 data) with
  | Error (Steno.Engine.Compile_failure Steno.Compiler_unavailable) -> ()
  | Ok _ -> Alcotest.fail "prepared with the compiler disabled"
  | Error e ->
    Alcotest.failf "wrong error: %s" (Steno.Engine.error_message e)

(* {2 Sessions} *)

let test_session_stats_and_labels () =
  let reg = Metrics.create () in
  let eng = engine ~metrics:reg () in
  let alice =
    Steno.Session.create eng ~client_id:"alice" ~labels:[ "tier", "gold" ]
  in
  let q = ints data |> Query.where (fun x -> I.(x > Expr.int 4)) in
  let p = Steno.Session.prepare alice q in
  ignore (Steno.Prepared.run p);
  ignore (Steno.Prepared.run p);
  ignore (Steno.Session.to_array alice q);
  let st = Steno.Session.stats alice in
  Alcotest.(check int) "prepares" 2 st.Steno.Session.prepares;
  Alcotest.(check int) "runs" 3 st.Steno.Session.runs;
  Alcotest.(check bool) "run time accumulates" true
    (st.Steno.Session.run_ms >= 0.0);
  let rendered = Metrics.render reg in
  Alcotest.(check bool) "client label rendered" true
    (contains rendered {|client="alice"|});
  Alcotest.(check bool) "tenant label rendered" true
    (contains rendered {|tier="gold"|});
  Alcotest.(check bool) "runs counter rendered" true
    (contains rendered "steno_runs_total");
  (* Cache control through a session is engine-scoped. *)
  Alcotest.(check int) "session sees the engine cache"
    (Steno.Engine.cache_size eng)
    (Steno.Session.cache_size alice)

(* Config overrides on a session apply to its prepares without touching
   the engine or sibling sessions. *)
let test_session_overrides () =
  let eng = engine () in
  let strict_sess =
    Steno.Session.create eng ~client_id:"strict" ~strict:true
  in
  let lax_sess = Steno.Session.create eng ~client_id:"lax" in
  (match Steno.Session.try_prepare strict_sess div_zero_query with
  | Error (Steno.Engine.Check_error _) -> ()
  | Ok _ -> Alcotest.fail "strict session accepted a division by zero"
  | Error e ->
    Alcotest.failf "wrong error: %s" (Steno.Engine.error_message e));
  (match Steno.Session.try_prepare lax_sess div_zero_query with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "lax session refused: %s" (Steno.Engine.error_message e));
  match Steno.Engine.try_prepare eng div_zero_query with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "engine itself changed: %s" (Steno.Engine.error_message e)

(* {2 Server admission control} *)

let test_server_admission_rejects () =
  let eng = engine () in
  let srv = Server.create ~max_inflight:1 ~max_queue:0 eng in
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let blocker =
    Domain.spawn (fun () ->
        Server.submit srv ~client_id:"blocker" (fun _sess ->
            Atomic.set started true;
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            42))
  in
  (* Only proceed once the blocker holds the single execution slot. *)
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (match Server.submit srv ~client_id:"shed" (fun _ -> 0) with
  | Server.Rejected Server.Queue_full -> ()
  | Server.Rejected Server.Shutting_down ->
    Alcotest.fail "wrong rejection reason"
  | Server.Done _ | Server.Failed _ ->
    Alcotest.fail "second request must be shed, not run");
  Atomic.set gate true;
  (match Domain.join blocker with
  | Server.Done v -> Alcotest.(check int) "blocker completes" 42 v
  | _ -> Alcotest.fail "blocker did not complete");
  let st = Server.stats srv in
  Alcotest.(check int) "accepted" 1 st.Server.accepted;
  Alcotest.(check int) "completed" 1 st.Server.completed;
  Alcotest.(check int) "rejected" 1 st.Server.rejected;
  Alcotest.(check int) "inflight drained" 0 st.Server.inflight

let test_server_failure_and_shutdown () =
  let eng = engine () in
  let srv = Server.create ~max_inflight:2 ~max_queue:4 eng in
  (* A request that raises is contained as a value... *)
  (match Server.submit srv ~client_id:"bad" (fun _ -> failwith "boom") with
  | Server.Failed (Failure msg) ->
    Alcotest.(check string) "exception preserved" "boom" msg
  | _ -> Alcotest.fail "expected Failed");
  (* ...and the server keeps serving. *)
  (match
     Server.submit srv ~client_id:"ok" (fun sess ->
         Steno.Session.scalar sess (nth_query 0 data))
   with
  | Server.Done v ->
    Alcotest.(check int) "served after a failure"
      (Reference.scalar (nth_query 0 data))
      v
  | _ -> Alcotest.fail "expected Done");
  Server.shutdown srv;
  (match Server.submit srv ~client_id:"late" (fun _ -> 0) with
  | Server.Rejected Server.Shutting_down -> ()
  | _ -> Alcotest.fail "expected Shutting_down after shutdown");
  let st = Server.stats srv in
  Alcotest.(check int) "failed" 1 st.Server.failed;
  Alcotest.(check int) "completed" 1 st.Server.completed

let test_server_concurrent_load () =
  let eng = engine () in
  let srv = Server.create ~max_inflight:2 ~max_queue:64 eng in
  let n = 4 in
  let per = 8 in
  let expected = Array.fold_left ( + ) 0 data in
  let enter = barrier n in
  let doms =
    List.init n (fun d ->
        Domain.spawn (fun () ->
            enter ();
            let ok = ref 0 in
            for _i = 1 to per do
              match
                Server.submit srv
                  ~client_id:(Printf.sprintf "client-%d" d)
                  (fun sess ->
                    Steno.Session.scalar sess (Query.sum_int (ints data)))
              with
              | Server.Done v when v = expected -> incr ok
              | Server.Done v -> Alcotest.failf "wrong result %d" v
              | Server.Rejected _ -> ()
              | Server.Failed e -> raise e
            done;
            !ok))
  in
  let oks = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  let st = Server.stats srv in
  Alcotest.(check int) "completions observed = completions counted"
    st.Server.completed oks;
  Alcotest.(check int) "every request accounted" (n * per)
    (st.Server.completed + st.Server.failed + st.Server.rejected);
  Alcotest.(check int) "nothing left inflight" 0 st.Server.inflight;
  Alcotest.(check int) "nothing left queued" 0 st.Server.queued

let () =
  Alcotest.run "server"
    [
      ( "single-flight",
        [
          Alcotest.test_case "one compile for N prepares" `Quick
            test_single_flight_one_compile;
          Alcotest.test_case "distinct queries differential" `Quick
            test_distinct_queries_differential;
        ] );
      ( "lru",
        [
          Alcotest.test_case "sharded hammer" `Quick test_lru_sharded_hammer;
        ] );
      ( "try-prepare",
        [
          Alcotest.test_case "check error" `Quick test_try_prepare_check_error;
          Alcotest.test_case "compile failure" `Quick
            test_try_prepare_compile_failure;
        ] );
      ( "session",
        [
          Alcotest.test_case "stats and labels" `Quick
            test_session_stats_and_labels;
          Alcotest.test_case "config overrides" `Quick test_session_overrides;
        ] );
      ( "server",
        [
          Alcotest.test_case "admission rejects" `Quick
            test_server_admission_rejects;
          Alcotest.test_case "failure and shutdown" `Quick
            test_server_failure_and_shutdown;
          Alcotest.test_case "concurrent load" `Quick
            test_server_concurrent_load;
        ] );
    ]
