(* The simulated distributed engine: datasets, stages, exchange,
   distributed aggregation, and a full k-means assignment step checked
   against a sequential oracle. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let test_dataset () =
  let ds = Dataset.of_array ~parts:4 (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "parts" 4 (Dataset.num_partitions ds);
  Alcotest.(check int) "total" 10 (Dataset.total_length ds);
  Alcotest.(check (array int)) "collect" (Array.init 10 (fun i -> i))
    (Dataset.collect ds);
  let gen =
    Dataset.generate ~parts:3 ~per_partition:2 (fun ~part i -> (10 * part) + i)
  in
  Alcotest.(check (array int)) "generate" [| 0; 1; 10; 11; 20; 21 |]
    (Dataset.collect gen)

let test_map_partitions_and_metrics () =
  let c = Dryad.create ~workers:3 () in
  let ds = Dataset.of_array ~parts:5 (Array.init 20 (fun i -> i)) in
  let out = Dryad.map_partitions c (Array.map (fun x -> x * 2)) ds in
  Alcotest.(check (array int)) "mapped"
    (Array.init 20 (fun i -> 2 * i))
    (Dataset.collect out);
  let m = Dryad.metrics c in
  Alcotest.(check int) "stages" 1 m.Dryad.stages;
  Alcotest.(check int) "vertices" 5 m.Dryad.vertices;
  Dryad.reset_metrics c;
  Alcotest.(check int) "reset" 0 (Dryad.metrics c).Dryad.stages

let test_apply_query_matches_sequential () =
  let c = Dryad.create ~workers:4 () in
  let data = Array.init 200 (fun i -> i * 13 mod 50) in
  let ds = Dataset.of_array ~parts:6 data in
  let build part =
    ints part
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x + Expr.int 1))
  in
  let out = Dryad.apply_query c build ds in
  Alcotest.(check (array int)) "distributed = sequential"
    (Steno.to_array (build data))
    (Dataset.collect out)

let test_apply_scalar () =
  let c = Dryad.create ~workers:4 () in
  let data = Array.init 100 (fun i -> i) in
  let ds = Dataset.of_array ~parts:4 data in
  let partials = Dryad.apply_scalar c (fun part -> Query.sum_int (ints part)) ds in
  Alcotest.(check int) "partials count" 4 (Array.length partials);
  Alcotest.(check int) "total" (99 * 100 / 2) (Array.fold_left ( + ) 0 partials)

let test_exchange () =
  let c = Dryad.create ~workers:4 () in
  let data = Array.init 100 (fun i -> i) in
  let ds = Dataset.of_array ~parts:5 data in
  let out = Dryad.exchange c ~parts:3 ~key:(fun x -> x) ds in
  Alcotest.(check int) "3 output parts" 3 (Dataset.num_partitions out);
  Array.iteri
    (fun p part ->
      Array.iter (fun x -> Alcotest.(check int) "routed" (x mod 3) p) part)
    (Dataset.partitions out);
  let all = Dataset.collect out in
  Array.sort compare all;
  Alcotest.(check (array int)) "preserved" data all;
  Alcotest.(check int) "exchanged metric" 100 (Dryad.metrics c).Dryad.exchanged;
  let neg = Dataset.of_array ~parts:2 [| -1; -4; -9 |] in
  let out2 = Dryad.exchange c ~parts:4 ~key:(fun x -> x) neg in
  Alcotest.(check int) "neg total" 3 (Dataset.total_length out2)

let test_reduce_partials () =
  let c = Dryad.create ~workers:2 () in
  let ds =
    Dataset.of_partitions
      [| [| "a", 1; "b", 2 |]; [| "b", 3; "c", 4 |]; [| "a", 5 |] |]
  in
  let merged = Dryad.reduce_partials c ~combine:( + ) ds in
  Alcotest.(check (array (pair string int)))
    "merged in first-appearance order"
    [| "a", 6; "b", 5; "c", 4 |]
    merged

let test_group_agg_exchange () =
  let c = Dryad.create ~workers:3 () in
  let data = Array.init 300 (fun i -> i mod 17, 1) in
  let ds = Dataset.of_array ~parts:5 data in
  let out = Dryad.group_agg_exchange c ~parts:4 ~combine:( + ) ds in
  let all = Array.to_list (Dataset.collect out) in
  Alcotest.(check int) "17 keys" 17 (List.length all);
  List.iter
    (fun (k, n) ->
      let expected =
        Array.fold_left (fun a (k', v) -> if k = k' then a + v else a) 0 data
      in
      Alcotest.(check int) (Printf.sprintf "key %d" k) expected n)
    all

let test_distributed_sort () =
  let c = Dryad.create ~workers:4 () in
  let rng = Random.State.make [| 9 |] in
  let data = Array.init 5000 (fun _ -> Random.State.int rng 100000) in
  let ds = Dataset.of_array ~parts:7 data in
  let sorted = Dryad.sort_by c ~key:(fun x -> x) ds in
  let collected = Dataset.collect sorted in
  let expected = Array.copy data in
  Array.sort compare expected;
  Alcotest.(check (array int)) "globally sorted" expected collected;
  (* Partition boundaries respect the range partitioning. *)
  let parts = Dataset.partitions sorted in
  Array.iteri
    (fun i part ->
      if i > 0 && Array.length part > 0 then
        Array.iter
          (fun prev_max ->
            Array.iter
              (fun x -> Alcotest.(check bool) "ranges ordered" true (prev_max <= x))
              (if Array.length part > 0 then [| part.(0) |] else [||]))
          (if Array.length parts.(i - 1) > 0 then
             [| parts.(i - 1).(Array.length parts.(i - 1) - 1) |]
           else [||]))
    parts;
  (* Keyed sort on structured elements. *)
  let pairs = Array.init 1000 (fun i -> (i * 7919) mod 503, i) in
  let sorted_pairs =
    Dataset.collect
      (Dryad.sort_by c ~key:fst (Dataset.of_array ~parts:5 pairs))
  in
  let keys = Array.map fst sorted_pairs in
  let sorted_keys = Array.map fst pairs in
  Array.sort compare sorted_keys;
  Alcotest.(check (array int)) "pair keys sorted" sorted_keys keys;
  (* Single partition and empty datasets degrade gracefully. *)
  Alcotest.(check (array int)) "single partition" [| 1; 2; 3 |]
    (Dataset.collect
       (Dryad.sort_by c ~key:(fun x -> x) (Dataset.of_array ~parts:1 [| 3; 1; 2 |])));
  Alcotest.(check (array int)) "empty" [||]
    (Dataset.collect
       (Dryad.sort_by c ~key:(fun x -> x) (Dataset.of_array ~parts:4 ([||] : int array))))

(* One full distributed k-means assignment + partial-sum step, checked
   against a plain sequential oracle (the workload of Fig. 14). *)
let test_kmeans_step () =
  let d = 3 and k = 4 and n = 240 in
  let rng = Random.State.make [| 42 |] in
  let points =
    Array.init n (fun _ -> Array.init d (fun _ -> Random.State.float rng 10.0))
  in
  let centroids = Array.init k (fun j -> Array.copy points.(j * 7)) in
  (* Sequential oracle. *)
  let dist2 p c =
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      let dx = p.(i) -. c.(i) in
      s := !s +. (dx *. dx)
    done;
    !s
  in
  let assign p =
    let best = ref 0 and bestd = ref infinity in
    for j = 0 to k - 1 do
      let dj = dist2 p centroids.(j) in
      if dj < !bestd then begin
        bestd := dj;
        best := j
      end
    done;
    !best
  in
  let expected_sums = Array.make_matrix k d 0.0 in
  let expected_counts = Array.make k 0 in
  Array.iter
    (fun p ->
      let j = assign p in
      expected_counts.(j) <- expected_counts.(j) + 1;
      for i = 0 to d - 1 do
        expected_sums.(j).(i) <- expected_sums.(j).(i) +. p.(i)
      done)
    points;
  (* Distributed version via the shared library job (both distance
     modes), checked against the oracle. *)
  let c = Dryad.create ~workers:4 () in
  let ds = Dataset.of_array ~parts:6 points in
  let backends =
    if Steno.native_available () then [ Steno.Linq; Steno.Native ]
    else [ Steno.Linq ]
  in
  List.iter
    (fun backend ->
      List.iter
        (fun distance ->
          let partials =
            Dryad.apply_query c ~backend
              (Kmeans.assignment_query ~distance ~centroids)
              ds
          in
          let merged =
            Dryad.reduce_partials c
              ~combine:(fun (s1, n1) (s2, n2) ->
                Array.mapi (fun i x -> x +. s2.(i)) s1, n1 + n2)
              partials
          in
          let nonempty_clusters =
            List.length
              (List.filter (fun n -> n > 0) (Array.to_list expected_counts))
          in
          Alcotest.(check int) "clusters found" nonempty_clusters
            (Array.length merged);
          Array.iter
            (fun (j, (sums, cnt)) ->
              Alcotest.(check int)
                (Printf.sprintf "count cluster %d" j)
                expected_counts.(j) cnt;
              Array.iteri
                (fun i s ->
                  Alcotest.(check (float 1e-6))
                    (Printf.sprintf "sum cluster %d dim %d" j i)
                    expected_sums.(j).(i) s)
                sums)
            merged)
        [ Kmeans.Expression; Kmeans.Udf ])
    backends

let test_kmeans_run_converges () =
  (* End-to-end Kmeans.run on separated blobs recovers the centers. *)
  let d = 2 and k = 3 and n = 300 in
  let rng = Random.State.make [| 7 |] in
  let centers = [| [| 0.0; 0.0 |]; [| 50.0; 0.0 |]; [| 0.0; 50.0 |] |] in
  let points =
    Array.init n (fun i ->
        let c = centers.(i mod k) in
        Array.init d (fun j -> c.(j) +. Random.State.float rng 1.0))
  in
  let cluster = Dryad.create ~workers:2 () in
  let ds = Dataset.of_array ~parts:4 points in
  let final = Kmeans.run cluster ~iterations:8 ~k ds in
  let nearest c =
    Array.fold_left
      (fun best t ->
        let dist =
          sqrt
            (Array.fold_left ( +. ) 0.0
               (Array.mapi (fun i x -> (x -. t.(i)) ** 2.0) c))
        in
        Float.min best dist)
      infinity centers
  in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "centroid near a true center" true (nearest c < 2.0))
    final

let () =
  Alcotest.run "dryad"
    [
      ("dataset", [ Alcotest.test_case "basics" `Quick test_dataset ]);
      ( "stages",
        [
          Alcotest.test_case "map_partitions" `Quick test_map_partitions_and_metrics;
          Alcotest.test_case "apply_query" `Quick test_apply_query_matches_sequential;
          Alcotest.test_case "apply_scalar" `Quick test_apply_scalar;
          Alcotest.test_case "exchange" `Quick test_exchange;
          Alcotest.test_case "distributed sort" `Quick test_distributed_sort;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "reduce_partials" `Quick test_reduce_partials;
          Alcotest.test_case "group_agg_exchange" `Quick test_group_agg_exchange;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "one step" `Slow test_kmeans_step;
          Alcotest.test_case "converges" `Slow test_kmeans_run_converges;
        ] );
    ]
