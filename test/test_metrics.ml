(* Steno.Metrics: log-scale bucket construction, histogram bucket
   boundary semantics, lock-free shard merging under concurrent domains,
   and the OpenMetrics text renderer (golden output). *)

let test_log_buckets () =
  Alcotest.(check (array (float 1e-9)))
    "powers of two"
    [| 1.0; 2.0; 4.0; 8.0 |]
    (Metrics.log_buckets ~lo:1.0 ~hi:8.0 ());
  Alcotest.(check (array (float 1e-9)))
    "base 10"
    [| 0.1; 1.0; 10.0; 100.0 |]
    (Metrics.log_buckets ~base:10.0 ~lo:0.1 ~hi:100.0 ());
  let db = Metrics.default_buckets in
  Alcotest.(check bool)
    "default buckets strictly increase from 1us to >= 1s" true
    (Array.length db > 1
    && db.(0) = 0.001
    && db.(Array.length db - 1) >= 1000.0
    && Array.for_all
         (fun i -> db.(i) > db.(i - 1))
         (Array.init (Array.length db - 1) (fun i -> i + 1)));
  let rejects lo hi base =
    match Metrics.log_buckets ~base ~lo ~hi () with
    | _ -> Alcotest.failf "accepted lo=%g hi=%g base=%g" lo hi base
    | exception Invalid_argument _ -> ()
  in
  rejects 0.0 1.0 2.0;
  rejects 1.0 1.0 2.0;
  rejects 1.0 8.0 1.0

let test_bucket_boundaries () =
  let t = Metrics.create () in
  let h = Metrics.histogram t "lat" ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 4.0; 100.0 ];
  let snap = Metrics.histogram_snapshot h in
  (* [le] semantics: an observation equal to a bound lands in that
     bucket; cumulative counts never decrease and end at the total. *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "cumulative buckets"
    [ 1.0, 2; 2.0, 3; 4.0, 4; 8.0, 4; infinity, 5 ]
    snap.Metrics.hs_buckets;
  Alcotest.(check int) "count" 5 snap.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "sum" 107.0 snap.Metrics.hs_sum;
  match Metrics.histogram t "bad" ~buckets:[| 2.0; 2.0 |] with
  | _ -> Alcotest.fail "accepted non-increasing buckets"
  | exception Invalid_argument _ -> ()

let test_shard_merge_domains () =
  let t = Metrics.create () in
  let c = Metrics.counter t "hits" in
  let h = Metrics.histogram t "obs" ~buckets:[| 10.0 |] in
  let per_domain = 50_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.inc c;
              Metrics.observe h 1.0
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    "counter merges all shards" (4 * per_domain) (Metrics.counter_value c);
  let snap = Metrics.histogram_snapshot h in
  Alcotest.(check int)
    "histogram count merges" (4 * per_domain) snap.Metrics.hs_count;
  Alcotest.(check (float 1.0))
    "histogram sum merges"
    (float_of_int (4 * per_domain))
    snap.Metrics.hs_sum

let test_series_identity () =
  let t = Metrics.create () in
  let a =
    Metrics.counter t "reqs" ~labels:[ "method", "get"; "code", "200" ]
  in
  (* Same label set, different order: same series. *)
  let b =
    Metrics.counter t "reqs" ~labels:[ "code", "200"; "method", "get" ]
  in
  Metrics.inc a;
  Metrics.inc b;
  Alcotest.(check int) "one series" 2 (Metrics.counter_value a);
  (match Metrics.gauge t "reqs" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  match Metrics.add a (-1) with
  | () -> Alcotest.fail "negative add accepted"
  | exception Invalid_argument _ -> ()

let test_gauge () =
  let t = Metrics.create () in
  let g = Metrics.gauge t "temp" in
  Metrics.set_gauge g 21.5;
  Metrics.set_gauge g 19.0;
  Alcotest.(check (float 1e-9)) "last write wins" 19.0 (Metrics.gauge_value g)

let test_render_golden () =
  let t = Metrics.create () in
  let c =
    Metrics.counter t "requests" ~help:"Requests served"
      ~labels:[ "method", "get" ]
  in
  Metrics.add c 3;
  let g = Metrics.gauge t "temp" ~help:"Temperature" in
  Metrics.set_gauge g 21.5;
  let h = Metrics.histogram t "latency" ~help:"Latency" ~buckets:[| 1.0; 2.0 |] in
  Metrics.observe h 0.5;
  Metrics.observe h 3.0;
  let expected =
    "# HELP latency Latency\n\
     # TYPE latency histogram\n\
     latency_bucket{le=\"1\"} 1\n\
     latency_bucket{le=\"2\"} 1\n\
     latency_bucket{le=\"+Inf\"} 2\n\
     latency_sum 3.5\n\
     latency_count 2\n\
     # HELP requests Requests served\n\
     # TYPE requests counter\n\
     requests_total{method=\"get\"} 3\n\
     # HELP temp Temperature\n\
     # TYPE temp gauge\n\
     temp 21.5\n\
     # EOF\n"
  in
  Alcotest.(check string) "OpenMetrics text" expected (Metrics.render t)

let test_render_escaping () =
  let t = Metrics.create () in
  Metrics.inc
    (Metrics.counter t "odd" ~help:"odd labels"
       ~labels:[ "q", "say \"hi\"\\n" ]);
  let out = Metrics.render t in
  Alcotest.(check bool)
    "escaped quote and backslash" true
    (let needle = {|odd_total{q="say \"hi\"\\n"} 1|} in
     let rec contains i =
       i + String.length needle <= String.length out
       && (String.sub out i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0)

let test_probe_points () =
  let pr = Metrics.Probe.create () in
  let a = Metrics.Probe.point pr "src" in
  let b = Metrics.Probe.point pr "where" in
  a.Metrics.Probe.pt_rows <- 10;
  b.Metrics.Probe.pt_rows <- 4;
  Alcotest.(check (list (pair string int)))
    "creation order and indices"
    [ "src", 0; "where", 1 ]
    (List.map
       (fun p -> p.Metrics.Probe.pt_label, p.Metrics.Probe.pt_index)
       (Metrics.Probe.points pr))

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "log buckets" `Quick test_log_buckets;
          Alcotest.test_case "bucket boundaries" `Quick
            test_bucket_boundaries;
          Alcotest.test_case "shard merge x4 domains" `Quick
            test_shard_merge_domains;
          Alcotest.test_case "series identity" `Quick test_series_identity;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "render",
        [
          Alcotest.test_case "golden" `Quick test_render_golden;
          Alcotest.test_case "escaping" `Quick test_render_escaping;
        ] );
      "probe", [ Alcotest.test_case "points" `Quick test_probe_points ];
    ]
