(* PR 8: the tracing and ops plane.  Cross-domain trace propagation
   (tier promotion on the pool and single-flight leader notes carry the
   originating trace_id), ring head-drop accounting and deterministic
   sampling, slow-query capture with plan/tier outcomes, the JSON
   escaping shared by the telemetry sink and the Chrome exporter, eager
   registration of the server metric families, and the HTTP admin
   endpoints (byte-identical /metrics). *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let with_native f = if Steno.native_available () then f () else ()

let data = Array.init 64 (fun i -> i land 7)

let sumsq xs = Query.sum_int (ints xs |> Query.select (fun x -> I.(x * x)))

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* A spin barrier, as in test_server: domains pile up and release
   together so the engine really sees concurrent calls. *)
let barrier n =
  let waiting = Atomic.make 0 in
  fun () ->
    Atomic.incr waiting;
    while Atomic.get waiting < n do
      Domain.cpu_relax ()
    done

(* {2 Ring, sampling, drop accounting} *)

(* A capacity-2 ring keeps exactly 2 traces; the 4 overwritten heads are
   counted both on the tracer and as [steno_trace_dropped_total]. *)
let test_ring_head_drop () =
  let m = Metrics.create () in
  let t = Trace.create ~ring:2 ~metrics:m () in
  for i = 1 to 6 do
    Trace.with_trace t "r" (fun () -> ignore i)
  done;
  Alcotest.(check int) "ring keeps capacity" 2 (List.length (Trace.traces t));
  Alcotest.(check int) "head drops counted" 4 (Trace.dropped t);
  let rendered = Metrics.render m in
  Alcotest.(check bool)
    "drop counter exported" true
    (contains rendered "steno_trace_dropped_total{ring=\"trace\"} 4");
  List.iter
    (fun tr -> Alcotest.(check bool) "complete" true (Trace.complete tr))
    (Trace.traces t)

(* [sample] is deterministic 1-in-k on the root sequence: half of 10
   roots are retained, and unsampled roots still run their body. *)
let test_sampling () =
  let t = Trace.create ~sample:0.5 ~ring:64 ~metrics:(Metrics.create ()) () in
  let hits = ref 0 in
  for _ = 1 to 10 do
    Alcotest.(check int) "body runs regardless" 7
      (Trace.with_trace t "r" (fun () -> incr hits; 7))
  done;
  Alcotest.(check int) "every body ran" 10 !hits;
  Alcotest.(check int) "1-in-2 retained" 5 (List.length (Trace.traces t))

(* [sample = 0.0] disables recording outright — including the very first
   request, whose sequence number (0) is divisible by anything. *)
let test_zero_sample () =
  let t = Trace.create ~sample:0.0 ~ring:64 ~metrics:(Metrics.create ()) () in
  for i = 1 to 3 do
    Alcotest.(check int) "body still runs" i
      (Trace.with_trace t "r" (fun () -> i))
  done;
  Alcotest.(check int) "nothing traced" 0 (List.length (Trace.traces t))

(* Sampled traces must spread over all ring shards: at sample 0.5 the
   retained sequence numbers are all even, which must not alias onto
   half (or fewer) of the shards and shrink the effective capacity.  A
   ring of 64 holds all 64 sampled traces out of 128 roots. *)
let test_sampled_ring_capacity () =
  let t = Trace.create ~sample:0.5 ~ring:64 ~metrics:(Metrics.create ()) () in
  for _ = 1 to 128 do
    Trace.with_trace t "r" (fun () -> ())
  done;
  Alcotest.(check int) "full capacity used" 64 (List.length (Trace.traces t));
  Alcotest.(check int) "no aliasing drops" 0 (Trace.dropped t)

(* Re-annotating a key replaces its value instead of accumulating: a
   hot loop annotating [tier] every run keeps one entry, newest wins. *)
let test_annotate_replaces () =
  let t = Trace.create ~metrics:(Metrics.create ()) () in
  Trace.with_trace t "r" (fun () ->
      for i = 1 to 100 do
        Trace.annotate t [ ("tier", if i < 100 then "fused" else "native") ]
      done;
      Trace.annotate t [ ("plan", "scan") ]);
  match Trace.traces t with
  | [ tr ] ->
    let attrs = Trace.attrs tr in
    Alcotest.(check int) "one entry per key" 2 (List.length attrs);
    Alcotest.(check (option string))
      "newest value wins" (Some "native")
      (List.assoc_opt "tier" attrs)
  | l -> Alcotest.failf "expected one trace, got %d" (List.length l)

(* {2 JSON escaping (shared helper)} *)

let nasty = "q\"uo\\te\nline\ttab\rcr\x01ctl"

(* The exact escaping contract of the shared helper, and that both the
   exporter output and the attribute round-trip stay clean: no raw
   quote-in-value or control bytes in the Chrome JSON. *)
let test_json_escape () =
  Alcotest.(check string)
    "escape contract" "q\\\"uo\\\\te\\nline\\ttab\\rcr\\u0001ctl"
    (Telemetry.json_escape nasty);
  let t = Trace.create ~metrics:(Metrics.create ()) () in
  Trace.with_trace t "root" ~attrs:[ ("v", nasty) ] (fun () ->
      Trace.instant t "evil \"name\"" ~attrs:[ ("k", nasty) ] ());
  let out = Trace.export_chrome t in
  Alcotest.(check bool)
    "escaped value present" true
    (contains out "q\\\"uo\\\\te\\nline");
  Alcotest.(check bool) "raw value absent" false (contains out "q\"uo");
  String.iter
    (fun c ->
      if Char.code c < 0x20 && c <> '\n' then
        Alcotest.failf "raw control byte %d in export" (Char.code c))
    out;
  Alcotest.(check bool) "object form" true (contains out "\"traceEvents\"");
  Alcotest.(check bool) "root carries trace_id" true (contains out "trace_id")

(* {2 Single-flight leader note} *)

(* The leader's note (its trace id, in engine use) reaches followers: a
   leader blocks inside the flight, a second domain joins, and the
   join returns [led = false] with the leader's note. *)
let test_flight_leader_note () =
  let fl : (string, int) Steno_flight.t = Steno_flight.create () in
  let entered = Atomic.make false in
  let release = Atomic.make false in
  let leader =
    Domain.spawn (fun () ->
        Steno_flight.run ~note:"trace-A" fl "k" (fun () ->
            Atomic.set entered true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            42))
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  let follower =
    Domain.spawn (fun () ->
        Steno_flight.run ~note:"trace-B" fl "k" (fun () -> 99))
  in
  (* Give the follower time to join the in-flight call, then release. *)
  Unix.sleepf 0.05;
  Atomic.set release true;
  let led_l, note_l, v_l = Domain.join leader in
  let led_f, note_f, v_f = Domain.join follower in
  Alcotest.(check bool) "leader led" true led_l;
  Alcotest.(check (option string)) "leader has no note" None note_l;
  Alcotest.(check int) "leader value" 42 v_l;
  if not led_f then begin
    (* The expected interleaving: the follower joined the leader. *)
    Alcotest.(check (option string))
      "follower sees leader note" (Some "trace-A") note_f;
    Alcotest.(check int) "follower shares value" 42 v_f
  end
  else
    (* The follower arrived after the leader finished and became a
       fresh leader itself — legal, just not the hammered path. *)
    Alcotest.(check int) "late follower recomputed" 99 v_f

(* {2 Cross-domain propagation under a 4-domain hammer} *)

let promotions m =
  let v r =
    Metrics.counter_value
      (Metrics.counter m "steno_tier_promotions" ~labels:[ ("result", r) ])
  in
  v "ok" + v "failed"

let await_promotions m n =
  let deadline = Unix.gettimeofday () +. 10. in
  while promotions m < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done

(* Four domains submit the same scalar through the server on a tiering
   engine with threshold 1: every request's run triggers a background
   promotion compile on the pool.  Each resulting trace must contain the
   [tier.promote] span recorded on a *different* domain than its root —
   the context hop through [Domain_pool.async ?ctx] — plus the plan and
   tier annotations; any [flight.follow] instants must cite the trace id
   of another trace in the ring. *)
let test_cross_domain_propagation () =
  with_native @@ fun () ->
  let m = Metrics.create () in
  let cfg =
    Steno.Config.(
      default |> with_metrics m
      |> with_tracing ~sample:1.0 ~slow_ms:0.0
      |> with_tiering ~threshold:1)
  in
  let eng = Steno.Engine.create cfg in
  let srv = Server.create eng in
  let b = barrier 4 in
  let doms =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            b ();
            Server.submit srv
              ~client_id:(Printf.sprintf "d%d" i)
              (fun s -> Steno.Session.scalar s (sumsq data))))
  in
  let expect = Array.fold_left (fun a x -> a + (x * x)) 0 data in
  List.iter
    (fun d ->
      match Domain.join d with
      | Server.Done v -> Alcotest.(check int) "result" expect v
      | Server.Rejected r ->
        Alcotest.failf "rejected: %s" (Server.reject_reason_message r)
      | Server.Failed e -> raise e)
    doms;
  (* Promotions run in the background; wait for all four to land. *)
  await_promotions m 4;
  let tracer = Steno.Engine.tracer eng in
  let traces = Trace.traces tracer in
  let requests = List.filter (fun tr -> Trace.root tr = "request") traces in
  Alcotest.(check int) "one trace per request" 4 (List.length requests);
  let ids = List.map Trace.id traces in
  List.iter
    (fun tr ->
      Alcotest.(check bool) "complete" true (Trace.complete tr);
      let attrs = Trace.attrs tr in
      Alcotest.(check bool) "plan attr" true (List.mem_assoc "plan" attrs);
      Alcotest.(check bool) "tier attr" true (List.mem_assoc "tier" attrs);
      Alcotest.(check bool) "client attr" true (List.mem_assoc "client" attrs);
      let root =
        match Trace.find_span tr "request" with
        | Some sp -> sp
        | None -> Alcotest.fail "missing request root span"
      in
      (match Trace.find_span tr "tier.promote" with
      | None -> Alcotest.failf "trace %s missing tier.promote" (Trace.id tr)
      | Some sp ->
        Alcotest.(check bool)
          "promotion attributed across domains" true
          (sp.Trace.sp_domain <> root.Trace.sp_domain));
      List.iter
        (fun sp ->
          if sp.Trace.sp_name = "flight.follow" then
            match List.assoc_opt "leader_trace" sp.Trace.sp_attrs with
            | None -> Alcotest.fail "flight.follow without leader_trace"
            | Some lid ->
              Alcotest.(check bool)
                "leader trace is another ring entry" true
                (List.mem lid ids && lid <> Trace.id tr))
        (Trace.spans tr))
    requests;
  (* With slow_ms = 0 every request also lands in the slow ring, and the
     report carries the per-span breakdown. *)
  Alcotest.(check bool) "slow ring populated" true (Trace.slow tracer <> []);
  let report = Trace.slow_report tracer in
  Alcotest.(check bool) "report has plan" true (contains report "plan");
  Alcotest.(check bool)
    "report has promote span" true
    (contains report "tier.promote");
  (* The Chrome export of the ring must pair run and promote spans under
     the same trace (pid). *)
  let chrome = Trace.export_chrome tracer in
  Alcotest.(check bool) "export has run span" true (contains chrome "\"run\"");
  Alcotest.(check bool)
    "export has promote span" true
    (contains chrome "tier.promote")

(* {2 Slow-query ring without native (portable path)} *)

(* With a zero threshold, a plain fused request lands in the slow ring
   with the plan, tier, client and outcome annotations attached. *)
let test_slow_ring_attrs () =
  let m = Metrics.create () in
  (* Tiering (and so the tier annotation) engages only on [Native];
     keep the default backend and gate that one check below. *)
  let cfg =
    Steno.Config.(
      default |> with_metrics m
      |> with_tracing ~sample:1.0 ~slow_ms:0.0
      |> with_tiering ~threshold:1_000_000)
  in
  let eng = Steno.Engine.create cfg in
  let srv = Server.create eng in
  (match
     Server.submit srv ~client_id:"tenant-a" (fun s ->
         Steno.Session.scalar s (sumsq data))
   with
  | Server.Done v ->
    Alcotest.(check int)
      "result" (Array.fold_left (fun a x -> a + (x * x)) 0 data) v
  | _ -> Alcotest.fail "submit did not complete");
  match Trace.slow (Steno.Engine.tracer eng) with
  | [] -> Alcotest.fail "slow ring empty"
  | tr :: _ ->
    let attrs = Trace.attrs tr in
    let get k =
      match List.assoc_opt k attrs with
      | Some v -> v
      | None -> Alcotest.failf "missing %s attr" k
    in
    if Steno.native_available () then
      (* Below threshold nothing promoted: still on the warm tier. *)
      Alcotest.(check string) "tier" "fused" (get "tier");
    Alcotest.(check string) "client" "tenant-a" (get "client");
    Alcotest.(check string) "outcome" "ok" (get "outcome");
    Alcotest.(check bool) "plan" true (String.length (get "plan") > 0);
    Alcotest.(check bool)
      "run span recorded" true
      (Trace.find_span tr "run" <> None)

(* {2 Eager server metric families} *)

(* [Server.create] must register its request and queue-wait families so
   the first scrape shows them before any request arrives. *)
let test_eager_server_families () =
  let m = Metrics.create () in
  let eng =
    Steno.Engine.create
      Steno.Config.(default |> with_backend Fused |> with_metrics m)
  in
  let _srv = Server.create eng in
  let r = Metrics.render m in
  Alcotest.(check bool)
    "requests family typed" true
    (contains r "# TYPE steno_server_requests counter");
  Alcotest.(check bool)
    "queue family typed" true
    (contains r "# TYPE steno_server_queue_ms histogram")

(* {2 Ops endpoints} *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes b chunk 0 n;
      drain ()
    end
  in
  drain ();
  let s = Buffer.contents b in
  let rec find i =
    if i + 4 > String.length s then
      Alcotest.failf "no header/body separator in response to %s" path
    else if String.sub s i 4 = "\r\n\r\n" then i
    else find (i + 1)
  in
  let sep = find 0 in
  let status =
    match String.index_opt s '\r' with
    | Some j -> String.sub s 0 j
    | None -> s
  in
  (status, String.sub s (sep + 4) (String.length s - sep - 4))

(* /healthz answers, /metrics is byte-identical to [Metrics.render] of
   the engine registry, /traces is the Chrome export, unknown paths 404
   — all against an ephemeral port read back from [Ops.port]. *)
let test_ops_endpoints () =
  let m = Metrics.create () in
  let eng =
    Steno.Engine.create
      Steno.Config.(
        default |> with_backend Fused |> with_metrics m
        |> with_tracing ~sample:1.0)
  in
  let tracer = Steno.Engine.tracer eng in
  Trace.with_trace tracer "request" ~attrs:[ ("client", "ops") ] (fun () ->
      Trace.instant tracer "cache.hit" ());
  let o = Ops.start ~port:0 eng in
  Fun.protect ~finally:(fun () -> Ops.stop o) @@ fun () ->
  let port = Ops.port o in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  let status, body = http_get port "/healthz" in
  Alcotest.(check bool) "healthz 200" true (contains status "200");
  Alcotest.(check string) "healthz body" "ok\n" body;
  let status, body = http_get port "/metrics" in
  Alcotest.(check bool) "metrics 200" true (contains status "200");
  Alcotest.(check string)
    "metrics byte-identical to render" (Metrics.render m) body;
  let status, body = http_get port "/traces" in
  Alcotest.(check bool) "traces 200" true (contains status "200");
  Alcotest.(check string)
    "traces is the Chrome export" (Trace.export_chrome tracer) body;
  Alcotest.(check bool) "export has the trace" true (contains body "trace_id");
  let status, _ = http_get port "/slow" in
  Alcotest.(check bool) "slow 200" true (contains status "200");
  let status, _ = http_get port "/nope" in
  Alcotest.(check bool) "unknown path 404" true (contains status "404")

(* A client that disconnects before reading its response must not kill
   the process: [start] ignores SIGPIPE so the doomed write surfaces as
   [EPIPE] inside the accept loop, and the next request is served. *)
let test_ops_client_abort () =
  let eng =
    Steno.Engine.create
      Steno.Config.(
        default |> with_backend Fused |> with_metrics (Metrics.create ()))
  in
  let o = Ops.start ~port:0 eng in
  Fun.protect ~finally:(fun () -> Ops.stop o) @@ fun () ->
  let old = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Alcotest.(check bool)
    "sigpipe ignored after start" true
    (old = Sys.Signal_ignore);
  let port = Ops.port o in
  for _ = 1 to 3 do
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req = "GET /metrics HTTP/1.0\r\n\r\n" in
    ignore (Unix.write_substring fd req 0 (String.length req));
    (* Abort without reading the response; RST any buffered bytes. *)
    Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
    Unix.close fd
  done;
  let status, body = http_get port "/healthz" in
  Alcotest.(check bool) "still serving" true (contains status "200");
  Alcotest.(check string) "healthz body" "ok\n" body

(* Stopping is idempotent and releases the port for immediate rebinding. *)
let test_ops_stop () =
  let eng =
    Steno.Engine.create
      Steno.Config.(
        default |> with_backend Fused |> with_metrics (Metrics.create ()))
  in
  let o = Ops.start ~port:0 eng in
  let port = Ops.port o in
  Ops.stop o;
  Ops.stop o;
  let o2 = Ops.start ~port eng in
  Alcotest.(check int) "rebound same port" port (Ops.port o2);
  Ops.stop o2

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "head drop accounting" `Quick test_ring_head_drop;
          Alcotest.test_case "deterministic sampling" `Quick test_sampling;
          Alcotest.test_case "zero sample disabled" `Quick test_zero_sample;
          Alcotest.test_case "sampled shard spread" `Quick
            test_sampled_ring_capacity;
          Alcotest.test_case "annotate replaces" `Quick test_annotate_replaces;
        ] );
      ( "export",
        [ Alcotest.test_case "json escaping" `Quick test_json_escape ] );
      ( "propagation",
        [
          Alcotest.test_case "flight leader note" `Quick
            test_flight_leader_note;
          Alcotest.test_case "4-domain hammer" `Quick
            test_cross_domain_propagation;
        ] );
      ( "slow",
        [ Alcotest.test_case "attrs captured" `Quick test_slow_ring_attrs ] );
      ( "server",
        [
          Alcotest.test_case "eager families" `Quick
            test_eager_server_families;
        ] );
      ( "ops",
        [
          Alcotest.test_case "endpoints" `Quick test_ops_endpoints;
          Alcotest.test_case "client abort survived" `Quick
            test_ops_client_abort;
          Alcotest.test_case "stop idempotent" `Quick test_ops_stop;
        ] );
    ]
