(* Query AST construction, typing and structure. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let test_elem_ty () =
  let q = ints [| 1 |] in
  Alcotest.(check string) "src" "int" (Ty.to_string (Query.elem_ty q));
  let q2 = Query.select (fun x -> Expr.Pair (x, x)) q in
  Alcotest.(check string) "select" "(int * int)" (Ty.to_string (Query.elem_ty q2));
  let q3 = Query.group_by (fun x -> I.(x mod Expr.int 2)) q in
  Alcotest.(check string) "group_by" "(int * (int array))"
    (Ty.to_string (Query.elem_ty q3));
  let q4 =
    Query.group_by_agg ~key:(fun x -> x)
      ~seed:(Expr.float 0.0)
      ~step:(fun acc _ -> acc)
      q
  in
  Alcotest.(check string) "group_by_agg" "(int * float)"
    (Ty.to_string (Query.elem_ty q4));
  Alcotest.(check string) "scalar sum" "int"
    (Ty.to_string (Query.scalar_ty (Query.sum_int q)));
  Alcotest.(check string) "scalar avg" "float"
    (Ty.to_string (Query.scalar_ty (Query.average (Query.of_array Ty.Float [||]))))

let test_structure () =
  let q =
    ints [| 1; 2 |]
    |> Query.where (fun x -> I.(x > Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in
  Alcotest.(check int) "operator_count" 3 (Query.operator_count q);
  Alcotest.(check int) "depth" 1 (Query.depth q);
  let nested = Query.select_many (fun _ -> ints [| 1 |]) q in
  Alcotest.(check int) "nested count" 5 (Query.operator_count nested);
  Alcotest.(check int) "nested depth" 2 (Query.depth nested);
  let sq = Query.sum_int nested in
  Alcotest.(check int) "scalar count" 6 (Query.sq_operator_count sq)

let test_pp () =
  let q =
    ints [| 1 |]
    |> Query.where (fun x -> I.(x > Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in
  Alcotest.(check string) "chain" "Src<int> -> Where -> Select -> Ret"
    (Format.asprintf "%a" Query.pp q);
  let sq = Query.sum_int q in
  Alcotest.(check string) "scalar chain"
    "Src<int> -> Where -> Select -> Sum -> Ret"
    (Format.asprintf "%a" Query.pp_sq sq);
  let nested =
    ints [| 1 |] |> Query.select_many (fun _ -> Query.range ~start:0 ~count:3)
  in
  Alcotest.(check string) "nested chain"
    "Src<int> -> SelectMany[Src:Range] -> Ret"
    (Format.asprintf "%a" Query.pp nested)

let test_reference_smoke () =
  let q =
    ints [| 1; 2; 3; 4 |]
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x * Expr.int 10))
  in
  Alcotest.(check (list int)) "reference" [ 20; 40 ] (Reference.to_list q);
  Alcotest.(check (list int)) "linq" [ 20; 40 ] (Linq.to_list q);
  Alcotest.(check int) "scalar" 60 (Reference.scalar (Query.sum_int q))

let () =
  Alcotest.run "query"
    [
      ( "typing", [ Alcotest.test_case "elem_ty" `Quick test_elem_ty ] );
      ( "structure",
        [
          Alcotest.test_case "counts" `Quick test_structure;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("semantics", [ Alcotest.test_case "smoke" `Quick test_reference_smoke ]);
    ]
