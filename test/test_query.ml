(* Query AST construction, typing and structure. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let test_elem_ty () =
  let q = ints [| 1 |] in
  Alcotest.(check string) "src" "int" (Ty.to_string (Query.elem_ty q));
  let q2 = Query.select (fun x -> Expr.Pair (x, x)) q in
  Alcotest.(check string) "select" "(int * int)" (Ty.to_string (Query.elem_ty q2));
  let q3 = Query.group_by (fun x -> I.(x mod Expr.int 2)) q in
  Alcotest.(check string) "group_by" "(int * (int array))"
    (Ty.to_string (Query.elem_ty q3));
  let q4 =
    Query.group_by_agg ~key:(fun x -> x)
      ~seed:(Expr.float 0.0)
      ~step:(fun acc _ -> acc)
      q
  in
  Alcotest.(check string) "group_by_agg" "(int * float)"
    (Ty.to_string (Query.elem_ty q4));
  Alcotest.(check string) "scalar sum" "int"
    (Ty.to_string (Query.scalar_ty (Query.sum_int q)));
  Alcotest.(check string) "scalar avg" "float"
    (Ty.to_string (Query.scalar_ty (Query.average (Query.of_array Ty.Float [||]))))

let test_structure () =
  let q =
    ints [| 1; 2 |]
    |> Query.where (fun x -> I.(x > Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in
  Alcotest.(check int) "operator_count" 3 (Query.operator_count q);
  Alcotest.(check int) "depth" 1 (Query.depth q);
  let nested = Query.select_many (fun _ -> ints [| 1 |]) q in
  Alcotest.(check int) "nested count" 5 (Query.operator_count nested);
  Alcotest.(check int) "nested depth" 2 (Query.depth nested);
  let sq = Query.sum_int nested in
  Alcotest.(check int) "scalar count" 6 (Query.sq_operator_count sq)

let test_pp () =
  let q =
    ints [| 1 |]
    |> Query.where (fun x -> I.(x > Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in
  Alcotest.(check string) "chain" "Src<int> -> Where -> Select -> Ret"
    (Format.asprintf "%a" Query.pp q);
  let sq = Query.sum_int q in
  Alcotest.(check string) "scalar chain"
    "Src<int> -> Where -> Select -> Sum -> Ret"
    (Format.asprintf "%a" Query.pp_sq sq);
  let nested =
    ints [| 1 |] |> Query.select_many (fun _ -> Query.range ~start:0 ~count:3)
  in
  Alcotest.(check string) "nested chain"
    "Src<int> -> SelectMany[Src:Range] -> Ret"
    (Format.asprintf "%a" Query.pp nested)

let test_reference_smoke () =
  let q =
    ints [| 1; 2; 3; 4 |]
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x * Expr.int 10))
  in
  Alcotest.(check (list int)) "reference" [ 20; 40 ] (Reference.to_list q);
  Alcotest.(check (list int)) "linq" [ 20; 40 ] (Linq.to_list q);
  Alcotest.(check int) "scalar" 60 (Reference.scalar (Query.sum_int q))

(* Regression (PR 5): Reference.group_list was quadratic (List.mem +
   append + per-key filter).  The single-pass rewrite must preserve the
   exact grouping semantics — first-appearance key order, per-key
   insertion order — and make a large, key-heavy corpus tractable. *)
let test_reference_grouping () =
  let q =
    ints [| 5; 3; 5; 1; 3; 5 |] |> Query.group_by (fun x -> x)
  in
  let groups =
    List.map (fun (k, vs) -> k, Array.to_list vs) (Reference.to_list q)
  in
  Alcotest.(check (list (pair int (list int))))
    "first-appearance order, per-key insertion order"
    [ 5, [ 5; 5; 5 ]; 3, [ 3; 3 ]; 1, [ 1 ] ]
    groups;
  (* 50k rows over 10k keys: instant single-pass, minutes when
     quadratic. *)
  let n = 50_000 in
  let big = Array.init n (fun i -> (i * 7919) mod 10_000) in
  let agg =
    ints big
    |> Query.group_by_agg
         ~key:(fun x -> x)
         ~seed:(Expr.int 0)
         ~step:(fun acc _ -> I.(acc + Expr.int 1))
  in
  let sizes = Reference.to_list agg in
  Alcotest.(check int) "all keys present" 10_000 (List.length sizes);
  Alcotest.(check int) "sizes sum to rows" n
    (List.fold_left (fun a (_, c) -> a + c) 0 sizes)

let () =
  Alcotest.run "query"
    [
      ( "typing", [ Alcotest.test_case "elem_ty" `Quick test_elem_ty ] );
      ( "structure",
        [
          Alcotest.test_case "counts" `Quick test_structure;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "smoke" `Quick test_reference_smoke;
          Alcotest.test_case "grouping" `Quick test_reference_grouping;
        ] );
    ]
