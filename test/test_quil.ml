(* QUIL: canonicalization (Table 1), the grammar recognizer (Fig. 4),
   and symbol strings. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let sym_q q = Quil.symbol_string (Canon.of_query q)

let sym_s sq = Quil.symbol_string (Canon.of_scalar sq)

let test_table1_mapping () =
  let src = ints [| 1 |] in
  Alcotest.(check string) "src" "Src Ret" (sym_q src);
  Alcotest.(check string) "select -> Trans" "Src Trans Ret"
    (sym_q (Query.select (fun x -> x) src));
  Alcotest.(check string) "where -> Pred" "Src Pred Ret"
    (sym_q (Query.where (fun x -> I.(x > Expr.int 0)) src));
  Alcotest.(check string) "take -> Pred" "Src Pred Ret"
    (sym_q (Query.take 3 src));
  Alcotest.(check string) "skip -> Pred" "Src Pred Ret"
    (sym_q (Query.skip 3 src));
  Alcotest.(check string) "group_by -> Sink" "Src Sink:GroupBy Ret"
    (sym_q (Query.group_by (fun x -> x) src));
  Alcotest.(check string) "order_by -> Sink" "Src Sink:OrderBy Ret"
    (sym_q (Query.order_by (fun x -> x) src));
  Alcotest.(check string) "distinct -> Sink" "Src Sink:Distinct Ret"
    (sym_q (Query.distinct src));
  Alcotest.(check string) "sum -> Agg" "Src Agg Ret" (sym_s (Query.sum_int src));
  Alcotest.(check string) "min -> Agg" "Src Agg Ret" (sym_s (Query.min_elt src));
  Alcotest.(check string) "last -> Agg" "Src Agg Ret" (sym_s (Query.last src));
  Alcotest.(check string) "element_at -> Pred Agg" "Src Pred Agg Ret"
    (sym_s (Query.element_at 2 src));
  Alcotest.(check string) "select_i -> Trans" "Src Trans Ret"
    (sym_q (Query.select_i (fun i x -> I.(i + x)) src));
  Alcotest.(check string) "where_i -> Pred" "Src Pred Ret"
    (sym_q (Query.where_i (fun i _ -> I.(i mod Expr.int 2 = Expr.int 0)) src));
  Alcotest.(check string) "range src" "Src Ret"
    (sym_q (Query.range ~start:0 ~count:3));
  Alcotest.(check string) "repeat src" "Src Ret"
    (sym_q (Query.repeat Ty.Int 5 ~count:3))

let test_nested_symbols () =
  let src = ints [| 1 |] in
  let nested = Query.select_many (fun _ -> Query.range ~start:0 ~count:2) src in
  Alcotest.(check string) "select_many" "Src [Src Ret] Ret" (sym_q nested);
  let scalar_nested =
    Query.select_sq (fun _ -> Query.sum_int (Query.range ~start:0 ~count:2)) src
  in
  Alcotest.(check string) "select_q" "Src Trans[Src Agg Ret] Ret"
    (sym_q scalar_nested);
  let pred_nested =
    Query.where_sq (fun x -> Query.exists (fun y -> I.(y = x)) (ints [| 1 |])) src
  in
  Alcotest.(check string) "where_q" "Src Pred[Src Agg Ret] Ret"
    (sym_q pred_nested)

let test_join_desugars_to_nested () =
  let orders = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) [| 1, 10 |] in
  let people = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) [| 1, 99 |] in
  let joined =
    Query.join ~inner:orders
      ~outer_key:(fun p -> Expr.Fst p)
      ~inner_key:(fun o -> Expr.Fst o)
      ~result:(fun p o -> Expr.Pair (Expr.Snd p, Expr.Snd o))
      people
  in
  (* Equi-join lowers to the specialized hash join by default, and to the
     paper's SelectMany-over-filtered-inner form when disabled (§5). *)
  Alcotest.(check string) "join (hash)" "Src HashJoin[Src Ret] Ret"
    (sym_q joined);
  Canon.hash_join_enabled := false;
  let nested_sym = sym_q joined in
  Canon.hash_join_enabled := true;
  Alcotest.(check string) "join (nested)" "Src [Src Pred Ret] Ret" nested_sym

let test_validate_accepts_canonical () =
  let check_ok chain =
    match Quil.validate chain with
    | Ok () -> ()
    | Error e -> Alcotest.failf "expected valid chain: %s" e
  in
  check_ok (Canon.of_query (ints [| 1 |] |> Query.select (fun x -> x)));
  check_ok (Canon.of_scalar (Query.sum_int (ints [| 1 |])));
  check_ok
    (Canon.of_query
       (ints [| 1 |]
       |> Query.group_by (fun x -> x)
       |> Query.select (fun g -> Expr.Fst g)));
  check_ok
    (Canon.of_scalar
       (Query.sum_int
          (Query.select_many (fun _ -> Query.range ~start:0 ~count:2) (ints [| 1 |]))))

let dummy_agg : Quil.agg =
  {
    Quil.accs =
      [
        {
          Quil.seed = (fun _ _ -> "0");
          step = (fun ~accs:_ ~elem:_ _ _ -> "0");
          first = None;
        };
      ];
    first_element = false;
    require_nonempty = false;
    early_exit = None;
    result = (fun ~accs:_ _ _ -> "0");
  }

let dummy_src : Quil.src =
  Quil.Src_range { start = (fun _ _ -> "0"); count = (fun _ _ -> "1") }

let test_validate_rejects_agg_midchain () =
  let chain =
    {
      Quil.src = dummy_src;
      ops =
        [
          Quil.Agg dummy_agg;
          Quil.Trans { Quil.bind1 = (fun _ e -> e); body1 = (fun _ _ -> "x") };
        ];
    }
  in
  match Quil.validate chain with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "Agg mid-chain must be rejected"

let test_validate_rejects_collection_in_trans_position () =
  let inner = { Quil.src = dummy_src; ops = [] } in
  let chain =
    {
      Quil.src = dummy_src;
      ops =
        [
          Quil.Trans_nested
            { Quil.bind_outer_s = (fun _ e -> e); inner_s = inner };
        ];
    }
  in
  match Quil.validate chain with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "collection sub-query in Trans position must be rejected"

let test_validate_rejects_scalar_selectmany () =
  let inner = { Quil.src = dummy_src; ops = [ Quil.Agg dummy_agg ] } in
  let chain =
    {
      Quil.src = dummy_src;
      ops =
        [
          Quil.Nested
            { Quil.bind_outer = (fun _ e -> e); inner; result2 = None };
        ];
    }
  in
  match Quil.validate chain with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "scalar sub-query under SelectMany must be rejected"

let test_returns_scalar () =
  Alcotest.(check bool) "scalar" true
    (Quil.returns_scalar (Canon.of_scalar (Query.sum_int (ints [| 1 |]))));
  Alcotest.(check bool) "collection" false
    (Quil.returns_scalar (Canon.of_query (ints [| 1 |])))

let test_operator_count () =
  let q =
    ints [| 1 |]
    |> Query.where (fun x -> I.(x > Expr.int 0))
    |> Query.select_many (fun _ -> Query.range ~start:0 ~count:2)
  in
  (* Src, Pred, Nested + inner Src = 4 *)
  Alcotest.(check int) "count" 4 (Quil.operator_count (Canon.of_query q))

let test_default_literal () =
  Alcotest.(check (option string)) "int" (Some "0") (Canon.default_literal Ty.Int);
  Alcotest.(check (option string)) "pair" (Some "(0., false)")
    (Canon.default_literal (Ty.Pair (Ty.Float, Ty.Bool)));
  Alcotest.(check (option string)) "array" (Some "[||]")
    (Canon.default_literal (Ty.Array Ty.Int));
  Alcotest.(check (option string)) "func" None
    (Canon.default_literal (Ty.Func (Ty.Int, Ty.Int)))

(* Operator specialization (section 4.3). *)

let count_query () =
  ints [| 1; 2; 3; 4 |]
  |> Query.group_by (fun x -> I.(x mod Expr.int 2))
  |> Query.select (fun g -> Expr.Pair (Expr.Fst g, Expr.Array_length (Expr.Snd g)))

let test_specialize_count () =
  Alcotest.(check string) "count pattern specializes"
    "Src Sink:GroupByAggregate Trans Ret"
    (sym_q (count_query ()));
  Alcotest.(check (list (pair int int))) "values preserved"
    (Reference.to_list (count_query ()))
    (List.map (fun x -> x) (Reference.to_list (Specialize.query (count_query ()))))

let test_specialize_fold () =
  let q =
    ints [| 1; 2; 3; 4; 5 |]
    |> Query.group_by (fun x -> I.(x mod Expr.int 2))
    |> Query.select_sq (fun g ->
           Query.Sum_int (Query.Of_array (Ty.Int, Expr.Snd g)))
  in
  Alcotest.(check string) "fold pattern specializes"
    "Src Sink:GroupByAggregate Trans Ret" (sym_q q);
  Alcotest.(check (list int)) "sums preserved"
    (Reference.to_list q)
    (Reference.to_list (Specialize.query q))

let test_specialize_fold_with_key_result () =
  (* Result selector mentioning the group key. *)
  let q =
    ints [| 1; 2; 3; 4; 5; 6 |]
    |> Query.group_by (fun x -> I.(x mod Expr.int 3))
    |> Query.select_sq (fun g ->
           Query.Aggregate_full
             ( Query.Of_array (Ty.Int, Expr.Snd g),
               Expr.int 0,
               Expr.lam2 "a" Ty.Int "x" Ty.Int (fun a x -> I.(a + x)),
               Expr.lam "a" Ty.Int (fun a -> Expr.Pair (Expr.Fst g, a)) ))
  in
  Alcotest.(check string) "specializes" "Src Sink:GroupByAggregate Trans Ret"
    (sym_q q);
  Alcotest.(check (list (pair int int))) "key+sum preserved"
    (Reference.to_list q)
    (Reference.to_list (Specialize.query q))

let test_specialize_does_not_apply () =
  (* Using the raw group values (not just an aggregate) blocks it. *)
  let q =
    ints [| 1; 2; 3 |]
    |> Query.group_by (fun x -> I.(x mod Expr.int 2))
    |> Query.select (fun g -> Expr.Snd g)
  in
  Alcotest.(check string) "stays a plain GroupBy" "Src Sink:GroupBy Trans Ret"
    (sym_q q)

let test_specialize_flag () =
  Specialize.enabled := false;
  let sym = sym_q (count_query ()) in
  Specialize.enabled := true;
  Alcotest.(check string) "disabled leaves GroupBy" "Src Sink:GroupBy Trans Ret"
    sym

let test_sorted_group () =
  let sorted_grouped =
    ints [| 5; 2; 8; 2; 5 |]
    |> Query.order_by (fun x -> I.(x mod Expr.int 3))
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 3))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x))
  in
  Alcotest.(check string) "sorted sink chosen"
    "Src Sink:OrderBy Sink:GroupByAggregateSorted Ret"
    (sym_q sorted_grouped);
  (* A different key keeps the hash sink. *)
  let different_key =
    ints [| 1 |]
    |> Query.order_by (fun x -> x)
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 3))
         ~seed:(Expr.int 0)
         ~step:(fun acc _ -> acc)
  in
  Alcotest.(check string) "different key keeps hash sink"
    "Src Sink:OrderBy Sink:GroupByAggregate Ret"
    (sym_q different_key);
  Canon.sorted_group_enabled := false;
  let sym = sym_q sorted_grouped in
  Canon.sorted_group_enabled := true;
  Alcotest.(check string) "flag off keeps hash sink"
    "Src Sink:OrderBy Sink:GroupByAggregate Ret" sym

let test_alpha_equal () =
  let k1 = Expr.lam "x" Ty.Int (fun x -> I.(x mod Expr.int 3)) in
  let k2 = Expr.lam "y" Ty.Int (fun y -> I.(y mod Expr.int 3)) in
  let k3 = Expr.lam "x" Ty.Int (fun x -> I.(x mod Expr.int 4)) in
  Alcotest.(check bool) "renamed params equal" true (Expr.alpha_equal_lam k1 k2);
  Alcotest.(check bool) "different constant differs" false
    (Expr.alpha_equal_lam k1 k3);
  let arr = [| 1.0 |] in
  let c1 = Expr.lam "x" Ty.Int (fun x -> Expr.Infix.((Expr.capture (Ty.Array Ty.Float) arr).%(x))) in
  let c2 = Expr.lam "x" Ty.Int (fun x -> Expr.Infix.((Expr.capture (Ty.Array Ty.Float) arr).%(x))) in
  let c3 = Expr.lam "x" Ty.Int (fun x -> Expr.Infix.((Expr.capture (Ty.Array Ty.Float) [| 1.0 |]).%(x))) in
  Alcotest.(check bool) "same captured value equal" true (Expr.alpha_equal_lam c1 c2);
  Alcotest.(check bool) "distinct captured arrays differ" false
    (Expr.alpha_equal_lam c1 c3)

let () =
  Alcotest.run "quil"
    [
      ( "canon",
        [
          Alcotest.test_case "table1" `Quick test_table1_mapping;
          Alcotest.test_case "nested" `Quick test_nested_symbols;
          Alcotest.test_case "join" `Quick test_join_desugars_to_nested;
          Alcotest.test_case "default_literal" `Quick test_default_literal;
        ] );
      ( "grammar",
        [
          Alcotest.test_case "accepts canonical" `Quick test_validate_accepts_canonical;
          Alcotest.test_case "rejects Agg mid-chain" `Quick test_validate_rejects_agg_midchain;
          Alcotest.test_case "rejects collection Trans" `Quick
            test_validate_rejects_collection_in_trans_position;
          Alcotest.test_case "rejects scalar SelectMany" `Quick
            test_validate_rejects_scalar_selectmany;
          Alcotest.test_case "returns_scalar" `Quick test_returns_scalar;
          Alcotest.test_case "operator_count" `Quick test_operator_count;
        ] );
      ( "specialize",
        [
          Alcotest.test_case "count pattern" `Quick test_specialize_count;
          Alcotest.test_case "fold pattern" `Quick test_specialize_fold;
          Alcotest.test_case "fold with key result" `Quick
            test_specialize_fold_with_key_result;
          Alcotest.test_case "does not apply" `Quick test_specialize_does_not_apply;
          Alcotest.test_case "flag" `Quick test_specialize_flag;
          Alcotest.test_case "sorted group" `Quick test_sorted_group;
          Alcotest.test_case "alpha equality" `Quick test_alpha_equal;
        ] );
    ]
