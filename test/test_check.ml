(* Steno.Check: the QUIL well-formedness PDA (gallery acceptance and
   malformed-chain rejection), expression purity/interval analysis, the
   plan linter's rule codes, the parallelizability classifier, and the
   engine integration (strict mode, diagnostics accessors, interval
   rewrites, rewrite-log dedup). *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let data = [| 5; 2; 8; 2; 11; 14; 3; 8; 0; 7; 12; 9 |]

let even x = I.(x mod Expr.int 2 = Expr.int 0)

let fused_engine ?(strict = false) ?(optimize = true) () =
  Steno.Engine.(
    create { default_config with backend = Fused; strict; optimize })

let codes ds = List.map (fun d -> d.Check.d_code) ds

(* {2 PDA acceptance} *)

(* The chain of every canonicalizable query must be accepted, the
   accepting kind must agree with [Quil.returns_scalar], and the PDA
   must agree with [Quil.validate] (two independent implementations of
   the grammar). *)
let accepted name chain =
  (match Check.Pda.accepts chain with
  | Ok k ->
    Alcotest.(check bool)
      (name ^ " kind") (Quil.returns_scalar chain)
      (k = Check.Pda.Scalar)
  | Error e -> Alcotest.failf "%s: PDA rejected: %s" name e);
  match Quil.validate chain with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: validate rejected: %s" name e

let test_pda_gallery () =
  accepted "even-squares"
    (Canon.of_query (ints data |> Query.where even |> Query.select (fun x -> I.(x * x))));
  accepted "pipeline"
    (Canon.of_query
       (ints data |> Query.where even
       |> Query.select (fun x -> I.(x + Expr.int 1))
       |> Query.skip 1 |> Query.take 4 |> Query.rev));
  accepted "order-take"
    (Canon.of_query
       (ints data
       |> Query.order_by ~order:Query.Descending (fun x -> x)
       |> Query.take 5));
  accepted "group-by"
    (Canon.of_query
       (ints data
       |> Query.group_by (fun x -> I.(x mod Expr.int 4))
       |> Query.select (fun g -> Expr.Pair (Expr.Fst g, Expr.Array_length (Expr.Snd g)))));
  accepted "join"
    (Canon.of_query
       (ints data
       |> Query.join ~inner:(ints data)
            ~outer_key:(fun x -> x)
            ~inner_key:(fun y -> y)
            ~result:(fun x y -> I.(x + y))));
  accepted "select-many"
    (Canon.of_query
       (ints data
       |> Query.select_many (fun x ->
              ints [| 1; 2; 3 |] |> Query.select (fun y -> I.(x * y)))));
  accepted "nested-scalar-pred"
    (Canon.of_query
       (ints data
       |> Query.where_sq (fun x ->
              ints data |> Query.exists (fun y -> I.(y = x)))));
  accepted "sum" (Canon.of_scalar (ints data |> Query.sum_int));
  accepted "min-by"
    (Canon.of_scalar
       (Query.range ~start:0 ~count:8
       |> Query.min_by (fun j -> I.(j * j - j))));
  accepted "exists"
    (Canon.of_scalar (ints data |> Query.exists (fun x -> I.(x = Expr.int 14))))

let test_pda_tokens () =
  let open Check.Pda in
  let ok name toks kind =
    match run toks with
    | Ok k -> Alcotest.(check bool) name true (k = kind)
    | Error e -> Alcotest.failf "%s rejected: %s" name e
  in
  let rejected name toks =
    match run toks with
    | Ok _ -> Alcotest.failf "%s: accepted a malformed sentence" name
    | Error _ -> ()
  in
  ok "src-ret" [ Src; Ret ] Collection;
  ok "src-agg-ret" [ Src; Agg; Ret ] Scalar;
  ok "body" [ Src; Trans; Pred; Sink; Ret ] Collection;
  ok "nested scalar"
    [ Src; Open Scalar; Src; Agg; Ret; Close; Trans; Ret ]
    Collection;
  ok "nested collection"
    [ Src; Open Collection; Src; Pred; Ret; Close; Trans; Ret ]
    Collection;
  rejected "empty" [];
  rejected "no src" [ Trans; Ret ];
  rejected "missing ret" [ Src; Agg ];
  rejected "agg not terminal" [ Src; Agg; Trans; Ret ];
  rejected "src mid-chain" [ Src; Src; Ret ];
  rejected "unbalanced close" [ Src; Ret; Close ];
  rejected "unclosed sub-query" [ Src; Open Collection; Src; Ret ];
  rejected "kind mismatch"
    [ Src; Open Scalar; Src; Ret; Close; Trans; Ret ];
  rejected "token after ret" [ Src; Ret; Trans ]

(* Hand-built malformed chains: the builders can't produce these, which
   is exactly why the PDA exists as an independent acceptor. *)
let r s : Quil.render = fun _ _ -> s

let dummy_lam1 : Quil.lam1 = { Quil.bind1 = (fun _ env -> env); body1 = r "true" }

let dummy_agg : Quil.agg =
  {
    Quil.accs =
      [ { Quil.seed = r "0"; step = (fun ~accs:_ ~elem:_ -> r "0"); first = None } ];
    first_element = false;
    require_nonempty = false;
    early_exit = None;
    result = (fun ~accs:_ -> r "0");
  }

let chain ops : Quil.chain =
  { Quil.src = Quil.Src_range { start = r "0"; count = r "3" }; ops }

let test_pda_malformed_chains () =
  let rejected name c =
    (match Check.Pda.accepts c with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ());
    match Check.assert_well_formed c with
    | () -> Alcotest.failf "%s: assert_well_formed passed" name
    | exception Check.Malformed_chain _ -> ()
  in
  rejected "trans after agg"
    (chain [ Quil.Agg dummy_agg; Quil.Trans dummy_lam1 ]);
  rejected "nested wants collection, got scalar"
    (chain
       [
         Quil.Nested
           {
             Quil.bind_outer = (fun _ env -> env);
             inner = chain [ Quil.Agg dummy_agg ];
             result2 = None;
           };
       ]);
  rejected "nested-scalar wants scalar, got collection"
    (chain
       [
         Quil.Trans_nested
           {
             Quil.bind_outer_s = (fun _ env -> env);
             inner_s = chain [ Quil.Trans dummy_lam1 ];
           };
       ]);
  (* And the same fixtures must stay rejectable by [validate]: the two
     acceptors agree on the negative cases too. *)
  (match Quil.validate (chain [ Quil.Agg dummy_agg; Quil.Trans dummy_lam1 ]) with
  | Ok () -> Alcotest.fail "validate accepted trans-after-agg"
  | Error _ -> ());
  (* A correct hand-built chain is accepted as scalar. *)
  match Check.Pda.accepts (chain [ Quil.Pred dummy_lam1; Quil.Agg dummy_agg ]) with
  | Ok k -> Alcotest.(check bool) "scalar kind" true (k = Check.Pda.Scalar)
  | Error e -> Alcotest.failf "well-formed fixture rejected: %s" e

(* {2 Expression analysis} *)

let int_body f = (Expr.lam "x" Ty.Int f).Expr.body

let host_succ = Expr.capture (Ty.Func (Ty.Int, Ty.Int)) (fun v -> v + 1)

let test_purity_census () =
  let pure = int_body (fun x -> I.((x * x) + Expr.int 1)) in
  Alcotest.(check bool) "pure" true (Check.Purity.purity pure = Check.Purity.Pure);
  let c = Check.Purity.census pure in
  Alcotest.(check int) "applies" 0 c.Check.Purity.c_applies;
  Alcotest.(check int) "free vars" 1 c.Check.Purity.c_free_vars;
  let opaque = int_body (fun x -> Expr.Apply (host_succ, x)) in
  Alcotest.(check bool) "opaque" true
    (Check.Purity.purity opaque = Check.Purity.Opaque);
  let c = Check.Purity.census opaque in
  Alcotest.(check int) "one apply" 1 c.Check.Purity.c_applies;
  Alcotest.(check int) "one capture" 1 c.Check.Purity.c_captures;
  Alcotest.(check bool) "apply costs more" true
    (c.Check.Purity.c_cost > (Check.Purity.census pure).Check.Purity.c_cost)

let itv_check name e lo hi =
  let i = Check.Purity.interval e in
  Alcotest.(check (option int)) (name ^ " lo") lo i.Check.Purity.lo;
  Alcotest.(check (option int)) (name ^ " hi") hi i.Check.Purity.hi

let test_intervals () =
  itv_check "const" (Expr.int 5) (Some 5) (Some 5);
  itv_check "arith" I.((Expr.int 2 * Expr.int 3) - Expr.int 10) (Some (-4)) (Some (-4));
  itv_check "capture" (Expr.capture Ty.Int 42) None None;
  itv_check "mod" (int_body (fun x -> I.(x mod Expr.int 10))) (Some (-9)) (Some 9);
  itv_check "min clamps" (Expr.Prim2 (Prim.Min_int, Expr.capture Ty.Int 7, Expr.int 0)) None (Some 0);
  itv_check "let"
    (Expr.let_ "y" (Expr.int 4) (fun y -> I.(y + y)))
    (Some 8) (Some 8)

let bool_body f = (Expr.lam "x" Ty.Int f).Expr.body

let test_truth () =
  let t e = Check.Purity.truth e in
  Alcotest.(check bool) "mod < 10 true" true
    (t (bool_body (fun x -> I.(x mod Expr.int 10 < Expr.int 10))) = Check.Purity.True);
  Alcotest.(check bool) "mod > 20 false" true
    (t (bool_body (fun x -> I.(x mod Expr.int 10 > Expr.int 20))) = Check.Purity.False);
  Alcotest.(check bool) "x < 10 unknown" true
    (t (bool_body (fun x -> I.(x < Expr.int 10))) = Check.Purity.Unknown);
  Alcotest.(check bool) "env refines" true
    (Check.Purity.truth
       ~env:
         [
           ( (Expr.lam "x" Ty.Int (fun x -> x)).Expr.param.Expr.id,
             Check.Purity.exactly 3 );
         ]
       (bool_body (fun x -> I.(x < Expr.int 10)))
    = Check.Purity.Unknown)

let test_zero_division_and_nonpositive () =
  Alcotest.(check int) "one zero site" 1
    (Check.Purity.zero_division_sites
       (int_body (fun x -> I.(x / (Expr.int 5 - Expr.int 5)))));
  Alcotest.(check int) "safe division" 0
    (Check.Purity.zero_division_sites (int_body (fun x -> I.(x / Expr.int 5))));
  Alcotest.(check bool) "min(c,0) nonpositive" true
    (Check.Purity.always_nonpositive
       (Expr.Prim2 (Prim.Min_int, Expr.capture Ty.Int 7, Expr.int 0)));
  Alcotest.(check bool) "capture not nonpositive" false
    (Check.Purity.always_nonpositive (Expr.capture Ty.Int 0))

(* {2 The linter} *)

let test_lint_codes () =
  (* SC001 opaque lambda *)
  let ds =
    Check.query (ints data |> Query.select (fun x -> Expr.Apply (host_succ, x)))
  in
  Alcotest.(check (list string)) "SC001" [ "SC001"; "SC011" ] (codes ds);
  (* SC003 rev after order-by, plus the SC002 blocker at the sort *)
  let ds =
    Check.query (ints data |> Query.order_by (fun x -> x) |> Query.rev)
  in
  Alcotest.(check (list string)) "SC003" [ "SC002"; "SC003" ] (codes ds);
  Alcotest.(check string) "SC003 golden"
    "SC003 hint [2:rev] Rev directly after OrderBy: flip the sort \
     direction instead and drop the Rev sink"
    (Check.to_string (List.nth ds 1));
  (* SC004 where after take *)
  let ds = Check.query (ints data |> Query.take 5 |> Query.where even) in
  Alcotest.(check (list string)) "SC004" [ "SC002"; "SC004" ] (codes ds);
  let sc4 = List.nth ds 1 in
  Alcotest.(check int) "SC004 index" 2 sc4.Check.d_index;
  Alcotest.(check string) "SC004 op" "where" sc4.Check.d_op;
  Alcotest.(check bool) "SC004 severity" true
    (sc4.Check.d_severity = Check.Warning);
  (* SC005 group-by without aggregation specialization *)
  let ds =
    Check.query (ints data |> Query.group_by (fun x -> I.(x mod Expr.int 4)))
  in
  Alcotest.(check (list string)) "SC005" [ "SC002"; "SC005" ] (codes ds);
  (* group_by_agg is the fix: no SC005 *)
  let ds =
    Check.query
      (ints data
      |> Query.group_by_agg
           ~key:(fun x -> I.(x mod Expr.int 4))
           ~seed:(Expr.int 0)
           ~step:(fun acc _ -> I.(acc + Expr.int 1)))
  in
  Alcotest.(check (list string)) "group-by-agg" [ "SC002" ] (codes ds);
  (* SC006 provable division by zero is an error *)
  let ds =
    Check.query
      (ints data
      |> Query.where (fun x -> I.(x / (Expr.int 5 - Expr.int 5) > Expr.int 0)))
  in
  Alcotest.(check (list string)) "SC006" [ "SC006" ] (codes ds);
  Alcotest.(check int) "SC006 errors" 1 (List.length (Check.errors ds));
  (* SC007 aggregate over a provably empty source *)
  let ds = Check.scalar (ints [||] |> Query.min_elt) in
  Alcotest.(check (list string)) "SC007" [ "SC007" ] (codes ds);
  Alcotest.(check string) "SC007 golden"
    "SC007 error [1:min] this aggregate requires a non-empty input, but \
     its source is statically empty: every run raises"
    (Check.to_string (List.hd ds));
  (* clean pipelines really are clean *)
  Alcotest.(check (list string)) "clean" []
    (codes (Check.query (ints data |> Query.where even |> Query.select (fun x -> I.(x * x)))));
  Alcotest.(check (list string)) "clean scalar" []
    (codes (Check.scalar (ints data |> Query.sum_int)))

(* SC008-SC011: the flow-analysis lints added with the translation
   validator. *)
let test_lint_flow_codes () =
  (* SC008 redundant Distinct: Range is duplicate-free. *)
  let ds = Check.query (Query.range ~start:0 ~count:5 |> Query.distinct) in
  Alcotest.(check (list string)) "SC008" [ "SC002"; "SC008" ] (codes ds);
  Alcotest.(check string) "SC008 golden"
    "SC008 hint [1:distinct] Distinct over an input that is provably \
     duplicate-free: the operator pays a hash table per run and removes \
     nothing (the optimizer drops it)"
    (Check.to_string (List.nth ds 1));
  (* ...but Distinct over possible duplicates is not flagged. *)
  let ds = Check.query (ints data |> Query.distinct) in
  Alcotest.(check (list string)) "no SC008" [ "SC002" ] (codes ds);
  (* SC009 sort discarded by re-sort. *)
  let ds =
    Check.query
      (ints data
      |> Query.order_by (fun x -> x)
      |> Query.order_by (fun x -> I.(x mod Expr.int 5)))
  in
  Alcotest.(check (list string)) "SC009" [ "SC002"; "SC009" ] (codes ds);
  Alcotest.(check string) "SC009 golden"
    "SC009 warning [2:order-by] OrderBy directly over OrderBy: the \
     earlier sort survives only as a stable-sort tie-break; sort once by \
     a composite key if multi-key ordering is intended"
    (Check.to_string (List.nth ds 1));
  (* SC010 statically empty plan, attached to the source. *)
  let ds = Check.query (ints [||] |> Query.select (fun x -> I.(x * x))) in
  Alcotest.(check (list string)) "SC010" [ "SC010" ] (codes ds);
  Alcotest.(check string) "SC010 golden"
    "SC010 warning [0:of-array] the plan is statically empty \
     (cardinality upper bound is zero elements): every run produces \
     nothing"
    (Check.to_string (List.hd ds));
  (* Take 0 also empties the plan, transitively. *)
  let ds = Check.query (ints data |> Query.take 0 |> Query.rev) in
  Alcotest.(check bool) "SC010 via take 0" true
    (List.mem "SC010" (codes ds));
  (* SC011 opaque lambda inside the splittable prefix... *)
  let ds =
    Check.query
      (ints data
      |> Query.select (fun x -> Expr.Apply (host_succ, x))
      |> Query.order_by (fun x -> x))
  in
  Alcotest.(check (list string)) "SC011" [ "SC001"; "SC011"; "SC002" ]
    (codes ds);
  Alcotest.(check string) "SC011 golden"
    "SC011 hint [1:select] an opaque lambda inside the splittable \
     prefix: partitioned execution would reorder or parallelize its \
     host-function calls"
    (Check.to_string (List.nth ds 1));
  (* ...but not after the homomorphic prefix ends. *)
  let ds =
    Check.query
      (ints data
      |> Query.order_by (fun x -> x)
      |> Query.select (fun x -> Expr.Apply (host_succ, x)))
  in
  Alcotest.(check (list string)) "no SC011 past the blocker"
    [ "SC002"; "SC001" ] (codes ds)

(* Every rule code in the registry fires somewhere in this battery, so a
   code can neither be retired silently nor added without a test. *)
let test_lint_code_coverage () =
  let seen = Hashtbl.create 16 in
  let note ds =
    List.iter (fun d -> Hashtbl.replace seen d.Check.d_code ()) ds
  in
  note
    (Check.query
       (ints data
       |> Query.select (fun x -> Expr.Apply (host_succ, x))
       |> Query.order_by (fun x -> x)));
  note (Check.query (ints data |> Query.order_by (fun x -> x) |> Query.rev));
  note (Check.query (ints data |> Query.take 5 |> Query.where even));
  note (Check.query (ints data |> Query.group_by (fun x -> x)));
  note
    (Check.query
       (ints data
       |> Query.where (fun x ->
              I.(x / (Expr.int 5 - Expr.int 5) > Expr.int 0))));
  note (Check.scalar (ints [||] |> Query.min_elt));
  note (Check.query (Query.range ~start:0 ~count:5 |> Query.distinct));
  note
    (Check.query
       (ints data
       |> Query.order_by (fun x -> x)
       |> Query.order_by (fun x -> I.(x mod Expr.int 5))));
  note (Check.query (ints [||] |> Query.rev));
  (* SC000 and SC012 are engine-emitted (PDA rejection, rejected
     rewrite); their constructors produce the registry diagnostics. *)
  note [ Check.malformed "probe" ];
  note [ Check.rejected_rewrite "probe" ];
  let missing =
    List.filter
      (fun (r : Check.rule) -> not (Hashtbl.mem seen r.Check.r_code))
      Check.rules
  in
  Alcotest.(check (list string)) "every registry code exercised" []
    (List.map (fun (r : Check.rule) -> r.Check.r_code) missing)

let test_lint_nested () =
  let ds =
    Check.query
      (ints data
      |> Query.select_many (fun _x ->
             ints data |> Query.take 2 |> Query.where even))
  in
  match List.filter (fun d -> d.Check.d_code = "SC004") ds with
  | [ d ] ->
    Alcotest.(check int) "attached to embedding op" 1 d.Check.d_index;
    Alcotest.(check string) "op" "select-many" d.Check.d_op;
    Alcotest.(check bool) "marked" true
      (String.length d.Check.d_message > 23
      && String.sub d.Check.d_message 0 23 = "in nested sub-query: Wh")
  | ds -> Alcotest.failf "expected one nested SC004, got %d" (List.length ds)

let test_lint_deterministic () =
  let q =
    ints data |> Query.take 3 |> Query.where even
    |> Query.group_by (fun x -> x)
  in
  let a = Check.query q and b = Check.query q in
  Alcotest.(check (list string)) "stable" (List.map Check.to_string a)
    (List.map Check.to_string b);
  (* sorted by position, then code *)
  let positions = List.map (fun d -> d.Check.d_index) a in
  Alcotest.(check (list int)) "by position" (List.sort compare positions)
    positions

(* {2 The parallelizability classifier} *)

let test_homo_classifier () =
  let report =
    Check.Homo.classify
      (ints data |> Query.where even
      |> Query.order_by (fun x -> x)
      |> Query.take 3)
  in
  Alcotest.(check int) "prefix" 2 report.Check.Homo.r_prefix;
  Alcotest.(check (list string)) "labels"
    [ "of-array"; "where"; "order-by"; "take" ]
    (List.map (fun o -> o.Check.Homo.o_label) report.Check.Homo.r_ops);
  (match report.Check.Homo.r_blocker with
  | Some b ->
    Alcotest.(check int) "blocker index" 2 b.Check.Homo.o_index;
    Alcotest.(check string) "blocker label" "order-by" b.Check.Homo.o_label
  | None -> Alcotest.fail "expected a blocker");
  Alcotest.(check bool) "splittable pipeline" true
    (Check.Homo.is_homomorphic
       (ints data |> Query.where even |> Query.select (fun x -> I.(x * x))));
  (* scalar: combinable aggregates split, positional ones don't *)
  let sum = Check.Homo.classify_scalar (ints data |> Query.sum_int) in
  Alcotest.(check bool) "sum splits" true (sum.Check.Homo.r_blocker = None);
  (* First decomposes (leftmost non-empty partial) since PR 5; the truly
     positional Element_at still blocks. *)
  let first = Check.Homo.classify_scalar (ints data |> Query.first) in
  Alcotest.(check bool) "first splits" true (first.Check.Homo.r_blocker = None);
  let nth = Check.Homo.classify_scalar (ints data |> Query.element_at 2) in
  (match nth.Check.Homo.r_blocker with
  | Some b ->
    Alcotest.(check string) "element-at blocks" "element-at"
      b.Check.Homo.o_label
  | None -> Alcotest.fail "Element_at must block");
  (match
     Check.Homo.aggregate_combinability
       (Query.of_array Ty.Float [| 1.0; 2.0 |] |> Query.average)
   with
  | Check.Homo.Combinable _ -> ()
  | Check.Homo.Not_combinable r -> Alcotest.failf "average not combinable: %s" r);
  (match
     Check.Homo.aggregate_combinability
       (ints data
       |> Query.aggregate ~combine:( + ) ~seed:(Expr.int 0) ~step:(fun a x ->
              I.(a + x)))
   with
  | Check.Homo.Combinable _ -> ()
  | Check.Homo.Not_combinable r ->
    Alcotest.failf "declared combiner not combinable: %s" r);
  (match
     Check.Homo.aggregate_combinability
       (ints data |> Query.aggregate ~seed:(Expr.int 0) ~step:(fun a x ->
            I.(a + x)))
   with
  | Check.Homo.Not_combinable _ -> ()
  | Check.Homo.Combinable _ ->
    Alcotest.fail "an undeclared aggregate must not be combinable");
  match
    Check.Homo.aggregate_combinability (ints data |> Query.sum_int)
  with
  | Check.Homo.Combinable _ -> ()
  | Check.Homo.Not_combinable r -> Alcotest.failf "sum not combinable: %s" r

(* Explicit per-operator classifications: the verdict for each operator
   class is part of the module's contract (reason strings are not). *)
let test_homo_operator_verdicts () =
  let verdict_at label (report : Check.Homo.report) =
    match
      List.find_opt
        (fun o -> o.Check.Homo.o_label = label)
        report.Check.Homo.r_ops
    with
    | Some o -> o.Check.Homo.o_verdict
    | None -> Alcotest.failf "no %S operator in the report" label
  in
  let is_splittable = function
    | Check.Homo.Splittable -> true
    | Check.Homo.Blocking _ -> false
  in
  (* Join: only the outer side is walked (the inner side re-evaluates
     per outer element), so the operator itself splits. *)
  let join_q =
    ints data
    |> Query.join ~inner:(ints data)
         ~outer_key:(fun x -> x)
         ~inner_key:(fun x -> x)
         ~result:(fun a b -> I.(a + b))
  in
  Alcotest.(check bool) "join splits" true
    (is_splittable (verdict_at "join" (Check.Homo.classify join_q)));
  Alcotest.(check bool) "join pipeline homomorphic" true
    (Check.Homo.is_homomorphic join_q);
  (* Group_by_elem materializes per-key bags of the whole input. *)
  let gbe =
    ints data
    |> Query.group_by_elem
         ~key:(fun x -> I.(x mod Expr.int 4))
         ~elem:(fun x -> I.(x * x))
  in
  Alcotest.(check bool) "group-by-elem blocks" false
    (is_splittable (verdict_at "group-by" (Check.Homo.classify gbe)));
  (* Group_by_agg blocks the naive split too (the parallel layer's
     dedicated group-aggregate path is a different mechanism). *)
  let gba =
    ints data
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 4))
         ~seed:(Expr.int 0)
         ~step:(fun acc _ -> I.(acc + Expr.int 1))
  in
  Alcotest.(check bool) "group-by-agg blocks" false
    (is_splittable (verdict_at "group-by-agg" (Check.Homo.classify gba)));
  (* Order_by: a global sort. *)
  let sorted = ints data |> Query.order_by (fun x -> x) in
  Alcotest.(check bool) "order-by blocks" false
    (is_splittable (verdict_at "order-by" (Check.Homo.classify sorted)));
  (* Rev: reverses the global order. *)
  let rev = ints data |> Query.rev in
  Alcotest.(check bool) "rev blocks" false
    (is_splittable (verdict_at "rev" (Check.Homo.classify rev)));
  (* Each blocker caps the prefix at its own position. *)
  List.iter
    (fun (name, report, prefix) ->
      Alcotest.(check int) (name ^ " prefix") prefix
        report.Check.Homo.r_prefix)
    [
      "join", Check.Homo.classify join_q, 2;
      "group-by-elem", Check.Homo.classify gbe, 1;
      "group-by-agg", Check.Homo.classify gba, 1;
      "order-by", Check.Homo.classify sorted, 1;
      "rev", Check.Homo.classify rev, 1;
    ]

(* {2 Engine integration} *)

let div_zero_query =
  ints data
  |> Query.where (fun x -> I.(x / (Expr.int 5 - Expr.int 5) > Expr.int 0))

let test_engine_diagnostics () =
  let eng = fused_engine () in
  let q = ints data |> Query.take 5 |> Query.where even in
  Alcotest.(check (list string)) "check" [ "SC002"; "SC004" ]
    (codes (Steno.Engine.check eng q));
  let p = Steno.Engine.prepare eng q in
  Alcotest.(check (list string)) "prepared diagnostics"
    [ "SC002"; "SC004" ]
    (codes (Steno.Prepared.diagnostics p));
  (* First splits since PR 5, so it no longer trips SC002; the
     positional Element_at still does. *)
  let ps = Steno.Engine.prepare_scalar eng (ints data |> Query.first) in
  Alcotest.(check (list string)) "first has no diagnostics" []
    (codes (Steno.Prepared_scalar.diagnostics ps));
  let ps = Steno.Engine.prepare_scalar eng (ints data |> Query.element_at 1) in
  Alcotest.(check (list string)) "scalar diagnostics" [ "SC002" ]
    (codes (Steno.Prepared_scalar.diagnostics ps));
  (* explain carries and renders them *)
  let ex = Steno.Engine.explain eng q in
  Alcotest.(check (list string)) "explain diagnostics"
    [ "SC002"; "SC004" ]
    (codes ex.Steno.Engine.diagnostics);
  let rendered = Steno.Engine.explain_to_string ex in
  List.iter
    (fun needle ->
      let found =
        List.exists
          (fun line ->
            String.length line >= String.length needle
            && String.sub line 0 (String.length needle) = needle)
          (String.split_on_char '\n' rendered |> List.map String.trim)
      in
      if not found then Alcotest.failf "missing %S in:\n%s" needle rendered)
    [ "diagnostics:"; "SC002 hint"; "SC004 warning" ]

let test_engine_metrics_family () =
  let reg = Metrics.create () in
  let eng =
    Steno.Engine.(
      create { default_config with backend = Fused; metrics = reg })
  in
  ignore (Steno.Engine.prepare eng (ints data |> Query.take 5 |> Query.where even));
  let rendered = Metrics.render reg in
  Alcotest.(check bool) "family present" true
    (let needle = "check_diagnostics" in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length rendered
       && (String.sub rendered i n = needle || scan (i + 1))
     in
     scan 0)

let test_strict_mode () =
  let strict = fused_engine ~strict:true () in
  (match Steno.Engine.prepare strict div_zero_query with
  | exception Steno.Check_failed errs ->
    Alcotest.(check (list string)) "div-zero refused" [ "SC006" ] (codes errs)
  | _ -> Alcotest.fail "strict engine prepared a certain division by zero");
  (match Steno.Engine.prepare_scalar strict (ints [||] |> Query.min_elt) with
  | exception Steno.Check_failed errs ->
    Alcotest.(check (list string)) "empty-min refused" [ "SC007" ] (codes errs)
  | _ -> Alcotest.fail "strict engine prepared an aggregate over empty");
  (* warnings and hints never block, even under strict *)
  let p =
    Steno.Engine.prepare strict (ints data |> Query.take 5 |> Query.where even)
  in
  Alcotest.(check bool) "warnings pass" true
    (Steno.Prepared.diagnostics p <> [])

(* Regression for the strict-mode gap: [Check.assert_well_formed] only
   ran inside the Native path's chain thunk, so a Fused or Linq prepare
   never exercised the PDA on the post-optimization chain.  A strict
   engine now runs the acceptance check eagerly on every prepare,
   whatever the backend — observable through the [steno_pda_checks]
   counter. *)
let test_strict_pda_every_backend () =
  let pda_checks reg =
    Metrics.counter_value (Metrics.counter reg "steno_pda_checks")
  in
  let reg = Metrics.create () in
  let eng =
    Steno.Engine.(
      create
        { default_config with backend = Fused; strict = true; metrics = reg })
  in
  Alcotest.(check int) "no checks yet" 0 (pda_checks reg);
  ignore (Steno.Engine.prepare eng (ints data |> Query.where even));
  Alcotest.(check int) "fused prepare runs the PDA" 1 (pda_checks reg);
  ignore (Steno.Engine.prepare_scalar eng (ints data |> Query.sum_int));
  Alcotest.(check int) "scalar prepare too" 2 (pda_checks reg);
  ignore
    (Steno.Engine.prepare ~backend:Steno.Linq eng
       (ints data |> Query.where even |> Query.where even));
  Alcotest.(check int) "linq prepare too" 3 (pda_checks reg);
  (* A non-strict engine keeps the old lazy behaviour: no eager check. *)
  let reg0 = Metrics.create () in
  let eng0 =
    Steno.Engine.(
      create { default_config with backend = Fused; metrics = reg0 })
  in
  ignore (Steno.Engine.prepare eng0 (ints data |> Query.where even));
  Alcotest.(check int) "non-strict stays lazy" 0 (pda_checks reg0)

(* Non-strict engines must treat diagnostics as pure observation: any
   lint-carrying query still computes exactly what an unoptimized Linq
   evaluation computes. *)
let test_diagnostics_never_change_results () =
  let reference q = Steno.Engine.to_list (fused_engine ~optimize:false ()) q in
  List.iter
    (fun (name, q) ->
      Alcotest.(check (list int))
        name (reference q)
        (Steno.Engine.to_list (fused_engine ()) q))
    [
      "where after take", ints data |> Query.take 5 |> Query.where even;
      "rev after sort", ints data |> Query.order_by (fun x -> x) |> Query.rev;
      ( "opaque lambda",
        ints data |> Query.select (fun x -> Expr.Apply (host_succ, x)) );
      ( "group-by without agg",
        ints data
        |> Query.group_by (fun x -> I.(x mod Expr.int 4))
        |> Query.select (fun g -> Expr.Fst g) );
    ]

(* {2 Interval rewrites} *)

let test_interval_rewrites () =
  let reference q = Steno.Engine.to_list (fused_engine ~optimize:false ()) q in
  let tautology =
    ints data |> Query.where (fun x -> I.(x mod Expr.int 10 < Expr.int 10))
  in
  let _, log = Opt.query tautology in
  Alcotest.(check (list string)) "tautology log" [ "where-interval-true" ] log;
  Alcotest.(check (list int)) "tautology results" (reference tautology)
    (Steno.Engine.to_list (fused_engine ()) tautology);
  let contradiction =
    ints data |> Query.where (fun x -> I.(x mod Expr.int 10 > Expr.int 20))
  in
  let _, log = Opt.query contradiction in
  Alcotest.(check (list string)) "contradiction log"
    [ "where-interval-false" ] log;
  Alcotest.(check (list int)) "contradiction results" []
    (Steno.Engine.to_list (fused_engine ()) contradiction);
  (* a Take whose non-constant count is provably <= 0 *)
  let clamped =
    Query.Take
      (ints data, Expr.Prim2 (Prim.Min_int, Expr.capture Ty.Int 7, Expr.int 0))
  in
  let _, log = Opt.query clamped in
  Alcotest.(check (list string)) "clamped log" [ "take-interval-nonpos" ] log;
  Alcotest.(check (list int)) "clamped results" (reference clamped)
    (Steno.Engine.to_list (fused_engine ()) clamped);
  (* an undecidable predicate is left alone *)
  let _, log = Opt.query (ints data |> Query.where even) in
  Alcotest.(check (list string)) "undecidable" [] log

(* {2 Rewrite-log dedup} *)

let test_rewrite_log_dedup () =
  let q =
    ints data |> Query.where even
    |> Query.where (fun x -> I.(x < Expr.int 10))
    |> Query.where (fun x -> I.(x > Expr.int 1))
  in
  (* the raw optimizer log keeps one entry per firing... *)
  let _, raw = Opt.query q in
  Alcotest.(check (list string)) "raw" [ "where-fuse"; "where-fuse" ] raw;
  (* ...and the preparation compresses the run *)
  let p = Steno.Engine.prepare (fused_engine ()) q in
  Alcotest.(check (list string)) "compressed" [ "where-fuse (x2)" ]
    (Steno.Prepared.rewrite_log p);
  let ex = Steno.Engine.explain (fused_engine ()) q in
  Alcotest.(check (list string)) "explain compressed" [ "where-fuse (x2)" ]
    ex.Steno.Engine.rules

(* {2 Dryad checked apply} *)

let test_dryad_checked () =
  let c = Dryad.create ~workers:2 () in
  let seq = Array.init 30 (fun i -> (i * 7) mod 20) in
  let ds = Dataset.of_array ~parts:3 seq in
  let out =
    Dryad.apply_query_checked c
      (fun part -> ints part |> Query.select (fun x -> I.(x + Expr.int 1)))
      ds
  in
  Alcotest.(check (array int)) "splittable runs"
    (Array.map (fun x -> x + 1) seq)
    (Dataset.collect out);
  match
    Dryad.apply_query_checked c
      (fun part -> ints part |> Query.order_by (fun x -> x))
      ds
  with
  | _ -> Alcotest.fail "checked apply accepted a global sort"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the blocker" true
      (let needle = "order-by" in
       let n = String.length needle in
       let rec scan i =
         i + n <= String.length msg
         && (String.sub msg i n = needle || scan (i + 1))
       in
       scan 0)

let () =
  Alcotest.run "check"
    [
      ( "pda",
        [
          Alcotest.test_case "gallery acceptance" `Quick test_pda_gallery;
          Alcotest.test_case "token sentences" `Quick test_pda_tokens;
          Alcotest.test_case "malformed chains" `Quick
            test_pda_malformed_chains;
        ] );
      ( "purity",
        [
          Alcotest.test_case "census" `Quick test_purity_census;
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "truth" `Quick test_truth;
          Alcotest.test_case "zero division" `Quick
            test_zero_division_and_nonpositive;
        ] );
      ( "lint",
        [
          Alcotest.test_case "rule codes" `Quick test_lint_codes;
          Alcotest.test_case "flow codes" `Quick test_lint_flow_codes;
          Alcotest.test_case "code coverage" `Quick test_lint_code_coverage;
          Alcotest.test_case "nested sub-queries" `Quick test_lint_nested;
          Alcotest.test_case "deterministic" `Quick test_lint_deterministic;
        ] );
      ( "homo",
        [
          Alcotest.test_case "classifier" `Quick test_homo_classifier;
          Alcotest.test_case "operator verdicts" `Quick
            test_homo_operator_verdicts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "diagnostics" `Quick test_engine_diagnostics;
          Alcotest.test_case "metrics family" `Quick
            test_engine_metrics_family;
          Alcotest.test_case "strict mode" `Quick test_strict_mode;
          Alcotest.test_case "strict PDA all backends" `Quick
            test_strict_pda_every_backend;
          Alcotest.test_case "observation only" `Quick
            test_diagnostics_never_change_results;
          Alcotest.test_case "interval rewrites" `Quick
            test_interval_rewrites;
          Alcotest.test_case "rewrite-log dedup" `Quick
            test_rewrite_log_dedup;
        ] );
      ( "dryad",
        [ Alcotest.test_case "checked apply" `Quick test_dryad_checked ] );
    ]
